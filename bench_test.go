// Package repro's root benchmark harness: one testing.B benchmark per paper
// table and figure. Each benchmark regenerates its experiment through the
// simulator and reports the experiment's headline number as a custom metric,
// so `go test -bench=. -benchmem` both exercises the full pipeline under the
// Go benchmark driver and prints the reproduced quantities.
//
// Full-size regeneration with rendered tables: `go run ./cmd/egacs-bench
// -exp all -scale bench`.
package repro_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
)

func benchOpts(b *testing.B) bench.Options {
	o := bench.Options{Scale: graph.ScaleSmall, Quick: true, Seed: 42}
	if testing.Short() {
		o.Scale = graph.ScaleTest
	}
	return o
}

// cell parses a numeric table cell.
func cell(b *testing.B, s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("unparseable cell %q", s)
	}
	return v
}

func runExperiment(b *testing.B, id string, metric func([]*bench.Table) (float64, string)) {
	o := benchOpts(b)
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*bench.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(o)
	}
	if metric != nil {
		v, unit := metric(tables)
		b.ReportMetric(v, unit)
	}
}

// BenchmarkTable2_TaskLaunch regenerates the empty-launch overhead table and
// reports the pthread-vs-cilk overhead ratio.
func BenchmarkTable2_TaskLaunch(b *testing.B) {
	runExperiment(b, "table2", func(ts []*bench.Table) (float64, string) {
		var pthread, cilk float64
		for _, r := range ts[0].Rows {
			switch r[0] {
			case "pthread":
				pthread = cell(b, r[1])
			case "cilk":
				cilk = cell(b, r[1])
			}
		}
		return pthread / cilk, "pthread/cilk"
	})
}

// BenchmarkTable3_LaunchBFS regenerates the BFS launch-overhead table and
// reports how much of the pthread system's time IO removed.
func BenchmarkTable3_LaunchBFS(b *testing.B) {
	runExperiment(b, "table3", func(ts []*bench.Table) (float64, string) {
		r := ts[0].Rows[0] // pthread row
		return cell(b, r[1]) / cell(b, r[2]), "noIO/IO"
	})
}

// BenchmarkTable4_LaneUtilization reports the optimized rmat utilization.
func BenchmarkTable4_LaneUtilization(b *testing.B) {
	runExperiment(b, "table4", func(ts []*bench.Table) (float64, string) {
		for _, r := range ts[0].Rows {
			if r[0] == "rmat" {
				return cell(b, r[2]), "%util-opt"
			}
		}
		return 0, "%util-opt"
	})
}

// BenchmarkTable5_CoopConversion reports the bfs-wl task-CC push reduction.
func BenchmarkTable5_CoopConversion(b *testing.B) {
	runExperiment(b, "table5", func(ts []*bench.Table) (float64, string) {
		return cell(b, ts[0].Rows[0][4]), "x-fewer-pushes"
	})
}

// BenchmarkTable6_GatherLatency reports the Intel L1 gather/scalar ratio.
func BenchmarkTable6_GatherLatency(b *testing.B) {
	runExperiment(b, "table6", func(ts []*bench.Table) (float64, string) {
		r := ts[0].Rows[0] // Intel L1
		return cell(b, r[2]) / cell(b, r[1]), "gather/scalar-L1"
	})
}

// BenchmarkFig4_Frameworks regenerates the framework comparison and reports
// the EGACS-vs-GraphIt geomean (the paper's 1.53x headline).
func BenchmarkFig4_Frameworks(b *testing.B) {
	runExperiment(b, "fig4", nil)
}

// BenchmarkFig5_Optimizations regenerates the per-optimization breakdown.
func BenchmarkFig5_Optimizations(b *testing.B) {
	runExperiment(b, "fig5", nil)
}

// BenchmarkFig6_SIMDvsMT reports the +MT+SIMD+Opt speedup on the random
// input (paper: 17.02x).
func BenchmarkFig6_SIMDvsMT(b *testing.B) {
	runExperiment(b, "fig6", func(ts []*bench.Table) (float64, string) {
		for _, r := range ts[0].Rows {
			if r[0] == "random" {
				return cell(b, r[4]), "x-over-serial"
			}
		}
		return 0, "x-over-serial"
	})
}

// BenchmarkFig7_AVXTargets reports the avx1-16/avx512-16 instruction ratio.
func BenchmarkFig7_AVXTargets(b *testing.B) {
	runExperiment(b, "fig7", func(ts []*bench.Table) (float64, string) {
		var a1, a512 float64
		for _, r := range ts[0].Rows {
			switch r[0] {
			case "avx1-i32x16":
				a1 = cell(b, r[2])
			case "avx512-i32x16":
				a512 = cell(b, r[2])
			}
		}
		return a1 / a512, "avx1/avx512-instrs"
	})
}

// BenchmarkFig8_Scalability reports the Intel 8-core speedup.
func BenchmarkFig8_Scalability(b *testing.B) {
	runExperiment(b, "fig8", func(ts []*bench.Table) (float64, string) {
		rows := ts[0].Rows
		return cell(b, rows[len(rows)-1][1]), "x-at-8-cores"
	})
}

// BenchmarkFig9_CPUvsGPU reports the GPU-vs-Intel geomean factor.
func BenchmarkFig9_CPUvsGPU(b *testing.B) {
	runExperiment(b, "fig9", nil)
}

// BenchmarkFig10_SMT reports the Intel full-machine SMT benefit.
func BenchmarkFig10_SMT(b *testing.B) {
	runExperiment(b, "fig10", func(ts []*bench.Table) (float64, string) {
		rows := ts[0].Rows
		return cell(b, rows[len(rows)-1][3]), "smt/nosmt"
	})
}

// BenchmarkTable9_VirtualMemory reports the bfs-wl GPU-vs-CPU 50%-memory
// slowdown ratio (the UVM collapse).
func BenchmarkTable9_VirtualMemory(b *testing.B) {
	runExperiment(b, "table9", func(ts []*bench.Table) (float64, string) {
		for _, r := range ts[0].Rows {
			if r[0] == "bfs-wl" {
				return cell(b, r[3]) / cell(b, r[6]), "gpu/cpu-50%-slowdown"
			}
		}
		return 0, "gpu/cpu-50%-slowdown"
	})
}

// BenchmarkEndToEnd_BFSWL measures the simulator's own throughput running
// the flagship kernel end to end (host time per simulated run).
func BenchmarkEndToEnd_BFSWL(b *testing.B) {
	g := graph.Road(64, 64, 64, 1)
	bfs, err := kernels.ByName("bfs-wl")
	if err != nil {
		b.Fatal(err)
	}
	src := g.MaxDegreeNode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(bfs, g, core.Config{Src: src}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd_AllKernels runs the full ten-benchmark suite once per
// iteration on tiny inputs: a pipeline regression canary.
func BenchmarkEndToEnd_AllKernels(b *testing.B) {
	graphs := graph.Suite(graph.ScaleTest, 42)
	o := opt.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bb := range kernels.All() {
			g := core.PrepareGraph(bb, graphs[1])
			if _, err := core.Run(bb, g, core.Config{Opts: &o, Machine: machine.Intel8()}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
