package main

import "testing"

// TestFlagCompat pins the observability × injection pairing rules: only
// -fault-inject with -trace is rejected; -fault-inject composes with
// -metrics, and -trace composes with -metrics.
func TestFlagCompat(t *testing.T) {
	cases := []struct {
		name      string
		faultProb float64
		trace     string
		metrics   string
		wantErr   bool
	}{
		{"fault+trace", 0.1, "t.json", "", true},
		{"fault+metrics", 0.1, "", "m.jsonl", false},
		{"trace+metrics", 0, "t.json", "m.jsonl", false},
		{"fault+trace+metrics", 0.1, "t.json", "m.jsonl", true},
		{"none", 0, "", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := flagCompatErr(tc.faultProb, tc.trace, tc.metrics)
			if (err != nil) != tc.wantErr {
				t.Errorf("flagCompatErr(%v, %q, %q) = %v, want error=%v",
					tc.faultProb, tc.trace, tc.metrics, err, tc.wantErr)
			}
		})
	}
}
