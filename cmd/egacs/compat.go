package main

import "errors"

// flagCompatErr validates the observability × fault-injection flag pairings.
// Only -fault-inject with -trace is rejected: index-corruption injection
// forces the live scheduler and perturbs the modeled timeline, so the trace
// would not be the deterministic timeline -trace promises. -metrics composes
// with -fault-inject (iteration metrics of a faulting run are exactly what
// one wants to inspect), and -trace composes with -metrics. The
// window-deterministic corruption classes (-flip-inject, -transient-inject)
// preserve the modeled timeline under recovery and restrict nothing.
func flagCompatErr(faultProb float64, tracePath, metricsPath string) error {
	if faultProb > 0 && tracePath != "" {
		return errors.New("-fault-inject and -trace are incompatible: fault injection " +
			"forces the live scheduler and perturbs the modeled timeline, so the trace " +
			"would not be the deterministic timeline -trace promises")
	}
	return nil
}
