// Command egacs compiles and runs one EGACS benchmark on one input graph
// under a configurable machine model, ISA target, tasking system and
// optimization set, printing the modeled execution time, dynamic statistics
// and verification result.
//
// Examples:
//
//	egacs -bench bfs-wl -input road -scale bench
//	egacs -bench sssp-nf -input rmat -machine amd -opts io+cc+np
//	egacs -bench pr -graph web.el -target avx2-i32x8 -tasks 8
//	egacs -bench bfs-wl -input road -emit       # print generated ISPC
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

func main() {
	var (
		benchName  = flag.String("bench", "bfs-wl", "benchmark: "+fmt.Sprint(kernels.Names()))
		input      = flag.String("input", "road", "generated input family: road|rmat|random")
		scale      = flag.String("scale", "small", "generated input scale: test|small|bench|large")
		graphFile  = flag.String("graph", "", "load graph from file instead (edge list or DIMACS .gr)")
		machName   = flag.String("machine", "intel", "machine model: intel|amd|phi|gpu")
		target     = flag.String("target", "", "ISA target, e.g. avx512-i32x16 (default: machine preferred)")
		tasks      = flag.Int("tasks", 0, "task count (0 = machine default)")
		noSMT      = flag.Bool("nosmt", false, "pin one task per core")
		taskSys    = flag.String("tasksys", "pthread", "tasking system: pthread|pthread_fs|cilk|openmp|tbb")
		optStr     = flag.String("opts", "all", "optimizations: none|all|io+np+cc+fibers+fibercc")
		backendStr = flag.String("backend", "auto", "kernel backend: interp|compiled|auto (auto prefers the generated-Go backend and degrades to the interpreter for uncovered programs; output reports which ran)")
		layoutStr  = flag.String("layout", "auto", "graph layout policy: csr|sell|auto (auto attaches SELL-C-σ where the machine's gathers are slower than unit-stride loads; order-sensitive float kernels always run csr)")
		sellC      = flag.Int("sell-c", 0, "SELL slice height C (0 = vector width)")
		sellSigma  = flag.Int("sell-sigma", 0, "SELL degree-sort window σ (0 = default, negative = whole graph)")
		mutFile    = flag.String("mutations", "", "apply this edge-mutation stream (\"+ src dst [w]\" / \"- src dst\", graphgen -mutations format) to the graph before running")
		src        = flag.Int("src", -1, "source node (-1 = max-degree node)")
		seed       = flag.Uint64("seed", 42, "generator seed")
		verify     = flag.Bool("verify", true, "check output against the serial reference")
		emit       = flag.Bool("emit", false, "print the generated ISPC source and exit")
		serial     = flag.Bool("serial", false, "run the serial build (scalar, 1 task, no opts)")
		profile    = flag.Bool("profile", false, "print a per-kernel phase profile")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		hostPar    = flag.Bool("host-parallel", true, "run SPMD tasks concurrently on host cores (modeled time is unchanged); false selects the cooperative reference scheduler. -fault-inject forces the live scheduler; -profile works in every mode")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline (modeled + host clocks) to this file; open in Perfetto or chrome://tracing")
		attribOut  = flag.String("attrib", "", "write the per-phase per-cost-class cycle attribution as a collapsed-stack (flamegraph) profile to this file; '-' prints it (with a per-class summary table) to stdout")
		metricsOut = flag.String("metrics", "", "write per-iteration metrics (frontier, lane utilization, cache hits, ...) as JSONL to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file after the run")

		faultProb = flag.Float64("fault-inject", 0, "per-access probability of injected gather/scatter index faults")
		flipProb  = flag.Float64("flip-inject", 0, "per-array, per-loop-window probability of silent bit flips in live state (pair with -verify-invariants to detect them)")
		transProb = flag.Float64("transient-inject", 0, "per-loop-window probability of typed transient faults (recoverable with -checkpoint-every)")
		faultSeed = flag.Uint64("fault-seed", 1, "fault injector seed (same seed reproduces the same trace)")
		maxIters  = flag.Int("max-iters", 0, "abort any pipe loop after this many iterations (0 = unlimited)")
		deadline  = flag.Duration("deadline", 0, "wall-clock deadline for the run, e.g. 30s (0 = none)")
		stallWin  = flag.Int("stall-window", 0, "identical-frontier iterations before declaring non-convergence (0 = off)")
		fallback  = flag.Bool("fallback", false, "degrade gracefully: retry, then scalar baselines, then serial reference")
		ckEvery   = flag.Int("checkpoint-every", 0, "checkpoint pipe loops every N iterations and roll back on recoverable faults (0 = off)")
		maxRB     = flag.Int("max-rollbacks", 0, "re-executions per checkpoint before the fault escalates (0 = default 3)")
		verifyInv = flag.Bool("verify-invariants", false, "validate kernel invariants before each checkpoint (detects silent corruption)")
	)
	flag.Parse()

	bench, err := kernels.ByName(*benchName)
	fail(err)

	g, err := graph.Load(*graphFile, *input, *scale, *seed)
	fail(err)
	if *mutFile != "" {
		g, err = applyMutations(g, *mutFile)
		fail(err)
	}
	g = core.PrepareGraph(bench, g)

	opts, err := opt.Parse(*optStr)
	fail(err)

	if *emit {
		prog := opt.MustApply(bench.Prog, opts)
		fmt.Print(codegen.EmitISPC(prog))
		return
	}

	m, err := machine.ByName(*machName)
	fail(err)
	ts, err := spmd.TaskSystemByName(*taskSys)
	fail(err)

	cfg := core.Config{
		Machine:        m,
		Tasks:          *tasks,
		NoSMT:          *noSMT,
		TaskSys:        &ts,
		Opts:           &opts,
		ProfileKernels: *profile,
	}
	if *serial {
		cfg = core.SerialConfig(m)
	}
	layout, err := core.ParseLayout(*layoutStr)
	fail(err)
	cfg.Layout = layout
	be, err := core.ParseBackend(*backendStr)
	fail(err)
	cfg.Backend = be
	cfg.SellC = *sellC
	cfg.SellSigma = *sellSigma
	if *hostPar {
		cfg.HostExec = core.HostParallel
	} else {
		cfg.HostExec = core.HostCooperative
	}
	if *target != "" {
		tgt, err := vec.ParseTarget(*target)
		fail(err)
		cfg.Target = tgt
	}
	if *src >= 0 {
		cfg.Src = int32(*src)
	} else {
		cfg.Src = g.MaxDegreeNode()
	}

	cfg.Budget = fault.Budget{MaxIters: *maxIters, StallWindow: *stallWin}
	if *deadline > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		cfg.Budget.Ctx = ctx
	}
	fail(flagCompatErr(*faultProb, *traceOut, *metricsOut))
	if *faultProb > 0 || *flipProb > 0 || *transProb > 0 {
		cfg.Inject = fault.NewInjector(*faultSeed, fault.Config{
			GatherIndex:  *faultProb,
			ScatterIndex: *faultProb,
			BitFlip:      *flipProb,
			Transient:    *transProb,
		})
	}
	cfg.CheckpointEvery = *ckEvery
	cfg.MaxRollbacks = *maxRB
	cfg.VerifyInvariants = *verifyInv
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer(0)
	}
	if *metricsOut != "" {
		cfg.Metrics = obs.NewMetrics(0)
	}

	if !*jsonOut {
		fmt.Printf("benchmark: %s\ninput:     %s (%d nodes, %d edges)\nmachine:   %s\n",
			bench.Name, g.Name, g.NumNodes(), g.NumEdges(), m)
		shownTasks := cfg.Tasks
		if shownTasks == 0 {
			shownTasks = m.DefaultTasks
		}
		fmt.Printf("tasks:     %d  tasksys: %s  opts: %s  src: %d\n",
			shownTasks, ts.Name, opts, cfg.Src)
	}

	if *fallback {
		runResilient(bench, g, cfg, *jsonOut, *verify, *cpuProf, *memProf, *traceOut, *metricsOut)
		return
	}

	stopCPU := startCPUProfile(*cpuProf)
	res, err := core.Run(bench, g, cfg)
	stopCPU()
	writeMemProfile(*memProf)
	if err != nil && cfg.Inject != nil && !*jsonOut {
		fmt.Fprintf(os.Stderr, "fault trace:\n%s", cfg.Inject.TraceString())
	}
	// Export before failing: the metrics rows collected up to a fault are the
	// artifact the -fault-inject + -metrics pairing exists to deliver.
	exportObs(cfg, *traceOut, *metricsOut, *jsonOut)
	fail(err)

	if *attribOut != "" {
		attr := res.Engine.Attribution()
		attr.Wasted = res.Recovery.WastedCycles
		fail(writeAttrib(&attr, *attribOut, bench.Name, *jsonOut))
	}

	if *jsonOut {
		verr := ""
		if *verify {
			if err := core.Verify(bench, g, res); err != nil {
				verr = err.Error()
			}
		}
		emitJSON(bench.Name, g, cfg, opts, res, verr)
		if verr != "" {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("\ntime:      %.3f ms (modeled)\n", res.TimeMS)
	s := res.Stats
	fmt.Printf("instrs:    %d (%d vector ops, %d scalar ops)\n",
		s.Instructions, s.VectorOps, s.ScalarOps)
	fmt.Printf("atomics:   %d (%d worklist pushes)\n", s.Atomics, s.AtomicPushes)
	fmt.Printf("launches:  %d  barriers: %d  work items: %d\n",
		s.Launches, s.Barriers, s.WorkItems)
	if w := res.Engine.Width(); w > 1 {
		fmt.Printf("lane util: %.1f%% (width %d)\n", 100*s.LaneUtilization(w), w)
	}
	if sl := res.Sell; sl != nil {
		fmt.Printf("layout:    sell (C=%d sigma=%d, %.1f%% padding, %.3fx edges, %d dense columns, %.1f%% edges on csr fallback)\n",
			sl.C, sl.Sigma, 100*sl.PaddingRatio(), sl.Overhead(), s.SellColumns,
			100*sl.FallbackRatio())
	} else {
		fmt.Printf("layout:    csr\n")
	}
	fmt.Printf("backend:   %s\n", res.Backend)
	if *ckEvery > 0 {
		fmt.Printf("recovery:  %d checkpoints, %d rollbacks (%d rejected by invariants), %.0f wasted cycles\n",
			res.Recovery.Checkpoints, res.Recovery.Rollbacks,
			res.Recovery.BadCheckpoints, res.Recovery.WastedCycles)
	}

	if *profile {
		fmt.Println()
		res.Engine.WriteProfile(os.Stdout)
	}

	if *verify {
		if err := core.Verify(bench, g, res); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verify:    output matches the serial reference")
	}
}

// exportObs writes the trace and metrics files attached to the run, with a
// one-line summary each in text mode. The trace spans all attempts when the
// run degraded, which is exactly what a timeline of the process should show.
func exportObs(cfg core.Config, tracePath, metricsPath string, jsonOut bool) {
	if cfg.Trace != nil && tracePath != "" {
		fail(cfg.Trace.WriteFile(tracePath))
		if !jsonOut {
			fmt.Printf("trace:     %d events (%d dropped) -> %s\n",
				cfg.Trace.Len(), cfg.Trace.Dropped(), tracePath)
		}
	}
	if cfg.Metrics != nil && metricsPath != "" {
		fail(cfg.Metrics.WriteFile(metricsPath))
		if !jsonOut {
			fmt.Printf("metrics:   %d iteration samples -> %s\n",
				cfg.Metrics.Len(), metricsPath)
		}
	}
}

// writeAttrib renders the cycle attribution as a collapsed-stack profile
// (one "root;phase;class cycles" line per non-zero bucket, the folded format
// flamegraph tooling consumes). Path "-" writes to stdout and appends the
// human-readable per-class summary table.
func writeAttrib(attr *obs.Attribution, path, root string, jsonOut bool) error {
	if path == "-" {
		attr.WriteCollapsed(os.Stdout, root)
		if !jsonOut {
			fmt.Println()
			attr.WriteText(os.Stdout)
		}
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	attr.WriteCollapsed(f, root)
	if err := f.Close(); err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("attrib:    %d phases x %d cost classes -> %s\n",
			len(attr.Phases), int(obs.NumCostClasses), path)
	}
	return nil
}

// runResilient executes with graceful degradation and reports which path
// served the result.
func runResilient(bench *kernels.Benchmark, g *graph.CSR, cfg core.Config, jsonOut, verify bool, cpuProf, memProf, tracePath, metricsPath string) {
	stopCPU := startCPUProfile(cpuProf)
	res, err := core.RunResilient(bench, g, cfg)
	stopCPU()
	writeMemProfile(memProf)
	if err != nil {
		if cfg.Inject != nil {
			fmt.Fprintf(os.Stderr, "fault trace:\n%s", cfg.Inject.TraceString())
		}
		fail(err)
	}
	exportObs(cfg, tracePath, metricsPath, jsonOut)
	verr := ""
	if verify {
		if err := res.Output.Verify(bench, g, cfg.Src); err != nil {
			verr = err.Error()
		}
	}
	if jsonOut {
		rep := resilientReport{
			Benchmark:   bench.Name,
			Graph:       g.Name,
			ServedPath:  res.Path,
			Backend:     res.ServingBackend(),
			Degraded:    res.Degraded(),
			VerifyError: verr,
			Verified:    verr == "",
		}
		for _, aerr := range res.Attempts {
			rep.Attempts = append(rep.Attempts, aerr.Error())
		}
		for _, a := range res.History {
			h := attemptReport{
				Path:         a.Path,
				Backend:      a.Backend,
				Cycles:       a.Cycles,
				WallNS:       a.WallNS,
				Checkpoints:  a.Recovery.Checkpoints,
				Rollbacks:    a.Recovery.Rollbacks,
				BadCkpts:     a.Recovery.BadCheckpoints,
				WastedCycles: a.Recovery.WastedCycles,
			}
			if a.Err != nil {
				h.Error = a.Err.Error()
			}
			rep.History = append(rep.History, h)
		}
		if cfg.Inject != nil {
			rep.FaultTrace = cfg.Inject.TraceString()
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		fail(err)
		fmt.Println(string(out))
	} else {
		for i, a := range res.History {
			status := "served"
			if a.Err != nil {
				status = a.Err.Error()
			}
			fmt.Printf("attempt %d: %-12s cycles=%.0f wall=%dus rollbacks=%d: %s\n",
				i+1, a.Path, a.Cycles, a.WallNS/1000, a.Recovery.Rollbacks, status)
		}
		if be := res.ServingBackend(); be != "" {
			fmt.Printf("served by: %s (backend=%s, degraded=%v)\n", res.Path, be, res.Degraded())
		} else {
			fmt.Printf("served by: %s (degraded=%v)\n", res.Path, res.Degraded())
		}
		if rec := res.TotalRecovery(); rec.Checkpoints > 0 || rec.Rollbacks > 0 {
			fmt.Printf("recovery:  %d checkpoints, %d rollbacks (%d rejected by invariants), %.0f wasted cycles\n",
				rec.Checkpoints, rec.Rollbacks, rec.BadCheckpoints, rec.WastedCycles)
		}
		if verr != "" {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", verr)
		} else if verify {
			fmt.Println("verify:    output matches the serial reference")
		}
	}
	if verr != "" {
		os.Exit(1)
	}
}

// resilientReport is the -json output schema under -fallback.
type resilientReport struct {
	Benchmark   string          `json:"benchmark"`
	Graph       string          `json:"graph"`
	ServedPath  string          `json:"served_path"`
	Backend     string          `json:"backend,omitempty"`
	Degraded    bool            `json:"degraded"`
	Attempts    []string        `json:"attempt_errors,omitempty"`
	History     []attemptReport `json:"history,omitempty"`
	FaultTrace  string          `json:"fault_trace,omitempty"`
	VerifyError string          `json:"verify_error,omitempty"`
	Verified    bool            `json:"verified"`
}

// attemptReport is one entry of the degradation history: every path tried
// with its cost and recovery counters.
type attemptReport struct {
	Path         string  `json:"path"`
	Backend      string  `json:"backend,omitempty"`
	Error        string  `json:"error,omitempty"`
	Cycles       float64 `json:"cycles,omitempty"`
	WallNS       int64   `json:"wall_ns"`
	Checkpoints  int     `json:"checkpoints,omitempty"`
	Rollbacks    int     `json:"rollbacks,omitempty"`
	BadCkpts     int     `json:"bad_checkpoints,omitempty"`
	WastedCycles float64 `json:"wasted_cycles,omitempty"`
}

// runReport is the -json output schema.
type runReport struct {
	Benchmark    string  `json:"benchmark"`
	Graph        string  `json:"graph"`
	Nodes        int32   `json:"nodes"`
	Edges        int32   `json:"edges"`
	Machine      string  `json:"machine"`
	Target       string  `json:"target"`
	Tasks        int     `json:"tasks"`
	Opts         string  `json:"opts"`
	Src          int32   `json:"src"`
	TimeMS       float64 `json:"time_ms"`
	Instructions int64   `json:"instructions"`
	VectorOps    int64   `json:"vector_ops"`
	ScalarOps    int64   `json:"scalar_ops"`
	Atomics      int64   `json:"atomics"`
	AtomicPushes int64   `json:"atomic_pushes"`
	Launches     int64   `json:"launches"`
	Barriers     int64   `json:"barriers"`
	WorkItems    int64   `json:"work_items"`
	LaneUtil     float64 `json:"lane_utilization"`
	Layout       string  `json:"layout"`
	Backend      string  `json:"backend"`
	SellC        int32   `json:"sell_c,omitempty"`
	SellSigma    int32   `json:"sell_sigma,omitempty"`
	SellPadding  float64 `json:"sell_padding_ratio,omitempty"`
	SellColumns  int64   `json:"sell_columns,omitempty"`
	SellFallback float64 `json:"sell_fallback_ratio,omitempty"`
	Checkpoints  int     `json:"checkpoints,omitempty"`
	Rollbacks    int     `json:"rollbacks,omitempty"`
	BadCkpts     int     `json:"bad_checkpoints,omitempty"`
	WastedCycles float64 `json:"wasted_cycles,omitempty"`
	VerifyError  string  `json:"verify_error,omitempty"`
	Verified     bool    `json:"verified"`
}

func emitJSON(benchName string, g *graph.CSR, cfg core.Config, opts opt.Options, res *core.Result, verifyErr string) {
	st := res.Stats
	rep := runReport{
		Benchmark:    benchName,
		Graph:        g.Name,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Machine:      res.Engine.Machine.Name,
		Target:       res.Engine.Target.String(),
		Tasks:        res.Engine.NumTasks,
		Opts:         opts.String(),
		Src:          cfg.Src,
		TimeMS:       res.TimeMS,
		Instructions: st.Instructions,
		VectorOps:    st.VectorOps,
		ScalarOps:    st.ScalarOps,
		Atomics:      st.Atomics,
		AtomicPushes: st.AtomicPushes,
		Launches:     st.Launches,
		Barriers:     st.Barriers,
		WorkItems:    st.WorkItems,
		LaneUtil:     st.LaneUtilization(res.Engine.Width()),
		Layout:       res.Layout,
		Backend:      res.Backend,
		Checkpoints:  res.Recovery.Checkpoints,
		Rollbacks:    res.Recovery.Rollbacks,
		BadCkpts:     res.Recovery.BadCheckpoints,
		WastedCycles: res.Recovery.WastedCycles,
		VerifyError:  verifyErr,
		Verified:     verifyErr == "",
	}
	if sl := res.Sell; sl != nil {
		rep.SellC = sl.C
		rep.SellSigma = sl.Sigma
		rep.SellPadding = sl.PaddingRatio()
		rep.SellColumns = st.SellColumns
		rep.SellFallback = sl.FallbackRatio()
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	fmt.Println(string(out))
}

// startCPUProfile brackets the run itself (not graph generation or
// compilation) so the profile shows where simulated execution spends host
// time. The returned stop function flushes and closes the profile; it must
// run before any os.Exit.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	fail(err)
	fail(pprof.StartCPUProfile(f))
	return func() {
		pprof.StopCPUProfile()
		fail(f.Close())
	}
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fail(err)
	runtime.GC() // materialize the live heap before the snapshot
	fail(pprof.WriteHeapProfile(f))
	fail(f.Close())
}

// applyMutations folds an edge-mutation stream into the loaded graph through
// the delta overlay — the same path the serving daemon uses — so a benchmark
// can run against the post-mutation graph. The stream's final state is what
// matters here; it is applied as one batch and compacted once.
func applyMutations(g *graph.CSR, path string) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ops, err := graph.ParseMutations(f, g.NumNodes())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	d := graph.NewDelta(g, 0)
	if err := d.Apply(graph.Batch{Seq: 1, Ops: ops}); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	mg, err := d.Compact()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "egacs: applied %d mutations (%d edges -> %d)\n",
		len(ops), g.NumEdges(), mg.NumEdges())
	return mg, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "egacs:", err)
		os.Exit(1)
	}
}
