// Command graphgen generates the paper's benchmark input families — road
// networks, RMAT scale-free graphs and uniform random graphs — and writes
// them as DIMACS .gr or edge-list files.
//
// Examples:
//
//	graphgen -family road -w 320 -h 320 -o road.gr
//	graphgen -family rmat -scale 16 -edgefactor 8 -format el -o rmat16.el
//	graphgen -family random -nodes 80000 -edges 640000 -o rand.gr
//	graphgen -family road -o road.gr -mutations 5000 -mut-out road.mut
//
// With -mutations N it additionally emits a seeded, applicable edge-mutation
// stream for the generated graph ("+ src dst [w]" / "- src dst", one op per
// line) — the format POST /mutate and egacs -mutations consume. Deletes
// always target edges that exist at their point in the stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	var (
		family    = flag.String("family", "road", "graph family: road|rmat|random|smallworld|ba")
		width     = flag.Int("w", 320, "road: grid width")
		height    = flag.Int("h", 320, "road: grid height")
		scale     = flag.Int("scale", 16, "rmat: log2 node count")
		edgeF     = flag.Int("edgefactor", 8, "rmat: edges per node")
		nodes     = flag.Int("nodes", 80000, "random: node count")
		edges     = flag.Int("edges", 640000, "random: edge count")
		maxW      = flag.Int("maxw", 64, "maximum edge weight")
		seed      = flag.Uint64("seed", 42, "generator seed")
		format    = flag.String("format", "gr", "output format: gr (DIMACS) | el (edge list) | bin (binary CSR)")
		outFile   = flag.String("o", "", "output file (default stdout)")
		stats     = flag.Bool("stats", false, "print graph statistics to stderr")
		sellC     = flag.Int("sell-c", 16, "stats: SELL slice height C for the padding estimate")
		sellSigma = flag.Int("sell-sigma", 0, "stats: SELL sort window σ (0 = default, negative = whole graph)")

		mutations = flag.Int("mutations", 0, "also emit N edge mutations applicable to the generated graph")
		mutOut    = flag.String("mut-out", "", "mutation stream output file (default stdout; then the graph needs -o)")
		mutDel    = flag.Float64("mut-delete-frac", 0.25, "mutations: fraction that delete a live edge")
		mutSkew   = flag.Float64("mut-skew", 0, "mutations: endpoint skew in [0,1) (0 = uniform, higher = hub-heavy)")
	)
	flag.Parse()

	var g *graph.CSR
	switch *family {
	case "road":
		g = graph.Road(*width, *height, int32(*maxW), *seed)
	case "rmat":
		g = graph.RMAT(*scale, *edgeF, int32(*maxW), *seed)
	case "random":
		g = graph.Random(int32(*nodes), *edges, int32(*maxW), *seed)
	case "smallworld":
		g = graph.SmallWorld(int32(*nodes), *edgeF, 0.1, int32(*maxW), *seed)
	case "ba":
		g = graph.PreferentialAttachment(int32(*nodes), *edgeF, int32(*maxW), *seed)
	default:
		fail(fmt.Errorf("unknown family %q", *family))
	}

	if *stats {
		d := g.DegreeSummary()
		fmt.Fprintf(os.Stderr, "%s: avg degree %.2f, max degree %d (node %d)\n",
			g, g.AvgDegree(), g.MaxDegree(), g.MaxDegreeNode())
		fmt.Fprintf(os.Stderr, "degrees: min %d, median %d, p99 %d, max %d\n",
			d.Min, d.Median, d.P99, d.Max)
		if s, err := graph.BuildSellCS(g, int32(*sellC), int32(*sellSigma)); err == nil {
			fmt.Fprintf(os.Stderr, "sell-%d-σ%d: %.1f%% padding (%.2fx cells), %d slices\n",
				*sellC, *sellSigma, 100*s.PaddingRatio(), s.Overhead(),
				len(s.SlicePtr)-1)
		}
	}

	if *mutations > 0 && *outFile == "" && *mutOut == "" {
		fail(fmt.Errorf("-mutations with both graph and stream on stdout; use -o or -mut-out"))
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		fail(err)
		defer f.Close()
		out = f
	}
	switch *format {
	case "gr":
		fail(graph.WriteDIMACS(out, g))
	case "el":
		fail(graph.WriteEdgeList(out, g))
	case "bin":
		fail(graph.WriteBinary(out, g))
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}

	if *mutations > 0 {
		ops, err := graph.GenMutations(g, *seed, graph.MutGenOptions{
			Count: *mutations, DeleteFrac: *mutDel, Skew: *mutSkew, MaxWeight: int32(*maxW),
		})
		fail(err)
		mout := os.Stdout
		if *mutOut != "" {
			f, err := os.Create(*mutOut)
			fail(err)
			defer f.Close()
			mout = f
		}
		fail(graph.WriteMutations(mout, ops))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
