// Command egacs-bench regenerates the paper's evaluation tables and figures
// (Tables II-VI, IX, X; Figures 4-10) from the simulator. See DESIGN.md for
// the experiment-to-module map and EXPERIMENTS.md for paper-vs-measured
// comparisons.
//
// Examples:
//
//	egacs-bench -list
//	egacs-bench -exp table5
//	egacs-bench -exp all -scale bench -o results.txt
//	egacs-bench -exp fig4 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (table2..table6, table9, fig4..fig10) or 'all'")
		scale      = flag.String("scale", "small", "input scale: test|small|bench")
		quick      = flag.Bool("quick", false, "restrict to three benchmarks for a fast pass")
		backendStr = flag.String("backend", "auto", "kernel backend for simulated runs: interp|compiled|auto (modeled numbers are backend-invariant; this only changes regeneration wall time)")
		layoutStr  = flag.String("layout", "", "comparison arm of the layout experiment: csr|sell|auto (default sell; paper tables always run calibrated csr)")
		sellC      = flag.Int("sell-c", 0, "SELL slice height C for the layout experiment (0 = vector width)")
		sellSigma  = flag.Int("sell-sigma", 0, "SELL degree-sort window σ for the layout experiment (0 = default, negative = whole graph)")
		seed       = flag.Uint64("seed", 42, "graph generator seed")
		outFile    = flag.String("o", "", "write results to file (default stdout)")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file after the runs")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline of experiment wall times to this file")
		metricsOut = flag.String("metrics", "", "write each experiment's headline numbers (registry) as JSONL to this file")
		attribOut  = flag.String("attrib", "", "write a collapsed-stack (flamegraph) cycle-attribution profile of the whole benchmark suite to this file and exit; stacks are kernel/graph;phase;cost-class, '-' prints to stdout")
	)
	flag.Parse()

	if *attribOut != "" {
		if err := writeSuiteAttrib(*attribOut, *scale, *seed, *backendStr, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var sc graph.Scale
	switch *scale {
	case "test":
		sc = graph.ScaleTest
	case "small":
		sc = graph.ScaleSmall
	case "bench":
		sc = graph.ScaleBench
	default:
		fmt.Fprintf(os.Stderr, "egacs-bench: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	layout, err := core.ParseLayout(*layoutStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egacs-bench:", err)
		os.Exit(1)
	}
	backend, err := core.ParseBackend(*backendStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egacs-bench:", err)
		os.Exit(1)
	}
	opts := bench.Options{
		Scale: sc, Seed: *seed, Quick: *quick,
		Layout: layout, SellC: *sellC, SellSigma: *sellSigma,
		Backend: backend,
	}
	if *metricsOut != "" {
		opts.Registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Experiments()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		todo = []bench.Experiment{e}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	for _, e := range todo {
		start := time.Now()
		var traceStart float64
		if tracer != nil {
			traceStart = tracer.HostNow()
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Desc)
		for _, tb := range e.Run(opts) {
			tb.Render(out)
		}
		if tracer != nil {
			tracer.Complete(obs.ProcHost, obs.TidHost, e.ID, traceStart, tracer.HostNow()-traceStart)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d experiment spans -> %s\n", tracer.Len(), *traceOut)
	}
	if opts.Registry != nil {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = opts.Registry.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d observations -> %s\n", opts.Registry.Len(), *metricsOut)
	}

	writeMem(*memProf)
}

// writeSuiteAttrib runs every benchmark of the evaluation on every generated
// input family and folds the per-phase per-cost-class cycle attribution of
// each run into one collapsed-stack profile, stacks rooted at kernel/graph.
// The runs use the cooperative reference scheduler, so the profile is
// bit-reproducible across invocations and machines.
func writeSuiteAttrib(path, scale string, seed uint64, backendStr string, quick bool) error {
	var sc graph.Scale
	switch scale {
	case "test":
		sc = graph.ScaleTest
	case "small":
		sc = graph.ScaleSmall
	case "bench":
		sc = graph.ScaleBench
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	backend, err := core.ParseBackend(backendStr)
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	benches := kernels.All()
	if quick {
		benches = benches[:3]
	}
	stacks := 0
	for _, b := range benches {
		for _, raw := range graph.Suite(sc, seed) {
			g := core.PrepareGraph(b, raw)
			res, err := core.Run(b, g, core.Config{Tasks: 4, HostExec: core.HostCooperative, Backend: backend})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", b.Name, raw.Name, err)
			}
			attr := res.Engine.Attribution()
			attr.Wasted = res.Recovery.WastedCycles
			attr.WriteCollapsed(out, b.Name+"/"+raw.Name)
			stacks += len(attr.Phases)
		}
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "attrib: %d phase stacks -> %s\n", stacks, path)
	}
	return nil
}

func writeMem(memProf string) {
	if memProf != "" {
		f, err := os.Create(memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "egacs-bench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}
