package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/graph"
)

// crashPoints enumerates every named point of the mutation pipeline the
// daemon can be SIGKILLed at, with the hit count that lands mid-stream (the
// snapshot points fire once during store creation, so their second hit is the
// compaction-time write).
var crashPoints = []struct {
	name  string
	count int
}{
	{"append-pre-write", 4},
	{"append-pre-sync", 4},
	{"append-post-sync", 4},
	{"applied", 4},
	{"compact-built", 1},
	{"snapshot-written", 2},
	{"snapshot-renamed", 2},
	{"compact-persisted", 1},
	{"rotate", 1},
	{"pruned", 1},
	{"swap", 1},
}

// TestCrashRecoveryAnywhere is the kill-anywhere harness: for every pipeline
// point it boots the real daemon on a fresh WAL directory, streams mutation
// batches at it until the injected SIGKILL lands, restarts the daemon on the
// same directory, and requires the recovered graph to be bit-identical
// (structural hash) to replaying some acked-or-longer prefix of the exact
// batches sent. An acked batch disappearing, a torn batch surviving, or any
// divergence between replay and the delta overlay fails the hash comparison.
func TestCrashRecoveryAnywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery harness skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "egacs-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The daemon's boot graph (-input road -scale test -seed 7), replicated
	// here so expected post-recovery states can be computed locally.
	base, err := graph.Load("", "road", "test", 7)
	if err != nil {
		t.Fatal(err)
	}
	base.SortAdjacency()
	ops, err := graph.GenMutations(base, 7, graph.MutGenOptions{Count: 24, DeleteFrac: 0.25, MaxWeight: 16})
	if err != nil {
		t.Fatal(err)
	}
	const batchOps = 2
	var batches [][]graph.MutOp
	for i := 0; i < len(ops); i += batchOps {
		batches = append(batches, ops[i:i+batchOps])
	}

	// wantHash[k] is the structural hash after folding the first k batches:
	// the complete set of states a crash at any instant may legally recover
	// to (k below the acked count is an isolation violation, checked later).
	wantHash := make([]uint64, len(batches)+1)
	wantHash[0] = graph.Hash(base)
	d := graph.NewDelta(base, 0)
	for k, b := range batches {
		if err := d.Apply(graph.Batch{Seq: uint64(k + 1), Ops: b}); err != nil {
			t.Fatal(err)
		}
		g, err := d.Compact()
		if err != nil {
			t.Fatal(err)
		}
		wantHash[k+1] = graph.Hash(g)
	}

	for _, pt := range crashPoints {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")

			// Phase 1: boot with the injected crashpoint and stream batches
			// until the SIGKILL lands.
			cmd, base1, stderr1 := startDaemon(t, bin, walDir,
				fmt.Sprintf("EGACS_CRASHPOINT=%s:%d", pt.name, pt.count))
			acked := 0
			for _, b := range batches {
				if postBatch(base1, b) != nil {
					break // daemon died mid-request; the batch is unacked
				}
				acked++
			}
			err := waitExit(cmd, 20*time.Second)
			ws, ok := exitSignal(err)
			if !ok || ws != syscall.SIGKILL {
				t.Fatalf("daemon at %s: exit %v (want SIGKILL)\nstderr: %s", pt.name, err, stderr1.String())
			}
			if acked == len(batches) {
				t.Fatalf("crashpoint %s never fired (all %d batches acked)", pt.name, acked)
			}

			// Phase 2: restart on the same directory; recovery must replay to
			// a bit-identical prefix state covering every acked batch.
			cmd2, base2, stderr2 := startDaemon(t, bin, walDir)
			var gz struct {
				Epoch   uint64 `json:"epoch"`
				Hash    string `json:"hash"`
				LastSeq uint64 `json:"last_seq"`
				Pending int    `json:"pending_batches"`
				Torn    int    `json:"torn_tails_repaired"`
			}
			getGraphz(t, base2, &gz)
			recovered := -1
			for k, h := range wantHash {
				if gz.Hash == fmt.Sprintf("%016x", h) {
					recovered = k
					break
				}
			}
			if recovered < 0 {
				t.Fatalf("recovered hash %s matches no batch prefix (acked %d)\nstderr: %s",
					gz.Hash, acked, stderr2.String())
			}
			if recovered < acked {
				t.Fatalf("durability violation: %d batches acked but state replays only %d", acked, recovered)
			}
			if gz.LastSeq != uint64(recovered) {
				t.Errorf("last_seq %d, want %d (the recovered prefix)", gz.LastSeq, recovered)
			}
			if gz.Pending != 0 {
				t.Errorf("boot compaction left %d pending batches", gz.Pending)
			}
			t.Logf("%s: acked %d, recovered %d/%d batches (epoch %d, %d torn tails repaired)",
				pt.name, acked, recovered, len(batches), gz.Epoch, gz.Torn)

			// The recovered daemon keeps working: one more batch, clean drain.
			if err := postBatch(base2, batches[len(batches)-1]); err != nil {
				t.Errorf("post-recovery mutate: %v", err)
			}
			cmd2.Process.Signal(syscall.SIGTERM)
			if err := waitExit(cmd2, 20*time.Second); err != nil {
				t.Errorf("recovered daemon did not drain cleanly: %v\nstderr: %s", err, stderr2.String())
			}
		})
	}
}

// startDaemon boots the built binary on an ephemeral port with mutations
// enabled on walDir, waits for readiness, and returns the running command,
// base URL and captured stderr. Extra env entries (crashpoint injection) are
// appended to the inherited environment.
func startDaemon(t *testing.T, bin, walDir string, extraEnv ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-input", "road", "-scale", "test", "-seed", "7",
		"-wal-dir", walDir, "-compact-every", "3", "-fsync-every", "1",
		"-drain-timeout", "10s",
	)
	cmd.Env = append(os.Environ(), extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v\nstderr: %s", err, stderr.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "listening on "))
	go io.Copy(io.Discard, stdout)
	base := "http://" + addr
	waitReady(t, base)
	return cmd, base, &stderr
}

// postBatch sends one mutation batch in the text stream format; a nil error
// means the daemon acked it as durable.
func postBatch(base string, ops []graph.MutOp) error {
	var buf bytes.Buffer
	if err := graph.WriteMutations(&buf, ops); err != nil {
		return err
	}
	resp, err := http.Post(base+"/mutate", "text/plain", &buf)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}

func getGraphz(t *testing.T, base string, out any) {
	t.Helper()
	resp, err := http.Get(base + "/graphz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/graphz: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// waitExit waits for the process with a timeout; it returns cmd.Wait's error.
func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("process did not exit within %v", timeout)
	}
}

// exitSignal extracts the terminating signal from a cmd.Wait error.
func exitSignal(err error) (syscall.Signal, bool) {
	ee, ok := err.(*exec.ExitError)
	if !ok {
		return 0, false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() {
		return 0, false
	}
	return ws.Signal(), true
}
