// Command egacs-serve is a long-lived multi-tenant graph-query daemon: it
// loads one graph into a shared read-only CSR and serves concurrent kernel
// queries (BFS/SSSP from arbitrary sources, PageRank top-k, component
// lookups) over HTTP/JSON. Every request runs on a pooled engine through the
// resilient execution chain with its own deadline and budget; admission
// control bounds the work queue with per-tenant caps, and under overload the
// server degrades gracefully (shed verification, then serve scalar, then
// reject with 429/503) instead of falling over.
//
// Examples:
//
//	egacs-serve -addr :8080 -input road -scale small
//	egacs-serve -addr :8080 -graph web.el -max-inflight 8 -tenant-cap 2
//	egacs-serve -addr :8080 -request-log requests.jsonl
//	egacs-serve -addr :8080 -wal-dir /var/lib/egacs   # accept mutations
//	curl 'localhost:8080/query?kind=bfs&src=0&node=25'
//	curl 'localhost:8080/query?kind=pr&k=10'
//	curl 'localhost:8080/metrics'    # Prometheus text exposition
//	curl -X POST localhost:8080/query -d '{"kind":"sssp","src":3,"tenant":"alice"}'
//	curl -X POST localhost:8080/mutate --data-binary $'+ 0 25 3\n- 7 12\n'
//
// With -wal-dir the daemon accepts streaming edge mutations on POST /mutate:
// each batch is validated, appended to a crash-consistent write-ahead log,
// and acked only once durable. Pending batches fold into a fresh serving
// snapshot by periodic compaction (-compact-every), gated by sentinel-query
// validation; queries keep serving the pinned epoch they started on. On boot
// the daemon replays the log — repairing a torn tail, rejecting corruption
// with typed errors — and recovers bit-identical state after any crash.
//
// SIGINT/SIGTERM triggers a graceful drain: readiness flips, new queries get
// 503, in-flight ones finish (up to -drain-timeout, then their budgets are
// cancelled), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
		input     = flag.String("input", "road", "generated input family: road|rmat|random")
		scale     = flag.String("scale", "small", "generated input scale: test|small|bench|large")
		graphFile = flag.String("graph", "", "load graph from file instead (binary CSR, edge list or DIMACS .gr)")
		seed      = flag.Uint64("seed", 42, "generator seed")
		machName  = flag.String("machine", "intel", "machine model queries execute on: intel|amd|phi|gpu")
		tasks     = flag.Int("tasks", 0, "engine task count per request (0 = machine default)")
		backend   = flag.String("backend", "auto", "kernel backend for vector attempts: interp|compiled|auto (auto prefers generated Go and degrades to the interpreter; responses report which backend served)")

		maxInflight = flag.Int("max-inflight", 4, "concurrently executing queries")
		queueDepth  = flag.Int("queue-depth", 8, "queries allowed to wait for a slot before 503")
		tenantCap   = flag.Int("tenant-cap", 0, "in-flight+queued queries per tenant (0 = max-inflight, -1 = unlimited)")

		reqTimeout = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxIters   = flag.Int("max-iters", 1<<20, "iteration budget per pipe loop")
		stallWin   = flag.Int("stall-window", 256, "identical-frontier iterations before non-convergence")
		ckEvery    = flag.Int("checkpoint-every", 16, "checkpoint pipe loops every N iterations (recoverable faults roll back)")
		shedAt     = flag.Float64("shed-verify-at", 0.5, "occupancy at which output verification is shed")
		scalarAt   = flag.Float64("scalar-at", 0.8, "occupancy at which queries serve from the scalar ladder")

		flipProb   = flag.Float64("flip-inject", 0, "chaos: per-request silent bit-flip probability")
		transProb  = flag.Float64("transient-inject", 0, "chaos: per-request transient-fault probability")
		injectSeed = flag.Uint64("inject-seed", 1, "chaos injector seed (per-request seeds derive from it)")

		walDir       = flag.String("wal-dir", "", "enable mutations: durable store directory (created on first boot, recovered on later ones; -input/-graph only seed the first)")
		compactEvery = flag.Int("compact-every", 64, "fold the delta into a fresh snapshot every N mutation batches (<0 = manual /admin/compact only)")
		fsyncEvery   = flag.Int("fsync-every", 1, "fsync the WAL every N batches (group commit; 1 = every batch durable at ack)")

		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain window before in-flight queries are cancelled")
		metricsOut = flag.String("metrics", "", "write the service counter registry as JSONL to this file on shutdown")
		traceOut   = flag.String("trace", "", "write per-request spans as a Chrome trace-event file on shutdown")
		reqLog     = flag.String("request-log", "", "append one structured JSON line per request to this file (\"-\" = stderr); live Prometheus metrics are always at /metrics")
	)
	flag.Parse()

	m, err := machine.ByName(*machName)
	fail(err)
	be, err := core.ParseBackend(*backend)
	fail(err)

	// With -wal-dir an existing store is the source of truth: its snapshot +
	// replayed WAL define the graph, and -input/-graph only seed a first boot.
	var store *graph.MutStore
	var g *graph.CSR
	if *walDir != "" && storeExists(*walDir) {
		store, err = graph.OpenMutStore(*walDir, graph.StoreOptions{FsyncEvery: *fsyncEvery})
		fail(err)
		g = store.Delta().Base()
		st := store.Stats()
		fmt.Fprintf(os.Stderr,
			"egacs-serve: recovered %s: epoch %d, seq %d, replayed %d batches (%d torn tails repaired, %d pending)\n",
			*walDir, st.Epoch, st.LastSeq, st.Replayed, st.Truncated, st.Pending)
	} else {
		g, err = graph.Load(*graphFile, *input, *scale, *seed)
		fail(err)
		g.SortAdjacency()
		if *walDir != "" {
			fail(os.MkdirAll(*walDir, 0o755))
			store, err = graph.CreateMutStore(*walDir, g, graph.StoreOptions{FsyncEvery: *fsyncEvery})
			fail(err)
			g = store.Delta().Base()
			fmt.Fprintf(os.Stderr, "egacs-serve: created mutation store %s\n", *walDir)
		}
	}

	opts := serve.Options{
		Store:           store,
		CompactEvery:    *compactEvery,
		Machine:         m,
		Tasks:           *tasks,
		Backend:         be,
		MaxInflight:     *maxInflight,
		MaxQueue:        *queueDepth,
		TenantCap:       *tenantCap,
		RequestTimeout:  *reqTimeout,
		MaxIters:        *maxIters,
		StallWindow:     *stallWin,
		CheckpointEvery: *ckEvery,
		ShedVerifyAt:    *shedAt,
		ScalarAt:        *scalarAt,
		InjectSeed:      *injectSeed,
	}
	if *flipProb > 0 || *transProb > 0 {
		opts.Inject = &fault.InjectorConfig{BitFlip: *flipProb, Transient: *transProb}
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 18)
		opts.Trace = tracer
	}
	var logFile *os.File
	switch *reqLog {
	case "":
	case "-":
		opts.RequestLog = os.Stderr
	default:
		logFile, err = os.OpenFile(*reqLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		opts.RequestLog = logFile
	}

	s, err := serve.New(g, opts)
	fail(err)

	fmt.Fprintf(os.Stderr, "egacs-serve: graph %s (%d nodes, %d edges) on %s, self-check...\n",
		g.Name, g.NumNodes(), g.NumEdges(), m.Name)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = s.SelfCheck(ctx)
	cancel()
	fail(err)

	// Fold batches replayed from the WAL into the serving snapshot before
	// taking traffic, so a recovered daemon serves (and /graphz reports) the
	// full acked state, not the last compacted epoch.
	if store != nil && store.Stats().Pending > 0 {
		cctx, ccancel := context.WithTimeout(context.Background(), time.Minute)
		epoch, err := s.Compact(cctx)
		ccancel()
		fail(err)
		fmt.Fprintf(os.Stderr, "egacs-serve: boot compaction folded replayed batches, epoch %d\n", epoch)
	}

	ln, err := net.Listen("tcp", *addr)
	fail(err)
	// The bound address on stdout is the daemon's readiness handshake: with
	// -addr :0 the harness reads the ephemeral port from here.
	fmt.Printf("listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "egacs-serve: %v, draining (timeout %v)\n", got, *drainTO)
	case err := <-serveErr:
		fail(err)
	}

	// Drain: stop admitting, let in-flight queries finish, hard-stop
	// stragglers via their budget contexts, then close the listener.
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTO)
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "egacs-serve: %v\n", err)
	}
	dcancel()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "egacs-serve: shutdown: %v\n", err)
	}
	scancel()

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fail(err)
		fail(s.Registry().WriteJSONL(f))
		fail(f.Close())
	}
	if tracer != nil {
		fail(tracer.WriteFile(*traceOut))
	}
	if logFile != nil {
		fail(logFile.Close())
	}
	if store != nil {
		fail(store.Close())
	}
	fmt.Fprintln(os.Stderr, "egacs-serve: drained, bye")
}

// storeExists reports whether dir already holds a mutation store (its
// snapshot file is the marker — an empty or absent dir means first boot).
func storeExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "snapshot.bin"))
	return err == nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "egacs-serve:", err)
		os.Exit(1)
	}
}
