package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end daemon check: build the real binary, boot
// it on an ephemeral port, hit it from concurrent clients with mixed query
// kinds, then SIGTERM it and require a clean graceful drain (exit 0). This is
// the `make serve-smoke` target.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "egacs-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	metrics := filepath.Join(t.TempDir(), "metrics.jsonl")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-input", "road", "-scale", "test",
		"-max-inflight", "4", "-queue-depth", "8",
		"-flip-inject", "0.01", "-transient-inject", "0.01",
		"-metrics", metrics,
		"-wal-dir", filepath.Join(t.TempDir(), "wal"), "-compact-every", "4",
		"-drain-timeout", "10s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The bound address is the readiness handshake on stdout.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v\nstderr: %s", err, stderr.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "listening on "))
	base := "http://" + addr
	go io.Copy(io.Discard, stdout)

	waitReady(t, base)

	const clients = 8
	kinds := []string{
		"/query?kind=bfs&src=0&node=12",
		"/query?kind=sssp&src=3",
		"/query?kind=pr&k=5",
		"/query?kind=cc&node=7",
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(kinds)+16)

	// One writer mutates the graph while the query clients run: every batch
	// must ack durable, and the compactions it trips must never disturb an
	// in-flight query (those hold their pinned snapshot).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			body := fmt.Sprintf("+ %d %d %d\n- %d %d\n", i, i+1, i%7+1, i, i+1)
			resp, err := http.Post(base+"/mutate", "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("mutator batch %d: %v", i, err)
				return
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("mutator batch %d: status %d body %s", i, resp.StatusCode, payload)
				return
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, q := range kinds {
				url := fmt.Sprintf("%s%s&tenant=client%d", base, q, c)
				resp, err := http.Get(url)
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %v", c, i, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var m map[string]any
					if err := json.Unmarshal(body, &m); err != nil {
						errs <- fmt.Errorf("client %d: bad JSON %q: %v", c, body, err)
						return
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusUnprocessableEntity:
					// legal under load / injected faults
				default:
					errs <- fmt.Errorf("client %d: status %d body %s", c, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not drain within 30s\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("expected drain message in stderr, got: %s", stderr.String())
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Errorf("metrics file not written: %v", err)
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}
