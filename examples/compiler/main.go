// Compiler explorer: show what the EGACS compiler does to a kernel — the
// IrGL IR as authored, the optimization passes annotating it, and the ISPC
// source emitted before and after optimization, with the instruction-stream
// consequences measured on a real input.
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/opt"
)

func main() {
	bench, err := kernels.ByName("bfs-cx")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== benchmark: bfs-cx (claim/expand BFS) ===")
	fmt.Println()

	fmt.Println("--- generated ISPC, unoptimized ---")
	fmt.Print(codegen.EmitISPC(bench.Prog))
	fmt.Println()

	allOpts := opt.All()
	optimized := opt.MustApply(bench.Prog, allOpts)
	fmt.Printf("--- generated ISPC after passes [%s] ---\n", allOpts)
	fmt.Print(codegen.EmitISPC(optimized))
	fmt.Println()

	// Measure what the passes bought on a skewed input.
	g := graph.RMAT(12, 8, 16, 5)
	src := g.MaxDegreeNode()
	fmt.Printf("--- effect on %s (src %d) ---\n", g.Name, src)
	fmt.Printf("%-22s %10s %12s %8s %10s\n", "config", "time(ms)", "instrs", "pushes", "launches")
	for _, c := range []struct {
		name string
		o    opt.Options
	}{
		{"unopt", opt.None()},
		{"io", opt.Options{IO: true}},
		{"io+np+cc", opt.Options{IO: true, NP: true, CC: true}},
		{"io+np+cc+fibercc", opt.All()},
	} {
		c := c
		res, err := core.RunVerified(bench, g, core.Config{Opts: &c.o, Src: src})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f %12d %8d %10d\n",
			c.name, res.TimeMS, res.Stats.Instructions,
			res.Stats.AtomicPushes, res.Stats.Launches)
	}
}
