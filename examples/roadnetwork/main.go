// Road-network routing: single-source shortest paths on a weighted planar
// road graph with the near-far worklist kernel, comparing optimization
// levels and tasking systems — the workload family where worklist algorithms
// beat topology-driven ones by an order of magnitude (high diameter, low
// degree).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
)

func main() {
	g := graph.Road(160, 160, 64, 7)
	fmt.Println("road network:", g)

	sssp, err := kernels.ByName("sssp-nf")
	if err != nil {
		log.Fatal(err)
	}
	src := g.MaxDegreeNode()
	m := machine.Intel8()

	// Sweep optimization levels: this is the Fig. 5 story on one input.
	fmt.Println("\noptimization sweep (Intel, 16 tasks):")
	var base float64
	for _, c := range opt.Configs() {
		c := c
		res, err := core.Run(sssp, g, core.Config{Machine: m, Opts: &c.Opts, Src: src})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.TimeMS
		}
		fmt.Printf("  %-18s %8.3f ms  (%.2fx)  atomic pushes: %d\n",
			c.Name, res.TimeMS, base/res.TimeMS, res.Stats.AtomicPushes)
	}

	// Tasking systems matter when iteration outlining is off (Table III).
	fmt.Println("\ntasking systems without iteration outlining:")
	noIO := opt.Options{NP: true, CC: true}
	for _, ts := range spmd.TaskSystems() {
		ts := ts
		res, err := core.Run(sssp, g, core.Config{Machine: m, TaskSys: &ts, Opts: &noIO, Src: src})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %8.3f ms  (%d launches)\n", ts.Name, res.TimeMS, res.Stats.Launches)
	}

	// Route answer: distance distribution.
	res, err := core.RunVerified(sssp, g, core.Config{Machine: m, Src: src})
	if err != nil {
		log.Fatal(err)
	}
	dist := res.Instance.ArrayI("dist")
	var reached int
	var maxD int32
	for _, d := range dist {
		if d != kernels.Inf {
			reached++
			if d > maxD {
				maxD = d
			}
		}
	}
	fmt.Printf("\nreached %d/%d nodes; farthest weighted distance %d\n",
		reached, len(dist), maxD)
}
