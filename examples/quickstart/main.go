// Quickstart: generate a graph, run SIMD BFS through the EGACS pipeline, and
// inspect the results — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
)

func main() {
	// 1. Build an input graph: a 64x64 road network with random weights.
	g := graph.Road(64, 64, 64, 1)
	fmt.Println("input:", g)

	// 2. Pick a benchmark. The suite has the paper's ten kernels; bfs-wl is
	//    the worklist breadth-first search.
	bfs, err := kernels.ByName("bfs-wl")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run with defaults: Intel machine model, avx512-i32x16, 16 pthread
	//    tasks, all optimizations (IO+NP+CC+Fibers).
	src := g.MaxDegreeNode()
	res, err := core.Run(bfs, g, core.Config{Src: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled time: %.3f ms\n", res.TimeMS)
	fmt.Printf("dynamic instructions: %d\n", res.Stats.Instructions)
	fmt.Printf("SIMD lane utilization: %.1f%%\n",
		100*res.Stats.LaneUtilization(res.Engine.Width()))

	// 4. Read the output: BFS levels live in the "lvl" array.
	lvl := res.Instance.ArrayI("lvl")
	far, farLvl := src, int32(0)
	for n, l := range lvl {
		if l != kernels.Inf && l > farLvl {
			far, farLvl = int32(n), l
		}
	}
	fmt.Printf("farthest node from %d: %d at level %d\n", src, far, farLvl)

	// 5. Verify against the serial reference.
	if err := core.Verify(bfs, g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against the serial reference")

	// 6. Compare with the serial build to see what SIMD+MT bought.
	serial, err := core.Run(bfs, g, func() core.Config {
		c := core.SerialConfig(res.Engine.Machine)
		c.Src = src
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup over serial: %.2fx\n", serial.TimeMS/res.TimeMS)
}
