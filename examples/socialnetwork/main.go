// Social-network analytics: PageRank influence scores and community
// structure (connected components) on a scale-free RMAT graph — the skewed
// degree distribution that makes nested parallelism matter — plus a
// CPU-vs-GPU comparison on the same kernels.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
)

func main() {
	g := graph.RMAT(14, 8, 1, 21)
	fmt.Printf("social graph: %s (max degree %d, avg %.1f — heavily skewed)\n",
		g.Name, g.MaxDegree(), g.AvgDegree())

	// --- PageRank: who is influential? ---
	pr, err := kernels.ByName("pr")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunVerified(pr, g, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rank := res.Instance.ArrayF("rank")
	type nr struct {
		n int32
		r float32
	}
	top := make([]nr, 0, len(rank))
	for n, r := range rank {
		top = append(top, nr{int32(n), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Printf("\nPageRank (%.3f ms modeled):\n", res.TimeMS)
	for i := 0; i < 5; i++ {
		fmt.Printf("  #%d node %6d  rank %.6f  out-degree %d\n",
			i+1, top[i].n, top[i].r, g.Degree(top[i].n))
	}

	// --- Communities: connected components on the symmetrized graph. ---
	cc, err := kernels.ByName("cc")
	if err != nil {
		log.Fatal(err)
	}
	sg := core.PrepareGraph(cc, g)
	cres, err := core.RunVerified(cc, sg, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	comp := cres.Instance.ArrayI("comp")
	sizes := map[int32]int{}
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("\nconnected components (%.3f ms): %d components, largest has %d of %d nodes\n",
		cres.TimeMS, len(sizes), largest, len(comp))

	// --- Nested parallelism matters on skewed graphs. ---
	bfs, _ := kernels.ByName("bfs-wl")
	src := g.MaxDegreeNode()
	serialEdges := opt.Options{IO: true, CC: true}
	npEdges := opt.Options{IO: true, CC: true, NP: true}
	r1, err := core.Run(bfs, g, core.Config{Opts: &serialEdges, Src: src})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := core.Run(bfs, g, core.Config{Opts: &npEdges, Src: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBFS lane utilization without NP: %.0f%%, with NP: %.0f%% (speedup %.2fx)\n",
		100*r1.Stats.LaneUtilization(16), 100*r2.Stats.LaneUtilization(16),
		r1.TimeMS/r2.TimeMS)

	// --- Same kernel on the GPU model. ---
	cpuMS := r2.TimeMS
	gres, err := gpusim.Run(bfs, g, gpusim.Options{IncludeTransfer: true, Src: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCPU (Intel %d-core SIMD) %.3f ms vs GPU %.3f ms (%.2f ms of PCIe transfer)\n",
		machine.Intel8().Cores, cpuMS, gres.TimeMS, gres.TransferMS)
}
