package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestTaxonomyUnwrapsToSentinels(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{&BoundsError{Op: "gather", Array: "lvl", Lane: 3, Index: 99, Len: 10}, ErrOutOfBounds},
		{&OverflowError{Worklist: "pipe.out", Size: 8, Push: 4, Cap: 10}, ErrWorklistOverflow},
		{&ConvergenceError{Loop: "loop-wl", Iterations: 52, Window: 16}, ErrNonConvergence},
		{&BudgetError{Resource: "cycles", Limit: 100, Used: 150}, ErrBudgetExceeded},
		{&PanicError{Task: 2, Kernel: "bfs", Iteration: 7, Value: "boom"}, ErrKernelPanic},
	}
	all := []error{ErrOutOfBounds, ErrWorklistOverflow, ErrNonConvergence,
		ErrCorruptGraph, ErrBudgetExceeded, ErrKernelPanic}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%T does not unwrap to %v", c.err, c.sentinel)
		}
		for _, other := range all {
			if other != c.sentinel && errors.Is(c.err, other) {
				t.Errorf("%T wrongly matches %v", c.err, other)
			}
		}
		if c.err.Error() == "" {
			t.Errorf("%T has empty message", c.err)
		}
	}
}

func TestBoundsErrorDetail(t *testing.T) {
	err := &BoundsError{Op: "gather", Array: "lvl", Lane: 5, Index: -3, Len: 64}
	msg := err.Error()
	for _, want := range []string{"gather", "lvl", "lane 5", "-3", "64"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	var be *BoundsError
	if !errors.As(error(err), &be) || be.Lane != 5 {
		t.Error("errors.As lost lane detail")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{GatherIndex: 0.3, ScatterIndex: 0.2, Overflow: 0.1}
	run := func(seed uint64) (string, []int32) {
		in := NewInjector(seed, cfg)
		var got []int32
		for i := 0; i < 200; i++ {
			idx, _ := in.CorruptIndex("gather", "a", i%8, int32(i), 100)
			got = append(got, idx)
			if i%3 == 0 {
				in.CorruptIndex("scatter", "b", i%8, int32(i), 50)
			}
			if i%7 == 0 {
				in.ForceOverflow("wl")
			}
		}
		return in.TraceString(), got
	}
	t1, g1 := run(42)
	t2, g2 := run(42)
	if t1 != t2 {
		t.Fatalf("same seed, different traces:\n%s\nvs\n%s", t1, t2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("same seed, different corruption at %d: %d vs %d", i, g1[i], g2[i])
		}
	}
	if t1 == "" {
		t.Fatal("no faults injected at 30% over 200 draws")
	}
	t3, _ := run(43)
	if t1 == t3 {
		t.Error("different seeds produced identical traces")
	}
}

func TestInjectorReset(t *testing.T) {
	in := NewInjector(7, Config{GatherIndex: 0.5})
	for i := 0; i < 50; i++ {
		in.CorruptIndex("gather", "a", 0, int32(i), 10)
	}
	first := in.TraceString()
	in.Reset()
	for i := 0; i < 50; i++ {
		in.CorruptIndex("gather", "a", 0, int32(i), 10)
	}
	if in.TraceString() != first {
		t.Error("Reset did not rewind the stream")
	}
}

func TestInjectorCorruptsOutOfRange(t *testing.T) {
	in := NewInjector(1, Config{GatherIndex: 1.0})
	for i := 0; i < 64; i++ {
		idx, injected := in.CorruptIndex("gather", "a", 0, 5, 10)
		if !injected {
			t.Fatal("probability 1.0 did not inject")
		}
		if idx >= 0 && idx < 10 {
			t.Fatalf("injected index %d is in range", idx)
		}
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if idx, ok := in.CorruptIndex("gather", "a", 0, 3, 10); ok || idx != 3 {
		t.Error("nil injector corrupted an index")
	}
	if in.ForceOverflow("wl") {
		t.Error("nil injector forced an overflow")
	}
	if in.Trace() != nil {
		t.Error("nil injector has a trace")
	}
}

func TestInjectorCorruptCSR(t *testing.T) {
	in := NewInjector(3, Config{RowPtr: 1.0})
	rp := []int32{0, 2, 4, 6}
	n := in.CorruptCSR(rp, 6)
	if n != len(rp) {
		t.Fatalf("corrupted %d of %d entries at probability 1", n, len(rp))
	}
	for i, v := range rp {
		if v <= 6 {
			t.Errorf("entry %d = %d not driven past edge count", i, v)
		}
	}
}

func TestBudgetChecks(t *testing.T) {
	var zero Budget
	if zero.Enabled() {
		t.Error("zero budget reports enabled")
	}
	if zero.CheckCtx() != nil || zero.CheckCycles(1e18) != nil || zero.CheckIters(1<<30) != nil {
		t.Error("zero budget enforces limits")
	}

	b := Budget{MaxIters: 10, MaxCycles: 100}
	if err := b.CheckIters(10); err != nil {
		t.Errorf("at-limit iters rejected: %v", err)
	}
	if err := b.CheckIters(11); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("over-limit iters: %v", err)
	}
	if err := b.CheckCycles(101); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("over-limit cycles: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := Budget{Ctx: ctx}
	if err := d.CheckCtx(); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("cancelled ctx: %v", err)
	}
	var be *BudgetError
	if err := d.CheckCtx(); !errors.As(err, &be) || be.Resource != "deadline" {
		t.Error("deadline violation missing resource detail")
	}
}
