package fault

import (
	"context"
)

// Budget bounds one run of the execution engine. The zero value disables all
// limits. Budgets are enforced at launch boundaries and pipe-loop heads, the
// natural preemption points of the cooperative engine.
type Budget struct {
	// MaxIters caps the iteration count of any single pipe loop; exceeding
	// it yields a BudgetError("iterations"). 0 disables.
	MaxIters int
	// MaxCycles caps total modeled core cycles; exceeding it yields a
	// BudgetError("cycles"). 0 disables.
	MaxCycles float64
	// StallWindow arms the non-convergence watchdog: if a worklist loop's
	// frontier is bit-identical for this many consecutive iterations the run
	// aborts with a ConvergenceError. 0 disables.
	StallWindow int
	// Ctx carries a wall-clock deadline or cancellation; a done context
	// yields a BudgetError("deadline"). nil disables.
	Ctx context.Context
}

// Enabled reports whether any limit is armed.
func (b Budget) Enabled() bool {
	return b.MaxIters > 0 || b.MaxCycles > 0 || b.StallWindow > 0 || b.Ctx != nil
}

// CheckCtx returns a typed error when the budget's context is done.
func (b Budget) CheckCtx() error {
	if b.Ctx == nil {
		return nil
	}
	if err := b.Ctx.Err(); err != nil {
		return &BudgetError{Resource: "deadline", Cause: err}
	}
	return nil
}

// CheckCycles returns a typed error when used modeled cycles exceed the cap.
func (b Budget) CheckCycles(used float64) error {
	if b.MaxCycles > 0 && used > b.MaxCycles {
		return &BudgetError{Resource: "cycles", Limit: b.MaxCycles, Used: used}
	}
	return nil
}

// CheckIters returns a typed error when a loop's iteration count exceeds the
// cap.
func (b Budget) CheckIters(iters int) error {
	if b.MaxIters > 0 && iters > b.MaxIters {
		return &BudgetError{Resource: "iterations", Limit: float64(b.MaxIters), Used: float64(iters)}
	}
	return nil
}
