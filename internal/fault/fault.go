// Package fault defines the failure model of the EGACS execution stack: a
// typed error taxonomy shared by the vector primitives, worklists, SPMD
// engine and compiled pipelines; a seeded deterministic fault injector that
// exercises every failure path without real corruption; and run budgets for
// bounded execution.
//
// The taxonomy is sentinel-based: rich error types (BoundsError,
// OverflowError, ...) unwrap to the matching sentinel, so callers match with
// errors.Is(err, fault.ErrOutOfBounds) and recover detail with errors.As.
package fault

import (
	"errors"
	"fmt"
)

// Sentinel errors of the taxonomy. Every failure surfaced by the execution
// stack wraps exactly one of these.
var (
	// ErrOutOfBounds: a gather/scatter/packed-store index or scalar access
	// left the bound array's range.
	ErrOutOfBounds = fmt.Errorf("out-of-bounds access")
	// ErrWorklistOverflow: a worklist push exceeded capacity with growth
	// disabled.
	ErrWorklistOverflow = fmt.Errorf("worklist overflow")
	// ErrNonConvergence: a pipe loop stalled — the frontier made no progress
	// across the configured watchdog window.
	ErrNonConvergence = fmt.Errorf("non-convergence")
	// ErrCorruptGraph: a CSR failed structural validation (non-monotone row
	// pointers, out-of-range edge destinations, inconsistent counts).
	ErrCorruptGraph = fmt.Errorf("corrupt graph")
	// ErrBudgetExceeded: a run budget (iterations, modeled cycles, wall-clock
	// deadline) was exhausted.
	ErrBudgetExceeded = fmt.Errorf("budget exceeded")
	// ErrKernelPanic: a task body panicked with a value the engine does not
	// recognize as a typed failure; the panic was recovered into an error.
	ErrKernelPanic = fmt.Errorf("kernel panic")
	// ErrInvariantViolation: a checkpoint-time validator found live state
	// inconsistent with the kernel's algorithmic invariants (e.g. a BFS
	// level that increased) — the signature of silent data corruption.
	ErrInvariantViolation = fmt.Errorf("invariant violation")
	// ErrTransientFault: an injected detected-but-uncorrupting soft error
	// (the model of an ECC machine-check abort): the affected execution must
	// be discarded, but no state was corrupted.
	ErrTransientFault = fmt.Errorf("transient fault")
	// ErrWALCorrupt: a write-ahead-log record failed structural validation
	// during replay (checksum mismatch mid-log, bad op code, out-of-range
	// node id, batch-sequence gap). Distinct from a torn tail, which is the
	// expected signature of a crash mid-append and is repaired by
	// truncation, not reported as corruption.
	ErrWALCorrupt = fmt.Errorf("corrupt write-ahead log")
)

// Recoverable reports whether a checkpointed run may retry the failed
// execution from its last verified checkpoint. Transient classes — injected
// or data-dependent faults that a re-execution can clear — are recoverable;
// deterministic exhaustion (budgets, stalled loops) and structural input
// corruption re-fail identically and escalate to the fallback ladder
// directly.
func Recoverable(err error) bool {
	return errors.Is(err, ErrOutOfBounds) ||
		errors.Is(err, ErrWorklistOverflow) ||
		errors.Is(err, ErrInvariantViolation) ||
		errors.Is(err, ErrTransientFault) ||
		errors.Is(err, ErrKernelPanic)
}

// BoundsError reports an out-of-range memory-primitive index with lane
// detail. Lane is -1 for uniform scalar accesses.
type BoundsError struct {
	Op    string // "gather", "scatter", "packed-store", "vload", "scalar-load", ...
	Array string // backing array name, when known
	Lane  int    // SIMD lane of the offending index; -1 for scalar ops
	Index int32  // the offending element index
	Len   int    // length of the addressed array
}

func (e *BoundsError) Error() string {
	where := e.Op
	if e.Array != "" {
		where += " " + e.Array
	}
	if e.Lane >= 0 {
		return fmt.Sprintf("%s: lane %d index %d outside [0,%d): %v",
			where, e.Lane, e.Index, e.Len, ErrOutOfBounds)
	}
	return fmt.Sprintf("%s: index %d outside [0,%d): %v", where, e.Index, e.Len, ErrOutOfBounds)
}

func (e *BoundsError) Unwrap() error { return ErrOutOfBounds }

// OverflowError reports a worklist capacity violation.
type OverflowError struct {
	Worklist string
	Size     int32 // items currently in the list
	Push     int32 // items the failing operation tried to add
	Cap      int32
	Injected bool // true when forced by a fault injector
}

func (e *OverflowError) Error() string {
	suffix := ""
	if e.Injected {
		suffix = " (injected)"
	}
	return fmt.Sprintf("worklist %s: %d + %d > cap %d%s: %v",
		e.Worklist, e.Size, e.Push, e.Cap, suffix, ErrWorklistOverflow)
}

func (e *OverflowError) Unwrap() error { return ErrWorklistOverflow }

// ConvergenceError reports a stalled pipe loop: the frontier signature was
// unchanged for Window consecutive iterations.
type ConvergenceError struct {
	Loop       string // pipe-loop kind, e.g. "loop-wl"
	Iterations int    // iterations completed when the watchdog fired
	Window     int    // configured stall window
}

func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%s: frontier unchanged for %d iterations (after %d total): %v",
		e.Loop, e.Window, e.Iterations, ErrNonConvergence)
}

func (e *ConvergenceError) Unwrap() error { return ErrNonConvergence }

// BudgetError reports an exhausted run budget.
type BudgetError struct {
	Resource string  // "iterations", "cycles" or "deadline"
	Limit    float64 // configured limit (0 for deadline)
	Used     float64 // consumption when the check fired
	Cause    error   // underlying context error for deadline violations
}

func (e *BudgetError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%s budget: %v: %v", e.Resource, e.Cause, ErrBudgetExceeded)
	}
	return fmt.Sprintf("%s budget: used %g of %g: %v", e.Resource, e.Used, e.Limit, ErrBudgetExceeded)
}

// Unwrap exposes both the sentinel and, for deadline violations, the
// underlying context error — so errors.Is can distinguish an expired
// deadline (context.DeadlineExceeded) from a caller hang-up
// (context.Canceled), which a serving layer maps to different statuses.
func (e *BudgetError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrBudgetExceeded, e.Cause}
	}
	return []error{ErrBudgetExceeded}
}

// PanicError is a recovered task panic, carrying the task index, the kernel
// (phase) being executed and the pipe iteration at the time of the panic.
type PanicError struct {
	Task      int
	Kernel    string
	Iteration int64
	Value     any // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d (kernel %q, iteration %d) panicked: %v: %v",
		e.Task, e.Kernel, e.Iteration, e.Value, ErrKernelPanic)
}

func (e *PanicError) Unwrap() error { return ErrKernelPanic }

// InvariantError reports a kernel-invariant violation found by a
// checkpoint-time validator. Index is the offending element, -1 for
// scalar or frontier-level violations.
type InvariantError struct {
	Kernel string // benchmark name, e.g. "bfs-wl"
	Rule   string // violated rule, e.g. "lvl-monotone"
	Array  string // array the rule constrains, "" for frontier rules
	Index  int    // offending element index, -1 when not element-addressed
	Detail string // human-readable specifics (values involved)
}

func (e *InvariantError) Error() string {
	where := e.Array
	if where == "" {
		where = "frontier"
	}
	if e.Index >= 0 {
		where = fmt.Sprintf("%s[%d]", where, e.Index)
	}
	return fmt.Sprintf("%s: rule %s at %s: %s: %v",
		e.Kernel, e.Rule, where, e.Detail, ErrInvariantViolation)
}

func (e *InvariantError) Unwrap() error { return ErrInvariantViolation }

// TransientError is an injected soft error raised at a pipe-loop fault
// window: detected by the (modeled) hardware, corrupting nothing, and
// clearing on re-execution — the canonical checkpoint/rollback customer.
type TransientError struct {
	Site string // pipe-loop window that raised it
	Seq  int    // injection sequence number
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("injected transient fault #%d at %s: %v", e.Seq, e.Site, ErrTransientFault)
}

func (e *TransientError) Unwrap() error { return ErrTransientFault }

// WALError reports structural corruption found while replaying a
// write-ahead delta log: the record that failed, where it sits in the file,
// and which rule it broke. It wraps ErrWALCorrupt.
type WALError struct {
	Record int    // 0-based record index in the log
	Offset int64  // byte offset of the record header
	Rule   string // violated rule: "crc", "op", "range", "seq-gap", "length"
	Detail string // human-readable specifics
}

func (e *WALError) Error() string {
	return fmt.Sprintf("wal record %d at offset %d: rule %s: %s: %v",
		e.Record, e.Offset, e.Rule, e.Detail, ErrWALCorrupt)
}

func (e *WALError) Unwrap() error { return ErrWALCorrupt }
