package fault

import (
	"fmt"
	"strings"
)

// InjectorConfig sets per-site fault probabilities in [0,1].
type InjectorConfig struct {
	// GatherIndex is the per-active-lane probability that a gather index is
	// driven out of the addressed array's range.
	GatherIndex float64
	// ScatterIndex is the same for scatter (and per-lane atomic) indices.
	ScatterIndex float64
	// RowPtr is the per-entry probability that CorruptCSR flips a row
	// pointer.
	RowPtr float64
	// Overflow is the per-check probability that a worklist room check is
	// forced to report overflow.
	Overflow float64
	// BitFlip is the per-array, per-fault-window probability that one bit of
	// one live array element is flipped upward — silent corruption that no
	// error path reports, detectable only by invariant validation. Flips are
	// applied at barrier-consistent single-writer windows, so they are
	// deterministic in every execution mode.
	BitFlip float64
	// Transient is the per-fault-window probability of raising a typed
	// transient fault (a modeled ECC machine-check): detected, uncorrupting,
	// and clearing on re-execution.
	Transient float64
	// WALTear, WALFlip, WALTrunc and WALDup are the write-ahead-log
	// corruption classes, applied to encoded delta-log bytes by CorruptWAL:
	// a torn final record (crash mid-append), a flipped bit inside a record
	// (media corruption → CRC mismatch), a truncated tail (lost final
	// sync), and a duplicated batch record (replayed append). Probabilities
	// are per-call; classes are checked in that order and at most one fires.
	WALTear  float64
	WALFlip  float64
	WALTrunc float64
	WALDup   float64
}

// Event is one injected fault, in injection order.
type Event struct {
	Seq  int    // 0-based injection sequence number
	Kind string // "gather", "scatter", "rowptr", "overflow"
	Site string // array or worklist name
	Lane int    // SIMD lane, -1 when not lane-addressed
	Old  int32  // value before corruption (0 for overflow)
	New  int32  // injected value (0 for overflow)
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s@%s lane=%d %d->%d", e.Seq, e.Kind, e.Site, e.Lane, e.Old, e.New)
}

// Injector is a seeded deterministic fault injector. Given the same seed,
// configuration and (deterministic) execution, it corrupts the same sites in
// the same order, so every failure is reproducible from its seed. A nil
// *Injector is valid and injects nothing.
type Injector struct {
	icfg  InjectorConfig
	seed  uint64
	state uint64
	trace []Event
}

// Config is an alias of InjectorConfig, the conventional name at call sites
// (fault.Config{...}).
type Config = InjectorConfig

// NewInjector returns an injector over a splitmix64 stream seeded with seed.
func NewInjector(seed uint64, cfg Config) *Injector {
	return &Injector{icfg: cfg, seed: seed, state: seed}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// Reset rewinds the random stream to the seed and clears the trace, so a
// second identically-ordered run reproduces the same faults.
func (in *Injector) Reset() {
	in.state = in.seed
	in.trace = nil
}

// Trace returns the injected faults so far, in order.
func (in *Injector) Trace() []Event {
	if in == nil {
		return nil
	}
	return append([]Event(nil), in.trace...)
}

// TraceString renders the trace one event per line (for golden comparisons).
func (in *Injector) TraceString() string {
	if in == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range in.trace {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one uniform [0,1) variate and compares against p.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(in.next()>>11)/(1<<53) < p
}

func (in *Injector) record(kind, site string, lane int, old, new int32) {
	in.trace = append(in.trace, Event{
		Seq: len(in.trace), Kind: kind, Site: site, Lane: lane, Old: old, New: new,
	})
}

// CorruptIndex possibly replaces one memory-primitive index with an
// out-of-range value. kind is "gather" or "scatter" (selecting the configured
// probability), site names the addressed array, lane the SIMD lane, idx the
// genuine index and n the array length. It reports whether injection
// happened. Each call with an applicable probability advances the random
// stream exactly once (plus once more on injection), keeping traces aligned
// across runs.
func (in *Injector) CorruptIndex(kind, site string, lane int, idx int32, n int) (int32, bool) {
	if in == nil {
		return idx, false
	}
	var p float64
	switch kind {
	case "gather":
		p = in.icfg.GatherIndex
	case "scatter":
		p = in.icfg.ScatterIndex
	}
	if p <= 0 || !in.chance(p) {
		return idx, false
	}
	// Out-of-range replacement: past the end, or negative every 4th draw.
	d := in.next()
	bad := int32(n) + int32(d%13)
	if d%4 == 0 {
		bad = -1 - int32(d%7)
	}
	in.record(kind, site, lane, idx, bad)
	return bad, true
}

// ForceOverflow reports whether a worklist room check should be forced to
// fail, simulating exhaustion of the list's backing storage.
func (in *Injector) ForceOverflow(site string) bool {
	if in == nil || in.icfg.Overflow <= 0 {
		return false
	}
	if !in.chance(in.icfg.Overflow) {
		return false
	}
	in.record("overflow", site, -1, 0, 0)
	return true
}

// FlipBits possibly flips one clear low bit (bits 0..29) of one element of
// vals, strictly increasing the stored value — the silent-corruption class.
// The bit range keeps flipped values above the element's true value but lets
// them land either side of the Inf = 1<<30 sentinel, so both range and
// monotonicity invariants get exercised. Returns the flipped index and
// whether a flip happened. Call only from single-writer windows: the flip
// mutates vals in place without synchronization.
func (in *Injector) FlipBits(site string, vals []int32) (int, bool) {
	if in == nil || in.icfg.BitFlip <= 0 || len(vals) == 0 {
		return 0, false
	}
	if !in.chance(in.icfg.BitFlip) {
		return 0, false
	}
	idx := int(in.next() % uint64(len(vals)))
	old := vals[idx]
	bit := uint(in.next() % 30)
	flipped := old
	for tries := 0; tries < 30; tries++ {
		if flipped&(1<<bit) == 0 {
			flipped |= 1 << bit
			break
		}
		bit = (bit + 1) % 30
	}
	if flipped == old {
		// All 30 low bits already set: push past the Inf sentinel instead.
		flipped |= 1 << 30
	}
	if flipped == old {
		return 0, false
	}
	vals[idx] = flipped
	in.record("bitflip", site, idx, old, flipped)
	return idx, true
}

// TransientFault possibly raises a typed transient fault at a pipe-loop
// fault window. The returned error (nil when nothing fired) corrupts no
// state; a rolled-back re-execution draws fresh variates and typically
// proceeds.
func (in *Injector) TransientFault(site string) error {
	if in == nil || in.icfg.Transient <= 0 {
		return nil
	}
	if !in.chance(in.icfg.Transient) {
		return nil
	}
	in.record("transient", site, -1, 0, 0)
	return &TransientError{Site: site, Seq: len(in.trace) - 1}
}

// LiveOnly reports whether the configuration injects mid-segment faults that
// require the live scheduler. Gather/scatter index corruption draws one
// variate per memory access, so the draw order depends on intra-segment
// execution order — only the live cooperative schedule makes that
// deterministic. Overflow checks draw at segment boundaries (worklist
// materialization runs in task order in every mode), and bit-flip/transient
// windows are single-writer by construction, so those classes keep the
// configured execution mode.
func (in *Injector) LiveOnly() bool {
	if in == nil {
		return false
	}
	return in.icfg.GatherIndex > 0 || in.icfg.ScatterIndex > 0
}

// CorruptCSR flips row-pointer entries of the given arrays in place with the
// configured RowPtr probability and returns the number of corruptions. The
// caller owns the (typically copied) slices; pair with CSR.Validate to
// exercise ErrCorruptGraph paths.
func (in *Injector) CorruptCSR(rowPtr []int32, numEdges int32) int {
	if in == nil || in.icfg.RowPtr <= 0 {
		return 0
	}
	count := 0
	for i := range rowPtr {
		if !in.chance(in.icfg.RowPtr) {
			continue
		}
		old := rowPtr[i]
		bad := numEdges + 1 + int32(in.next()%64)
		rowPtr[i] = bad
		in.record("rowptr", "rowptr", i, old, bad)
		count++
	}
	return count
}

// WAL corruption class names, as reported by CorruptWAL and recorded in the
// injection trace.
const (
	WALTornRecord = "wal-torn-record"
	WALBitFlip    = "wal-bitflip"
	WALTruncTail  = "wal-truncated-tail"
	WALDupBatch   = "wal-duplicated-batch"
)

// CorruptWAL applies at most one configured WAL corruption class to a copy
// of an encoded delta-log byte stream. offsets holds the start offset of
// every record in data (ascending; the final record ends at len(data)).
// Returns the corrupted copy and the class that fired ("" and the original
// slice when none did). The classes model distinct failure signatures:
//
//	torn record     the final record is cut mid-bytes — the crash-mid-append
//	                shape replay must repair by truncation, silently
//	bit flip        one bit inside a record payload flips — replay must
//	                surface a typed CRC error (or truncate, when the flip
//	                lands in the final record and is indistinguishable from
//	                a torn write)
//	truncated tail  trailing bytes vanish — same repair contract as torn
//	duplicated batch one full record appears twice in a row — replay must
//	                apply it exactly once (idempotent by batch sequence)
func (in *Injector) CorruptWAL(data []byte, offsets []int) ([]byte, string) {
	if in == nil || len(data) == 0 || len(offsets) == 0 {
		return data, ""
	}
	switch {
	case in.chance(in.icfg.WALTear):
		last := offsets[len(offsets)-1]
		if last >= len(data)-1 {
			return data, ""
		}
		cut := last + 1 + int(in.next()%uint64(len(data)-last-1))
		in.record(WALTornRecord, "wal", -1, int32(len(data)), int32(cut))
		return append([]byte(nil), data[:cut]...), WALTornRecord
	case in.chance(in.icfg.WALFlip):
		out := append([]byte(nil), data...)
		i := int(in.next() % uint64(len(out)))
		bit := byte(1) << (in.next() % 8)
		out[i] ^= bit
		in.record(WALBitFlip, "wal", i, int32(out[i]^bit), int32(out[i]))
		return out, WALBitFlip
	case in.chance(in.icfg.WALTrunc):
		n := 1 + int(in.next()%8)
		if n >= len(data) {
			n = len(data) - 1
		}
		in.record(WALTruncTail, "wal", -1, int32(len(data)), int32(len(data)-n))
		return append([]byte(nil), data[:len(data)-n]...), WALTruncTail
	case in.chance(in.icfg.WALDup):
		i := int(in.next() % uint64(len(offsets)))
		end := len(data)
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		rec := data[offsets[i]:end]
		out := make([]byte, 0, len(data)+len(rec))
		out = append(out, data[:end]...)
		out = append(out, rec...)
		out = append(out, data[end:]...)
		in.record(WALDupBatch, "wal", i, int32(len(data)), int32(len(out)))
		return out, WALDupBatch
	}
	return data, ""
}
