package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestBudgetEdgeCases pins the degenerate budget configurations: zero and
// negative deadlines must report exhaustion immediately, a zero cycle budget
// means "disabled" (never exceeded, however many cycles were used), and the
// boundary value itself is within budget (the checks are strict-greater).
func TestBudgetEdgeCases(t *testing.T) {
	past := time.Now().Add(-time.Hour)
	now := time.Now()
	cases := []struct {
		name        string
		budget      func() (Budget, context.CancelFunc)
		checkCycles float64 // argument to CheckCycles; NaN-free sentinel -1 skips
		checkIters  int     // argument to CheckIters; -1 skips
		wantCtxErr  bool
		wantCycErr  bool
		wantIterErr bool
		wantEnabled bool
	}{
		{
			name: "zero deadline (already expired)",
			budget: func() (Budget, context.CancelFunc) {
				ctx, cancel := context.WithDeadline(context.Background(), now)
				return Budget{Ctx: ctx}, cancel
			},
			checkCycles: -1, checkIters: -1,
			wantCtxErr: true, wantEnabled: true,
		},
		{
			name: "negative deadline (in the past)",
			budget: func() (Budget, context.CancelFunc) {
				ctx, cancel := context.WithDeadline(context.Background(), past)
				return Budget{Ctx: ctx}, cancel
			},
			checkCycles: -1, checkIters: -1,
			wantCtxErr: true, wantEnabled: true,
		},
		{
			name: "zero cycle budget disables the cap",
			budget: func() (Budget, context.CancelFunc) {
				return Budget{MaxCycles: 0}, func() {}
			},
			checkCycles: 1e18, checkIters: -1,
			wantCycErr: false, wantEnabled: false,
		},
		{
			name: "cycle budget boundary is inclusive",
			budget: func() (Budget, context.CancelFunc) {
				return Budget{MaxCycles: 100}, func() {}
			},
			checkCycles: 100, checkIters: -1,
			wantCycErr: false, wantEnabled: true,
		},
		{
			name: "zero iteration budget disables the cap",
			budget: func() (Budget, context.CancelFunc) {
				return Budget{MaxIters: 0}, func() {}
			},
			checkCycles: -1, checkIters: 1 << 30,
			wantIterErr: false, wantEnabled: false,
		},
		{
			name: "stall window of 1 arms the watchdog",
			budget: func() (Budget, context.CancelFunc) {
				return Budget{StallWindow: 1}, func() {}
			},
			checkCycles: -1, checkIters: -1,
			wantEnabled: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, cancel := tc.budget()
			defer cancel()
			if got := b.Enabled(); got != tc.wantEnabled {
				t.Errorf("Enabled() = %v, want %v", got, tc.wantEnabled)
			}
			if err := b.CheckCtx(); (err != nil) != tc.wantCtxErr {
				t.Errorf("CheckCtx() = %v, want error=%v", err, tc.wantCtxErr)
			} else if err != nil && !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("CheckCtx() error %v is not ErrBudgetExceeded", err)
			}
			if tc.checkCycles >= 0 {
				if err := b.CheckCycles(tc.checkCycles); (err != nil) != tc.wantCycErr {
					t.Errorf("CheckCycles(%v) = %v, want error=%v", tc.checkCycles, err, tc.wantCycErr)
				}
			}
			if tc.checkIters >= 0 {
				if err := b.CheckIters(tc.checkIters); (err != nil) != tc.wantIterErr {
					t.Errorf("CheckIters(%v) = %v, want error=%v", tc.checkIters, err, tc.wantIterErr)
				}
			}
		})
	}
}

// drive pushes the injector through a fixed mixed sequence of injection sites
// and returns the values it produced, exercising every corruption class.
func drive(in *Injector) []int32 {
	var out []int32
	vals := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	for i := 0; i < 64; i++ {
		idx, _ := in.CorruptIndex("gather", "dist", i%8, int32(i), 100)
		out = append(out, idx)
		idx, _ = in.CorruptIndex("scatter", "comp", i%8, int32(i), 100)
		out = append(out, idx)
		if in.ForceOverflow("wl") {
			out = append(out, -1)
		}
		if fi, ok := in.FlipBits("dist", vals); ok {
			out = append(out, vals[fi])
		}
		if err := in.TransientFault("loop-wl"); err != nil {
			out = append(out, -2)
		}
	}
	return out
}

// TestInjectorSeedReproducible pins the injector's determinism contract: the
// same seed and configuration produce bit-identical injection decisions and
// traces across fresh injectors and across Reset, and a different seed
// produces a different stream.
func TestInjectorSeedReproducible(t *testing.T) {
	cfg := Config{GatherIndex: 0.1, ScatterIndex: 0.1, Overflow: 0.05, BitFlip: 0.2, Transient: 0.1}

	a := NewInjector(99, cfg)
	b := NewInjector(99, cfg)
	outA, outB := drive(a), drive(b)
	if !reflect.DeepEqual(outA, outB) {
		t.Error("two injectors with the same seed diverged")
	}
	if a.TraceString() != b.TraceString() {
		t.Error("same-seed traces differ")
	}
	if len(a.Trace()) == 0 {
		t.Fatal("no injections occurred; the reproducibility check is vacuous")
	}

	// Reset rewinds the stream: a second drive reproduces the first exactly.
	firstTrace := a.TraceString()
	a.Reset()
	if len(a.Trace()) != 0 {
		t.Error("Reset did not clear the trace")
	}
	if out2 := drive(a); !reflect.DeepEqual(outA, out2) {
		t.Error("drive after Reset diverged from the first drive")
	}
	if a.TraceString() != firstTrace {
		t.Error("trace after Reset diverged from the first trace")
	}

	// A different seed must give a different stream (with overwhelming
	// probability over 64 rounds of multi-site draws).
	c := NewInjector(100, cfg)
	if reflect.DeepEqual(outA, drive(c)) && a.TraceString() == c.TraceString() {
		t.Error("different seeds produced identical injection streams")
	}

	if a.Seed() != 99 || c.Seed() != 100 {
		t.Errorf("Seed() accessors wrong: %d, %d", a.Seed(), c.Seed())
	}
}
