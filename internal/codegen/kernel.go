package codegen

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// MaxFibersPerTask bounds fiber-specific state, set empirically in the paper
// to 256 (Section III-B1). It is a variable so the ablation experiments can
// sweep it; production code treats it as a constant.
var MaxFibersPerTask int32 = 256

// BigDegreeFactor: edge loops of nodes with at least BigDegreeFactor*W edges
// are vectorized whole; smaller nodes go through the packed fine-grained
// scheduler. Swept by the ablation experiments.
var BigDegreeFactor = 1

// kernelCode is one compiled kernel.
type kernelCode struct {
	prog *ir.Program
	k    *ir.Kernel

	nI, nF, nM int
	itemSlot   int

	// sellCapable is true when at least one ForEdges of this kernel
	// compiled a SELL-C-σ dense variant (domain sweep over its own item
	// variable); the layout policy only attaches a SELL layout to programs
	// with at least one such kernel.
	sellCapable bool

	// usesPush is true when the kernel body contains any worklist push.
	// Push-free kernels are declared stage-free to the engine at launch
	// (TaskCtx.MarkStageFree), letting cooperative deferred segments probe
	// the cache during execution instead of recording an access trace.
	usesPush bool

	body exec

	// frames pools register frames across tasks and launches; register
	// layout is per-kernel, so the pool lives here.
	frames sync.Pool
}

func compileKernel(prog *ir.Program, k *ir.Kernel) (*kernelCode, error) {
	c := &kcompiler{
		prog:  prog,
		k:     k,
		slotI: map[string]int{},
		slotF: map[string]int{},
		slotM: map[string]int{},
	}
	itemSlot := c.declare(k.ItemVar, ir.I32)
	body, err := c.compileStmts(k.Body)
	if err != nil {
		return nil, err
	}
	if k.FiberCC {
		// Fiber-level CC reserves once from the pipeline out-list, so all
		// pushes must target it.
		var bad bool
		ir.WalkStmts(k.Body, func(s ir.Stmt) {
			if p, ok := s.(*ir.Push); ok && p.WL != "out" {
				bad = true
			}
		})
		if bad {
			return nil, c.errf("fiber-level CC requires all pushes to target the pipeline worklist")
		}
	}
	usesPush := false
	ir.WalkStmts(k.Body, func(s ir.Stmt) {
		if _, ok := s.(*ir.Push); ok {
			usesPush = true
		}
	})
	return &kernelCode{
		prog: prog, k: k,
		nI: c.nI, nF: c.nF, nM: c.nM,
		itemSlot:    itemSlot,
		sellCapable: c.hasSell,
		usesPush:    usesPush,
		body:        body,
	}, nil
}

// totalRegs is the live register estimate used to cost NP lane shuffles.
func (kc *kernelCode) totalRegs() int { return kc.nI + kc.nF + kc.nM }

// runTask executes the kernel for one task's slice of the domain. It is
// called from both launch-per-iteration and outlined drivers.
func (kc *kernelCode) runTask(in *Instance, tc *spmd.TaskCtx) {
	if !kc.usesPush {
		// Push-free kernel: this segment stages nothing, so cooperative
		// deferred tasks may cost accesses immediately (see MarkStageFree).
		// Declared here, before the first access of the segment, for both
		// backends — the dispatch below shares the segment's costing mode.
		tc.MarkStageFree()
	}
	if fn := in.compiledFns[kc.k.Name]; fn != nil {
		// Generated backend: same phase marking, work accounting and
		// primitive order as the interpreter path below, emitted as
		// specialized straight-line Go (see internal/codegen/gogen).
		fn(in.binding, tc)
		return
	}
	tc.MarkPhase(kc.k.Name)
	W := tc.Width
	var n int32
	if kc.k.Domain == ir.DomainNodes {
		n = in.G.NumNodes()
	} else {
		n = in.wl.In.SizeCounted(tc)
	}
	if n == 0 {
		return
	}
	// Work is dealt in whole SIMD-width chunks (ISPC's foreach carves
	// W-aligned blocks): small frontiers leave trailing tasks idle rather
	// than fragmenting every task's chunk below the vector width.
	chunksTotal := (n + int32(W) - 1) / int32(W)
	chunksPer := (chunksTotal + int32(tc.Count) - 1) / int32(tc.Count)
	start := int32(tc.Index) * chunksPer * int32(W)
	end := start + chunksPer*int32(W)
	if end > n {
		end = n
	}
	if start >= end {
		return
	}

	fr := kc.newFrame(in, tc)
	defer kc.putFrame(fr)

	if kc.k.FiberCC {
		// Compute the task's total push count in advance (sum of item
		// degrees) and reserve space with a single atomic.
		total := kc.sumDegrees(in, tc, fr, start, end)
		pos := in.wl.Out.Reserve(tc, total)
		fr.resPos = &pos
	}

	chunks := (end - start + int32(W) - 1) / int32(W)
	if kc.k.Fibers {
		// NumFibersPerTask = min(MaxFibers, ceil(N / (W * tasks))) —
		// the paper's dynamic fiber count.
		fibers := (n + int32(W*tc.Count) - 1) / int32(W*tc.Count)
		if fibers > MaxFibersPerTask {
			fibers = MaxFibersPerTask
		}
		if fibers < 1 {
			fibers = 1
		}
		// Fiber f processes chunks f, f+F, f+2F... — each virtual task
		// owns a strided set, emulating thread-block scheduling.
		for f := int32(0); f < fibers; f++ {
			for ci := f; ci < chunks; ci += fibers {
				tc.ScalarOps(2) // fiber loop bookkeeping
				kc.runChunk(in, tc, fr, start+ci*int32(W), end)
			}
		}
	} else {
		for ci := int32(0); ci < chunks; ci++ {
			kc.runChunk(in, tc, fr, start+ci*int32(W), end)
		}
	}
}

// sumDegrees computes the total out-degree of the task's items (the advance
// push count for fiber-level CC), fully cost-accounted.
func (kc *kernelCode) sumDegrees(in *Instance, tc *spmd.TaskCtx, fr *frame, start, end int32) int32 {
	W := int32(tc.Width)
	var total int32
	for base := start; base < end; base += W {
		cnt := end - base
		if cnt > W {
			cnt = W
		}
		m := vec.FullMask(int(cnt))
		items := kc.loadItems(in, tc, base, m)
		rs := tc.GatherI(in.rowPtr, items, m, vec.Vec{}, false)
		tc.Op(vec.ClassALU, false)
		items1 := vec.Bin(vec.OpAdd, items, vec.Splat(1), m, tc.Width)
		re := tc.GatherI(in.rowPtr, items1, m, vec.Vec{}, false)
		tc.Op(vec.ClassALU, false)
		deg := vec.Bin(vec.OpSub, re, rs, m, tc.Width)
		tc.Op(vec.ClassReduce, false)
		total += vec.ReduceAdd(deg, m, tc.Width)
	}
	return total
}

// loadItems produces the item vector for a chunk: node ids for topology
// kernels, worklist items (a unit-stride vector load) for worklist kernels.
// With a SELL layout attached, topology sweeps iterate positions in the
// layout's degree-sorted order — the item vector is a unit-stride load of
// the permutation, so lane l of a W-aligned chunk holds the vertex whose
// neighbors occupy lane l of the chunk's slice. Only the processing order
// changes; vertex ids, state arrays and outputs stay in the original space.
func (kc *kernelCode) loadItems(in *Instance, tc *spmd.TaskCtx, base int32, m vec.Mask) vec.Vec {
	if kc.k.Domain == ir.DomainNodes {
		if in.sellPerm != nil {
			return tc.LoadVecI(in.sellPerm, base, m, vec.Vec{})
		}
		tc.Op(vec.ClassALU, false)
		return vec.Bin(vec.OpAdd, vec.Splat(base), vec.Iota(), m, tc.Width)
	}
	return tc.LoadVecI(in.wl.In.Items, base, m, vec.Vec{})
}

func (kc *kernelCode) runChunk(in *Instance, tc *spmd.TaskCtx, fr *frame, base, end int32) {
	W := int32(tc.Width)
	cnt := end - base
	if cnt > W {
		cnt = W
	}
	if cnt <= 0 {
		return
	}
	m := vec.FullMask(int(cnt))
	items := kc.loadItems(in, tc, base, m)
	fr.regI[kc.itemSlot] = items
	fr.chunkBase = base
	tc.Work(int(cnt))
	kc.body(fr, m)
}

// --- ForEdges compilation ---

func (c *kcompiler) compileForEdges(s *ir.ForEdges) (exec, error) {
	node, err := c.compileI(s.Node)
	if err != nil {
		return nil, err
	}
	edgeSlot := c.declare(s.EdgeVar, ir.I32)

	// Compile the body in inner-loop mode; for NP additionally record the
	// outer variable set to reject discarded writes.
	savedInner, savedOuter := c.inner, c.npOuter
	c.inner = true
	if s.Sched == ir.SchedNP {
		outer := make(map[string]bool, c.nI+c.nF+c.nM)
		for name := range c.slotI {
			outer[name] = true
		}
		for name := range c.slotF {
			outer[name] = true
		}
		for name := range c.slotM {
			outer[name] = true
		}
		delete(outer, s.EdgeVar)
		c.npOuter = outer
	}
	body, err := c.compileStmts(s.Body)
	c.inner, c.npOuter = savedInner, savedOuter
	if err != nil {
		return nil, err
	}

	var csrLoop exec
	if s.Sched == ir.SchedNP {
		csrLoop = c.buildNPLoop(node, edgeSlot, body)
	} else {
		csrLoop = c.buildSerialLoop(node, edgeSlot, body)
	}
	if !c.sellEligible(s, savedInner) {
		return csrLoop, nil
	}

	// Compile the body a second time in SELL cell mode: EdgeDst/EdgeWt of
	// the loop's own edge variable read the dense-loaded slice column
	// instead of gathering, and the compile records whether the body needs
	// the weight or raw-edge-id columns at all. Slot tables are shared with
	// the first compile (declare is idempotent), so both variants agree on
	// the register layout.
	c.inner = true
	c.sellEdge, c.sellWtUsed, c.sellEdgeUsed = s.EdgeVar, false, false
	sellBody, err := c.compileStmts(s.Body)
	c.sellEdge = ""
	c.inner = savedInner
	if err != nil {
		return nil, err
	}
	c.hasSell = true
	sellLoop := c.buildSellLoop(edgeSlot, sellBody, c.sellWtUsed, c.sellEdgeUsed)

	// Runtime dispatch, per chunk: the SELL path needs an attached layout
	// whose slice height matches the vector width (chunks are W-aligned by
	// the task dealer, so the chunk base then identifies one whole slice),
	// and a dense-enough active mask — a sparse mask (e.g. few lanes at the
	// current BFS level) gathers fewer words through CSR than a full-width
	// column load would touch, so sparse phases stay on CSR. This is the
	// per-phase heuristic: sparse frontier → CSR, dense sweep → SELL.
	return func(fr *frame, m vec.Mask) {
		if sl := fr.in.sell; sl != nil && int(sl.C) == fr.W && !sl.IsFallback(fr.chunkBase/sl.C) {
			fr.tc.ScalarOps(1) // density test on the chunk mask
			if 2*m.PopCount() >= fr.W {
				sellLoop(fr, m)
				return
			}
		}
		csrLoop(fr, m)
	}, nil
}

// sellEligible reports whether a ForEdges loop can take the SELL dense
// path: a top-level edge loop of a node-domain kernel sweeping the kernel's
// own item variable, with neither the item nor the edge variable mutated in
// the body — the SELL loop identifies the slice from the chunk base, which
// is only valid while lane l still holds the vertex the layout placed at
// position base+l.
func (c *kcompiler) sellEligible(s *ir.ForEdges, nested bool) bool {
	if nested || c.k.Domain != ir.DomainNodes {
		return false
	}
	v, ok := s.Node.(*ir.Var)
	if !ok || v.Name != c.k.ItemVar {
		return false
	}
	ok = true
	ir.WalkStmts(c.k.Body, func(st ir.Stmt) {
		switch st := st.(type) {
		case *ir.Assign:
			if st.Name == c.k.ItemVar || st.Name == s.EdgeVar {
				ok = false
			}
		case *ir.Decl:
			if st.Name == c.k.ItemVar || st.Name == s.EdgeVar {
				ok = false
			}
		case *ir.ForEdges:
			if st != s && st.EdgeVar == s.EdgeVar {
				ok = false // nested reuse of the edge slot
			}
		}
	})
	return ok
}

// buildSellLoop sweeps one slice of the SELL layout column by column: each
// column is a full-width unit-stride load of the C destinations (and, when
// the body needs them, edge ids and weights), the active mask is the sign
// test of the destinations (SlimSell's negative padding) intersected with
// the chunk mask, and because a row's live columns are a prefix, the mask
// only shrinks — the loop exits at the first all-inactive column.
func (c *kcompiler) buildSellLoop(edgeSlot int, body exec, useWt, useEid bool) exec {
	return func(fr *frame, m vec.Mask) {
		if m.None() {
			return
		}
		tc := fr.tc
		sl := fr.in.sell
		W := fr.W
		s := fr.chunkBase / sl.C
		start := sl.SlicePtr[s]
		height := (sl.SlicePtr[s+1] - start) / sl.C
		full := vec.FullMask(W)
		tc.ScalarOps(2) // slice bounds from SlicePtr
		for j := int32(0); j < height; j++ {
			off := start + j*sl.C
			dst := tc.LoadVecI(fr.in.sellDst, off, full, vec.Vec{})
			tc.Op(vec.ClassCmp, false)
			act := m & vec.CmpMask(vec.OpGe, dst, vec.Splat(0), full, W)
			tc.InnerTally(act.PopCount())
			if act.None() {
				return
			}
			tc.NoteSellColumn(act.PopCount())
			fr.cellDst = dst
			if useWt {
				if fr.in.sellWt != nil {
					fr.cellWt = tc.LoadVecI(fr.in.sellWt, off, full, vec.Vec{})
				} else {
					fr.cellWt = vec.Splat(1)
				}
			}
			if useEid {
				eid := tc.LoadVecI(fr.in.sellEid, off, full, vec.Vec{})
				tc.Op(vec.ClassBlend, true)
				fr.regI[edgeSlot] = vec.Blend(act, eid, fr.regI[edgeSlot], W)
			}
			body(fr, act)
		}
	}
}

// buildSerialLoop: each lane walks its own edge range in lockstep. Lane
// utilization equals the fraction of lanes still having edges each round —
// the Table IV "unoptimized" measurement.
func (c *kcompiler) buildSerialLoop(node evalI, edgeSlot int, body exec) exec {
	return func(fr *frame, m vec.Mask) {
		if m.None() {
			return
		}
		tc := fr.tc
		nv := node(fr, m)
		rs := tc.GatherI(fr.in.rowPtr, nv, m, vec.Vec{}, false)
		tc.Op(vec.ClassALU, false)
		nv1 := vec.Bin(vec.OpAdd, nv, vec.Splat(1), m, fr.W)
		re := tc.GatherI(fr.in.rowPtr, nv1, m, vec.Vec{}, false)
		e := rs
		for {
			tc.InnerOp(vec.ClassCmp, true, m.PopCount())
			act := m & vec.CmpMask(vec.OpLt, e, re, m, fr.W)
			if act.None() {
				return
			}
			fr.regI[edgeSlot] = vec.Blend(act, e, fr.regI[edgeSlot], fr.W)
			body(fr, act)
			tc.InnerOp(vec.ClassALU, true, act.PopCount())
			e = vec.Bin(vec.OpAdd, e, vec.Splat(1), act, fr.W)
		}
	}
}

// buildNPLoop: the inspector-executor nested-parallelism scheduler (Fig. 2).
// High-degree nodes' edges are spread across all lanes chunk by chunk;
// low-degree nodes' edges are packed with an exclusive prefix sum and
// executed with near-full lanes. Outer per-lane state reaches the body
// through permuted register frames.
func (c *kcompiler) buildNPLoop(node evalI, edgeSlot int, body exec) exec {
	return func(fr *frame, m vec.Mask) {
		if m.None() {
			return
		}
		tc := fr.tc
		W := fr.W
		nv := node(fr, m)
		rs := tc.GatherI(fr.in.rowPtr, nv, m, vec.Vec{}, false)
		tc.Op(vec.ClassALU, false)
		nv1 := vec.Bin(vec.OpAdd, nv, vec.Splat(1), m, W)
		re := tc.GatherI(fr.in.rowPtr, nv1, m, vec.Vec{}, false)
		tc.Op(vec.ClassALU, false)
		deg := vec.Bin(vec.OpSub, re, rs, m, W)

		// Inspector: classify lanes.
		tc.Op(vec.ClassCmp, false)
		bigThr := int32(BigDegreeFactor * W)
		bigM := vec.CmpMask(vec.OpGe, deg, vec.Splat(bigThr), m, W)
		smallM := m &^ bigM

		regs := len(fr.regI) + len(fr.regF) + len(fr.regM)

		// High/medium-degree nodes: broadcast one lane's context to the
		// whole vector and sweep its edge range W at a time.
		for l := 0; l < W; l++ {
			if !bigM.Bit(l) {
				continue
			}
			tc.ScalarOps(2) // scheduler: select lane, set up bounds
			tc.OpN(vec.ClassALU, false, regs)
			pfr := fr.permuted(vec.Splat(int32(l)))
			s0, t0 := rs[l], re[l]
			for b := s0; b < t0; b += int32(W) {
				cnt := t0 - b
				if cnt > int32(W) {
					cnt = int32(W)
				}
				em := vec.FullMask(int(cnt))
				tc.InnerOp(vec.ClassALU, true, em.PopCount())
				pfr.regI[edgeSlot] = vec.Bin(vec.OpAdd, vec.Splat(b), vec.Iota(), em, W)
				body(pfr, em)
			}
		}

		// Low-degree nodes: pack (source lane, edge index) pairs with an
		// exclusive scan and execute them W at a time with permuted frames.
		if smallM.None() {
			return
		}
		tc.Op(vec.ClassScan, false)
		offs, total := vec.ExclusiveScanAdd(deg, smallM, W)
		if total == 0 {
			return
		}
		var srcBuf, edgeBuf [vec.MaxWidth * vec.MaxWidth]int32
		for l := 0; l < W; l++ {
			if !smallM.Bit(l) {
				continue
			}
			o := offs[l]
			for j := int32(0); j < deg[l]; j++ {
				srcBuf[o+j] = int32(l)
				edgeBuf[o+j] = rs[l] + j
			}
		}
		// The packing stores above are the scheduler's shared-memory
		// writes; charged as one vstore per produced chunk.
		chunkCount := (int(total) + W - 1) / W
		tc.OpN(vec.ClassVStore, false, chunkCount)
		for b := int32(0); b < total; b += int32(W) {
			cnt := total - b
			if cnt > int32(W) {
				cnt = int32(W)
			}
			em := vec.FullMask(int(cnt))
			tc.OpN(vec.ClassVLoad, false, 2) // scheduler reload of src/edge
			src := vec.FromSlice(srcBuf[b : b+cnt])
			tc.OpN(vec.ClassALU, false, regs) // lane shuffle of live state
			pfr := fr.permuted(src)
			pfr.regI[edgeSlot] = vec.FromSlice(edgeBuf[b : b+cnt])
			body(pfr, em)
		}
	}
}
