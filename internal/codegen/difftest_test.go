package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// Differential testing: generate random (but confluent) IR programs and
// check that every target width, ISA and optimization combination computes
// identical results. Confluence is guaranteed by construction — cross-item
// writes go only through commutative atomics (add) or monotone atomics
// (min), and plain stores target only the item's own slot — so any
// divergence is a codegen bug (masking, blending, NP redistribution, loop
// predication), not schedule noise.

const diffNodes = 256 // array length; indices are masked with & 255

// pgen generates random well-typed IR.
type pgen struct {
	r *rand.Rand
	// declared int variables in scope (item var is always present).
	vars []string
	// edgeVar is non-empty inside a ForEdges body.
	edgeVar string
	nameSeq int
}

func (g *pgen) fresh() string {
	g.nameSeq++
	return fmt.Sprintf("v%d", g.nameSeq)
}

// exprI generates an int expression of bounded depth.
func (g *pgen) exprI(depth int) ir.Expr {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return ir.CI(int32(g.r.Intn(64)))
		case 1:
			return ir.V(g.vars[g.r.Intn(len(g.vars))])
		default:
			return ir.P("p")
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return ir.CI(int32(g.r.Intn(1024) - 512))
	case 1:
		return ir.V(g.vars[g.r.Intn(len(g.vars))])
	case 2:
		ops := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Min, ir.Max}
		return ir.B(ops[g.r.Intn(len(ops))], g.exprI(depth-1), g.exprI(depth-1))
	case 3:
		return ir.SelE(g.exprB(depth-1), g.exprI(depth-1), g.exprI(depth-1))
	case 4:
		return ir.Ld("a", g.index(depth-1))
	case 5:
		if g.edgeVar != "" {
			return &ir.EdgeDst{Edge: ir.V(g.edgeVar)}
		}
		return ir.B(ir.Shr, g.exprI(depth-1), ir.CI(int32(1+g.r.Intn(4))))
	case 6:
		return &ir.NumNodes{}
	default:
		return ir.B(ir.Shl, g.exprI(depth-1), ir.CI(int32(g.r.Intn(3))))
	}
}

// index produces an always-in-range array index.
func (g *pgen) index(depth int) ir.Expr {
	return ir.B(ir.And, g.exprI(depth), ir.CI(diffNodes-1))
}

// exprB generates a predicate.
func (g *pgen) exprB(depth int) ir.Expr {
	cmps := []ir.BinOp{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge}
	c := ir.B(cmps[g.r.Intn(len(cmps))], g.exprI(depth), g.exprI(depth))
	if depth > 0 {
		switch g.r.Intn(4) {
		case 0:
			return ir.AndE(c, ir.B(cmps[g.r.Intn(len(cmps))], g.exprI(depth-1), g.exprI(depth-1)))
		case 1:
			return ir.NotE(c)
		}
	}
	return c
}

// stmts generates a statement list. inLoop restricts writes to atomics
// (scatter conflicts under NP would be order-dependent).
func (g *pgen) stmts(depth, count int, inLoop bool) []ir.Stmt {
	var out []ir.Stmt
	for i := 0; i < count; i++ {
		out = append(out, g.stmt(depth, inLoop))
	}
	return out
}

func (g *pgen) stmt(depth int, inLoop bool) ir.Stmt {
	saved := len(g.vars)
	choice := g.r.Intn(10)
	if depth <= 0 && choice >= 5 {
		choice = g.r.Intn(5)
	}
	switch choice {
	case 0, 1:
		name := g.fresh()
		s := ir.DeclI(name, g.exprI(depth))
		g.vars = append(g.vars, name)
		return s
	case 2:
		// Assignment to an existing variable (exercises merge-masking).
		// vars[0] is the item variable, which must stay immutable: it
		// indexes per-item state and the edge loops.
		if len(g.vars) > 1 {
			return ir.Set(g.vars[1+g.r.Intn(len(g.vars)-1)], g.exprI(depth))
		}
		return ir.DeclI(g.fresh(), g.exprI(depth))
	case 3:
		return &ir.AtomicAdd{Arr: "cnt", Idx: g.index(depth), Val: ir.B(ir.And, g.exprI(depth), ir.CI(255))}
	case 4:
		return &ir.AtomicMin{Arr: "m", Idx: g.index(depth), Val: g.exprI(depth)}
	case 5:
		if inLoop {
			return &ir.AtomicAdd{Arr: "cnt", Idx: g.index(depth - 1), Val: ir.CI(1)}
		}
		// Own-slot store: conflict-free across items.
		return ir.St("out", ir.V("item"), g.exprI(depth))
	case 6:
		s := &ir.If{Cond: g.exprB(depth - 1), Then: g.stmts(depth-1, 1+g.r.Intn(2), inLoop)}
		if g.r.Intn(2) == 0 {
			s.Else = g.stmts(depth-1, 1, inLoop)
		}
		g.vars = g.vars[:saved]
		return s
	case 7:
		// Bounded counting loop (always terminates).
		iv := g.fresh()
		bound := int32(1 + g.r.Intn(3))
		body := g.stmts(depth-1, 1, inLoop)
		body = append(body, ir.Set(iv, ir.AddE(ir.V(iv), ir.CI(1))))
		g.vars = g.vars[:saved]
		return &ir.If{ // wrap in scope so iv's decl precedes the while
			Cond: ir.EqE(ir.CI(0), ir.CI(0)),
			Then: []ir.Stmt{
				ir.DeclI(iv, ir.CI(0)),
				ir.WhileS(ir.LtE(ir.V(iv), ir.CI(bound)), body...),
			},
		}
	case 8:
		if inLoop {
			return &ir.AtomicMin{Arr: "m", Idx: g.index(depth - 1), Val: g.exprI(depth - 1)}
		}
		ev := g.fresh()
		savedEdge := g.edgeVar
		g.edgeVar = ev
		body := g.stmts(depth-1, 1+g.r.Intn(2), true)
		g.edgeVar = savedEdge
		g.vars = g.vars[:saved]
		return &ir.ForEdges{EdgeVar: ev, Node: ir.V("item"), Body: body}
	default:
		return ir.DeclI(g.fresh(), g.exprI(depth)) // keeps var count growing
	}
}

// genProgram builds a random single-kernel DomainNodes program.
func genProgram(seed int64) *ir.Program {
	g := &pgen{r: rand.New(rand.NewSource(seed)), vars: []string{"item"}}
	body := g.stmts(3, 3+g.r.Intn(3), false)
	return &ir.Program{
		Name: fmt.Sprintf("fuzz%d", seed),
		Arrays: []ir.ArrayDecl{
			{Name: "a", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitHash},
			{Name: "out", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "cnt", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "m", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplat, InitI: 1 << 28},
		},
		Kernels: []*ir.Kernel{{
			Name:    "k",
			Domain:  ir.DomainNodes,
			ItemVar: "item",
			Body:    body,
		}},
		Pipe:          []ir.PipeStmt{&ir.Invoke{Kernel: "k"}},
		DefaultParams: map[string]int32{"p": 7},
	}
}

// runConfig executes the program and returns the three output arrays.
func runConfig(t *testing.T, prog *ir.Program, tgt vec.Target, opts opt.Options, tasks int, g *graph.CSR) [][]int32 {
	t.Helper()
	p, err := opt.Apply(prog, opts)
	if err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	mod, err := Compile(p)
	if err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	e := spmd.New(machine.Intel8(), tgt, tasks)
	in, err := mod.Bind(e, g, nil)
	if err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	in.Run()
	var out [][]int32
	for _, name := range []string{"out", "cnt", "m"} {
		out = append(out, append([]int32(nil), in.ArrayI(name)...))
	}
	return out
}

// TestDifferentialRandomPrograms is the randomized equivalence gate: for
// each generated program, all width/ISA/optimization/task combinations must
// produce identical outputs.
func TestDifferentialRandomPrograms(t *testing.T) {
	const programs = 60
	g := graph.RMAT(8, 8, 16, 99) // diffNodes nodes with skewed degrees
	if g.NumNodes() != diffNodes {
		t.Fatalf("graph size %d != %d", g.NumNodes(), diffNodes)
	}
	configs := []struct {
		name  string
		tgt   vec.Target
		opts  opt.Options
		tasks int
	}{
		{"scalar", vec.TargetScalar, opt.None(), 1},
		{"avx1x8-none", vec.TargetAVX1x8, opt.None(), 4},
		{"avx512x16-none", vec.TargetAVX512x16, opt.None(), 4},
		{"avx512x16-all", vec.TargetAVX512x16, opt.All(), 4},
		{"avx2x16-np", vec.TargetAVX2x16, opt.Options{NP: true}, 3},
		{"gpu32-all", vec.TargetGPU32, opt.All(), 8},
		{"neon4-all", vec.TargetNEON4, opt.All(), 2},
	}
	for seed := int64(0); seed < programs; seed++ {
		prog := genProgram(seed)
		if err := ir.Validate(prog); err != nil {
			t.Fatalf("seed %d: generator produced invalid IR: %v", seed, err)
		}
		ref := runConfig(t, prog, configs[0].tgt, configs[0].opts, configs[0].tasks, g)
		for _, c := range configs[1:] {
			got := runConfig(t, prog, c.tgt, c.opts, c.tasks, g)
			for ai := range ref {
				for i := range ref[ai] {
					if got[ai][i] != ref[ai][i] {
						t.Fatalf("seed %d: config %s diverges from scalar at array %d index %d: %d vs %d\nprogram:\n%s",
							seed, c.name, ai, i, got[ai][i], ref[ai][i], EmitISPC(prog))
					}
				}
			}
		}
	}
}

// TestGeneratorCoversConstructs sanity-checks that the random generator
// actually produces the interesting constructs at the default depth.
func TestGeneratorCoversConstructs(t *testing.T) {
	var hasIf, hasWhile, hasForEdges, hasAtomic bool
	for seed := int64(0); seed < 40; seed++ {
		prog := genProgram(seed)
		ir.WalkStmts(prog.Kernels[0].Body, func(s ir.Stmt) {
			switch s.(type) {
			case *ir.If:
				hasIf = true
			case *ir.While:
				hasWhile = true
			case *ir.ForEdges:
				hasForEdges = true
			case *ir.AtomicAdd, *ir.AtomicMin:
				hasAtomic = true
			}
		})
	}
	if !hasIf || !hasWhile || !hasForEdges || !hasAtomic {
		t.Errorf("generator coverage: if=%v while=%v foredges=%v atomic=%v",
			hasIf, hasWhile, hasForEdges, hasAtomic)
	}
}
