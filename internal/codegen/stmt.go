package codegen

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vec"
	"repro/internal/worklist"
)

// exec is a compiled statement: runs under the given lane mask.
type exec func(fr *frame, m vec.Mask)

func (c *kcompiler) compileStmts(ss []ir.Stmt) (exec, error) {
	execs := make([]exec, 0, len(ss))
	for _, s := range ss {
		x, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		execs = append(execs, x)
	}
	return func(fr *frame, m vec.Mask) {
		for _, x := range execs {
			x(fr, m)
		}
	}, nil
}

// assignI stores val into slot under mask with merge semantics. The blend
// cost is charged only for partially-masked writes, matching how ISPC emits
// unmasked moves when the mask is known full.
func storeRegI(fr *frame, slot int, val vec.Vec, m vec.Mask) {
	if m.All(fr.W) {
		fr.regI[slot] = val
		return
	}
	fr.tc.Op(vec.ClassBlend, true)
	fr.regI[slot] = vec.Blend(m, val, fr.regI[slot], fr.W)
}

func storeRegF(fr *frame, slot int, val vec.FVec, m vec.Mask) {
	if m.All(fr.W) {
		fr.regF[slot] = val
		return
	}
	fr.tc.Op(vec.ClassBlend, true)
	fr.regF[slot] = vec.BlendF(m, val, fr.regF[slot], fr.W)
}

func storeRegM(fr *frame, slot int, val, m vec.Mask) {
	fr.regM[slot] = (fr.regM[slot] &^ m) | (val & m)
}

func (c *kcompiler) checkNPWrite(name string) error {
	if c.npOuter != nil && c.npOuter[name] {
		return c.errf("nested parallelism: assignment to %q declared outside the edge loop; NP bodies must write through arrays, atomics or pushes", name)
	}
	return nil
}

func (c *kcompiler) compileAssignLike(name string, t ir.Type, val ir.Expr) (exec, error) {
	if err := c.checkNPWrite(name); err != nil {
		return nil, err
	}
	slot := c.declare(name, t)
	switch t {
	case ir.I32:
		v, err := c.compileI(val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) { storeRegI(fr, slot, v(fr, m), m) }, nil
	case ir.F32:
		v, err := c.compileF(val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) { storeRegF(fr, slot, v(fr, m), m) }, nil
	default:
		v, err := c.compileM(val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) { storeRegM(fr, slot, v(fr, m), m) }, nil
	}
}

func (c *kcompiler) compileStmt(s ir.Stmt) (exec, error) {
	switch s := s.(type) {
	case *ir.Decl:
		return c.compileAssignLike(s.Name, s.T, s.Init)

	case *ir.Assign:
		var t ir.Type
		switch {
		case hasKey(c.slotI, s.Name):
			t = ir.I32
		case hasKey(c.slotF, s.Name):
			t = ir.F32
		case hasKey(c.slotM, s.Name):
			t = ir.Bool
		default:
			return nil, c.errf("assignment to undeclared %q", s.Name)
		}
		return c.compileAssignLike(s.Name, t, s.Val)

	case *ir.Store:
		arr := c.prog.ArrayByName(s.Arr)
		idx, err := c.compileI(s.Idx)
		if err != nil {
			return nil, err
		}
		name := s.Arr
		if arr.T == ir.F32 {
			val, err := c.compileF(s.Val)
			if err != nil {
				return nil, err
			}
			return func(fr *frame, m vec.Mask) {
				if m.None() {
					return
				}
				fr.tc.ScatterF(fr.in.arrays[name], idx(fr, m), val(fr, m), m)
			}, nil
		}
		val, err := c.compileI(s.Val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			fr.tc.ScatterI(fr.in.arrays[name], idx(fr, m), val(fr, m), m)
		}, nil

	case *ir.If:
		cond, err := c.compileM(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compileStmts(s.Then)
		if err != nil {
			return nil, err
		}
		var els exec
		if len(s.Else) > 0 {
			els, err = c.compileStmts(s.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(fr *frame, m vec.Mask) {
			cm := cond(fr, m)
			if tm := m & cm; tm.Any() {
				then(fr, tm)
			}
			if els != nil {
				if em := m &^ cm; em.Any() {
					els(fr, em)
				}
			}
		}, nil

	case *ir.While:
		cond, err := c.compileM(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := c.compileStmts(s.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) {
			// Trip cap: every legitimate while in the kernel suite is bounded
			// by the graph size (pointer jumping <= n hops, adjacency merges
			// <= 2 degrees), but corrupted state can make one diverge — a
			// bit flip forming a union-find cycle spins comp[comp[n]] forever.
			// The cap turns that hang into a typed recoverable fault, so
			// checkpoint rollback (or the fallback ladder) can heal it. It is
			// host-side only: no modeled ops are charged, and it cannot fire
			// on uncorrupted runs.
			limit := 4*(int64(fr.in.G.NumNodes())+int64(fr.in.G.NumEdges())) + 64
			act := m
			for trips := int64(0); ; trips++ {
				act &= cond(fr, act)
				if act.None() {
					return
				}
				if trips >= limit {
					fr.tc.Fail(fmt.Errorf("while loop exceeded %d trips (likely corrupt state): %w",
						limit, fault.ErrKernelPanic))
				}
				body(fr, act)
			}
		}, nil

	case *ir.ForEdges:
		return c.compileForEdges(s)

	case *ir.Push:
		return c.compilePush(s)

	case *ir.AtomicMin:
		idx, err := c.compileI(s.Idx)
		if err != nil {
			return nil, err
		}
		val, err := c.compileI(s.Val)
		if err != nil {
			return nil, err
		}
		name := s.Arr
		succSlot := -1
		if s.Success != "" {
			if err := c.checkNPWrite(s.Success); err == nil && c.npOuter != nil {
				// Success vars bind fresh inside the loop; only reject
				// rebinding an outer name.
			}
			succSlot = c.declare(s.Success, ir.Bool)
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				if succSlot >= 0 {
					storeRegM(fr, succSlot, 0, m)
				}
				return
			}
			won := fr.tc.AtomicMinLanes(fr.in.arrays[name], idx(fr, m), val(fr, m), m)
			if succSlot >= 0 {
				storeRegM(fr, succSlot, won, m)
			}
		}, nil

	case *ir.AtomicCAS:
		idx, err := c.compileI(s.Idx)
		if err != nil {
			return nil, err
		}
		oldv, err := c.compileI(s.Old)
		if err != nil {
			return nil, err
		}
		newv, err := c.compileI(s.New)
		if err != nil {
			return nil, err
		}
		name := s.Arr
		succSlot := -1
		if s.Success != "" {
			succSlot = c.declare(s.Success, ir.Bool)
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				if succSlot >= 0 {
					storeRegM(fr, succSlot, 0, m)
				}
				return
			}
			won := fr.tc.AtomicCASLanes(fr.in.arrays[name], idx(fr, m), oldv(fr, m), newv(fr, m), m)
			if succSlot >= 0 {
				storeRegM(fr, succSlot, won, m)
			}
		}, nil

	case *ir.AtomicAdd:
		idx, err := c.compileI(s.Idx)
		if err != nil {
			return nil, err
		}
		name := s.Arr
		if c.prog.ArrayByName(name).T == ir.F32 {
			val, err := c.compileF(s.Val)
			if err != nil {
				return nil, err
			}
			return func(fr *frame, m vec.Mask) {
				if m.None() {
					return
				}
				fr.tc.AtomicAddFLanes(fr.in.arrays[name], idx(fr, m), val(fr, m), m)
			}, nil
		}
		val, err := c.compileI(s.Val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			fr.tc.AtomicAddLanes(fr.in.arrays[name], idx(fr, m), val(fr, m), m, false)
		}, nil

	case *ir.AccumAdd:
		arr := c.prog.ArrayByName(s.Acc)
		name := s.Acc
		if arr.T == ir.F32 {
			val, err := c.compileF(s.Val)
			if err != nil {
				return nil, err
			}
			return func(fr *frame, m vec.Mask) {
				if m.None() {
					return
				}
				sum := vec.ReduceAddF(val(fr, m), m, fr.W)
				fr.tc.AtomicAddFScalar(fr.in.arrays[name], 0, sum)
			}, nil
		}
		val, err := c.compileI(s.Val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			fr.tc.Op(vec.ClassReduce, false)
			sum := vec.ReduceAdd(val(fr, m), m, fr.W)
			fr.tc.AtomicAddScalar(fr.in.arrays[name], 0, sum, false)
		}, nil

	case *ir.SetFlag:
		name := s.Flag
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			// Benign racy store: everyone writes 1.
			fr.tc.ScalarStoreI(fr.in.arrays[name], 0, 1)
		}, nil
	}
	return nil, c.errf("unknown statement %T", s)
}

func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}

func (c *kcompiler) compilePush(s *ir.Push) (exec, error) {
	val, err := c.compileI(s.Val)
	if err != nil {
		return nil, err
	}
	role := s.WL
	pick := func(fr *frame) *worklist.WL {
		// "near" items continue this near-far round ("out" of the pair);
		// "far" items accumulate for promotion; "out" is the plain
		// pipeline list.
		if role == "far" {
			return fr.in.far
		}
		return fr.in.wl.Out
	}
	switch s.Mode {
	case ir.PushUnopt:
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			pick(fr).PushLanes(fr.tc, val(fr, m), m)
		}, nil
	case ir.PushCoop:
		return func(fr *frame, m vec.Mask) {
			pick(fr).PushCoop(fr.tc, val(fr, m), m)
		}, nil
	case ir.PushReserved:
		if !c.k.FiberCC {
			return nil, c.errf("reserved push outside a fiber-CC kernel")
		}
		return func(fr *frame, m vec.Mask) {
			if m.None() {
				return
			}
			n := pick(fr).WriteReserved(fr.tc, *fr.resPos, val(fr, m), m)
			*fr.resPos += n
		}, nil
	}
	return nil, c.errf("unknown push mode %d", s.Mode)
}
