package codegen

import (
	"fmt"

	"repro/internal/compiled"
	"repro/internal/ir"
)

// EnableCompiled switches the instance to the generated-Go kernel backend
// (internal/compiled). Every kernel of the program must have generated code
// for the engine's vector width and the program's exact post-optimization
// fingerprint — selection is all-or-nothing, so a run never mixes backends
// mid-pipe. On any gap it returns an error wrapping
// compiled.ErrBackendUnsupported and leaves the instance on the interpreter.
//
// Call between Bind and Run; the choice is sticky for the instance's
// lifetime. Generated kernels drive the same TaskCtx/worklist primitives in
// the same order as the interpreter, so exec modes, checkpoint/rollback and
// fault injection compose unchanged.
func (in *Instance) EnableCompiled() error {
	w := in.E.Width()
	fp := ir.Fingerprint(in.M.Prog)
	fns := make(map[string]compiled.Fn, len(in.M.Prog.Kernels))
	for _, k := range in.M.Prog.Kernels {
		fn := compiled.Lookup(fp, k.Name, w)
		if fn == nil {
			return fmt.Errorf("codegen: no generated code for program %q (fp %s) kernel %q width %d: %w",
				in.M.Prog.Name, fp, k.Name, w, compiled.ErrBackendUnsupported)
		}
		fns[k.Name] = fn
	}
	in.compiledFns = fns
	return nil
}

// CompiledEnabled reports whether the generated backend is active.
func (in *Instance) CompiledEnabled() bool { return in.compiledFns != nil }

// refreshBinding (re)builds the environment handed to generated kernels. It
// runs at every pipe (re)entry — a single-threaded point after Bind,
// AttachSell, parameter mutation and rollback, before any task executes.
// Params and Arrays alias the live instance state, so host-side updates
// between launches (e.g. the near-far threshold) are visible without another
// refresh.
func (in *Instance) refreshBinding() {
	b := in.binding
	if b == nil {
		b = &compiled.Binding{}
		in.binding = b
	}
	b.NumNodes = in.G.NumNodes()
	b.NumEdges = in.G.NumEdges()
	b.Params = in.Params
	b.Arrays = in.arrays
	b.RowPtr = in.rowPtr
	b.EdgeDst = in.edgeDs
	b.EdgeWt = in.edgeWt
	b.Sell = in.sell
	b.SellPerm = in.sellPerm
	b.SellDst = in.sellDst
	b.SellEid = in.sellEid
	b.SellWt = in.sellWt
	b.WL = in.wl
	b.Far = in.far
	b.MaxFibers = MaxFibersPerTask
	b.BigDeg = int32(BigDegreeFactor * in.E.Width())
}
