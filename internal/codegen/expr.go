package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// frame is the per-task register file of a running kernel. Nested-parallelism
// redistribution makes permuted copies so inner-loop lanes read the values of
// the source lane whose edge they execute.
type frame struct {
	in *Instance
	tc *spmd.TaskCtx
	W  int

	regI []vec.Vec
	regF []vec.FVec
	regM []vec.Mask

	// chunkBase is the W-aligned domain position of the chunk being
	// executed; with a SELL layout attached it identifies the slice whose
	// rows occupy the lanes (position base+lane holds vertex Perm[base+lane]).
	chunkBase int32

	// cellDst/cellWt hold the current SELL slice column, dense-loaded by the
	// SELL edge loop; cell-mode EdgeDst/EdgeWt closures read them in place
	// of per-lane gathers.
	cellDst vec.Vec
	cellWt  vec.Vec

	// resPos is the fiber-level cooperative-conversion write cursor,
	// shared across permuted frame copies.
	resPos *int32

	// scratch is the lazily-allocated destination frame permuted() reuses.
	// Only one permuted copy of a frame is live at a time (the NP scheduler
	// finishes each chunk before making the next), and a nested NP loop
	// permutes the scratch frame itself, so each nesting level gets its own.
	scratch *frame
}

func newRegFrame(nI, nF, nM int) *frame {
	return &frame{
		regI: make([]vec.Vec, nI),
		regF: make([]vec.FVec, nF),
		regM: make([]vec.Mask, nM),
	}
}

// newFrame checks the per-kernel pool before allocating. Pooled frames come
// back with stale registers, which must be zeroed: compiled code may read a
// slot before writing it and must see the same zero value a fresh frame
// provides.
func (kc *kernelCode) newFrame(in *Instance, tc *spmd.TaskCtx) *frame {
	fr, _ := kc.frames.Get().(*frame)
	if fr == nil {
		fr = newRegFrame(kc.nI, kc.nF, kc.nM)
	} else {
		for i := range fr.regI {
			fr.regI[i] = vec.Vec{}
		}
		for i := range fr.regF {
			fr.regF[i] = vec.FVec{}
		}
		for i := range fr.regM {
			fr.regM[i] = 0
		}
	}
	fr.in, fr.tc, fr.W, fr.resPos = in, tc, tc.Width, nil
	return fr
}

// putFrame returns a frame (and its permuted-scratch chain) to the pool,
// dropping the per-launch pointers so pooled frames don't pin instances.
func (kc *kernelCode) putFrame(fr *frame) {
	for f := fr; f != nil; f = f.scratch {
		f.in, f.tc, f.resPos = nil, nil, nil
	}
	kc.frames.Put(fr)
}

// permuted returns a copy of fr whose registers are lane-permuted by src:
// out[i] = reg[src[i]]. The copy's register writes are discarded when the
// inner loop finishes — NP bodies communicate through memory, atomics and
// pushes only (enforced at compile time). The shuffle cost is charged by the
// caller. The returned frame is fr's scratch frame, overwritten wholesale on
// every call; callers must not hold it across another permuted(src) on fr.
func (fr *frame) permuted(src vec.Vec) *frame {
	out := fr.scratch
	if out == nil {
		out = newRegFrame(len(fr.regI), len(fr.regF), len(fr.regM))
		fr.scratch = out
	}
	out.in, out.tc, out.W, out.resPos = fr.in, fr.tc, fr.W, fr.resPos
	out.chunkBase = fr.chunkBase
	for l := 0; l < fr.W; l++ {
		out.cellDst[l] = fr.cellDst[src[l]]
		out.cellWt[l] = fr.cellWt[src[l]]
	}
	for r := range fr.regI {
		var v vec.Vec
		for l := 0; l < fr.W; l++ {
			v[l] = fr.regI[r][src[l]]
		}
		out.regI[r] = v
	}
	for r := range fr.regF {
		var v vec.FVec
		for l := 0; l < fr.W; l++ {
			v[l] = fr.regF[r][src[l]]
		}
		out.regF[r] = v
	}
	for r := range fr.regM {
		var m vec.Mask
		for l := 0; l < fr.W; l++ {
			if fr.regM[r].Bit(int(src[l])) {
				m = m.Set(l)
			}
		}
		out.regM[r] = m
	}
	return out
}

// evalI/evalF/evalM are compiled expression forms.
type evalI func(fr *frame, m vec.Mask) vec.Vec
type evalF func(fr *frame, m vec.Mask) vec.FVec
type evalM func(fr *frame, m vec.Mask) vec.Mask

// kcompiler holds per-kernel compilation state.
type kcompiler struct {
	prog *ir.Program
	k    *ir.Kernel

	slotI, slotF, slotM map[string]int
	nI, nF, nM          int

	// inner is true while compiling inside a ForEdges body (lane
	// utilization accounting).
	inner bool
	// npOuter, when non-nil, is the set of variables declared outside the
	// NP edge loop currently being compiled; assignments to them are
	// rejected because permuted-frame writes are discarded.
	npOuter map[string]bool

	// sellEdge, while non-empty, is the edge variable of the ForEdges body
	// being compiled in SELL cell mode: EdgeDst/EdgeWt of exactly that
	// variable read the dense-loaded slice column instead of gathering.
	sellEdge string
	// sellWtUsed/sellEdgeUsed record whether the cell-mode body consumed
	// the weight column or the raw edge id, so the SELL loop only loads
	// what the body needs.
	sellWtUsed   bool
	sellEdgeUsed bool
	// hasSell records that at least one edge loop of this kernel compiled a
	// SELL variant (the per-kernel layout policy keys off it).
	hasSell bool
}

func (c *kcompiler) errf(format string, args ...any) error {
	return fmt.Errorf("codegen: %s/%s: "+format,
		append([]any{c.prog.Name, c.k.Name}, args...)...)
}

func (c *kcompiler) declare(name string, t ir.Type) int {
	switch t {
	case ir.I32:
		if s, ok := c.slotI[name]; ok {
			return s
		}
		c.slotI[name] = c.nI
		c.nI++
		return c.nI - 1
	case ir.F32:
		if s, ok := c.slotF[name]; ok {
			return s
		}
		c.slotF[name] = c.nF
		c.nF++
		return c.nF - 1
	default:
		if s, ok := c.slotM[name]; ok {
			return s
		}
		c.slotM[name] = c.nM
		c.nM++
		return c.nM - 1
	}
}

// typeOf resolves an expression's type against the current slot tables.
// Validation already proved well-typedness; unknown names here are compiler
// ordering bugs.
func (c *kcompiler) typeOf(e ir.Expr) (ir.Type, error) {
	switch e := e.(type) {
	case *ir.ConstI, *ir.Param, *ir.NumNodes, *ir.RowStart, *ir.RowEnd,
		*ir.EdgeDst, *ir.EdgeWt, *ir.ToI:
		return ir.I32, nil
	case *ir.ConstF, *ir.ToF:
		return ir.F32, nil
	case *ir.Var:
		if _, ok := c.slotI[e.Name]; ok {
			return ir.I32, nil
		}
		if _, ok := c.slotF[e.Name]; ok {
			return ir.F32, nil
		}
		if _, ok := c.slotM[e.Name]; ok {
			return ir.Bool, nil
		}
		return 0, c.errf("variable %q not in scope", e.Name)
	case *ir.Bin:
		if e.Op.IsCompare() || e.Op.IsLogical() {
			return ir.Bool, nil
		}
		return c.typeOf(e.A)
	case *ir.Not:
		return ir.Bool, nil
	case *ir.Sel:
		return c.typeOf(e.A)
	case *ir.Load:
		a := c.prog.ArrayByName(e.Arr)
		if a == nil {
			return 0, c.errf("array %q not declared", e.Arr)
		}
		return a.T, nil
	}
	return 0, c.errf("unknown expression %T", e)
}

// opFor maps an IR arithmetic/compare op to the vec op set.
var opForI = map[ir.BinOp]vec.BinOp{
	ir.Add: vec.OpAdd, ir.Sub: vec.OpSub, ir.Mul: vec.OpMul, ir.Div: vec.OpDiv,
	ir.Rem: vec.OpRem, ir.And: vec.OpAnd, ir.Or: vec.OpOr, ir.Xor: vec.OpXor,
	ir.Shl: vec.OpShl, ir.Shr: vec.OpShr, ir.Min: vec.OpMin, ir.Max: vec.OpMax,
	ir.Eq: vec.OpEq, ir.Ne: vec.OpNe, ir.Lt: vec.OpLt, ir.Le: vec.OpLe,
	ir.Gt: vec.OpGt, ir.Ge: vec.OpGe,
}

var opForF = map[ir.BinOp]vec.FBinOp{
	ir.Add: vec.FAdd, ir.Sub: vec.FSub, ir.Mul: vec.FMul, ir.Div: vec.FDiv,
	ir.Min: vec.FMin, ir.Max: vec.FMax,
	ir.Lt: vec.FLt, ir.Le: vec.FLe, ir.Gt: vec.FGt, ir.Ge: vec.FGe, ir.Eq: vec.FEq,
}

// countALU charges one vector ALU/compare op, with inner-loop utilization
// accounting.
func (c *kcompiler) countOp(class vec.OpClass) func(fr *frame, m vec.Mask) {
	if c.inner {
		return func(fr *frame, m vec.Mask) {
			fr.tc.InnerOp(class, !m.All(fr.W), m.PopCount())
		}
	}
	return func(fr *frame, m vec.Mask) {
		fr.tc.Op(class, !m.All(fr.W))
	}
}

func (c *kcompiler) compileI(e ir.Expr) (evalI, error) {
	switch e := e.(type) {
	case *ir.ConstI:
		v := vec.Splat(e.V)
		return func(fr *frame, m vec.Mask) vec.Vec { return v }, nil
	case *ir.Param:
		name := e.Name
		return func(fr *frame, m vec.Mask) vec.Vec {
			return vec.Splat(fr.in.Params[name])
		}, nil
	case *ir.NumNodes:
		return func(fr *frame, m vec.Mask) vec.Vec {
			return vec.Splat(fr.in.G.NumNodes())
		}, nil
	case *ir.Var:
		if c.sellEdge != "" && e.Name == c.sellEdge {
			// The body consumes the raw edge id (beyond EdgeDst/EdgeWt),
			// so the SELL loop must materialize the edge-id column.
			c.sellEdgeUsed = true
		}
		slot, ok := c.slotI[e.Name]
		if !ok {
			return nil, c.errf("int variable %q not in scope", e.Name)
		}
		return func(fr *frame, m vec.Mask) vec.Vec { return fr.regI[slot] }, nil
	case *ir.Bin:
		return c.compileBinI(e)
	case *ir.Sel:
		cond, err := c.compileM(e.Cond)
		if err != nil {
			return nil, err
		}
		a, err := c.compileI(e.A)
		if err != nil {
			return nil, err
		}
		b, err := c.compileI(e.B)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassBlend)
		return func(fr *frame, m vec.Mask) vec.Vec {
			cm := cond(fr, m)
			count(fr, m)
			return vec.Blend(cm, a(fr, m), b(fr, m), fr.W)
		}, nil
	case *ir.Load:
		return c.compileLoadI(e)
	case *ir.RowStart:
		node, err := c.compileI(e.Node)
		if err != nil {
			return nil, err
		}
		inner := c.inner
		return func(fr *frame, m vec.Mask) vec.Vec {
			return fr.tc.GatherI(fr.in.rowPtr, node(fr, m), m, vec.Vec{}, inner)
		}, nil
	case *ir.RowEnd:
		node, err := c.compileI(e.Node)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassALU)
		inner := c.inner
		return func(fr *frame, m vec.Mask) vec.Vec {
			n := node(fr, m)
			count(fr, m)
			n1 := vec.Bin(vec.OpAdd, n, vec.Splat(1), m, fr.W)
			return fr.tc.GatherI(fr.in.rowPtr, n1, m, vec.Vec{}, inner)
		}, nil
	case *ir.EdgeDst:
		if v, ok := e.Edge.(*ir.Var); ok && c.sellEdge != "" && v.Name == c.sellEdge {
			// Cell mode: the loop's own edge destinations were dense-loaded
			// with the slice column; no gather, no extra cost here.
			return func(fr *frame, m vec.Mask) vec.Vec { return fr.cellDst }, nil
		}
		edge, err := c.compileI(e.Edge)
		if err != nil {
			return nil, err
		}
		inner := c.inner
		return func(fr *frame, m vec.Mask) vec.Vec {
			return fr.tc.GatherI(fr.in.edgeDs, edge(fr, m), m, vec.Vec{}, inner)
		}, nil
	case *ir.EdgeWt:
		if v, ok := e.Edge.(*ir.Var); ok && c.sellEdge != "" && v.Name == c.sellEdge {
			c.sellWtUsed = true
			return func(fr *frame, m vec.Mask) vec.Vec { return fr.cellWt }, nil
		}
		edge, err := c.compileI(e.Edge)
		if err != nil {
			return nil, err
		}
		inner := c.inner
		return func(fr *frame, m vec.Mask) vec.Vec {
			if fr.in.edgeWt == nil {
				return vec.Splat(1)
			}
			return fr.tc.GatherI(fr.in.edgeWt, edge(fr, m), m, vec.Vec{}, inner)
		}, nil
	case *ir.ToI:
		a, err := c.compileF(e.A)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassConvert)
		return func(fr *frame, m vec.Mask) vec.Vec {
			v := a(fr, m)
			count(fr, m)
			return v.ToI(fr.W)
		}, nil
	}
	return nil, c.errf("expression %T is not i32", e)
}

func (c *kcompiler) compileBinI(e *ir.Bin) (evalI, error) {
	op, ok := opForI[e.Op]
	if !ok {
		return nil, c.errf("operator %v not valid on i32", e.Op)
	}
	a, err := c.compileI(e.A)
	if err != nil {
		return nil, err
	}
	b, err := c.compileI(e.B)
	if err != nil {
		return nil, err
	}
	count := c.countOp(vec.ClassALU)
	return func(fr *frame, m vec.Mask) vec.Vec {
		av, bv := a(fr, m), b(fr, m)
		count(fr, m)
		return vec.Bin(op, av, bv, m, fr.W)
	}, nil
}

func (c *kcompiler) compileF(e ir.Expr) (evalF, error) {
	switch e := e.(type) {
	case *ir.ConstF:
		v := vec.SplatF(e.V)
		return func(fr *frame, m vec.Mask) vec.FVec { return v }, nil
	case *ir.Var:
		slot, ok := c.slotF[e.Name]
		if !ok {
			return nil, c.errf("float variable %q not in scope", e.Name)
		}
		return func(fr *frame, m vec.Mask) vec.FVec { return fr.regF[slot] }, nil
	case *ir.Bin:
		op, ok := opForF[e.Op]
		if !ok || op.IsCompare() {
			return nil, c.errf("operator %v not valid as f32 arithmetic", e.Op)
		}
		a, err := c.compileF(e.A)
		if err != nil {
			return nil, err
		}
		b, err := c.compileF(e.B)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassALU)
		return func(fr *frame, m vec.Mask) vec.FVec {
			av, bv := a(fr, m), b(fr, m)
			count(fr, m)
			return vec.FBin(op, av, bv, m, fr.W)
		}, nil
	case *ir.Sel:
		cond, err := c.compileM(e.Cond)
		if err != nil {
			return nil, err
		}
		a, err := c.compileF(e.A)
		if err != nil {
			return nil, err
		}
		b, err := c.compileF(e.B)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassBlend)
		return func(fr *frame, m vec.Mask) vec.FVec {
			cm := cond(fr, m)
			count(fr, m)
			return vec.BlendF(cm, a(fr, m), b(fr, m), fr.W)
		}, nil
	case *ir.Load:
		a := c.prog.ArrayByName(e.Arr)
		if a == nil || a.T != ir.F32 {
			return nil, c.errf("load %q is not f32", e.Arr)
		}
		idx, err := c.compileI(e.Idx)
		if err != nil {
			return nil, err
		}
		name := e.Arr
		inner := c.inner
		return func(fr *frame, m vec.Mask) vec.FVec {
			return fr.tc.GatherF(fr.in.arrays[name], idx(fr, m), m, vec.FVec{}, inner)
		}, nil
	case *ir.ToF:
		a, err := c.compileI(e.A)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassConvert)
		return func(fr *frame, m vec.Mask) vec.FVec {
			v := a(fr, m)
			count(fr, m)
			return v.ToF(fr.W)
		}, nil
	}
	return nil, c.errf("expression %T is not f32", e)
}

func (c *kcompiler) compileLoadI(e *ir.Load) (evalI, error) {
	a := c.prog.ArrayByName(e.Arr)
	if a == nil || a.T != ir.I32 {
		return nil, c.errf("load %q is not i32", e.Arr)
	}
	idx, err := c.compileI(e.Idx)
	if err != nil {
		return nil, err
	}
	name := e.Arr
	inner := c.inner
	return func(fr *frame, m vec.Mask) vec.Vec {
		return fr.tc.GatherI(fr.in.arrays[name], idx(fr, m), m, vec.Vec{}, inner)
	}, nil
}

func (c *kcompiler) compileM(e ir.Expr) (evalM, error) {
	switch e := e.(type) {
	case *ir.Var:
		slot, ok := c.slotM[e.Name]
		if !ok {
			return nil, c.errf("predicate variable %q not in scope", e.Name)
		}
		return func(fr *frame, m vec.Mask) vec.Mask { return fr.regM[slot] & m }, nil
	case *ir.Not:
		a, err := c.compileM(e.A)
		if err != nil {
			return nil, err
		}
		return func(fr *frame, m vec.Mask) vec.Mask {
			fr.tc.ScalarOps(1) // knot / mask complement
			return m &^ a(fr, m)
		}, nil
	case *ir.Bin:
		if e.Op.IsLogical() {
			a, err := c.compileM(e.A)
			if err != nil {
				return nil, err
			}
			b, err := c.compileM(e.B)
			if err != nil {
				return nil, err
			}
			isAnd := e.Op == ir.LAnd
			return func(fr *frame, m vec.Mask) vec.Mask {
				av := a(fr, m)
				bv := b(fr, m)
				fr.tc.ScalarOps(1) // kand/kor
				if isAnd {
					return av & bv
				}
				return (av | bv) & m
			}, nil
		}
		if !e.Op.IsCompare() {
			return nil, c.errf("operator %v does not yield a predicate", e.Op)
		}
		ta, err := c.typeOf(e.A)
		if err != nil {
			return nil, err
		}
		count := c.countOp(vec.ClassCmp)
		if ta == ir.F32 {
			a, err := c.compileF(e.A)
			if err != nil {
				return nil, err
			}
			b, err := c.compileF(e.B)
			if err != nil {
				return nil, err
			}
			op := opForF[e.Op]
			return func(fr *frame, m vec.Mask) vec.Mask {
				av, bv := a(fr, m), b(fr, m)
				count(fr, m)
				return vec.FCmpMask(op, av, bv, m, fr.W)
			}, nil
		}
		a, err := c.compileI(e.A)
		if err != nil {
			return nil, err
		}
		b, err := c.compileI(e.B)
		if err != nil {
			return nil, err
		}
		op := opForI[e.Op]
		return func(fr *frame, m vec.Mask) vec.Mask {
			av, bv := a(fr, m), b(fr, m)
			count(fr, m)
			return vec.CmpMask(op, av, bv, m, fr.W)
		}, nil
	}
	return nil, c.errf("expression %T is not a predicate", e)
}
