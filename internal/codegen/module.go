// Package codegen is the EGACS backend: it lowers validated (and optimized)
// IR programs to executable form over the SPMD engine. Kernels compile to
// closure trees with slot-allocated vector registers and fully predicated
// control flow; the Pipe lowers to either a launch-per-iteration driver or —
// under Iteration Outlining — a single launch whose tasks run the driver
// loop with in-kernel barriers.
//
// The package also contains an ISPC source emitter (emit.go) that renders
// the same IR as the .ispc code the paper's compiler would generate, used
// for inspection and golden tests.
package codegen

import (
	"fmt"

	"repro/internal/compiled"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/spmd"
	"repro/internal/worklist"
)

// Module is a compiled, target-independent program, bindable to many
// (engine, graph) pairs.
type Module struct {
	Prog    *ir.Program
	kernels map[string]*kernelCode
}

// Compile validates and compiles a program.
func Compile(prog *ir.Program) (*Module, error) {
	if err := ir.Validate(prog); err != nil {
		return nil, err
	}
	m := &Module{Prog: prog, kernels: make(map[string]*kernelCode)}
	for _, k := range prog.Kernels {
		kc, err := compileKernel(prog, k)
		if err != nil {
			return nil, err
		}
		m.kernels[k.Name] = kc
	}
	return m, nil
}

// MustCompile compiles a known-valid program.
func MustCompile(prog *ir.Program) *Module {
	m, err := Compile(prog)
	if err != nil {
		panic(err)
	}
	return m
}

// Instance is a module bound to an engine, a graph and parameter values,
// ready to run.
type Instance struct {
	M      *Module
	E      *spmd.Engine
	G      *graph.CSR
	Params map[string]int32

	arrays map[string]*spmd.Array
	rowPtr *spmd.Array
	edgeDs *spmd.Array
	edgeWt *spmd.Array // nil when unweighted

	// sell and the sell* arrays are set by AttachSell: an optional second
	// layout of the same graph. CSR stays bound — row extents and arbitrary
	// edge-index gathers (e.g. MST's union phase) keep reading it; the SELL
	// arrays serve topology sweeps whose edge loops took the dense path.
	sell     *graph.SellCS
	sellPerm *spmd.Array
	sellDst  *spmd.Array
	sellEid  *spmd.Array
	sellWt   *spmd.Array // nil when unweighted

	wl  *worklist.Pair // pipeline in/out pair ("out" role)
	far *worklist.WL   // SSSP far list

	// Recovery, when non-nil, enables barrier-consistent checkpointing of
	// top-level pipe loops and rollback re-execution of recoverable faults
	// (see recovery.go). Attach before Run.
	Recovery *Recovery

	// compiledFns, when non-nil, routes every kernel launch to the
	// generated-Go backend (see EnableCompiled in backend.go). binding is the
	// execution environment handed to generated kernels, refreshed at each
	// pipe (re)entry.
	compiledFns map[string]compiled.Fn
	binding     *compiled.Binding
}

// Bind instantiates the module on an engine and graph. params may be nil;
// program defaults and src=0 apply.
func (m *Module) Bind(e *spmd.Engine, g *graph.CSR, params map[string]int32) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: bind: %w", err)
	}
	in := &Instance{
		M:      m,
		E:      e,
		G:      g,
		Params: map[string]int32{"src": 0},
		arrays: make(map[string]*spmd.Array),
	}
	for k, v := range m.Prog.DefaultParams {
		in.Params[k] = v
	}
	for k, v := range params {
		in.Params[k] = v
	}
	in.rowPtr = e.BindI("graph.rowptr", g.RowPtr)
	in.edgeDs = e.BindI("graph.edgedst", g.EdgeDst)
	if g.Weighted() {
		in.edgeWt = e.BindI("graph.edgewt", g.Weight)
	}
	n := int(g.NumNodes())
	for _, d := range m.Prog.Arrays {
		var sz int
		switch d.Size {
		case ir.SizeNodes:
			sz = n
		case ir.SizeEdges:
			sz = int(g.NumEdges())
		case ir.SizeOne:
			sz = 1
		}
		if d.T == ir.F32 {
			in.arrays[d.Name] = e.AllocF(d.Name, sz)
		} else {
			in.arrays[d.Name] = e.AllocI(d.Name, sz)
		}
	}
	if m.Prog.WLInit != ir.WLNone {
		capacity := n + 16
		if m.Prog.WLCapEdges {
			capacity = int(g.NumEdges()) + n + 16
		}
		in.wl = worklist.NewPair(e, "pipe", capacity)
		in.far = worklist.New(e, "far", capacity)
		if e.DeferredExec() {
			// Deferred tasks can stage duplicate claims for the same node
			// (each wins against its own view), so a round's pushes may
			// exceed the live-mode capacity bound; let the lists grow.
			in.wl.In.Grow = true
			in.wl.Out.Grow = true
			in.far.Grow = true
		}
	}
	return in, nil
}

// HasSellPath reports whether any kernel of the module compiled a SELL
// dense edge loop — i.e. whether attaching a SELL layout can change how the
// program executes at all.
func (m *Module) HasSellPath() bool {
	for _, kc := range m.kernels {
		if kc.sellCapable {
			return true
		}
	}
	return false
}

// AttachSell binds a SELL-C-σ layout of the instance's graph so eligible
// edge loops can take the dense-column path. Call between Bind and Run; the
// binding participates in checkpoint/restore like every other registered
// array (it is registered before the first checkpoint cut, so rollbacks
// never drop it), and ResetAll-based engine reuse simply rebinds on the
// next Bind/AttachSell pair. Attaching a layout whose C differs from the
// engine's vector width is allowed but inert: the runtime dispatch falls
// back to CSR. Passing nil detaches.
func (in *Instance) AttachSell(s *graph.SellCS) error {
	if s == nil {
		in.sell, in.sellPerm, in.sellDst, in.sellEid, in.sellWt = nil, nil, nil, nil, nil
		return nil
	}
	if s.NumNodes() != in.G.NumNodes() {
		return fmt.Errorf("codegen: attach sell: layout has %d nodes, graph %d",
			s.NumNodes(), in.G.NumNodes())
	}
	if s.LiveCells()+s.FallbackEdges() != int64(in.G.NumEdges()) {
		return fmt.Errorf("codegen: attach sell: layout covers %d edges, graph %d",
			s.LiveCells()+s.FallbackEdges(), in.G.NumEdges())
	}
	in.sell = s
	in.sellPerm = in.E.BindI("graph.sell.perm", s.Perm)
	in.sellDst = in.E.BindI("graph.sell.dst", s.Dst)
	in.sellEid = in.E.BindI("graph.sell.eid", s.EdgeID)
	if s.Wt != nil {
		in.sellWt = in.E.BindI("graph.sell.wt", s.Wt)
	}
	return nil
}

// Sell returns the attached SELL layout, nil when running pure CSR.
func (in *Instance) Sell() *graph.SellCS { return in.sell }

// Array returns a bound data array by name (for reading results).
func (in *Instance) Array(name string) *spmd.Array { return in.arrays[name] }

// ArrayI returns the int contents of a bound array.
func (in *Instance) ArrayI(name string) []int32 {
	a := in.arrays[name]
	if a == nil {
		return nil
	}
	return a.I
}

// ArrayF returns the float contents of a bound array.
func (in *Instance) ArrayF(name string) []float32 {
	a := in.arrays[name]
	if a == nil {
		return nil
	}
	return a.F
}

// FootprintBytes returns the bytes of graph + algorithm state, the quantity
// Table IX limits physical memory against.
func (in *Instance) FootprintBytes() int64 {
	total := in.G.FootprintBytes()
	if in.sell != nil {
		total += in.sell.FootprintBytes()
	}
	for _, a := range in.arrays {
		total += a.Bytes()
	}
	if in.wl != nil {
		total += in.wl.In.Items.Bytes() + in.wl.Out.Items.Bytes() + in.far.Items.Bytes()
	}
	return total
}

// initState (re)initializes arrays and worklists per their declarations;
// this setup is untimed, matching the methodology of timing only the
// algorithm (Section IV: "excluding graph loading and output writing").
func (in *Instance) initState() error {
	src := in.Params["src"]
	nn := in.G.NumNodes()
	for _, d := range in.M.Prog.Arrays {
		a := in.arrays[d.Name]
		switch d.Init {
		case ir.InitZero:
			if a.I != nil {
				a.FillI(0)
			} else {
				a.FillF(0)
			}
		case ir.InitSplat:
			if a.I != nil {
				a.FillI(d.InitI)
			} else {
				a.FillF(d.InitF)
			}
		case ir.InitIota:
			for i := range a.I {
				a.I[i] = int32(i)
			}
		case ir.InitSplatExceptSrc:
			a.FillI(d.InitI)
			if int(src) < len(a.I) {
				a.I[src] = d.SrcVal
			}
		case ir.InitHash:
			for i := range a.I {
				a.I[i] = hash32(int32(i)) & 0x7fffffff
			}
		case ir.InitDegree:
			for i := int32(0); i < nn && int(i) < len(a.I); i++ {
				a.I[i] = in.G.Degree(i)
			}
		case ir.InitInvN:
			inv := float32(1) / float32(nn)
			a.FillF(inv)
		}
	}
	switch in.M.Prog.WLInit {
	case ir.WLSrc:
		in.wl.In.Clear()
		in.wl.Out.Clear()
		in.far.Clear()
		if err := in.wl.In.InitWith(src); err != nil {
			return err
		}
	case ir.WLAllNodes:
		in.wl.In.Clear()
		in.wl.Out.Clear()
		in.far.Clear()
		if err := in.wl.In.InitSequence(nn); err != nil {
			return err
		}
	}
	// Near-far threshold starts at one delta.
	if d, ok := in.Params["delta"]; ok {
		in.Params["threshold"] = d
	}
	return nil
}

func hash32(x int32) int32 {
	u := uint32(x) * 2654435761
	u ^= u >> 15
	u *= 2246822519
	u ^= u >> 13
	return int32(u)
}

// Run initializes state and executes the pipe, advancing the engine's
// modeled clock and statistics. Failures — bounds violations, worklist
// overflows, budget exhaustion, stalled loops, recovered kernel panics,
// invariant violations — surface as typed errors matching the internal/fault
// taxonomy. With Recovery attached, recoverable faults roll back to the last
// verified checkpoint and re-execute (bounded per checkpoint) before the
// error escapes to the caller.
func (in *Instance) Run() error {
	if err := in.initState(); err != nil {
		return err
	}
	if rec := in.Recovery; rec != nil {
		rec.reset()
	}
	var rc resumeCursor
	for {
		err := in.runPipe(rc)
		if err == nil {
			return nil
		}
		if !in.canRecover() || !fault.Recoverable(err) {
			return err
		}
		rc = in.rollback()
	}
}

func (in *Instance) runPipe(rc resumeCursor) error {
	if in.compiledFns != nil {
		in.refreshBinding()
	}
	if in.M.Prog.Outline == ir.Outlined {
		return in.runOutlined(rc)
	}
	return in.runHost(rc)
}
