package codegen

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/spmd"
)

// loopGuard bounds one pipe loop: it enforces the engine budget's iteration
// cap and wall-clock deadline at every loop head, and arms the stalled-
// frontier watchdog for worklist-driven loops. In outlined mode every task
// replicates loop control, so each replica carries its own guard; all
// replicas observe identical shared state between barriers and therefore
// trip deterministically at the same loop head.
type loopGuard struct {
	in    *Instance
	loop  string
	iters int
	sig   uint64
	same  int
}

func (in *Instance) newGuard(loop string) *loopGuard {
	return &loopGuard{in: in, loop: loop}
}

// frontierSig hashes a worklist's contents (FNV-1a over items + length), the
// progress signature watched by the non-convergence watchdog.
func frontierSig(items []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range items {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	return (h ^ uint64(len(items))) * 1099511628211
}

// tick runs the per-iteration checks. watch arms the frontier watchdog over
// the pipeline-in worklist (worklist loops only).
func (g *loopGuard) tick(watch bool) error {
	g.iters++
	g.in.E.MarkIteration(int64(g.iters))
	b := g.in.E.Budget
	if err := b.CheckIters(g.iters); err != nil {
		return err
	}
	if err := b.CheckCtx(); err != nil {
		return err
	}
	if watch && b.StallWindow > 0 {
		sig := frontierSig(g.in.wl.In.Slice())
		if g.iters > 1 && sig == g.sig {
			g.same++
			if g.same >= b.StallWindow {
				return &fault.ConvergenceError{
					Loop: g.loop, Iterations: g.iters, Window: b.StallWindow,
				}
			}
		} else {
			g.same = 0
		}
		g.sig = sig
	}
	return nil
}

// observe records this iteration for the observability layer: an iteration
// span and metrics row keyed by the loop name, annotated with the
// pipeline-in frontier when the program has a worklist. In outlined mode
// only the task-0 guard replica calls it, from the single-writer window
// between barriers.
func (g *loopGuard) observe() {
	var frontier, capacity int
	if g.in.wl != nil {
		frontier = int(g.in.wl.In.Size())
		capacity = g.in.wl.In.Cap()
	}
	g.in.E.IterTick(g.loop, int64(g.iters), frontier, capacity)
}

// done closes the loop's last open iteration span at loop exit.
func (g *loopGuard) done() {
	g.in.E.IterDone(g.loop)
}

// tickHost runs the per-iteration checks and, on success, records the
// iteration (host-driven loops).
func (g *loopGuard) tickHost(watch bool) error {
	if err := g.tick(watch); err != nil {
		return err
	}
	g.observe()
	return nil
}

// runHost executes the pipe with the default translation: every kernel
// invocation is a fresh task launch and loop control runs on the host —
// launch overhead lands on the critical path once per iteration. rc, when
// active, resumes execution at a checkpoint's cursor after a rollback.
func (in *Instance) runHost(rc resumeCursor) error {
	return in.execHost(in.M.Prog.Pipe, rc, true)
}

// execHost interprets a pipe statement list on the host. top marks the
// program's top-level statement list: only top-level loop heads take
// checkpoints (nested loops roll up into their enclosing iteration), and the
// resume cursor indexes top-level statements. Fault windows sit at the
// single-writer control points after each loop's shared-state mutation,
// mirroring the task-0 windows of outlined execution.
func (in *Instance) execHost(stmts []ir.PipeStmt, rc resumeCursor, top bool) error {
	for si, s := range stmts {
		var res resumeCursor
		if top && rc.active {
			if si < rc.stmtIdx {
				continue // completed before the checkpoint was taken
			}
			if si == rc.stmtIdx {
				res = rc
			}
		}
		switch s := s.(type) {
		case *ir.Invoke:
			kc := in.M.kernels[s.Kernel]
			// Host-mode kernel bodies never hit a barrier, so use the
			// barrier-free launch: inline in the serial modes, a plain
			// fan-out in parallel mode.
			err := in.E.LaunchNoBarrier(0, func(tc *spmd.TaskCtx) { kc.runTask(in, tc) })
			if err != nil {
				return err
			}

		case *ir.LoopWL:
			g := in.newGuard("loop-wl")
			if res.active {
				g.restore(res.outer)
			}
			for in.wl.In.Size() > 0 {
				if top {
					err := in.hostCheckpoint(g, resumeCursor{stmtIdx: si, outer: g.state()})
					if err != nil {
						return err
					}
				}
				if err := g.tickHost(true); err != nil {
					return err
				}
				if err := in.execHost(s.Body, resumeCursor{}, false); err != nil {
					return err
				}
				in.wl.Swap()
				if err := in.faultWindow("loop-wl"); err != nil {
					return err
				}
			}
			g.done()

		case *ir.LoopFlag:
			flag := in.arrays[s.Flag]
			g := in.newGuard("loop-flag")
			if res.active {
				g.restore(res.outer)
			}
			for {
				if top {
					err := in.hostCheckpoint(g, resumeCursor{stmtIdx: si, outer: g.state()})
					if err != nil {
						return err
					}
				}
				if err := g.tickHost(false); err != nil {
					return err
				}
				flag.I[0] = 0
				if err := in.execHost(s.Body, resumeCursor{}, false); err != nil {
					return err
				}
				done := flag.I[0] == 0
				// Fault window at iteration end: corruption lands after the
				// body, so the next loop-head validation sees it before any
				// kernel consumes it.
				if err := in.faultWindow("loop-flag"); err != nil {
					return err
				}
				if s.IncParam != "" {
					in.Params[s.IncParam]++
				}
				if done {
					break
				}
			}
			g.done()

		case *ir.LoopFixed:
			n := s.N
			if s.NParam != "" {
				n = int(in.Params[s.NParam])
			}
			g := in.newGuard("loop-fixed")
			i0 := 0
			if res.active {
				g.restore(res.outer)
				i0 = res.ctl
			}
			for i := i0; i < n; i++ {
				if top {
					err := in.hostCheckpoint(g, resumeCursor{stmtIdx: si, outer: g.state(), ctl: i})
					if err != nil {
						return err
					}
				}
				if err := g.tickHost(false); err != nil {
					return err
				}
				if err := in.execHost(s.Body, resumeCursor{}, false); err != nil {
					return err
				}
			}
			g.done()

		case *ir.LoopConverge:
			acc := in.arrays[s.Acc]
			g := in.newGuard("loop-converge")
			it0 := 0
			if res.active {
				g.restore(res.outer)
				it0 = res.ctl
			}
			for it := it0; it < s.MaxIter; it++ {
				if top {
					err := in.hostCheckpoint(g, resumeCursor{stmtIdx: si, outer: g.state(), ctl: it})
					if err != nil {
						return err
					}
				}
				if err := g.tickHost(false); err != nil {
					return err
				}
				acc.F[0] = 0
				if err := in.execHost(s.Body, resumeCursor{}, false); err != nil {
					return err
				}
				done := acc.F[0] <= s.Eps
				// Fault window at iteration end (after the convergence read,
				// matching the outlined schedule): corruption lands after the
				// body, so the next loop-head validation sees it first.
				if err := in.faultWindow("loop-converge"); err != nil {
					return err
				}
				if done {
					break
				}
			}
			g.done()

		case *ir.LoopNearFar:
			kc := in.M.kernels[s.Kernel]
			outer := in.newGuard("loop-nearfar")
			inner := in.newGuard("loop-nearfar-inner")
			skipOuterTick := false
			if res.active {
				outer.restore(res.outer)
				inner.restore(res.inner)
				skipOuterTick = res.atInner
			}
			for {
				if !skipOuterTick {
					if err := outer.tickHost(false); err != nil {
						return err
					}
				}
				skipOuterTick = false
				for in.wl.In.Size() > 0 {
					if top {
						err := in.hostCheckpoint(inner, resumeCursor{
							stmtIdx: si, outer: outer.state(), inner: inner.state(), atInner: true,
						})
						if err != nil {
							return err
						}
					}
					if err := inner.tickHost(true); err != nil {
						return err
					}
					err := in.E.LaunchNoBarrier(0, func(tc *spmd.TaskCtx) { kc.runTask(in, tc) })
					if err != nil {
						return err
					}
					in.wl.Swap()
					if err := in.faultWindow("loop-nearfar"); err != nil {
						return err
					}
				}
				inner.done()
				if in.far.Size() == 0 {
					break
				}
				if err := in.promoteFar(s.DeltaParam); err != nil {
					return err
				}
			}
			outer.done()

		case *ir.SwapWL:
			in.wl.Swap()

		case *ir.LoopHybrid:
			g := in.newGuard("loop-hybrid")
			if res.active {
				g.restore(res.outer)
			}
			for in.wl.In.Size() > 0 {
				if top {
					err := in.hostCheckpoint(g, resumeCursor{stmtIdx: si, outer: g.state()})
					if err != nil {
						return err
					}
				}
				if err := g.tickHost(true); err != nil {
					return err
				}
				var err error
				if int(in.wl.In.Size())*s.ThreshDenom < int(in.G.NumNodes()) {
					err = in.execHost(s.Small, resumeCursor{}, false)
				} else {
					err = in.execHost(s.Big, resumeCursor{}, false)
				}
				if err != nil {
					return err
				}
				in.wl.Swap()
				if s.IncParam != "" {
					in.Params[s.IncParam]++
				}
				if err := in.faultWindow("loop-hybrid"); err != nil {
					return err
				}
			}
			g.done()

		default:
			panic(fmt.Sprintf("codegen: unknown pipe statement %T", s))
		}
	}
	return nil
}

// promoteFar moves the far list into the near (pipeline-in) list and
// advances the threshold by delta: one near-far bucket promotion.
func (in *Instance) promoteFar(deltaParam string) error {
	in.wl.In.Clear()
	if err := in.wl.In.InitWith(in.far.Slice()...); err != nil {
		return err
	}
	in.far.Clear()
	in.Params["threshold"] += in.Params[deltaParam]
	return nil
}

// runOutlined executes the pipe under Iteration Outlining: one task launch
// for the entire driver, with loop control replicated across tasks and
// synchronized by barriers (Listing 2's bfs_loop transformation). Shared
// mutations (worklist swaps, flag clears, parameter bumps) are performed by
// task 0 in a dedicated barrier-delimited segment so every task observes a
// consistent view. Guard violations unwind through TaskCtx.Fail, so the
// launch returns the same typed errors as host-mode execution.
//
// A rollback resume re-enters through ResumeLaunch, which skips the launch
// accounting the restored checkpoint already contains; every task replica
// restores its loop control from the same by-value cursor.
func (in *Instance) runOutlined(rc resumeCursor) error {
	body := func(tc *spmd.TaskCtx) {
		in.execTask(in.M.Prog.Pipe, tc, rc, true)
	}
	if rc.active {
		return in.E.ResumeLaunch(0, body)
	}
	return in.E.Launch(0, body)
}

// tickTask is the outlined-mode guard check: a violation unwinds the task.
// Only the task-0 replica records the iteration — between barriers, task 0
// is the sole writer of shared loop state, so the recording points satisfy
// the tracer's single-writer contract and the modeled timeline is identical
// to a host-driven run of the same schedule.
func (g *loopGuard) tickTask(tc *spmd.TaskCtx, watch bool) {
	if err := g.tick(watch); err != nil {
		tc.Fail(err)
	}
	if tc.Index == 0 {
		g.observe()
	}
}

// doneTask closes the loop's spans at outlined loop exit (task 0 only).
func (g *loopGuard) doneTask(tc *spmd.TaskCtx) {
	if tc.Index == 0 {
		g.done()
	}
}

// execTask interprets a pipe statement list inside an outlined launch. Like
// execHost, top marks the top-level statement list where checkpoints are
// taken and the resume cursor applies; rc arrives by value, so each replica
// restores its private guard state without shared mutation. Checkpoints and
// fault windows run in task 0's single-writer windows only.
func (in *Instance) execTask(stmts []ir.PipeStmt, tc *spmd.TaskCtx, rc resumeCursor, top bool) {
	for si, s := range stmts {
		var res resumeCursor
		if top && rc.active {
			if si < rc.stmtIdx {
				continue // completed before the checkpoint was taken
			}
			if si == rc.stmtIdx {
				res = rc
			}
		}
		switch s := s.(type) {
		case *ir.Invoke:
			in.M.kernels[s.Kernel].runTask(in, tc)
			tc.Barrier()

		case *ir.LoopWL:
			g := in.newGuard("loop-wl")
			if res.active {
				g.restore(res.outer)
			}
			for {
				if in.wl.In.Size() == 0 {
					break
				}
				if top {
					in.taskCheckpoint(tc, g, resumeCursor{stmtIdx: si, outer: g.state()})
				}
				g.tickTask(tc, true)
				in.execTask(s.Body, tc, resumeCursor{}, false)
				if tc.Index == 0 {
					in.wl.Swap()
					in.taskFaultWindow(tc, "loop-wl")
				}
				tc.Barrier()
			}
			g.doneTask(tc)

		case *ir.LoopFlag:
			flag := in.arrays[s.Flag]
			g := in.newGuard("loop-flag")
			if res.active {
				g.restore(res.outer)
			}
			for {
				if top {
					in.taskCheckpoint(tc, g, resumeCursor{stmtIdx: si, outer: g.state()})
				}
				g.tickTask(tc, false)
				if tc.Index == 0 {
					flag.I[0] = 0
				}
				tc.Barrier()
				in.execTask(s.Body, tc, resumeCursor{}, false)
				done := flag.I[0] == 0
				tc.Barrier() // everyone has read the flag
				if tc.Index == 0 {
					// Fault window at iteration end (single-writer: the other
					// tasks wait at the next barrier): corruption lands after
					// the body, so the next loop-head validation sees it
					// before any kernel consumes it.
					in.taskFaultWindow(tc, "loop-flag")
					if s.IncParam != "" {
						in.Params[s.IncParam]++
					}
				}
				tc.Barrier() // parameter bump visible before next round
				if done {
					break
				}
			}
			g.doneTask(tc)

		case *ir.LoopFixed:
			n := s.N
			if s.NParam != "" {
				n = int(in.Params[s.NParam])
			}
			g := in.newGuard("loop-fixed")
			i0 := 0
			if res.active {
				g.restore(res.outer)
				i0 = res.ctl
			}
			for i := i0; i < n; i++ {
				if top {
					in.taskCheckpoint(tc, g, resumeCursor{stmtIdx: si, outer: g.state(), ctl: i})
				}
				g.tickTask(tc, false)
				in.execTask(s.Body, tc, resumeCursor{}, false)
			}
			g.doneTask(tc)

		case *ir.LoopConverge:
			acc := in.arrays[s.Acc]
			g := in.newGuard("loop-converge")
			it0 := 0
			if res.active {
				g.restore(res.outer)
				it0 = res.ctl
			}
			for it := it0; it < s.MaxIter; it++ {
				if top {
					in.taskCheckpoint(tc, g, resumeCursor{stmtIdx: si, outer: g.state(), ctl: it})
				}
				g.tickTask(tc, false)
				if tc.Index == 0 {
					acc.F[0] = 0
				}
				tc.Barrier()
				in.execTask(s.Body, tc, resumeCursor{}, false)
				done := acc.F[0] <= s.Eps
				tc.Barrier() // everyone has read the accumulator
				if tc.Index == 0 {
					// Fault window at iteration end, after every task has read
					// the accumulator (see LoopFlag above).
					in.taskFaultWindow(tc, "loop-converge")
				}
				if done {
					break
				}
			}
			g.doneTask(tc)

		case *ir.LoopNearFar:
			kc := in.M.kernels[s.Kernel]
			outer := in.newGuard("loop-nearfar")
			inner := in.newGuard("loop-nearfar-inner")
			skipOuterTick := false
			if res.active {
				outer.restore(res.outer)
				inner.restore(res.inner)
				skipOuterTick = res.atInner
			}
			for {
				if !skipOuterTick {
					outer.tickTask(tc, false)
				}
				skipOuterTick = false
				for {
					if in.wl.In.Size() == 0 {
						break
					}
					if top {
						in.taskCheckpoint(tc, inner, resumeCursor{
							stmtIdx: si, outer: outer.state(), inner: inner.state(), atInner: true,
						})
					}
					inner.tickTask(tc, true)
					kc.runTask(in, tc)
					tc.Barrier()
					if tc.Index == 0 {
						in.wl.Swap()
						in.taskFaultWindow(tc, "loop-nearfar")
					}
					tc.Barrier()
				}
				inner.doneTask(tc)
				empty := in.far.Size() == 0
				tc.Barrier() // everyone has read the far size
				if empty {
					break
				}
				if tc.Index == 0 {
					if err := in.promoteFar(s.DeltaParam); err != nil {
						tc.Fail(err)
					}
				}
				tc.Barrier()
			}
			outer.doneTask(tc)

		case *ir.SwapWL:
			if tc.Index == 0 {
				in.wl.Swap()
			}
			tc.Barrier()

		case *ir.LoopHybrid:
			g := in.newGuard("loop-hybrid")
			if res.active {
				g.restore(res.outer)
			}
			for {
				if in.wl.In.Size() == 0 {
					break
				}
				if top {
					in.taskCheckpoint(tc, g, resumeCursor{stmtIdx: si, outer: g.state()})
				}
				g.tickTask(tc, true)
				if int(in.wl.In.Size())*s.ThreshDenom < int(in.G.NumNodes()) {
					in.execTask(s.Small, tc, resumeCursor{}, false)
				} else {
					in.execTask(s.Big, tc, resumeCursor{}, false)
				}
				if tc.Index == 0 {
					in.wl.Swap()
					if s.IncParam != "" {
						in.Params[s.IncParam]++
					}
					in.taskFaultWindow(tc, "loop-hybrid")
				}
				tc.Barrier()
			}
			g.doneTask(tc)

		default:
			panic(fmt.Sprintf("codegen: unknown pipe statement %T", s))
		}
	}
}
