package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/spmd"
)

// runHost executes the pipe with the default translation: every kernel
// invocation is a fresh task launch and loop control runs on the host —
// launch overhead lands on the critical path once per iteration.
func (in *Instance) runHost() {
	in.execHost(in.M.Prog.Pipe)
}

func (in *Instance) execHost(stmts []ir.PipeStmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Invoke:
			kc := in.M.kernels[s.Kernel]
			in.E.Launch(0, func(tc *spmd.TaskCtx) { kc.runTask(in, tc) })

		case *ir.LoopWL:
			for in.wl.In.Size() > 0 {
				in.execHost(s.Body)
				in.wl.Swap()
			}

		case *ir.LoopFlag:
			flag := in.arrays[s.Flag]
			for {
				flag.I[0] = 0
				in.execHost(s.Body)
				done := flag.I[0] == 0
				if s.IncParam != "" {
					in.Params[s.IncParam]++
				}
				if done {
					return
				}
			}

		case *ir.LoopFixed:
			n := s.N
			if s.NParam != "" {
				n = int(in.Params[s.NParam])
			}
			for i := 0; i < n; i++ {
				in.execHost(s.Body)
			}

		case *ir.LoopConverge:
			acc := in.arrays[s.Acc]
			for it := 0; it < s.MaxIter; it++ {
				acc.F[0] = 0
				in.execHost(s.Body)
				if acc.F[0] <= s.Eps {
					return
				}
			}

		case *ir.LoopNearFar:
			kc := in.M.kernels[s.Kernel]
			for {
				for in.wl.In.Size() > 0 {
					in.E.Launch(0, func(tc *spmd.TaskCtx) { kc.runTask(in, tc) })
					in.wl.Swap()
				}
				if in.far.Size() == 0 {
					return
				}
				in.promoteFar(s.DeltaParam)
			}

		case *ir.SwapWL:
			in.wl.Swap()

		case *ir.LoopHybrid:
			for in.wl.In.Size() > 0 {
				if int(in.wl.In.Size())*s.ThreshDenom < int(in.G.NumNodes()) {
					in.execHost(s.Small)
				} else {
					in.execHost(s.Big)
				}
				in.wl.Swap()
				if s.IncParam != "" {
					in.Params[s.IncParam]++
				}
			}

		default:
			panic(fmt.Sprintf("codegen: unknown pipe statement %T", s))
		}
	}
}

// promoteFar moves the far list into the near (pipeline-in) list and
// advances the threshold by delta: one near-far bucket promotion.
func (in *Instance) promoteFar(deltaParam string) {
	in.wl.In.Clear()
	in.wl.In.InitWith(in.far.Slice()...)
	in.far.Clear()
	in.Params["threshold"] += in.Params[deltaParam]
}

// runOutlined executes the pipe under Iteration Outlining: one task launch
// for the entire driver, with loop control replicated across tasks and
// synchronized by barriers (Listing 2's bfs_loop transformation). Shared
// mutations (worklist swaps, flag clears, parameter bumps) are performed by
// task 0 in a dedicated barrier-delimited segment so every task observes a
// consistent view.
func (in *Instance) runOutlined() {
	in.E.Launch(0, func(tc *spmd.TaskCtx) {
		in.execTask(in.M.Prog.Pipe, tc)
	})
}

func (in *Instance) execTask(stmts []ir.PipeStmt, tc *spmd.TaskCtx) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Invoke:
			in.M.kernels[s.Kernel].runTask(in, tc)
			tc.Barrier()

		case *ir.LoopWL:
			for {
				if in.wl.In.Size() == 0 {
					break
				}
				in.execTask(s.Body, tc)
				if tc.Index == 0 {
					in.wl.Swap()
				}
				tc.Barrier()
			}

		case *ir.LoopFlag:
			flag := in.arrays[s.Flag]
			for {
				if tc.Index == 0 {
					flag.I[0] = 0
				}
				tc.Barrier()
				in.execTask(s.Body, tc)
				done := flag.I[0] == 0
				tc.Barrier() // everyone has read the flag
				if tc.Index == 0 && s.IncParam != "" {
					in.Params[s.IncParam]++
				}
				tc.Barrier() // parameter bump visible before next round
				if done {
					break
				}
			}

		case *ir.LoopFixed:
			n := s.N
			if s.NParam != "" {
				n = int(in.Params[s.NParam])
			}
			for i := 0; i < n; i++ {
				in.execTask(s.Body, tc)
			}

		case *ir.LoopConverge:
			acc := in.arrays[s.Acc]
			for it := 0; it < s.MaxIter; it++ {
				if tc.Index == 0 {
					acc.F[0] = 0
				}
				tc.Barrier()
				in.execTask(s.Body, tc)
				done := acc.F[0] <= s.Eps
				tc.Barrier() // everyone has read the accumulator
				if done {
					break
				}
			}

		case *ir.LoopNearFar:
			kc := in.M.kernels[s.Kernel]
			for {
				for {
					if in.wl.In.Size() == 0 {
						break
					}
					kc.runTask(in, tc)
					tc.Barrier()
					if tc.Index == 0 {
						in.wl.Swap()
					}
					tc.Barrier()
				}
				empty := in.far.Size() == 0
				tc.Barrier() // everyone has read the far size
				if empty {
					break
				}
				if tc.Index == 0 {
					in.promoteFar(s.DeltaParam)
				}
				tc.Barrier()
			}

		case *ir.SwapWL:
			if tc.Index == 0 {
				in.wl.Swap()
			}
			tc.Barrier()

		case *ir.LoopHybrid:
			for {
				if in.wl.In.Size() == 0 {
					break
				}
				if int(in.wl.In.Size())*s.ThreshDenom < int(in.G.NumNodes()) {
					in.execTask(s.Small, tc)
				} else {
					in.execTask(s.Big, tc)
				}
				if tc.Index == 0 {
					in.wl.Swap()
					if s.IncParam != "" {
						in.Params[s.IncParam]++
					}
				}
				tc.Barrier()
			}

		default:
			panic(fmt.Sprintf("codegen: unknown pipe statement %T", s))
		}
	}
}
