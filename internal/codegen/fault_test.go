package codegen

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ir"
)

// stallProg spins forever: the kernel pushes every popped node straight back
// to the out list, so the frontier never changes.
func stallProg(outline ir.Outlining) *ir.Program {
	return &ir.Program{
		Name:    "stall",
		Arrays:  []ir.ArrayDecl{{Name: "x", T: ir.I32, Size: ir.SizeNodes}},
		WLInit:  ir.WLSrc,
		Outline: outline,
		Kernels: []*ir.Kernel{{
			Name: "spin", Domain: ir.DomainWL, ItemVar: "node",
			Body: []ir.Stmt{ir.PushOut(ir.V("node"))},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "spin"}}}},
	}
}

func bindStalled(t *testing.T, outline ir.Outlining, b fault.Budget) *Instance {
	t.Helper()
	m := MustCompile(stallProg(outline))
	e := newEngine()
	e.Budget = b
	in, err := m.Bind(e, graph.Road(4, 4, 4, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestStallWatchdog(t *testing.T) {
	for _, outline := range []ir.Outlining{ir.LaunchPerIteration, ir.Outlined} {
		in := bindStalled(t, outline, fault.Budget{StallWindow: 8})
		err := in.Run()
		if !errors.Is(err, fault.ErrNonConvergence) {
			t.Fatalf("outline=%v: stalled loop returned %v", outline, err)
		}
		var ce *fault.ConvergenceError
		if !errors.As(err, &ce) || ce.Window != 8 || ce.Loop != "loop-wl" {
			t.Errorf("outline=%v: detail = %+v", outline, ce)
		}
	}
}

func TestIterationBudget(t *testing.T) {
	for _, outline := range []ir.Outlining{ir.LaunchPerIteration, ir.Outlined} {
		in := bindStalled(t, outline, fault.Budget{MaxIters: 10})
		err := in.Run()
		if !errors.Is(err, fault.ErrBudgetExceeded) {
			t.Fatalf("outline=%v: unbounded loop returned %v", outline, err)
		}
		var be *fault.BudgetError
		if !errors.As(err, &be) || be.Resource != "iterations" {
			t.Errorf("outline=%v: detail = %+v", outline, be)
		}
	}
}

func TestDeadlineBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := bindStalled(t, ir.LaunchPerIteration, fault.Budget{Ctx: ctx})
	err := in.Run()
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Fatalf("cancelled run returned %v", err)
	}
}
