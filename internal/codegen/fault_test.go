package codegen

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ir"
)

// stallProg spins forever: the kernel pushes every popped node straight back
// to the out list, so the frontier never changes.
func stallProg(outline ir.Outlining) *ir.Program {
	return &ir.Program{
		Name:    "stall",
		Arrays:  []ir.ArrayDecl{{Name: "x", T: ir.I32, Size: ir.SizeNodes}},
		WLInit:  ir.WLSrc,
		Outline: outline,
		Kernels: []*ir.Kernel{{
			Name: "spin", Domain: ir.DomainWL, ItemVar: "node",
			Body: []ir.Stmt{ir.PushOut(ir.V("node"))},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "spin"}}}},
	}
}

func bindStalled(t *testing.T, outline ir.Outlining, b fault.Budget) *Instance {
	t.Helper()
	m := MustCompile(stallProg(outline))
	e := newEngine()
	e.Budget = b
	in, err := m.Bind(e, graph.Road(4, 4, 4, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestStallWatchdog(t *testing.T) {
	for _, outline := range []ir.Outlining{ir.LaunchPerIteration, ir.Outlined} {
		in := bindStalled(t, outline, fault.Budget{StallWindow: 8})
		err := in.Run()
		if !errors.Is(err, fault.ErrNonConvergence) {
			t.Fatalf("outline=%v: stalled loop returned %v", outline, err)
		}
		var ce *fault.ConvergenceError
		if !errors.As(err, &ce) || ce.Window != 8 || ce.Loop != "loop-wl" {
			t.Errorf("outline=%v: detail = %+v", outline, ce)
		}
	}
}

// TestStallWindowOne: the tightest window must trip on the very first
// repeated frontier signature — iteration 2 of a spin loop — in both
// translations.
func TestStallWindowOne(t *testing.T) {
	for _, outline := range []ir.Outlining{ir.LaunchPerIteration, ir.Outlined} {
		in := bindStalled(t, outline, fault.Budget{StallWindow: 1})
		err := in.Run()
		var ce *fault.ConvergenceError
		if !errors.As(err, &ce) {
			t.Fatalf("outline=%v: stalled loop returned %v", outline, err)
		}
		if ce.Window != 1 || ce.Iterations != 2 {
			t.Errorf("outline=%v: window-1 watchdog tripped at %+v, want iteration 2", outline, ce)
		}
	}
}

func TestIterationBudget(t *testing.T) {
	for _, outline := range []ir.Outlining{ir.LaunchPerIteration, ir.Outlined} {
		in := bindStalled(t, outline, fault.Budget{MaxIters: 10})
		err := in.Run()
		if !errors.Is(err, fault.ErrBudgetExceeded) {
			t.Fatalf("outline=%v: unbounded loop returned %v", outline, err)
		}
		var be *fault.BudgetError
		if !errors.As(err, &be) || be.Resource != "iterations" {
			t.Errorf("outline=%v: detail = %+v", outline, be)
		}
	}
}

// TestWhileTripCap: an intra-kernel while loop that never converges (as
// corrupted state can cause — e.g. a bit flip forming a union-find cycle)
// must abort with a typed recoverable fault instead of hanging. The pipe-loop
// budgets cannot see inside a kernel body; the interpreter's trip cap is the
// backstop.
func TestWhileTripCap(t *testing.T) {
	prog := &ir.Program{
		Name:   "spinwhile",
		Arrays: []ir.ArrayDecl{{Name: "x", T: ir.I32, Size: ir.SizeNodes}},
		Kernels: []*ir.Kernel{{
			Name: "spin", Domain: ir.DomainNodes, ItemVar: "n",
			Body: []ir.Stmt{
				// while x[n] == 0 {} — x is never written, so every active
				// lane spins forever.
				ir.WhileS(ir.EqE(ir.Ld("x", ir.V("n")), ir.CI(0))),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.Invoke{Kernel: "spin"}},
	}
	m := MustCompile(prog)
	e := newEngine()
	in, err := m.Bind(e, graph.Road(4, 4, 4, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Run()
	if !errors.Is(err, fault.ErrKernelPanic) {
		t.Fatalf("diverging while loop returned %v, want typed kernel fault", err)
	}
	if !fault.Recoverable(err) {
		t.Error("while trip-cap fault is not recoverable; rollback cannot heal runaway loops")
	}
}

func TestDeadlineBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := bindStalled(t, ir.LaunchPerIteration, fault.Budget{Ctx: ctx})
	err := in.Run()
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Fatalf("cancelled run returned %v", err)
	}
}
