package codegen

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

func newEngine() *spmd.Engine {
	return spmd.New(machine.Intel8(), vec.TargetAVX512x16, 4)
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(&ir.Program{Name: "empty"}); err == nil {
		t.Error("empty program compiled")
	}
	// A reserved push outside a fiber-CC kernel is a compiler-level error
	// (the validator cannot see push modes' kernel context).
	p := kernels.BFSWL().Prog.Clone()
	ir.WalkStmts(p.Kernels[0].Body, func(s ir.Stmt) {
		if push, ok := s.(*ir.Push); ok {
			push.Mode = ir.PushReserved
		}
	})
	if _, err := Compile(p); err == nil {
		t.Error("reserved push outside fiber-CC kernel compiled")
	}
}

func TestFiberCCRequiresOutPushes(t *testing.T) {
	p := kernels.SSSPNF().Prog.Clone()
	p.Kernels[0].PushCountComputable = true
	p.Kernels[0].Fibers = true
	p.Kernels[0].FiberCC = true
	ir.WalkStmts(p.Kernels[0].Body, func(s ir.Stmt) {
		if push, ok := s.(*ir.Push); ok {
			push.Mode = ir.PushReserved
		}
	})
	_, err := Compile(p)
	if err == nil || !strings.Contains(err.Error(), "pushes to target the pipeline") {
		t.Errorf("near/far fiber-CC kernel compiled: %v", err)
	}
}

func TestNPRejectsOuterWrites(t *testing.T) {
	p := &ir.Program{
		Name:   "bad-np",
		Arrays: []ir.ArrayDecl{{Name: "x", T: ir.I32, Size: ir.SizeNodes}},
		Kernels: []*ir.Kernel{{
			Name: "k", Domain: ir.DomainNodes, ItemVar: "n",
			Body: []ir.Stmt{
				ir.DeclI("acc", ir.CI(0)),
				&ir.ForEdges{EdgeVar: "e", Node: ir.V("n"), Sched: ir.SchedNP,
					Body: []ir.Stmt{ir.Set("acc", ir.AddE(ir.V("acc"), ir.CI(1)))}},
			},
		}},
		Pipe: []ir.PipeStmt{&ir.Invoke{Kernel: "k"}},
	}
	_, err := Compile(p)
	if err == nil || !strings.Contains(err.Error(), "nested parallelism") {
		t.Errorf("NP outer write compiled: %v", err)
	}
}

func TestBindRejectsCorruptGraph(t *testing.T) {
	m := MustCompile(kernels.BFSWL().Prog)
	g := graph.Road(4, 4, 4, 1)
	g.EdgeDst[0] = 999
	if _, err := m.Bind(newEngine(), g, nil); err == nil {
		t.Error("corrupt graph bound")
	}
}

func TestInstanceAccessors(t *testing.T) {
	prog := opt.MustApply(kernels.PR().Prog, opt.None())
	m := MustCompile(prog)
	in, err := m.Bind(newEngine(), graph.Road(6, 6, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Run()
	if in.ArrayF("rank") == nil || in.ArrayI("deg") == nil {
		t.Error("accessors nil for bound arrays")
	}
	if in.ArrayI("nothing") != nil || in.ArrayF("nothing") != nil {
		t.Error("accessors non-nil for unknown arrays")
	}
	if in.Array("rank") == nil {
		t.Error("Array accessor nil")
	}
}

func TestParamsDefaultsAndOverrides(t *testing.T) {
	m := MustCompile(kernels.SSSPNF().Prog)
	in, err := m.Bind(newEngine(), graph.Road(6, 6, 16, 2), map[string]int32{"delta": 7, "src": 3})
	if err != nil {
		t.Fatal(err)
	}
	if in.Params["delta"] != 7 || in.Params["src"] != 3 {
		t.Errorf("params = %v", in.Params)
	}
	in.Run()
	if in.ArrayI("dist")[3] != 0 {
		t.Error("src override ignored")
	}
}

func TestInitModes(t *testing.T) {
	prog := &ir.Program{
		Name: "inits",
		Arrays: []ir.ArrayDecl{
			{Name: "z", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "s", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplat, InitI: 9},
			{Name: "io", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitIota},
			{Name: "x", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: 5, SrcVal: -1},
			{Name: "h", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitHash},
			{Name: "d", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitDegree},
			{Name: "f", T: ir.F32, Size: ir.SizeNodes, Init: ir.InitInvN},
			{Name: "sf", T: ir.F32, Size: ir.SizeOne, Init: ir.InitSplat, InitF: 2.5},
		},
		Kernels: []*ir.Kernel{{
			Name: "nop", Domain: ir.DomainNodes, ItemVar: "n",
			Body: []ir.Stmt{ir.DeclI("t", ir.V("n"))},
		}},
		Pipe: []ir.PipeStmt{&ir.Invoke{Kernel: "nop"}},
	}
	m := MustCompile(prog)
	g := graph.Road(4, 4, 4, 1) // 16 nodes
	in, err := m.Bind(newEngine(), g, map[string]int32{"src": 2})
	if err != nil {
		t.Fatal(err)
	}
	in.Run()
	if in.ArrayI("z")[5] != 0 || in.ArrayI("s")[5] != 9 || in.ArrayI("io")[5] != 5 {
		t.Error("zero/splat/iota init wrong")
	}
	x := in.ArrayI("x")
	if x[2] != -1 || x[3] != 5 {
		t.Errorf("splat-except-src: %v", x[:4])
	}
	h := in.ArrayI("h")
	if h[0] == h[1] || h[0] < 0 || h[1] < 0 {
		t.Error("hash init not positive-distinct")
	}
	if in.ArrayI("d")[5] != g.Degree(5) {
		t.Error("degree init wrong")
	}
	if f := in.ArrayF("f")[3]; f != 1.0/16 {
		t.Errorf("inv-n init = %v", f)
	}
	if in.ArrayF("sf")[0] != 2.5 {
		t.Error("float splat init wrong")
	}
}

func TestEmitISPCUnoptimized(t *testing.T) {
	src := EmitISPC(kernels.BFSWL().Prog)
	for _, want := range []string{
		"task void bfs",
		"foreach (wi = task_range(wl_in->size))",
		"atomic_min_global(&lvl[",
		"wl_push(wl_out", // unoptimized push
		"launch[num_tasks] bfs(g);",
		"while (wl_in->size > 0)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("unoptimized ISPC missing %q\n%s", want, src)
		}
	}
	if strings.Contains(src, "packed_store_active") {
		t.Error("unoptimized emission contains cooperative push")
	}
}

func TestEmitISPCOptimized(t *testing.T) {
	prog := opt.MustApply(kernels.BFSWL().Prog, opt.All())
	src := EmitISPC(prog)
	for _, want := range []string{
		"// [fibers]",
		"// edge schedule: nested_parallel",
		"popcnt(lanemask())",
		"packed_store_active",
		"task void pipe_loop", // iteration outlining
		"barrier();",
		"launch[num_tasks] pipe_loop(g); // single launch",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("optimized ISPC missing %q\n%s", want, src)
		}
	}
}

func TestEmitISPCCoversAllKernels(t *testing.T) {
	for _, b := range kernels.All() {
		src := EmitISPC(opt.MustApply(b.Prog, opt.All()))
		if len(src) < 200 {
			t.Errorf("%s: suspiciously short emission", b.Name)
		}
		if strings.Contains(src, "?") && !strings.Contains(b.Name, "?") {
			// "?" marks an unhandled node in the pretty printer.
			for _, line := range strings.Split(src, "\n") {
				if strings.Contains(line, "?") {
					t.Errorf("%s: unhandled IR node in emission: %s", b.Name, line)
				}
			}
		}
	}
}

func TestEmitISPCSpecials(t *testing.T) {
	// Near-far, hybrid, converge and fixed drivers all render.
	src := EmitISPC(kernels.SSSPNF().Prog)
	if !strings.Contains(src, "near-far driver") || !strings.Contains(src, "wl_far") {
		t.Error("near-far emission incomplete")
	}
	src = EmitISPC(kernels.BFSHB().Prog)
	if !strings.Contains(src, "hybrid driver") {
		t.Error("hybrid emission incomplete")
	}
	src = EmitISPC(kernels.PR().Prog)
	if !strings.Contains(src, "reduce_add") || !strings.Contains(src, "break;") {
		t.Error("converge emission incomplete")
	}
	fixed := kernels.BFSWL().Prog.Clone()
	fixed.Pipe = []ir.PipeStmt{&ir.LoopFixed{N: 3, Body: []ir.PipeStmt{&ir.Invoke{Kernel: "bfs"}}}}
	if !strings.Contains(EmitISPC(fixed), "it < 3") {
		t.Error("fixed-loop emission incomplete")
	}
}

// TestWorkItemCounting: processed item counts equal the work the algorithm
// actually does.
func TestWorkItemCounting(t *testing.T) {
	prog := opt.MustApply(kernels.BFSTP().Prog, opt.None())
	m := MustCompile(prog)
	g := graph.Road(4, 4, 4, 1)
	e := newEngine()
	in, err := m.Bind(e, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Run()
	// Topology-driven: every round sweeps all 16 nodes.
	if e.Stats.WorkItems%16 != 0 || e.Stats.WorkItems == 0 {
		t.Errorf("WorkItems = %d, want a positive multiple of 16", e.Stats.WorkItems)
	}
}
