package codegen

import (
	"repro/internal/graph"
	"repro/internal/spmd"
	"repro/internal/worklist"
)

// Recovery configures barrier-consistent checkpoint/rollback for one
// Instance. When attached (Instance.Recovery), top-level pipe loops snapshot
// all engine-visible state every Every iterations at the loop head — a
// consistent cut in every execution mode — and a recoverable typed fault
// rolls the instance back to the last verified checkpoint and re-executes
// from there instead of failing the run. When Verify is set it runs against
// the live state before each snapshot; a violation marks the would-be
// checkpoint bad and itself triggers a rollback, so silent corruption never
// becomes a recovery point.
//
// Recovery preserves the determinism contract: a run that faults, rolls back
// and resumes produces bit-identical outputs, modeled clocks and statistics
// to an undisturbed run, because the checkpoint captures every input of the
// remaining execution (arrays, worklist orientation and storage, parameters,
// clocks, cache tags, loop-control cursors) and re-launches skip the
// already-charged launch accounting.
type Recovery struct {
	// Every is the checkpoint cadence in pipe-loop iterations; loop heads
	// whose completed-iteration count is a multiple of Every (including 0,
	// the pristine loop entry) take a checkpoint. Zero disables
	// checkpointing.
	Every int
	// MaxRollbacks bounds re-executions per checkpoint before the fault
	// escalates to the caller (and from there to the RunResilient fallback
	// ladder). Zero means the default of 3.
	MaxRollbacks int
	// Verify validates live state against the kernel's algorithmic
	// invariants before each checkpoint. Optional.
	Verify func(*StateView) error

	// Stats accumulates recovery counters for the current run. Kept outside
	// spmd.Stats so recovered runs stay bit-identical to undisturbed ones.
	Stats RecoveryStats

	cp     checkpointState
	skipCP bool // suppress re-checkpointing at the head a rollback resumed at
}

// RecoveryStats counts checkpoint/recovery activity of one run.
type RecoveryStats struct {
	// Checkpoints is the number of (verified) checkpoints taken.
	Checkpoints int
	// Rollbacks is the number of rollback re-executions performed.
	Rollbacks int
	// BadCheckpoints counts checkpoint attempts rejected by invariant
	// validation — detected silent corruption.
	BadCheckpoints int
	// WastedCycles is the modeled work discarded by rollbacks.
	WastedCycles float64
}

func (rec *Recovery) maxRollbacks() int {
	if rec.MaxRollbacks > 0 {
		return rec.MaxRollbacks
	}
	return 3
}

func (rec *Recovery) reset() {
	rec.Stats = RecoveryStats{}
	rec.cp.engine.Invalidate()
	rec.cp.rollbacks = 0
	rec.cp.cursor = resumeCursor{}
	rec.skipCP = false
}

// guardState is the resumable part of a loopGuard.
type guardState struct {
	iters int
	sig   uint64
	same  int
}

func (g *loopGuard) state() guardState {
	return guardState{iters: g.iters, sig: g.sig, same: g.same}
}

func (g *loopGuard) restore(s guardState) {
	g.iters, g.sig, g.same = s.iters, s.sig, s.same
}

// resumeCursor pins the pipe-control position of a checkpoint: which
// top-level statement was executing and the state of its loop guard(s) and
// control variable at the checkpointed loop head. Passed by value into every
// task replica so a resumed outlined launch restores all replicas
// identically without shared mutation.
type resumeCursor struct {
	active  bool
	stmtIdx int        // index into the top-level pipe statement list
	outer   guardState // the loop's own guard (outer guard for near-far)
	inner   guardState // near-far inner guard
	ctl     int        // loop-fixed index / loop-converge iteration
	atInner bool       // near-far: checkpoint taken at the inner loop head
}

// checkpointState is one full recovery point: the engine snapshot plus the
// codegen-level state the engine cannot see — worklist pair orientation and
// (growth-replaceable) backing-array pointers, parameter values, and the
// pipe-control cursor.
type checkpointState struct {
	engine spmd.Checkpoint

	wlIn, wlOut                 *worklist.WL
	inItems, outItems, farItems *spmd.Array

	params map[string]int32

	cursor    resumeCursor
	rollbacks int // re-executions from this checkpoint so far
}

// hostCheckpoint takes a checkpoint at a top-level loop head when the cadence
// fires. cur must describe the head so a rollback resumes exactly here. The
// returned error is an invariant violation found by validation: the
// checkpoint is not taken and the error propagates like any loop-head fault,
// rolling back to the previous (still good) checkpoint.
func (in *Instance) hostCheckpoint(g *loopGuard, cur resumeCursor) error {
	rec := in.Recovery
	if rec == nil || rec.Every <= 0 || g.iters%rec.Every != 0 {
		return nil
	}
	if rec.skipCP {
		// This head is where the last rollback resumed; its state is the
		// checkpoint itself, so re-snapshotting (and resetting the bounded
		// retry counter) would let a persistent fault livelock the run.
		rec.skipCP = false
		return nil
	}
	if rec.Verify != nil {
		if err := rec.Verify(&StateView{in: in, prev: rec.prevCP()}); err != nil {
			rec.Stats.BadCheckpoints++
			return err
		}
	}
	cp := &rec.cp
	in.E.Checkpoint(&cp.engine)
	if in.wl != nil {
		cp.wlIn, cp.wlOut = in.wl.In, in.wl.Out
		cp.inItems, cp.outItems = in.wl.In.Items, in.wl.Out.Items
		cp.farItems = in.far.Items
	}
	if cp.params == nil {
		cp.params = make(map[string]int32, len(in.Params))
	}
	for k, v := range in.Params {
		cp.params[k] = v
	}
	cur.active = true
	cp.cursor = cur
	cp.rollbacks = 0
	rec.Stats.Checkpoints++
	in.E.NoteCheckpoint(cp.engine.Iteration())
	return nil
}

// taskCheckpoint is hostCheckpoint for outlined pipes: only the task-0
// replica checkpoints (it owns the single-writer control window), and a
// validation failure unwinds the task like any guard violation.
func (in *Instance) taskCheckpoint(tc *spmd.TaskCtx, g *loopGuard, cur resumeCursor) {
	if tc.Index != 0 {
		return
	}
	if err := in.hostCheckpoint(g, cur); err != nil {
		tc.Fail(err)
	}
}

func (rec *Recovery) prevCP() *spmd.Checkpoint {
	if rec.cp.engine.Valid() {
		return &rec.cp.engine
	}
	return nil
}

// canRecover reports whether a rollback may absorb the current failure.
func (in *Instance) canRecover() bool {
	rec := in.Recovery
	return rec != nil && rec.cp.engine.Valid() && rec.cp.rollbacks < rec.maxRollbacks()
}

// rollback rewinds the instance to its last checkpoint: engine state
// (arrays, clocks, stats, cache tags, registry), worklist orientation and
// storage pointers, and parameters. The caller resumes execution from the
// checkpoint's cursor.
func (in *Instance) rollback() resumeCursor {
	rec := in.Recovery
	cp := &rec.cp
	wasted := in.E.TimeCycles() - cp.engine.Cycles()
	rec.Stats.Rollbacks++
	rec.Stats.WastedCycles += wasted
	cp.rollbacks++
	in.E.Restore(&cp.engine)
	if in.wl != nil {
		in.wl.In, in.wl.Out = cp.wlIn, cp.wlOut
		in.wl.In.Items = cp.inItems
		in.wl.Out.Items = cp.outItems
		in.far.Items = cp.farItems
	}
	for k, v := range cp.params {
		in.Params[k] = v
	}
	rec.skipCP = true
	in.E.NoteRollback(wasted)
	return cp.cursor
}

// faultWindow is the injection point at a pipe loop's single-writer control
// window (between two barriers, mutated by the host or by task 0 only): it
// draws one transient-fault variate and then one bit-flip variate per
// declared int array, in declaration order. Cost-free and draw-deterministic,
// so injected runs stay bit-identical across execution modes.
func (in *Instance) faultWindow(site string) error {
	inj := in.E.Inject
	if inj == nil {
		return nil
	}
	if err := inj.TransientFault(site); err != nil {
		return err
	}
	for _, d := range in.M.Prog.Arrays {
		a := in.arrays[d.Name]
		if a == nil || a.I == nil {
			continue
		}
		inj.FlipBits(d.Name, a.I)
	}
	return nil
}

// taskFaultWindow runs faultWindow from an outlined task-0 control window.
func (in *Instance) taskFaultWindow(tc *spmd.TaskCtx, site string) {
	if err := in.faultWindow(site); err != nil {
		tc.Fail(err)
	}
}

// StateView is the read-only view of live (and last-checkpoint) state handed
// to invariant validators. It structurally implements kernels.State without
// importing that package.
type StateView struct {
	in   *Instance
	prev *spmd.Checkpoint
}

// Graph returns the bound graph.
func (v *StateView) Graph() *graph.CSR { return v.in.G }

// CurI returns the live int contents of the named array, nil when absent.
func (v *StateView) CurI(name string) []int32 { return v.in.ArrayI(name) }

// CurF returns the live float contents of the named array, nil when absent.
func (v *StateView) CurF(name string) []float32 { return v.in.ArrayF(name) }

// PrevI returns the named array's contents at the last verified checkpoint,
// nil when there is no previous checkpoint (validators then skip evolution
// rules and check ranges only).
func (v *StateView) PrevI(name string) []int32 {
	if v.prev == nil {
		return nil
	}
	a := v.in.arrays[name]
	if a == nil {
		return nil
	}
	return v.prev.ArrayI(a.ID())
}

// PrevF is PrevI for float arrays.
func (v *StateView) PrevF(name string) []float32 {
	if v.prev == nil {
		return nil
	}
	a := v.in.arrays[name]
	if a == nil {
		return nil
	}
	return v.prev.ArrayF(a.ID())
}

// Frontier returns the pipeline-in worklist size, -1 when the program has no
// worklist.
func (v *StateView) Frontier() int {
	if v.in.wl == nil {
		return -1
	}
	return int(v.in.wl.In.Size())
}

// FrontierCap returns the pipeline-in worklist capacity, -1 without one.
func (v *StateView) FrontierCap() int {
	if v.in.wl == nil {
		return -1
	}
	return v.in.wl.In.Cap()
}
