// Command gen regenerates the checked-in generated-Go kernel backend
// (internal/compiled). For every benchmark program it applies the full
// optimization pipeline — the configuration the runtime executes by default —
// and emits specialized kernel functions per vector width, keyed by the
// optimized program's fingerprint.
//
// Run via `make gen` or `go generate ./...`; CI fails if the output drifts
// from the committed files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codegen/gogen"
	"repro/internal/kernels"
	"repro/internal/opt"
)

func main() {
	out := flag.String("out", ".", "directory to write z_*_gen.go files into")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}

func run(dir string) error {
	// Start from a clean slate so renamed or removed programs don't leave
	// stale generated files behind.
	old, err := filepath.Glob(filepath.Join(dir, "z_*_gen.go"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	for _, b := range kernels.AllWithExtensions() {
		prog, err := opt.Apply(b.Prog, opt.All())
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		src, err := gogen.EmitProgram(prog, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		name := gogen.FileName(prog.Name)
		if err := os.WriteFile(filepath.Join(dir, name), src, 0o644); err != nil {
			return err
		}
		fmt.Printf("gen: wrote %s (%d bytes)\n", name, len(src))
	}
	return nil
}
