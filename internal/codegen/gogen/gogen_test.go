package gogen

import (
	"bytes"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/opt"
)

// TestEmitDeterministic pins reproducible generation: emitting the same
// program twice yields byte-identical source (the CI drift gate `go generate
// && git diff --exit-code` depends on this), and the output is syntactically
// valid gofmt'd Go that registers every kernel at every target width.
func TestEmitDeterministic(t *testing.T) {
	for _, b := range kernels.AllWithExtensions() {
		prog, err := opt.Apply(b.Prog, opt.All())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		first, err := EmitProgram(prog, nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		second, err := EmitProgram(prog, nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: nondeterministic emission", b.Name)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, FileName(prog.Name), first, 0); err != nil {
			t.Errorf("%s: generated source does not parse: %v", b.Name, err)
		}
		src := string(first)
		for _, k := range prog.Kernels {
			for _, w := range Widths {
				call := `Register("` + prog.Name
				_ = call // fingerprint is embedded; check by kernel/width instead
				want := `"` + k.Name + `", ` + itoa(w) + ","
				if !strings.Contains(src, want) {
					t.Errorf("%s: missing registration for kernel %q width %d", b.Name, k.Name, w)
				}
			}
		}
		if !strings.Contains(src, "DO NOT EDIT") {
			t.Errorf("%s: missing generated-code marker", b.Name)
		}
	}
}

func itoa(n int) string {
	if n == 8 {
		return "8"
	}
	if n == 16 {
		return "16"
	}
	return ""
}

// TestEmitUnknownWidthRejected: the emitter only targets the widths the
// runtime dispatch can select; asking for others is an explicit error, not
// silently wrong code.
func TestEmitUnknownWidthRejected(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := opt.Apply(b.Prog, opt.All())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmitProgram(prog, []int{7}); err == nil {
		t.Error("width 7 accepted")
	}
}
