package gogen

// Kernel skeleton and edge-loop emission: mirrors kernelCode.runTask,
// sumDegrees, loadItems, runChunk and the three ForEdges loop builders in
// internal/codegen/kernel.go. Register frames become function locals; the
// nested-parallelism permuted frames become one extra local set per nesting
// level (p1*, p2*, ...), copied with the interpreter's exact shuffle
// accounting.

import (
	"bytes"
	"fmt"

	"repro/internal/ir"
)

// emit generates one kernel function. It runs the body emission twice: the
// first pass discovers the final register counts (the NP lane-shuffle copies
// and its OpN charge cover the whole frame, including slots declared later
// in program order — the interpreter sizes frames after compiling the whole
// kernel), the second pass emits the real text using those totals.
func (c *kemit) emit(name string) error {
	pass1 := &kemit{
		pe: c.pe, prog: c.prog, k: c.k, W: c.W,
		slotI: map[string]int{}, slotF: map[string]int{}, slotM: map[string]int{},
		hoisted: map[string]bool{}, prefixes: map[string]bool{},
		out: &bytes.Buffer{}, finalNI: -1,
	}
	if err := pass1.emitBody(); err != nil {
		return err
	}
	c.finalNI, c.finalNF, c.finalNM = pass1.nI, pass1.nF, pass1.nM
	if err := c.emitBody(); err != nil {
		return err
	}
	return c.assembleFunc(name)
}

func (c *kemit) emitBody() error {
	c.ind = 1
	itemSlot := c.declare(c.k.ItemVar, ir.I32)

	if c.k.FiberCC {
		var bad bool
		ir.WalkStmts(c.k.Body, func(s ir.Stmt) {
			if p, ok := s.(*ir.Push); ok && p.WL != "out" {
				bad = true
			}
		})
		if bad {
			return c.errf("fiber-level CC requires all pushes to target the pipeline worklist")
		}
	}

	W := c.W
	c.w("tc.MarkPhase(%q)", c.k.Name)
	c.w("var n int32")
	if c.k.Domain == ir.DomainNodes {
		c.w("n = b.NumNodes")
	} else {
		c.w("n = b.WL.In.SizeCounted(tc)")
	}
	c.open("if n == 0 {")
	c.w("return")
	c.close()
	c.w("chunksTotal := (n + %d) / %d", W-1, W)
	c.w("chunksPer := (chunksTotal + int32(tc.Count) - 1) / int32(tc.Count)")
	c.w("start := int32(tc.Index) * chunksPer * %d", W)
	c.w("end := start + chunksPer*%d", W)
	c.open("if end > n {")
	c.w("end = n")
	c.close()
	c.open("if start >= end {")
	c.w("return")
	c.close()

	if c.k.FiberCC {
		c.genSumDegreesReserve(itemSlot)
	}

	c.w("chunks := (end - start + %d) / %d", W-1, W)
	if c.k.Fibers {
		c.w("fibers := (n + int32(%d*tc.Count) - 1) / int32(%d*tc.Count)", W, W)
		c.open("if fibers > b.MaxFibers {")
		c.w("fibers = b.MaxFibers")
		c.close()
		c.open("if fibers < 1 {")
		c.w("fibers = 1")
		c.close()
		c.open("for f := int32(0); f < fibers; f++ {")
		c.open("for ci := f; ci < chunks; ci += fibers {")
		c.w("tc.ScalarOps(2)")
		if err := c.genChunk(itemSlot); err != nil {
			return err
		}
		c.close()
		c.close()
	} else {
		c.open("for ci := int32(0); ci < chunks; ci++ {")
		if err := c.genChunk(itemSlot); err != nil {
			return err
		}
		c.close()
	}
	return nil
}

// genChunk mirrors runChunk: compute the chunk mask, load the item vector
// into the item register, set the chunk base and run the body.
func (c *kemit) genChunk(itemSlot int) error {
	W := c.W
	c.w("base := start + ci*%d", W)
	c.w("cnt := end - base")
	c.open("if cnt > %d {", W)
	c.w("cnt = %d", W)
	c.close()
	c.open("if cnt <= 0 {")
	c.w("continue")
	c.close()
	c.w("m0 := vec.FullMask(int(cnt))")
	c.genLoadItems(c.regI(itemSlot), "base", "m0")
	c.w("chunkBase = base")
	c.w("tc.Work(int(cnt))")
	return c.genStmts(c.k.Body, "m0")
}

// genLoadItems mirrors loadItems. dst must be an existing vec.Vec local;
// inactive lanes are left stale, which is unobservable (the interpreter's
// zeros there are equally never read — lane 0 of a chunk is always active).
func (c *kemit) genLoadItems(dst, base, m string) {
	if c.k.Domain == ir.DomainNodes {
		c.open("if b.SellPerm != nil {")
		c.w("tc.LoadVecIP(b.SellPerm, %s, %s, &%s)", base, m, dst)
		c.els()
		c.w("tc.Op(vec.ClassALU, false)")
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.w("%s[i] = %s + int32(i)", dst, base)
		c.close()
		c.close()
		return
	}
	c.w("tc.LoadVecIP(b.WL.In.Items, %s, %s, &%s)", base, m, dst)
}

// genSumDegreesReserve mirrors sumDegrees + the fiber-CC single reservation.
func (c *kemit) genSumDegreesReserve(itemSlot int) {
	W := c.W
	c.usesRes = true
	c.w("total := int32(0)")
	c.open("for base := start; base < end; base += %d {", W)
	c.w("cnt := end - base")
	c.open("if cnt > %d {", W)
	c.w("cnt = %d", W)
	c.close()
	c.w("md := vec.FullMask(int(cnt))")
	c.w("var items vec.Vec")
	c.genLoadItems("items", "base", "md")
	c.w("var rs vec.Vec")
	c.w("tc.GatherIP(b.RowPtr, &items, md, false, &rs)")
	c.w("tc.Op(vec.ClassALU, false)")
	c.w("var i1 vec.Vec")
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if md.Bit(i) {")
	c.w("i1[i] = items[i] + 1")
	c.els()
	c.w("i1[i] = items[i]")
	c.close()
	c.close()
	c.w("var re vec.Vec")
	c.w("tc.GatherIP(b.RowPtr, &i1, md, false, &re)")
	c.w("tc.Op(vec.ClassALU, false)")
	c.w("var deg vec.Vec")
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if md.Bit(i) {")
	c.w("deg[i] = re[i] - rs[i]")
	c.els()
	c.w("deg[i] = re[i]")
	c.close()
	c.close()
	c.w("tc.Op(vec.ClassReduce, false)")
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if md.Bit(i) {")
	c.w("total += deg[i]")
	c.close()
	c.close()
	c.close()
	c.w("resPos := b.WL.Out.Reserve(tc, total)")
	c.w("_ = resPos")
}

// --- ForEdges ---

func (c *kemit) genForEdges(s *ir.ForEdges, m string) error {
	edgeSlot := c.declare(s.EdgeVar, ir.I32)
	elig := c.sellEligible(s, c.inner)

	savedOut, savedInd := c.out, c.ind

	// CSR loop first (same body-compilation order as the interpreter, so
	// declarations allocate the same slots), into a buffer; with a SELL
	// variant it nests one level deeper inside the dispatch.
	bufCSR := &bytes.Buffer{}
	c.out = bufCSR
	if elig {
		c.ind = savedInd + 1
	}
	var err error
	if s.Sched == ir.SchedNP {
		err = c.genNPLoop(s, edgeSlot, m)
	} else {
		err = c.genSerialLoop(s, edgeSlot, m)
	}
	if err != nil {
		c.out, c.ind = savedOut, savedInd
		return err
	}

	if !elig {
		c.out, c.ind = savedOut, savedInd
		c.out.Write(bufCSR.Bytes())
		return nil
	}

	bufSell := &bytes.Buffer{}
	c.out = bufSell
	c.ind = savedInd + 2
	err = c.genSellLoop(s, edgeSlot, m)
	c.out, c.ind = savedOut, savedInd
	if err != nil {
		return err
	}

	// Per-chunk dispatch: SELL needs an attached layout with slice height W
	// (the chunk base then identifies one whole slice) and a dense-enough
	// mask; sparse phases stay on CSR.
	disp := c.newTmp("disp")
	sl := c.newTmp("sl")
	c.w("%s := false", disp)
	c.open("if %s := b.Sell; %s != nil && int(%s.C) == %d && !%s.IsFallback(chunkBase/%s.C) {", sl, sl, sl, c.W, sl, sl)
	c.w("tc.ScalarOps(1)")
	c.open("if 2*%s.PopCount() >= %d {", m, c.W)
	c.w("%s = true", disp)
	c.out.Write(bufSell.Bytes())
	c.close()
	c.close()
	c.open("if !%s {", disp)
	c.out.Write(bufCSR.Bytes())
	c.close()
	return nil
}

// sellEligible mirrors kcompiler.sellEligible.
func (c *kemit) sellEligible(s *ir.ForEdges, nested bool) bool {
	if nested || c.k.Domain != ir.DomainNodes {
		return false
	}
	v, ok := s.Node.(*ir.Var)
	if !ok || v.Name != c.k.ItemVar {
		return false
	}
	ok = true
	ir.WalkStmts(c.k.Body, func(st ir.Stmt) {
		switch st := st.(type) {
		case *ir.Assign:
			if st.Name == c.k.ItemVar || st.Name == s.EdgeVar {
				ok = false
			}
		case *ir.Decl:
			if st.Name == c.k.ItemVar || st.Name == s.EdgeVar {
				ok = false
			}
		case *ir.ForEdges:
			if st != s && st.EdgeVar == s.EdgeVar {
				ok = false
			}
		}
	})
	return ok
}

// genSellLoop mirrors buildSellLoop, compiling the body in cell mode. It is
// emitted inside the dispatch block, where the slice variable from
// genForEdges' dispatch header is NOT in scope — it re-reads b.Sell.
func (c *kemit) genSellLoop(s *ir.ForEdges, edgeSlot int, m string) error {
	W := c.W
	c.usesCell = true
	c.cellPfx("")

	// Cell-mode body into a scratch buffer first: emission records whether
	// the weight / edge-id columns are consumed at all.
	savedInner := c.inner
	savedSell, savedWt, savedEid := c.sellEdge, c.sellWtUsed, c.sellEdgeUsed
	c.inner = true
	c.sellEdge, c.sellWtUsed, c.sellEdgeUsed = s.EdgeVar, false, false

	savedOut, savedInd := c.out, c.ind
	bufBody := &bytes.Buffer{}
	c.out = bufBody
	c.ind = savedInd + 2
	act := c.newTmp("act")
	err := c.genStmts(s.Body, act)
	c.out, c.ind = savedOut, savedInd
	useWt, useEid := c.sellWtUsed, c.sellEdgeUsed
	c.sellEdge, c.sellWtUsed, c.sellEdgeUsed = savedSell, savedWt, savedEid
	c.inner = savedInner
	if err != nil {
		return err
	}
	c.hasSell = true

	c.open("if %s.Any() {", m)
	c.w("sell := b.Sell")
	c.w("sli := chunkBase / sell.C")
	c.w("sst := sell.SlicePtr[sli]")
	c.w("sht := (sell.SlicePtr[sli+1] - sst) / sell.C")
	c.w("fullM := vec.FullMask(%d)", W)
	c.w("tc.ScalarOps(2)")
	c.open("for j := int32(0); j < sht; j++ {")
	c.w("off := sst + j*sell.C")
	c.w("tc.LoadVecIP(b.SellDst, off, fullM, &cellDst)")
	c.w("tc.Op(vec.ClassCmp, false)")
	c.w("var %s vec.Mask", act)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if cellDst[i] >= 0 {")
	c.w("%s = %s.Set(i)", act, act)
	c.close()
	c.close()
	c.w("%s &= %s", act, m)
	c.w("tc.InnerTally(%s.PopCount())", act)
	c.open("if %s.None() {", act)
	c.w("break")
	c.close()
	c.w("tc.NoteSellColumn(%s.PopCount())", act)
	if useWt {
		c.open("if b.SellWt != nil {")
		c.w("tc.LoadVecIP(b.SellWt, off, fullM, &cellWt)")
		c.els()
		c.open("for i := 0; i < %d; i++ {", W)
		c.w("cellWt[i] = 1")
		c.close()
		c.close()
	}
	if useEid {
		eid := c.newTmp("t")
		c.w("var %s vec.Vec", eid)
		c.w("tc.LoadVecIP(b.SellEid, off, fullM, &%s)", eid)
		c.w("tc.Op(vec.ClassBlend, true)")
		reg := c.regI(edgeSlot)
		c.open("for i := 0; i < %d; i++ {", W)
		c.open("if %s.Bit(i) {", act)
		c.w("%s[i] = %s[i]", reg, eid)
		c.close()
		c.close()
	}
	c.out.Write(bufBody.Bytes())
	c.close()
	c.close()
	return nil
}

// genSerialLoop mirrors buildSerialLoop: each lane walks its own edge range
// in lockstep. rs doubles as the edge cursor (the interpreter's e := rs).
func (c *kemit) genSerialLoop(s *ir.ForEdges, edgeSlot int, m string) error {
	W := c.W
	c.open("if %s.Any() {", m)
	node, err := c.genI(s.Node, m)
	if err != nil {
		c.close()
		return err
	}
	nv := c.asVecI(node)
	rs := c.newTmp("rs")
	re := c.newTmp("re")
	n1 := c.newTmp("t")
	c.w("var %s vec.Vec", rs)
	c.w("tc.GatherIP(b.RowPtr, &%s, %s, false, &%s)", nv, m, rs)
	c.w("tc.Op(vec.ClassALU, false)")
	c.w("var %s vec.Vec", n1)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", m)
	c.w("%s[i] = %s + 1", n1, node.lane("i"))
	c.els()
	c.w("%s[i] = %s", n1, node.lane("i"))
	c.close()
	c.close()
	c.w("var %s vec.Vec", re)
	c.w("tc.GatherIP(b.RowPtr, &%s, %s, false, &%s)", n1, m, re)

	act := c.newTmp("act")
	edge := c.regI(edgeSlot)
	c.open("for {")
	c.w("tc.InnerOp(vec.ClassCmp, true, %s.PopCount())", m)
	c.w("var %s vec.Mask", act)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) && %s[i] < %s[i] {", m, rs, re)
	c.w("%s = %s.Set(i)", act, act)
	c.close()
	c.close()
	c.open("if %s.None() {", act)
	c.w("break")
	c.close()
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", act)
	c.w("%s[i] = %s[i]", edge, rs)
	c.close()
	c.close()

	savedInner := c.inner
	c.inner = true
	err = c.genStmts(s.Body, act)
	c.inner = savedInner
	if err != nil {
		return err
	}

	c.w("tc.InnerOp(vec.ClassALU, true, %s.PopCount())", act)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", act)
	c.w("%s[i]++", rs)
	c.close()
	c.close()
	c.close()
	c.close()
	return nil
}

// genNPLoop mirrors buildNPLoop: the inspector-executor nested-parallelism
// scheduler. Permuted register frames become the next nesting level's local
// set, copied with the interpreter's OpN(ALU, regs) shuffle charge.
func (c *kemit) genNPLoop(s *ir.ForEdges, edgeSlot int, m string) error {
	W := c.W
	c.open("if %s.Any() {", m)
	node, err := c.genI(s.Node, m)
	if err != nil {
		c.close()
		return err
	}
	nv := c.asVecI(node)
	rs, re, n1, deg := c.newTmp("rs"), c.newTmp("re"), c.newTmp("t"), c.newTmp("deg")
	c.w("var %s vec.Vec", rs)
	c.w("tc.GatherIP(b.RowPtr, &%s, %s, false, &%s)", nv, m, rs)
	c.w("tc.Op(vec.ClassALU, false)")
	c.w("var %s vec.Vec", n1)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", m)
	c.w("%s[i] = %s + 1", n1, node.lane("i"))
	c.els()
	c.w("%s[i] = %s", n1, node.lane("i"))
	c.close()
	c.close()
	c.w("var %s vec.Vec", re)
	c.w("tc.GatherIP(b.RowPtr, &%s, %s, false, &%s)", n1, m, re)
	c.w("tc.Op(vec.ClassALU, false)")
	c.w("var %s vec.Vec", deg)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", m)
	c.w("%s[i] = %s[i] - %s[i]", deg, re, rs)
	c.els()
	c.w("%s[i] = %s[i]", deg, re)
	c.close()
	c.close()

	// Inspector: classify lanes against the big-degree threshold (snapshot
	// of BigDegreeFactor*W in the binding).
	c.w("tc.Op(vec.ClassCmp, false)")
	big := c.newTmp("big")
	small := c.newTmp("small")
	c.w("var %s vec.Mask", big)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) && %s[i] >= b.BigDeg {", m, deg)
	c.w("%s = %s.Set(i)", big, big)
	c.close()
	c.close()
	c.w("%s := %s &^ %s", small, m, big)

	// Save compile-mode state and prepare the body's NP context.
	outer := make(map[string]bool, c.nI+c.nF+c.nM)
	for name := range c.slotI {
		outer[name] = true
	}
	for name := range c.slotF {
		outer[name] = true
	}
	for name := range c.slotM {
		outer[name] = true
	}
	delete(outer, s.EdgeVar)

	srcPfx := c.regPrefix()
	dstPfx := fmt.Sprintf("p%d", c.npDepth+1)
	c.prefixes[dstPfx] = true
	edgeDst := fmt.Sprintf("%sI%d", dstPfx, edgeSlot)

	genBody := func(em string) error {
		savedInner, savedOuter := c.inner, c.npOuter
		c.inner = true
		c.npOuter = outer
		c.npDepth++
		err := c.genStmts(s.Body, em)
		c.npDepth--
		c.inner, c.npOuter = savedInner, savedOuter
		return err
	}

	// High/medium-degree lanes: broadcast one lane's context to the whole
	// vector and sweep its edge range W at a time.
	c.open("for l := 0; l < %d; l++ {", W)
	c.open("if !%s.Bit(l) {", big)
	c.w("continue")
	c.close()
	c.w("tc.ScalarOps(2)")
	c.w("tc.OpN(vec.ClassALU, false, kregs)")
	c.usesRegs = true
	c.genPermuteBroadcast(srcPfx, dstPfx, "l")
	bv, tv := c.newTmp("eb"), c.newTmp("et")
	c.w("%s, %s := %s[l], %s[l]", bv, tv, rs, re)
	c.open("for eb := %s; eb < %s; eb += %d {", bv, tv, W)
	c.w("ec := %s - eb", tv)
	c.open("if ec > %d {", W)
	c.w("ec = %d", W)
	c.close()
	em := c.newTmp("em")
	c.w("%s := vec.FullMask(int(ec))", em)
	c.w("tc.InnerOp(vec.ClassALU, true, %s.PopCount())", em)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", em)
	c.w("%s[i] = eb + int32(i)", edgeDst)
	c.els()
	c.w("%s[i] = eb", edgeDst)
	c.close()
	c.close()
	if err := genBody(em); err != nil {
		return err
	}
	c.close()
	c.close()

	// Low-degree lanes: pack (source lane, edge index) pairs with an
	// exclusive scan and execute W at a time with permuted frames.
	c.open("if %s.Any() {", small)
	c.w("tc.Op(vec.ClassScan, false)")
	offs, total := c.newTmp("offs"), c.newTmp("tot")
	c.w("var %s vec.Vec", offs)
	c.w("%s := int32(0)", total)
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if %s.Bit(i) {", small)
	c.w("%s[i] = %s", offs, total)
	c.w("%s += %s[i]", total, deg)
	c.close()
	c.close()
	c.open("if %s != 0 {", total)
	sb, eb := c.newTmp("sbuf"), c.newTmp("ebuf")
	c.w("var %s, %s [vec.MaxWidth * vec.MaxWidth]int32", sb, eb)
	c.open("for l := 0; l < %d; l++ {", W)
	c.open("if !%s.Bit(l) {", small)
	c.w("continue")
	c.close()
	c.w("o := %s[l]", offs)
	c.open("for j := int32(0); j < %s[l]; j++ {", deg)
	c.w("%s[o+j] = int32(l)", sb)
	c.w("%s[o+j] = %s[l] + j", eb, rs)
	c.close()
	c.close()
	c.w("tc.OpN(vec.ClassVStore, false, (int(%s)+%d)/%d)", total, W-1, W)
	c.open("for pb := int32(0); pb < %s; pb += %d {", total, W)
	c.w("pc := %s - pb", total)
	c.open("if pc > %d {", W)
	c.w("pc = %d", W)
	c.close()
	pm := c.newTmp("em")
	c.w("%s := vec.FullMask(int(pc))", pm)
	c.w("tc.OpN(vec.ClassVLoad, false, 2)")
	c.w("tc.OpN(vec.ClassALU, false, kregs)")
	c.usesRegs = true
	c.genPermutePacked(srcPfx, dstPfx, sb, "pb", "pc")
	c.open("for i := 0; i < %d; i++ {", W)
	c.open("if int32(i) < pc {")
	c.w("%s[i] = %s[pb+int32(i)]", edgeDst, eb)
	c.els()
	c.w("%s[i] = 0", edgeDst)
	c.close()
	c.close()
	if err := genBody(pm); err != nil {
		return err
	}
	c.close()
	c.close()
	c.close()
	c.close()
	return nil
}

// regCounts returns the frame-wide register counts the NP shuffle covers:
// the final totals when known (pass 2), else the running totals (pass 1,
// whose output is discarded).
func (c *kemit) regCounts() (int, int, int) {
	if c.finalNI >= 0 {
		return c.finalNI, c.finalNF, c.finalNM
	}
	return c.nI, c.nF, c.nM
}

// genPermuteBroadcast emits frame.permuted(Splat(l)): every destination lane
// reads source lane l. Masks become all-or-nothing; cell columns are copied
// only in cell mode, the single context in which the body can observe them.
func (c *kemit) genPermuteBroadcast(src, dst, l string) {
	W := c.W
	nI, nF, nM := c.regCounts()
	if nI > 0 || nF > 0 || c.sellEdge != "" {
		c.open("for i := 0; i < %d; i++ {", W)
		for r := 0; r < nI; r++ {
			c.w("%sI%d[i] = %sI%d[%s]", dst, r, src, r, l)
		}
		for r := 0; r < nF; r++ {
			c.w("%sF%d[i] = %sF%d[%s]", dst, r, src, r, l)
		}
		if c.sellEdge != "" {
			c.w("%s[i] = %s[%s]", c.cellAt(dst, "cellDst"), c.cellAt(src, "cellDst"), l)
			c.w("%s[i] = %s[%s]", c.cellAt(dst, "cellWt"), c.cellAt(src, "cellWt"), l)
		}
		c.close()
	}
	for r := 0; r < nM; r++ {
		c.open("if %sM%d.Bit(%s) {", src, r, l)
		c.w("%sM%d = vec.FullMask(%d)", dst, r, W)
		c.els()
		c.w("%sM%d = 0", dst, r)
		c.close()
	}
}

// genPermutePacked emits frame.permuted(FromSlice(srcBuf[pb:pb+pc])): lane i
// reads source lane srcBuf[pb+i], with zero-padding beyond pc (lane 0 is
// always active in the outer chunk, so its values match the interpreter's).
func (c *kemit) genPermutePacked(src, dst, sbuf, pb, pc string) {
	W := c.W
	nI, nF, nM := c.regCounts()
	for r := 0; r < nM; r++ {
		c.w("%sM%d = 0", dst, r)
	}
	c.open("for i := 0; i < %d; i++ {", W)
	c.w("si := 0")
	c.open("if int32(i) < %s {", pc)
	c.w("si = int(%s[%s+int32(i)])", sbuf, pb)
	c.close()
	for r := 0; r < nI; r++ {
		c.w("%sI%d[i] = %sI%d[si]", dst, r, src, r)
	}
	for r := 0; r < nF; r++ {
		c.w("%sF%d[i] = %sF%d[si]", dst, r, src, r)
	}
	if c.sellEdge != "" {
		c.w("%s[i] = %s[si]", c.cellAt(dst, "cellDst"), c.cellAt(src, "cellDst"))
		c.w("%s[i] = %s[si]", c.cellAt(dst, "cellWt"), c.cellAt(src, "cellWt"))
	}
	for r := 0; r < nM; r++ {
		c.open("if %sM%d.Bit(si) {", src, r)
		c.w("%sM%d = %sM%d.Set(i)", dst, r, dst, r)
		c.close()
	}
	c.close()
}

// cellName resolves the current nesting level's cell-column local.
func (c *kemit) cellName(base string) string {
	return c.cellAt(c.regPrefix(), base)
}

// cellAt resolves a cell-column local for an explicit register prefix; the
// depth-0 prefix "r" uses the bare name.
func (c *kemit) cellAt(pfx, base string) string {
	name := base
	if pfx != "r" {
		name = pfx + base
	}
	c.cellPfx(pfx)
	return name
}

func (c *kemit) cellPfx(pfx string) {
	if c.cellPrefixes == nil {
		c.cellPrefixes = map[string]bool{}
	}
	if pfx != "" {
		c.cellPrefixes[pfx] = true
	}
	c.usesCell = true
}
