package gogen

// Expression and statement emission: each case mirrors the corresponding
// closure in internal/codegen/expr.go and stmt.go, with the same evaluation
// and cost-charging order. Vector arithmetic becomes inline lane loops with
// the interpreter's merge-masking semantics; memory, atomic and worklist
// operations call the TaskCtx pointer-variant primitives.

import (
	"fmt"
	"strconv"

	"repro/internal/ir"
)

// els switches an open if block to its else branch.
func (c *kemit) els() {
	c.ind--
	c.w("} else {")
	c.ind++
}

// emitCountOp mirrors kcompiler.countOp: inner-loop charges track lane
// utilization, outer charges only maskedness.
func (c *kemit) emitCountOp(class, m string) {
	if c.inner {
		c.w("tc.InnerOp(vec.%s, !%s.All(%d), %s.PopCount())", class, m, c.W, m)
	} else {
		c.w("tc.Op(vec.%s, !%s.All(%d))", class, m, c.W)
	}
}

func (c *kemit) checkNPWrite(name string) error {
	if c.npOuter != nil && c.npOuter[name] {
		return c.errf("nested parallelism: assignment to %q declared outside the edge loop; NP bodies must write through arrays, atomics or pushes", name)
	}
	return nil
}

// --- i32 expressions ---

func (c *kemit) genI(e ir.Expr, m string) (valI, error) {
	switch e := e.(type) {
	case *ir.ConstI:
		return valI{scalar: fmt.Sprintf("int32(%d)", e.V)}, nil
	case *ir.Param:
		return valI{scalar: c.paramRef(e.Name)}, nil
	case *ir.NumNodes:
		return valI{scalar: "b.NumNodes"}, nil
	case *ir.Var:
		if c.sellEdge != "" && e.Name == c.sellEdge {
			c.sellEdgeUsed = true
		}
		slot, ok := c.slotI[e.Name]
		if !ok {
			return valI{}, c.errf("int variable %q not in scope", e.Name)
		}
		return valI{vec: c.regI(slot)}, nil
	case *ir.Bin:
		return c.genBinI(e, m)
	case *ir.Sel:
		cond, err := c.genM(e.Cond, m)
		if err != nil {
			return valI{}, err
		}
		cm := c.newTmp("cm")
		c.w("%s := %s", cm, cond)
		c.emitCountOp("ClassBlend", m)
		a, err := c.genI(e.A, m)
		if err != nil {
			return valI{}, err
		}
		bv, err := c.genI(e.B, m)
		if err != nil {
			return valI{}, err
		}
		t := c.newTmp("t")
		c.w("var %s vec.Vec", t)
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.open("if %s.Bit(i) {", cm)
		c.w("%s[i] = %s", t, a.lane("i"))
		c.els()
		c.w("%s[i] = %s", t, bv.lane("i"))
		c.close()
		c.close()
		return valI{vec: t}, nil
	case *ir.Load:
		a := c.prog.ArrayByName(e.Arr)
		if a == nil || a.T != ir.I32 {
			return valI{}, c.errf("load %q is not i32", e.Arr)
		}
		idx, err := c.genI(e.Idx, m)
		if err != nil {
			return valI{}, err
		}
		return c.gatherI(c.arrayRef(e.Arr), idx, m), nil
	case *ir.RowStart:
		node, err := c.genI(e.Node, m)
		if err != nil {
			return valI{}, err
		}
		return c.gatherI("b.RowPtr", node, m), nil
	case *ir.RowEnd:
		node, err := c.genI(e.Node, m)
		if err != nil {
			return valI{}, err
		}
		c.emitCountOp("ClassALU", m)
		n1 := c.newTmp("t")
		c.w("var %s vec.Vec", n1)
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.open("if %s.Bit(i) {", m)
		c.w("%s[i] = %s + 1", n1, node.lane("i"))
		c.els()
		c.w("%s[i] = %s", n1, node.lane("i"))
		c.close()
		c.close()
		return c.gatherI("b.RowPtr", valI{vec: n1}, m), nil
	case *ir.EdgeDst:
		if v, ok := e.Edge.(*ir.Var); ok && c.sellEdge != "" && v.Name == c.sellEdge {
			return valI{vec: c.cellName("cellDst")}, nil
		}
		edge, err := c.genI(e.Edge, m)
		if err != nil {
			return valI{}, err
		}
		return c.gatherI("b.EdgeDst", edge, m), nil
	case *ir.EdgeWt:
		if v, ok := e.Edge.(*ir.Var); ok && c.sellEdge != "" && v.Name == c.sellEdge {
			c.sellWtUsed = true
			return valI{vec: c.cellName("cellWt")}, nil
		}
		// Unweighted graphs splat 1 with no charge and no access, exactly
		// like the interpreter's nil-edgeWt branch — the edge expression's
		// side effects (its op charges) happen only on the weighted path.
		t := c.newTmp("t")
		c.w("var %s vec.Vec", t)
		c.open("if b.EdgeWt != nil {")
		edge, err := c.genI(e.Edge, m)
		if err != nil {
			return valI{}, err
		}
		ev := c.asVecI(edge)
		c.w("tc.GatherIP(b.EdgeWt, &%s, %s, %s, &%s)", ev, m, boolLit(c.inner), t)
		c.els()
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.w("%s[i] = 1", t)
		c.close()
		c.close()
		return valI{vec: t}, nil
	case *ir.ToI:
		a, err := c.genF(e.A, m)
		if err != nil {
			return valI{}, err
		}
		c.emitCountOp("ClassConvert", m)
		t := c.newTmp("t")
		c.w("var %s vec.Vec", t)
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.w("%s[i] = int32(%s)", t, a.lane("i"))
		c.close()
		return valI{vec: t}, nil
	}
	return valI{}, c.errf("expression %T is not i32", e)
}

// gatherI emits a masked gather from arr (an emitted *spmd.Array expression)
// into a fresh temp. Inactive lanes are zero, matching the interpreter's
// merge onto vec.Vec{}.
func (c *kemit) gatherI(arr string, idx valI, m string) valI {
	iv := c.asVecI(idx)
	t := c.newTmp("t")
	c.w("var %s vec.Vec", t)
	c.w("tc.GatherIP(%s, &%s, %s, %s, &%s)", arr, iv, m, boolLit(c.inner), t)
	return valI{vec: t}
}

func boolLit(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

var binSymI = map[ir.BinOp]string{
	ir.Add: "+", ir.Sub: "-", ir.Mul: "*",
	ir.And: "&", ir.Or: "|", ir.Xor: "^",
}

var cmpSym = map[ir.BinOp]string{
	ir.Eq: "==", ir.Ne: "!=", ir.Lt: "<", ir.Le: "<=", ir.Gt: ">", ir.Ge: ">=",
}

func (c *kemit) genBinI(e *ir.Bin, m string) (valI, error) {
	if e.Op.IsLogical() {
		return valI{}, c.errf("operator %v not valid on i32", e.Op)
	}
	a, err := c.genI(e.A, m)
	if err != nil {
		return valI{}, err
	}
	bv, err := c.genI(e.B, m)
	if err != nil {
		return valI{}, err
	}
	c.emitCountOp("ClassALU", m)
	t := c.newTmp("t")
	c.w("var %s vec.Vec", t)
	c.open("for i := 0; i < %d; i++ {", c.W)
	c.open("if %s.Bit(i) {", m)
	if err := c.laneBinI(e.Op, t+"[i]", a.lane("i"), bv.lane("i")); err != nil {
		return valI{}, err
	}
	c.els()
	c.w("%s[i] = %s", t, a.lane("i"))
	c.close()
	c.close()
	return valI{vec: t}, nil
}

// laneBinI emits the active-lane statement(s) for dst = a op b, replicating
// vec.applyBin exactly (total division, shift-count masking, b2i compares).
func (c *kemit) laneBinI(op ir.BinOp, dst, a, b string) error {
	if sym, ok := binSymI[op]; ok {
		c.w("%s = %s %s %s", dst, a, sym, b)
		return nil
	}
	if sym, ok := cmpSym[op]; ok {
		c.open("if %s %s %s {", a, sym, b)
		c.w("%s = 1", dst)
		c.els()
		c.w("%s = 0", dst)
		c.close()
		return nil
	}
	switch op {
	case ir.Div, ir.Rem:
		sym := "/"
		if op == ir.Rem {
			sym = "%%"
		}
		d := c.newTmp("d")
		c.open("if %s := %s; %s != 0 {", d, b, d)
		c.w("%s = %s "+sym+" %s", dst, a, d)
		c.els()
		c.w("%s = 0", dst)
		c.close()
	case ir.Shl:
		c.w("%s = %s << (uint32(%s) & 31)", dst, a, b)
	case ir.Shr:
		c.w("%s = %s >> (uint32(%s) & 31)", dst, a, b)
	case ir.Min:
		c.open("if %s < %s {", a, b)
		c.w("%s = %s", dst, a)
		c.els()
		c.w("%s = %s", dst, b)
		c.close()
	case ir.Max:
		c.open("if %s > %s {", a, b)
		c.w("%s = %s", dst, a)
		c.els()
		c.w("%s = %s", dst, b)
		c.close()
	default:
		return c.errf("operator %v not valid on i32", op)
	}
	return nil
}

// --- f32 expressions ---

func (c *kemit) genF(e ir.Expr, m string) (valF, error) {
	switch e := e.(type) {
	case *ir.ConstF:
		// Shortest round-trip decimal: the source literal reparses to the
		// identical float32 bits.
		return valF{scalar: "float32(" + strconv.FormatFloat(float64(e.V), 'g', -1, 32) + ")"}, nil
	case *ir.Var:
		slot, ok := c.slotF[e.Name]
		if !ok {
			return valF{}, c.errf("float variable %q not in scope", e.Name)
		}
		return valF{vec: c.regF(slot)}, nil
	case *ir.Bin:
		return c.genBinF(e, m)
	case *ir.Sel:
		cond, err := c.genM(e.Cond, m)
		if err != nil {
			return valF{}, err
		}
		cm := c.newTmp("cm")
		c.w("%s := %s", cm, cond)
		c.emitCountOp("ClassBlend", m)
		a, err := c.genF(e.A, m)
		if err != nil {
			return valF{}, err
		}
		bv, err := c.genF(e.B, m)
		if err != nil {
			return valF{}, err
		}
		t := c.newTmp("t")
		c.w("var %s vec.FVec", t)
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.open("if %s.Bit(i) {", cm)
		c.w("%s[i] = %s", t, a.lane("i"))
		c.els()
		c.w("%s[i] = %s", t, bv.lane("i"))
		c.close()
		c.close()
		return valF{vec: t}, nil
	case *ir.Load:
		a := c.prog.ArrayByName(e.Arr)
		if a == nil || a.T != ir.F32 {
			return valF{}, c.errf("load %q is not f32", e.Arr)
		}
		idx, err := c.genI(e.Idx, m)
		if err != nil {
			return valF{}, err
		}
		iv := c.asVecI(idx)
		t := c.newTmp("t")
		c.w("var %s vec.FVec", t)
		c.w("tc.GatherFP(%s, &%s, %s, %s, &%s)", c.arrayRef(e.Arr), iv, m, boolLit(c.inner), t)
		return valF{vec: t}, nil
	case *ir.ToF:
		a, err := c.genI(e.A, m)
		if err != nil {
			return valF{}, err
		}
		c.emitCountOp("ClassConvert", m)
		t := c.newTmp("t")
		c.w("var %s vec.FVec", t)
		c.open("for i := 0; i < %d; i++ {", c.W)
		c.w("%s[i] = float32(%s)", t, a.lane("i"))
		c.close()
		return valF{vec: t}, nil
	}
	return valF{}, c.errf("expression %T is not f32", e)
}

func (c *kemit) genBinF(e *ir.Bin, m string) (valF, error) {
	var sym string
	switch e.Op {
	case ir.Add:
		sym = "+"
	case ir.Sub:
		sym = "-"
	case ir.Mul:
		sym = "*"
	case ir.Div:
		sym = "/"
	case ir.Min, ir.Max:
		sym = ""
	default:
		return valF{}, c.errf("operator %v not valid as f32 arithmetic", e.Op)
	}
	a, err := c.genF(e.A, m)
	if err != nil {
		return valF{}, err
	}
	bv, err := c.genF(e.B, m)
	if err != nil {
		return valF{}, err
	}
	c.emitCountOp("ClassALU", m)
	t := c.newTmp("t")
	c.w("var %s vec.FVec", t)
	c.open("for i := 0; i < %d; i++ {", c.W)
	c.open("if %s.Bit(i) {", m)
	if sym != "" {
		c.w("%s[i] = %s %s %s", t, a.lane("i"), sym, bv.lane("i"))
	} else {
		rel := "<"
		if e.Op == ir.Max {
			rel = ">"
		}
		c.open("if %s %s %s {", a.lane("i"), rel, bv.lane("i"))
		c.w("%s[i] = %s", t, a.lane("i"))
		c.els()
		c.w("%s[i] = %s", t, bv.lane("i"))
		c.close()
	}
	c.els()
	c.w("%s[i] = %s", t, a.lane("i"))
	c.close()
	c.close()
	return valF{vec: t}, nil
}

func (c *kemit) asVecF(v valF) string {
	if v.vec != "" {
		return v.vec
	}
	t := c.newTmp("t")
	c.w("%s := vec.SplatF(%s)", t, v.scalar)
	return t
}

// --- predicates ---

// genM returns a side-effect-free mask expression (all evaluation side
// effects are emitted in place, mirroring the interpreter's order). Callers
// that use the result more than once must bind it to a temp first.
func (c *kemit) genM(e ir.Expr, m string) (string, error) {
	switch e := e.(type) {
	case *ir.Var:
		slot, ok := c.slotM[e.Name]
		if !ok {
			return "", c.errf("predicate variable %q not in scope", e.Name)
		}
		return fmt.Sprintf("(%s & %s)", c.regM(slot), m), nil
	case *ir.Not:
		c.w("tc.ScalarOps(1)")
		a, err := c.genM(e.A, m)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s &^ %s)", m, a), nil
	case *ir.Bin:
		if e.Op.IsLogical() {
			a, err := c.genM(e.A, m)
			if err != nil {
				return "", err
			}
			bv, err := c.genM(e.B, m)
			if err != nil {
				return "", err
			}
			c.w("tc.ScalarOps(1)")
			if e.Op == ir.LAnd {
				return fmt.Sprintf("(%s & %s)", a, bv), nil
			}
			return fmt.Sprintf("((%s | %s) & %s)", a, bv, m), nil
		}
		if !e.Op.IsCompare() {
			return "", c.errf("operator %v does not yield a predicate", e.Op)
		}
		ta, err := c.typeOf(e.A)
		if err != nil {
			return "", err
		}
		sym := cmpSym[e.Op]
		if ta == ir.F32 {
			if e.Op == ir.Ne {
				return "", c.errf("operator %v not valid as f32 compare", e.Op)
			}
			a, err := c.genF(e.A, m)
			if err != nil {
				return "", err
			}
			bv, err := c.genF(e.B, m)
			if err != nil {
				return "", err
			}
			return c.cmpLoop(sym, a.lane("i"), bv.lane("i"), m), nil
		}
		a, err := c.genI(e.A, m)
		if err != nil {
			return "", err
		}
		bv, err := c.genI(e.B, m)
		if err != nil {
			return "", err
		}
		return c.cmpLoop(sym, a.lane("i"), bv.lane("i"), m), nil
	}
	return "", c.errf("expression %T is not a predicate", e)
}

// cmpLoop emits the Cmp charge and a lane compare loop (CmpMask/FCmpMask:
// bits set only within m), returning the result temp.
func (c *kemit) cmpLoop(sym, laneA, laneB, m string) string {
	c.emitCountOp("ClassCmp", m)
	t := c.newTmp("k")
	c.w("var %s vec.Mask", t)
	c.open("for i := 0; i < %d; i++ {", c.W)
	c.open("if %s.Bit(i) && %s %s %s {", m, laneA, sym, laneB)
	c.w("%s = %s.Set(i)", t, t)
	c.close()
	c.close()
	return t
}

// --- statements ---

func (c *kemit) genStmts(ss []ir.Stmt, m string) error {
	for _, s := range ss {
		if err := c.genStmt(s, m); err != nil {
			return err
		}
	}
	return nil
}

// genAssignLike mirrors compileAssignLike + storeRegI/F/M: full-mask stores
// skip the blend charge, partial stores charge one blend and merge.
func (c *kemit) genAssignLike(name string, t ir.Type, val ir.Expr, m string) error {
	if err := c.checkNPWrite(name); err != nil {
		return err
	}
	slot := c.declare(name, t)
	switch t {
	case ir.I32:
		v, err := c.genI(val, m)
		if err != nil {
			return err
		}
		return c.storeVecReg(c.regI(slot), v.lane("i"), m)
	case ir.F32:
		v, err := c.genF(val, m)
		if err != nil {
			return err
		}
		return c.storeVecReg(c.regF(slot), v.lane("i"), m)
	default:
		v, err := c.genM(val, m)
		if err != nil {
			return err
		}
		reg := c.regM(slot)
		c.w("%s = (%s &^ %s) | (%s & %s)", reg, reg, m, v, m)
		return nil
	}
}

func (c *kemit) storeVecReg(reg, lane, m string) error {
	c.open("if %s.All(%d) {", m, c.W)
	c.open("for i := 0; i < %d; i++ {", c.W)
	c.w("%s[i] = %s", reg, lane)
	c.close()
	c.els()
	c.w("tc.Op(vec.ClassBlend, true)")
	c.open("for i := 0; i < %d; i++ {", c.W)
	c.open("if %s.Bit(i) {", m)
	c.w("%s[i] = %s", reg, lane)
	c.close()
	c.close()
	c.close()
	return nil
}

func (c *kemit) genStmt(s ir.Stmt, m string) error {
	switch s := s.(type) {
	case *ir.Decl:
		return c.genAssignLike(s.Name, s.T, s.Init, m)

	case *ir.Assign:
		var t ir.Type
		switch {
		case hasKey(c.slotI, s.Name):
			t = ir.I32
		case hasKey(c.slotF, s.Name):
			t = ir.F32
		case hasKey(c.slotM, s.Name):
			t = ir.Bool
		default:
			return c.errf("assignment to undeclared %q", s.Name)
		}
		return c.genAssignLike(s.Name, t, s.Val, m)

	case *ir.Store:
		arr := c.prog.ArrayByName(s.Arr)
		if arr == nil {
			return c.errf("store to undeclared array %q", s.Arr)
		}
		c.open("if %s.Any() {", m)
		idx, err := c.genI(s.Idx, m)
		if err != nil {
			return err
		}
		iv := c.asVecI(idx)
		if arr.T == ir.F32 {
			val, err := c.genF(s.Val, m)
			if err != nil {
				return err
			}
			c.w("tc.ScatterFP(%s, &%s, &%s, %s)", c.arrayRef(s.Arr), iv, c.asVecF(val), m)
		} else {
			val, err := c.genI(s.Val, m)
			if err != nil {
				return err
			}
			c.w("tc.ScatterIP(%s, &%s, &%s, %s)", c.arrayRef(s.Arr), iv, c.asVecI(val), m)
		}
		c.close()
		return nil

	case *ir.If:
		cond, err := c.genM(s.Cond, m)
		if err != nil {
			return err
		}
		cm := c.newTmp("cm")
		c.w("%s := %s", cm, cond)
		tm := c.newTmp("tm")
		c.open("if %s := %s & %s; %s.Any() {", tm, m, cm, tm)
		if err := c.genStmts(s.Then, tm); err != nil {
			return err
		}
		c.close()
		if len(s.Else) > 0 {
			em := c.newTmp("em")
			c.open("if %s := %s &^ %s; %s.Any() {", em, m, cm, em)
			if err := c.genStmts(s.Else, em); err != nil {
				return err
			}
			c.close()
		}
		return nil

	case *ir.While:
		// Host-side trip cap, identical to the interpreter: corrupted state
		// becomes a typed recoverable fault instead of a hang.
		c.needImport("fmt")
		c.needImport("repro/internal/fault")
		lim := c.newTmp("lim")
		act := c.newTmp("act")
		trips := c.newTmp("n")
		c.w("%s := 4*(int64(b.NumNodes)+int64(b.NumEdges)) + 64", lim)
		c.w("%s := %s", act, m)
		c.open("for %s := int64(0); ; %s++ {", trips, trips)
		cond, err := c.genM(s.Cond, act)
		if err != nil {
			return err
		}
		c.w("%s &= %s", act, cond)
		c.open("if %s.None() {", act)
		c.w("break")
		c.close()
		c.open("if %s >= %s {", trips, lim)
		c.w(`tc.Fail(fmt.Errorf("while loop exceeded %%d trips (likely corrupt state): %%w", %s, fault.ErrKernelPanic))`, lim)
		c.close()
		if err := c.genStmts(s.Body, act); err != nil {
			return err
		}
		c.close()
		return nil

	case *ir.ForEdges:
		return c.genForEdges(s, m)

	case *ir.Push:
		return c.genPush(s, m)

	case *ir.AtomicMin:
		succSlot := -1
		if s.Success != "" {
			succSlot = c.declare(s.Success, ir.Bool)
		}
		c.open("if %s.Any() {", m)
		idx, err := c.genI(s.Idx, m)
		if err != nil {
			return err
		}
		iv := c.asVecI(idx)
		val, err := c.genI(s.Val, m)
		if err != nil {
			return err
		}
		vv := c.asVecI(val)
		won := c.newTmp("won")
		c.w("%s := tc.AtomicMinLanesP(%s, &%s, &%s, %s)", won, c.arrayRef(s.Arr), iv, vv, m)
		if succSlot >= 0 {
			reg := c.regM(succSlot)
			c.w("%s = (%s &^ %s) | (%s & %s)", reg, reg, m, won, m)
		} else {
			c.w("_ = %s", won)
		}
		c.close()
		return nil

	case *ir.AtomicCAS:
		succSlot := -1
		if s.Success != "" {
			succSlot = c.declare(s.Success, ir.Bool)
		}
		c.open("if %s.Any() {", m)
		idx, err := c.genI(s.Idx, m)
		if err != nil {
			return err
		}
		iv := c.asVecI(idx)
		oldv, err := c.genI(s.Old, m)
		if err != nil {
			return err
		}
		ov := c.asVecI(oldv)
		newv, err := c.genI(s.New, m)
		if err != nil {
			return err
		}
		nv := c.asVecI(newv)
		won := c.newTmp("won")
		c.w("%s := tc.AtomicCASLanesP(%s, &%s, &%s, &%s, %s)", won, c.arrayRef(s.Arr), iv, ov, nv, m)
		if succSlot >= 0 {
			reg := c.regM(succSlot)
			c.w("%s = (%s &^ %s) | (%s & %s)", reg, reg, m, won, m)
		} else {
			c.w("_ = %s", won)
		}
		c.close()
		return nil

	case *ir.AtomicAdd:
		arr := c.prog.ArrayByName(s.Arr)
		if arr == nil {
			return c.errf("atomic add to undeclared array %q", s.Arr)
		}
		c.open("if %s.Any() {", m)
		idx, err := c.genI(s.Idx, m)
		if err != nil {
			return err
		}
		iv := c.asVecI(idx)
		if arr.T == ir.F32 {
			val, err := c.genF(s.Val, m)
			if err != nil {
				return err
			}
			c.w("tc.AtomicAddFLanesP(%s, &%s, &%s, %s)", c.arrayRef(s.Arr), iv, c.asVecF(val), m)
		} else {
			val, err := c.genI(s.Val, m)
			if err != nil {
				return err
			}
			c.w("tc.AtomicAddLanesP(%s, &%s, &%s, %s, false)", c.arrayRef(s.Arr), iv, c.asVecI(val), m)
		}
		c.close()
		return nil

	case *ir.AccumAdd:
		arr := c.prog.ArrayByName(s.Acc)
		if arr == nil {
			return c.errf("accumulate to undeclared array %q", s.Acc)
		}
		c.open("if %s.Any() {", m)
		if arr.T == ir.F32 {
			val, err := c.genF(s.Val, m)
			if err != nil {
				return err
			}
			sum := c.newTmp("sum")
			c.w("var %s float32", sum)
			c.open("for i := 0; i < %d; i++ {", c.W)
			c.open("if %s.Bit(i) {", m)
			c.w("%s += %s", sum, val.lane("i"))
			c.close()
			c.close()
			c.w("tc.AtomicAddFScalar(%s, 0, %s)", c.arrayRef(s.Acc), sum)
		} else {
			c.w("tc.Op(vec.ClassReduce, false)")
			val, err := c.genI(s.Val, m)
			if err != nil {
				return err
			}
			sum := c.newTmp("sum")
			c.w("var %s int32", sum)
			c.open("for i := 0; i < %d; i++ {", c.W)
			c.open("if %s.Bit(i) {", m)
			c.w("%s += %s", sum, val.lane("i"))
			c.close()
			c.close()
			c.w("tc.AtomicAddScalar(%s, 0, %s, false)", c.arrayRef(s.Acc), sum)
		}
		c.close()
		return nil

	case *ir.SetFlag:
		c.open("if %s.Any() {", m)
		c.w("tc.ScalarStoreI(%s, 0, 1)", c.arrayRef(s.Flag))
		c.close()
		return nil
	}
	return c.errf("unknown statement %T", s)
}

func (c *kemit) genPush(s *ir.Push, m string) error {
	wl := "b.WL.Out"
	if s.WL == "far" {
		wl = "b.Far"
	}
	switch s.Mode {
	case ir.PushUnopt:
		c.open("if %s.Any() {", m)
		val, err := c.genI(s.Val, m)
		if err != nil {
			return err
		}
		c.w("%s.PushLanes(tc, %s, %s)", wl, c.asVecI(val), m)
		c.close()
		return nil
	case ir.PushCoop:
		val, err := c.genI(s.Val, m)
		if err != nil {
			return err
		}
		c.w("%s.PushCoop(tc, %s, %s)", wl, c.asVecI(val), m)
		return nil
	case ir.PushReserved:
		if !c.k.FiberCC {
			return c.errf("reserved push outside a fiber-CC kernel")
		}
		c.usesRes = true
		c.open("if %s.Any() {", m)
		val, err := c.genI(s.Val, m)
		if err != nil {
			return err
		}
		n := c.newTmp("n")
		c.w("%s := %s.WriteReserved(tc, resPos, %s, %s)", n, wl, c.asVecI(val), m)
		c.w("resPos += %s", n)
		c.close()
		return nil
	}
	return c.errf("unknown push mode %d", s.Mode)
}

func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}
