package codegen

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// TestCompiledTaskAllocationFree pins the generated backend's performance
// contract at the task level, mirroring spmd's deferred hot-path test: once
// worklists and engine buffers have grown to working size, executing a whole
// generated kernel task — register locals, lane loops, gathers, scatters,
// atomics — performs zero heap allocations. The interpreter pays pooled-frame
// bookkeeping and closure indirection per node; the generated code must pay
// nothing beyond the primitives themselves. A regression here means a closure
// capture, interface box or map allocation crept into the emitted code.
func TestCompiledTaskAllocationFree(t *testing.T) {
	for _, name := range []string{"pr", "cc", "kcore"} {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := opt.Apply(b.Prog, opt.All())
		if err != nil {
			t.Fatal(err)
		}
		mod := MustCompile(prog)
		e := spmd.New(machine.Intel8(), vec.TargetAVX512x16, 1)
		e.Exec = spmd.ExecLive
		in, err := mod.Bind(e, graph.Random(256, 2048, 8, 5), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.EnableCompiled(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := in.initState(); err != nil {
			t.Fatal(err)
		}
		in.refreshBinding()

		// Borrow a live TaskCtx from a real launch; live-mode contexts stay
		// valid after the launch returns, so the kernel body can be measured
		// without the launch machinery's own allocations in the way.
		var tc *spmd.TaskCtx
		if err := e.Launch(1, func(c *spmd.TaskCtx) { tc = c }); err != nil {
			t.Fatal(err)
		}

		var knames []string
		for kn := range in.compiledFns {
			knames = append(knames, kn)
		}
		sort.Strings(knames)
		for _, kn := range knames {
			fn := in.compiledFns[kn]
			work := func() { fn(in.binding, tc) }
			for i := 0; i < 3; i++ {
				work() // grow worklists/buffers to steady state
			}
			if allocs := testing.AllocsPerRun(20, work); allocs != 0 {
				t.Errorf("%s/%s: compiled task allocates %.1f objects per run, want 0",
					name, kn, allocs)
			}
		}
	}
}
