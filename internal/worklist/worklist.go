// Package worklist implements the concurrent dense worklists that
// work-efficient EGACS kernels use to track active nodes (Section III-C).
// A worklist is an items array plus a shared tail counter; pushes reserve
// space by atomically advancing the tail. Three push strategies mirror the
// paper's cooperative-conversion levels:
//
//   - PushLanes: one hardware atomic per active lane (unoptimized).
//   - PushCoop: popcnt(lanemask()) + one atomic + packed_store_active per
//     vector (task-level cooperative conversion).
//   - Reserve + WriteReserved: a single atomic for many vectors' worth of
//     pushes whose count is known in advance (fiber-level cooperative
//     conversion, applicable to bfs-cx and bfs-hb).
package worklist

import (
	"repro/internal/fault"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// DebugPanics restores the legacy crash-on-overflow behavior: capacity
// violations panic instead of surfacing typed errors. Tests of the overflow
// detection itself use it; production paths leave it off.
var DebugPanics bool

// WL is one dense worklist.
type WL struct {
	Name  string
	Items *spmd.Array
	tail  *spmd.Array // single shared scalar
	e     *spmd.Engine
	id    int32 // dense push-target id (deferred batch-table slot)
	// Grow lets the list reallocate (doubling) instead of failing when a
	// push or init exceeds capacity. Injected overflows fire regardless,
	// so fault campaigns exercise the overflow path even on growable lists.
	Grow bool
}

// New allocates a worklist with the given capacity.
func New(e *spmd.Engine, name string, capacity int) *WL {
	return &WL{
		Name:  name,
		Items: e.AllocI(name+".items", capacity),
		tail:  e.AllocI(name+".tail", 1),
		e:     e,
		id:    e.RegisterPushTarget(),
	}
}

// PushID implements spmd.PushTarget: the engine-assigned dense id deferred
// tasks use to find this list's staging batch without hashing.
func (w *WL) PushID() int32 { return w.id }

// Cap returns the worklist capacity.
func (w *WL) Cap() int { return w.Items.Len() }

// Size returns the current item count (host-side, uncounted).
func (w *WL) Size() int32 { return w.tail.I[0] }

// SizeCounted returns the item count as a counted uniform scalar load.
func (w *WL) SizeCounted(tc *spmd.TaskCtx) int32 {
	return tc.ScalarLoadI(w.tail, 0)
}

// Clear empties the worklist (host-side).
func (w *WL) Clear() { w.tail.I[0] = 0 }

// InitSequence fills the worklist with 0..n-1 (host-side, e.g. the initial
// all-nodes worklist of CC or MIS). Exceeding capacity grows the list when
// Grow is set and returns a typed overflow error otherwise.
func (w *WL) InitSequence(n int32) error {
	w.Clear()
	if err := w.ensureRoom(n); err != nil {
		return err
	}
	for i := int32(0); i < n; i++ {
		w.Items.I[i] = i
	}
	w.tail.I[0] = n
	return nil
}

// InitWith fills the worklist with the given items (host-side).
func (w *WL) InitWith(items ...int32) error {
	w.Clear()
	if err := w.ensureRoom(int32(len(items))); err != nil {
		return err
	}
	copy(w.Items.I, items)
	w.tail.I[0] = int32(len(items))
	return nil
}

// Slice returns the current items (aliasing storage; host-side inspection).
func (w *WL) Slice() []int32 { return w.Items.I[:w.Size()] }

// Get gathers items at the given positions for active lanes.
func (w *WL) Get(tc *spmd.TaskCtx, pos vec.Vec, m vec.Mask, old vec.Vec) vec.Vec {
	return tc.GatherI(w.Items, pos, m, old, false)
}

// overflowErr builds the typed error for a failed room check.
func (w *WL) overflowErr(n int32, injected bool) *fault.OverflowError {
	return &fault.OverflowError{
		Worklist: w.Name, Size: w.tail.I[0], Push: n,
		Cap: int32(w.Cap()), Injected: injected,
	}
}

// grow reallocates the items array to hold at least need elements, doubling
// capacity. The swap only happens while the engine is single-threaded — in
// live mode exactly one task runs at a time, and in the deferred modes grow
// is reached only from host-side init or boundary materialization — and
// positions already reserved stay valid.
func (w *WL) grow(need int) {
	newCap := 2 * w.Cap()
	if newCap < need {
		newCap = need
	}
	items := w.e.AllocI(w.Name+".items", newCap)
	copy(items.I, w.Items.I)
	w.Items = items
}

// ensureRoom makes room for n more items. Forced-overflow injection yields a
// typed error regardless of Grow; genuine exhaustion grows the list when
// Grow is set, panics under DebugPanics, and returns a typed error otherwise.
func (w *WL) ensureRoom(n int32) error {
	if w.e != nil && w.e.Inject.ForceOverflow(w.Name) {
		return w.overflowErr(n, true)
	}
	need := int(w.tail.I[0]) + int(n)
	if need <= w.Cap() {
		return nil
	}
	if w.Grow {
		w.grow(need)
		return nil
	}
	err := w.overflowErr(n, false)
	if DebugPanics {
		panic(err.Error())
	}
	return err
}

// checkRoom is the task-side room check: a violation unwinds the task with a
// typed error that the enclosing Launch returns.
func (w *WL) checkRoom(tc *spmd.TaskCtx, n int32) {
	if err := w.ensureRoom(n); err != nil {
		tc.Fail(err)
	}
}

// PushLanes pushes active lanes of val with one atomic reservation per lane:
// the unoptimized vector-to-scalar atomic pattern.
//
// Deferred tasks stage the items into a private batch that materializes at
// the segment boundary in task order; the cost sequence (per-lane tail
// atomics, scatter op, per-slot item accesses) mirrors the live path.
func (w *WL) PushLanes(tc *spmd.TaskCtx, val vec.Vec, m vec.Mask) {
	n := int32(m.PopCount())
	if n == 0 {
		return
	}
	if tc.Deferred() {
		b := tc.Batch(w)
		for i := int32(0); i < n; i++ {
			tc.NoteShared(w.tail, 0)
		}
		tc.CountAtomics(int(n), true, true)
		off := b.StageMasked(val, m, tc.Width)
		tc.Op(vec.ClassScatter, true)
		tc.NoteStaged(b, off, n)
		return
	}
	w.checkRoom(tc, n)
	slots := tc.AtomicAddLanesContended(w.tail, 0, m, true)
	tc.ScatterI(w.Items, slots, val, m)
}

// PushCoop pushes active lanes with task-level cooperative conversion:
// popcnt of the lane mask, a single atomic reservation, and a packed store
// (the push_task pattern from Section III-C).
func (w *WL) PushCoop(tc *spmd.TaskCtx, val vec.Vec, m vec.Mask) {
	n := int32(m.PopCount())
	if n == 0 {
		// The mask popcount still executes.
		tc.ScalarOps(1)
		return
	}
	if tc.Deferred() {
		tc.ScalarOps(1) // popcnt(lanemask())
		tc.NoteShared(w.tail, 0)
		tc.CountAtomics(1, true, true)
		b := tc.Batch(w)
		off := b.StageMasked(val, m, tc.Width)
		tc.Op(vec.ClassPacked, true)
		tc.NoteStaged(b, off, n)
		return
	}
	w.checkRoom(tc, n)
	tc.ScalarOps(1) // popcnt(lanemask())
	idx := tc.AtomicAddScalar(w.tail, 0, n, true)
	tc.PackedStore(w.Items, idx, val, m)
}

// Reserve atomically reserves n slots and returns the starting index:
// fiber-level cooperative conversion where the total push count is known in
// advance. Deferred tasks reserve inside their private batch and get a
// batch-relative position; WriteReserved resolves against the same batch, so
// callers that treat the result as an advancing cursor work unchanged.
func (w *WL) Reserve(tc *spmd.TaskCtx, n int32) int32 {
	if tc.Deferred() {
		b := tc.Batch(w)
		if n == 0 {
			return b.Len()
		}
		tc.NoteShared(w.tail, 0)
		tc.CountAtomics(1, true, true)
		return b.ReserveSlots(n)
	}
	if n == 0 {
		return w.tail.I[0]
	}
	w.checkRoom(tc, n)
	return tc.AtomicAddScalar(w.tail, 0, n, true)
}

// WriteReserved packs active lanes of val into previously reserved space at
// pos and returns the number written (no atomic).
func (w *WL) WriteReserved(tc *spmd.TaskCtx, pos int32, val vec.Vec, m vec.Mask) int32 {
	if tc.Deferred() {
		b := tc.Batch(w)
		tc.Op(vec.ClassPacked, true)
		n := b.WriteAt(pos, val, m, tc.Width)
		tc.NoteStaged(b, pos, n)
		return n
	}
	return int32(tc.PackedStore(w.Items, pos, val, m))
}

// Materialize implements spmd.PushTarget: it commits one task's staged items
// at the current tail — the deterministic reservation step of the deferred
// merge — growing the list when permitted and returning the backing array
// and start index so staged cost traces can resolve to real addresses.
func (w *WL) Materialize(items []int32) (*spmd.Array, int32, error) {
	if err := w.ensureRoom(int32(len(items))); err != nil {
		return nil, 0, err
	}
	start := w.tail.I[0]
	copy(w.Items.I[start:], items)
	w.tail.I[0] = start + int32(len(items))
	return w.Items, start, nil
}

var _ spmd.PushTarget = (*WL)(nil)

// PushHost appends an item without cost accounting (pipe setup between
// launches).
func (w *WL) PushHost(item int32) error {
	if err := w.ensureRoom(1); err != nil {
		return err
	}
	w.Items.I[w.tail.I[0]] = item
	w.tail.I[0]++
	return nil
}

// Pair is a double-buffered in/out worklist pair, swapped between pipe
// iterations.
type Pair struct {
	In, Out *WL
}

// NewPair allocates a double-buffered pair.
func NewPair(e *spmd.Engine, name string, capacity int) *Pair {
	return &Pair{
		In:  New(e, name+".in", capacity),
		Out: New(e, name+".out", capacity),
	}
}

// Swap exchanges in and out and clears the new out, recording the swap (with
// the new frontier size) on the engine's trace when one is attached. Swaps
// happen at single-writer points — the host pipeline or the task-0 control
// segment of an outlined program — so the unsynchronized note is safe.
func (p *Pair) Swap() {
	p.In, p.Out = p.Out, p.In
	p.Out.Clear()
	p.In.e.NoteSwap(int(p.In.Size()))
}
