package worklist

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/fault"

	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/vec"
)

func newEngine() *spmd.Engine {
	return spmd.New(machine.Intel8(), vec.TargetAVX512x16, 4)
}

func TestInitAndHostOps(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 16)
	if w.Cap() != 16 || w.Size() != 0 {
		t.Fatalf("fresh worklist: cap=%d size=%d", w.Cap(), w.Size())
	}
	w.InitSequence(5)
	if w.Size() != 5 || w.Items.I[4] != 4 {
		t.Errorf("InitSequence: %v", w.Slice())
	}
	w.InitWith(9, 8, 7)
	got := w.Slice()
	if len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Errorf("InitWith: %v", got)
	}
	w.PushHost(6)
	if w.Size() != 4 || w.Slice()[3] != 6 {
		t.Errorf("PushHost: %v", w.Slice())
	}
	w.Clear()
	if w.Size() != 0 {
		t.Error("Clear failed")
	}
}

func TestInitOverflowTypedError(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 2)
	err := w.InitSequence(5)
	if !errors.Is(err, fault.ErrWorklistOverflow) {
		t.Fatalf("InitSequence overflow returned %v", err)
	}
	var oe *fault.OverflowError
	if !errors.As(err, &oe) || oe.Worklist != "wl" || oe.Push != 5 || oe.Cap != 2 {
		t.Errorf("overflow detail = %+v", oe)
	}
	if err := w.InitWith(1, 2, 3); !errors.Is(err, fault.ErrWorklistOverflow) {
		t.Errorf("InitWith overflow returned %v", err)
	}
	if err := w.InitWith(1, 2); err != nil {
		t.Errorf("in-capacity InitWith failed: %v", err)
	}
}

func TestInitOverflowDebugPanics(t *testing.T) {
	DebugPanics = true
	defer func() {
		DebugPanics = false
		if recover() == nil {
			t.Fatal("expected panic under DebugPanics")
		}
	}()
	e := newEngine()
	w := New(e, "wl", 2)
	w.InitSequence(5)
}

func TestGrowOnOverflow(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 4)
	w.Grow = true
	if err := w.InitSequence(3); err != nil {
		t.Fatal(err)
	}
	for i := int32(3); i < 40; i++ {
		if err := w.PushHost(i); err != nil {
			t.Fatalf("grow-enabled PushHost(%d) failed: %v", i, err)
		}
	}
	if w.Cap() < 40 || w.Size() != 40 {
		t.Fatalf("cap=%d size=%d after growth", w.Cap(), w.Size())
	}
	for i, v := range w.Slice() {
		if v != int32(i) {
			t.Fatalf("item %d = %d after growth", i, v)
		}
	}
}

func TestGrowOnTaskPush(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 4)
	w.Grow = true
	err := e.Launch(2, func(tc *spmd.TaskCtx) {
		for round := 0; round < 4; round++ {
			w.PushCoop(tc, vec.Iota(), vec.FullMask(16))
		}
	})
	if err != nil {
		t.Fatalf("grow-enabled push failed: %v", err)
	}
	if w.Size() != 2*4*16 {
		t.Errorf("size = %d, want %d", w.Size(), 2*4*16)
	}
}

func TestInjectedOverflow(t *testing.T) {
	e := newEngine()
	e.Inject = fault.NewInjector(5, fault.Config{Overflow: 1.0})
	w := New(e, "wl", 1024)
	w.Grow = true // injection must fire even on growable lists
	err := e.Launch(1, func(tc *spmd.TaskCtx) {
		w.PushCoop(tc, vec.Iota(), vec.FullMask(16))
	})
	var oe *fault.OverflowError
	if !errors.As(err, &oe) || !oe.Injected {
		t.Fatalf("injected overflow surfaced as %v", err)
	}
	if len(e.Inject.Trace()) == 0 {
		t.Error("injector left no trace")
	}
}

// collectPushed verifies no-loss/no-duplication: every pushed value appears
// exactly once regardless of push strategy and task interleaving.
func collectPushed(t *testing.T, push func(w *WL, tc *spmd.TaskCtx, val vec.Vec, m vec.Mask)) []int32 {
	t.Helper()
	e := newEngine()
	w := New(e, "wl", 1024)
	e.Launch(4, func(tc *spmd.TaskCtx) {
		for round := 0; round < 4; round++ {
			base := int32(tc.Index*100 + round*16)
			val := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(16), 16)
			// Irregular masks exercise packing.
			m := vec.Mask(0x5A5A) & vec.FullMask(16)
			push(w, tc, val, m)
		}
	})
	out := append([]int32(nil), w.Slice()...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func expectedPushed() []int32 {
	var want []int32
	for task := 0; task < 4; task++ {
		for round := 0; round < 4; round++ {
			base := int32(task*100 + round*16)
			for lane := 0; lane < 16; lane++ {
				if vec.Mask(0x5A5A).Bit(lane) {
					want = append(want, base+int32(lane))
				}
			}
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

func TestPushLanesNoLossNoDup(t *testing.T) {
	got := collectPushed(t, func(w *WL, tc *spmd.TaskCtx, val vec.Vec, m vec.Mask) {
		w.PushLanes(tc, val, m)
	})
	want := expectedPushed()
	if len(got) != len(want) {
		t.Fatalf("pushed %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPushCoopNoLossNoDup(t *testing.T) {
	got := collectPushed(t, func(w *WL, tc *spmd.TaskCtx, val vec.Vec, m vec.Mask) {
		w.PushCoop(tc, val, m)
	})
	want := expectedPushed()
	if len(got) != len(want) {
		t.Fatalf("pushed %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCoopReducesAtomics(t *testing.T) {
	run := func(coop bool) int64 {
		e := newEngine()
		w := New(e, "wl", 4096)
		e.Launch(4, func(tc *spmd.TaskCtx) {
			for round := 0; round < 8; round++ {
				val := vec.Iota()
				m := vec.FullMask(16)
				if coop {
					w.PushCoop(tc, val, m)
				} else {
					w.PushLanes(tc, val, m)
				}
			}
		})
		return e.Stats.AtomicPushes
	}
	unopt := run(false)
	coop := run(true)
	if unopt != 4*8*16 {
		t.Errorf("unoptimized pushes = %d, want %d", unopt, 4*8*16)
	}
	if coop != 4*8 {
		t.Errorf("coop pushes = %d, want %d (one per vector)", coop, 4*8)
	}
	if unopt/coop != 16 {
		t.Errorf("reduction factor = %d, want 16 (SIMD width)", unopt/coop)
	}
}

func TestReserveWriteReserved(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 256)
	e.Launch(2, func(tc *spmd.TaskCtx) {
		// Each task knows it will push exactly 24 items: one atomic each.
		pos := w.Reserve(tc, 24)
		for round := 0; round < 3; round++ {
			base := int32(tc.Index*1000 + round*8)
			val := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(8), 8)
			pos += w.WriteReserved(tc, pos, val, vec.FullMask(8))
		}
	})
	if w.Size() != 48 {
		t.Fatalf("size = %d", w.Size())
	}
	if e.Stats.AtomicPushes != 2 {
		t.Errorf("pushes = %d, want 2 (one per task)", e.Stats.AtomicPushes)
	}
	seen := map[int32]bool{}
	for _, x := range w.Slice() {
		if seen[x] {
			t.Fatalf("duplicate item %d", x)
		}
		seen[x] = true
	}
}

func TestReserveZeroNoAtomic(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 8)
	e.Launch(1, func(tc *spmd.TaskCtx) {
		if pos := w.Reserve(tc, 0); pos != 0 {
			t.Errorf("Reserve(0) = %d", pos)
		}
	})
	if e.Stats.AtomicPushes != 0 {
		t.Error("Reserve(0) issued an atomic")
	}
}

func TestPushEmptyMaskNoAtomic(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 8)
	e.Launch(1, func(tc *spmd.TaskCtx) {
		w.PushCoop(tc, vec.Iota(), 0)
		w.PushLanes(tc, vec.Iota(), 0)
	})
	if e.Stats.AtomicPushes != 0 || w.Size() != 0 {
		t.Error("empty-mask push had effects")
	}
}

func TestOverflowTypedError(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 4)
	err := e.Launch(1, func(tc *spmd.TaskCtx) {
		w.PushCoop(tc, vec.Iota(), vec.FullMask(16))
	})
	if !errors.Is(err, fault.ErrWorklistOverflow) {
		t.Fatalf("overflow push returned %v", err)
	}
	var oe *fault.OverflowError
	if !errors.As(err, &oe) || oe.Push != 16 || oe.Cap != 4 {
		t.Errorf("overflow detail = %+v", oe)
	}
}

func TestGetGathersItems(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 16)
	w.InitWith(40, 41, 42, 43)
	var got vec.Vec
	e.Launch(1, func(tc *spmd.TaskCtx) {
		got = w.Get(tc, vec.Iota(), vec.FullMask(4), vec.Splat(-1))
	})
	if got[0] != 40 || got[3] != 43 {
		t.Errorf("Get = %v", got[:4])
	}
}

func TestSizeCounted(t *testing.T) {
	e := newEngine()
	w := New(e, "wl", 8)
	w.InitSequence(3)
	var n int32
	e.Launch(1, func(tc *spmd.TaskCtx) { n = w.SizeCounted(tc) })
	if n != 3 {
		t.Errorf("SizeCounted = %d", n)
	}
	if e.Stats.ScalarOps == 0 {
		t.Error("SizeCounted not cost-accounted")
	}
}

func TestPairSwap(t *testing.T) {
	e := newEngine()
	p := NewPair(e, "bfs", 32)
	p.In.InitSequence(4)
	p.Out.InitSequence(7)
	in, out := p.In, p.Out
	p.Swap()
	if p.In != out || p.Out != in {
		t.Fatal("Swap did not exchange")
	}
	if p.Out.Size() != 0 {
		t.Error("Swap must clear the new out list")
	}
	if p.In.Size() != 7 {
		t.Error("Swap must preserve the new in list")
	}
}
