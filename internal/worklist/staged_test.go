package worklist

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/vec"
)

func newModeEngine(mode spmd.Exec) *spmd.Engine {
	e := spmd.New(machine.Intel8(), vec.TargetAVX512x16, 4)
	e.Exec = mode
	return e
}

// pushAll drives all three push strategies from 4 tasks across barriers and
// returns the worklist's exact item sequence plus the engine's counters.
func pushAll(t *testing.T, mode spmd.Exec) ([]int32, float64, spmd.Stats) {
	t.Helper()
	e := newModeEngine(mode)
	w := New(e, "wl", 4096)
	err := e.Launch(4, func(tc *spmd.TaskCtx) {
		for round := 0; round < 3; round++ {
			base := int32(tc.Index*1000 + round*100)
			val := vec.Bin(vec.OpAdd, vec.Iota(), vec.Splat(base), vec.FullMask(16), 16)
			m := vec.Mask(0x5A5A) & vec.FullMask(16)
			w.PushCoop(tc, val, m)
			w.PushLanes(tc, val, vec.Mask(0x00F0))
			pos := w.Reserve(tc, int32(m.PopCount()))
			n := w.WriteReserved(tc, pos, val, m)
			if int(n) != m.PopCount() {
				t.Errorf("WriteReserved wrote %d, want %d", n, m.PopCount())
			}
			tc.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("mode %d: %v", mode, err)
	}
	return append([]int32(nil), w.Slice()...), e.TimeCycles(), e.Stats
}

// TestStagedPushesMatchLiveExactly: in a cooperative schedule, deferred
// staging materializes batches in task order with per-task program order —
// the exact layout live pushes produce — so worklist contents (and therefore
// next-iteration lane masks), modeled cycles and counters must all be
// bit-identical across live, deferred and parallel execution.
func TestStagedPushesMatchLiveExactly(t *testing.T) {
	items, cyc, stats := pushAll(t, spmd.ExecLive)
	if len(items) == 0 {
		t.Fatal("no items pushed")
	}
	for _, mode := range []spmd.Exec{spmd.ExecDeferred, spmd.ExecParallel} {
		i2, c2, s2 := pushAll(t, mode)
		if !reflect.DeepEqual(i2, items) {
			t.Errorf("mode %d: item sequence diverges from live", mode)
		}
		if c2 != cyc {
			t.Errorf("mode %d: cycles %v != live %v", mode, c2, cyc)
		}
		if s2 != stats {
			t.Errorf("mode %d: stats diverge:\n%v\n%v", mode, &s2, &stats)
		}
	}
}

// TestStagedOverflowSurfacesTypedError: a non-growable list must fail the
// launch with the worklist's typed overflow error even when the overflow is
// only detected at boundary materialization.
func TestStagedOverflowSurfacesTypedError(t *testing.T) {
	for _, mode := range []spmd.Exec{spmd.ExecDeferred, spmd.ExecParallel} {
		e := newModeEngine(mode)
		w := New(e, "tiny", 8)
		err := e.Launch(4, func(tc *spmd.TaskCtx) {
			w.PushCoop(tc, vec.Iota(), vec.FullMask(16))
		})
		if !errors.Is(err, fault.ErrWorklistOverflow) {
			t.Fatalf("mode %d: overflow surfaced as %v", mode, err)
		}
	}
}

// TestStagedGrowth: growable lists absorb deferred over-capacity pushes at
// materialization.
func TestStagedGrowth(t *testing.T) {
	e := newModeEngine(spmd.ExecParallel)
	w := New(e, "grow", 8)
	w.Grow = true
	err := e.Launch(4, func(tc *spmd.TaskCtx) {
		for round := 0; round < 4; round++ {
			w.PushCoop(tc, vec.Iota(), vec.FullMask(16))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(w.Size()); got != 4*4*16 {
		t.Errorf("size = %d, want %d", got, 4*4*16)
	}
}

// TestStagedPushSteadyStateAllocs pins the pooled-buffer property at the
// worklist level: after a warm-up launch has sized the engine's pooled
// deferred contexts, a launch performing hundreds of staged pushes allocates
// only the small per-launch constant (task contexts and the launch's own
// bookkeeping) — nothing proportional to the push count. Before pooling, the
// same launch allocated thousands of objects (one map entry and trace word
// per push).
func TestStagedPushSteadyStateAllocs(t *testing.T) {
	e := newModeEngine(spmd.ExecDeferred)
	w := New(e, "wl", 1<<16)
	body := func(tc *spmd.TaskCtx) {
		val := vec.Iota()
		m := vec.FullMask(16)
		for i := 0; i < 256; i++ {
			w.PushCoop(tc, val, m)
		}
	}
	launch := func() {
		w.Clear()
		if err := e.LaunchNoBarrier(2, body); err != nil {
			t.Fatal(err)
		}
	}
	launch() // warm-up: size pooled batches, traces and logs
	if allocs := testing.AllocsPerRun(20, launch); allocs > 32 {
		t.Errorf("steady-state deferred push launch allocates %.0f objects, want <= 32", allocs)
	}
}
