// Package ir defines the IrGL-like intermediate representation for graph
// algorithm programs: data-parallel kernels over nodes or worklist items with
// nested edge loops, predicated control flow, per-lane atomics, worklist
// pushes, and an orchestration Pipe describing the iterative driver loop.
//
// The optimization passes (internal/opt) transform and annotate this IR —
// Iteration Outlining on the Pipe, Nested Parallelism on ForEdges loops,
// Cooperative Conversion on Push statements, and Fibers on kernels — and the
// backend (internal/codegen) lowers it to executable form over the SPMD
// engine, mirroring the structure of the paper's retargeted IrGL compiler.
package ir

import "fmt"

// Type is the IR value type of a variable or array element.
type Type uint8

const (
	I32 Type = iota
	F32
	Bool // lane predicate
)

var typeNames = [...]string{I32: "i32", F32: "f32", Bool: "bool"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "type?"
}

// BinOp is the IR binary operator set (superset over int and float; the
// validator checks operand types).
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Min
	Max
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	// Logical mask combinators (Bool x Bool -> Bool).
	LAnd
	LOr
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	Min: "min", Max: "max",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	LAnd: "&&", LOr: "||",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "op?"
}

// IsCompare reports whether op yields a Bool.
func (op BinOp) IsCompare() bool { return op >= Eq && op <= Ge }

// IsLogical reports whether op combines Bools.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

// --- Expressions ---

// Expr is an IR expression; expressions are varying (per program instance)
// unless they reference only uniform sources.
type Expr interface {
	exprNode()
	String() string
}

// ConstI is an int32 literal.
type ConstI struct{ V int32 }

// ConstF is a float32 literal.
type ConstF struct{ V float32 }

// Param references a uniform runtime parameter (e.g. "src", "delta"),
// broadcast to all lanes.
type Param struct{ Name string }

// Var references a kernel-local variable or the kernel's item variable.
type Var struct{ Name string }

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Not negates a Bool expression.
type Not struct{ A Expr }

// Sel is a lane-wise select: Cond ? A : B.
type Sel struct {
	Cond, A, B Expr
}

// Load reads Arr[Idx] (a gather when Idx is varying).
type Load struct {
	Arr string
	Idx Expr
}

// NumNodes is the uniform node count of the input graph.
type NumNodes struct{}

// RowStart is the CSR row start offset of a node: graph.rowptr[node].
type RowStart struct{ Node Expr }

// RowEnd is the CSR row end offset of a node: graph.rowptr[node+1].
type RowEnd struct{ Node Expr }

// EdgeDst is the destination of a CSR edge index.
type EdgeDst struct{ Edge Expr }

// EdgeWt is the weight of a CSR edge index (1 when unweighted).
type EdgeWt struct{ Edge Expr }

// ToF converts an I32 expression to F32.
type ToF struct{ A Expr }

// ToI truncates an F32 expression to I32.
type ToI struct{ A Expr }

func (*ConstI) exprNode()   {}
func (*ConstF) exprNode()   {}
func (*Param) exprNode()    {}
func (*Var) exprNode()      {}
func (*Bin) exprNode()      {}
func (*Not) exprNode()      {}
func (*Sel) exprNode()      {}
func (*Load) exprNode()     {}
func (*NumNodes) exprNode() {}
func (*RowStart) exprNode() {}
func (*RowEnd) exprNode()   {}
func (*EdgeDst) exprNode()  {}
func (*EdgeWt) exprNode()   {}
func (*ToF) exprNode()      {}
func (*ToI) exprNode()      {}

func (e *ConstI) String() string   { return fmt.Sprintf("%d", e.V) }
func (e *ConstF) String() string   { return fmt.Sprintf("%g", e.V) }
func (e *Param) String() string    { return "$" + e.Name }
func (e *Var) String() string      { return e.Name }
func (e *Bin) String() string      { return fmt.Sprintf("(%s %s %s)", e.A, e.Op, e.B) }
func (e *Not) String() string      { return fmt.Sprintf("!%s", e.A) }
func (e *Sel) String() string      { return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.A, e.B) }
func (e *Load) String() string     { return fmt.Sprintf("%s[%s]", e.Arr, e.Idx) }
func (e *NumNodes) String() string { return "nnodes" }
func (e *RowStart) String() string { return fmt.Sprintf("rowstart(%s)", e.Node) }
func (e *RowEnd) String() string   { return fmt.Sprintf("rowend(%s)", e.Node) }
func (e *EdgeDst) String() string  { return fmt.Sprintf("edgedst(%s)", e.Edge) }
func (e *EdgeWt) String() string   { return fmt.Sprintf("edgewt(%s)", e.Edge) }
func (e *ToF) String() string      { return fmt.Sprintf("f32(%s)", e.A) }
func (e *ToI) String() string      { return fmt.Sprintf("i32(%s)", e.A) }

// --- Statements ---

// Stmt is an IR statement executed under the current lane mask.
type Stmt interface {
	stmtNode()
}

// Decl declares and initializes a kernel-local varying variable.
type Decl struct {
	Name string
	T    Type
	Init Expr
}

// Assign updates a kernel-local variable.
type Assign struct {
	Name string
	Val  Expr
}

// Store writes Arr[Idx] = Val (a scatter when Idx is varying).
type Store struct {
	Arr string
	Idx Expr
	Val Expr
}

// If executes Then under mask&cond and Else under mask&^cond.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While iterates Body while any active lane satisfies Cond.
type While struct {
	Cond Expr
	Body []Stmt
}

// EdgeSchedule selects the ForEdges execution strategy.
type EdgeSchedule uint8

const (
	// SchedSerial: each lane walks its own edge range in lockstep — the
	// naive mapping with poor utilization on skewed inputs.
	SchedSerial EdgeSchedule = iota
	// SchedNP: the inspector-executor nested-parallelism scheduler that
	// redistributes high-degree nodes' edges across all lanes and packs
	// low-degree work with a prefix sum (Section III-B2).
	SchedNP
)

// ForEdges iterates over the CSR edges of Node, binding EdgeVar to the edge
// index per lane. The optimizer sets Sched.
type ForEdges struct {
	EdgeVar string
	Node    Expr
	Body    []Stmt
	Sched   EdgeSchedule
}

// PushMode selects how a Push reserves worklist space.
type PushMode uint8

const (
	// PushUnopt: one atomic reservation per active lane.
	PushUnopt PushMode = iota
	// PushCoop: task-level cooperative conversion — popcnt, one atomic,
	// packed store (Section III-C).
	PushCoop
	// PushReserved: fiber-level cooperative conversion — space was
	// reserved in bulk; lanes write with packed stores only.
	PushReserved
)

// Push appends Val's active lanes to a worklist. WL names a worklist role:
// "out" (default pipeline list), "near" or "far" (SSSP near-far).
type Push struct {
	WL   string
	Val  Expr
	Mode PushMode
}

// AtomicMin performs per-lane atomic min on Arr[Idx] with Val, optionally
// binding a Bool variable to the "improved" mask.
type AtomicMin struct {
	Arr     string
	Idx     Expr
	Val     Expr
	Success string // "" to ignore
}

// AtomicCAS performs per-lane compare-and-swap on Arr[Idx], storing New if
// the current value equals Old, optionally binding the winners mask.
type AtomicCAS struct {
	Arr      string
	Idx      Expr
	Old, New Expr
	Success  string
}

// AtomicAdd performs per-lane atomic add on Arr[Idx] (distinct addresses).
type AtomicAdd struct {
	Arr string
	Idx Expr
	Val Expr
}

// AccumAdd reduces Val across active lanes and atomically adds the result to
// the global accumulator array Acc (element 0): the vector-to-scalar atomic
// class. Used for PR convergence error and TRI counting.
type AccumAdd struct {
	Acc string
	Val Expr
}

// SetFlag sets the named global flag array's element 0 to 1 if any lane is
// active (the topology-driven "changed" signal). Lowered to a racy benign
// store, as IrGL does.
type SetFlag struct{ Flag string }

func (*Decl) stmtNode()      {}
func (*Assign) stmtNode()    {}
func (*Store) stmtNode()     {}
func (*If) stmtNode()        {}
func (*While) stmtNode()     {}
func (*ForEdges) stmtNode()  {}
func (*Push) stmtNode()      {}
func (*AtomicMin) stmtNode() {}
func (*AtomicCAS) stmtNode() {}
func (*AtomicAdd) stmtNode() {}
func (*AccumAdd) stmtNode()  {}
func (*SetFlag) stmtNode()   {}

// --- Kernels ---

// Domain is a kernel's iteration space.
type Domain uint8

const (
	// DomainNodes iterates over all graph nodes.
	DomainNodes Domain = iota
	// DomainWL iterates over the current input worklist's items.
	DomainWL
)

// Kernel is one data-parallel operator.
type Kernel struct {
	Name string
	// Domain selects the iteration space; ItemVar binds the node id
	// (DomainNodes) or worklist item (DomainWL) per program instance.
	Domain  Domain
	ItemVar string
	Body    []Stmt

	// Fibers enables thread-block emulation for this kernel (set by the
	// Fibers pass).
	Fibers bool
	// FiberCC enables fiber-level cooperative conversion; only legal when
	// PushCountComputable.
	FiberCC bool
	// PushCountComputable marks kernels whose total push count per item
	// can be computed in advance (the node's out-degree), enabling
	// fiber-level CC. True for bfs-cx and bfs-hb style kernels.
	PushCountComputable bool
}

// --- Pipe (orchestration) ---

// PipeStmt is one step of the iterative driver.
type PipeStmt interface {
	pipeStmt()
}

// Invoke launches a kernel over its domain.
type Invoke struct{ Kernel string }

// LoopWL repeats Body while the pipeline worklist is non-empty, swapping the
// in/out pair after each round (the IrGL Pipe construct).
type LoopWL struct{ Body []PipeStmt }

// LoopFlag clears Flag, runs Body, and repeats while Flag was set (the
// topology-driven convergence loop). When IncParam is non-empty, the named
// runtime parameter is incremented after every round (bfs-tp's level
// counter).
type LoopFlag struct {
	Flag     string
	IncParam string
	Body     []PipeStmt
}

// LoopFixed runs Body N times (N from a parameter when NParam is set).
type LoopFixed struct {
	N      int
	NParam string
	Body   []PipeStmt
}

// LoopConverge clears Acc, runs Body, and repeats while Acc[0] > Eps, up to
// MaxIter rounds (PageRank's L1-residual loop).
type LoopConverge struct {
	Acc     string
	Eps     float32
	MaxIter int
	Body    []PipeStmt
}

// LoopNearFar is the SSSP near-far driver: process the near list to
// fixpoint, then promote the far list with an advanced threshold, until both
// are empty. Kernel names the relax operator.
type LoopNearFar struct {
	Kernel     string
	DeltaParam string
}

// SwapWL swaps the pipeline worklist pair mid-round, letting multi-kernel
// rounds chain lists (bfs-cx's claim -> expand).
type SwapWL struct{}

// LoopHybrid drives hybrid worklist/topology execution (bfs-hb): per round,
// run Small when the frontier is below NumNodes/ThreshDenom, Big otherwise;
// swap the worklist pair and bump IncParam after every round; stop when the
// frontier empties.
type LoopHybrid struct {
	ThreshDenom int
	Small, Big  []PipeStmt
	IncParam    string
}

func (*Invoke) pipeStmt()       {}
func (*SwapWL) pipeStmt()       {}
func (*LoopHybrid) pipeStmt()   {}
func (*LoopWL) pipeStmt()       {}
func (*LoopFlag) pipeStmt()     {}
func (*LoopFixed) pipeStmt()    {}
func (*LoopConverge) pipeStmt() {}
func (*LoopNearFar) pipeStmt()  {}

// --- Program ---

// SizeSpec gives an array's length in terms of the input graph.
type SizeSpec uint8

const (
	SizeNodes SizeSpec = iota
	SizeEdges
	SizeOne
)

// InitMode selects an array's initial contents before the pipe runs.
type InitMode uint8

const (
	// InitZero: all zeros.
	InitZero InitMode = iota
	// InitSplat: all elements = InitI/InitF.
	InitSplat
	// InitIota: element i = i (component labels).
	InitIota
	// InitSplatExceptSrc: all elements = InitI except index $src = SrcVal
	// (BFS/SSSP distance arrays).
	InitSplatExceptSrc
	// InitHash: element i = a positive pseudo-random hash of i (MIS
	// priorities).
	InitHash
	// InitDegree: element i = out-degree of node i.
	InitDegree
	// InitInvN: every element = 1/NumNodes (f32 only; PageRank's initial
	// rank).
	InitInvN
)

// ArrayDecl declares a global data array.
type ArrayDecl struct {
	Name   string
	T      Type
	Size   SizeSpec
	Init   InitMode
	InitI  int32
	InitF  float32
	SrcVal int32 // value at $src for InitSplatExceptSrc
}

// WLInit selects how the pipeline input worklist is seeded.
type WLInit uint8

const (
	// WLNone: program uses no worklist.
	WLNone WLInit = iota
	// WLSrc: worklist starts with the $src parameter.
	WLSrc
	// WLAllNodes: worklist starts with every node.
	WLAllNodes
)

// Outlining is the Pipe execution strategy, set by the IO pass.
type Outlining uint8

const (
	// LaunchPerIteration: every pipe iteration launches fresh tasks — the
	// default translation, paying launch overhead on the critical path.
	LaunchPerIteration Outlining = iota
	// Outlined: the whole iterative loop runs inside a single launch with
	// in-kernel barriers between rounds (Iteration Outlining,
	// Section III-A).
	Outlined
)

// Program is a complete IrGL graph algorithm.
type Program struct {
	Name string

	Arrays  []ArrayDecl
	Kernels []*Kernel
	Pipe    []PipeStmt

	WLInit WLInit
	// WLCapEdges sizes worklists by edge count (needed when a round can
	// push one item per edge); otherwise they are sized by node count.
	WLCapEdges bool

	Outline Outlining

	// LiveAtomics marks programs whose correctness depends on tasks
	// observing each other's atomic updates within a launch segment (e.g.
	// k-core's decrement-then-threshold cascade). The engine runs such
	// programs in live cooperative mode instead of the deferred/parallel
	// schedulers, whose effects only become visible at barriers.
	LiveAtomics bool

	// DefaultParams supplies parameter defaults (e.g. delta for SSSP).
	DefaultParams map[string]int32
}

// KernelByName returns the named kernel or nil.
func (p *Program) KernelByName(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// ArrayByName returns the named array declaration or nil.
func (p *Program) ArrayByName(name string) *ArrayDecl {
	for i := range p.Arrays {
		if p.Arrays[i].Name == name {
			return &p.Arrays[i]
		}
	}
	return nil
}
