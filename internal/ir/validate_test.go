package ir

import (
	"strings"
	"testing"
)

// validBFS builds a minimal well-formed worklist BFS program.
func validBFS() *Program {
	return &Program{
		Name: "bfs",
		Arrays: []ArrayDecl{
			{Name: "lvl", T: I32, Size: SizeNodes, Init: InitSplatExceptSrc, InitI: 1 << 30},
		},
		WLInit:     WLSrc,
		WLCapEdges: true,
		Kernels: []*Kernel{{
			Name:    "bfs",
			Domain:  DomainWL,
			ItemVar: "node",
			Body: []Stmt{
				DeclI("d", Ld("lvl", V("node"))),
				ForE("e", V("node"),
					DeclI("dst", &EdgeDst{Edge: V("e")}),
					&AtomicMin{Arr: "lvl", Idx: V("dst"), Val: AddE(V("d"), CI(1)), Success: "won"},
					IfS(V("won"), PushOut(V("dst"))),
				),
			},
		}},
		Pipe: []PipeStmt{&LoopWL{Body: []PipeStmt{&Invoke{Kernel: "bfs"}}}},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := Validate(validBFS()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func wantErr(t *testing.T, p *Program, substr string) {
	t.Helper()
	err := Validate(p)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestValidateRejectsStructuralErrors(t *testing.T) {
	p := validBFS()
	p.Name = ""
	wantErr(t, p, "no name")

	p = validBFS()
	p.Kernels = nil
	wantErr(t, p, "no kernels")

	p = validBFS()
	p.Pipe = nil
	wantErr(t, p, "empty pipe")

	p = validBFS()
	p.Arrays = append(p.Arrays, ArrayDecl{Name: "lvl", T: I32})
	wantErr(t, p, "duplicate array")

	p = validBFS()
	p.Kernels = append(p.Kernels, p.Kernels[0])
	wantErr(t, p, "duplicate kernel")

	p = validBFS()
	p.Kernels[0].ItemVar = ""
	wantErr(t, p, "no item variable")

	p = validBFS()
	p.Kernels[0].Body = nil
	wantErr(t, p, "empty body")
}

func TestValidateRejectsNameErrors(t *testing.T) {
	p := validBFS()
	p.Pipe = []PipeStmt{&Invoke{Kernel: "nope"}}
	wantErr(t, p, "unknown kernel")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{Set("ghost", CI(1))}
	wantErr(t, p, "undeclared")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", Ld("ghost", CI(0)))}
	wantErr(t, p, "undeclared array")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{&Push{WL: "sideways", Val: CI(1)}}
	wantErr(t, p, "worklist role")
}

func TestValidateRejectsTypeErrors(t *testing.T) {
	p := validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", CF(1.5))}
	wantErr(t, p, "init is f32")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", CI(1)), Set("x", EqE(CI(1), CI(2)))}
	wantErr(t, p, "want i32")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{IfS(CI(1), PushOut(CI(0)))}
	wantErr(t, p, "if condition")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", AddE(CI(1), CF(2)))}
	wantErr(t, p, "mixes")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclB("b", AndE(EqE(CI(1), CI(1)), CI(3)))}
	wantErr(t, p, "mixes")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclB("b", LtE(EqE(CI(1), CI(1)), EqE(CI(1), CI(1))))}
	wantErr(t, p, "comparison")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclF("f", B(Rem, CF(1), CF(2)))}
	wantErr(t, p, "not defined on f32")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", SelE(EqE(CI(1), CI(1)), CI(1), CF(2)))}
	wantErr(t, p, "select arms differ")
}

func TestValidateRedeclaration(t *testing.T) {
	p := validBFS()
	p.Kernels[0].Body = []Stmt{DeclI("x", CI(1)), DeclI("x", CI(2))}
	wantErr(t, p, "redeclaration")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{ForE("node", V("node"), PushOut(CI(1)))}
	wantErr(t, p, "shadows")
}

func TestValidateAtomics(t *testing.T) {
	p := validBFS()
	p.Arrays = append(p.Arrays, ArrayDecl{Name: "rank", T: F32, Size: SizeNodes})
	p.Kernels[0].Body = []Stmt{&AtomicMin{Arr: "rank", Idx: V("node"), Val: CI(1)}}
	wantErr(t, p, "not a declared i32 array")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{&AtomicCAS{Arr: "lvl", Idx: V("node"), Old: CI(0), New: CF(1)}}
	wantErr(t, p, "AtomicCAS new")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{
		&AtomicCAS{Arr: "lvl", Idx: V("node"), Old: CI(0), New: CI(1), Success: "node"},
	}
	wantErr(t, p, "redeclares")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{&AtomicAdd{Arr: "lvl", Idx: V("node"), Val: CI(1)}}
	if err := Validate(p); err != nil {
		t.Errorf("valid AtomicAdd rejected: %v", err)
	}
}

func TestValidateAccumAndFlags(t *testing.T) {
	p := validBFS()
	p.Kernels[0].Body = []Stmt{&AccumAdd{Acc: "missing", Val: CI(1)}}
	wantErr(t, p, "undeclared")

	p = validBFS()
	p.Arrays = append(p.Arrays, ArrayDecl{Name: "err", T: F32, Size: SizeOne})
	p.Kernels[0].Body = []Stmt{&AccumAdd{Acc: "err", Val: CI(1)}}
	wantErr(t, p, "accumulate i32 into f32")

	p = validBFS()
	p.Kernels[0].Body = []Stmt{&SetFlag{Flag: "nothing"}}
	wantErr(t, p, "SetFlag")
}

func TestValidatePipeLoops(t *testing.T) {
	p := validBFS()
	p.Pipe = []PipeStmt{&LoopFlag{Flag: "missing", Body: []PipeStmt{&Invoke{Kernel: "bfs"}}}}
	wantErr(t, p, "LoopFlag")

	p = validBFS()
	p.Pipe = []PipeStmt{&LoopFixed{Body: []PipeStmt{&Invoke{Kernel: "bfs"}}}}
	wantErr(t, p, "LoopFixed")

	p = validBFS()
	p.Pipe = []PipeStmt{&LoopConverge{Acc: "lvl", Eps: 0.1, MaxIter: 5}}
	wantErr(t, p, "LoopConverge")

	p = validBFS()
	p.Pipe = []PipeStmt{&LoopNearFar{Kernel: "bfs"}}
	wantErr(t, p, "delta parameter")

	p = validBFS()
	p.Pipe = []PipeStmt{&LoopNearFar{Kernel: "ghost", DeltaParam: "delta"}}
	wantErr(t, p, "unknown kernel")
}

func TestValidateOptimizationAnnotations(t *testing.T) {
	p := validBFS()
	p.Kernels[0].Fibers = true
	p.Kernels[0].FiberCC = true // but PushCountComputable is false
	wantErr(t, p, "computable push count")

	p = validBFS()
	p.Kernels[0].PushCountComputable = true
	p.Kernels[0].FiberCC = true // fibers not enabled
	wantErr(t, p, "requires fibers")
}

func TestValidateWorklistRequirements(t *testing.T) {
	p := validBFS()
	p.WLInit = WLNone
	wantErr(t, p, "worklist")
}

func TestValidateInitModes(t *testing.T) {
	p := validBFS()
	p.Arrays = append(p.Arrays, ArrayDecl{Name: "pri", T: F32, Init: InitHash})
	wantErr(t, p, "InitHash")

	p = validBFS()
	p.Arrays = append(p.Arrays, ArrayDecl{Name: "lbl", T: F32, Init: InitIota})
	wantErr(t, p, "InitIota")
}

func TestHelperLookups(t *testing.T) {
	p := validBFS()
	if p.KernelByName("bfs") == nil || p.KernelByName("nope") != nil {
		t.Error("KernelByName wrong")
	}
	if p.ArrayByName("lvl") == nil || p.ArrayByName("nope") != nil {
		t.Error("ArrayByName wrong")
	}
}

func TestExprStrings(t *testing.T) {
	e := AddE(Ld("lvl", V("n")), CI(1))
	if got := e.String(); got != "(lvl[n] + 1)" {
		t.Errorf("String = %q", got)
	}
	s := SelE(LtE(V("a"), V("b")), V("a"), V("b"))
	if got := s.String(); !strings.Contains(got, "?") {
		t.Errorf("select String = %q", got)
	}
	if (&RowStart{Node: V("n")}).String() != "rowstart(n)" {
		t.Error("RowStart String")
	}
	if (&Param{Name: "src"}).String() != "$src" {
		t.Error("Param String")
	}
	if I32.String() != "i32" || Bool.String() != "bool" {
		t.Error("Type String")
	}
	if Add.String() != "+" || LAnd.String() != "&&" {
		t.Error("BinOp String")
	}
}
