package ir

// Clone returns a deep copy of the program. Optimization passes clone before
// annotating so one authored program can be compiled under many option sets.
func (p *Program) Clone() *Program {
	out := *p
	out.Arrays = append([]ArrayDecl(nil), p.Arrays...)
	out.Kernels = make([]*Kernel, len(p.Kernels))
	for i, k := range p.Kernels {
		ck := *k
		ck.Body = cloneStmts(k.Body)
		out.Kernels[i] = &ck
	}
	out.Pipe = clonePipe(p.Pipe)
	if p.DefaultParams != nil {
		out.DefaultParams = make(map[string]int32, len(p.DefaultParams))
		for k, v := range p.DefaultParams {
			out.DefaultParams[k] = v
		}
	}
	return &out
}

func clonePipe(ss []PipeStmt) []PipeStmt {
	if ss == nil {
		return nil
	}
	out := make([]PipeStmt, len(ss))
	for i, s := range ss {
		switch s := s.(type) {
		case *Invoke:
			c := *s
			out[i] = &c
		case *LoopWL:
			out[i] = &LoopWL{Body: clonePipe(s.Body)}
		case *LoopFlag:
			out[i] = &LoopFlag{Flag: s.Flag, IncParam: s.IncParam, Body: clonePipe(s.Body)}
		case *LoopFixed:
			out[i] = &LoopFixed{N: s.N, NParam: s.NParam, Body: clonePipe(s.Body)}
		case *LoopConverge:
			out[i] = &LoopConverge{Acc: s.Acc, Eps: s.Eps, MaxIter: s.MaxIter, Body: clonePipe(s.Body)}
		case *LoopNearFar:
			c := *s
			out[i] = &c
		case *SwapWL:
			out[i] = &SwapWL{}
		case *LoopHybrid:
			out[i] = &LoopHybrid{
				ThreshDenom: s.ThreshDenom,
				Small:       clonePipe(s.Small),
				Big:         clonePipe(s.Big),
				IncParam:    s.IncParam,
			}
		default:
			panic("ir: clone of unknown pipe statement")
		}
	}
	return out
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Decl:
		c := *s
		c.Init = cloneExpr(s.Init)
		return &c
	case *Assign:
		c := *s
		c.Val = cloneExpr(s.Val)
		return &c
	case *Store:
		c := *s
		c.Idx, c.Val = cloneExpr(s.Idx), cloneExpr(s.Val)
		return &c
	case *If:
		return &If{Cond: cloneExpr(s.Cond), Then: cloneStmts(s.Then), Else: cloneStmts(s.Else)}
	case *While:
		return &While{Cond: cloneExpr(s.Cond), Body: cloneStmts(s.Body)}
	case *ForEdges:
		return &ForEdges{EdgeVar: s.EdgeVar, Node: cloneExpr(s.Node), Body: cloneStmts(s.Body), Sched: s.Sched}
	case *Push:
		c := *s
		c.Val = cloneExpr(s.Val)
		return &c
	case *AtomicMin:
		c := *s
		c.Idx, c.Val = cloneExpr(s.Idx), cloneExpr(s.Val)
		return &c
	case *AtomicCAS:
		c := *s
		c.Idx, c.Old, c.New = cloneExpr(s.Idx), cloneExpr(s.Old), cloneExpr(s.New)
		return &c
	case *AtomicAdd:
		c := *s
		c.Idx, c.Val = cloneExpr(s.Idx), cloneExpr(s.Val)
		return &c
	case *AccumAdd:
		c := *s
		c.Val = cloneExpr(s.Val)
		return &c
	case *SetFlag:
		c := *s
		return &c
	}
	panic("ir: clone of unknown statement")
}

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ConstI:
		c := *e
		return &c
	case *ConstF:
		c := *e
		return &c
	case *Param:
		c := *e
		return &c
	case *Var:
		c := *e
		return &c
	case *Bin:
		return &Bin{Op: e.Op, A: cloneExpr(e.A), B: cloneExpr(e.B)}
	case *Not:
		return &Not{A: cloneExpr(e.A)}
	case *Sel:
		return &Sel{Cond: cloneExpr(e.Cond), A: cloneExpr(e.A), B: cloneExpr(e.B)}
	case *Load:
		return &Load{Arr: e.Arr, Idx: cloneExpr(e.Idx)}
	case *NumNodes:
		return &NumNodes{}
	case *RowStart:
		return &RowStart{Node: cloneExpr(e.Node)}
	case *RowEnd:
		return &RowEnd{Node: cloneExpr(e.Node)}
	case *EdgeDst:
		return &EdgeDst{Edge: cloneExpr(e.Edge)}
	case *EdgeWt:
		return &EdgeWt{Edge: cloneExpr(e.Edge)}
	case *ToF:
		return &ToF{A: cloneExpr(e.A)}
	case *ToI:
		return &ToI{A: cloneExpr(e.A)}
	}
	panic("ir: clone of unknown expression")
}

// WalkStmts calls fn for every statement in the list, recursing into nested
// bodies. Used by optimization passes.
func WalkStmts(ss []Stmt, fn func(Stmt)) {
	for _, s := range ss {
		fn(s)
		switch s := s.(type) {
		case *If:
			WalkStmts(s.Then, fn)
			WalkStmts(s.Else, fn)
		case *While:
			WalkStmts(s.Body, fn)
		case *ForEdges:
			WalkStmts(s.Body, fn)
		}
	}
}
