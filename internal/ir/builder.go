package ir

// Terse constructors for authoring kernels in Go, in rough order of the
// grammar. These keep kernel definitions (internal/kernels) close to the
// IrGL originals in shape.

// CI builds an int constant.
func CI(v int32) *ConstI { return &ConstI{V: v} }

// CF builds a float constant.
func CF(v float32) *ConstF { return &ConstF{V: v} }

// P references a uniform runtime parameter.
func P(name string) *Param { return &Param{Name: name} }

// V references a local variable.
func V(name string) *Var { return &Var{Name: name} }

// B builds a binary expression.
func B(op BinOp, a, b Expr) *Bin { return &Bin{Op: op, A: a, B: b} }

// AddE, SubE, MulE build arithmetic expressions.
func AddE(a, b Expr) *Bin { return B(Add, a, b) }
func SubE(a, b Expr) *Bin { return B(Sub, a, b) }
func MulE(a, b Expr) *Bin { return B(Mul, a, b) }

// EqE, NeE, LtE, LeE, GtE, GeE build comparisons.
func EqE(a, b Expr) *Bin { return B(Eq, a, b) }
func NeE(a, b Expr) *Bin { return B(Ne, a, b) }
func LtE(a, b Expr) *Bin { return B(Lt, a, b) }
func LeE(a, b Expr) *Bin { return B(Le, a, b) }
func GtE(a, b Expr) *Bin { return B(Gt, a, b) }
func GeE(a, b Expr) *Bin { return B(Ge, a, b) }

// AndE, OrE combine predicates.
func AndE(a, b Expr) *Bin { return B(LAnd, a, b) }
func OrE(a, b Expr) *Bin  { return B(LOr, a, b) }

// MinE, MaxE build lane-wise min/max.
func MinE(a, b Expr) *Bin { return B(Min, a, b) }
func MaxE(a, b Expr) *Bin { return B(Max, a, b) }

// NotE negates a predicate.
func NotE(a Expr) *Not { return &Not{A: a} }

// SelE builds a lane select.
func SelE(cond, a, b Expr) *Sel { return &Sel{Cond: cond, A: a, B: b} }

// Ld loads Arr[Idx].
func Ld(arr string, idx Expr) *Load { return &Load{Arr: arr, Idx: idx} }

// DeclI declares an int variable.
func DeclI(name string, init Expr) *Decl { return &Decl{Name: name, T: I32, Init: init} }

// DeclF declares a float variable.
func DeclF(name string, init Expr) *Decl { return &Decl{Name: name, T: F32, Init: init} }

// DeclB declares a predicate variable.
func DeclB(name string, init Expr) *Decl { return &Decl{Name: name, T: Bool, Init: init} }

// Set assigns a variable.
func Set(name string, val Expr) *Assign { return &Assign{Name: name, Val: val} }

// St stores Arr[Idx] = Val.
func St(arr string, idx, val Expr) *Store { return &Store{Arr: arr, Idx: idx, Val: val} }

// IfS builds an if with no else.
func IfS(cond Expr, then ...Stmt) *If { return &If{Cond: cond, Then: then} }

// IfElse builds an if/else.
func IfElse(cond Expr, then, els []Stmt) *If { return &If{Cond: cond, Then: then, Else: els} }

// WhileS builds a while loop.
func WhileS(cond Expr, body ...Stmt) *While { return &While{Cond: cond, Body: body} }

// ForE builds an edge loop over Node's CSR row.
func ForE(edgeVar string, node Expr, body ...Stmt) *ForEdges {
	return &ForEdges{EdgeVar: edgeVar, Node: node, Body: body}
}

// PushOut pushes to the pipeline worklist.
func PushOut(val Expr) *Push { return &Push{WL: "out", Val: val} }

// PushTo pushes to a named worklist role ("near"/"far").
func PushTo(wl string, val Expr) *Push { return &Push{WL: wl, Val: val} }
