package ir

import "fmt"

// Validate checks a program for structural and type errors: undefined
// variables, arrays, kernels or worklist roles; type mismatches; pushes in
// programs without worklists; and illegal optimization annotations. The
// backend relies on validated programs and panics rather than re-checking.
func Validate(p *Program) error {
	if p.Name == "" {
		return fmt.Errorf("ir: program has no name")
	}
	if len(p.Kernels) == 0 {
		return fmt.Errorf("ir: program %s has no kernels", p.Name)
	}
	seen := map[string]bool{}
	for _, a := range p.Arrays {
		if a.Name == "" {
			return fmt.Errorf("ir: %s: unnamed array", p.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("ir: %s: duplicate array %q", p.Name, a.Name)
		}
		seen[a.Name] = true
		if a.Init == InitHash && a.T != I32 {
			return fmt.Errorf("ir: %s: array %q: InitHash requires i32", p.Name, a.Name)
		}
		if a.Init == InitIota && a.T != I32 {
			return fmt.Errorf("ir: %s: array %q: InitIota requires i32", p.Name, a.Name)
		}
	}
	kseen := map[string]bool{}
	for _, k := range p.Kernels {
		if kseen[k.Name] {
			return fmt.Errorf("ir: %s: duplicate kernel %q", p.Name, k.Name)
		}
		kseen[k.Name] = true
		if err := validateKernel(p, k); err != nil {
			return err
		}
		if k.Domain == DomainWL && p.WLInit == WLNone {
			return fmt.Errorf("ir: %s: kernel %q iterates a worklist but program declares none", p.Name, k.Name)
		}
		if k.FiberCC && !k.PushCountComputable {
			return fmt.Errorf("ir: %s: kernel %q: fiber-level CC requires a computable push count", p.Name, k.Name)
		}
		if k.FiberCC && !k.Fibers {
			return fmt.Errorf("ir: %s: kernel %q: fiber-level CC requires fibers", p.Name, k.Name)
		}
	}
	if len(p.Pipe) == 0 {
		return fmt.Errorf("ir: %s: empty pipe", p.Name)
	}
	return validatePipe(p, p.Pipe)
}

func validatePipe(p *Program, stmts []PipeStmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Invoke:
			if p.KernelByName(s.Kernel) == nil {
				return fmt.Errorf("ir: %s: pipe invokes unknown kernel %q", p.Name, s.Kernel)
			}
		case *LoopWL:
			if p.WLInit == WLNone {
				return fmt.Errorf("ir: %s: LoopWL without a worklist", p.Name)
			}
			if err := validatePipe(p, s.Body); err != nil {
				return err
			}
		case *LoopFlag:
			if a := p.ArrayByName(s.Flag); a == nil || a.T != I32 {
				return fmt.Errorf("ir: %s: LoopFlag flag %q must be a declared i32 array", p.Name, s.Flag)
			}
			if err := validatePipe(p, s.Body); err != nil {
				return err
			}
		case *LoopFixed:
			if s.N <= 0 && s.NParam == "" {
				return fmt.Errorf("ir: %s: LoopFixed needs N or NParam", p.Name)
			}
			if err := validatePipe(p, s.Body); err != nil {
				return err
			}
		case *LoopConverge:
			if a := p.ArrayByName(s.Acc); a == nil || a.T != F32 {
				return fmt.Errorf("ir: %s: LoopConverge accumulator %q must be a declared f32 array", p.Name, s.Acc)
			}
			if s.MaxIter <= 0 {
				return fmt.Errorf("ir: %s: LoopConverge needs MaxIter > 0", p.Name)
			}
			if err := validatePipe(p, s.Body); err != nil {
				return err
			}
		case *LoopNearFar:
			if p.KernelByName(s.Kernel) == nil {
				return fmt.Errorf("ir: %s: LoopNearFar names unknown kernel %q", p.Name, s.Kernel)
			}
			if s.DeltaParam == "" {
				return fmt.Errorf("ir: %s: LoopNearFar needs a delta parameter", p.Name)
			}
			if p.WLInit == WLNone {
				return fmt.Errorf("ir: %s: LoopNearFar without a worklist", p.Name)
			}
		case *SwapWL:
			if p.WLInit == WLNone {
				return fmt.Errorf("ir: %s: SwapWL without a worklist", p.Name)
			}
		case *LoopHybrid:
			if p.WLInit == WLNone {
				return fmt.Errorf("ir: %s: LoopHybrid without a worklist", p.Name)
			}
			if s.ThreshDenom <= 0 {
				return fmt.Errorf("ir: %s: LoopHybrid needs ThreshDenom > 0", p.Name)
			}
			if len(s.Small) == 0 || len(s.Big) == 0 {
				return fmt.Errorf("ir: %s: LoopHybrid needs both Small and Big bodies", p.Name)
			}
			if err := validatePipe(p, s.Small); err != nil {
				return err
			}
			if err := validatePipe(p, s.Big); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ir: %s: unknown pipe statement %T", p.Name, s)
		}
	}
	return nil
}

// scope tracks variable types during kernel validation.
type scope struct {
	p    *Program
	k    *Kernel
	vars map[string]Type
}

func validateKernel(p *Program, k *Kernel) error {
	if k.Name == "" {
		return fmt.Errorf("ir: %s: unnamed kernel", p.Name)
	}
	if k.ItemVar == "" {
		return fmt.Errorf("ir: %s: kernel %q has no item variable", p.Name, k.Name)
	}
	if len(k.Body) == 0 {
		return fmt.Errorf("ir: %s: kernel %q has empty body", p.Name, k.Name)
	}
	sc := &scope{p: p, k: k, vars: map[string]Type{k.ItemVar: I32}}
	return sc.stmts(k.Body)
}

func (sc *scope) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := sc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) errf(format string, args ...any) error {
	prefix := fmt.Sprintf("ir: %s/%s: ", sc.p.Name, sc.k.Name)
	return fmt.Errorf(prefix+format, args...)
}

func (sc *scope) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Decl:
		if _, dup := sc.vars[s.Name]; dup {
			return sc.errf("redeclaration of %q", s.Name)
		}
		t, err := sc.typeOf(s.Init)
		if err != nil {
			return err
		}
		if t != s.T {
			return sc.errf("decl %q: init is %v, want %v", s.Name, t, s.T)
		}
		sc.vars[s.Name] = s.T
	case *Assign:
		want, ok := sc.vars[s.Name]
		if !ok {
			return sc.errf("assignment to undeclared %q", s.Name)
		}
		t, err := sc.typeOf(s.Val)
		if err != nil {
			return err
		}
		if t != want {
			return sc.errf("assign %q: value is %v, want %v", s.Name, t, want)
		}
	case *Store:
		a := sc.p.ArrayByName(s.Arr)
		if a == nil {
			return sc.errf("store to undeclared array %q", s.Arr)
		}
		if err := sc.expect(s.Idx, I32, "store index"); err != nil {
			return err
		}
		if err := sc.expect(s.Val, a.T, "store value"); err != nil {
			return err
		}
	case *If:
		if err := sc.expect(s.Cond, Bool, "if condition"); err != nil {
			return err
		}
		if err := sc.stmts(s.Then); err != nil {
			return err
		}
		return sc.stmts(s.Else)
	case *While:
		if err := sc.expect(s.Cond, Bool, "while condition"); err != nil {
			return err
		}
		return sc.stmts(s.Body)
	case *ForEdges:
		if err := sc.expect(s.Node, I32, "ForEdges node"); err != nil {
			return err
		}
		if _, dup := sc.vars[s.EdgeVar]; dup {
			return sc.errf("ForEdges shadows %q", s.EdgeVar)
		}
		sc.vars[s.EdgeVar] = I32
		err := sc.stmts(s.Body)
		delete(sc.vars, s.EdgeVar)
		return err
	case *Push:
		switch s.WL {
		case "out", "near", "far":
		default:
			return sc.errf("push to unknown worklist role %q", s.WL)
		}
		if sc.p.WLInit == WLNone {
			return sc.errf("push in a program without worklists")
		}
		return sc.expect(s.Val, I32, "push value")
	case *AtomicMin, *AtomicCAS, *AtomicAdd:
		return sc.atomic(s)
	case *AccumAdd:
		a := sc.p.ArrayByName(s.Acc)
		if a == nil {
			return sc.errf("accumulate into undeclared array %q", s.Acc)
		}
		t, err := sc.typeOf(s.Val)
		if err != nil {
			return err
		}
		if t == Bool {
			return sc.errf("cannot accumulate a predicate")
		}
		if t != a.T {
			return sc.errf("accumulate %v into %v array %q", t, a.T, s.Acc)
		}
	case *SetFlag:
		a := sc.p.ArrayByName(s.Flag)
		if a == nil || a.T != I32 {
			return sc.errf("SetFlag %q: not a declared i32 array", s.Flag)
		}
	default:
		return sc.errf("unknown statement %T", s)
	}
	return nil
}

func (sc *scope) atomic(s Stmt) error {
	bindSuccess := func(name string) error {
		if name == "" {
			return nil
		}
		if _, dup := sc.vars[name]; dup {
			return sc.errf("atomic success var %q redeclares", name)
		}
		sc.vars[name] = Bool
		return nil
	}
	switch s := s.(type) {
	case *AtomicMin:
		a := sc.p.ArrayByName(s.Arr)
		if a == nil || a.T != I32 {
			return sc.errf("AtomicMin on %q: not a declared i32 array", s.Arr)
		}
		if err := sc.expect(s.Idx, I32, "AtomicMin index"); err != nil {
			return err
		}
		if err := sc.expect(s.Val, I32, "AtomicMin value"); err != nil {
			return err
		}
		return bindSuccess(s.Success)
	case *AtomicCAS:
		a := sc.p.ArrayByName(s.Arr)
		if a == nil || a.T != I32 {
			return sc.errf("AtomicCAS on %q: not a declared i32 array", s.Arr)
		}
		for _, pair := range []struct {
			e Expr
			n string
		}{{s.Idx, "index"}, {s.Old, "old"}, {s.New, "new"}} {
			if err := sc.expect(pair.e, I32, "AtomicCAS "+pair.n); err != nil {
				return err
			}
		}
		return bindSuccess(s.Success)
	case *AtomicAdd:
		a := sc.p.ArrayByName(s.Arr)
		if a == nil || a.T == Bool {
			return sc.errf("AtomicAdd on %q: not a declared numeric array", s.Arr)
		}
		if err := sc.expect(s.Idx, I32, "AtomicAdd index"); err != nil {
			return err
		}
		return sc.expect(s.Val, a.T, "AtomicAdd value")
	}
	panic("unreachable")
}

func (sc *scope) expect(e Expr, want Type, what string) error {
	t, err := sc.typeOf(e)
	if err != nil {
		return err
	}
	if t != want {
		return sc.errf("%s: got %v, want %v", what, t, want)
	}
	return nil
}

func (sc *scope) typeOf(e Expr) (Type, error) {
	switch e := e.(type) {
	case *ConstI:
		return I32, nil
	case *ConstF:
		return F32, nil
	case *Param:
		return I32, nil
	case *Var:
		t, ok := sc.vars[e.Name]
		if !ok {
			return 0, sc.errf("use of undeclared variable %q", e.Name)
		}
		return t, nil
	case *Bin:
		ta, err := sc.typeOf(e.A)
		if err != nil {
			return 0, err
		}
		tb, err := sc.typeOf(e.B)
		if err != nil {
			return 0, err
		}
		if ta != tb {
			return 0, sc.errf("operator %v mixes %v and %v", e.Op, ta, tb)
		}
		switch {
		case e.Op.IsLogical():
			if ta != Bool {
				return 0, sc.errf("operator %v needs bool operands, got %v", e.Op, ta)
			}
			return Bool, nil
		case e.Op.IsCompare():
			if ta == Bool {
				return 0, sc.errf("comparison %v on bool operands", e.Op)
			}
			return Bool, nil
		default:
			if ta == Bool {
				return 0, sc.errf("arithmetic %v on bool operands", e.Op)
			}
			if ta == F32 {
				switch e.Op {
				case Add, Sub, Mul, Div, Min, Max:
				default:
					return 0, sc.errf("operator %v not defined on f32", e.Op)
				}
			}
			return ta, nil
		}
	case *Not:
		if err := sc.expect(e.A, Bool, "negation"); err != nil {
			return 0, err
		}
		return Bool, nil
	case *Sel:
		if err := sc.expect(e.Cond, Bool, "select condition"); err != nil {
			return 0, err
		}
		ta, err := sc.typeOf(e.A)
		if err != nil {
			return 0, err
		}
		tb, err := sc.typeOf(e.B)
		if err != nil {
			return 0, err
		}
		if ta != tb {
			return 0, sc.errf("select arms differ: %v vs %v", ta, tb)
		}
		return ta, nil
	case *Load:
		a := sc.p.ArrayByName(e.Arr)
		if a == nil {
			return 0, sc.errf("load from undeclared array %q", e.Arr)
		}
		if err := sc.expect(e.Idx, I32, "load index"); err != nil {
			return 0, err
		}
		return a.T, nil
	case *NumNodes:
		return I32, nil
	case *RowStart:
		if err := sc.expect(e.Node, I32, "rowstart"); err != nil {
			return 0, err
		}
		return I32, nil
	case *RowEnd:
		if err := sc.expect(e.Node, I32, "rowend"); err != nil {
			return 0, err
		}
		return I32, nil
	case *EdgeDst:
		if err := sc.expect(e.Edge, I32, "edgedst"); err != nil {
			return 0, err
		}
		return I32, nil
	case *EdgeWt:
		if err := sc.expect(e.Edge, I32, "edgewt"); err != nil {
			return 0, err
		}
		return I32, nil
	case *ToF:
		if err := sc.expect(e.A, I32, "f32 conversion"); err != nil {
			return 0, err
		}
		return F32, nil
	case *ToI:
		if err := sc.expect(e.A, F32, "i32 conversion"); err != nil {
			return 0, err
		}
		return I32, nil
	}
	return 0, sc.errf("unknown expression %T", e)
}
