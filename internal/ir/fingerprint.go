package ir

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Fingerprint returns a stable 64-bit identity of a program's
// codegen-relevant structure: array declarations, worklist setup and every
// kernel (flags and full body). Pipe structure, default parameters and the
// program name are deliberately excluded — they do not change what code a
// kernel backend must emit, so a generated kernel stays usable across pipe
// rewrites (e.g. iteration outlining on or off).
//
// The generated-Go backend embeds the fingerprint of the optimized IR it was
// produced from; at bind time the runtime recomputes the fingerprint of the
// IR it is about to execute and engages generated code only on an exact
// match. Any drift — different optimization passes, edited kernels, a new
// lowering — falls back to the interpreter instead of running stale code.
func Fingerprint(p *Program) string {
	h := fnv.New64a()
	f := &fpWriter{w: h}
	f.program(p)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fpWriter serializes IR nodes into a canonical byte stream. Every node kind
// is tagged, every list is length-prefixed, so distinct trees cannot collide
// by concatenation.
type fpWriter struct {
	w io.Writer
}

func (f *fpWriter) s(parts ...any) {
	fmt.Fprintln(f.w, parts...)
}

func (f *fpWriter) program(p *Program) {
	f.s("arrays", len(p.Arrays))
	for _, a := range p.Arrays {
		f.s("array", a.Name, int(a.T), int(a.Size))
	}
	f.s("wl", int(p.WLInit), p.WLCapEdges)
	f.s("kernels", len(p.Kernels))
	for _, k := range p.Kernels {
		f.kernel(k)
	}
}

func (f *fpWriter) kernel(k *Kernel) {
	f.s("kernel", k.Name, int(k.Domain), k.ItemVar,
		k.Fibers, k.FiberCC, k.PushCountComputable)
	f.stmts(k.Body)
}

func (f *fpWriter) stmts(ss []Stmt) {
	f.s("stmts", len(ss))
	for _, s := range ss {
		f.stmt(s)
	}
}

func (f *fpWriter) stmt(s Stmt) {
	switch s := s.(type) {
	case *Decl:
		f.s("decl", s.Name, int(s.T))
		f.expr(s.Init)
	case *Assign:
		f.s("assign", s.Name)
		f.expr(s.Val)
	case *Store:
		f.s("store", s.Arr)
		f.expr(s.Idx)
		f.expr(s.Val)
	case *If:
		f.s("if")
		f.expr(s.Cond)
		f.stmts(s.Then)
		f.stmts(s.Else)
	case *While:
		f.s("while")
		f.expr(s.Cond)
		f.stmts(s.Body)
	case *ForEdges:
		f.s("foredges", s.EdgeVar, int(s.Sched))
		f.expr(s.Node)
		f.stmts(s.Body)
	case *Push:
		f.s("push", s.WL, int(s.Mode))
		f.expr(s.Val)
	case *AtomicMin:
		f.s("atomicmin", s.Arr, s.Success)
		f.expr(s.Idx)
		f.expr(s.Val)
	case *AtomicCAS:
		f.s("atomiccas", s.Arr, s.Success)
		f.expr(s.Idx)
		f.expr(s.Old)
		f.expr(s.New)
	case *AtomicAdd:
		f.s("atomicadd", s.Arr)
		f.expr(s.Idx)
		f.expr(s.Val)
	case *AccumAdd:
		f.s("accumadd", s.Acc)
		f.expr(s.Val)
	case *SetFlag:
		f.s("setflag", s.Flag)
	default:
		f.s("stmt?", fmt.Sprintf("%T", s))
	}
}

func (f *fpWriter) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		f.s("nilexpr")
	case *ConstI:
		f.s("consti", e.V)
	case *ConstF:
		// %b prints the exact bit-level mantissa/exponent form, so values
		// that differ only past the shortest decimal representation still
		// fingerprint apart.
		f.s("constf", fmt.Sprintf("%b", e.V))
	case *Param:
		f.s("param", e.Name)
	case *Var:
		f.s("var", e.Name)
	case *Bin:
		f.s("bin", int(e.Op))
		f.expr(e.A)
		f.expr(e.B)
	case *Not:
		f.s("not")
		f.expr(e.A)
	case *Sel:
		f.s("sel")
		f.expr(e.Cond)
		f.expr(e.A)
		f.expr(e.B)
	case *Load:
		f.s("load", e.Arr)
		f.expr(e.Idx)
	case *NumNodes:
		f.s("numnodes")
	case *RowStart:
		f.s("rowstart")
		f.expr(e.Node)
	case *RowEnd:
		f.s("rowend")
		f.expr(e.Node)
	case *EdgeDst:
		f.s("edgedst")
		f.expr(e.Edge)
	case *EdgeWt:
		f.s("edgewt")
		f.expr(e.Edge)
	case *ToF:
		f.s("tof")
		f.expr(e.A)
	case *ToI:
		f.s("toi")
		f.expr(e.A)
	default:
		f.s("expr?", fmt.Sprintf("%T", e))
	}
}
