package vec

import "fmt"

// ISA identifies the instruction-set family a kernel is lowered to. The CPU
// families mirror the paper's AVX1/AVX2/AVX512 study (Section IV-B); GPU is
// the 32-wide warp ISA used for the CPU-vs-GPU comparison; Scalar is the
// serial build obtained by marking everything uniform.
type ISA uint8

const (
	Scalar ISA = iota
	AVX1
	AVX2
	AVX512
	GPU
	// NEON is the 128-bit ARM extension — the paper leaves its evaluation
	// to future work; this reproduction includes it as an extension. Like
	// AVX1 it has neither gathers, scatters nor mask registers.
	NEON
)

var isaNames = [...]string{
	Scalar: "scalar", AVX1: "avx1", AVX2: "avx2", AVX512: "avx512", GPU: "gpu",
	NEON: "neon",
}

func (i ISA) String() string {
	if int(i) < len(isaNames) {
		return isaNames[i]
	}
	return "isa?"
}

// Target is an ISA at a logical SIMD width, e.g. avx2-i32x16 (AVX2 hardware
// with 16 logical lanes, issued as two 8-wide instructions — exactly how
// ISPC's avx2-i32x16 target works).
type Target struct {
	ISA   ISA
	Width int // logical lanes; 1 for Scalar, up to MaxWidth
}

// Standard targets matching the paper's evaluation matrix.
var (
	TargetScalar    = Target{Scalar, 1}
	TargetAVX1x4    = Target{AVX1, 4}
	TargetAVX1x8    = Target{AVX1, 8}
	TargetAVX1x16   = Target{AVX1, 16}
	TargetAVX2x4    = Target{AVX2, 4}
	TargetAVX2x8    = Target{AVX2, 8}
	TargetAVX2x16   = Target{AVX2, 16}
	TargetAVX512x4  = Target{AVX512, 4}
	TargetAVX512x8  = Target{AVX512, 8}
	TargetAVX512x16 = Target{AVX512, 16}
	TargetGPU32     = Target{GPU, 32}
	TargetNEON4     = Target{NEON, 4}
	TargetNEON8     = Target{NEON, 8}
)

// ParseTarget parses names like "avx512-i32x16", "avx2-i32x8", "scalar",
// "gpu".
func ParseTarget(s string) (Target, error) {
	switch s {
	case "scalar", "serial":
		return TargetScalar, nil
	case "gpu", "cuda":
		return TargetGPU32, nil
	case "neon", "neon-i32x4":
		return TargetNEON4, nil
	case "neon-i32x8":
		return TargetNEON8, nil
	}
	var isa ISA
	var w int
	n, err := fmt.Sscanf(s, "avx%d-i32x%d", new(int), &w)
	_ = n
	if err != nil {
		return Target{}, fmt.Errorf("vec: unrecognized target %q", s)
	}
	var v int
	fmt.Sscanf(s, "avx%d-", &v)
	switch v {
	case 1:
		isa = AVX1
	case 2:
		isa = AVX2
	case 512:
		isa = AVX512
	default:
		return Target{}, fmt.Errorf("vec: unrecognized AVX version in %q", s)
	}
	if w != 4 && w != 8 && w != 16 {
		return Target{}, fmt.Errorf("vec: unsupported width %d in %q", w, s)
	}
	return Target{isa, w}, nil
}

func (t Target) String() string {
	switch t.ISA {
	case Scalar:
		return "scalar"
	case GPU:
		return "gpu-i32x32"
	case AVX1:
		return fmt.Sprintf("avx1-i32x%d", t.Width)
	case AVX2:
		return fmt.Sprintf("avx2-i32x%d", t.Width)
	case AVX512:
		return fmt.Sprintf("avx512-i32x%d", t.Width)
	case NEON:
		return fmt.Sprintf("neon-i32x%d", t.Width)
	}
	return "target?"
}

// NativeWidth returns the widest 32-bit integer operation the ISA issues in
// one instruction. AVX1 integer ops are SSE-class (4 lanes — 256-bit AVX1
// only covers floats); AVX2 is 8; AVX512 is 16; a GPU warp is 32.
func (t Target) NativeWidth() int {
	switch t.ISA {
	case Scalar:
		return 1
	case AVX1, NEON:
		return 4
	case AVX2:
		return 8
	case AVX512:
		return 16
	case GPU:
		return 32
	}
	panic("vec: unknown ISA")
}

// Chunks returns how many native instructions one logical-width operation
// needs: ceil(Width / NativeWidth).
func (t Target) Chunks() int {
	n := t.NativeWidth()
	return (t.Width + n - 1) / n
}

// HasNativeGather reports whether the ISA has a hardware gather instruction
// (introduced in AVX2).
func (t Target) HasNativeGather() bool {
	return t.ISA == AVX2 || t.ISA == AVX512 || t.ISA == GPU
}

// HasNativeScatter reports whether the ISA has a hardware scatter
// instruction (introduced in AVX512).
func (t Target) HasNativeScatter() bool {
	return t.ISA == AVX512 || t.ISA == GPU
}

// HasMaskRegisters reports whether predication is architecturally free
// (AVX512 opmask registers; GPUs predicate in hardware). Without them, every
// masked operation needs an extra blend to merge results.
func (t Target) HasMaskRegisters() bool {
	return t.ISA == AVX512 || t.ISA == GPU
}

// OpClass buckets operations for instruction accounting and the latency
// model.
type OpClass uint8

const (
	ClassALU         OpClass = iota // vector arithmetic/logical
	ClassCmp                        // vector compare (+movemask where no opmask)
	ClassBlend                      // select/merge
	ClassGather                     // indexed vector load
	ClassScatter                    // indexed vector store
	ClassVLoad                      // unit-stride vector load
	ClassVStore                     // unit-stride vector store
	ClassPacked                     // packed_store_active / compress
	ClassReduce                     // cross-lane reduction
	ClassScan                       // exclusive prefix sum
	ClassConvert                    // int<->float conversion
	ClassScalar                     // uniform scalar op
	ClassScalarLoad                 // uniform scalar load
	ClassScalarStore                // uniform scalar store
	ClassAtomic                     // scalar hardware atomic (lock-prefixed)
	NumOpClasses
)

var opClassNames = [...]string{
	ClassALU: "alu", ClassCmp: "cmp", ClassBlend: "blend",
	ClassGather: "gather", ClassScatter: "scatter",
	ClassVLoad: "vload", ClassVStore: "vstore", ClassPacked: "packed",
	ClassReduce: "reduce", ClassScan: "scan", ClassConvert: "convert",
	ClassScalar: "scalar", ClassScalarLoad: "sload", ClassScalarStore: "sstore",
	ClassAtomic: "atomic",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "class?"
}

// Lower returns the number of dynamic machine instructions one logical
// operation of class c expands to on target t (the Intel-Pin-style count used
// for Fig. 7). masked applies the predication penalty on ISAs without mask
// registers.
func (t Target) Lower(c OpClass, masked bool) int {
	w := t.Width
	ch := t.Chunks()
	n := 0
	switch c {
	case ClassALU, ClassConvert:
		n = ch
		if masked && !t.HasMaskRegisters() {
			n += ch // blend to merge inactive lanes
		}
	case ClassCmp:
		n = ch
		if !t.HasMaskRegisters() {
			n += ch // movemask to materialize the predicate
		}
	case ClassBlend, ClassVLoad:
		n = ch
	case ClassVStore:
		n = ch
		if masked && !t.HasMaskRegisters() {
			n += ch // load+blend+store read-modify-write
		}
	case ClassGather:
		if t.HasNativeGather() {
			n = ch
		} else {
			// Scalar emulation: extract index, load, insert — per lane.
			n = 3 * w
		}
	case ClassScatter:
		if t.HasNativeScatter() {
			n = ch
		} else {
			n = 3 * w
		}
	case ClassPacked:
		if t.ISA == AVX512 || t.ISA == GPU {
			n = 2 * ch // vpcompressd + store
		} else {
			// Shuffle-table emulation: popcnt, table load, permute, store.
			n = 4 * ch
		}
	case ClassReduce:
		n = log2ceil(t.NativeWidth())*ch + (ch - 1) + 1
	case ClassScan:
		if t.ISA == AVX512 || t.ISA == GPU {
			n = 2*log2ceil(w) + 2
		} else {
			n = w + 2 // serialized scalar scan
		}
	case ClassScalar, ClassScalarLoad, ClassScalarStore:
		n = 1
	case ClassAtomic:
		n = 1
	default:
		panic(fmt.Sprintf("vec: unknown op class %d", c))
	}
	if n < 1 {
		n = 1
	}
	return n
}

func log2ceil(x int) int {
	n := 0
	for p := 1; p < x; p <<= 1 {
		n++
	}
	return n
}
