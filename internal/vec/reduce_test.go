package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceAdd(t *testing.T) {
	v := FromSlice([]int32{1, 2, 3, 4})
	if got := ReduceAdd(v, FullMask(4), 4); got != 10 {
		t.Errorf("ReduceAdd = %d", got)
	}
	if got := ReduceAdd(v, Mask(0).Set(1).Set(3), 4); got != 6 {
		t.Errorf("masked ReduceAdd = %d", got)
	}
	if got := ReduceAdd(v, 0, 4); got != 0 {
		t.Errorf("empty ReduceAdd = %d", got)
	}
}

func TestReduceAddF(t *testing.T) {
	v := FVec{0.5, 1.5, 2.0}
	if got := ReduceAddF(v, FullMask(3), 3); got != 4.0 {
		t.Errorf("ReduceAddF = %v", got)
	}
}

func TestReduceMinMax(t *testing.T) {
	v := FromSlice([]int32{5, -2, 9, 0})
	if got := ReduceMin(v, FullMask(4), 4, 100); got != -2 {
		t.Errorf("ReduceMin = %d", got)
	}
	if got := ReduceMax(v, FullMask(4), 4, -100); got != 9 {
		t.Errorf("ReduceMax = %d", got)
	}
	if got := ReduceMin(v, 0, 4, 42); got != 42 {
		t.Errorf("empty ReduceMin = %d, want default", got)
	}
	if got := ReduceMax(v, Mask(0).Set(1), 4, 7); got != -2 {
		t.Errorf("single-lane ReduceMax = %d", got)
	}
}

// Property: exclusive scan offsets are exactly the running sums of prior
// active lanes, and the returned total is the full masked sum.
func TestExclusiveScanAddProperty(t *testing.T) {
	f := func(raw [16]uint8, mraw uint16) bool {
		var v Vec
		for i, x := range raw {
			v[i] = int32(x)
		}
		m := Mask(mraw)
		scan, total := ExclusiveScanAdd(v, m, 16)
		var run int32
		for i := 0; i < 16; i++ {
			if m.Bit(i) {
				if scan[i] != run {
					return false
				}
				run += v[i]
			}
		}
		return total == run
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstActive(t *testing.T) {
	if got := FirstActive(0, 16); got != -1 {
		t.Errorf("FirstActive(empty) = %d", got)
	}
	if got := FirstActive(Mask(0).Set(5).Set(9), 16); got != 5 {
		t.Errorf("FirstActive = %d", got)
	}
}

func TestReduceEqual(t *testing.T) {
	v := Splat(7)
	if x, ok := ReduceEqual(v, FullMask(8), 8); !ok || x != 7 {
		t.Errorf("ReduceEqual uniform = %d,%v", x, ok)
	}
	v[3] = 8
	if _, ok := ReduceEqual(v, FullMask(8), 8); ok {
		t.Error("ReduceEqual should fail on differing lanes")
	}
	if x, ok := ReduceEqual(v, Mask(0).Set(3), 8); !ok || x != 8 {
		t.Errorf("single-lane ReduceEqual = %d,%v", x, ok)
	}
	if _, ok := ReduceEqual(v, 0, 8); ok {
		t.Error("empty ReduceEqual should report false")
	}
}

func TestReduceAddMatchesScalarLoop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		w := []int{4, 8, 16, 32}[trial%4]
		v := randVec(r, w)
		m := randMask(r, w)
		var want int32
		for i := 0; i < w; i++ {
			if m.Bit(i) {
				want += v[i]
			}
		}
		if got := ReduceAdd(v, m, w); got != want {
			t.Fatalf("ReduceAdd w=%d: got %d want %d", w, got, want)
		}
	}
}
