package vec

import (
	"math/rand"
	"testing"
)

// TestBinMatchesScalar is the core lane-exactness property: every vector
// binary op under every mask must equal the scalar op applied lane-wise to
// active lanes, with inactive lanes untouched.
func TestBinMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpMin, OpMax, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, w := range []int{1, 4, 8, 16, 32} {
		for _, op := range ops {
			for trial := 0; trial < 50; trial++ {
				a, b := randVec(r, w), randVec(r, w)
				m := randMask(r, w)
				got := Bin(op, a, b, m, w)
				for i := 0; i < w; i++ {
					want := a[i]
					if m.Bit(i) {
						want = applyBin(op, a[i], b[i])
					}
					if got[i] != want {
						t.Fatalf("w=%d op=%v lane=%d: got %d want %d (a=%d b=%d m=%v)",
							w, op, i, got[i], want, a[i], b[i], m.Bit(i))
					}
				}
			}
		}
	}
}

func TestBinDivRemByZeroTotal(t *testing.T) {
	a := Splat(10)
	b := Splat(0)
	m := FullMask(8)
	if got := Bin(OpDiv, a, b, m, 8); got[0] != 0 {
		t.Errorf("div by zero lane = %d, want 0", got[0])
	}
	if got := Bin(OpRem, a, b, m, 8); got[0] != 0 {
		t.Errorf("rem by zero lane = %d, want 0", got[0])
	}
}

func TestShiftMasksCount(t *testing.T) {
	a := Splat(1)
	b := Splat(33) // 33 & 31 == 1
	got := Bin(OpShl, a, b, FullMask(4), 4)
	if got[0] != 2 {
		t.Errorf("shl 33 = %d, want 2 (count masked mod 32)", got[0])
	}
	neg := Splat(-8)
	got = Bin(OpShr, neg, Splat(1), FullMask(4), 4)
	if got[0] != -4 {
		t.Errorf("shr arithmetic = %d, want -4", got[0])
	}
}

func TestCmpMask(t *testing.T) {
	a := FromSlice([]int32{1, 5, 3, 7})
	b := FromSlice([]int32{2, 2, 3, 9})
	m := CmpMask(OpLt, a, b, FullMask(4), 4)
	want := Mask(0).Set(0).Set(3)
	if m != want {
		t.Errorf("CmpMask(lt) = %v, want %v", m, want)
	}
	// Inactive lanes can never appear in the result.
	m = CmpMask(OpLt, a, b, Mask(0).Set(3), 4)
	if m != Mask(0).Set(3) {
		t.Errorf("CmpMask under partial mask = %v", m)
	}
}

func TestBlend(t *testing.T) {
	tr := Splat(1)
	fa := Splat(2)
	m := Mask(0).Set(1).Set(2)
	got := Blend(m, tr, fa, 4)
	want := []int32{2, 1, 1, 2}
	for i, x := range want {
		if got[i] != x {
			t.Errorf("Blend lane %d = %d, want %d", i, got[i], x)
		}
	}
}

func TestFBinMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ops := []FBinOp{FAdd, FSub, FMul, FDiv, FMin, FMax}
	for _, w := range []int{4, 8, 16} {
		for _, op := range ops {
			for trial := 0; trial < 30; trial++ {
				var a, b FVec
				for i := 0; i < w; i++ {
					a[i] = r.Float32()*100 - 50
					b[i] = r.Float32()*100 - 49 // avoid exact zero divisor
				}
				m := randMask(r, w)
				got := FBin(op, a, b, m, w)
				for i := 0; i < w; i++ {
					want := a[i]
					if m.Bit(i) {
						want = applyFBin(op, a[i], b[i])
					}
					if got[i] != want {
						t.Fatalf("w=%d op=%v lane=%d: got %v want %v", w, op, i, got[i], want)
					}
				}
			}
		}
	}
}

func TestFCmpMask(t *testing.T) {
	a := FVec{1.5, 2.5, 3.5, 3.5}
	b := FVec{2.0, 2.0, 3.5, 3.0}
	if m := FCmpMask(FLt, a, b, FullMask(4), 4); m != Mask(1) {
		t.Errorf("FLt = %v", m)
	}
	if m := FCmpMask(FGe, a, b, FullMask(4), 4); m != Mask(0).Set(1).Set(2).Set(3) {
		t.Errorf("FGe = %v", m)
	}
	if m := FCmpMask(FEq, a, b, FullMask(4), 4); m != Mask(0).Set(2) {
		t.Errorf("FEq = %v", m)
	}
}

func TestAbs(t *testing.T) {
	v := FromSlice([]int32{-3, 4, -5, 0})
	got := Abs(v, FullMask(4), 4)
	want := []int32{3, 4, 5, 0}
	for i, x := range want {
		if got[i] != x {
			t.Errorf("Abs lane %d = %d, want %d", i, got[i], x)
		}
	}
	// Masked-out lanes keep their (negative) values.
	got = Abs(v, Mask(0).Set(1), 4)
	if got[0] != -3 {
		t.Errorf("Abs modified inactive lane: %d", got[0])
	}
	f := FVec{-1.5, 2.5}
	gf := FAbs(f, FullMask(2), 2)
	if gf[0] != 1.5 || gf[1] != 2.5 {
		t.Errorf("FAbs = %v", gf[:2])
	}
}

func TestOpStringNames(t *testing.T) {
	if OpAdd.String() != "add" || OpGe.String() != "ge" {
		t.Error("BinOp names wrong")
	}
	if FAdd.String() != "fadd" || FEq.String() != "feq" {
		t.Error("FBinOp names wrong")
	}
	if !OpEq.IsCompare() || OpMax.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
	if !FLt.IsCompare() || FMul.IsCompare() {
		t.Error("FBinOp IsCompare misclassifies")
	}
}
