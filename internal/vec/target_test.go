package vec

import "testing"

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
	}{
		{"scalar", TargetScalar},
		{"serial", TargetScalar},
		{"gpu", TargetGPU32},
		{"avx1-i32x8", TargetAVX1x8},
		{"avx2-i32x8", TargetAVX2x8},
		{"avx2-i32x16", TargetAVX2x16},
		{"avx512-i32x16", TargetAVX512x16},
		{"avx512-i32x4", TargetAVX512x4},
	}
	for _, c := range cases {
		got, err := ParseTarget(c.in)
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTarget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "avx3-i32x8", "avx2-i32x5", "mmx"} {
		if _, err := ParseTarget(bad); err == nil {
			t.Errorf("ParseTarget(%q) succeeded, want error", bad)
		}
	}
}

func TestTargetStringRoundTrip(t *testing.T) {
	for _, tgt := range []Target{TargetAVX1x4, TargetAVX2x16, TargetAVX512x8} {
		back, err := ParseTarget(tgt.String())
		if err != nil || back != tgt {
			t.Errorf("round trip %v -> %q -> %v (%v)", tgt, tgt.String(), back, err)
		}
	}
	if TargetScalar.String() != "scalar" || TargetGPU32.String() != "gpu-i32x32" {
		t.Error("special target names wrong")
	}
}

func TestNativeWidthAndChunks(t *testing.T) {
	cases := []struct {
		tgt    Target
		native int
		chunks int
	}{
		{TargetAVX1x16, 4, 4},
		{TargetAVX1x8, 4, 2},
		{TargetAVX2x8, 8, 1},
		{TargetAVX2x16, 8, 2},
		{TargetAVX512x16, 16, 1},
		{TargetAVX512x8, 16, 1},
		{TargetGPU32, 32, 1},
		{TargetScalar, 1, 1},
	}
	for _, c := range cases {
		if got := c.tgt.NativeWidth(); got != c.native {
			t.Errorf("%v NativeWidth = %d, want %d", c.tgt, got, c.native)
		}
		if got := c.tgt.Chunks(); got != c.chunks {
			t.Errorf("%v Chunks = %d, want %d", c.tgt, got, c.chunks)
		}
	}
}

func TestHardwareFeatureMatrix(t *testing.T) {
	// AVX2 introduced gathers; AVX512 introduced scatters and opmasks.
	if TargetAVX1x8.HasNativeGather() {
		t.Error("AVX1 must not have native gather")
	}
	if !TargetAVX2x8.HasNativeGather() || TargetAVX2x8.HasNativeScatter() {
		t.Error("AVX2 feature set wrong")
	}
	if !TargetAVX512x16.HasNativeGather() || !TargetAVX512x16.HasNativeScatter() ||
		!TargetAVX512x16.HasMaskRegisters() {
		t.Error("AVX512 feature set wrong")
	}
	if TargetAVX2x8.HasMaskRegisters() {
		t.Error("AVX2 has no opmask registers")
	}
	if !TargetGPU32.HasMaskRegisters() || !TargetGPU32.HasNativeScatter() {
		t.Error("GPU predication/scatter wrong")
	}
}

// TestLowerOrdering verifies the instruction-count trends the paper observes
// (Section IV-B3): at the same logical width, newer AVX versions need fewer
// dynamic instructions, driven by native gathers, scatters and predication.
func TestLowerOrdering(t *testing.T) {
	classes := []OpClass{ClassALU, ClassCmp, ClassGather, ClassScatter, ClassPacked}
	for _, c := range classes {
		a1 := TargetAVX1x16.Lower(c, true)
		a2 := TargetAVX2x16.Lower(c, true)
		a512 := TargetAVX512x16.Lower(c, true)
		if !(a512 <= a2 && a2 <= a1) {
			t.Errorf("class %v: counts not monotone avx512(%d) <= avx2(%d) <= avx1(%d)",
				c, a512, a2, a1)
		}
	}
	// Strictly fewer for gather at width 16.
	if !(TargetAVX512x16.Lower(ClassGather, true) < TargetAVX1x16.Lower(ClassGather, true)) {
		t.Error("AVX512 gather must be strictly cheaper than AVX1 emulation")
	}
}

func TestLowerMaskingPenalty(t *testing.T) {
	// On ISAs without opmasks, masked ALU ops pay a blend.
	if TargetAVX2x8.Lower(ClassALU, true) <= TargetAVX2x8.Lower(ClassALU, false) {
		t.Error("AVX2 masked ALU should cost more than unmasked")
	}
	// With opmasks, predication is free.
	if TargetAVX512x16.Lower(ClassALU, true) != TargetAVX512x16.Lower(ClassALU, false) {
		t.Error("AVX512 masked ALU should cost the same as unmasked")
	}
}

func TestLowerWidthScaling(t *testing.T) {
	// avx2-i32x16 issues two 8-wide instructions per ALU op.
	if got := TargetAVX2x16.Lower(ClassALU, false); got != 2 {
		t.Errorf("avx2-i32x16 ALU = %d instrs, want 2", got)
	}
	if got := TargetAVX512x16.Lower(ClassALU, false); got != 1 {
		t.Errorf("avx512-i32x16 ALU = %d instrs, want 1", got)
	}
	// Scalar target: everything is 1 instruction per op.
	if got := TargetScalar.Lower(ClassALU, false); got != 1 {
		t.Errorf("scalar ALU = %d", got)
	}
	// All classes yield at least one instruction on every target.
	targets := []Target{TargetScalar, TargetAVX1x4, TargetAVX2x8, TargetAVX512x16, TargetGPU32}
	for _, tgt := range targets {
		for c := OpClass(0); c < NumOpClasses; c++ {
			if got := tgt.Lower(c, false); got < 1 {
				t.Errorf("%v %v = %d instrs", tgt, c, got)
			}
		}
	}
}

func TestISAAndClassNames(t *testing.T) {
	if AVX512.String() != "avx512" || Scalar.String() != "scalar" {
		t.Error("ISA names wrong")
	}
	if ClassGather.String() != "gather" || ClassAtomic.String() != "atomic" {
		t.Error("OpClass names wrong")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 16: 4, 32: 5}
	for x, want := range cases {
		if got := log2ceil(x); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", x, got, want)
		}
	}
}
