package vec

// Memory primitives. Addresses are element indices into []int32 / []float32
// backing arrays; the cache model (internal/machine) translates them to byte
// addresses for locality accounting.

// Gather loads base[idx[i]] into lane i for each active lane. Inactive lanes
// keep old's value (merge semantics, matching AVX512 vpgatherdd {k}).
// Out-of-range indices on active lanes panic: the IR validator guarantees
// kernels never emit them, so a violation is an internal bug worth crashing
// on rather than corrupting results.
func Gather(base []int32, idx Vec, m Mask, w int, old Vec) Vec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[idx[i]]
		}
	}
	return out
}

// GatherF is Gather for float32 arrays.
func GatherF(base []float32, idx Vec, m Mask, w int, old FVec) FVec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[idx[i]]
		}
	}
	return out
}

// Scatter stores lane i of val to base[idx[i]] for each active lane
// (vpscatterdd). If two active lanes target the same index, the
// highest-numbered lane wins, matching AVX512 scatter ordering.
func Scatter(base []int32, idx Vec, val Vec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[idx[i]] = val[i]
		}
	}
}

// ScatterF is Scatter for float32 arrays.
func ScatterF(base []float32, idx Vec, val FVec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[idx[i]] = val[i]
		}
	}
}

// LoadConsecutive loads base[start+i] into lane i for active lanes: the
// standard vector load emitted for unit-stride accesses.
func LoadConsecutive(base []int32, start int32, m Mask, w int, old Vec) Vec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[start+int32(i)]
		}
	}
	return out
}

// StoreConsecutive stores lane i to base[start+i] for active lanes.
func StoreConsecutive(base []int32, start int32, val Vec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[start+int32(i)] = val[i]
		}
	}
}

// PackedStoreActive packs the active lanes of val (in lane order) and stores
// them to consecutive locations starting at base[start]. It returns the
// number of lanes stored. This is ISPC's packed_store_active, the primitive
// behind cooperative worklist pushes.
func PackedStoreActive(base []int32, start int32, val Vec, m Mask, w int) int {
	n := 0
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[start+int32(n)] = val[i]
			n++
		}
	}
	return n
}

// PackActive compacts the active lanes of val into the low lanes of the
// result and reports how many there are. Used by the nested-parallelism
// fine-grained scheduler to redistribute low-degree work.
func PackActive(val Vec, m Mask, w int) (Vec, int) {
	var out Vec
	n := 0
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[n] = val[i]
			n++
		}
	}
	return out, n
}

// Broadcast returns a vector with every lane holding val's lane src
// (vpbroadcastd on a selected element).
func Broadcast(val Vec, src int) Vec {
	return Splat(val[src])
}

// Extract returns lane i of v (vpextrd / movd).
func Extract(v Vec, i int) int32 { return v[i] }

// Insert returns v with lane i set to x (vpinsrd).
func Insert(v Vec, i int, x int32) Vec {
	v[i] = x
	return v
}
