package vec

import "repro/internal/fault"

// Memory primitives. Addresses are element indices into []int32 / []float32
// backing arrays; the cache model (internal/machine) translates them to byte
// addresses for locality accounting.
//
// Each primitive has a Checked variant that validates active-lane indices
// before touching memory and returns a typed *fault.BoundsError instead of
// crashing. The execution engine uses the checked forms exclusively, so
// corrupt graphs and injected faults surface as errors; the unchecked forms
// remain for IR-validated call sites where a violation is an internal bug.

// checkLanes validates idx's active lanes against [0,n).
func checkLanes(op string, idx Vec, m Mask, w, n int) error {
	for i := 0; i < w; i++ {
		if m.Bit(i) && (idx[i] < 0 || int(idx[i]) >= n) {
			return &fault.BoundsError{Op: op, Lane: i, Index: idx[i], Len: n}
		}
	}
	return nil
}

// checkRange validates the consecutive range [start, start+span) against
// [0,n) for span > 0 accesses.
func checkRange(op string, start, span int32, n int) error {
	if span <= 0 {
		return nil
	}
	if start < 0 || int(start)+int(span) > n {
		bad := start
		if start >= 0 {
			bad = start + span - 1
		}
		return &fault.BoundsError{Op: op, Lane: -1, Index: bad, Len: n}
	}
	return nil
}

// Gather loads base[idx[i]] into lane i for each active lane. Inactive lanes
// keep old's value (merge semantics, matching AVX512 vpgatherdd {k}).
// Out-of-range indices on active lanes panic: the IR validator guarantees
// kernels never emit them, so a violation is an internal bug worth crashing
// on rather than corrupting results.
func Gather(base []int32, idx Vec, m Mask, w int, old Vec) Vec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[idx[i]]
		}
	}
	return out
}

// GatherF is Gather for float32 arrays.
func GatherF(base []float32, idx Vec, m Mask, w int, old FVec) FVec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[idx[i]]
		}
	}
	return out
}

// Scatter stores lane i of val to base[idx[i]] for each active lane
// (vpscatterdd). If two active lanes target the same index, the
// highest-numbered lane wins, matching AVX512 scatter ordering.
func Scatter(base []int32, idx Vec, val Vec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[idx[i]] = val[i]
		}
	}
}

// ScatterF is Scatter for float32 arrays.
func ScatterF(base []float32, idx Vec, val FVec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[idx[i]] = val[i]
		}
	}
}

// LoadConsecutive loads base[start+i] into lane i for active lanes: the
// standard vector load emitted for unit-stride accesses.
func LoadConsecutive(base []int32, start int32, m Mask, w int, old Vec) Vec {
	out := old
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = base[start+int32(i)]
		}
	}
	return out
}

// StoreConsecutive stores lane i to base[start+i] for active lanes.
func StoreConsecutive(base []int32, start int32, val Vec, m Mask, w int) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[start+int32(i)] = val[i]
		}
	}
}

// PackedStoreActive packs the active lanes of val (in lane order) and stores
// them to consecutive locations starting at base[start]. It returns the
// number of lanes stored. This is ISPC's packed_store_active, the primitive
// behind cooperative worklist pushes.
func PackedStoreActive(base []int32, start int32, val Vec, m Mask, w int) int {
	n := 0
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			base[start+int32(n)] = val[i]
			n++
		}
	}
	return n
}

// GatherChecked is Gather with active-lane bounds validation; out-of-range
// indices return a *fault.BoundsError with lane and index detail instead of
// crashing.
func GatherChecked(base []int32, idx Vec, m Mask, w int, old Vec) (Vec, error) {
	if err := checkLanes("gather", idx, m, w, len(base)); err != nil {
		return old, err
	}
	return Gather(base, idx, m, w, old), nil
}

// GatherFChecked is GatherF with active-lane bounds validation.
func GatherFChecked(base []float32, idx Vec, m Mask, w int, old FVec) (FVec, error) {
	if err := checkLanes("gather", idx, m, w, len(base)); err != nil {
		return old, err
	}
	return GatherF(base, idx, m, w, old), nil
}

// ScatterChecked is Scatter with active-lane bounds validation; no lane is
// stored if any active index is out of range.
func ScatterChecked(base []int32, idx Vec, val Vec, m Mask, w int) error {
	if err := checkLanes("scatter", idx, m, w, len(base)); err != nil {
		return err
	}
	Scatter(base, idx, val, m, w)
	return nil
}

// ScatterFChecked is ScatterF with active-lane bounds validation.
func ScatterFChecked(base []float32, idx Vec, val FVec, m Mask, w int) error {
	if err := checkLanes("scatter", idx, m, w, len(base)); err != nil {
		return err
	}
	ScatterF(base, idx, val, m, w)
	return nil
}

// LoadConsecutiveChecked is LoadConsecutive with bounds validation of every
// active lane's address start+i.
func LoadConsecutiveChecked(base []int32, start int32, m Mask, w int, old Vec) (Vec, error) {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			if a := start + int32(i); a < 0 || int(a) >= len(base) {
				return old, &fault.BoundsError{Op: "vload", Lane: i, Index: a, Len: len(base)}
			}
		}
	}
	return LoadConsecutive(base, start, m, w, old), nil
}

// StoreConsecutiveChecked is StoreConsecutive with bounds validation; no lane
// is stored if any active address is out of range.
func StoreConsecutiveChecked(base []int32, start int32, val Vec, m Mask, w int) error {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			if a := start + int32(i); a < 0 || int(a) >= len(base) {
				return &fault.BoundsError{Op: "vstore", Lane: i, Index: a, Len: len(base)}
			}
		}
	}
	StoreConsecutive(base, start, val, m, w)
	return nil
}

// PackedStoreActiveChecked is PackedStoreActive with validation of the packed
// destination range [start, start+popcount); nothing is stored on violation.
func PackedStoreActiveChecked(base []int32, start int32, val Vec, m Mask, w int) (int, error) {
	if err := checkRange("packed-store", start, int32(m.PopCount()), len(base)); err != nil {
		return 0, err
	}
	return PackedStoreActive(base, start, val, m, w), nil
}

// PackActive compacts the active lanes of val into the low lanes of the
// result and reports how many there are. Used by the nested-parallelism
// fine-grained scheduler to redistribute low-degree work.
func PackActive(val Vec, m Mask, w int) (Vec, int) {
	var out Vec
	n := 0
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[n] = val[i]
			n++
		}
	}
	return out, n
}

// Broadcast returns a vector with every lane holding val's lane src
// (vpbroadcastd on a selected element).
func Broadcast(val Vec, src int) Vec {
	return Splat(val[src])
}

// Extract returns lane i of v (vpextrd / movd).
func Extract(v Vec, i int) int32 { return v[i] }

// Insert returns v with lane i set to x (vpinsrd).
func Insert(v Vec, i int, x int32) Vec {
	v[i] = x
	return v
}
