package vec

import (
	"errors"
	"math/rand"
	"repro/internal/fault"
	"testing"
	"testing/quick"
)

func TestGatherScatterRoundTrip(t *testing.T) {
	base := make([]int32, 64)
	for i := range base {
		base[i] = int32(i * 10)
	}
	idx := FromSlice([]int32{3, 0, 63, 7, 7, 1, 2, 9})
	old := Splat(-1)
	got := Gather(base, idx, FullMask(8), 8, old)
	want := []int32{30, 0, 630, 70, 70, 10, 20, 90}
	for i, x := range want {
		if got[i] != x {
			t.Errorf("Gather lane %d = %d, want %d", i, got[i], x)
		}
	}
	// Inactive lanes keep old value.
	got = Gather(base, idx, Mask(0).Set(2), 8, old)
	if got[0] != -1 || got[2] != 630 {
		t.Errorf("merge-masked gather wrong: %v", got[:4])
	}

	dst := make([]int32, 64)
	Scatter(dst, idx, Splat(7), FullMask(8), 8)
	for _, i := range []int32{3, 0, 63, 7, 1, 2, 9} {
		if dst[i] != 7 {
			t.Errorf("Scatter missed index %d", i)
		}
	}
	if dst[4] != 0 {
		t.Error("Scatter wrote to untargeted index")
	}
}

func TestScatterConflictHighestLaneWins(t *testing.T) {
	dst := make([]int32, 4)
	idx := FromSlice([]int32{2, 2, 2, 2})
	val := FromSlice([]int32{10, 11, 12, 13})
	Scatter(dst, idx, val, FullMask(4), 4)
	if dst[2] != 13 {
		t.Errorf("conflict resolution: got %d, want 13 (highest lane)", dst[2])
	}
}

func TestGatherScatterF(t *testing.T) {
	base := []float32{0.5, 1.5, 2.5, 3.5}
	idx := FromSlice([]int32{2, 0})
	got := GatherF(base, idx, FullMask(2), 2, SplatF(-1))
	if got[0] != 2.5 || got[1] != 0.5 {
		t.Errorf("GatherF = %v", got[:2])
	}
	dst := make([]float32, 4)
	ScatterF(dst, idx, FVec{9.5, 8.5}, FullMask(2), 2)
	if dst[2] != 9.5 || dst[0] != 8.5 {
		t.Errorf("ScatterF = %v", dst)
	}
}

func TestConsecutiveLoadStore(t *testing.T) {
	base := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	v := LoadConsecutive(base, 2, FullMask(4), 4, Splat(-1))
	for i := 0; i < 4; i++ {
		if v[i] != int32(2+i) {
			t.Fatalf("LoadConsecutive lane %d = %d", i, v[i])
		}
	}
	StoreConsecutive(base, 5, Splat(99), Mask(0).Set(0).Set(2), 4)
	if base[5] != 99 || base[6] != 6 || base[7] != 99 || base[8] != 8 {
		t.Errorf("masked StoreConsecutive = %v", base[5:9])
	}
}

func TestPackedStoreActive(t *testing.T) {
	base := make([]int32, 8)
	val := FromSlice([]int32{10, 11, 12, 13, 14, 15, 16, 17})
	m := Mask(0).Set(1).Set(4).Set(7)
	n := PackedStoreActive(base, 2, val, m, 8)
	if n != 3 {
		t.Fatalf("PackedStoreActive count = %d, want 3", n)
	}
	if base[2] != 11 || base[3] != 14 || base[4] != 17 {
		t.Errorf("packed values = %v", base[2:5])
	}
	if base[0] != 0 || base[5] != 0 {
		t.Error("PackedStoreActive wrote outside its range")
	}
}

// Property: PackedStoreActive stores exactly PopCount(m) values in lane
// order, equal to the active lanes of val.
func TestPackedStoreActiveProperty(t *testing.T) {
	f := func(raw [16]int32, mraw uint16) bool {
		val := FromSlice(raw[:])
		m := Mask(mraw)
		base := make([]int32, 20)
		n := PackedStoreActive(base, 0, val, m, 16)
		if n != m.PopCount() {
			return false
		}
		k := 0
		for i := 0; i < 16; i++ {
			if m.Bit(i) {
				if base[k] != raw[i] {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackActive(t *testing.T) {
	val := FromSlice([]int32{10, 11, 12, 13})
	packed, n := PackActive(val, Mask(0).Set(0).Set(3), 4)
	if n != 2 || packed[0] != 10 || packed[1] != 13 {
		t.Errorf("PackActive = %v n=%d", packed[:2], n)
	}
}

func TestBroadcastExtractInsert(t *testing.T) {
	v := FromSlice([]int32{5, 6, 7, 8})
	b := Broadcast(v, 2)
	if b[0] != 7 || b[31] != 7 {
		t.Errorf("Broadcast = %v", b[:4])
	}
	if Extract(v, 3) != 8 {
		t.Error("Extract wrong")
	}
	v2 := Insert(v, 1, 42)
	if v2[1] != 42 || v[1] != 6 {
		t.Error("Insert must copy")
	}
}

func TestGatherPanicsOnActiveOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range active lane")
		}
	}()
	base := make([]int32, 4)
	Gather(base, Splat(100), FullMask(4), 4, Vec{})
}

func TestGatherIgnoresInactiveOutOfRange(t *testing.T) {
	base := make([]int32, 4)
	idx := FromSlice([]int32{1, 9999, 2, -5})
	got := Gather(base, idx, Mask(0).Set(0).Set(2), 4, Splat(-7))
	if got[1] != -7 || got[3] != -7 {
		t.Errorf("inactive lanes disturbed: %v", got[:4])
	}
}

func BenchmarkGather16(b *testing.B) {
	base := make([]int32, 1<<20)
	r := rand.New(rand.NewSource(3))
	idx := randVec(r, 16)
	for i := 0; i < 16; i++ {
		idx[i] = int32(uint32(idx[i]) % (1 << 20))
	}
	m := FullMask(16)
	var sink Vec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Gather(base, idx, m, 16, sink)
	}
	_ = sink
}

func BenchmarkBinAdd16(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x, y := randVec(r, 16), randVec(r, 16)
	m := FullMask(16)
	var sink Vec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Bin(OpAdd, x, y, m, 16)
	}
	_ = sink
}

func TestCheckedOpsAcceptValid(t *testing.T) {
	base := []int32{10, 20, 30, 40}
	fbase := []float32{1, 2, 3, 4}
	idx := FromSlice([]int32{3, 1, 0, 2})
	if v, err := GatherChecked(base, idx, FullMask(4), 4, Splat(-1)); err != nil || v[0] != 40 {
		t.Errorf("GatherChecked = %v, %v", v[:4], err)
	}
	if v, err := GatherFChecked(fbase, idx, FullMask(4), 4, SplatF(-1)); err != nil || v[0] != 4 {
		t.Errorf("GatherFChecked = %v, %v", v[:4], err)
	}
	if err := ScatterChecked(base, idx, Splat(9), FullMask(4), 4); err != nil {
		t.Errorf("ScatterChecked: %v", err)
	}
	if err := ScatterFChecked(fbase, idx, SplatF(9), FullMask(4), 4); err != nil {
		t.Errorf("ScatterFChecked: %v", err)
	}
	if v, err := LoadConsecutiveChecked(base, 1, FullMask(3), 3, Splat(-1)); err != nil || v[0] != 9 {
		t.Errorf("LoadConsecutiveChecked = %v, %v", v[:3], err)
	}
	if err := StoreConsecutiveChecked(base, 0, Splat(5), FullMask(4), 4); err != nil {
		t.Errorf("StoreConsecutiveChecked: %v", err)
	}
	if n, err := PackedStoreActiveChecked(base, 1, Splat(8), Mask(0b0101), 4); err != nil || n != 2 {
		t.Errorf("PackedStoreActiveChecked = %d, %v", n, err)
	}
}

func TestCheckedOpsRejectOutOfRange(t *testing.T) {
	base := []int32{1, 2, 3, 4}
	fbase := []float32{1, 2, 3, 4}
	bad := FromSlice([]int32{0, 1, 99, 2}) // lane 2 out of range
	neg := FromSlice([]int32{0, -5, 1, 2}) // lane 1 negative

	check := func(name string, err error, wantLane int, wantIdx int32) {
		t.Helper()
		var be *fault.BoundsError
		if !errors.As(err, &be) {
			t.Fatalf("%s: error %v is not a BoundsError", name, err)
		}
		if !errors.Is(err, fault.ErrOutOfBounds) {
			t.Errorf("%s: does not match ErrOutOfBounds", name)
		}
		if be.Lane != wantLane || be.Index != wantIdx || be.Len != 4 {
			t.Errorf("%s: detail lane=%d idx=%d len=%d, want lane=%d idx=%d len=4",
				name, be.Lane, be.Index, be.Len, wantLane, wantIdx)
		}
	}

	_, err := GatherChecked(base, bad, FullMask(4), 4, Vec{})
	check("gather", err, 2, 99)
	_, err = GatherFChecked(fbase, neg, FullMask(4), 4, FVec{})
	check("gatherF", err, 1, -5)
	check("scatter", ScatterChecked(base, bad, Splat(0), FullMask(4), 4), 2, 99)
	check("scatterF", ScatterFChecked(fbase, neg, SplatF(0), FullMask(4), 4), 1, -5)
	_, err = LoadConsecutiveChecked(base, 2, FullMask(4), 4, Vec{})
	check("vload", err, 2, 4)
	check("vstore", StoreConsecutiveChecked(base, -2, Splat(0), FullMask(4), 4), 0, -2)
	_, err = PackedStoreActiveChecked(base, 2, Splat(0), FullMask(4), 4)
	if !errors.Is(err, fault.ErrOutOfBounds) {
		t.Errorf("packed-store: %v", err)
	}

	// Inactive out-of-range lanes are ignored, matching masked hardware
	// semantics.
	if _, err := GatherChecked(base, bad, Mask(0b0011), 4, Vec{}); err != nil {
		t.Errorf("masked-off bad lane rejected: %v", err)
	}
	// Scatter rejection must not partially store.
	cp := []int32{1, 2, 3, 4}
	ScatterChecked(cp, bad, Splat(77), FullMask(4), 4)
	for i, v := range []int32{1, 2, 3, 4} {
		if cp[i] != v {
			t.Error("failed scatter stored lanes before the violation")
		}
	}
}
