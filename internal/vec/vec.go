// Package vec implements the software vector ISA that underpins the EGACS
// SPMD execution engine. It models short-vector registers of up to MaxWidth
// 32-bit lanes together with lane masks, the gather/scatter and packed-store
// primitives that graph workloads depend on, and the per-target lowering
// rules (AVX, AVX2, AVX512, GPU warp) used to account dynamic instructions.
//
// All operations are functionally exact: results are computed lane by lane
// exactly as the corresponding hardware instruction would. Cost accounting is
// separated from execution — see Target.Lower — so the same operation stream
// can be costed for different instruction sets.
package vec

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxWidth is the widest vector supported: one GPU warp (32 lanes).
// CPU targets use logical widths 4, 8 and 16.
const MaxWidth = 32

// Vec is a vector register of MaxWidth int32 lanes. The active logical width
// is carried by the execution context, not by the value; lanes at and above
// the logical width are ignored by every operation.
type Vec [MaxWidth]int32

// FVec is a vector register of MaxWidth float32 lanes.
type FVec [MaxWidth]float32

// Mask is a lane predicate: bit i set means lane i is active.
type Mask uint32

// FullMask returns the mask with the first w lanes active.
func FullMask(w int) Mask {
	if w >= 32 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(w) - 1
}

// Bit reports whether lane i is active in m.
func (m Mask) Bit(i int) bool { return m&(1<<uint(i)) != 0 }

// Set returns m with lane i activated.
func (m Mask) Set(i int) Mask { return m | 1<<uint(i) }

// Clear returns m with lane i deactivated.
func (m Mask) Clear(i int) Mask { return m &^ (1 << uint(i)) }

// PopCount returns the number of active lanes.
func (m Mask) PopCount() int {
	// math/bits lowers to a single POPCNT on amd64/arm64.
	return bits.OnesCount32(uint32(m))
}

// Any reports whether any lane is active.
func (m Mask) Any() bool { return m != 0 }

// None reports whether no lane is active.
func (m Mask) None() bool { return m == 0 }

// All reports whether all of the first w lanes are active.
func (m Mask) All(w int) bool { return m&FullMask(w) == FullMask(w) }

// String renders the mask as a lane diagram, lowest lane first, e.g. "1101".
// Trailing inactive lanes are trimmed, but at least one lane is always
// rendered, so the zero mask prints "0" rather than an empty string.
func (m Mask) String() string {
	var b strings.Builder
	for i := 0; i < 32; i++ {
		if m.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	s := strings.TrimRight(b.String(), "0")
	if s == "" {
		s = "0"
	}
	return s
}

// Splat returns a vector with all lanes set to x.
func Splat(x int32) Vec {
	var v Vec
	for i := range v {
		v[i] = x
	}
	return v
}

// SplatF returns a float vector with all lanes set to x.
func SplatF(x float32) FVec {
	var v FVec
	for i := range v {
		v[i] = x
	}
	return v
}

// Iota returns the vector {0, 1, 2, ...}: the programIndex builtin.
func Iota() Vec {
	var v Vec
	for i := range v {
		v[i] = int32(i)
	}
	return v
}

// FromSlice builds a vector from up to MaxWidth values; remaining lanes are
// zero.
func FromSlice(xs []int32) Vec {
	var v Vec
	copy(v[:], xs)
	return v
}

// Slice returns the first w lanes of v as a fresh slice.
func (v Vec) Slice(w int) []int32 {
	out := make([]int32, w)
	copy(out, v[:w])
	return out
}

// SliceF returns the first w lanes of v as a fresh slice.
func (v FVec) SliceF(w int) []float32 {
	out := make([]float32, w)
	copy(out, v[:w])
	return out
}

// String renders the first 8 lanes, for debugging.
func (v Vec) String() string {
	return fmt.Sprintf("vec%v", v[:8])
}

// ToF converts integer lanes to float lanes (cvtdq2ps).
func (v Vec) ToF(w int) FVec {
	var out FVec
	for i := 0; i < w; i++ {
		out[i] = float32(v[i])
	}
	return out
}

// ToI truncates float lanes to integer lanes (cvttps2dq).
func (v FVec) ToI(w int) Vec {
	var out Vec
	for i := 0; i < w; i++ {
		out[i] = int32(v[i])
	}
	return out
}
