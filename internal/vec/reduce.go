package vec

// Cross-lane reductions and scans. These correspond to ISPC's reduce_add /
// reduce_min / reduce_max library functions and the exclusive prefix sum used
// by the nested-parallelism scheduler.

// ReduceAdd sums the active lanes.
func ReduceAdd(v Vec, m Mask, w int) int32 {
	var s int32
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			s += v[i]
		}
	}
	return s
}

// ReduceAddF sums the active float lanes.
func ReduceAddF(v FVec, m Mask, w int) float32 {
	var s float32
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			s += v[i]
		}
	}
	return s
}

// ReduceMin returns the minimum over active lanes, or def if none are active.
func ReduceMin(v Vec, m Mask, w int, def int32) int32 {
	out := def
	seen := false
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			if !seen || v[i] < out {
				out = v[i]
				seen = true
			}
		}
	}
	return out
}

// ReduceMax returns the maximum over active lanes, or def if none are active.
func ReduceMax(v Vec, m Mask, w int, def int32) int32 {
	out := def
	seen := false
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			if !seen || v[i] > out {
				out = v[i]
				seen = true
			}
		}
	}
	return out
}

// ExclusiveScanAdd computes the exclusive prefix sum of the active lanes in
// lane order, writing results only to active lanes (inactive lanes get 0),
// and returns the total. This is the inspector step of the fine-grained
// nested-parallelism scheduler: given per-lane work counts it yields each
// lane's starting offset in the packed work array.
func ExclusiveScanAdd(v Vec, m Mask, w int) (Vec, int32) {
	var out Vec
	var run int32
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = run
			run += v[i]
		}
	}
	return out, run
}

// FirstActive returns the index of the lowest active lane, or -1 if none.
func FirstActive(m Mask, w int) int {
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			return i
		}
	}
	return -1
}

// ReduceEqual reports whether all active lanes hold the same value, and
// returns that value (0 and false when no lanes are active or they differ).
func ReduceEqual(v Vec, m Mask, w int) (int32, bool) {
	first := FirstActive(m, w)
	if first < 0 {
		return 0, false
	}
	x := v[first]
	for i := first + 1; i < w; i++ {
		if m.Bit(i) && v[i] != x {
			return 0, false
		}
	}
	return x, true
}
