package vec

// BinOp identifies a two-operand vector operation.
type BinOp uint8

// Binary operations. The arithmetic set matches what the EGACS kernels need:
// 32-bit integer lanes with wrapping semantics, as on AVX.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // division by zero yields 0 in that lane (kernels guard it; keep total)
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right, as ISPC int32 >>
	OpMin
	OpMax
	// Comparisons produce 0/1 lanes (and a Mask via CmpMask).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var binOpNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpMin: "min", OpMax: "max",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "binop?"
}

// IsCompare reports whether op is one of the comparison operations.
func (op BinOp) IsCompare() bool { return op >= OpEq }

func applyBin(op BinOp, a, b int32) int32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (uint32(b) & 31)
	case OpShr:
		return a >> (uint32(b) & 31)
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpEq:
		return b2i(a == b)
	case OpNe:
		return b2i(a != b)
	case OpLt:
		return b2i(a < b)
	case OpLe:
		return b2i(a <= b)
	case OpGt:
		return b2i(a > b)
	case OpGe:
		return b2i(a >= b)
	}
	panic("vec: unknown binary op")
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Bin applies op lane-wise under mask m: inactive lanes keep a's value
// (merge-masking, as AVX512 {k} merge semantics).
func Bin(op BinOp, a, b Vec, m Mask, w int) Vec {
	out := a
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = applyBin(op, a[i], b[i])
		}
	}
	return out
}

// CmpMask applies comparison op lane-wise under mask m and returns the lanes
// (within m) for which it holds.
func CmpMask(op BinOp, a, b Vec, m Mask, w int) Mask {
	var out Mask
	for i := 0; i < w; i++ {
		if m.Bit(i) && applyBin(op, a[i], b[i]) != 0 {
			out = out.Set(i)
		}
	}
	return out
}

// Blend selects t's lanes where m is set, f's lanes elsewhere (vpblendvb /
// masked move).
func Blend(m Mask, t, f Vec, w int) Vec {
	out := f
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = t[i]
		}
	}
	return out
}

// BlendF is Blend for float vectors.
func BlendF(m Mask, t, f FVec, w int) FVec {
	out := f
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = t[i]
		}
	}
	return out
}

// FBinOp identifies a two-operand float vector operation.
type FBinOp uint8

// Float binary operations used by PageRank and SSSP heuristics.
const (
	FAdd FBinOp = iota
	FSub
	FMul
	FDiv
	FMin
	FMax
	// Comparisons.
	FLt
	FLe
	FGt
	FGe
	FEq
)

var fBinOpNames = [...]string{
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FMin: "fmin", FMax: "fmax",
	FLt: "flt", FLe: "fle", FGt: "fgt", FGe: "fge", FEq: "feq",
}

func (op FBinOp) String() string {
	if int(op) < len(fBinOpNames) {
		return fBinOpNames[op]
	}
	return "fbinop?"
}

// IsCompare reports whether op is one of the float comparison operations.
func (op FBinOp) IsCompare() bool { return op >= FLt }

func applyFBin(op FBinOp, a, b float32) float32 {
	switch op {
	case FAdd:
		return a + b
	case FSub:
		return a - b
	case FMul:
		return a * b
	case FDiv:
		return a / b
	case FMin:
		if a < b {
			return a
		}
		return b
	case FMax:
		if a > b {
			return a
		}
		return b
	}
	panic("vec: unknown float binary op")
}

// FBin applies op lane-wise under mask m with merge-masking.
func FBin(op FBinOp, a, b FVec, m Mask, w int) FVec {
	out := a
	for i := 0; i < w; i++ {
		if m.Bit(i) {
			out[i] = applyFBin(op, a[i], b[i])
		}
	}
	return out
}

// FCmpMask applies float comparison op under mask m.
func FCmpMask(op FBinOp, a, b FVec, m Mask, w int) Mask {
	var out Mask
	for i := 0; i < w; i++ {
		if !m.Bit(i) {
			continue
		}
		var hold bool
		switch op {
		case FLt:
			hold = a[i] < b[i]
		case FLe:
			hold = a[i] <= b[i]
		case FGt:
			hold = a[i] > b[i]
		case FGe:
			hold = a[i] >= b[i]
		case FEq:
			hold = a[i] == b[i]
		default:
			panic("vec: FCmpMask on non-comparison op")
		}
		if hold {
			out = out.Set(i)
		}
	}
	return out
}

// Abs returns lane-wise absolute value under mask.
func Abs(a Vec, m Mask, w int) Vec {
	out := a
	for i := 0; i < w; i++ {
		if m.Bit(i) && out[i] < 0 {
			out[i] = -out[i]
		}
	}
	return out
}

// FAbs returns lane-wise float absolute value under mask.
func FAbs(a FVec, m Mask, w int) FVec {
	out := a
	for i := 0; i < w; i++ {
		if m.Bit(i) && out[i] < 0 {
			out[i] = -out[i]
		}
	}
	return out
}
