package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	cases := []struct {
		w    int
		want Mask
	}{
		{0, 0}, {1, 1}, {4, 0xf}, {8, 0xff}, {16, 0xffff}, {32, 0xffffffff},
	}
	for _, c := range cases {
		if got := FullMask(c.w); got != c.want {
			t.Errorf("FullMask(%d) = %x, want %x", c.w, got, c.want)
		}
	}
}

func TestMaskBits(t *testing.T) {
	var m Mask
	m = m.Set(3).Set(7).Set(31)
	if !m.Bit(3) || !m.Bit(7) || !m.Bit(31) {
		t.Fatalf("set bits not readable: %v", m)
	}
	if m.Bit(0) || m.Bit(4) {
		t.Fatalf("unset bits read as set: %v", m)
	}
	m = m.Clear(7)
	if m.Bit(7) {
		t.Fatalf("cleared bit still set")
	}
	if got := m.PopCount(); got != 2 {
		t.Fatalf("PopCount = %d, want 2", got)
	}
}

func TestMaskPopCountMatchesNaive(t *testing.T) {
	f := func(x uint32) bool {
		m := Mask(x)
		n := 0
		for i := 0; i < 32; i++ {
			if m.Bit(i) {
				n++
			}
		}
		return n == m.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskAnyNoneAll(t *testing.T) {
	if Mask(0).Any() {
		t.Error("zero mask reports Any")
	}
	if !Mask(0).None() {
		t.Error("zero mask not None")
	}
	if !FullMask(8).All(8) {
		t.Error("full 8-mask not All(8)")
	}
	if FullMask(8).Clear(3).All(8) {
		t.Error("mask with hole reports All")
	}
	if !FullMask(16).All(8) {
		t.Error("wider mask should satisfy All(8)")
	}
}

func TestSplatIota(t *testing.T) {
	s := Splat(42)
	for i := 0; i < MaxWidth; i++ {
		if s[i] != 42 {
			t.Fatalf("Splat lane %d = %d", i, s[i])
		}
	}
	io := Iota()
	for i := 0; i < MaxWidth; i++ {
		if io[i] != int32(i) {
			t.Fatalf("Iota lane %d = %d", i, io[i])
		}
	}
}

func TestFromSliceAndSlice(t *testing.T) {
	v := FromSlice([]int32{5, 6, 7})
	if v[0] != 5 || v[1] != 6 || v[2] != 7 || v[3] != 0 {
		t.Fatalf("FromSlice = %v", v[:4])
	}
	s := v.Slice(3)
	if len(s) != 3 || s[2] != 7 {
		t.Fatalf("Slice = %v", s)
	}
	// Returned slice must be a copy.
	s[0] = 99
	if v[0] != 5 {
		t.Fatal("Slice aliases vector storage")
	}
}

func TestConvertRoundTrip(t *testing.T) {
	f := func(raw [8]int16) bool {
		var v Vec
		for i, x := range raw {
			v[i] = int32(x)
		}
		back := v.ToF(8).ToI(8)
		for i := 0; i < 8; i++ {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskString(t *testing.T) {
	tests := []struct {
		name string
		m    Mask
		want string
	}{
		{"zero", Mask(0), "0"},
		{"lane0", Mask(0).Set(0), "1"},
		{"lanes0and2", Mask(0).Set(0).Set(2), "101"},
		{"lane3only", Mask(0).Set(3), "0001"},
		{"full4", FullMask(4), "1111"},
		{"high-lane", Mask(0).Set(31), "00000000000000000000000000000001"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%s: String = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func randVec(r *rand.Rand, w int) Vec {
	var v Vec
	for i := 0; i < w; i++ {
		v[i] = int32(r.Uint32())
	}
	return v
}

func randMask(r *rand.Rand, w int) Mask {
	return Mask(r.Uint32()) & FullMask(w)
}
