// Package graph provides the compressed-sparse-row graph substrate shared by
// the EGACS kernels and the baseline frameworks, together with generators for
// the three input families the paper evaluates (road network, RMAT
// scale-free, uniform random) and DIMACS/edge-list I/O.
//
// Following the paper, node and edge indices are 32-bit.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/fault"
)

// MaxNodes bounds the node count accepted from external inputs. It keeps a
// short corrupt header from demanding a multi-gigabyte allocation and leaves
// headroom below the int32 index limit.
const MaxNodes = 1 << 28

// corruptf builds a structural-integrity error wrapping fault.ErrCorruptGraph,
// so readers and validators surface through the typed taxonomy.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, fault.ErrCorruptGraph)...)
}

// CSR is a directed graph in compressed sparse row form. Edges of node n are
// EdgeDst[RowPtr[n]:RowPtr[n+1]], with optional parallel weights.
type CSR struct {
	Name    string
	RowPtr  []int32 // length NumNodes()+1
	EdgeDst []int32 // length NumEdges()
	Weight  []int32 // nil for unweighted graphs, else parallel to EdgeDst
}

// NumNodes returns the node count.
func (g *CSR) NumNodes() int32 { return int32(len(g.RowPtr) - 1) }

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() int32 { return int32(len(g.EdgeDst)) }

// Degree returns the out-degree of node n.
func (g *CSR) Degree(n int32) int32 { return g.RowPtr[n+1] - g.RowPtr[n] }

// Neighbors returns the destination slice for node n (aliasing g's storage).
func (g *CSR) Neighbors(n int32) []int32 {
	return g.EdgeDst[g.RowPtr[n]:g.RowPtr[n+1]]
}

// EdgeWeight returns the weight of edge index e, or 1 for unweighted graphs.
func (g *CSR) EdgeWeight(e int32) int32 {
	if g.Weight == nil {
		return 1
	}
	return g.Weight[e]
}

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.Weight != nil }

// FootprintBytes returns the in-memory size of the CSR arrays, used by the
// virtual-memory experiments.
func (g *CSR) FootprintBytes() int64 {
	n := int64(len(g.RowPtr)+len(g.EdgeDst)) * 4
	if g.Weight != nil {
		n += int64(len(g.Weight)) * 4
	}
	return n
}

func (g *CSR) String() string {
	return fmt.Sprintf("%s: %d nodes, %d edges, weighted=%v",
		g.Name, g.NumNodes(), g.NumEdges(), g.Weighted())
}

// Edge is a source/destination/weight triple used during construction.
type Edge struct {
	Src, Dst, W int32
}

// FromEdges builds a CSR over numNodes nodes from an edge list. Edges are
// grouped by source; relative order within a source is preserved. If
// weighted is false the weight channel is dropped.
func FromEdges(numNodes int32, edges []Edge, weighted bool) (*CSR, error) {
	if numNodes < 0 || numNodes > MaxNodes {
		return nil, corruptf("graph: node count %d outside [0,%d]", numNodes, MaxNodes)
	}
	rowPtr := make([]int32, numNodes+1)
	for _, e := range edges {
		if e.Src < 0 || e.Src >= numNodes || e.Dst < 0 || e.Dst >= numNodes {
			return nil, corruptf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, numNodes)
		}
		rowPtr[e.Src+1]++
	}
	for i := int32(0); i < numNodes; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	dst := make([]int32, len(edges))
	var w []int32
	if weighted {
		w = make([]int32, len(edges))
	}
	cursor := make([]int32, numNodes)
	copy(cursor, rowPtr[:numNodes])
	for _, e := range edges {
		p := cursor[e.Src]
		cursor[e.Src]++
		dst[p] = e.Dst
		if weighted {
			w[p] = e.W
		}
	}
	return &CSR{RowPtr: rowPtr, EdgeDst: dst, Weight: w}, nil
}

// Edges materializes the edge list of g.
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for n := int32(0); n < g.NumNodes(); n++ {
		for e := g.RowPtr[n]; e < g.RowPtr[n+1]; e++ {
			out = append(out, Edge{n, g.EdgeDst[e], g.EdgeWeight(e)})
		}
	}
	return out
}

// Transpose returns the graph with all edges reversed (used by pull-style
// kernels such as PageRank and by direction-optimizing BFS).
func (g *CSR) Transpose() *CSR {
	edges := make([]Edge, 0, g.NumEdges())
	for n := int32(0); n < g.NumNodes(); n++ {
		for e := g.RowPtr[n]; e < g.RowPtr[n+1]; e++ {
			edges = append(edges, Edge{g.EdgeDst[e], n, g.EdgeWeight(e)})
		}
	}
	t, err := FromEdges(g.NumNodes(), edges, g.Weighted())
	if err != nil {
		panic("graph: transpose of valid graph failed: " + err.Error())
	}
	t.Name = g.Name + "-T"
	return t
}

// Symmetrize returns the graph with every edge mirrored (deduplicated), as
// required by CC, MIS, TRI and MST which treat inputs as undirected.
func (g *CSR) Symmetrize() *CSR {
	type key struct{ a, b int32 }
	seen := make(map[key]int32, g.NumEdges()*2)
	edges := make([]Edge, 0, g.NumEdges()*2)
	add := func(s, d, w int32) {
		if s == d {
			return // drop self loops; they carry no information for these kernels
		}
		k := key{s, d}
		if prev, ok := seen[k]; ok {
			if w < prev {
				seen[k] = w
			}
			return
		}
		seen[k] = w
		edges = append(edges, Edge{s, d, w})
	}
	for n := int32(0); n < g.NumNodes(); n++ {
		for e := g.RowPtr[n]; e < g.RowPtr[n+1]; e++ {
			d := g.EdgeDst[e]
			w := g.EdgeWeight(e)
			add(n, d, w)
			add(d, n, w)
		}
	}
	// Re-apply deduplicated minimum weights.
	for i := range edges {
		edges[i].W = seen[key{edges[i].Src, edges[i].Dst}]
	}
	s, err := FromEdges(g.NumNodes(), edges, g.Weighted())
	if err != nil {
		panic("graph: symmetrize of valid graph failed: " + err.Error())
	}
	s.Name = g.Name + "-sym"
	s.SortAdjacency()
	return s
}

// SortAdjacency sorts each node's neighbor list ascending (with weights
// permuted alongside). Triangle counting's merge-based set intersection
// requires sorted adjacency.
func (g *CSR) SortAdjacency() {
	for n := int32(0); n < g.NumNodes(); n++ {
		lo, hi := g.RowPtr[n], g.RowPtr[n+1]
		if g.Weight == nil {
			s := g.EdgeDst[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			continue
		}
		idx := make([]int32, hi-lo)
		for i := range idx {
			idx[i] = lo + int32(i)
		}
		sort.Slice(idx, func(i, j int) bool { return g.EdgeDst[idx[i]] < g.EdgeDst[idx[j]] })
		d := make([]int32, hi-lo)
		w := make([]int32, hi-lo)
		for i, e := range idx {
			d[i] = g.EdgeDst[e]
			w[i] = g.Weight[e]
		}
		copy(g.EdgeDst[lo:hi], d)
		copy(g.Weight[lo:hi], w)
	}
}

// Validate checks CSR structural invariants. Violations wrap
// fault.ErrCorruptGraph.
func (g *CSR) Validate() error {
	if len(g.RowPtr) == 0 {
		return corruptf("graph: empty RowPtr")
	}
	if g.RowPtr[0] != 0 {
		return corruptf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	n := g.NumNodes()
	for i := int32(0); i < n; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return corruptf("graph: RowPtr not monotone at node %d", i)
		}
	}
	if g.RowPtr[n] != int32(len(g.EdgeDst)) {
		return corruptf("graph: RowPtr[n]=%d != len(EdgeDst)=%d", g.RowPtr[n], len(g.EdgeDst))
	}
	for e, d := range g.EdgeDst {
		if d < 0 || d >= n {
			return corruptf("graph: edge %d dst %d out of range", e, d)
		}
	}
	if g.Weight != nil && len(g.Weight) != len(g.EdgeDst) {
		return corruptf("graph: weight length %d != edge length %d", len(g.Weight), len(g.EdgeDst))
	}
	return nil
}

// MaxDegreeNode returns the node with the largest out-degree: the standard
// benchmark source for BFS/SSSP runs (source 0 may be isolated in scrambled
// RMAT graphs).
func (g *CSR) MaxDegreeNode() int32 {
	var best, bestDeg int32
	for n := int32(0); n < g.NumNodes(); n++ {
		if d := g.Degree(n); d > bestDeg {
			best, bestDeg = n, d
		}
	}
	return best
}

// MaxDegree returns the largest out-degree.
func (g *CSR) MaxDegree() int32 {
	var m int32
	for n := int32(0); n < g.NumNodes(); n++ {
		if d := g.Degree(n); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the mean out-degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumNodes())
}
