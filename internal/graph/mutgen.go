package graph

import "fmt"

// MutGenOptions configure the reproducible mutation-stream generator shared
// by graphgen -mutations, the mutate benchmark and the chaos harnesses —
// one generator, so every consumer replays the same stream for a given
// (seed, options) pair.
type MutGenOptions struct {
	// Count is the number of ops to emit.
	Count int
	// DeleteFrac in [0,1] is the fraction of ops that delete. Deletes pick
	// an existing edge of the (evolving) graph when one exists, so most are
	// effective rather than no-ops.
	DeleteFrac float64
	// Skew in [0,1) biases source-node choice toward low node ids with a
	// power-law-ish rejection scheme; 0 is uniform. Skewed streams model
	// hot-vertex update patterns (the hard case for compaction: the same
	// rows churn repeatedly).
	Skew float64
	// MaxWeight bounds inserted edge weights for weighted graphs (≥1;
	// default 1).
	MaxWeight int32
}

// GenMutations emits a deterministic mutation stream against g: the same
// seed, options and graph always produce the same ops. The stream is
// internally consistent — deletes target edges that exist at that point in
// the stream (base edges or earlier inserts) when any are available.
func GenMutations(g *CSR, seed uint64, opts MutGenOptions) ([]MutOp, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("graph: mutation generator needs a non-empty graph")
	}
	if opts.Count < 0 || opts.DeleteFrac < 0 || opts.DeleteFrac > 1 || opts.Skew < 0 || opts.Skew >= 1 {
		return nil, fmt.Errorf("graph: bad mutation-generator options %+v", opts)
	}
	maxW := opts.MaxWeight
	if maxW < 1 {
		maxW = 1
	}
	// Track the evolving graph through a Delta so deletes can target live
	// edges; the overlay is discarded, only the op list survives.
	d := NewDelta(g, 0)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	unit := func() float64 { return float64(next()>>11) / (1 << 53) }
	pick := func() int32 {
		v := int32(next() % uint64(n))
		if opts.Skew <= 0 {
			return v
		}
		// Rejection toward low ids: resample while a skew-weighted coin
		// keeps firing, halving the expected id each acceptance round.
		for tries := 0; tries < 8 && unit() < opts.Skew; tries++ {
			w := int32(next() % uint64(n))
			if w < v {
				v = w
			}
		}
		return v
	}
	ops := make([]MutOp, 0, opts.Count)
	seq := uint64(0)
	for len(ops) < opts.Count {
		var op MutOp
		if unit() < opts.DeleteFrac {
			// Delete a live edge: sample sources until one has degree > 0.
			src := int32(-1)
			for tries := 0; tries < 32; tries++ {
				c := pick()
				if d.Degree(c) > 0 {
					src = c
					break
				}
			}
			if src < 0 {
				// Graph (locally) drained; fall through to an insert.
				op = MutOp{Op: OpInsert, Src: pick(), Dst: pick(), W: 1 + int32(next()%uint64(maxW))}
			} else {
				nbrs := d.Neighbors(src)
				op = MutOp{Op: OpDelete, Src: src, Dst: nbrs[int(next()%uint64(len(nbrs)))], W: 1}
			}
		} else {
			op = MutOp{Op: OpInsert, Src: pick(), Dst: pick(), W: 1 + int32(next()%uint64(maxW))}
		}
		seq++
		if err := d.Apply(Batch{Seq: seq, Ops: []MutOp{op}}); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}
