package graph

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func storeBatches(t *testing.T, g *CSR, n int) [][]MutOp {
	t.Helper()
	ops, err := GenMutations(g, 3, MutGenOptions{Count: n * 4, DeleteFrac: 0.3, MaxWeight: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]MutOp, n)
	for i := range out {
		out[i] = ops[i*4 : (i+1)*4]
	}
	return out
}

func TestMutStoreCreateAppendReopen(t *testing.T) {
	dir := t.TempDir()
	g := Random(64, 256, 8, 17)
	s, err := CreateMutStore(filepath.Join(dir, "store"), g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches := storeBatches(t, g, 10)
	for _, ops := range batches {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Appends != 10 || st.LastSeq != 10 || st.Epoch != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay must reconstruct the identical overlay.
	s2, err := OpenMutStore(filepath.Join(dir, "store"), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().Replayed != 10 {
		t.Fatalf("replayed %d, want 10", s2.Stats().Replayed)
	}
	got, err := s2.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(got) != Hash(want) {
		t.Fatal("reopened store diverged from the acked state")
	}
	// And it keeps accepting appends with continuous sequences.
	b, err := s2.Append([]MutOp{{Op: OpInsert, Src: 0, Dst: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 11 {
		t.Fatalf("resumed seq %d, want 11", b.Seq)
	}
}

func TestMutStoreCompactPersistsAndPrunes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(64, 256, 8, 18)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches := storeBatches(t, g, 8)
	for _, ops := range batches[:5] {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	folded, epoch, err := s.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch %d, want 2", epoch)
	}
	if s.Delta().Base() != folded || s.Delta().Pending() != 0 {
		t.Fatal("compaction did not reset the overlay")
	}
	// The old segment (fully covered) must be pruned, a fresh one active.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].seq != 6 {
		t.Fatalf("segments after compact: %+v, want one starting at 6", segs)
	}
	for _, ops := range batches[5:] {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenMutStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Epoch != 2 || st.LastSeq != 8 || st.Replayed != 3 {
		t.Fatalf("recovered stats %+v", st)
	}
	got, err := s2.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(got) != Hash(want) {
		t.Fatal("post-compaction recovery diverged")
	}
}

func TestMutStoreGateRejectionRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(32, 128, 4, 31)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range storeBatches(t, g, 4) {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	gateErr := errors.New("rejected by gate")
	if _, _, err := s.Compact(func(*CSR) error { return gateErr }); !errors.Is(err, gateErr) {
		t.Fatalf("gate error not surfaced: %v", err)
	}
	// Nothing persisted, delta still pending, epoch unchanged.
	st := s.Stats()
	if st.Epoch != 1 || st.Pending != 4 || st.LastSeq != 4 {
		t.Fatalf("gate rejection mutated the store: %+v", st)
	}
	want, err := s.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenMutStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(got) != Hash(want) {
		t.Fatal("WAL lost batches across a rejected compaction")
	}
	// A later compaction with a passing gate proceeds normally.
	if _, epoch, err := s2.Compact(nil); err != nil || epoch != 2 {
		t.Fatalf("recovering compaction: epoch=%d err=%v", epoch, err)
	}
}

func TestMutStoreGroupCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(32, 128, 4, 19)
	s, err := CreateMutStore(dir, g, StoreOptions{FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, ops := range storeBatches(t, g, 8) {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Syncs != 2 {
		t.Fatalf("syncs = %d under FsyncEvery=4 with 8 appends, want 2", st.Syncs)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMutStoreTornTailRepairedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(32, 128, 4, 20)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches := storeBatches(t, g, 6)
	for _, ops := range batches {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Tear the final record: a crash mid-append.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenMutStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("torn tail must repair, got %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Truncated != 1 || st.Replayed != 5 || st.LastSeq != 5 {
		t.Fatalf("repair stats %+v", st)
	}
	// The file itself was truncated back to the intact prefix.
	fixed, _ := os.ReadFile(path)
	if rep, err := ReplayDeltaLog(fixed, g.NumNodes(), 0); err != nil || rep.Truncated {
		t.Fatalf("repaired segment still dirty: err=%v", err)
	}
	// The unacked batch is gone; the next append reuses its sequence.
	b, err := s2.Append(batches[5])
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 6 {
		t.Fatalf("post-repair seq %d, want 6", b.Seq)
	}
}

func TestMutStoreMidLogCorruptionTyped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(32, 128, 4, 22)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range storeBatches(t, g, 6) {
		if _, err := s.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	data[len(data)/3] ^= 0x40 // damage a non-final record
	os.WriteFile(path, data, 0o644)
	if _, err := OpenMutStore(dir, StoreOptions{}); !errors.Is(err, fault.ErrWALCorrupt) {
		t.Fatalf("mid-log damage: err = %v, want ErrWALCorrupt", err)
	}
}

func TestMutStoreSnapshotCorruptionTyped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(16, 64, 1, 23)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	data[9] ^= 1 // damage the epoch under the header checksum
	os.WriteFile(path, data, 0o644)
	if _, err := OpenMutStore(dir, StoreOptions{}); !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("snapshot damage: err = %v, want ErrCorruptGraph", err)
	}
}

func TestMutStoreRejectsNonEmptyDir(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "junk"), []byte("x"), 0o644)
	if _, err := CreateMutStore(dir, Random(8, 16, 1, 1), StoreOptions{}); err == nil {
		t.Fatal("CreateMutStore over a non-empty directory succeeded")
	}
}

func TestMutStoreRejectsBadBatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(8, 16, 1, 2)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append([]MutOp{{Op: OpInsert, Src: 0, Dst: 99, W: 1}}); !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("bad batch: err = %v", err)
	}
	if st := s.Stats(); st.Appends != 0 || st.WALBytes != 0 {
		t.Fatalf("rejected batch left a trace: %+v", st)
	}
	if b, err := s.Append([]MutOp{{Op: OpInsert, Src: 0, Dst: 1, W: 1}}); err != nil || b.Seq != 1 {
		t.Fatalf("append after rejection: b=%+v err=%v", b, err)
	}
}

// TestMutStoreBatchSizeLimit pins the ack/replay agreement at the record
// size boundary: a batch of exactly MaxWALBatchOps ops must ack AND replay
// (an acked-but-unreplayable record would brick every later boot), while one
// op more is rejected before anything touches the log.
func TestMutStoreBatchSizeLimit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	n := int32(1 << 10)
	g := Random(n, 2*int(n), 1, 31)
	s, err := CreateMutStore(dir, g, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}

	over := make([]MutOp, MaxWALBatchOps+1)
	for i := range over {
		over[i] = MutOp{Op: OpInsert, Src: int32(i) % n, Dst: int32(i/int(n)) % n, W: 1}
	}
	if _, err := s.Append(over); !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("oversized batch: err = %v, want ErrCorruptGraph", err)
	}
	if st := s.Stats(); st.Appends != 0 || st.WALBytes != 0 {
		t.Fatalf("rejected oversized batch left a trace: %+v", st)
	}

	atLimit := over[:MaxWALBatchOps]
	if b, err := s.Append(atLimit); err != nil || b.Seq != 1 {
		t.Fatalf("batch at the limit: b.Seq=%d err=%v", b.Seq, err)
	}
	want, err := s.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenMutStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after a limit-sized acked batch: %v", err)
	}
	defer s2.Close()
	if s2.Stats().Replayed != 1 {
		t.Fatalf("replayed %d, want 1", s2.Stats().Replayed)
	}
	got, err := s2.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(got) != Hash(want) {
		t.Fatal("replay of the limit-sized batch diverged from the acked state")
	}
}

func TestMutStoreCreateClearsLeftoverSnapshotTmp(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash during a previous creation attempt: CreateTemp ran,
	// the rename commit point did not.
	tmp := filepath.Join(dir, "snapshot-1234.tmp")
	os.WriteFile(tmp, []byte("partial"), 0o644)
	s, err := CreateMutStore(dir, Random(8, 16, 1, 1), StoreOptions{})
	if err != nil {
		t.Fatalf("CreateMutStore over a leftover snapshot tmp: %v", err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover snapshot tmp not removed")
	}
	// Anything that is not a stale temp snapshot still blocks creation.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "snapshot.bin"), []byte("x"), 0o644)
	if _, err := CreateMutStore(dir2, Random(8, 16, 1, 1), StoreOptions{}); err == nil {
		t.Fatal("CreateMutStore over an existing snapshot succeeded")
	}
}

func TestMutStoreSyncedGroupCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	g := Random(16, 64, 1, 7)
	s, err := CreateMutStore(dir, g, StoreOptions{FsyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Synced() {
		t.Fatal("virgin store reports unsynced")
	}
	for i, wantSynced := range []bool{false, false, true} {
		if _, err := s.Append([]MutOp{{Op: OpInsert, Src: 0, Dst: int32(i + 1), W: 1}}); err != nil {
			t.Fatal(err)
		}
		if got := s.Synced(); got != wantSynced {
			t.Fatalf("after append %d: Synced() = %v, want %v", i+1, got, wantSynced)
		}
	}
	if _, err := s.Append([]MutOp{{Op: OpInsert, Src: 1, Dst: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Unsynced != 1 {
		t.Fatalf("Stats().Unsynced = %d, want 1", st.Unsynced)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if !s.Synced() {
		t.Fatal("explicit Sync left the store unsynced")
	}
}
