package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
)

// The fuzz targets assert the reader contract: any byte stream either parses
// into a CSR that passes Validate, or returns an error — never a panic.

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("p sp 4 3\na 1 2 5\na 2 3 5\na 3 4 5\n"))
	f.Add([]byte("c comment\np sp 2 1\na 1 2 1\n"))
	f.Add([]byte("p sp -1 -1\n"))
	f.Add([]byte("p sp 2 999999999999\na 1 2 1\n"))
	f.Add([]byte("a 1 2 3\n"))
	f.Add([]byte("p sp 3 1\na 0 9 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v", verr)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n0 1 7\n1 0 7\n"))
	f.Add([]byte("-1 0\n"))
	f.Add([]byte("2147483647 0\n"))
	f.Add([]byte("0 1 2 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v", verr)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := Road(4, 4, 4, 1)
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // truncated payload
	f.Add(valid[:10])                     // truncated header
	f.Add([]byte("CSR1\x00\x00\x00\x00")) // header only
	f.Add([]byte("NOPE\x00\x00\x00\x00")) // bad magic
	huge := append([]byte("CSR1"), make([]byte, 12)...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0x7f // 2^31-1 nodes
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v", verr)
		}
	})
}

// Corrupt inputs must surface through the typed taxonomy so callers can
// distinguish bad data from I/O failures.
func TestReadersReturnCorruptGraph(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"dimacs-oob-arc", dimacsErr(t, "p sp 3 1\na 1 9 1\n")},
		{"dimacs-negative-size", dimacsErr(t, "p sp -4 1\n")},
		{"edgelist-negative-id", edgeErr(t, "-1 0\n")},
		{"edgelist-huge-id", edgeErr(t, "300000000 0\n")},
		{"binary-implausible-header", binErr(t, []byte("CSR1\x00\x00\x00\x00\xff\xff\xff\x7f\x00\x00\x00\x00"))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: corrupt input accepted", c.name)
			continue
		}
		if !errors.Is(c.err, fault.ErrCorruptGraph) {
			t.Errorf("%s: error %v does not wrap ErrCorruptGraph", c.name, c.err)
		}
	}
}

func dimacsErr(t *testing.T, in string) error {
	t.Helper()
	_, err := ReadDIMACS(strings.NewReader(in))
	return err
}

func edgeErr(t *testing.T, in string) error {
	t.Helper()
	_, err := ReadEdgeList(strings.NewReader(in))
	return err
}

func binErr(t *testing.T, in []byte) error {
	t.Helper()
	_, err := ReadBinary(bytes.NewReader(in))
	return err
}
