package graph

import "fmt"

// rng is a SplitMix64 generator: tiny, fast, deterministic across platforms.
// The generators must be reproducible independent of Go's math/rand version,
// since golden test values and experiment tables depend on them.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Road generates a planar road-network-like graph: a w x h grid where each
// cell connects to its right and down neighbors (both directions), with a
// fraction of edges perturbed to act as diagonals/ramps and uniform random
// weights in [1, maxW]. Like USA-Road it has uniform low degree (~4) and a
// diameter of O(w+h), which is what makes worklist algorithms iterate for
// thousands of rounds on it.
func Road(w, h int, maxW int32, seed uint64) *CSR {
	r := newRNG(seed)
	n := int32(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	edges := make([]Edge, 0, int(n)*4)
	weight := func() int32 {
		if maxW <= 1 {
			return 1
		}
		return 1 + int32(r.intn(int64(maxW)))
	}
	addBoth := func(a, b int32) {
		wt := weight()
		edges = append(edges, Edge{a, b, wt}, Edge{b, a, wt})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addBoth(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				addBoth(id(x, y), id(x, y+1))
			}
			// Occasional diagonal "ramp" edges (~6% of cells) keep the
			// degree distribution from being perfectly regular.
			if x+1 < w && y+1 < h && r.intn(16) == 0 {
				addBoth(id(x, y), id(x+1, y+1))
			}
		}
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic("graph: road generator produced invalid edges: " + err.Error())
	}
	g.Name = fmt.Sprintf("road-%dx%d", w, h)
	g.SortAdjacency()
	return g
}

// RMAT generates a scale-free graph with 2^scale nodes and edgeFactor*2^scale
// directed edges using the standard R-MAT recursion with the Graph500
// parameters (a,b,c,d) = (0.57, 0.19, 0.19, 0.05). Weights are uniform in
// [1, maxW]. Node ids are scrambled so degree does not correlate with id.
// Like RMAT22 in the paper, the result is highly skewed: a few hubs with
// enormous degree and a long tail of low-degree nodes.
func RMAT(scale int, edgeFactor int, maxW int32, seed uint64) *CSR {
	const a, b, c = 0.57, 0.19, 0.19
	r := newRNG(seed)
	n := int32(1) << uint(scale)
	m := int(n) * edgeFactor
	// Feistel-style id scramble (bijective on [0, 2^scale)).
	scramble := func(x int32) int32 {
		u := uint64(x)
		u = (u*0x5851f42d + 0x14057b7e) & uint64(n-1)
		u = (u ^ (u >> uint(scale/2))) & uint64(n-1)
		return int32((u*2862933555777941757 + 3037000493) & uint64(n-1))
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		var src, dst int32
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+b:
				dst |= 1 << uint(bit)
			case p < a+b+c:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		w := int32(1)
		if maxW > 1 {
			w = 1 + int32(r.intn(int64(maxW)))
		}
		edges = append(edges, Edge{scramble(src), scramble(dst), w})
		src, dst = 0, 0
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic("graph: rmat generator produced invalid edges: " + err.Error())
	}
	g.Name = fmt.Sprintf("rmat%d", scale)
	g.SortAdjacency()
	return g
}

// Random generates a uniform random directed multigraph with n nodes and m
// edges (endpoints chosen independently and uniformly), matching the paper's
// "Random" input family (r4-2e23-style): uniform medium degree, low
// diameter. Weights are uniform in [1, maxW].
func Random(n int32, m int, maxW int32, seed uint64) *CSR {
	r := newRNG(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		s := int32(r.intn(int64(n)))
		d := int32(r.intn(int64(n)))
		w := int32(1)
		if maxW > 1 {
			w = 1 + int32(r.intn(int64(maxW)))
		}
		edges = append(edges, Edge{s, d, w})
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic("graph: random generator produced invalid edges: " + err.Error())
	}
	g.Name = fmt.Sprintf("random-n%d-m%d", n, m)
	g.SortAdjacency()
	return g
}

// Scale selects the benchmark input sizes. The paper's graphs (USA-Road 23M
// nodes, RMAT22, Random 8M) are scaled down so the full experiment matrix
// completes on a development machine; the degree distribution and diameter
// properties that drive the results are preserved per family.
type Scale int

const (
	// Tiny inputs for unit tests.
	ScaleTest Scale = iota
	// Small inputs for quick runs and examples.
	ScaleSmall
	// Default benchmark scale used by the experiment harness.
	ScaleBench
	// Large inputs for the virtual-memory experiment.
	ScaleLarge
)

// Suite returns the three paper input families at the given scale:
// road (USA-Road analogue), rmat (RMAT22 analogue), random.
func Suite(s Scale, seed uint64) []*CSR {
	switch s {
	case ScaleTest:
		return []*CSR{
			Road(16, 16, 64, seed),
			RMAT(8, 8, 64, seed),
			Random(256, 2048, 64, seed),
		}
	case ScaleSmall:
		return []*CSR{
			Road(64, 64, 64, seed),
			RMAT(12, 8, 64, seed),
			Random(4096, 32768, 64, seed),
		}
	case ScaleBench:
		return []*CSR{
			Road(320, 320, 64, seed),        // ~102k nodes, ~420k directed edges, diameter ~640
			RMAT(16, 8, 64, seed),           // 65k nodes, 524k edges, skewed
			Random(80000, 640000, 64, seed), // 80k nodes, 640k edges, uniform deg 8
		}
	case ScaleLarge:
		return []*CSR{
			Road(1024, 1024, 64, seed),
			RMAT(18, 8, 64, seed),
			Random(500000, 4000000, 64, seed),
		}
	}
	panic("graph: unknown scale")
}
