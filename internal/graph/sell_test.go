package graph

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// sellRow reconstructs row u's adjacency (dsts and CSR edge ids, in order)
// from the SELL cell arrays — the round-trip contract the dense path relies
// on.
func sellRow(s *SellCS, u int32) (dst, eid []int32) {
	p := s.InvPerm[u]
	sl := p / s.C
	cell := s.SlicePtr[sl] + (p - sl*s.C)
	for j := int32(0); j < s.Height(sl); j++ {
		if s.Dst[cell] < 0 {
			break
		}
		dst = append(dst, s.Dst[cell])
		eid = append(eid, s.EdgeID[cell])
		cell += s.C
	}
	return dst, eid
}

func checkRoundTrip(t *testing.T, g *CSR, s *SellCS) {
	t.Helper()
	for u := int32(0); u < g.NumNodes(); u++ {
		dst, eid := sellRow(s, u)
		want := g.Neighbors(u)
		if len(dst) != len(want) {
			t.Fatalf("vertex %d: sell row has %d neighbors, csr %d", u, len(dst), len(want))
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("vertex %d neighbor %d: sell %d, csr %d", u, j, dst[j], want[j])
			}
			if e := g.RowPtr[u] + int32(j); eid[j] != e {
				t.Fatalf("vertex %d neighbor %d: edge id %d, want %d", u, j, eid[j], e)
			}
		}
	}
}

func TestBuildSellCSKnownGraph(t *testing.T) {
	// Degrees 1, 3, 0, 2 over 4 nodes; C=2 makes two slices. The full-graph
	// sort window orders rows [1 3 0 2], so slice 0 holds degrees {3,2}
	// (height 3) and slice 1 holds {1,0} (height 1).
	edges := []Edge{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 3, Dst: 0}, {Src: 3, Dst: 2},
	}
	g, err := FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSellCS(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Perm, []int32{1, 3, 0, 2}; len(got) != 4 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Fatalf("perm = %v, want %v", got, want)
	}
	if s.NumSlices() != 2 || s.Height(0) != 3 || s.Height(1) != 1 {
		t.Fatalf("slices/heights = %d / %d,%d, want 2 / 3,1",
			s.NumSlices(), s.Height(0), s.Height(1))
	}
	if s.Cells() != 8 || s.LiveCells() != 6 {
		t.Fatalf("cells = %d live %d, want 8 live 6", s.Cells(), s.LiveCells())
	}
	// Slice 0 column-major: col j holds rows {1,3}'s j-th neighbors.
	wantDst := []int32{0, 0, 2, 2, 3, -1, 1, -1}
	for i, w := range wantDst {
		if s.Dst[i] != w {
			t.Fatalf("dst[%d] = %d, want %d (full %v)", i, s.Dst[i], w, s.Dst)
		}
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, g, s)
	if got := s.PaddingRatio(); got != 0.25 {
		t.Fatalf("padding ratio = %g, want 0.25", got)
	}
	if got := s.Overhead(); got != 8.0/6.0 {
		t.Fatalf("overhead = %g, want %g", got, 8.0/6.0)
	}
}

// Every suite graph (weighted generators), plus a symmetrized one, round-trips
// through SELL for several (C, σ) choices, including C not dividing n and a
// window smaller than the graph.
func TestSellSuiteRoundTrip(t *testing.T) {
	graphs := Suite(ScaleTest, 1)
	graphs = append(graphs, graphs[1].Symmetrize())
	for _, g := range graphs {
		for _, c := range []int32{1, 3, 8, 16} {
			for _, sigma := range []int32{0, 64, DefaultSigma} {
				s, err := BuildSellCS(g, c, sigma)
				if err != nil {
					t.Fatalf("%s C=%d sigma=%d: %v", g.Name, c, sigma, err)
				}
				if err := s.Validate(g); err != nil {
					t.Fatalf("%s C=%d sigma=%d: %v", g.Name, c, sigma, err)
				}
				checkRoundTrip(t, g, s)
				if s.LiveCells() != int64(g.NumEdges()) {
					t.Fatalf("%s C=%d: %d live cells, want %d", g.Name, c, s.LiveCells(), g.NumEdges())
				}
				if pr := s.PaddingRatio(); pr < 0 || pr >= 1 {
					t.Fatalf("%s C=%d: padding ratio %g out of range", g.Name, c, pr)
				}
				if s.Overhead() < 1 {
					t.Fatalf("%s C=%d: overhead %g < 1", g.Name, c, s.Overhead())
				}
			}
		}
	}
}

// A sorted window never increases padding vs no sorting; with a full-graph
// window on a skewed graph it should strictly help.
func TestSellSortingReducesPadding(t *testing.T) {
	g := RMAT(8, 8, 64, 7)
	sorted, err := BuildSellCS(g, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// σ=1 windows are singletons: the identity permutation, i.e. no sorting.
	unsorted, err := BuildSellCS(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < g.NumNodes(); i++ {
		if unsorted.Perm[i] != i {
			t.Fatalf("sigma=1 perm[%d] = %d, want identity", i, unsorted.Perm[i])
		}
	}
	if sorted.Cells() >= unsorted.Cells() {
		t.Fatalf("full sort cells %d, unsorted %d: sorting should shrink padding on rmat",
			sorted.Cells(), unsorted.Cells())
	}
}

func TestSellEdgeCases(t *testing.T) {
	empty, err := FromEdges(0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSellCS(empty, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlices() != 0 || s.Cells() != 0 || s.PaddingRatio() != 0 || s.Overhead() != 1 {
		t.Fatalf("empty graph: slices=%d cells=%d pad=%g ovh=%g",
			s.NumSlices(), s.Cells(), s.PaddingRatio(), s.Overhead())
	}
	single, err := FromEdges(1, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err = BuildSellCS(single, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(single); err != nil {
		t.Fatal(err)
	}
	if s.NumSlices() != 1 || s.Height(0) != 0 {
		t.Fatalf("single isolated node: slices=%d height=%d", s.NumSlices(), s.Height(0))
	}

	if _, err := BuildSellCS(single, 0, 0); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := BuildSellCS(nil, 8, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestSellValidateDetectsCorruption(t *testing.T) {
	g := Road(8, 8, 16, 3)
	s, err := BuildSellCS(g, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(*SellCS){
		func(s *SellCS) { s.Perm[0], s.Perm[1] = s.Perm[1], s.Perm[0] },
		func(s *SellCS) { s.Dst[0] = -1 },
		func(s *SellCS) { s.EdgeID[0]++ },
		func(s *SellCS) { s.Wt[0] ^= 1 },
		func(s *SellCS) { s.SlicePtr[1] -= int32(s.C) },
	}
	for i, mutate := range mutations {
		c, err := BuildSellCS(g, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		mutate(c)
		verr := c.Validate(g)
		if verr == nil {
			t.Fatalf("mutation %d not detected", i)
		}
		if !errors.Is(verr, fault.ErrCorruptGraph) {
			t.Fatalf("mutation %d: error %v does not wrap ErrCorruptGraph", i, verr)
		}
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("pristine layout rejected: %v", err)
	}
}

func TestDegreeSummary(t *testing.T) {
	edges := []Edge{
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 2, Dst: 0},
		{Src: 3, Dst: 0}, {Src: 3, Dst: 1},
	}
	g, err := FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.DegreeSummary()
	if ds.Min != 0 || ds.Max != 3 || ds.Median != 2 || ds.P99 != 3 || ds.Avg != 1.5 {
		t.Fatalf("degree summary = %+v", ds)
	}
	if (&CSR{RowPtr: []int32{0}}).DegreeSummary() != (DegreeSummary{}) {
		t.Fatal("empty graph summary not zero")
	}
}

// FuzzSellRoundTrip drives SELL construction with arbitrary edge lists and
// (C, σ) choices: whatever parses into a valid CSR must build a layout that
// passes Validate and reproduces every row's adjacency exactly.
func FuzzSellRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(0), []byte{0, 1, 1, 2, 2, 0})
	f.Add(uint8(1), uint8(1), []byte{3, 3, 3, 3})
	f.Add(uint8(16), uint8(4), []byte{0, 0})
	f.Add(uint8(4), uint8(255), []byte{})
	f.Fuzz(func(t *testing.T, c, sigma uint8, data []byte) {
		const n = 13 // prime, so C rarely divides it
		var edges []Edge
		for i := 0; i+1 < len(data) && i < 256; i += 2 {
			edges = append(edges, Edge{
				Src: int32(data[i]) % n,
				Dst: int32(data[i+1]) % n,
				W:   int32(data[i]) + 1,
			})
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return
		}
		s, err := BuildSellCS(g, int32(c), int32(sigma))
		if err != nil {
			if c == 0 {
				return // rejected non-positive C is the contract
			}
			t.Fatalf("C=%d sigma=%d: %v", c, sigma, err)
		}
		if verr := s.Validate(g); verr != nil {
			t.Fatalf("C=%d sigma=%d: %v", c, sigma, verr)
		}
		checkRoundTrip(t, g, s)
	})
}

// TestSellHybridFallback checks the load-balanced hybrid construction: every
// row at or above the heavy cap lands in an unmaterialized fallback slice,
// materialized slices stay pure SELL (round-trippable, C-aligned), and the
// two edge populations exactly partition the graph.
func TestSellHybridFallback(t *testing.T) {
	g := RMAT(10, 8, 64, 7)
	const c, spans, heavyCap = 8, 8, 32
	s, err := BuildSellCSDealt(g, c, -1, spans, heavyCap)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.FallbackEdges() == 0 {
		t.Fatalf("rmat10 with cap %d produced no fallback slices", heavyCap)
	}
	if r := s.FallbackRatio(); r <= 0 || r >= 1 {
		t.Fatalf("fallback ratio = %v, want in (0,1)", r)
	}
	if s.LiveCells()+s.FallbackEdges() != int64(g.NumEdges()) {
		t.Fatalf("materialized %d + fallback %d edges != graph %d",
			s.LiveCells(), s.FallbackEdges(), g.NumEdges())
	}
	numSlices := int32(len(s.SlicePtr)) - 1
	partials := 0
	for sl := int32(0); sl < numSlices; sl++ {
		lo, hi := sl*s.C, (sl+1)*s.C
		if hi > g.NumNodes() {
			hi = g.NumNodes()
			partials++
			if sl != numSlices-1 {
				t.Fatalf("partial slice %d not pinned last of %d", sl, numSlices)
			}
		}
		for p := lo; p < hi; p++ {
			deg := g.Degree(s.Perm[p])
			if s.IsFallback(sl) {
				continue
			}
			if deg >= heavyCap {
				t.Fatalf("slice %d: materialized row %d has degree %d >= cap %d",
					sl, s.Perm[p], deg, heavyCap)
			}
		}
		if s.IsFallback(sl) && s.SlicePtr[sl+1] != s.SlicePtr[sl] {
			t.Fatalf("fallback slice %d materializes %d cells",
				sl, s.SlicePtr[sl+1]-s.SlicePtr[sl])
		}
	}
	if partials > 1 {
		t.Fatalf("%d partial slices, want at most 1", partials)
	}
	// Materialized rows still round-trip through the cell arrays.
	for u := int32(0); u < g.NumNodes(); u++ {
		p := s.InvPerm[u]
		if s.IsFallback(p / s.C) {
			continue
		}
		dst, _ := sellRow(s, u)
		want := g.Neighbors(u)
		if len(dst) != len(want) {
			t.Fatalf("vertex %d: sell row has %d neighbors, csr %d", u, len(dst), len(want))
		}
	}
}
