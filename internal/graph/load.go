package graph

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/fault"
)

// LoadFile reads a graph from path, sniffing the format: binary CSR first,
// then DIMACS .gr, then plain edge list. A format mismatch falls through to
// the next parser, but definite corruption (the file matched a format and is
// broken) stops immediately — the next parser's error would only mask the
// real one.
func LoadFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err == nil {
		return g, nil
	}
	if errors.Is(err, fault.ErrCorruptGraph) {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	g, err = ReadDIMACS(f)
	if err == nil {
		return g, nil
	}
	if errors.Is(err, fault.ErrCorruptGraph) {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return ReadEdgeList(f)
}

// ParseScale maps the CLI scale names to Scale values.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return ScaleTest, nil
	case "small":
		return ScaleSmall, nil
	case "bench":
		return ScaleBench, nil
	case "large":
		return ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want test|small|bench|large)", name)
}

// Load resolves the shared graph-selection CLI contract of the cmd binaries:
// a file path wins (format-sniffed via LoadFile); otherwise input names a
// generated family (road|rmat|random) at the given scale and seed.
func Load(file, input, scale string, seed uint64) (*CSR, error) {
	if file != "" {
		return LoadFile(file)
	}
	sc, err := ParseScale(scale)
	if err != nil {
		return nil, err
	}
	suite := Suite(sc, seed)
	switch input {
	case "road":
		return suite[0], nil
	case "rmat":
		return suite[1], nil
	case "random":
		return suite[2], nil
	}
	return nil, fmt.Errorf("unknown input %q (want road|rmat|random)", input)
}
