package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
)

// deltaTestGraph is a small weighted graph shared by the delta tests.
func deltaTestGraph(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(6, []Edge{
		{0, 1, 5}, {0, 2, 7}, {1, 2, 1}, {2, 3, 2}, {3, 0, 9}, {4, 5, 4},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeltaApplyCompact(t *testing.T) {
	g := deltaTestGraph(t)
	d := NewDelta(g, 0)
	err := d.Apply(Batch{Seq: 1, Ops: []MutOp{
		{Op: OpInsert, Src: 5, Dst: 0, W: 3},
		{Op: OpDelete, Src: 0, Dst: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.NumEdges(); got != 6 {
		t.Fatalf("NumEdges = %d, want 6", got)
	}
	if got := d.Degree(0); got != 1 {
		t.Fatalf("Degree(0) = %d, want 1", got)
	}
	if got := d.Neighbors(5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Neighbors(5) = %v, want [0]", got)
	}
	// Untouched row reads through to the base.
	if got := d.Neighbors(2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Neighbors(2) = %v, want [3]", got)
	}
	touched := d.Touched()
	if len(touched) != 2 || touched[0] != 0 || touched[1] != 5 {
		t.Fatalf("Touched = %v, want [0 5]", touched)
	}

	c, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 6 || c.NumEdges() != 6 {
		t.Fatalf("compacted %d nodes %d edges, want 6/6", c.NumNodes(), c.NumEdges())
	}
	if got := c.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("compacted Neighbors(0) = %v, want [1]", got)
	}
	if w := c.EdgeWeight(c.RowPtr[5]); w != 3 {
		t.Fatalf("inserted edge weight = %d, want 3", w)
	}
	// Compact leaves the overlay intact: a second call folds identically.
	c2, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(c) != Hash(c2) {
		t.Fatal("repeated Compact diverged")
	}
}

func TestDeltaDeleteAllParallelEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 1}, {0, 1, 2}, {0, 2, 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta(g, 0)
	if err := d.Apply(Batch{Seq: 1, Ops: []MutOp{{Op: OpDelete, Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	if d.Deletes() != 2 {
		t.Fatalf("Deletes = %d, want 2 (both parallel edges)", d.Deletes())
	}
	if err := d.Apply(Batch{Seq: 2, Ops: []MutOp{{Op: OpDelete, Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	if d.NoopDeletes() != 1 {
		t.Fatalf("NoopDeletes = %d, want 1", d.NoopDeletes())
	}
}

func TestDeltaRejectsBadBatches(t *testing.T) {
	g := deltaTestGraph(t)
	d := NewDelta(g, 5)
	// Seq at or below the floor.
	if err := d.Apply(Batch{Seq: 5}); !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("stale seq: err = %v, want ErrCorruptGraph", err)
	}
	// Validation failure applies nothing, even for the valid prefix.
	err := d.Apply(Batch{Seq: 6, Ops: []MutOp{
		{Op: OpInsert, Src: 0, Dst: 1, W: 1},
		{Op: OpInsert, Src: 0, Dst: 99, W: 1},
	}})
	if !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("out-of-range op: err = %v, want ErrCorruptGraph", err)
	}
	if d.Pending() != 0 || d.LastSeq() != 5 {
		t.Fatalf("failed batch mutated overlay: pending=%d lastSeq=%d", d.Pending(), d.LastSeq())
	}
	if err := d.Apply(Batch{Seq: 6, Ops: []MutOp{{Op: 7, Src: 0, Dst: 1}}}); !errors.Is(err, fault.ErrCorruptGraph) {
		t.Fatalf("bad op code: err = %v, want ErrCorruptGraph", err)
	}
}

func TestDeltaUnweightedForcesWeightOne(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1, 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta(g, 0)
	if err := d.Apply(Batch{Seq: 1, Ops: []MutOp{{Op: OpInsert, Src: 1, Dst: 0, W: 42}}}); err != nil {
		t.Fatal(err)
	}
	c, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if c.Weighted() {
		t.Fatal("compacting an unweighted base grew a weight channel")
	}
}

// TestDeltaOrderIndependentOfCompaction pins the bit-identity property the
// kill-anywhere harness relies on: folding after every batch, folding once
// at the end, or any mix, yields the same final CSR.
func TestDeltaOrderIndependentOfCompaction(t *testing.T) {
	g := Random(64, 256, 8, 99)
	ops, err := GenMutations(g, 7, MutGenOptions{Count: 200, DeleteFrac: 0.4, Skew: 0.5, MaxWeight: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Path A: apply everything, fold once.
	a := NewDelta(g, 0)
	for i, op := range ops {
		if err := a.Apply(Batch{Seq: uint64(i + 1), Ops: []MutOp{op}}); err != nil {
			t.Fatal(err)
		}
	}
	ga, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Path B: fold every 37 ops onto a fresh overlay.
	base := g
	b := NewDelta(base, 0)
	for i, op := range ops {
		if err := b.Apply(Batch{Seq: b.LastSeq() + 1, Ops: []MutOp{op}}); err != nil {
			t.Fatal(err)
		}
		if (i+1)%37 == 0 {
			base, err = b.Compact()
			if err != nil {
				t.Fatal(err)
			}
			b = NewDelta(base, b.LastSeq())
		}
	}
	gb, err := b.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if Hash(ga) != Hash(gb) {
		t.Fatalf("compaction schedule changed the graph: %x vs %x", Hash(ga), Hash(gb))
	}
}

func TestHashDiscriminates(t *testing.T) {
	g := deltaTestGraph(t)
	h := Hash(g)
	g2 := deltaTestGraph(t)
	if Hash(g2) != h {
		t.Fatal("identical graphs hash differently")
	}
	g2.Weight[0]++
	if Hash(g2) == h {
		t.Fatal("weight change did not move the hash")
	}
	unw, _ := FromEdges(g.NumNodes(), nil, false)
	if Hash(unw) == Hash(g) {
		t.Fatal("degenerate collision")
	}
}

func TestMutationTextRoundTrip(t *testing.T) {
	ops := []MutOp{
		{Op: OpInsert, Src: 0, Dst: 1, W: 5},
		{Op: OpDelete, Src: 3, Dst: 0, W: 1},
		{Op: OpInsert, Src: 2, Dst: 2, W: 1},
	}
	var buf bytes.Buffer
	if err := WriteMutations(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMutations(bytes.NewReader(buf.Bytes()), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestParseMutationsRejects(t *testing.T) {
	for _, tc := range []string{
		"* 0 1",                    // unknown op
		"+ 0",                      // missing dst
		"+ 0 1 2 3 4",              // too many fields
		"- 0 1 2",                  // delete with weight
		"+ 0 99",                   // out of range
		"+ zero 1",                 // not a number
		"+ 0 99999999999999999999", // overflow
	} {
		if _, err := ParseMutations(strings.NewReader(tc), 6); !errors.Is(err, fault.ErrCorruptGraph) {
			t.Errorf("%q: err = %v, want ErrCorruptGraph", tc, err)
		}
	}
	// Comments and blanks pass.
	ops, err := ParseMutations(strings.NewReader("# header\n\n+ 0 1\n"), 6)
	if err != nil || len(ops) != 1 {
		t.Fatalf("comment stream: ops=%v err=%v", ops, err)
	}
}

func TestGenMutationsDeterministicAndApplicable(t *testing.T) {
	g := Random(128, 512, 4, 11)
	opts := MutGenOptions{Count: 500, DeleteFrac: 0.3, Skew: 0.6, MaxWeight: 4}
	a, err := GenMutations(g, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenMutations(g, 42, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != opts.Count || len(b) != opts.Count {
		t.Fatalf("lengths %d/%d, want %d", len(a), len(b), opts.Count)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged under one seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := GenMutations(g, 43, opts)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical stream")
	}
	// The whole stream must apply cleanly, and deletes mostly hit.
	d := NewDelta(g, 0)
	for i, op := range a {
		if err := d.Apply(Batch{Seq: uint64(i + 1), Ops: []MutOp{op}}); err != nil {
			t.Fatalf("op %d failed to apply: %v", i, err)
		}
	}
	if d.Deletes() == 0 {
		t.Fatal("no delete ever landed")
	}
	if d.NoopDeletes() > d.Deletes() {
		t.Fatalf("generator wasteful: %d no-op deletes vs %d real", d.NoopDeletes(), d.Deletes())
	}
	if _, err := d.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestGenMutationsRejectsBadOptions(t *testing.T) {
	g := deltaTestGraph(t)
	for _, opts := range []MutGenOptions{
		{Count: -1},
		{Count: 1, DeleteFrac: 1.5},
		{Count: 1, Skew: 1},
	} {
		if _, err := GenMutations(g, 1, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}
