package graph

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Crash points: named sites in the mutation pipeline where the kill-anywhere
// harness can SIGKILL the process. The environment variable
//
//	EGACS_CRASHPOINT=<name>:<count>
//
// arms one point; the process kills itself (un-catchably, as a real crash
// would) on the count-th time execution reaches it. Points, in pipeline
// order:
//
//	append-pre-write    before the record reaches the segment
//	append-pre-sync     record written, not yet fsynced
//	append-post-sync    record durable, batch not yet acked
//	applied             batch applied to the in-memory overlay
//	compact-built       folded CSR built, nothing persisted
//	snapshot-written    snapshot temp file synced, not yet renamed
//	snapshot-renamed    rename committed, directory synced
//	compact-persisted   new snapshot durable, old segment still active
//	rotate              fresh segment opened
//	pruned              covered segments removed
//
// Unarmed (the normal case) the hook is one atomic load.
var crashpoint struct {
	once  sync.Once
	name  string
	count int64
	mu    sync.Mutex
	hits  int64
}

// Crashpoint possibly SIGKILLs the current process, per EGACS_CRASHPOINT.
func Crashpoint(name string) {
	crashpoint.once.Do(func() {
		spec := os.Getenv("EGACS_CRASHPOINT")
		if spec == "" {
			return
		}
		point, countStr, ok := strings.Cut(spec, ":")
		count := int64(1)
		if ok {
			if v, err := strconv.ParseInt(countStr, 10, 64); err == nil && v > 0 {
				count = v
			}
		}
		crashpoint.name, crashpoint.count = point, count
	})
	if crashpoint.name != name {
		return
	}
	crashpoint.mu.Lock()
	crashpoint.hits++
	fire := crashpoint.hits == crashpoint.count
	crashpoint.mu.Unlock()
	if fire {
		// SIGKILL, not os.Exit: no deferred cleanup, no atexit flushing —
		// the closest software model of the machine losing power here.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; the signal is not deliverable to a handler
	}
}
