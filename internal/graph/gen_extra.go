package graph

import "fmt"

// Additional generator families beyond the paper's three benchmark inputs,
// provided for library completeness (the experiment harness does not use
// them).

// SmallWorld generates a Watts–Strogatz small-world graph: a ring lattice of
// n nodes each connected to its k nearest neighbors per side, with every
// lattice edge rewired to a uniform random endpoint with probability beta.
// Low beta keeps high clustering; small beta > 0 already collapses the
// diameter — the classic small-world regime.
func SmallWorld(n int32, k int, beta float64, maxW int32, seed uint64) *CSR {
	if k < 1 {
		k = 1
	}
	r := newRNG(seed)
	weight := func() int32 {
		if maxW <= 1 {
			return 1
		}
		return 1 + int32(r.intn(int64(maxW)))
	}
	type undirected struct{ a, b int32 }
	seen := map[undirected]bool{}
	var edges []Edge
	add := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := undirected{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		w := weight()
		edges = append(edges, Edge{a, b, w}, Edge{b, a, w})
	}
	for i := int32(0); i < n; i++ {
		for j := 1; j <= k; j++ {
			dst := (i + int32(j)) % n
			if r.float64() < beta {
				dst = int32(r.intn(int64(n)))
			}
			add(i, dst)
		}
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic("graph: small-world generator produced invalid edges: " + err.Error())
	}
	g.Name = fmt.Sprintf("smallworld-n%d-k%d", n, k)
	g.SortAdjacency()
	return g
}

// PreferentialAttachment generates a Barabási–Albert scale-free graph: nodes
// arrive one at a time and attach m undirected edges to existing nodes with
// probability proportional to current degree (implemented with the standard
// repeated-endpoints trick: sampling a uniform position in the edge-endpoint
// list is degree-proportional).
func PreferentialAttachment(n int32, m int, maxW int32, seed uint64) *CSR {
	if m < 1 {
		m = 1
	}
	if n < int32(m)+1 {
		n = int32(m) + 1
	}
	r := newRNG(seed)
	weight := func() int32 {
		if maxW <= 1 {
			return 1
		}
		return 1 + int32(r.intn(int64(maxW)))
	}
	// Seed clique over the first m+1 nodes.
	var edges []Edge
	endpoints := make([]int32, 0, int(n)*m*2)
	addUndirected := func(a, b int32) {
		w := weight()
		edges = append(edges, Edge{a, b, w}, Edge{b, a, w})
		endpoints = append(endpoints, a, b)
	}
	for a := int32(0); a <= int32(m); a++ {
		for b := a + 1; b <= int32(m); b++ {
			addUndirected(a, b)
		}
	}
	for v := int32(m) + 1; v < n; v++ {
		attached := map[int32]bool{}
		for len(attached) < m {
			target := endpoints[r.intn(int64(len(endpoints)))]
			if target == v || attached[target] {
				continue
			}
			attached[target] = true
			addUndirected(v, target)
		}
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic("graph: preferential-attachment generator produced invalid edges: " + err.Error())
	}
	g.Name = fmt.Sprintf("ba-n%d-m%d", n, m)
	g.SortAdjacency()
	return g
}
