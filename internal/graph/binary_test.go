package graph

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*CSR{
		Road(12, 12, 16, 3),
		RMAT(8, 8, 1, 4), // weighted with maxW=1: weights all 1
		func() *CSR { g := Random(100, 800, 0, 5); g.Weight = nil; return g }(), // unweighted
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("size changed: %v vs %v", back, g)
		}
		if back.Weighted() != g.Weighted() {
			t.Fatal("weight flag changed")
		}
		for i := range g.RowPtr {
			if back.RowPtr[i] != g.RowPtr[i] {
				t.Fatal("rowptr changed")
			}
		}
		for i := range g.EdgeDst {
			if back.EdgeDst[i] != g.EdgeDst[i] {
				t.Fatal("edges changed")
			}
			if g.Weighted() && back.Weight[i] != g.Weight[i] {
				t.Fatal("weights changed")
			}
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("CSR"),
		[]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"),
		// Valid magic, truncated payload.
		append([]byte("CSR1"), bytes.Repeat([]byte{0xff}, 12)...),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestBinaryRejectsCorruptPayload(t *testing.T) {
	g := Road(6, 6, 8, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the first edge destination's high byte to an out-of-range id
	// (the edgedst array starts after the 16-byte header and the rowptr
	// array): Validate catches it.
	edgeDstOff := 16 + (int(g.NumNodes())+1)*4
	data[edgeDstOff+3] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("corrupt payload accepted")
	}
}
