package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR container: the fast on-disk form for large generated inputs
// (text formats parse at tens of MB/s; the binary form is I/O bound).
//
// Layout (little endian):
//
//	magic   [4]byte "CSR1"
//	flags   uint32  bit0 = weighted
//	nodes   uint32
//	edges   uint32
//	rowptr  [nodes+1]int32
//	edgedst [edges]int32
//	weight  [edges]int32 (when weighted)
var csrMagic = [4]byte{'C', 'S', 'R', '1'}

// WriteBinary writes g in the binary CSR container format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= 1
	}
	for _, v := range []uint32{flags, uint32(g.NumNodes()), uint32(g.NumEdges())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range [][]int32{g.RowPtr, g.EdgeDst, g.Weight} {
		if arr == nil {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary CSR container and validates the result.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	// A magic mismatch is a format mismatch, not corruption: callers sniffing
	// formats must be able to fall through to the text parsers.
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a CSR1 file)", magic)
	}
	var flags, nodes, edges uint32
	for _, p := range []*uint32{&flags, &nodes, &edges} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	const maxCount = 1 << 30 // int32 index limit: sanity bound against corrupt headers
	if nodes >= maxCount || edges >= maxCount {
		return nil, corruptf("graph: implausible sizes in header: %d nodes, %d edges", nodes, edges)
	}
	g := &CSR{Name: "binary"}
	var err error
	if g.RowPtr, err = readInt32s(br, int(nodes)+1); err != nil {
		return nil, fmt.Errorf("graph: binary payload: %w", err)
	}
	if g.EdgeDst, err = readInt32s(br, int(edges)); err != nil {
		return nil, fmt.Errorf("graph: binary payload: %w", err)
	}
	if flags&1 != 0 {
		if g.Weight, err = readInt32s(br, int(edges)); err != nil {
			return nil, fmt.Errorf("graph: binary payload: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file inconsistent: %w", err)
	}
	return g, nil
}

// readInt32s reads exactly n little-endian int32s, growing the destination in
// chunks so a corrupt header claiming billions of entries allocates no more
// than the stream actually provides.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	const chunk = 1 << 20
	first := n
	if first > chunk {
		first = chunk
	}
	out := make([]int32, 0, first)
	for len(out) < n {
		c := n - len(out)
		if c > chunk {
			c = chunk
		}
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}
