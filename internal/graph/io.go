package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes g in the 9th DIMACS shortest-path challenge .gr format
// (1-based node ids, "a src dst weight" arc lines), the format USA-Road is
// distributed in.
func WriteDIMACS(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c %s\np sp %d %d\n", g.Name, g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for n := int32(0); n < g.NumNodes(); n++ {
		for e := g.RowPtr[n]; e < g.RowPtr[n+1]; e++ {
			if _, err := fmt.Fprintf(bw, "a %d %d %d\n", n+1, g.EdgeDst[e]+1, g.EdgeWeight(e)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS .gr graph.
func ReadDIMACS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int32 = -1
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph: line %d: malformed problem line %q", line, text)
			}
			nn, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node count: %v", line, err)
			}
			mm, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %v", line, err)
			}
			if nn < 0 || nn > MaxNodes || mm < 0 {
				return nil, corruptf("graph: line %d: implausible problem size %d nodes, %d edges", line, nn, mm)
			}
			n = int32(nn)
			// Cap the initial allocation: a corrupt header must not
			// reserve more than the arc lines actually deliver.
			if mm > 1<<20 {
				mm = 1 << 20
			}
			edges = make([]Edge, 0, mm)
		case "a":
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed arc %q", line, text)
			}
			s, err1 := strconv.ParseInt(fields[1], 10, 32)
			d, err2 := strconv.ParseInt(fields[2], 10, 32)
			wt, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad arc numbers in %q", line, text)
			}
			edges = append(edges, Edge{int32(s - 1), int32(d - 1), int32(wt)})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.Name = "dimacs"
	return g, nil
}

// WriteEdgeList writes "src dst [weight]" lines, 0-based.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for n := int32(0); n < g.NumNodes(); n++ {
		for e := g.RowPtr[n]; e < g.RowPtr[n+1]; e++ {
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", n, g.EdgeDst[e], g.Weight[e])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", n, g.EdgeDst[e])
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "src dst [weight]" lines (0-based, '#' comments). The
// node count is one more than the largest id seen.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID int32 = -1
	weighted := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		s, err1 := strconv.ParseInt(fields[0], 10, 32)
		d, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoints in %q", line, text)
		}
		wt := int64(1)
		if len(fields) == 3 {
			var err error
			wt, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight in %q", line, text)
			}
			weighted = true
		}
		if s < 0 || s > MaxNodes-1 || d < 0 || d > MaxNodes-1 {
			return nil, corruptf("graph: line %d: node id outside [0,%d) in %q", line, MaxNodes, text)
		}
		edges = append(edges, Edge{int32(s), int32(d), int32(wt)})
		if int32(s) > maxID {
			maxID = int32(s)
		}
		if int32(d) > maxID {
			maxID = int32(d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g, err := FromEdges(maxID+1, edges, weighted)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.Name = "edgelist"
	return g, nil
}
