package graph

import (
	"fmt"
	"math"
	"sort"
)

// SellCS is the SELL-C-σ sliced-ELLPACK layout (Kreutzer et al., adapted for
// graphs by SlimSell, Besta et al.): vertices are reordered by descending
// degree inside σ-sized windows, grouped into slices of C consecutive rows,
// and each slice is padded to its tallest row and stored column-major. With
// C equal to the SIMD width, the j-th neighbor of all C rows of a slice is
// one unit-stride vector load instead of a per-lane gather, and rows of
// similar degree share a slice so few lanes idle.
//
// Padding cells hold -1 in both Dst and EdgeID — the SlimSell trick: a lane
// is live at column j iff its destination is non-negative, so one sign
// compare replaces per-lane degree bookkeeping, and because a row's live
// columns are a prefix, the per-column active mask only ever shrinks.
//
// The layout is a reordering of processing, not a renumbering: Dst holds
// original vertex ids and EdgeID holds original CSR edge indices, so kernel
// state arrays, worklist items and outputs all stay in the original id
// space and need no inverse permutation at the end of a run.
type SellCS struct {
	C     int32 // rows per slice (the vector path requires C == SIMD width)
	Sigma int32 // degree-sorting window in rows

	// Perm maps slice position -> original vertex id; InvPerm inverts it.
	Perm    []int32
	InvPerm []int32

	// SlicePtr[s] is the cell offset of slice s (len numSlices+1). A slice
	// with height h spans h*C cells; cell (slice s, column j, row r) lives
	// at SlicePtr[s] + j*C + r.
	SlicePtr []int32

	// Dst, EdgeID and Wt are the column-major cell arrays. Dst and EdgeID
	// are -1 in padding cells; Wt is nil for unweighted graphs.
	Dst    []int32
	EdgeID []int32
	Wt     []int32

	// Fallback, when non-nil, flags hybrid-layout slices that carry at least
	// one heavy row (degree >= the build's heavy cap): their cells are not
	// materialized (SlicePtr span is zero) and the runtime dispatch routes
	// them to the CSR loop, whose big-row broadcast already sweeps such
	// adjacency row-major at full lane occupancy — the dense column path has
	// nothing to add there, while materializing a 16-hub slice would both
	// explode padding and concentrate several tasks' worth of edges into one
	// indivisible chunk. nil means every slice is materialized (pure SELL).
	Fallback []bool

	n             int32 // vertex count (may not be a multiple of C)
	edges         int64 // live (non-padding) materialized cells
	fallbackEdges int64 // edges of fallback-slice rows (kept in CSR only)

	// Spans records how many contiguous slice spans the sorted slices were
	// load-balanced across at build time (1 = plain SELL-C-σ slice order);
	// HeavyCap the degree at which rows were diverted to fallback slices
	// (0 = none, pure SELL).
	Spans    int32
	HeavyCap int32
}

// DefaultSigma is the degree-sorting window used when none is requested:
// wide enough to act as a full sort on the benchmark-scale graphs while
// keeping reorder locality bounded on larger ones.
const DefaultSigma = 4096

// BuildSellCS converts a CSR graph into SELL-C-σ form. c must be positive;
// sigma <= 0 selects a full-graph sort window. The CSR is not modified and
// stays the authority for row extents and arbitrary edge-index lookups.
func BuildSellCS(g *CSR, c, sigma int32) (*SellCS, error) {
	return BuildSellCSDealt(g, c, sigma, 1, 0)
}

// BuildSellCSDealt builds the hybrid, load-balanced SELL-C-σ layout the
// execution engine attaches:
//
//   - heavyCap > 0 diverts rows of at least that degree into fallback
//     slices (see SellCS.Fallback). Heavy rows are packed a few per slice
//     under a per-slice work cap — never all hubs into one slice — and the
//     remaining seats are filled with the lightest rows, so no fallback
//     slice concentrates more than a fraction of a task's fair share of
//     edges. heavyCap <= 0 materializes everything (pure SELL-C-σ).
//
//   - spans > 1 load-balances slices across spans contiguous slice ranges,
//     one per worker task of the eventual launch. Degree sorting
//     concentrates the tall slices at the front of each σ window; a
//     barrier-synchronized launch dealing contiguous chunk ranges to tasks
//     would hand all of them to the first task and stall the rest at every
//     barrier. Dealing reassigns whole slices — greedy longest-processing-
//     time on estimated slice work — so every range carries a near-equal
//     share. Slice membership (and hence padding) is untouched; only the
//     order slices appear in memory changes, which the slice-local cell
//     addressing makes free.
//
// A final partial slice (n not a multiple of C) is pinned to the last
// position so every other slice keeps exactly C rows.
func BuildSellCSDealt(g *CSR, c, sigma, spans, heavyCap int32) (*SellCS, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: sell: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: sell: %w", err)
	}
	if c <= 0 {
		return nil, fmt.Errorf("graph: sell: slice height C must be positive, got %d", c)
	}
	n := g.NumNodes()
	if sigma <= 0 {
		sigma = n
		if sigma < 1 {
			sigma = 1
		}
	}
	s := &SellCS{
		C:       c,
		Sigma:   sigma,
		Perm:    make([]int32, n),
		InvPerm: make([]int32, n),
		n:       n,
		edges:   int64(g.NumEdges()),
	}
	for i := int32(0); i < n; i++ {
		s.Perm[i] = i
	}
	// Stable descending-degree sort inside each σ window keeps the layout
	// deterministic (equal degrees preserve id order) and bounds how far a
	// vertex can move from its original position.
	for w := int32(0); w < n; w += sigma {
		hi := w + sigma
		if hi > n {
			hi = n
		}
		win := s.Perm[w:hi]
		sort.SliceStable(win, func(a, b int) bool {
			return g.Degree(win[a]) > g.Degree(win[b])
		})
	}
	if spans < 1 {
		spans = 1
	}
	s.Spans = spans
	if heavyCap < 0 {
		heavyCap = 0
	}
	s.HeavyCap = heavyCap

	groups := sliceGroups(g, s.Perm, c, spans, heavyCap)
	if spans > 1 {
		groups = dealGroups(groups, spans, c)
	}
	anyFB := false
	flat := make([]int32, 0, n)
	for _, gr := range groups {
		flat = append(flat, gr.rows...)
		if gr.fb {
			anyFB = true
		}
	}
	copy(s.Perm, flat)
	if anyFB {
		s.Fallback = make([]bool, len(groups))
		for i, gr := range groups {
			s.Fallback[i] = gr.fb
		}
	}
	for p, u := range s.Perm {
		s.InvPerm[u] = int32(p)
	}

	numSlices := len(groups)
	s.SlicePtr = make([]int32, numSlices+1)
	var cells int64
	for sl := 0; sl < numSlices; sl++ {
		if s.IsFallback(int32(sl)) {
			for _, u := range groups[sl].rows {
				s.fallbackEdges += int64(g.Degree(u))
			}
			s.SlicePtr[sl+1] = int32(cells)
			continue
		}
		var h int32
		for _, u := range groups[sl].rows {
			if d := g.Degree(u); d > h {
				h = d
			}
		}
		cells += int64(h) * int64(c)
		if cells > math.MaxInt32 {
			return nil, fmt.Errorf("graph: sell: padded layout exceeds %d cells", math.MaxInt32)
		}
		s.SlicePtr[sl+1] = int32(cells)
	}
	s.edges = int64(g.NumEdges()) - s.fallbackEdges

	s.Dst = make([]int32, cells)
	s.EdgeID = make([]int32, cells)
	for i := range s.Dst {
		s.Dst[i] = -1
		s.EdgeID[i] = -1
	}
	if g.Weighted() {
		s.Wt = make([]int32, cells)
	}
	for p := int32(0); p < n; p++ {
		sl := p / c
		if s.IsFallback(sl) {
			continue // adjacency stays in the CSR only
		}
		u := s.Perm[p]
		r := p - sl*c
		cell := s.SlicePtr[sl] + r
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			s.Dst[cell] = g.EdgeDst[e]
			s.EdgeID[cell] = e
			if s.Wt != nil {
				s.Wt[cell] = g.Weight[e]
			}
			cell += c // next column, same row
		}
	}
	return s, nil
}

// sellGroup is one slice-to-be during construction: its rows (C of them,
// except at most one partial group), the estimated per-sweep work the slice
// will cost its task — padded cells for a materialized slice, live edges
// for a fallback slice — and whether it falls back to the CSR loop.
type sellGroup struct {
	rows []int32
	cost int64
	fb   bool
}

// sliceGroups partitions the window-sorted perm into slice groups. With
// heavyCap <= 0 the groups are simply consecutive C-row runs. Otherwise
// rows of degree >= heavyCap become fallback groups: each takes heavy rows
// (in sorted order) until a per-group work cap — half a span's fair share
// of edges — would be exceeded, then fills its remaining seats with the
// lightest rows available, so hub work spreads across many dealable slices
// instead of concentrating in one. Light rows keep their sorted order and
// form the materialized groups.
func sliceGroups(g *CSR, perm []int32, c, spans, heavyCap int32) []sellGroup {
	var groups []sellGroup
	addLight := func(rows []int32) {
		var h int32
		for _, u := range rows {
			if d := g.Degree(u); d > h {
				h = d
			}
		}
		gr := sellGroup{rows: append([]int32(nil), rows...), cost: int64(h) * int64(c)}
		groups = append(groups, gr)
	}

	light := perm
	if heavyCap > 0 {
		var heavy []int32
		light = make([]int32, 0, len(perm))
		for _, u := range perm {
			if g.Degree(u) >= heavyCap {
				heavy = append(heavy, u)
			} else {
				light = append(light, u)
			}
		}
		if len(heavy) > 0 {
			costCap := int64(g.NumEdges()) / int64(2*spans)
			if costCap < 1 {
				costCap = 1
			}
			// Every fallback group consumes C permutation seats, filling
			// spare ones with light rows that then lose their dense
			// materialization. On small graphs the half-fair-share cap can
			// demand more groups than there are slices, degenerating the
			// whole layout to CSR — so bound fallback groups to half the
			// slices and widen the cap to fit the heavy edges in.
			var heavyEdges int64
			for _, u := range heavy {
				heavyEdges += int64(g.Degree(u))
			}
			if maxGroups := int64(len(perm)) / int64(2*c); maxGroups >= 1 &&
				heavyEdges/costCap+1 > maxGroups {
				costCap = heavyEdges/maxGroups + 1
			}
			lt := len(light)
			for hi := 0; hi < len(heavy); {
				gr := sellGroup{fb: true}
				gr.rows = append(gr.rows, heavy[hi])
				gr.cost = int64(g.Degree(heavy[hi]))
				hi++
				for int32(len(gr.rows)) < c && hi < len(heavy) &&
					gr.cost+int64(g.Degree(heavy[hi])) <= costCap {
					gr.rows = append(gr.rows, heavy[hi])
					gr.cost += int64(g.Degree(heavy[hi]))
					hi++
				}
				for int32(len(gr.rows)) < c && lt > 0 {
					lt--
					gr.rows = append(gr.rows, light[lt])
					gr.cost += int64(g.Degree(light[lt]))
				}
				for int32(len(gr.rows)) < c && hi < len(heavy) {
					// Light rows ran out: top up with heavy rows past the
					// cap rather than leave a mid-layout partial slice.
					gr.rows = append(gr.rows, heavy[hi])
					gr.cost += int64(g.Degree(heavy[hi]))
					hi++
				}
				groups = append(groups, gr)
			}
			light = light[:lt]
		}
	}
	for lo := 0; lo < len(light); lo += int(c) {
		hi := lo + int(c)
		if hi > len(light) {
			hi = len(light)
		}
		addLight(light[lo:hi])
	}
	return groups
}

// dealGroups load-balances slice groups across spans contiguous ranges that
// mirror the launch's chunk dealing (ceil(total/spans) slices per range):
// groups are taken costliest-first and each goes to the least-loaded range
// with free slots (ties to the lowest range id, so the result is
// deterministic). The partial group, if any, is pinned to the final slot so
// slice boundaries stay C-aligned.
func dealGroups(groups []sellGroup, spans, c int32) []sellGroup {
	total := int32(len(groups))
	if total <= spans {
		return groups
	}
	partial := -1
	order := make([]int, 0, total)
	for i, gr := range groups {
		if int32(len(gr.rows)) < c {
			partial = i
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return groups[order[a]].cost > groups[order[b]].cost
	})

	per := (total + spans - 1) / spans
	caps := make([]int32, spans)
	for b := int32(0); b < spans; b++ {
		lo, hi := b*per, (b+1)*per
		if hi > total {
			hi = total
		}
		if lo > hi {
			lo = hi
		}
		caps[b] = hi - lo
	}
	if partial >= 0 {
		for b := spans - 1; b >= 0; b-- {
			if caps[b] > 0 {
				caps[b]--
				break
			}
		}
	}

	buckets := make([][]int, spans)
	sums := make([]int64, spans)
	for _, gi := range order {
		best := int32(-1)
		for b := int32(0); b < spans; b++ {
			if caps[b] == 0 {
				continue
			}
			if best < 0 || sums[b] < sums[best] {
				best = b
			}
		}
		buckets[best] = append(buckets[best], gi)
		sums[best] += groups[gi].cost
		caps[best]--
	}

	out := make([]sellGroup, 0, total)
	for _, bucket := range buckets {
		for _, gi := range bucket {
			out = append(out, groups[gi])
		}
	}
	if partial >= 0 {
		out = append(out, groups[partial])
	}
	return out
}

// NumNodes returns the vertex count.
func (s *SellCS) NumNodes() int32 { return s.n }

// NumSlices returns the slice count (the last slice may cover virtual
// all-padding rows when NumNodes is not a multiple of C).
func (s *SellCS) NumSlices() int32 { return int32(len(s.SlicePtr)) - 1 }

// Height returns the column count (padded max degree) of slice sl.
func (s *SellCS) Height(sl int32) int32 {
	return (s.SlicePtr[sl+1] - s.SlicePtr[sl]) / s.C
}

// Cells returns the total cell count including padding.
func (s *SellCS) Cells() int64 { return int64(len(s.Dst)) }

// LiveCells returns the non-padding materialized cell count. For a pure
// layout this is the directed edge count; a hybrid layout keeps fallback-
// slice edges in the CSR only (see FallbackEdges).
func (s *SellCS) LiveCells() int64 { return s.edges }

// IsFallback reports whether slice sl routes to the CSR loop (hybrid
// layouts only; always false for pure layouts).
func (s *SellCS) IsFallback(sl int32) bool { return s.Fallback != nil && s.Fallback[sl] }

// FallbackEdges returns the edges living in fallback slices (zero for pure
// layouts); LiveCells + FallbackEdges equals the graph's edge count.
func (s *SellCS) FallbackEdges() int64 { return s.fallbackEdges }

// FallbackRatio returns the fraction of edges diverted to fallback slices.
func (s *SellCS) FallbackRatio() float64 {
	total := s.edges + s.fallbackEdges
	if total == 0 {
		return 0
	}
	return float64(s.fallbackEdges) / float64(total)
}

// PaddingRatio returns the fraction of cells that are padding, in [0, 1).
func (s *SellCS) PaddingRatio() float64 {
	if len(s.Dst) == 0 {
		return 0
	}
	return float64(s.Cells()-s.edges) / float64(s.Cells())
}

// Overhead returns cells per live edge (the storage multiplier vs CSR's
// edge array); 1.0 means zero padding.
func (s *SellCS) Overhead() float64 {
	if s.edges == 0 {
		if s.Cells() == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(s.Cells()) / float64(s.edges)
}

// FootprintBytes returns the memory footprint of the layout's arrays.
func (s *SellCS) FootprintBytes() int64 {
	total := int64(len(s.Perm)+len(s.InvPerm)+len(s.SlicePtr)+len(s.Dst)+len(s.EdgeID)) * 4
	total += int64(len(s.Wt)) * 4
	return total
}

// Validate checks the layout's structural invariants against its source CSR:
// Perm/InvPerm are mutually inverse permutations, slice extents are
// C-aligned and monotone, every row's live cells are a prefix of its columns
// carrying exactly the CSR adjacency (same order, same edge ids, same
// weights), and padding cells are -1. Errors wrap fault.ErrCorruptGraph.
func (s *SellCS) Validate(g *CSR) error {
	if s.n != g.NumNodes() {
		return corruptf("sell: node count %d != graph %d", s.n, g.NumNodes())
	}
	if s.C <= 0 {
		return corruptf("sell: non-positive C %d", s.C)
	}
	if len(s.Perm) != int(s.n) || len(s.InvPerm) != int(s.n) {
		return corruptf("sell: permutation length %d/%d != %d", len(s.Perm), len(s.InvPerm), s.n)
	}
	for p, u := range s.Perm {
		if u < 0 || u >= s.n {
			return corruptf("sell: perm[%d] = %d out of range", p, u)
		}
		if s.InvPerm[u] != int32(p) {
			return corruptf("sell: invperm[%d] = %d, want %d", u, s.InvPerm[u], p)
		}
	}
	numSlices := int((s.n + s.C - 1) / s.C)
	if len(s.SlicePtr) != numSlices+1 {
		return corruptf("sell: sliceptr length %d, want %d", len(s.SlicePtr), numSlices+1)
	}
	if s.SlicePtr[0] != 0 {
		return corruptf("sell: sliceptr[0] = %d", s.SlicePtr[0])
	}
	if s.Fallback != nil && len(s.Fallback) != numSlices {
		return corruptf("sell: fallback flags for %d slices, want %d", len(s.Fallback), numSlices)
	}
	for sl := 0; sl < numSlices; sl++ {
		span := s.SlicePtr[sl+1] - s.SlicePtr[sl]
		if span < 0 || span%s.C != 0 {
			return corruptf("sell: slice %d spans %d cells, not a multiple of C=%d", sl, span, s.C)
		}
		if s.IsFallback(int32(sl)) && span != 0 {
			return corruptf("sell: fallback slice %d materializes %d cells", sl, span)
		}
	}
	if int(s.SlicePtr[numSlices]) != len(s.Dst) || len(s.EdgeID) != len(s.Dst) {
		return corruptf("sell: cell arrays %d/%d cells, sliceptr says %d",
			len(s.Dst), len(s.EdgeID), s.SlicePtr[numSlices])
	}
	if s.Wt != nil && len(s.Wt) != len(s.Dst) {
		return corruptf("sell: weight cells %d != %d", len(s.Wt), len(s.Dst))
	}
	var live, fbLive int64
	for p := int32(0); p < s.n; p++ {
		u := s.Perm[p]
		sl := p / s.C
		if s.IsFallback(sl) {
			fbLive += int64(g.Degree(u))
			continue
		}
		h := s.Height(sl)
		deg := g.Degree(u)
		if deg > h {
			return corruptf("sell: row %d (vertex %d) degree %d exceeds slice height %d", p, u, deg, h)
		}
		cell := s.SlicePtr[sl] + (p - sl*s.C)
		for j := int32(0); j < h; j++ {
			dst, eid := s.Dst[cell], s.EdgeID[cell]
			if j < deg {
				e := g.RowPtr[u] + j
				if eid != e {
					return corruptf("sell: vertex %d column %d edge id %d, want %d", u, j, eid, e)
				}
				if dst != g.EdgeDst[e] {
					return corruptf("sell: vertex %d column %d dst %d, want %d", u, j, dst, g.EdgeDst[e])
				}
				if s.Wt != nil && s.Wt[cell] != g.Weight[e] {
					return corruptf("sell: vertex %d column %d weight %d, want %d", u, j, s.Wt[cell], g.Weight[e])
				}
				live++
			} else if dst != -1 || eid != -1 {
				return corruptf("sell: vertex %d padding column %d holds %d/%d", u, j, dst, eid)
			}
			cell += s.C
		}
	}
	if live != s.edges {
		return corruptf("sell: %d live cells, want %d", live, s.edges)
	}
	if fbLive != s.fallbackEdges {
		return corruptf("sell: %d fallback edges, want %d", fbLive, s.fallbackEdges)
	}
	if live+fbLive != int64(g.NumEdges()) {
		return corruptf("sell: %d+%d cells cover %d graph edges", live, fbLive, g.NumEdges())
	}
	return nil
}

// DegreeSummary describes a graph's degree distribution; the layout layer
// uses it to explain padding and slice-height behavior from the CLI.
type DegreeSummary struct {
	Min, Median, P99, Max int32
	Avg                   float64
}

// DegreeSummary computes min/median/p99/max/avg degree.
func (g *CSR) DegreeSummary() DegreeSummary {
	n := g.NumNodes()
	if n == 0 {
		return DegreeSummary{}
	}
	degs := make([]int32, n)
	for i := int32(0); i < n; i++ {
		degs[i] = g.Degree(i)
	}
	sort.Slice(degs, func(a, b int) bool { return degs[a] < degs[b] })
	p99 := int(n) * 99 / 100
	if p99 >= int(n) {
		p99 = int(n) - 1
	}
	return DegreeSummary{
		Min:    degs[0],
		Median: degs[n/2],
		P99:    degs[p99],
		Max:    degs[n-1],
		Avg:    float64(g.NumEdges()) / float64(n),
	}
}
