package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
)

// MutStore is the durable half of the mutation pipeline: a directory holding
// one graph snapshot plus a sequence of WAL segments, with crash-consistent
// append, recovery, and compaction.
//
// Directory layout:
//
//	snapshot.bin          EGSN header (epoch, folded seq) + CSR1 graph
//	wal-<firstseq>.log    delta-log segments, named by their first batch seq
//
// Durability contract:
//
//   - Append encodes the batch, writes it to the active segment, and —
//     subject to the group-commit policy — fsyncs before returning. A batch
//     is "acked" only after Append returns nil. With FsyncEvery=1 every ack
//     implies an fsync, so kill-anywhere recovery asserts every acked batch
//     survives and an unacked tail batch either survives whole or truncates
//     away; larger intervals ack up to FsyncEvery-1 batches before their
//     fsync (Synced reports the gap), trading that tail for throughput.
//   - Compact writes the folded snapshot to a temp file, fsyncs it, renames
//     it over snapshot.bin, fsyncs the directory, then starts a fresh
//     segment and prunes segments entirely at or below the folded seq. A
//     crash between any two of those steps recovers: the rename is the
//     atomic commit point, and replay skips folded batches by sequence.
//   - Open replays snapshot + segments. A torn tail on the FINAL segment is
//     repaired by truncation; any corruption elsewhere is a typed error
//     (*fault.WALError or fault.ErrCorruptGraph) — never a panic, never a
//     silently divergent graph.
type MutStore struct {
	mu  sync.Mutex
	dir string

	delta *Delta
	epoch uint64 // snapshot generation, bumped by every Compact

	seg       *os.File // active WAL segment
	segStart  uint64   // first batch seq the active segment may hold
	segBytes  int64
	walBytes  int64 // bytes across all live segments
	unsynced  int   // appended-but-not-fsynced batches
	fsyncEach int   // group-commit knob: fsync every N appends (≥1)

	appends  int64
	syncs    int64
	replayed int // batches replayed by Open
	truncs   int // torn tails repaired by Open
}

// Snapshot file header, preceding the embedded CSR1 payload:
//
//	magic  [4]byte "EGSN"
//	crc    uint32  CRC32-Castagnoli of the following 16 header bytes
//	epoch  uint64
//	seq    uint64  last batch folded into the embedded graph
var snapMagic = [4]byte{'E', 'G', 'S', 'N'}

const snapName = "snapshot.bin"

// walSegName names the segment whose first batch is seq.
func walSegName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.log", seq)
}

// isSnapTmp matches the CreateTemp pattern writeSnapshot uses for the
// not-yet-committed snapshot.
func isSnapTmp(name string) bool {
	return strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".tmp")
}

// parseSegName extracts the first-seq from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// StoreOptions configure a MutStore.
type StoreOptions struct {
	// FsyncEvery is the group-commit interval: fsync after every Nth
	// appended batch. 1 (the default) syncs every append — full durability;
	// larger values trade the tail of unsynced batches for throughput.
	FsyncEvery int
}

// CreateMutStore initialises dir (which must be empty or absent) with a
// snapshot of g at epoch 1, seq 0, and an empty first segment.
func CreateMutStore(dir string, g *CSR, opts StoreOptions) (*MutStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graph: mutstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("graph: mutstore: %w", err)
	}
	for _, e := range entries {
		// A crash during a previous creation attempt (after CreateTemp,
		// before the rename commit point) leaves snapshot-*.tmp behind with
		// no snapshot.bin. The temp file holds nothing durable, so clear it
		// instead of refusing to start.
		if isSnapTmp(e.Name()) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("graph: mutstore: %w", err)
			}
			continue
		}
		return nil, fmt.Errorf("graph: mutstore: directory %s not empty (%s)", dir, e.Name())
	}
	s := &MutStore{dir: dir, epoch: 1, fsyncEach: opts.FsyncEvery}
	if s.fsyncEach < 1 {
		s.fsyncEach = 1
	}
	if err := s.writeSnapshot(g, 1, 0); err != nil {
		return nil, err
	}
	s.delta = NewDelta(g, 0)
	if err := s.openSegment(1); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenMutStore recovers a store from dir: the snapshot is loaded, every
// segment is replayed in order (skipping batches already folded into the
// snapshot), a torn tail on the final segment is truncated away, and the
// store resumes appending where the log left off.
func OpenMutStore(dir string, opts StoreOptions) (*MutStore, error) {
	s := &MutStore{dir: dir, fsyncEach: opts.FsyncEvery}
	if s.fsyncEach < 1 {
		s.fsyncEach = 1
	}
	g, epoch, snapSeq, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	s.epoch = epoch
	s.delta = NewDelta(g, snapSeq)

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		path := filepath.Join(dir, seg.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("graph: mutstore: %w", err)
		}
		rep, err := ReplayDeltaLog(data, g.NumNodes(), snapSeq)
		if err != nil {
			return nil, fmt.Errorf("graph: mutstore: segment %s: %w", seg.name, err)
		}
		if rep.Truncated {
			// A torn tail is only a crash signature on the newest segment;
			// anywhere else the log lost synced data.
			if i != len(segs)-1 {
				return nil, &fault.WALError{
					Record: len(rep.Offsets), Offset: rep.ValidBytes, Rule: "length",
					Detail: fmt.Sprintf("torn record in non-final segment %s", seg.name),
				}
			}
			if err := os.Truncate(path, rep.ValidBytes); err != nil {
				return nil, fmt.Errorf("graph: mutstore: repairing %s: %w", seg.name, err)
			}
			s.truncs++
		}
		for _, b := range rep.Batches {
			if err := s.delta.Apply(b); err != nil {
				return nil, fmt.Errorf("graph: mutstore: segment %s: %w", seg.name, err)
			}
			s.replayed++
		}
		s.walBytes += rep.ValidBytes
	}
	// Resume the newest segment, or start a fresh one when none exist (e.g.
	// a crash between snapshot rename and segment creation during Compact).
	if len(segs) == 0 {
		if err := s.openSegment(s.delta.LastSeq() + 1); err != nil {
			return nil, err
		}
		return s, nil
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graph: mutstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: mutstore: %w", err)
	}
	s.seg, s.segStart, s.segBytes = f, last.seq, st.Size()
	return s, nil
}

type segInfo struct {
	name string
	seq  uint64
}

// listSegments returns dir's WAL segments sorted by first-seq.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("graph: mutstore: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segInfo{e.Name(), seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// writeSnapshot atomically persists (g, epoch, seq) as snapshot.bin: temp
// file, fsync, rename, directory fsync. The rename is the commit point.
func (s *MutStore) writeSnapshot(g *CSR, epoch, seq uint64) error {
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	hdr := make([]byte, 24)
	copy(hdr, snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(hdr[8:24], walCRC))
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	if err := WriteBinary(tmp, g); err != nil {
		tmp.Close()
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	Crashpoint("snapshot-written")
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	Crashpoint("snapshot-renamed")
	return nil
}

// readSnapshot loads snapshot.bin, returning the graph, epoch and folded seq.
func readSnapshot(path string) (*CSR, uint64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("graph: mutstore: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, 0, corruptf("graph: mutstore: snapshot header: %v", err)
	}
	if [4]byte(hdr[:4]) != snapMagic {
		return nil, 0, 0, corruptf("graph: mutstore: snapshot magic %q", hdr[:4])
	}
	if got := crc32.Checksum(hdr[8:24], walCRC); got != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, 0, 0, corruptf("graph: mutstore: snapshot header checksum mismatch")
	}
	epoch := binary.LittleEndian.Uint64(hdr[8:])
	seq := binary.LittleEndian.Uint64(hdr[16:])
	g, err := ReadBinary(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("graph: mutstore: snapshot graph: %w", err)
	}
	return g, epoch, seq, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	return nil
}

// openSegment starts a fresh segment whose first batch will be seq.
func (s *MutStore) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, walSegName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("graph: mutstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.seg, s.segStart, s.segBytes = f, seq, 0
	return nil
}

// Append assigns the next batch sequence to ops, writes the record to the
// active segment, applies it to the in-memory overlay, and — per the
// group-commit policy — fsyncs. On nil return the batch is acked: it is
// applied in memory and (when the policy synced) durable.
func (s *MutStore) Append(ops []MutOp) (Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := Batch{Seq: s.delta.LastSeq() + 1, Ops: ops}
	// Validate before touching the log so a bad batch leaves no trace. The
	// size cap is load-bearing: a record above MaxWALBatchOps would encode,
	// fsync and ack fine, but replay rejects its length as corruption —
	// acking it would brick every later boot.
	if len(ops) > MaxWALBatchOps {
		return Batch{}, corruptf("graph: mutation batch of %d ops exceeds the WAL record limit %d", len(ops), MaxWALBatchOps)
	}
	for _, op := range ops {
		if err := s.delta.ValidateOp(op); err != nil {
			return Batch{}, err
		}
	}
	rec := EncodeBatch(b)
	Crashpoint("append-pre-write")
	if _, err := s.seg.Write(rec); err != nil {
		return Batch{}, fmt.Errorf("graph: mutstore: append: %w", err)
	}
	s.segBytes += int64(len(rec))
	s.walBytes += int64(len(rec))
	s.unsynced++
	s.appends++
	Crashpoint("append-pre-sync")
	if s.unsynced >= s.fsyncEach {
		if err := s.seg.Sync(); err != nil {
			return Batch{}, fmt.Errorf("graph: mutstore: sync: %w", err)
		}
		s.unsynced = 0
		s.syncs++
	}
	Crashpoint("append-post-sync")
	if err := s.delta.Apply(b); err != nil {
		// Unreachable when validation above passed; surface rather than hide.
		return Batch{}, err
	}
	Crashpoint("applied")
	return b, nil
}

// Synced reports whether every acked batch has reached disk — false only
// between a group-commit interval's appends and its fsync (FsyncEvery > 1).
func (s *MutStore) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unsynced == 0
}

// Sync forces any unsynced appends to disk (the group-commit flush).
func (s *MutStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *MutStore) syncLocked() error {
	if s.unsynced == 0 {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("graph: mutstore: sync: %w", err)
	}
	s.unsynced = 0
	s.syncs++
	return nil
}

// Compact folds the pending delta into a fresh CSR, runs the optional gate
// against it, persists it as the new snapshot (next epoch), rotates to a
// fresh segment, and prunes segments wholly covered by the snapshot.
// Returns the folded graph and its epoch. On any error — including a gate
// rejection — the store is unchanged: nothing is persisted, the delta stays
// pending, and the old snapshot plus WAL still recover every acked batch.
func (s *MutStore) Compact(gate func(*CSR) error) (*CSR, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.syncLocked(); err != nil {
		return nil, 0, err
	}
	g, err := s.delta.Compact()
	if err != nil {
		return nil, 0, err
	}
	Crashpoint("compact-built")
	if gate != nil {
		if err := gate(g); err != nil {
			return nil, 0, err
		}
	}
	seq := s.delta.LastSeq()
	if err := s.writeSnapshot(g, s.epoch+1, seq); err != nil {
		return nil, 0, err
	}
	s.epoch++
	Crashpoint("compact-persisted")
	// Rotate: later appends land in a segment that starts past the snapshot.
	old := s.seg
	if err := s.openSegment(seq + 1); err != nil {
		s.seg = old // keep appending to the old segment; recovery still works
		return nil, 0, err
	}
	old.Close()
	Crashpoint("rotate")
	// Prune segments whose every batch is ≤ seq: a segment is prunable when
	// the NEXT segment starts at or below seq+1 (so it holds nothing newer).
	segs, err := listSegments(s.dir)
	if err == nil {
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].seq <= seq+1 {
				os.Remove(filepath.Join(s.dir, segs[i].name))
			}
		}
	}
	s.recountWALBytes()
	Crashpoint("pruned")
	s.delta = NewDelta(g, seq)
	return g, s.epoch, nil
}

// recountWALBytes refreshes walBytes from the live segment files.
func (s *MutStore) recountWALBytes() {
	segs, err := listSegments(s.dir)
	if err != nil {
		return
	}
	var total int64
	for _, seg := range segs {
		if st, err := os.Stat(filepath.Join(s.dir, seg.name)); err == nil {
			total += st.Size()
		}
	}
	s.walBytes = total
}

// Delta returns the live overlay. Callers must not mutate it concurrently
// with Append/Compact; the serving layer reads it only under its own swap
// lock.
func (s *MutStore) Delta() *Delta { return s.delta }

// Epoch returns the snapshot generation (1 for a virgin store).
func (s *MutStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Stats is a telemetry snapshot of the store.
type Stats struct {
	Epoch      uint64
	LastSeq    uint64
	Pending    int   // applied-but-uncompacted batches
	WALBytes   int64 // bytes across live segments
	Appends    int64
	Syncs      int64
	Unsynced   int // acked batches awaiting their group-commit fsync
	Replayed   int // batches replayed by Open
	Truncated  int // torn tails repaired by Open
	SegmentSeq uint64
}

// Stats returns current counters.
func (s *MutStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Epoch:      s.epoch,
		LastSeq:    s.delta.LastSeq(),
		Pending:    s.delta.Batches(),
		WALBytes:   s.walBytes,
		Appends:    s.appends,
		Syncs:      s.syncs,
		Unsynced:   s.unsynced,
		Replayed:   s.replayed,
		Truncated:  s.truncs,
		SegmentSeq: s.segStart,
	}
}

// Close syncs and releases the active segment.
func (s *MutStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.syncLocked()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}
