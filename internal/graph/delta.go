package graph

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Mutation ops. The delta layer supports edge inserts and deletes only: the
// node set is fixed for the life of a served graph, which is what keeps the
// SELL-C-σ reorder-not-renumber contract (and every cached per-node array in
// the serving stack) valid across mutations.
const (
	OpInsert byte = 1
	OpDelete byte = 2
)

// MutOp is one edge mutation. Insert appends the edge (Src,Dst) with weight
// W to Src's adjacency row; Delete removes every (Src,Dst) edge currently
// present. W is ignored (forced to 1) on deletes and on unweighted graphs.
type MutOp struct {
	Op  byte
	Src int32
	Dst int32
	W   int32
}

func (op MutOp) String() string {
	if op.Op == OpDelete {
		return fmt.Sprintf("- %d %d", op.Src, op.Dst)
	}
	return fmt.Sprintf("+ %d %d %d", op.Src, op.Dst, op.W)
}

// Batch is one atomically-applied group of mutations. Seq is the batch's
// position in the mutation stream: strictly increasing, assigned by the WAL
// appender, and the idempotency key on replay.
type Batch struct {
	Seq uint64
	Ops []MutOp
}

// dedge is one overlay adjacency entry.
type dedge struct{ dst, w int32 }

// Delta is a mutation overlay over an immutable base CSR: batched edge
// inserts and deletes accumulate against the shared base without rebuilding
// it, and Compact folds them into a fresh CSR off the serving path.
//
// Semantics are copy-on-touch: the first mutation against a source node
// copies that node's base adjacency row into the overlay; later ops edit the
// working row in order. Untouched rows alias the base. The final row
// contents therefore depend only on the op sequence, not on when (or how
// often) Compact is called — the property the kill-anywhere recovery tests
// pin: replaying a WAL against a fresh Delta yields a bit-identical CSR no
// matter where the original process was interrupted.
//
// Delta is not safe for concurrent use; callers serialize Apply/Compact.
type Delta struct {
	base *CSR
	rows map[int32][]dedge // working rows, keyed by source node

	baseSeq uint64 // batches ≤ baseSeq are already folded into base
	lastSeq uint64 // last applied batch

	batches   int
	inserts   int
	deletes   int // edges actually removed
	noDeletes int // delete ops that matched nothing (no-ops, counted for telemetry)
	edges     int64
}

// NewDelta returns an empty overlay for base. baseSeq is the last batch
// sequence already folded into base (0 for a virgin graph); Apply rejects
// batches at or below it.
func NewDelta(base *CSR, baseSeq uint64) *Delta {
	return &Delta{
		base:    base,
		rows:    make(map[int32][]dedge),
		baseSeq: baseSeq,
		lastSeq: baseSeq,
		edges:   int64(base.NumEdges()),
	}
}

// Base returns the CSR the overlay mutates against.
func (d *Delta) Base() *CSR { return d.base }

// LastSeq returns the last applied batch sequence.
func (d *Delta) LastSeq() uint64 { return d.lastSeq }

// Batches returns the number of applied (pending, unfolded) batches.
func (d *Delta) Batches() int { return d.batches }

// Pending returns the number of applied but not yet compacted ops.
func (d *Delta) Pending() int { return d.inserts + d.deletes + d.noDeletes }

// Inserts and Deletes return applied op counts; NoopDeletes the deletes
// that matched no edge.
func (d *Delta) Inserts() int     { return d.inserts }
func (d *Delta) Deletes() int     { return d.deletes }
func (d *Delta) NoopDeletes() int { return d.noDeletes }

// NumEdges returns the edge count of the overlaid graph.
func (d *Delta) NumEdges() int64 { return d.edges }

// ValidateOp checks one mutation against the overlay's fixed node set.
// Violations wrap fault.ErrCorruptGraph (the op references structure that
// cannot exist).
func (d *Delta) ValidateOp(op MutOp) error {
	return ValidateMutOp(op, d.base.NumNodes())
}

// ValidateMutOp checks op codes and node ranges for a graph of n nodes.
func ValidateMutOp(op MutOp, n int32) error {
	if op.Op != OpInsert && op.Op != OpDelete {
		return corruptf("graph: mutation op code %d (want %d insert / %d delete)", op.Op, OpInsert, OpDelete)
	}
	if op.Src < 0 || op.Src >= n || op.Dst < 0 || op.Dst >= n {
		return corruptf("graph: mutation edge (%d,%d) outside node range [0,%d)", op.Src, op.Dst, n)
	}
	return nil
}

// row returns the working adjacency row for src, copying the base row on
// first touch.
func (d *Delta) row(src int32) []dedge {
	if r, ok := d.rows[src]; ok {
		return r
	}
	lo, hi := d.base.RowPtr[src], d.base.RowPtr[src+1]
	r := make([]dedge, 0, (hi-lo)+4)
	for e := lo; e < hi; e++ {
		r = append(r, dedge{d.base.EdgeDst[e], d.base.EdgeWeight(e)})
	}
	return r
}

// Apply validates and applies one batch to the overlay. Batches must arrive
// in strictly increasing Seq order; a batch at or below the last applied
// sequence is rejected (the WAL replay layer, not Delta, is where duplicate
// suppression lives). A validation failure applies nothing: the batch is
// checked completely before the first op mutates the overlay.
func (d *Delta) Apply(b Batch) error {
	if b.Seq <= d.lastSeq {
		return corruptf("graph: batch seq %d not above last applied %d", b.Seq, d.lastSeq)
	}
	for _, op := range b.Ops {
		if err := d.ValidateOp(op); err != nil {
			return fmt.Errorf("batch %d: %w", b.Seq, err)
		}
	}
	for _, op := range b.Ops {
		r := d.row(op.Src)
		if op.Op == OpInsert {
			w := op.W
			if !d.base.Weighted() {
				w = 1
			}
			r = append(r, dedge{op.Dst, w})
			d.inserts++
			d.edges++
		} else {
			removed := 0
			kept := r[:0]
			for _, e := range r {
				if e.dst == op.Dst {
					removed++
					continue
				}
				kept = append(kept, e)
			}
			r = kept
			if removed == 0 {
				d.noDeletes++
			} else {
				d.deletes += removed
				d.edges -= int64(removed)
			}
		}
		d.rows[op.Src] = r
	}
	d.lastSeq = b.Seq
	d.batches++
	return nil
}

// Touched returns the sorted source nodes whose adjacency rows the overlay
// has modified — the seed set for incremental recomputation (pr-delta).
func (d *Delta) Touched() []int32 {
	out := make([]int32, 0, len(d.rows))
	for n := range d.rows {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the out-degree of n in the overlaid graph.
func (d *Delta) Degree(n int32) int32 {
	if r, ok := d.rows[n]; ok {
		return int32(len(r))
	}
	return d.base.Degree(n)
}

// Neighbors returns the destination list of n in the overlaid graph. The
// slice is freshly allocated for touched rows and aliases the base
// otherwise; treat it as read-only.
func (d *Delta) Neighbors(n int32) []int32 {
	r, ok := d.rows[n]
	if !ok {
		return d.base.Neighbors(n)
	}
	out := make([]int32, len(r))
	for i, e := range r {
		out[i] = e.dst
	}
	return out
}

// Compact folds the overlay into a fresh CSR: untouched rows copy from the
// base, touched rows materialize their working lists. The result validates
// before returning; the overlay itself is unchanged (the caller decides when
// to retire it), so a failed downstream gate can keep both the old base and
// the pending delta.
func (d *Delta) Compact() (*CSR, error) {
	n := d.base.NumNodes()
	if d.edges >= 1<<31 {
		return nil, corruptf("graph: overlaid edge count %d exceeds the 32-bit index limit", d.edges)
	}
	rowPtr := make([]int32, n+1)
	for i := int32(0); i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + d.Degree(i)
	}
	m := rowPtr[n]
	dst := make([]int32, m)
	var w []int32
	if d.base.Weighted() {
		w = make([]int32, m)
	}
	for i := int32(0); i < n; i++ {
		p := rowPtr[i]
		if r, ok := d.rows[i]; ok {
			for _, e := range r {
				dst[p] = e.dst
				if w != nil {
					w[p] = e.w
				}
				p++
			}
			continue
		}
		lo, hi := d.base.RowPtr[i], d.base.RowPtr[i+1]
		copy(dst[p:], d.base.EdgeDst[lo:hi])
		if w != nil {
			copy(w[p:], d.base.Weight[lo:hi])
		}
	}
	g := &CSR{Name: d.base.Name, RowPtr: rowPtr, EdgeDst: dst, Weight: w}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: compacted delta: %w", err)
	}
	return g, nil
}

// Hash returns a structural FNV-1a fingerprint of a CSR — the bit-identity
// witness of the crash-recovery tests and the /graphz endpoint. Two CSRs
// hash equal iff RowPtr, EdgeDst, Weight and the weighted flag match
// exactly.
func Hash(g *CSR) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	word := func(v int32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	word(g.NumNodes())
	for _, v := range g.RowPtr {
		word(v)
	}
	for _, v := range g.EdgeDst {
		word(v)
	}
	if g.Weight != nil {
		word(1)
		for _, v := range g.Weight {
			word(v)
		}
	}
	return h.Sum64()
}

// --- mutation-stream text format ---
//
// One op per line, '#' comments and blank lines ignored:
//
//	+ src dst [w]    insert edge (weight defaults to 1)
//	- src dst        delete all (src,dst) edges
//
// The format is shared by graphgen -mutations, egacs -mutations and the
// chaos/bench harnesses, so every consumer replays the same stream.

// WriteMutations writes ops in the text mutation-stream format.
func WriteMutations(w io.Writer, ops []MutOp) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintln(bw, op.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxMutationOps bounds a parsed mutation stream; a corrupt or adversarial
// file cannot demand unbounded memory.
const maxMutationOps = 1 << 26

// ParseMutations reads a text mutation stream, validating every op against
// an n-node graph. Malformed lines and out-of-range ops wrap
// fault.ErrCorruptGraph.
func ParseMutations(r io.Reader, n int32) ([]MutOp, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var ops []MutOp
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(ops) >= maxMutationOps {
			return nil, corruptf("graph: mutation stream longer than %d ops", maxMutationOps)
		}
		fields := strings.Fields(line)
		op := MutOp{W: 1}
		switch fields[0] {
		case "+":
			op.Op = OpInsert
			if len(fields) != 3 && len(fields) != 4 {
				return nil, corruptf("graph: mutation line %d: want '+ src dst [w]', got %q", lineNo, line)
			}
		case "-":
			op.Op = OpDelete
			if len(fields) != 3 {
				return nil, corruptf("graph: mutation line %d: want '- src dst', got %q", lineNo, line)
			}
		default:
			return nil, corruptf("graph: mutation line %d: unknown op %q", lineNo, fields[0])
		}
		vals := make([]int32, 0, 3)
		for _, f := range fields[1:] {
			var v int64
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil || v < -(1<<31) || v >= 1<<31 {
				return nil, corruptf("graph: mutation line %d: bad number %q", lineNo, f)
			}
			vals = append(vals, int32(v))
		}
		op.Src, op.Dst = vals[0], vals[1]
		if len(vals) == 3 {
			op.W = vals[2]
		}
		if err := ValidateMutOp(op, n); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: mutation stream: %w", err)
	}
	return ops, nil
}
