package graph

import "testing"

func bfsHops(g *CSR, src int32) []int32 {
	lvl := make([]int32, g.NumNodes())
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[src] = 0
	q := []int32{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Neighbors(u) {
			if lvl[v] < 0 {
				lvl[v] = lvl[u] + 1
				q = append(q, v)
			}
		}
	}
	return lvl
}

func maxHops(g *CSR, src int32) int32 {
	var m int32
	for _, l := range bfsHops(g, src) {
		if l > m {
			m = l
		}
	}
	return m
}

func TestSmallWorldProperties(t *testing.T) {
	// beta=0: pure ring lattice, diameter ~ n/(2k).
	ring := SmallWorld(512, 2, 0, 8, 3)
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every node of the unrewired lattice has degree 2k (undirected -> 2k
	// out-edges after mirroring).
	for n := int32(0); n < ring.NumNodes(); n++ {
		if ring.Degree(n) != 4 {
			t.Fatalf("ring node %d degree %d, want 4", n, ring.Degree(n))
		}
	}
	// Rewiring shrinks the diameter dramatically (the small-world effect).
	rewired := SmallWorld(512, 2, 0.1, 8, 3)
	if err := rewired.Validate(); err != nil {
		t.Fatal(err)
	}
	dRing, dRw := maxHops(ring, 0), maxHops(rewired, 0)
	if dRing < 64 {
		t.Errorf("ring diameter %d suspiciously small", dRing)
	}
	if dRw*4 > dRing {
		t.Errorf("rewired diameter %d not far below ring's %d", dRw, dRing)
	}
	// Symmetric by construction.
	for _, e := range rewired.Edges() {
		found := false
		for _, d := range rewired.Neighbors(e.Dst) {
			if d == e.Src {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d-%d not mirrored", e.Src, e.Dst)
		}
	}
}

func TestPreferentialAttachmentProperties(t *testing.T) {
	g := PreferentialAttachment(2048, 4, 8, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scale-free: heavy right tail.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Errorf("BA max degree %d vs avg %.1f: not heavy-tailed", g.MaxDegree(), g.AvgDegree())
	}
	// Connected (attachment always links new nodes to the existing graph).
	for i, l := range bfsHops(g, 0) {
		if l < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
	// Early nodes accumulate higher degree than late arrivals on average
	// (the rich-get-richer signature).
	var early, late float64
	n := g.NumNodes()
	for i := int32(0); i < n/10; i++ {
		early += float64(g.Degree(i))
		late += float64(g.Degree(n - 1 - i))
	}
	if early <= late {
		t.Errorf("early-node degree mass %.0f not above late %.0f", early, late)
	}
}

func TestGenExtraDeterministic(t *testing.T) {
	a := PreferentialAttachment(256, 3, 8, 7)
	b := PreferentialAttachment(256, 3, 8, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for i := range a.EdgeDst {
		if a.EdgeDst[i] != b.EdgeDst[i] {
			t.Fatal("same seed, different edges")
		}
	}
	c := SmallWorld(64, 2, 0.5, 8, 1)
	d := SmallWorld(64, 2, 0.5, 8, 2)
	same := c.NumEdges() == d.NumEdges()
	if same {
		for i := range c.EdgeDst {
			if c.EdgeDst[i] != d.EdgeDst[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical small-world graphs")
	}
}

func TestPAParameterClamping(t *testing.T) {
	g := PreferentialAttachment(2, 5, 1, 1) // n < m+1 clamps n
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Errorf("clamped nodes = %d, want m+1=6", g.NumNodes())
	}
	sw := SmallWorld(16, 0, 0, 1, 1) // k clamps to 1
	if sw.NumEdges() == 0 {
		t.Error("k-clamped small world has no edges")
	}
}
