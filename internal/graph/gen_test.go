package graph

import (
	"sort"
	"testing"
)

func TestRoadProperties(t *testing.T) {
	g := Road(16, 16, 64, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 256 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Road graphs are symmetric by construction.
	for _, e := range g.Edges() {
		found := false
		for _, d := range g.Neighbors(e.Dst) {
			if d == e.Src {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d->%d not mirrored", e.Src, e.Dst)
		}
	}
	// Low uniform degree: max degree is tiny (grid + occasional diagonal).
	if g.MaxDegree() > 8 {
		t.Errorf("road max degree = %d, want <= 8", g.MaxDegree())
	}
	if g.AvgDegree() < 3 || g.AvgDegree() > 5 {
		t.Errorf("road avg degree = %v, want ~4", g.AvgDegree())
	}
	// Weights in range.
	for _, w := range g.Weight {
		if w < 1 || w > 64 {
			t.Fatalf("weight %d out of [1,64]", w)
		}
	}
}

func TestRoadConnected(t *testing.T) {
	g := Road(10, 10, 8, 7)
	// BFS from 0 must reach every node (grid is connected).
	seen := make([]bool, g.NumNodes())
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(n) {
			if !seen[d] {
				seen[d] = true
				count++
				queue = append(queue, d)
			}
		}
	}
	if count != int(g.NumNodes()) {
		t.Fatalf("road graph disconnected: reached %d of %d", count, g.NumNodes())
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(10, 8, 64, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1024 || g.NumEdges() != 8192 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	// Skew: the max degree must dwarf the average (scale-free shape).
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Errorf("rmat not skewed: max %d vs avg %v", g.MaxDegree(), g.AvgDegree())
	}
	// And a large fraction of nodes should have below-average degree.
	below := 0
	for n := int32(0); n < g.NumNodes(); n++ {
		if float64(g.Degree(n)) < g.AvgDegree() {
			below++
		}
	}
	if float64(below) < 0.55*float64(g.NumNodes()) {
		t.Errorf("rmat degree distribution not heavy-tailed: %d/%d below average", below, g.NumNodes())
	}
}

func TestRandomProperties(t *testing.T) {
	g := Random(1000, 8000, 64, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 || g.NumEdges() != 8000 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	// Uniform: max degree within a small factor of average (Chernoff).
	if float64(g.MaxDegree()) > 4*g.AvgDegree() {
		t.Errorf("random graph too skewed: max %d vs avg %v", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT(8, 4, 16, 42)
	b := RMAT(8, 4, 16, 42)
	c := RMAT(8, 4, 16, 43)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.EdgeDst {
		if a.EdgeDst[i] != b.EdgeDst[i] || a.Weight[i] != b.Weight[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	same := true
	for i := range a.EdgeDst {
		if i < len(c.EdgeDst) && a.EdgeDst[i] != c.EdgeDst[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestAdjacencySortedByGenerators(t *testing.T) {
	for _, g := range Suite(ScaleTest, 9) {
		for n := int32(0); n < g.NumNodes(); n++ {
			nb := g.Neighbors(n)
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				t.Fatalf("%s node %d adjacency unsorted", g.Name, n)
			}
		}
	}
}

func TestSuiteScales(t *testing.T) {
	for _, s := range []Scale{ScaleTest, ScaleSmall, ScaleBench} {
		gs := Suite(s, 1)
		if len(gs) != 3 {
			t.Fatalf("scale %d: %d graphs", s, len(gs))
		}
		for _, g := range gs {
			if err := g.Validate(); err != nil {
				t.Fatalf("scale %d %s: %v", s, g.Name, err)
			}
		}
	}
	// Sizes increase with scale.
	if Suite(ScaleSmall, 1)[0].NumNodes() <= Suite(ScaleTest, 1)[0].NumNodes() {
		t.Error("scales not increasing")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := newRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
		n := r.intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("intn out of range: %v", n)
		}
	}
}
