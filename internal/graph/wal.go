package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fault"
)

// Write-ahead delta log: the durable form of the mutation stream. Each
// record is one Batch, length-prefixed and CRC-checksummed:
//
//	length  uint32  payload byte count
//	crc     uint32  CRC32-Castagnoli of the payload
//	payload:
//	  seq   uint64  batch sequence (strictly increasing, the idempotency key)
//	  count uint32  op count
//	  ops   count × { op uint8 | src int32 | dst int32 | w int32 }
//
// All integers little-endian. The format has no file header: a log is any
// concatenation of records, so segments concatenate and an empty file is an
// empty log.
//
// Replay contract (the crash-consistency core, pinned by the
// kill-anywhere tests):
//
//   - A record that extends past the end of the log, or whose checksum
//     fails on the FINAL record, is a torn tail — the expected signature of
//     a crash mid-append. Replay repairs it by truncation: every record
//     before it is returned, the tail is reported, nothing errors.
//   - A checksum mismatch, bad op code, out-of-range node id or
//     batch-sequence gap anywhere NOT at the tail is corruption: replay
//     stops with a typed *fault.WALError wrapping fault.ErrWALCorrupt.
//     It never panics and never returns partially-decoded garbage.
//   - A record whose sequence is at or below the highest already seen is a
//     duplicated batch (a replayed append): it is skipped, counted, and
//     never double-applied.

// walOpBytes is the encoded size of one MutOp.
const walOpBytes = 13

// walHeaderBytes is the record header size (length + crc).
const walHeaderBytes = 8

// walPayloadHeader is the payload's fixed prefix (seq + count).
const walPayloadHeader = 12

// MaxWALBatchOps bounds the op count of a single record; a corrupt length
// field cannot demand an absurd allocation.
const MaxWALBatchOps = 1 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeBatch renders one batch as a WAL record.
func EncodeBatch(b Batch) []byte {
	payload := make([]byte, walPayloadHeader+walOpBytes*len(b.Ops))
	binary.LittleEndian.PutUint64(payload[0:], b.Seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(b.Ops)))
	at := walPayloadHeader
	for _, op := range b.Ops {
		payload[at] = op.Op
		binary.LittleEndian.PutUint32(payload[at+1:], uint32(op.Src))
		binary.LittleEndian.PutUint32(payload[at+5:], uint32(op.Dst))
		binary.LittleEndian.PutUint32(payload[at+9:], uint32(op.W))
		at += walOpBytes
	}
	rec := make([]byte, walHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, walCRC))
	copy(rec[walHeaderBytes:], payload)
	return rec
}

// AppendBatch writes one encoded batch record to w, returning the bytes
// written.
func AppendBatch(w io.Writer, b Batch) (int, error) {
	return w.Write(EncodeBatch(b))
}

// WALReplay is the result of replaying one delta-log byte stream.
type WALReplay struct {
	// Batches are the decoded, deduplicated batches in sequence order,
	// excluding any at or below the afterSeq floor.
	Batches []Batch
	// Truncated reports a repaired torn tail; ValidBytes is the byte length
	// of the intact prefix (the offset a repair should truncate the file
	// to). Without a tail, ValidBytes == len(data).
	Truncated  bool
	ValidBytes int64
	// Skipped counts records at or below afterSeq (already folded into the
	// snapshot); Duplicates counts records that repeat a sequence already
	// seen above the floor (the duplicated-batch corruption class).
	Skipped    int
	Duplicates int
	// Offsets are the byte offsets of every structurally intact record, in
	// order (input for the fault injector's WAL corruption classes).
	Offsets []int
}

// walErr builds a typed replay error.
func walErr(rec int, off int64, rule, format string, args ...any) error {
	return &fault.WALError{Record: rec, Offset: off, Rule: rule, Detail: fmt.Sprintf(format, args...)}
}

// ReplayDeltaLog decodes a delta log against an n-node graph, skipping
// batches at or below afterSeq. See the package-level replay contract; in
// short: torn tails repair silently, everything else corrupt is a typed
// *fault.WALError, duplicates apply once.
func ReplayDeltaLog(data []byte, n int32, afterSeq uint64) (*WALReplay, error) {
	res := &WALReplay{ValidBytes: int64(len(data))}
	off := int64(0)
	rec := 0
	prev := afterSeq
	sawAny := false
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < walHeaderBytes {
			res.Truncated, res.ValidBytes = true, off
			return res, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		tail := off+walHeaderBytes+length > int64(len(data))
		if length < walPayloadHeader || length > walPayloadHeader+walOpBytes*MaxWALBatchOps {
			// A nonsense length usually means the header itself is damaged.
			// If the claimed extent runs past EOF it is indistinguishable
			// from a torn tail and repairs by truncation; a bounded-but-bad
			// length mid-log is typed corruption.
			if tail || length > int64(len(data)) {
				res.Truncated, res.ValidBytes = true, off
				return res, nil
			}
			return nil, walErr(rec, off, "length", "payload length %d outside [%d,%d]",
				length, walPayloadHeader, walPayloadHeader+walOpBytes*MaxWALBatchOps)
		}
		if tail {
			res.Truncated, res.ValidBytes = true, off
			return res, nil
		}
		payload := data[off+walHeaderBytes : off+walHeaderBytes+length]
		atEOF := off+walHeaderBytes+length == int64(len(data))
		if got := crc32.Checksum(payload, walCRC); got != crc {
			if atEOF {
				// A damaged final record cannot be told apart from a torn
				// write of that record: repair by truncation.
				res.Truncated, res.ValidBytes = true, off
				return res, nil
			}
			return nil, walErr(rec, off, "crc", "checksum %08x, want %08x", got, crc)
		}
		seq := binary.LittleEndian.Uint64(payload[0:])
		count := int64(binary.LittleEndian.Uint32(payload[8:]))
		if walPayloadHeader+walOpBytes*count != length {
			return nil, walErr(rec, off, "length", "op count %d does not fill payload length %d", count, length)
		}
		res.Offsets = append(res.Offsets, int(off))
		switch {
		case seq <= afterSeq:
			res.Skipped++
		case sawAny && seq <= prev:
			res.Duplicates++
		default:
			if seq != prev+1 {
				return nil, walErr(rec, off, "seq-gap", "batch seq %d after %d", seq, prev)
			}
			b := Batch{Seq: seq, Ops: make([]MutOp, count)}
			at := int64(walPayloadHeader)
			for i := range b.Ops {
				op := MutOp{
					Op:  payload[at],
					Src: int32(binary.LittleEndian.Uint32(payload[at+1:])),
					Dst: int32(binary.LittleEndian.Uint32(payload[at+5:])),
					W:   int32(binary.LittleEndian.Uint32(payload[at+9:])),
				}
				if op.Op != OpInsert && op.Op != OpDelete {
					return nil, walErr(rec, off, "op", "op %d code %d", i, op.Op)
				}
				if op.Src < 0 || op.Src >= n || op.Dst < 0 || op.Dst >= n {
					return nil, walErr(rec, off, "range", "op %d edge (%d,%d) outside [0,%d)", i, op.Src, op.Dst, n)
				}
				b.Ops[i] = op
				at += walOpBytes
			}
			res.Batches = append(res.Batches, b)
			prev = seq
			sawAny = true
		}
		off += walHeaderBytes + length
		rec++
	}
	return res, nil
}
