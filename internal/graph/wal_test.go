package graph

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
)

func walTestBatches(t *testing.T, g *CSR, nOps int) []Batch {
	t.Helper()
	ops, err := GenMutations(g, 13, MutGenOptions{Count: nOps, DeleteFrac: 0.3, MaxWeight: 8})
	if err != nil {
		t.Fatal(err)
	}
	var batches []Batch
	for i := 0; i < len(ops); i += 3 {
		end := i + 3
		if end > len(ops) {
			end = len(ops)
		}
		batches = append(batches, Batch{Seq: uint64(len(batches) + 1), Ops: ops[i:end]})
	}
	return batches
}

func encodeLog(batches []Batch) []byte {
	var buf bytes.Buffer
	for _, b := range batches {
		buf.Write(EncodeBatch(b))
	}
	return buf.Bytes()
}

func TestWALRoundTrip(t *testing.T) {
	g := Random(64, 256, 8, 5)
	batches := walTestBatches(t, g, 60)
	data := encodeLog(batches)
	rep, err := ReplayDeltaLog(data, g.NumNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.Duplicates != 0 || rep.Skipped != 0 {
		t.Fatalf("clean log replayed dirty: %+v", rep)
	}
	if len(rep.Batches) != len(batches) {
		t.Fatalf("replayed %d batches, want %d", len(rep.Batches), len(batches))
	}
	if len(rep.Offsets) != len(batches) {
		t.Fatalf("%d offsets, want %d", len(rep.Offsets), len(batches))
	}
	for i, b := range rep.Batches {
		if b.Seq != batches[i].Seq || len(b.Ops) != len(batches[i].Ops) {
			t.Fatalf("batch %d mismatch", i)
		}
		for j := range b.Ops {
			if b.Ops[j] != batches[i].Ops[j] {
				t.Fatalf("batch %d op %d: %+v != %+v", i, j, b.Ops[j], batches[i].Ops[j])
			}
		}
	}
	// Replay with a floor skips folded batches.
	rep2, err := ReplayDeltaLog(data, g.NumNodes(), batches[4].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != 5 || len(rep2.Batches) != len(batches)-5 {
		t.Fatalf("floor replay: skipped=%d got=%d", rep2.Skipped, len(rep2.Batches))
	}
	if rep2.Batches[0].Seq != batches[5].Seq {
		t.Fatalf("floor replay starts at seq %d", rep2.Batches[0].Seq)
	}
}

// TestWALTruncationSweep is the in-process kill-anywhere core: every byte
// prefix of a valid log must replay to a clean prefix of the batch stream —
// never an error, never a partial batch.
func TestWALTruncationSweep(t *testing.T) {
	g := Random(32, 128, 4, 8)
	batches := walTestBatches(t, g, 30)
	data := encodeLog(batches)
	ends := make(map[int]int) // record end offset → batches complete there
	off := 0
	for i, b := range batches {
		off += len(EncodeBatch(b))
		ends[off] = i + 1
	}
	ends[0] = 0 // the empty log is a clean zero-batch boundary
	for cut := 0; cut <= len(data); cut++ {
		rep, err := ReplayDeltaLog(data[:cut], g.NumNodes(), 0)
		if err != nil {
			t.Fatalf("cut %d: replay error %v (a torn tail must repair, not fail)", cut, err)
		}
		want, atBoundary := ends[cut]
		if !atBoundary {
			// Mid-record cut: the complete batches before the last boundary.
			want = 0
			for end, n := range ends {
				if end <= cut && n > want {
					want = n
				}
			}
			if !rep.Truncated {
				t.Fatalf("cut %d mid-record not reported truncated", cut)
			}
		} else if cut > 0 && rep.Truncated {
			t.Fatalf("cut %d at record boundary reported truncated", cut)
		}
		if len(rep.Batches) != want {
			t.Fatalf("cut %d: %d batches, want %d", cut, len(rep.Batches), want)
		}
		if rep.Truncated {
			// The reported valid prefix must itself replay identically.
			rep2, err := ReplayDeltaLog(data[:rep.ValidBytes], g.NumNodes(), 0)
			if err != nil || rep2.Truncated || len(rep2.Batches) != want {
				t.Fatalf("cut %d: repaired prefix not clean: err=%v trunc=%v n=%d",
					cut, err, rep2 != nil && rep2.Truncated, len(rep2.Batches))
			}
		}
	}
}

func TestWALMidLogCorruptionTyped(t *testing.T) {
	g := Random(32, 128, 4, 9)
	batches := walTestBatches(t, g, 30)
	data := encodeLog(batches)

	// Flip one payload byte of a middle record → typed crc error.
	rep, err := ReplayDeltaLog(data, g.NumNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := rep.Offsets[len(rep.Offsets)/2]
	corrupt := append([]byte(nil), data...)
	corrupt[mid+walHeaderBytes+2] ^= 0x10
	_, err = ReplayDeltaLog(corrupt, g.NumNodes(), 0)
	var werr *fault.WALError
	if !errors.As(err, &werr) || werr.Rule != "crc" {
		t.Fatalf("mid-log flip: err = %v, want WALError{crc}", err)
	}
	if !errors.Is(err, fault.ErrWALCorrupt) {
		t.Fatalf("WALError does not unwrap to ErrWALCorrupt: %v", err)
	}

	// Same flip on the FINAL record → indistinguishable from a torn write,
	// repaired by truncation.
	last := rep.Offsets[len(rep.Offsets)-1]
	corrupt = append([]byte(nil), data...)
	corrupt[last+walHeaderBytes+2] ^= 0x10
	rep2, err := ReplayDeltaLog(corrupt, g.NumNodes(), 0)
	if err != nil {
		t.Fatalf("final-record flip: err = %v, want truncation repair", err)
	}
	if !rep2.Truncated || int(rep2.ValidBytes) != last || len(rep2.Batches) != len(batches)-1 {
		t.Fatalf("final-record flip: trunc=%v valid=%d n=%d", rep2.Truncated, rep2.ValidBytes, len(rep2.Batches))
	}

	// Seq gap mid-log → typed seq-gap error.
	gap := encodeLog([]Batch{batches[0], batches[2]})
	_, err = ReplayDeltaLog(gap, g.NumNodes(), 0)
	if !errors.As(err, &werr) || werr.Rule != "seq-gap" {
		t.Fatalf("seq gap: err = %v, want WALError{seq-gap}", err)
	}

	// Out-of-range node in a correctly-checksummed record → range error.
	bad := encodeLog([]Batch{{Seq: 1, Ops: []MutOp{{Op: OpInsert, Src: 0, Dst: 999, W: 1}}}})
	_, err = ReplayDeltaLog(append(bad, encodeLog([]Batch{{Seq: 2}})...), g.NumNodes(), 0)
	if !errors.As(err, &werr) || werr.Rule != "range" {
		t.Fatalf("bad node: err = %v, want WALError{range}", err)
	}

	// Bad op code → op error.
	bad = encodeLog([]Batch{{Seq: 1, Ops: []MutOp{{Op: 9, Src: 0, Dst: 1, W: 1}}}})
	_, err = ReplayDeltaLog(append(bad, encodeLog([]Batch{{Seq: 2}})...), g.NumNodes(), 0)
	if !errors.As(err, &werr) || werr.Rule != "op" {
		t.Fatalf("bad op: err = %v, want WALError{op}", err)
	}
}

func TestWALDuplicateBatchesApplyOnce(t *testing.T) {
	g := Random(32, 128, 4, 10)
	batches := walTestBatches(t, g, 30) // 10 batches of 3 ops
	var buf bytes.Buffer
	for i, b := range batches {
		buf.Write(EncodeBatch(b))
		if i == 2 || i == 7 {
			buf.Write(EncodeBatch(b)) // duplicated append (replayed write)
		}
	}
	rep, err := ReplayDeltaLog(buf.Bytes(), g.NumNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2", rep.Duplicates)
	}
	if len(rep.Batches) != len(batches) {
		t.Fatalf("%d batches after dedup, want %d", len(rep.Batches), len(batches))
	}
	for i, b := range rep.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d has seq %d", i, b.Seq)
		}
	}
}

// TestWALInjectedCorruptionClasses drives the fault injector's WAL classes
// end to end: each class must resolve to either a typed error or a clean
// truncation repair with duplicates applied once — never a panic, never
// silent divergence from the acked prefix.
func TestWALInjectedCorruptionClasses(t *testing.T) {
	g := Random(64, 256, 8, 21)
	batches := walTestBatches(t, g, 45)
	data := encodeLog(batches)
	base, err := ReplayDeltaLog(data, g.NumNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Final graph per intact batch prefix, for divergence checks.
	prefixHash := make([]uint64, len(batches)+1)
	d := NewDelta(g, 0)
	cg, _ := d.Compact()
	prefixHash[0] = Hash(cg)
	for i, b := range batches {
		if err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
		cg, err := d.Compact()
		if err != nil {
			t.Fatal(err)
		}
		prefixHash[i+1] = Hash(cg)
	}
	classes := []struct {
		name string
		cfg  fault.Config
	}{
		{fault.WALTornRecord, fault.Config{WALTear: 1}},
		{fault.WALBitFlip, fault.Config{WALFlip: 1}},
		{fault.WALTruncTail, fault.Config{WALTrunc: 1}},
		{fault.WALDupBatch, fault.Config{WALDup: 1}},
	}
	for _, tc := range classes {
		for seed := uint64(0); seed < 40; seed++ {
			in := fault.NewInjector(seed, tc.cfg)
			corrupt, kind := in.CorruptWAL(data, base.Offsets)
			if kind == "" {
				continue
			}
			if kind != tc.name {
				t.Fatalf("class %s fired as %s", tc.name, kind)
			}
			rep, err := ReplayDeltaLog(corrupt, g.NumNodes(), 0)
			if err != nil {
				if !errors.Is(err, fault.ErrWALCorrupt) {
					t.Fatalf("%s seed %d: untyped error %v", tc.name, seed, err)
				}
				continue // typed rejection is a valid outcome for flips
			}
			switch tc.name {
			case fault.WALDupBatch:
				if rep.Duplicates != 1 || len(rep.Batches) != len(batches) {
					t.Fatalf("%s seed %d: dup=%d n=%d", tc.name, seed, rep.Duplicates, len(rep.Batches))
				}
			case fault.WALTornRecord, fault.WALTruncTail:
				if !rep.Truncated {
					t.Fatalf("%s seed %d: tail loss not reported", tc.name, seed)
				}
			}
			// Whatever survived must fold to a graph equal to SOME intact
			// batch prefix — the no-silent-divergence contract.
			rd := NewDelta(g, 0)
			for _, b := range rep.Batches {
				if err := rd.Apply(b); err != nil {
					t.Fatalf("%s seed %d: surviving batch failed: %v", tc.name, seed, err)
				}
			}
			rg, err := rd.Compact()
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if got := Hash(rg); got != prefixHash[len(rep.Batches)] {
				t.Fatalf("%s seed %d: silent divergence at prefix %d", tc.name, seed, len(rep.Batches))
			}
		}
	}
}

func TestWALOversizeLengthRejected(t *testing.T) {
	g := Random(8, 16, 1, 3)
	// A bounded-but-wrong length mid-log is typed corruption.
	rec := EncodeBatch(Batch{Seq: 1, Ops: []MutOp{{Op: OpInsert, Src: 0, Dst: 1, W: 1}}})
	bad := append([]byte(nil), rec...)
	bad[0] = byte(walPayloadHeader - 4) // claims less than the fixed prefix
	bad = append(bad, rec...)
	var werr *fault.WALError
	if _, err := ReplayDeltaLog(bad, g.NumNodes(), 0); !errors.As(err, &werr) || werr.Rule != "length" {
		t.Fatalf("undersize length: err = %v, want WALError{length}", err)
	}
	// A length past EOF is a torn tail.
	huge := append([]byte(nil), rec...)
	huge[1] = 0x7f
	rep, err := ReplayDeltaLog(huge, g.NumNodes(), 0)
	if err != nil || !rep.Truncated || len(rep.Batches) != 0 {
		t.Fatalf("past-EOF length: rep=%+v err=%v, want truncation", rep, err)
	}
}
