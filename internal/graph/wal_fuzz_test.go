package graph

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// FuzzDeltaLog asserts the replay contract over arbitrary bytes: every
// input either replays into batches that Apply cleanly to a delta (possibly
// with a repaired torn tail and deduplicated records), or fails with a
// typed error wrapping fault.ErrWALCorrupt — never a panic, never a batch
// that violates the overlay's own validation.
func FuzzDeltaLog(f *testing.F) {
	const fuzzNodes = 64
	seedBatches := []Batch{
		{Seq: 1, Ops: []MutOp{{Op: OpInsert, Src: 0, Dst: 1, W: 5}, {Op: OpInsert, Src: 1, Dst: 2, W: 1}}},
		{Seq: 2, Ops: []MutOp{{Op: OpDelete, Src: 0, Dst: 1, W: 1}}},
		{Seq: 3, Ops: []MutOp{{Op: OpInsert, Src: 63, Dst: 0, W: 9}}},
	}
	clean := func() []byte {
		var out []byte
		for _, b := range seedBatches {
			out = append(out, EncodeBatch(b)...)
		}
		return out
	}
	// A clean log, and the three corruption classes the satellite names.
	f.Add(clean())
	f.Add(clean()[:len(clean())-7]) // torn tail
	flipped := clean()
	flipped[len(flipped)/2] ^= 0x20 // CRC mismatch mid-log
	f.Add(flipped)
	dup := clean()
	dup = append(dup, EncodeBatch(seedBatches[2])...) // duplicate batch
	f.Add(dup)
	// Adversarial headers: absurd length, zero bytes, header-only.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add(make([]byte, walHeaderBytes))
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReplayDeltaLog(data, fuzzNodes, 0)
		if err != nil {
			if !errors.Is(err, fault.ErrWALCorrupt) {
				t.Fatalf("untyped replay error: %v", err)
			}
			var werr *fault.WALError
			if !errors.As(err, &werr) || werr.Rule == "" {
				t.Fatalf("replay error without rule detail: %v", err)
			}
			return
		}
		if rep.ValidBytes > int64(len(data)) || (rep.Truncated && rep.ValidBytes == int64(len(data))) {
			t.Fatalf("inconsistent truncation report: %+v over %d bytes", rep, len(data))
		}
		// Accepted batches must apply cleanly, in order, against a fresh
		// overlay — replay never hands back garbage.
		d := NewDelta(Random(fuzzNodes, 128, 8, 1), 0)
		for i, b := range rep.Batches {
			if err := d.Apply(b); err != nil {
				t.Fatalf("accepted batch %d does not apply: %v", i, err)
			}
		}
		if _, err := d.Compact(); err != nil {
			t.Fatalf("replayed overlay does not compact: %v", err)
		}
		// Replaying the valid prefix again is idempotent.
		rep2, err := ReplayDeltaLog(data[:rep.ValidBytes], fuzzNodes, 0)
		if err != nil || rep2.Truncated || len(rep2.Batches) != len(rep.Batches) {
			t.Fatalf("valid prefix unstable: err=%v rep2=%+v", err, rep2)
		}
	})
}
