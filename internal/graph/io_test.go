package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := Road(8, 8, 16, 2)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for n := int32(0); n < g.NumNodes(); n++ {
		a, b := g.Neighbors(n), back.Neighbors(n)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighbors differ", n)
			}
			if g.Weight[g.RowPtr[n]+int32(i)] != back.Weight[back.RowPtr[n]+int32(i)] {
				t.Fatalf("node %d weights differ", n)
			}
		}
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",             // arc before problem line
		"p sp x y\n",            // malformed problem line
		"p sp 2 1\na 1 two 3\n", // bad number
		"p sp 2 1\nq 1 2 3\n",   // unknown record
		"p sp 2 1\na 1 2\n",     // short arc
		"",                      // missing problem line
		"p sp 2 1\na 1 9 3\n",   // out of range
	}
	for _, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c)); err == nil {
			t.Errorf("ReadDIMACS accepted %q", c)
		}
	}
}

func TestReadDIMACSSkipsComments(t *testing.T) {
	in := "c hello\n\np sp 2 1\nc mid\na 1 2 7\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Weight[0] != 7 {
		t.Fatalf("parsed %v", g)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(6, 4, 8, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges changed: %d vs %d", back.NumEdges(), g.NumEdges())
	}
	if !back.Weighted() {
		t.Error("weights lost")
	}
}

func TestEdgeListUnweighted(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	if g.Weighted() {
		t.Error("unweighted input produced weights")
	}
}

func TestEdgeListErrors(t *testing.T) {
	for _, c := range []string{"0\n", "0 1 2 3\n", "a b\n", "0 1 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("ReadEdgeList accepted %q", c)
		}
	}
}
