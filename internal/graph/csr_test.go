package graph

import (
	"testing"
	"testing/quick"
)

func diamond() *CSR {
	// 0 -> 1 -> 3, 0 -> 2 -> 3
	g, err := FromEdges(4, []Edge{{0, 1, 5}, {0, 2, 7}, {1, 3, 2}, {2, 3, 1}}, true)
	if err != nil {
		panic(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("Neighbors(0) = %v", nb)
	}
	if g.EdgeWeight(g.RowPtr[2]) != 1 {
		t.Errorf("weight of 2->3 = %d", g.EdgeWeight(g.RowPtr[2]))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}, false); err == nil {
		t.Error("accepted out-of-range dst")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0, 1}}, false); err == nil {
		t.Error("accepted negative src")
	}
}

func TestUnweightedDefaultsToOne(t *testing.T) {
	g, _ := FromEdges(2, []Edge{{0, 1, 99}}, false)
	if g.Weighted() {
		t.Error("unweighted graph reports Weighted")
	}
	if g.EdgeWeight(0) != 1 {
		t.Errorf("unweighted EdgeWeight = %d, want 1", g.EdgeWeight(0))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := diamond()
	edges := g.Edges()
	g2, err := FromEdges(g.NumNodes(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed")
	}
	for n := int32(0); n < g.NumNodes(); n++ {
		a, b := g.Neighbors(n), g2.Neighbors(n)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighbor %d changed", n, i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	g := diamond()
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Degree(3) != 2 || tr.Degree(0) != 0 {
		t.Errorf("transpose degrees wrong: in(3)=%d in(0)=%d", tr.Degree(3), tr.Degree(0))
	}
	// Transposing twice restores the edge multiset.
	back := tr.Transpose()
	if back.NumEdges() != g.NumEdges() {
		t.Error("double transpose changed edge count")
	}
	// Weight preserved: edge 1->3 weight 2 appears as 3->1 weight 2.
	found := false
	for e := tr.RowPtr[3]; e < tr.RowPtr[4]; e++ {
		if tr.EdgeDst[e] == 1 && tr.Weight[e] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("transpose lost weight on 1->3")
	}
}

func TestSymmetrize(t *testing.T) {
	g, _ := FromEdges(3, []Edge{{0, 1, 5}, {1, 0, 3}, {1, 1, 9}, {1, 2, 4}}, true)
	s := g.Symmetrize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Self loop dropped; 0-1 deduplicated with min weight; 1-2 mirrored.
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", s.NumEdges())
	}
	for _, e := range s.Edges() {
		if e.Src == e.Dst {
			t.Error("self loop survived")
		}
		if (e.Src == 0 && e.Dst == 1) || (e.Src == 1 && e.Dst == 0) {
			if e.W != 3 {
				t.Errorf("0-1 weight = %d, want min 3", e.W)
			}
		}
	}
	// Every edge has its mirror.
	for _, e := range s.Edges() {
		ok := false
		for _, f := range s.Neighbors(e.Dst) {
			if f == e.Src {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("edge %d->%d has no mirror", e.Src, e.Dst)
		}
	}
}

func TestSortAdjacency(t *testing.T) {
	g, _ := FromEdges(2, []Edge{{0, 1, 10}, {0, 0, 20}, {0, 1, 30}}, true)
	g.SortAdjacency()
	nb := g.Neighbors(0)
	if nb[0] != 0 || nb[1] != 1 || nb[2] != 1 {
		t.Fatalf("sorted neighbors = %v", nb)
	}
	// Weight 20 must follow dst 0.
	if g.Weight[0] != 20 {
		t.Errorf("weights not permuted with dsts: %v", g.Weight)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := diamond()
	g.RowPtr[2] = 100
	if g.Validate() == nil {
		t.Error("Validate accepted non-monotone RowPtr")
	}
	g = diamond()
	g.EdgeDst[0] = 77
	if g.Validate() == nil {
		t.Error("Validate accepted out-of-range dst")
	}
	g = diamond()
	g.Weight = g.Weight[:2]
	if g.Validate() == nil {
		t.Error("Validate accepted short weight array")
	}
}

func TestDegreeStatsAndFootprint(t *testing.T) {
	g := diamond()
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.0 {
		t.Errorf("AvgDegree = %v", g.AvgDegree())
	}
	want := int64(5+4+4) * 4
	if g.FootprintBytes() != want {
		t.Errorf("FootprintBytes = %d, want %d", g.FootprintBytes(), want)
	}
}

// Property: for any random edge list, FromEdges preserves the per-source
// multiset of (dst, weight) pairs and total edge count.
func TestFromEdgesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{int32(raw[i] % n), int32(raw[i+1] % n), int32(i)})
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		if g.NumEdges() != int32(len(edges)) {
			return false
		}
		// Count per-source edges.
		var deg [n]int32
		for _, e := range edges {
			deg[e.Src]++
		}
		for i := int32(0); i < n; i++ {
			if g.Degree(i) != deg[i] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
