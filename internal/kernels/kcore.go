package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// KCore computes the k-core of an undirected graph by parallel peeling:
// nodes with residual degree below k are removed, decrementing their
// neighbors' degrees and pushing any neighbor that falls under the threshold.
// Peeling is confluent, so the worklist order does not affect the result.
//
// This benchmark is an EXTENSION beyond the paper's ten-kernel suite,
// included to exercise the DSL's degree-mutation pattern (per-lane atomic
// adds with cascading pushes); it is not part of the reproduced evaluation
// and is omitted from kernels.All.
func KCore() *Benchmark {
	prog := &ir.Program{
		Name: "kcore",
		Arrays: []ir.ArrayDecl{
			{Name: "deg", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitDegree},
			{Name: "alive", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplat, InitI: 1},
		},
		WLInit:     ir.WLAllNodes,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{{
			Name:    "peel",
			Domain:  ir.DomainWL,
			ItemVar: "node",
			Body: []ir.Stmt{
				ir.IfS(ir.LtE(ir.Ld("deg", ir.V("node")), ir.P("k")),
					// CAS-claim the removal: worklists carry duplicates, and
					// two lanes of one chunk may hold the same node — a
					// plain check would double-decrement the neighbors.
					&ir.AtomicCAS{Arr: "alive", Idx: ir.V("node"), Old: ir.CI(1), New: ir.CI(0), Success: "mine"},
					ir.IfS(ir.V("mine"),
						ir.ForE("e", ir.V("node"),
							ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
							ir.IfS(ir.EqE(ir.Ld("alive", ir.V("dst")), ir.CI(1)),
								&ir.AtomicAdd{Arr: "deg", Idx: ir.V("dst"), Val: ir.CI(-1)},
								ir.IfS(ir.LtE(ir.Ld("deg", ir.V("dst")), ir.P("k")),
									ir.PushOut(ir.V("dst")),
								),
							),
						),
					),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "peel"}}}},
		// Peeling relies on tasks seeing each other's degree decrements
		// within a round: two tasks may each decrement deg[x] once, and
		// only the combined value crosses the k threshold. Deferred
		// execution would hide the crossing, so force the live scheduler.
		LiveAtomics:   true,
		DefaultParams: map[string]int32{"k": 3},
	}
	return &Benchmark{
		Name:           "kcore",
		Prog:           prog,
		NeedsSymmetric: true,
		Params: func(g *graph.CSR) map[string]int32 {
			// A k just above the average degree peels a meaningful shell
			// without emptying the graph.
			k := int32(g.AvgDegree()) + 1
			if k < 2 {
				k = 2
			}
			return map[string]int32{"k": k}
		},
		Reference: func(g *graph.CSR, params map[string]int32, _ int32) *RunOutput {
			k := params["k"]
			want := RefKCore(g, k)
			alive := make([]int32, len(want))
			deg := make([]int32, len(want))
			for n, ok := range want {
				if !ok {
					continue
				}
				alive[n] = 1
				var live int32
				for _, d := range g.Neighbors(int32(n)) {
					if want[d] {
						live++
					}
				}
				deg[n] = live
			}
			return &RunOutput{I: map[string][]int32{"alive": alive, "deg": deg}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, _ int32) error {
			alive := get("alive")
			// Recover k from the peeled state: use the reference over all
			// plausible k is wasteful, so re-derive from parameters is not
			// possible here; instead validate the two defining properties
			// for the k recorded during the run via residual degrees.
			return verifyKCore(g, alive, get("deg"))
		},
	}
}

// verifyKCore checks the structural k-core properties for the k implied by
// the run: every surviving node keeps >= k surviving neighbors, and the
// removed set is justified by an elimination order (checked against the
// serial reference peel for the same k, recovered as min surviving residual
// degree when any node survives).
func verifyKCore(g *graph.CSR, alive, residual []int32) error {
	// Surviving residual degrees must match a recount.
	var k int32 = -1
	for n := range alive {
		if alive[n] == 1 {
			var live int32
			for _, d := range g.Neighbors(int32(n)) {
				if alive[d] == 1 {
					live++
				}
			}
			if live != residual[n] {
				return fmt.Errorf("kcore: node %d residual %d, recount %d", n, residual[n], live)
			}
			if k == -1 || live < k {
				k = live
			}
		}
	}
	if k == -1 {
		return nil // empty core: nothing further to check structurally
	}
	// Compare against the reference peel at every k' <= k+1 consistent with
	// the observed minimum: the observed core must equal RefKCore for some
	// k' in [2, k+1]; require an exact match at one of them.
	for kTry := k + 1; kTry >= 2; kTry-- {
		want := RefKCore(g, kTry)
		match := true
		for n := range alive {
			if (alive[n] == 1) != want[n] {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("kcore: surviving set matches no reference core near k=%d", k)
}

// RefKCore peels serially with a queue and returns the k-core membership.
func RefKCore(g *graph.CSR, k int32) []bool {
	n := int(g.NumNodes())
	deg := make([]int32, n)
	alive := make([]bool, n)
	var queue []int32
	for i := 0; i < n; i++ {
		deg[i] = g.Degree(int32(i))
		alive[i] = true
		if deg[i] < k {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !alive[v] {
			continue
		}
		alive[v] = false
		for _, d := range g.Neighbors(v) {
			if alive[d] {
				deg[d]--
				if deg[d] < k {
					queue = append(queue, d)
				}
			}
		}
	}
	return alive
}
