package kernels

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Every benchmark's serial Reference must satisfy its own verifier — the
// last link of the degradation chain has to produce accepted results.
func TestReferencePassesVerify(t *testing.T) {
	g := graph.Random(200, 1200, 16, 7)
	g.SortAdjacency()
	sym := g.Symmetrize()
	for _, b := range AllWithExtensions() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Reference == nil {
				t.Fatal("benchmark has no Reference")
			}
			in := g
			if b.NeedsSymmetric {
				in = sym
			}
			params := map[string]int32{}
			if b.Params != nil {
				for k, v := range b.Params(in) {
					params[k] = v
				}
			}
			out := b.Reference(in, params, 0)
			if err := out.Verify(b, in, 0); err != nil {
				t.Errorf("reference output rejected: %v", err)
			}
		})
	}
}

func TestRunResilientChain(t *testing.T) {
	b, err := ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := path4()
	boom := errors.New("vector blew up")
	ok := &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, 0)}}

	calls := 0
	failN := func(n int) func() (*RunOutput, Cost, error) {
		calls = 0
		return func() (*RunOutput, Cost, error) {
			calls++
			if calls <= n {
				return nil, Cost{Cycles: 100}, fmt.Errorf("attempt %d: %w", calls, boom)
			}
			return ok, Cost{Cycles: 1000}, nil
		}
	}

	res, err := RunResilient(context.Background(), b, g, nil, 0, failN(0), nil)
	if err != nil || res.Path != "vector" || len(res.Attempts) != 0 {
		t.Errorf("clean run: path=%s attempts=%d err=%v", res.Path, len(res.Attempts), err)
	}

	res, err = RunResilient(context.Background(), b, g, nil, 0, failN(1), nil)
	if err != nil || res.Path != "vector-retry" || len(res.Attempts) != 1 {
		t.Errorf("retry run: path=%s attempts=%d err=%v", res.Path, len(res.Attempts), err)
	}
	if res.Degraded() {
		t.Error("retry path reported as degraded")
	}

	fb := []FallbackRunner{
		{Name: "broken", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
			return nil, errors.New("also down")
		}},
		{Name: "scalar", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
			return ok, nil
		}},
	}
	res, err = RunResilient(context.Background(), b, g, nil, 0, failN(99), fb)
	if err != nil || res.Path != "scalar" || !res.Degraded() {
		t.Errorf("fallback run: path=%s err=%v", res.Path, err)
	}
	// vector x2 + broken fallback
	if len(res.Attempts) != 3 {
		t.Errorf("fallback run recorded %d attempts, want 3", len(res.Attempts))
	}

	res, err = RunResilient(context.Background(), b, g, nil, 0, failN(99), nil)
	if err != nil || res.Path != "reference" {
		t.Errorf("reference run: path=%s err=%v", res.Path, err)
	}
	if err := res.Output.Verify(b, g, 0); err != nil {
		t.Errorf("reference output rejected: %v", err)
	}

	noRef := &Benchmark{Name: "stub"}
	if _, err := RunResilient(context.Background(), noRef, g, nil, 0, failN(99), nil); !errors.Is(err, boom) {
		t.Errorf("exhausted chain error %v does not wrap the cause", err)
	}
}

// TestResilientHistory checks the per-attempt execution history: every path
// tried appears in order with its error, modeled cycles, wall time, and
// recovery counters — including failed vector attempts that absorbed
// rollbacks before giving up.
func TestResilientHistory(t *testing.T) {
	b, err := ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := path4()
	boom := errors.New("vector blew up")
	ok := &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, 0)}}
	failCost := Cost{Cycles: 500, Recovery: RecoveryCounts{Checkpoints: 2, Rollbacks: 3, BadCheckpoints: 1, WastedCycles: 120}}
	okCost := Cost{Cycles: 900, Recovery: RecoveryCounts{Checkpoints: 4, Rollbacks: 1, WastedCycles: 40}}

	brokenFB := FallbackRunner{Name: "broken", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
		return nil, errors.New("also down")
	}}
	okFB := FallbackRunner{Name: "scalar", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
		return ok, nil
	}}

	cases := []struct {
		name      string
		failFirst int // vector attempts that fail before one succeeds
		fallbacks []FallbackRunner
		wantPaths []string
		wantErrs  []bool // per history entry: entry has a non-nil error
	}{
		{"first-try", 0, nil, []string{"vector"}, []bool{false}},
		{"retry-serves", 1, nil, []string{"vector", "vector-retry"}, []bool{true, false}},
		{"fallback-serves", 99, []FallbackRunner{brokenFB, okFB},
			[]string{"vector", "vector-retry", "broken", "scalar"}, []bool{true, true, true, false}},
		{"reference-serves", 99, nil,
			[]string{"vector", "vector-retry", "reference"}, []bool{true, true, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			vector := func() (*RunOutput, Cost, error) {
				calls++
				if calls <= tc.failFirst {
					return nil, failCost, fmt.Errorf("attempt %d: %w", calls, boom)
				}
				return ok, okCost, nil
			}
			res, err := RunResilient(context.Background(), b, g, nil, 0, vector, tc.fallbacks)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.History) != len(tc.wantPaths) {
				t.Fatalf("history has %d entries, want %d: %+v", len(res.History), len(tc.wantPaths), res.History)
			}
			for i, a := range res.History {
				if a.Path != tc.wantPaths[i] {
					t.Errorf("history[%d].Path = %q, want %q", i, a.Path, tc.wantPaths[i])
				}
				if (a.Err != nil) != tc.wantErrs[i] {
					t.Errorf("history[%d].Err = %v, want error=%v", i, a.Err, tc.wantErrs[i])
				}
				if a.WallNS < 0 {
					t.Errorf("history[%d].WallNS = %d, want >= 0", i, a.WallNS)
				}
				vectorAttempt := a.Path == "vector" || a.Path == "vector-retry"
				wantCost := Cost{}
				if vectorAttempt {
					wantCost = okCost
					if a.Err != nil {
						wantCost = failCost
					}
				}
				if a.Cycles != wantCost.Cycles {
					t.Errorf("history[%d].Cycles = %v, want %v", i, a.Cycles, wantCost.Cycles)
				}
				if a.Recovery != wantCost.Recovery {
					t.Errorf("history[%d].Recovery = %+v, want %+v", i, a.Recovery, wantCost.Recovery)
				}
			}
			// Attempts (failed-only view) must agree with the history errors.
			nFail := 0
			for _, e := range tc.wantErrs {
				if e {
					nFail++
				}
			}
			if len(res.Attempts) != nFail {
				t.Errorf("Attempts has %d errors, want %d", len(res.Attempts), nFail)
			}
			// Totals aggregate over every attempt's recovery counters.
			tot := res.TotalRecovery()
			wantTot := RecoveryCounts{}
			for _, a := range res.History {
				wantTot.Checkpoints += a.Recovery.Checkpoints
				wantTot.Rollbacks += a.Recovery.Rollbacks
				wantTot.BadCheckpoints += a.Recovery.BadCheckpoints
				wantTot.WastedCycles += a.Recovery.WastedCycles
			}
			if tot != wantTot {
				t.Errorf("TotalRecovery() = %+v, want %+v", tot, wantTot)
			}
		})
	}
}

// TestRunResilientCtxGate checks the between-attempt cancellation gate: once
// the caller context is done, no further path runs — there is nobody left to
// serve — and the chain returns a typed deadline BudgetError wrapping the
// context's cause.
func TestRunResilientCtxGate(t *testing.T) {
	b, err := ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := path4()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	vectorRan, fbRan := false, false
	vector := func() (*RunOutput, Cost, error) {
		vectorRan = true
		return nil, Cost{}, errors.New("should never run")
	}
	fb := []FallbackRunner{{Name: "scalar", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
		fbRan = true
		return nil, errors.New("should never run")
	}}}

	res, err := RunResilient(ctx, b, g, nil, 0, vector, fb)
	if vectorRan || fbRan {
		t.Errorf("cancelled chain still ran paths: vector=%v fallback=%v", vectorRan, fbRan)
	}
	if !errors.Is(err, fault.ErrBudgetExceeded) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled chain error %v is not a deadline BudgetError wrapping Canceled", err)
	}
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Errorf("cancelled chain error %v lacks deadline resource", err)
	}
	if res == nil || len(res.History) != 0 || res.Output != nil {
		t.Errorf("cancelled chain produced history/output: %+v", res)
	}

	// Cancellation mid-chain: the vector attempt runs (and fails), then the
	// cancel lands before any fallback is tried.
	ctx2, cancel2 := context.WithCancel(context.Background())
	fbRan = false
	vector2 := func() (*RunOutput, Cost, error) {
		cancel2()
		return nil, Cost{Cycles: 10}, errors.New("died while client hung up")
	}
	res, err = RunResilient(ctx2, b, g, nil, 0, vector2, fb)
	if fbRan {
		t.Error("fallback ran after mid-chain cancellation")
	}
	if !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Errorf("mid-chain cancellation error %v not typed", err)
	}
	if len(res.History) != 1 || res.History[0].Path != "vector" {
		t.Errorf("history should hold the one vector attempt: %+v", res.History)
	}
}

// TestRunResilientScalarOnly checks the overload-degradation entry: a nil
// vector func serves straight from the fallback ladder.
func TestRunResilientScalarOnly(t *testing.T) {
	b, err := ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := path4()
	ok := &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, 0)}}
	fb := []FallbackRunner{{Name: "scalar", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
		return ok, nil
	}}}
	res, err := RunResilient(context.Background(), b, g, nil, 0, nil, fb)
	if err != nil || res.Path != "scalar" || !res.Degraded() {
		t.Errorf("scalar-only run: path=%s err=%v", res.Path, err)
	}
	if len(res.History) != 1 {
		t.Errorf("scalar-only run recorded %d history entries, want 1", len(res.History))
	}

	// Without fallbacks the reference still serves.
	res, err = RunResilient(context.Background(), b, g, nil, 0, nil, nil)
	if err != nil || res.Path != "reference" {
		t.Errorf("scalar-only reference run: path=%s err=%v", res.Path, err)
	}
}
