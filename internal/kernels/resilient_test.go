package kernels

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// Every benchmark's serial Reference must satisfy its own verifier — the
// last link of the degradation chain has to produce accepted results.
func TestReferencePassesVerify(t *testing.T) {
	g := graph.Random(200, 1200, 16, 7)
	g.SortAdjacency()
	sym := g.Symmetrize()
	for _, b := range AllWithExtensions() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Reference == nil {
				t.Fatal("benchmark has no Reference")
			}
			in := g
			if b.NeedsSymmetric {
				in = sym
			}
			params := map[string]int32{}
			if b.Params != nil {
				for k, v := range b.Params(in) {
					params[k] = v
				}
			}
			out := b.Reference(in, params, 0)
			if err := out.Verify(b, in, 0); err != nil {
				t.Errorf("reference output rejected: %v", err)
			}
		})
	}
}

func TestRunResilientChain(t *testing.T) {
	b, err := ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := path4()
	boom := errors.New("vector blew up")
	ok := &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, 0)}}

	calls := 0
	failN := func(n int) func() (*RunOutput, error) {
		calls = 0
		return func() (*RunOutput, error) {
			calls++
			if calls <= n {
				return nil, fmt.Errorf("attempt %d: %w", calls, boom)
			}
			return ok, nil
		}
	}

	res, err := RunResilient(b, g, nil, 0, failN(0), nil)
	if err != nil || res.Path != "vector" || len(res.Attempts) != 0 {
		t.Errorf("clean run: path=%s attempts=%d err=%v", res.Path, len(res.Attempts), err)
	}

	res, err = RunResilient(b, g, nil, 0, failN(1), nil)
	if err != nil || res.Path != "vector-retry" || len(res.Attempts) != 1 {
		t.Errorf("retry run: path=%s attempts=%d err=%v", res.Path, len(res.Attempts), err)
	}
	if res.Degraded() {
		t.Error("retry path reported as degraded")
	}

	fb := []FallbackRunner{
		{Name: "broken", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
			return nil, errors.New("also down")
		}},
		{Name: "scalar", Run: func(*Benchmark, *graph.CSR, int32) (*RunOutput, error) {
			return ok, nil
		}},
	}
	res, err = RunResilient(b, g, nil, 0, failN(99), fb)
	if err != nil || res.Path != "scalar" || !res.Degraded() {
		t.Errorf("fallback run: path=%s err=%v", res.Path, err)
	}
	// vector x2 + broken fallback
	if len(res.Attempts) != 3 {
		t.Errorf("fallback run recorded %d attempts, want 3", len(res.Attempts))
	}

	res, err = RunResilient(b, g, nil, 0, failN(99), nil)
	if err != nil || res.Path != "reference" {
		t.Errorf("reference run: path=%s err=%v", res.Path, err)
	}
	if err := res.Output.Verify(b, g, 0); err != nil {
		t.Errorf("reference output rejected: %v", err)
	}

	noRef := &Benchmark{Name: "stub"}
	if _, err := RunResilient(noRef, g, nil, 0, failN(99), nil); !errors.Is(err, boom) {
		t.Errorf("exhausted chain error %v does not wrap the cause", err)
	}
}
