// Package kernels defines the ten benchmark graph algorithms of the paper's
// evaluation (Table VIII) as IrGL IR programs: four BFS variants (worklist,
// claim/expand, topology-driven, hybrid), near-far SSSP, connected
// components, triangle counting, maximal independent set, PageRank, and
// Boruvka MST — together with serial reference implementations used to
// verify every compiled configuration's output.
package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// Inf is the "unreached" distance/level marker (fits int32 with headroom for
// weight additions).
const Inf int32 = 1 << 30

// Benchmark couples a program with its input requirements and a verifier.
type Benchmark struct {
	Name string
	// Prog is the unoptimized program; run it through opt.Apply.
	Prog *ir.Program
	// NeedsSymmetric marks algorithms defined on undirected graphs (cc,
	// tri, mis, mst); the harness symmetrizes inputs for them.
	NeedsSymmetric bool
	// OrderSensitive marks algorithms whose outputs depend on the order
	// nodes are processed in — float accumulation rounds differently under
	// a reordering. The layout policy pins them to CSR: a SELL layout's
	// degree-sorted sweep order would change their bits. Integer fixpoint
	// kernels (BFS levels, components, MIS, MST, triangle counts) converge
	// to order-independent results and stay eligible.
	OrderSensitive bool
	// DenseSweep marks kernels whose dominant edge loop sweeps the whole
	// domain at full occupancy every round (cc, tri, mst): the static
	// per-kernel minimum on the calibrated machine model, measured by the
	// layout bench experiment. The auto layout policy attaches SELL-C-σ
	// only to these; frontier-driven and convergence-order-sensitive
	// kernels keep CSR (forcing -layout=sell still overrides).
	DenseSweep bool
	// Params returns input-specific parameter defaults (e.g. SSSP delta).
	Params func(g *graph.CSR) map[string]int32
	// Verify checks outputs (by bound array) against the serial reference.
	Verify func(g *graph.CSR, get func(name string) []int32, getF func(name string) []float32, src int32) error
	// Reference computes the benchmark's output arrays serially: the last
	// resort of RunResilient's degradation chain. The returned maps use the
	// same array names as the compiled program, so Verify accepts them.
	Reference func(g *graph.CSR, params map[string]int32, src int32) *RunOutput
}

// All returns the paper's benchmark suite in presentation order (Table VIII).
func All() []*Benchmark {
	return []*Benchmark{
		BFSWL(), BFSCX(), BFSTP(), BFSHB(),
		SSSPNF(), CC(), TRI(), MIS(), PR(), MST(),
	}
}

// Extensions returns benchmarks added beyond the paper's suite.
func Extensions() []*Benchmark {
	return []*Benchmark{KCore(), PRDelta()}
}

// AllWithExtensions returns the paper suite followed by the extensions.
func AllWithExtensions() []*Benchmark {
	return append(All(), Extensions()...)
}

// ByName returns the named benchmark (paper suite or extension).
func ByName(name string) (*Benchmark, error) {
	for _, b := range AllWithExtensions() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// Names lists benchmark names in order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

func verifyLevels(g *graph.CSR, got []int32, src int32) error {
	want := RefBFS(g, src)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("bfs level of node %d = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
