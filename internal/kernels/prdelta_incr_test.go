package kernels

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// incrTolerance mirrors the pr-delta Verify bound: threshold truncation
// leaves up to ~eps/(1-d) abandoned mass per node, compounded slightly by
// repeated incremental rounds.
func incrClose(got, want float32) bool {
	return math.Abs(float64(got-want)) <= 2.5e-3+3e-2*float64(want)
}

// TestIncrementalPRDeltaDifferential drives a mutation stream through
// per-batch incremental updates and checks the final ranks against a
// from-scratch recompute on the final graph — the differential the serve
// compaction gate reuses as its sentinel.
func TestIncrementalPRDeltaDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.CSR
		del  float64
	}{
		{"random-insert-heavy", graph.Random(256, 1024, 4, 5), 0.2},
		{"random-delete-heavy", graph.Random(256, 2048, 4, 6), 0.7},
		{"road-ish", graph.Road(16, 16, 4, 7), 0.4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			st := NewPRDeltaState(g)
			ops, err := graph.GenMutations(g, 77, graph.MutGenOptions{
				Count: 300, DeleteFrac: tc.del, Skew: 0.4, MaxWeight: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			cur := g
			const batch = 50
			for i := 0; i < len(ops); i += batch {
				d := graph.NewDelta(cur, 0)
				end := i + batch
				if end > len(ops) {
					end = len(ops)
				}
				if err := d.Apply(graph.Batch{Seq: 1, Ops: ops[i:end]}); err != nil {
					t.Fatal(err)
				}
				next, err := d.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Update(cur, next, d.Touched()); err != nil {
					t.Fatal(err)
				}
				cur = next
			}
			want := RefPRDelta(cur)
			bad := 0
			for i := range want {
				if !incrClose(st.Rank[i], want[i]) {
					bad++
					if bad < 4 {
						t.Errorf("node %d: incremental rank %g, full recompute %g", i, st.Rank[i], want[i])
					}
				}
			}
			if bad > 0 {
				t.Fatalf("%d/%d nodes diverged", bad, len(want))
			}
		})
	}
}

// TestIncrementalPRDeltaMatchesFreshState: updating through mutations must
// agree with building the state directly on the final graph.
func TestIncrementalPRDeltaMatchesFreshState(t *testing.T) {
	g := graph.Random(128, 512, 1, 9)
	st := NewPRDeltaState(g)
	d := graph.NewDelta(g, 0)
	ops, err := graph.GenMutations(g, 5, graph.MutGenOptions{Count: 100, DeleteFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(graph.Batch{Seq: 1, Ops: ops}); err != nil {
		t.Fatal(err)
	}
	next, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Update(g, next, d.Touched()); err != nil {
		t.Fatal(err)
	}
	fresh := NewPRDeltaState(next)
	for i := range fresh.Rank {
		if !incrClose(st.Rank[i], fresh.Rank[i]) {
			t.Fatalf("node %d: updated %g vs fresh %g", i, st.Rank[i], fresh.Rank[i])
		}
	}
}

func TestIncrementalPRDeltaRejectsMismatch(t *testing.T) {
	a := graph.Random(16, 32, 1, 1)
	b := graph.Random(32, 64, 1, 1)
	st := NewPRDeltaState(a)
	if err := st.Update(a, b, nil); err == nil {
		t.Fatal("node-set mismatch accepted")
	}
	if err := st.Update(a, a, []int32{99}); err == nil {
		t.Fatal("out-of-range touched node accepted")
	}
}

func TestPRDeltaStateClone(t *testing.T) {
	g := graph.Random(32, 64, 1, 2)
	st := NewPRDeltaState(g)
	c := st.Clone()
	c.Rank[0] += 1
	if st.Rank[0] == c.Rank[0] {
		t.Fatal("Clone shares storage")
	}
}
