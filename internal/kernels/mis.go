package kernels

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
)

// MIS computes a maximal independent set with Luby's algorithm over static
// pseudo-random priorities (ties broken by node id). Each round, undecided
// nodes that are local priority minima join the set; their neighbors drop
// out. With fixed priorities the result is the unique greedy MIS in
// (priority, id) order, which the reference reproduces exactly. Requires a
// symmetrized input.
func MIS() *Benchmark {
	prog := &ir.Program{
		Name: "mis",
		Arrays: []ir.ArrayDecl{
			{Name: "pri", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitHash},
			{Name: "state", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero}, // 0 undecided, 1 in, 2 out
			{Name: "cand", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "changed", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{
			{
				// select: undecided local minima become candidates. The
				// candidacy bit is cleared through memory so the nested
				// loop stays NP-eligible (no outer register writes).
				Name:    "select",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.IfElse(ir.EqE(ir.Ld("state", ir.V("n")), ir.CI(0)),
						[]ir.Stmt{
							ir.St("cand", ir.V("n"), ir.CI(1)),
							ir.DeclI("p", ir.Ld("pri", ir.V("n"))),
							ir.ForE("e", ir.V("n"),
								ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
								ir.IfS(ir.EqE(ir.Ld("state", ir.V("dst")), ir.CI(0)),
									ir.DeclI("pd", ir.Ld("pri", ir.V("dst"))),
									ir.IfS(ir.OrE(ir.LtE(ir.V("pd"), ir.V("p")),
										ir.AndE(ir.EqE(ir.V("pd"), ir.V("p")), ir.LtE(ir.V("dst"), ir.V("n")))),
										ir.St("cand", ir.V("n"), ir.CI(0)),
									),
								),
							),
						},
						[]ir.Stmt{ir.St("cand", ir.V("n"), ir.CI(0))},
					),
				},
			},
			{
				// update: candidates join the set; neighbors of candidates
				// drop out; survivors raise the flag for another round.
				Name:    "update",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.IfS(ir.EqE(ir.Ld("state", ir.V("n")), ir.CI(0)),
						ir.IfElse(ir.EqE(ir.Ld("cand", ir.V("n")), ir.CI(1)),
							[]ir.Stmt{ir.St("state", ir.V("n"), ir.CI(1))},
							[]ir.Stmt{
								ir.ForE("e", ir.V("n"),
									ir.IfS(ir.EqE(ir.Ld("cand", &ir.EdgeDst{Edge: ir.V("e")}), ir.CI(1)),
										ir.St("state", ir.V("n"), ir.CI(2)),
									),
								),
								ir.IfS(ir.EqE(ir.Ld("state", ir.V("n")), ir.CI(0)),
									&ir.SetFlag{Flag: "changed"},
								),
							},
						),
					),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopFlag{
			Flag: "changed",
			Body: []ir.PipeStmt{&ir.Invoke{Kernel: "select"}, &ir.Invoke{Kernel: "update"}},
		}},
	}
	return &Benchmark{
		Name:           "mis",
		Prog:           prog,
		NeedsSymmetric: true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			pri := refPri(int(g.NumNodes()))
			in := RefMIS(g, pri)
			state := make([]int32, len(in))
			for i, ok := range in {
				if ok {
					state[i] = 1
				} else {
					state[i] = 2
				}
			}
			return &RunOutput{I: map[string][]int32{"state": state, "pri": pri}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, _ int32) error {
			state := get("state")
			pri := get("pri")
			want := RefMIS(g, pri)
			for i := range want {
				inSet := state[i] == 1
				if state[i] != 1 && state[i] != 2 {
					return fmt.Errorf("mis: node %d undecided (state %d)", i, state[i])
				}
				if inSet != want[i] {
					return fmt.Errorf("mis: node %d in-set = %v, want %v", i, inSet, want[i])
				}
			}
			return nil
		},
	}
}

// RefMIS computes the greedy lexicographically-first MIS in (priority, id)
// order: the unique fixpoint of Luby's algorithm under fixed priorities.
func RefMIS(g *graph.CSR, pri []int32) []bool {
	n := int(g.NumNodes())
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	less := func(a, b int32) bool {
		if pri[a] != pri[b] {
			return pri[a] < pri[b]
		}
		return a < b
	}
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
	in := make([]bool, n)
	out := make([]bool, n)
	for _, v := range order {
		if out[v] {
			continue
		}
		in[v] = true
		for _, d := range g.Neighbors(v) {
			out[d] = true
		}
	}
	return in
}
