package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ir"
)

// prDeltaEpsMil is the residual threshold in millionths (integer parameter):
// nodes whose accumulated residual exceeds eps are (re)activated.
const prDeltaEpsMil = 100 // 1e-4

// PRDelta is residual ("delta") PageRank: instead of sweeping all nodes
// every iteration, a worklist tracks nodes whose accumulated residual
// exceeds a threshold; an active node folds its residual into its rank and
// pushes damped shares to its neighbors' residuals, activating any neighbor
// that crosses the threshold. Work-efficient on graphs where rank converges
// unevenly.
//
// This benchmark is an EXTENSION beyond the paper's ten-kernel suite
// (the IrGL family includes a prdelta variant); it exercises float residual
// propagation through the worklist machinery. Claimed activation uses a CAS
// so duplicate worklist entries fold the residual exactly once.
func PRDelta() *Benchmark {
	prog := &ir.Program{
		Name: "pr-delta",
		Arrays: []ir.ArrayDecl{
			{Name: "rank", T: ir.F32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "resid", T: ir.F32, Size: ir.SizeNodes, Init: ir.InitInvN},
			{Name: "deg", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitDegree},
			{Name: "active", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplat, InitI: 1},
		},
		WLInit:     ir.WLAllNodes,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{{
			Name:    "push",
			Domain:  ir.DomainWL,
			ItemVar: "n",
			Body: []ir.Stmt{
				// Deactivate-and-claim: only one worklist duplicate folds.
				&ir.AtomicCAS{Arr: "active", Idx: ir.V("n"), Old: ir.CI(1), New: ir.CI(0), Success: "mine"},
				ir.IfS(ir.V("mine"),
					ir.DeclF("r", ir.Ld("resid", ir.V("n"))),
					ir.St("resid", ir.V("n"), ir.CF(0)),
					ir.St("rank", ir.V("n"), ir.AddE(ir.Ld("rank", ir.V("n")), ir.V("r"))),
					ir.DeclI("dg", ir.Ld("deg", ir.V("n"))),
					ir.IfS(ir.GtE(ir.V("dg"), ir.CI(0)),
						ir.DeclF("share", ir.B(ir.Div,
							ir.MulE(ir.CF(PRDamping), ir.V("r")), &ir.ToF{A: ir.V("dg")})),
						ir.ForE("e", ir.V("n"),
							ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
							&ir.AtomicAdd{Arr: "resid", Idx: ir.V("dst"), Val: ir.V("share")},
							// Activate the neighbor if its residual is above
							// threshold and it is not already queued.
							ir.IfS(ir.GtE(ir.Ld("resid", ir.V("dst")),
								ir.B(ir.Div, &ir.ToF{A: ir.P("epsmil")}, ir.CF(1e6))),
								&ir.AtomicCAS{Arr: "active", Idx: ir.V("dst"), Old: ir.CI(0), New: ir.CI(1), Success: "woke"},
								ir.IfS(ir.V("woke"), ir.PushOut(ir.V("dst"))),
							),
						),
					),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "push"}}}},
		// Residual propagation accumulates cross-task AtomicAdds that the
		// same round's threshold reads must observe; deferred execution
		// would defer them past the reads and stall convergence, so force
		// the live scheduler.
		LiveAtomics:   true,
		DefaultParams: map[string]int32{"epsmil": prDeltaEpsMil},
	}
	return &Benchmark{
		Name: "pr-delta",
		Prog: prog,
		// Float residual folding is processing-order-dependent; CSR only.
		OrderSensitive: true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			return &RunOutput{F: map[string][]float32{"rank": RefPRDelta(g)}}
		},
		Verify: func(g *graph.CSR, _ func(string) []int32, getF func(string) []float32, _ int32) error {
			got := getF("rank")
			want := RefPRDelta(g)
			for i := range want {
				// Truncation at the residual threshold is order-dependent
				// (sub-eps residuals merged in one order may cross the
				// threshold in another), so the tolerance includes the
				// abandoned-mass bound eps/(1-d) beyond float rounding.
				if math.Abs(float64(got[i]-want[i])) > 1.5e-3+2e-2*float64(want[i]) {
					return fmt.Errorf("pr-delta rank of node %d = %g, want %g", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

// RefPRDelta runs the same residual propagation serially with a FIFO queue.
// Note the rank normalization differs from power-iteration PageRank by the
// constant factor (1-d)/n — both orderings agree, and the parallel kernel is
// verified against this reference exactly.
func RefPRDelta(g *graph.CSR) []float32 {
	n := int(g.NumNodes())
	rank := make([]float32, n)
	resid := make([]float32, n)
	active := make([]bool, n)
	var queue []int32
	inv := float32(1) / float32(n)
	eps := float32(prDeltaEpsMil) / 1e6
	for i := 0; i < n; i++ {
		resid[i] = inv
		active[i] = true
		queue = append(queue, int32(i))
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !active[u] {
			continue
		}
		active[u] = false
		r := resid[u]
		resid[u] = 0
		rank[u] += r
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		share := PRDamping * r / float32(deg)
		for _, v := range g.Neighbors(u) {
			resid[v] += share
			if resid[v] >= eps && !active[v] {
				active[v] = true
				queue = append(queue, v)
			}
		}
	}
	return rank
}
