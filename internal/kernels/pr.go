package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ir"
)

// PageRank constants shared by EGACS, the references and the baselines:
// damping factor, L1-residual convergence threshold, iteration cap.
const (
	PRDamping = 0.85
	PREps     = 1e-3
	PRMaxIter = 60
)

// PR is push-style PageRank: each node scatters rank/degree to its
// out-neighbors with per-lane atomic float adds (lowered to cmpxchg loops —
// the atomic pressure the paper blames for PR's profile), then an apply
// kernel folds in the damping term and accumulates the L1 residual that
// drives convergence.
func PR() *Benchmark {
	prog := &ir.Program{
		Name: "pr",
		Arrays: []ir.ArrayDecl{
			{Name: "rank", T: ir.F32, Size: ir.SizeNodes, Init: ir.InitInvN},
			{Name: "nextin", T: ir.F32, Size: ir.SizeNodes, Init: ir.InitZero},
			{Name: "deg", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitDegree},
			{Name: "err", T: ir.F32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{
			{
				Name:    "scatter",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.DeclI("dg", ir.Ld("deg", ir.V("n"))),
					ir.IfS(ir.GtE(ir.V("dg"), ir.CI(0)),
						ir.DeclF("contrib", ir.B(ir.Div, ir.Ld("rank", ir.V("n")), &ir.ToF{A: ir.V("dg")})),
						ir.ForE("e", ir.V("n"),
							&ir.AtomicAdd{Arr: "nextin", Idx: &ir.EdgeDst{Edge: ir.V("e")}, Val: ir.V("contrib")},
						),
					),
				},
			},
			{
				Name:    "apply",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.DeclF("base", ir.B(ir.Div, ir.CF(1-PRDamping), &ir.ToF{A: &ir.NumNodes{}})),
					ir.DeclF("newr", ir.AddE(ir.V("base"),
						ir.MulE(ir.CF(PRDamping), ir.Ld("nextin", ir.V("n"))))),
					ir.DeclF("diff", ir.SubE(ir.V("newr"), ir.Ld("rank", ir.V("n")))),
					ir.DeclF("absdiff", ir.SelE(ir.GeE(ir.V("diff"), ir.CF(0)),
						ir.V("diff"), ir.SubE(ir.CF(0), ir.V("diff")))),
					&ir.AccumAdd{Acc: "err", Val: ir.V("absdiff")},
					ir.St("rank", ir.V("n"), ir.V("newr")),
					ir.St("nextin", ir.V("n"), ir.CF(0)),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopConverge{
			Acc: "err", Eps: PREps, MaxIter: PRMaxIter,
			Body: []ir.PipeStmt{&ir.Invoke{Kernel: "scatter"}, &ir.Invoke{Kernel: "apply"}},
		}},
	}
	return &Benchmark{
		Name: "pr",
		Prog: prog,
		// Float contributions accumulate into nextin in processing order;
		// a layout permutation changes the rounding. CSR only.
		OrderSensitive: true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			return &RunOutput{F: map[string][]float32{"rank": RefPR(g)}}
		},
		Verify: func(g *graph.CSR, _ func(string) []int32, getF func(string) []float32, _ int32) error {
			got := getF("rank")
			want := RefPR(g)
			for i := range want {
				if math.Abs(float64(got[i]-want[i])) > 1e-4+1e-2*float64(want[i]) {
					return fmt.Errorf("pr rank of node %d = %g, want %g", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

// RefPR runs the same damped power iteration serially in float32 with the
// same convergence rule.
func RefPR(g *graph.CSR) []float32 {
	n := int(g.NumNodes())
	rank := make([]float32, n)
	next := make([]float32, n)
	inv := float32(1) / float32(n)
	for i := range rank {
		rank[i] = inv
	}
	base := float32(1-PRDamping) / float32(n)
	for it := 0; it < PRMaxIter; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); u < g.NumNodes(); u++ {
			deg := g.Degree(u)
			if deg == 0 {
				continue
			}
			contrib := rank[u] / float32(deg)
			for _, v := range g.Neighbors(u) {
				next[v] += contrib
			}
		}
		var err float32
		for i := range rank {
			newr := base + PRDamping*next[i]
			d := newr - rank[i]
			if d < 0 {
				d = -d
			}
			err += d
			rank[i] = newr
		}
		if err <= PREps {
			break
		}
	}
	return rank
}
