package kernels

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
)

// mstEdgeBits encodes a (weight, edge-index) pair as weight<<24 | edge so a
// single AtomicMin selects each component's minimum outgoing edge with a
// deterministic tie-break. Requires weight < 64 (the generators' bound) and
// fewer than 2^24 directed edges.
const mstEdgeBits = 24

// MST is Boruvka's minimum spanning forest: every round each component
// selects its minimum-weight outgoing edge (atomic min over an encoded
// weight|edge key), larger-rooted components graft onto smaller roots —
// which breaks mutual-selection cycles — and pointer jumping recompresses
// labels. The total forest weight accumulates in "mstwt". Requires a
// symmetrized input.
func MST() *Benchmark {
	inf := Inf
	prog := &ir.Program{
		Name: "mst",
		Arrays: []ir.ArrayDecl{
			{Name: "comp", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitIota},
			{Name: "minedge", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplat, InitI: inf},
			{Name: "mstwt", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
			{Name: "changed", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{
			{
				Name:    "reset",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body:    []ir.Stmt{ir.St("minedge", ir.V("n"), ir.CI(inf))},
			},
			{
				Name:    "findmin",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.DeclI("cn", ir.Ld("comp", ir.V("n"))),
					ir.ForE("e", ir.V("n"),
						ir.DeclI("cd", ir.Ld("comp", &ir.EdgeDst{Edge: ir.V("e")})),
						ir.IfS(ir.NeE(ir.V("cn"), ir.V("cd")),
							ir.DeclI("enc", ir.B(ir.Or,
								ir.B(ir.Shl, &ir.EdgeWt{Edge: ir.V("e")}, ir.CI(mstEdgeBits)),
								ir.V("e"))),
							&ir.AtomicMin{Arr: "minedge", Idx: ir.V("cn"), Val: ir.V("enc")},
						),
					),
				},
			},
			{
				Name:    "union",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.IfS(ir.EqE(ir.Ld("comp", ir.V("n")), ir.V("n")), // roots only
						ir.DeclI("me", ir.Ld("minedge", ir.V("n"))),
						ir.IfS(ir.NeE(ir.V("me"), ir.CI(inf)),
							ir.DeclI("eidx", ir.B(ir.And, ir.V("me"), ir.CI(1<<mstEdgeBits-1))),
							ir.DeclI("other", ir.Ld("comp", &ir.EdgeDst{Edge: ir.V("eidx")})),
							ir.IfS(ir.LtE(ir.V("other"), ir.V("n")),
								ir.St("comp", ir.V("n"), ir.V("other")),
								&ir.AccumAdd{Acc: "mstwt", Val: ir.B(ir.Shr, ir.V("me"), ir.CI(mstEdgeBits))},
								&ir.SetFlag{Flag: "changed"},
							),
						),
					),
				},
			},
			{
				Name:    "compress",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.WhileS(ir.NeE(ir.Ld("comp", ir.Ld("comp", ir.V("n"))), ir.Ld("comp", ir.V("n"))),
						ir.St("comp", ir.V("n"), ir.Ld("comp", ir.Ld("comp", ir.V("n")))),
					),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopFlag{
			Flag: "changed",
			Body: []ir.PipeStmt{
				&ir.Invoke{Kernel: "reset"},
				&ir.Invoke{Kernel: "findmin"},
				&ir.Invoke{Kernel: "union"},
				&ir.Invoke{Kernel: "compress"},
			},
		}},
	}
	return &Benchmark{
		Name:           "mst",
		Prog:           prog,
		NeedsSymmetric: true,
		DenseSweep:     true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{
				"mstwt": {RefMST(g)},
				"comp":  RefCC(g),
			}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, _ int32) error {
			got := get("mstwt")[0]
			want := RefMST(g)
			if got != want {
				return fmt.Errorf("mst total weight = %d, want %d", got, want)
			}
			// The final labeling must also be a valid partition into the
			// reference components (a spanning forest spans components).
			comp := get("comp")
			ref := RefCC(g)
			for u := int32(0); u < g.NumNodes(); u++ {
				for _, v := range g.Neighbors(u) {
					if (comp[u] == comp[v]) != (ref[u] == ref[v]) {
						return fmt.Errorf("mst components disagree on edge %d-%d", u, v)
					}
				}
			}
			return nil
		},
	}
}

// RefMST computes the minimum spanning forest weight with Kruskal's
// algorithm. All minimum spanning forests share the same total weight, so
// the comparison is tie-break independent.
func RefMST(g *graph.CSR) int32 {
	type we struct {
		w    int32
		u, v int32
	}
	edges := make([]we, 0, g.NumEdges())
	for u := int32(0); u < g.NumNodes(); u++ {
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			v := g.EdgeDst[e]
			if u < v { // each undirected edge once
				edges = append(edges, we{g.EdgeWeight(e), u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]int32, g.NumNodes())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total int32
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += e.w
		}
	}
	return total
}
