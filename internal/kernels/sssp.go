package kernels

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// SSSPNF is near-far single-source shortest paths (sssp-nf): relaxations
// below the current threshold go to the near list and are processed this
// band; the rest accumulate in the far list and are promoted when the band
// drains, with the threshold advanced by DELTA. As in the paper, DELTA is
// input-specific (Params picks it from the graph's weight scale).
func SSSPNF() *Benchmark {
	prog := &ir.Program{
		Name: "sssp-nf",
		Arrays: []ir.ArrayDecl{
			{Name: "dist", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: Inf, SrcVal: 0},
		},
		WLInit:     ir.WLSrc,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{{
			Name:    "relax",
			Domain:  ir.DomainWL,
			ItemVar: "node",
			Body: []ir.Stmt{
				ir.DeclI("d", ir.Ld("dist", ir.V("node"))),
				// Stale entries (dist improved since push) still relax
				// correctly: d rereads the current distance.
				ir.ForE("e", ir.V("node"),
					ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
					ir.DeclI("nd", ir.AddE(ir.V("d"), &ir.EdgeWt{Edge: ir.V("e")})),
					// Test-and-test-and-set around the relaxation atomic.
					ir.IfS(ir.GtE(ir.Ld("dist", ir.V("dst")), ir.V("nd")),
						&ir.AtomicMin{Arr: "dist", Idx: ir.V("dst"), Val: ir.V("nd"), Success: "won"},
						ir.IfS(ir.V("won"),
							ir.IfElse(ir.LtE(ir.V("nd"), ir.P("threshold")),
								[]ir.Stmt{ir.PushTo("near", ir.V("dst"))},
								[]ir.Stmt{ir.PushTo("far", ir.V("dst"))},
							),
						),
					),
				),
			},
		}},
		Pipe:          []ir.PipeStmt{&ir.LoopNearFar{Kernel: "relax", DeltaParam: "delta"}},
		DefaultParams: map[string]int32{"delta": 32},
	}
	return &Benchmark{
		Name: "sssp-nf",
		Prog: prog,
		Params: func(g *graph.CSR) map[string]int32 {
			// DELTA ~ average weight: one band covers roughly one hop on
			// typical paths, the standard near-far setting.
			var maxW int32 = 1
			for _, w := range g.Weight {
				if w > maxW {
					maxW = w
				}
			}
			return map[string]int32{"delta": maxW / 2}
		},
		Reference: func(g *graph.CSR, _ map[string]int32, src int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"dist": RefSSSP(g, src)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, src int32) error {
			want := RefSSSP(g, src)
			got := get("dist")
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("sssp dist of node %d = %d, want %d", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

// RefSSSP is Dijkstra's algorithm, the serial reference for sssp-nf.
func RefSSSP(g *graph.CSR, src int32) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= g.NumNodes() {
		return dist
	}
	dist[src] = 0
	pq := &nodeHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if it.d > dist[it.n] {
			continue
		}
		for e := g.RowPtr[it.n]; e < g.RowPtr[it.n+1]; e++ {
			d := g.EdgeDst[e]
			nd := it.d + g.EdgeWeight(e)
			if nd < dist[d] {
				dist[d] = nd
				heap.Push(pq, nodeDist{d, nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	n int32
	d int32
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
