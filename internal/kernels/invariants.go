package kernels

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
)

// State is the read-only view of a running instance that invariant
// validators check at checkpoint time. Cur* return live array contents,
// Prev* the contents at the last verified checkpoint (nil before the first
// checkpoint — evolution rules are skipped then, range rules still apply).
// codegen.StateView implements it structurally.
type State interface {
	Graph() *graph.CSR
	CurI(name string) []int32
	CurF(name string) []float32
	PrevI(name string) []int32
	PrevF(name string) []float32
	// Frontier returns the pipeline-in worklist size, -1 when the program
	// has no worklist; FrontierCap its capacity.
	Frontier() int
	FrontierCap() int
}

// Invariant validates kernel-specific algorithmic invariants against live
// state. A non-nil error (wrapping fault.ErrInvariantViolation) marks the
// state corrupt: the would-be checkpoint is rejected and the run rolls back.
type Invariant func(State) error

// InvariantFor returns the invariant validator for a benchmark, nil when the
// kernel has no checkable invariants. The catalog (see DESIGN.md "Failure
// model"):
//
//	bfs-*    levels in [0, Inf] and never increasing; frontier within capacity
//	sssp-nf  distances in [0, Inf] and never increasing; frontier within capacity
//	cc, mst  labels in [0, i] and monotonically decreasing
//	mst      accumulated forest weight never decreasing
//	kcore    residual degrees in [0, degree(i)] and never increasing;
//	         alive flags in {0,1} and never resurrected
//	mis      priorities frozen; decided states frozen; states in [0,2]
//	pr*      degree array frozen to the graph's degrees
//	tri      triangle count non-negative and never decreasing
func InvariantFor(name string) Invariant {
	switch name {
	case "bfs-wl", "bfs-cx", "bfs-tp", "bfs-hb":
		return func(s State) error {
			if err := checkRangeI(name, "lvl-range", "lvl", s.CurI("lvl"), 0, Inf); err != nil {
				return err
			}
			if err := checkMonotoneDown(name, "lvl-monotone", "lvl", s.CurI("lvl"), s.PrevI("lvl")); err != nil {
				return err
			}
			return checkFrontier(name, s)
		}
	case "sssp-nf":
		return func(s State) error {
			if err := checkRangeI(name, "dist-range", "dist", s.CurI("dist"), 0, Inf); err != nil {
				return err
			}
			if err := checkMonotoneDown(name, "dist-monotone", "dist", s.CurI("dist"), s.PrevI("dist")); err != nil {
				return err
			}
			return checkFrontier(name, s)
		}
	case "cc":
		return func(s State) error {
			if err := checkLabels(name, s.CurI("comp")); err != nil {
				return err
			}
			return checkMonotoneDown(name, "comp-monotone", "comp", s.CurI("comp"), s.PrevI("comp"))
		}
	case "mst":
		return func(s State) error {
			if err := checkLabels(name, s.CurI("comp")); err != nil {
				return err
			}
			if err := checkMonotoneDown(name, "comp-monotone", "comp", s.CurI("comp"), s.PrevI("comp")); err != nil {
				return err
			}
			// minedge is excluded: it is reset to Inf every round, so it has
			// no cross-checkpoint evolution rule.
			cur := s.CurI("mstwt")
			if len(cur) > 0 && cur[0] < 0 {
				return violation(name, "mstwt-range", "mstwt", 0, fmt.Sprintf("weight %d < 0", cur[0]))
			}
			if prev := s.PrevI("mstwt"); len(prev) > 0 && len(cur) > 0 && cur[0] < prev[0] {
				return violation(name, "mstwt-monotone", "mstwt", 0,
					fmt.Sprintf("weight decreased %d -> %d", prev[0], cur[0]))
			}
			return nil
		}
	case "kcore":
		return func(s State) error {
			g := s.Graph()
			deg, alive := s.CurI("deg"), s.CurI("alive")
			for i, d := range deg {
				if max := g.Degree(int32(i)); d < 0 || d > max {
					return violation(name, "deg-range", "deg", i,
						fmt.Sprintf("residual degree %d outside [0,%d]", d, max))
				}
			}
			if err := checkMonotoneDown(name, "deg-monotone", "deg", deg, s.PrevI("deg")); err != nil {
				return err
			}
			if err := checkRangeI(name, "alive-range", "alive", alive, 0, 1); err != nil {
				return err
			}
			if err := checkMonotoneDown(name, "alive-monotone", "alive", alive, s.PrevI("alive")); err != nil {
				return err
			}
			return checkFrontier(name, s)
		}
	case "mis":
		return func(s State) error {
			if err := checkFrozen(name, "pri-frozen", "pri", s.CurI("pri"), s.PrevI("pri")); err != nil {
				return err
			}
			state := s.CurI("state")
			if err := checkRangeI(name, "state-range", "state", state, 0, 2); err != nil {
				return err
			}
			if prev := s.PrevI("state"); prev != nil {
				for i := range state {
					if prev[i] != 0 && state[i] != prev[i] {
						return violation(name, "state-frozen", "state", i,
							fmt.Sprintf("decided state changed %d -> %d", prev[i], state[i]))
					}
				}
			}
			return checkRangeI(name, "cand-range", "cand", s.CurI("cand"), 0, 1)
		}
	case "pr", "pr-delta":
		return func(s State) error {
			g := s.Graph()
			deg := s.CurI("deg")
			for i, d := range deg {
				if want := g.Degree(int32(i)); d != want {
					return violation(name, "deg-frozen", "deg", i,
						fmt.Sprintf("degree %d != graph degree %d", d, want))
				}
			}
			return nil
		}
	case "tri":
		return func(s State) error {
			cur := s.CurI("count")
			if len(cur) > 0 && cur[0] < 0 {
				return violation(name, "count-range", "count", 0, fmt.Sprintf("count %d < 0", cur[0]))
			}
			if prev := s.PrevI("count"); len(prev) > 0 && len(cur) > 0 && cur[0] < prev[0] {
				return violation(name, "count-monotone", "count", 0,
					fmt.Sprintf("count decreased %d -> %d", prev[0], cur[0]))
			}
			return nil
		}
	}
	return nil
}

func violation(kernel, rule, array string, index int, detail string) error {
	return &fault.InvariantError{Kernel: kernel, Rule: rule, Array: array, Index: index, Detail: detail}
}

// checkRangeI verifies lo <= v <= hi for every element.
func checkRangeI(kernel, rule, array string, cur []int32, lo, hi int32) error {
	for i, v := range cur {
		if v < lo || v > hi {
			return violation(kernel, rule, array, i, fmt.Sprintf("value %d outside [%d,%d]", v, lo, hi))
		}
	}
	return nil
}

// checkMonotoneDown verifies no element increased since the last checkpoint.
func checkMonotoneDown(kernel, rule, array string, cur, prev []int32) error {
	if prev == nil || len(prev) != len(cur) {
		return nil
	}
	for i, v := range cur {
		if v > prev[i] {
			return violation(kernel, rule, array, i, fmt.Sprintf("value increased %d -> %d", prev[i], v))
		}
	}
	return nil
}

// checkFrozen verifies the array is bit-identical to the last checkpoint.
func checkFrozen(kernel, rule, array string, cur, prev []int32) error {
	if prev == nil || len(prev) != len(cur) {
		return nil
	}
	for i, v := range cur {
		if v != prev[i] {
			return violation(kernel, rule, array, i, fmt.Sprintf("frozen value changed %d -> %d", prev[i], v))
		}
	}
	return nil
}

// checkLabels verifies the union-find label invariant comp[i] in [0, i] that
// min-hooking with iota initialization maintains.
func checkLabels(kernel string, comp []int32) error {
	for i, v := range comp {
		if v < 0 || v > int32(i) {
			return violation(kernel, "comp-range", "comp", i, fmt.Sprintf("label %d outside [0,%d]", v, i))
		}
	}
	return nil
}

// checkFrontier verifies the worklist size is within its capacity. Worklists
// may carry duplicates, so the size is bounded by the list's capacity rather
// than |V|.
func checkFrontier(kernel string, s State) error {
	f := s.Frontier()
	if f < 0 {
		return nil // program has no worklist
	}
	if c := s.FrontierCap(); f > c {
		return violation(kernel, "frontier-bound", "", -1, fmt.Sprintf("frontier %d exceeds capacity %d", f, c))
	}
	return nil
}
