package kernels

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// RunOutput is one run's output arrays, keyed by the program's array names
// ("lvl", "dist", "comp", "rank", ...). The vector engine, the scalar
// baseline frameworks and the serial references all report through it, so
// degradation is transparent to result consumers.
type RunOutput struct {
	I map[string][]int32
	F map[string][]float32
}

// GetI returns an int array by name (nil when absent), matching the
// Benchmark.Verify accessor shape.
func (o *RunOutput) GetI(name string) []int32 { return o.I[name] }

// GetF returns a float array by name (nil when absent).
func (o *RunOutput) GetF(name string) []float32 { return o.F[name] }

// Verify checks the output against the benchmark's serial reference.
func (o *RunOutput) Verify(b *Benchmark, g *graph.CSR, src int32) error {
	if b.Verify == nil {
		return nil
	}
	return b.Verify(g, o.GetI, o.GetF, src)
}

// FallbackRunner is one scalar implementation that can serve a benchmark
// when the vector engine fails. The indirection keeps this package free of a
// dependency on internal/baselines (which itself imports kernels); the core
// driver wires the baseline frameworks in.
type FallbackRunner struct {
	// Name identifies the path in ResilientResult.Path (e.g. "ligra").
	Name string
	// Run executes the benchmark scalarly; a nil func or an error moves the
	// chain to the next fallback.
	Run func(b *Benchmark, g *graph.CSR, src int32) (*RunOutput, error)
}

// ResilientResult reports which path of the degradation chain served a
// resilient run, with the errors of every failed attempt.
type ResilientResult struct {
	Output *RunOutput
	// Path is "vector", "vector-retry", a fallback's name, or "reference".
	Path string
	// Attempts holds the error of each failed attempt, in order; empty when
	// the first vector attempt succeeded.
	Attempts []error
}

// Degraded reports whether a non-vector path served the result.
func (r *ResilientResult) Degraded() bool {
	return r.Path != "vector" && r.Path != "vector-retry"
}

// RunResilient executes a benchmark with graceful degradation: the vector
// attempt is retried once on failure (transient injected faults may clear),
// then each fallback runs in order, and finally the benchmark's serial
// Reference serves the result. Every failure is recorded in Attempts; an
// error returns only when every path is exhausted.
func RunResilient(b *Benchmark, g *graph.CSR, params map[string]int32, src int32,
	vector func() (*RunOutput, error), fallbacks []FallbackRunner) (*ResilientResult, error) {
	res := &ResilientResult{}
	for attempt := 0; attempt < 2; attempt++ {
		out, err := vector()
		if err == nil {
			res.Output = out
			res.Path = "vector"
			if attempt > 0 {
				res.Path = "vector-retry"
			}
			return res, nil
		}
		res.Attempts = append(res.Attempts, err)
	}
	for _, fb := range fallbacks {
		if fb.Run == nil {
			continue
		}
		out, err := fb.Run(b, g, src)
		if err == nil {
			res.Output = out
			res.Path = fb.Name
			return res, nil
		}
		res.Attempts = append(res.Attempts, fmt.Errorf("%s: %w", fb.Name, err))
	}
	if b.Reference != nil {
		res.Output = b.Reference(g, params, src)
		res.Path = "reference"
		return res, nil
	}
	return res, fmt.Errorf("kernels: %s: all execution paths failed: %w",
		b.Name, errors.Join(res.Attempts...))
}

// refPri reproduces the InitHash priority initialization of the compiled MIS
// program, so serial references agree with the vector kernels on priorities.
func refPri(n int) []int32 {
	pri := make([]int32, n)
	for i := range pri {
		u := uint32(i) * 2654435761
		u ^= u >> 15
		u *= 2246822519
		u ^= u >> 13
		pri[i] = int32(u) & 0x7fffffff
	}
	return pri
}
