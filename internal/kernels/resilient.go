package kernels

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// RunOutput is one run's output arrays, keyed by the program's array names
// ("lvl", "dist", "comp", "rank", ...). The vector engine, the scalar
// baseline frameworks and the serial references all report through it, so
// degradation is transparent to result consumers.
type RunOutput struct {
	I map[string][]int32
	F map[string][]float32
}

// GetI returns an int array by name (nil when absent), matching the
// Benchmark.Verify accessor shape.
func (o *RunOutput) GetI(name string) []int32 { return o.I[name] }

// GetF returns a float array by name (nil when absent).
func (o *RunOutput) GetF(name string) []float32 { return o.F[name] }

// Verify checks the output against the benchmark's serial reference.
func (o *RunOutput) Verify(b *Benchmark, g *graph.CSR, src int32) error {
	if b.Verify == nil {
		return nil
	}
	return b.Verify(g, o.GetI, o.GetF, src)
}

// FallbackRunner is one scalar implementation that can serve a benchmark
// when the vector engine fails. The indirection keeps this package free of a
// dependency on internal/baselines (which itself imports kernels); the core
// driver wires the baseline frameworks in.
type FallbackRunner struct {
	// Name identifies the path in ResilientResult.Path (e.g. "ligra").
	Name string
	// Run executes the benchmark scalarly; a nil func or an error moves the
	// chain to the next fallback.
	Run func(b *Benchmark, g *graph.CSR, src int32) (*RunOutput, error)
}

// RecoveryCounts reports checkpoint/rollback activity of one vector attempt,
// mirroring codegen.RecoveryStats without importing that package.
type RecoveryCounts struct {
	// Checkpoints is the number of verified checkpoints taken.
	Checkpoints int
	// Rollbacks is the number of rollback re-executions performed.
	Rollbacks int
	// BadCheckpoints counts checkpoint attempts rejected by invariant
	// validation (detected silent corruption).
	BadCheckpoints int
	// WastedCycles is the modeled work discarded by rollbacks.
	WastedCycles float64
}

// Cost quantifies what one vector attempt consumed — modeled cycles
// (including work later discarded by rollbacks) and its recovery activity.
// Reported even for failed attempts, so degradation cost is measurable.
type Cost struct {
	Cycles   float64
	Recovery RecoveryCounts
	// Backend names the kernel backend a vector attempt executed on
	// ("interp" or "compiled"); scalar fallbacks leave it empty.
	Backend string
}

// Attempt is one entry of a resilient run's execution history: every path
// tried (including the one that served), its error (nil for the serving
// attempt), its modeled cycles where the path models time (vector attempts;
// scalar fallbacks and the reference report zero), host wall time, and the
// attempt's checkpoint/rollback counters.
type Attempt struct {
	Path     string
	Err      error
	Cycles   float64
	WallNS   int64
	Recovery RecoveryCounts
	// Backend is the kernel backend of a vector attempt ("interp" or
	// "compiled"); empty for scalar fallbacks and the reference.
	Backend string
}

// ResilientResult reports which path of the degradation chain served a
// resilient run, with the errors of every failed attempt.
type ResilientResult struct {
	Output *RunOutput
	// Path is "vector", "vector-retry", a fallback's name, or "reference".
	Path string
	// Attempts holds the error of each failed attempt, in order; empty when
	// the first vector attempt succeeded.
	Attempts []error
	// History records every attempt in order — failed and serving alike —
	// with per-attempt modeled cycles, wall time and recovery counters.
	History []Attempt
}

// Degraded reports whether a non-vector path served the result.
func (r *ResilientResult) Degraded() bool {
	return r.Path != "vector" && r.Path != "vector-retry"
}

// ServingBackend returns the kernel backend of the attempt that served the
// result ("interp" or "compiled"); empty when a scalar path served.
func (r *ResilientResult) ServingBackend() string {
	for i := len(r.History) - 1; i >= 0; i-- {
		if a := r.History[i]; a.Err == nil && a.Path == r.Path {
			return a.Backend
		}
	}
	return ""
}

// TotalRecovery sums the recovery counters across all attempts.
func (r *ResilientResult) TotalRecovery() RecoveryCounts {
	var t RecoveryCounts
	for _, a := range r.History {
		t.Checkpoints += a.Recovery.Checkpoints
		t.Rollbacks += a.Recovery.Rollbacks
		t.BadCheckpoints += a.Recovery.BadCheckpoints
		t.WastedCycles += a.Recovery.WastedCycles
	}
	return t
}

// RunResilient executes a benchmark with graceful degradation: the vector
// attempt — which may itself absorb faults via checkpoint rollback before
// failing — is retried once on failure (injected faults draw fresh variates
// and may clear), then each fallback runs in order, and finally the
// benchmark's serial Reference serves the result. Every attempt is recorded
// in History with its cost; failures additionally land in Attempts. An error
// returns only when every path is exhausted.
//
// ctx gates the chain between attempts: once it is done (a caller deadline
// expired, or the client behind a request disconnected) no further path is
// tried — there is nobody left to serve — and the run returns a typed
// deadline BudgetError alongside the history so far. Mid-kernel cancellation
// is the budget layer's job: callers that want a run stopped inside a pipe
// loop arm fault.Budget.Ctx, which the loop guards check every iteration.
// A nil ctx disables the gate.
//
// A nil vector func skips the vector attempts entirely and serves from the
// scalar ladder — the overload-degradation path of the serving layer.
func RunResilient(ctx context.Context, b *Benchmark, g *graph.CSR, params map[string]int32, src int32,
	vector func() (*RunOutput, Cost, error), fallbacks []FallbackRunner) (*ResilientResult, error) {
	res := &ResilientResult{}
	record := func(path string, err error, cost Cost, start time.Time) {
		res.History = append(res.History, Attempt{
			Path: path, Err: err, Cycles: cost.Cycles,
			WallNS: time.Since(start).Nanoseconds(), Recovery: cost.Recovery,
			Backend: cost.Backend,
		})
		if err != nil {
			res.Attempts = append(res.Attempts, err)
		}
	}
	cancelled := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("kernels: %s: degradation chain abandoned: %w",
				b.Name, &fault.BudgetError{Resource: "deadline", Cause: err})
		}
		return nil
	}
	if vector != nil {
		for attempt := 0; attempt < 2; attempt++ {
			if cerr := cancelled(); cerr != nil {
				return res, cerr
			}
			path := "vector"
			if attempt > 0 {
				path = "vector-retry"
			}
			start := time.Now()
			out, cost, err := vector()
			record(path, err, cost, start)
			if err == nil {
				res.Output = out
				res.Path = path
				return res, nil
			}
		}
	}
	for _, fb := range fallbacks {
		if fb.Run == nil {
			continue
		}
		if cerr := cancelled(); cerr != nil {
			return res, cerr
		}
		start := time.Now()
		out, err := fb.Run(b, g, src)
		if err != nil {
			err = fmt.Errorf("%s: %w", fb.Name, err)
		}
		record(fb.Name, err, Cost{}, start)
		if err == nil {
			res.Output = out
			res.Path = fb.Name
			return res, nil
		}
	}
	if b.Reference != nil {
		if cerr := cancelled(); cerr != nil {
			return res, cerr
		}
		start := time.Now()
		res.Output = b.Reference(g, params, src)
		record("reference", nil, Cost{}, start)
		res.Path = "reference"
		return res, nil
	}
	return res, fmt.Errorf("kernels: %s: all execution paths failed: %w",
		b.Name, errors.Join(res.Attempts...))
}

// refPri reproduces the InitHash priority initialization of the compiled MIS
// program, so serial references agree with the vector kernels on priorities.
func refPri(n int) []int32 {
	pri := make([]int32, n)
	for i := range pri {
		u := uint32(i) * 2654435761
		u ^= u >> 15
		u *= 2246822519
		u ^= u >> 13
		pri[i] = int32(u) & 0x7fffffff
	}
	return pri
}
