package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// TRI counts triangles by merge-intersecting sorted adjacency lists: for
// each edge (u,v) with u < v, common neighbors w > v each witness one
// triangle, so every triangle is counted exactly once. Requires a
// symmetrized, sorted input.
func TRI() *Benchmark {
	prog := &ir.Program{
		Name: "tri",
		Arrays: []ir.ArrayDecl{
			{Name: "count", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{{
			Name:    "tri",
			Domain:  ir.DomainNodes,
			ItemVar: "u",
			Body: []ir.Stmt{
				ir.ForE("e", ir.V("u"),
					ir.DeclI("v", &ir.EdgeDst{Edge: ir.V("e")}),
					ir.IfS(ir.GtE(ir.V("v"), ir.V("u")),
						ir.DeclI("pu", &ir.RowStart{Node: ir.V("u")}),
						ir.DeclI("eu", &ir.RowEnd{Node: ir.V("u")}),
						ir.DeclI("pv", &ir.RowStart{Node: ir.V("v")}),
						ir.DeclI("ev", &ir.RowEnd{Node: ir.V("v")}),
						ir.DeclI("t", ir.CI(0)),
						ir.WhileS(ir.AndE(ir.LtE(ir.V("pu"), ir.V("eu")), ir.LtE(ir.V("pv"), ir.V("ev"))),
							ir.DeclI("a", &ir.EdgeDst{Edge: ir.V("pu")}),
							ir.DeclI("b", &ir.EdgeDst{Edge: ir.V("pv")}),
							ir.IfS(ir.AndE(ir.EqE(ir.V("a"), ir.V("b")), ir.GtE(ir.V("a"), ir.V("v"))),
								ir.Set("t", ir.AddE(ir.V("t"), ir.CI(1))),
							),
							ir.IfS(ir.LeE(ir.V("a"), ir.V("b")),
								ir.Set("pu", ir.AddE(ir.V("pu"), ir.CI(1))),
							),
							ir.IfS(ir.GeE(ir.V("a"), ir.V("b")),
								ir.Set("pv", ir.AddE(ir.V("pv"), ir.CI(1))),
							),
						),
						&ir.AccumAdd{Acc: "count", Val: ir.V("t")},
					),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.Invoke{Kernel: "tri"}},
	}
	return &Benchmark{
		Name:           "tri",
		Prog:           prog,
		NeedsSymmetric: true,
		DenseSweep:     true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"count": {RefTRI(g)}}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, _ int32) error {
			got := get("count")[0]
			want := RefTRI(g)
			if got != want {
				return fmt.Errorf("tri count = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// RefTRI counts triangles on a symmetrized sorted graph by the same
// u < v < w orientation.
func RefTRI(g *graph.CSR) int32 {
	var count int32
	for u := int32(0); u < g.NumNodes(); u++ {
		nu := g.Neighbors(u)
		for _, v := range nu {
			if v <= u {
				continue
			}
			nv := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				a, b := nu[i], nv[j]
				switch {
				case a == b:
					if a > v {
						count++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}
