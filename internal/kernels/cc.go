package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// CC is connected components via hooking and pointer jumping
// (Shiloach–Vishkin style): each round hooks the larger component label onto
// the smaller across every edge, then compresses label chains, converging in
// O(log n) rounds. Requires a symmetrized input.
func CC() *Benchmark {
	prog := &ir.Program{
		Name: "cc",
		Arrays: []ir.ArrayDecl{
			{Name: "comp", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitIota},
			{Name: "changed", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{
			{
				Name:    "hook",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.ForE("e", ir.V("n"),
						ir.DeclI("cn", ir.Ld("comp", ir.V("n"))),
						ir.DeclI("cd", ir.Ld("comp", &ir.EdgeDst{Edge: ir.V("e")})),
						ir.IfS(ir.LtE(ir.V("cn"), ir.V("cd")), // hook cd's label down to cn
							&ir.AtomicMin{Arr: "comp", Idx: ir.V("cd"), Val: ir.V("cn"), Success: "w1"},
							ir.IfS(ir.V("w1"), &ir.SetFlag{Flag: "changed"}),
						),
						ir.IfS(ir.GtE(ir.V("cn"), ir.V("cd")),
							ir.IfS(ir.NeE(ir.V("cn"), ir.V("cd")),
								&ir.AtomicMin{Arr: "comp", Idx: ir.V("cn"), Val: ir.V("cd"), Success: "w2"},
								ir.IfS(ir.V("w2"), &ir.SetFlag{Flag: "changed"}),
							),
						),
					),
				},
			},
			{
				Name:    "jump",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.WhileS(ir.NeE(ir.Ld("comp", ir.Ld("comp", ir.V("n"))), ir.Ld("comp", ir.V("n"))),
						ir.St("comp", ir.V("n"), ir.Ld("comp", ir.Ld("comp", ir.V("n")))),
					),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopFlag{
			Flag: "changed",
			Body: []ir.PipeStmt{&ir.Invoke{Kernel: "hook"}, &ir.Invoke{Kernel: "jump"}},
		}},
	}
	return &Benchmark{
		Name:           "cc",
		Prog:           prog,
		NeedsSymmetric: true,
		DenseSweep:     true,
		Reference: func(g *graph.CSR, _ map[string]int32, _ int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"comp": RefCC(g)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, _ int32) error {
			got := get("comp")
			want := RefCC(g)
			// Partitions must match: same label iff same reference component.
			labelOf := map[int32]int32{}
			for i := range got {
				w := want[i]
				if rep, ok := labelOf[got[i]]; ok {
					if rep != w {
						return fmt.Errorf("cc: label %d spans reference components %d and %d", got[i], rep, w)
					}
				} else {
					labelOf[got[i]] = w
				}
			}
			// And distinct reference components must have distinct labels.
			seen := map[int32]int32{}
			for i := range got {
				if lbl, ok := seen[want[i]]; ok {
					if lbl != got[i] {
						return fmt.Errorf("cc: reference component %d got labels %d and %d", want[i], lbl, got[i])
					}
				} else {
					seen[want[i]] = got[i]
				}
			}
			return nil
		},
	}
}

// RefCC labels components with union-find; labels are each component's
// minimum node id.
func RefCC(g *graph.CSR) []int32 {
	n := int(g.NumNodes())
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			ru, rv := find(u), find(v)
			if ru < rv {
				parent[rv] = ru
			} else if rv < ru {
				parent[ru] = rv
			}
		}
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = find(int32(i))
	}
	return out
}
