package kernels

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func path4() *graph.CSR {
	// 0 -1- 1 -2- 2 -3- 3 (undirected, weighted)
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 1, Dst: 2, W: 2}, {Src: 2, Dst: 1, W: 2},
		{Src: 2, Dst: 3, W: 3}, {Src: 3, Dst: 2, W: 3},
	}, true)
	if err != nil {
		panic(err)
	}
	g.SortAdjacency()
	return g
}

func TestRefBFSPath(t *testing.T) {
	lvl := RefBFS(path4(), 0)
	want := []int32{0, 1, 2, 3}
	for i, w := range want {
		if lvl[i] != w {
			t.Errorf("lvl[%d] = %d, want %d", i, lvl[i], w)
		}
	}
	// Unreachable nodes stay Inf; out-of-range source is total.
	iso, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 1}}, false)
	lvl = RefBFS(iso, 0)
	if lvl[2] != Inf {
		t.Error("unreachable node must stay Inf")
	}
	lvl = RefBFS(iso, -1)
	if lvl[0] != Inf {
		t.Error("invalid source must reach nothing")
	}
}

func TestRefSSSPPath(t *testing.T) {
	dist := RefSSSP(path4(), 0)
	want := []int32{0, 1, 3, 6}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

// Property: on unit-weight graphs, SSSP distances equal BFS levels.
func TestSSSPEqualsBFSOnUnitWeights(t *testing.T) {
	f := func(seed uint16) bool {
		g := graph.Random(64, 256, 1, uint64(seed))
		src := g.MaxDegreeNode()
		bfs := RefBFS(g, src)
		sssp := RefSSSP(g, src)
		for i := range bfs {
			if bfs[i] != sssp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRefCCPartitions(t *testing.T) {
	// Two components: {0,1,2}, {3,4}.
	g, _ := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 1, W: 1},
		{Src: 3, Dst: 4, W: 1}, {Src: 4, Dst: 3, W: 1},
	}, false)
	comp := RefCC(g)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("first component split")
	}
	if comp[3] != comp[4] || comp[0] == comp[3] {
		t.Error("components merged or split")
	}
	// Labels are component minima.
	if comp[0] != 0 || comp[3] != 3 {
		t.Errorf("labels not minima: %v", comp)
	}
}

func TestRefTRICounts(t *testing.T) {
	// A triangle plus a pendant edge: exactly one triangle.
	g, _ := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 1, W: 1},
		{Src: 0, Dst: 2, W: 1}, {Src: 2, Dst: 0, W: 1},
		{Src: 2, Dst: 3, W: 1}, {Src: 3, Dst: 2, W: 1},
	}, false)
	g.SortAdjacency()
	if got := RefTRI(g); got != 1 {
		t.Errorf("triangles = %d, want 1", got)
	}
	// K4 has 4 triangles.
	var edges []graph.Edge
	for u := int32(0); u < 4; u++ {
		for v := int32(0); v < 4; v++ {
			if u != v {
				edges = append(edges, graph.Edge{Src: u, Dst: v, W: 1})
			}
		}
	}
	k4, _ := graph.FromEdges(4, edges, false)
	k4.SortAdjacency()
	if got := RefTRI(k4); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
}

func TestRefMISIndependentAndMaximal(t *testing.T) {
	g := graph.Road(8, 8, 4, 3).Symmetrize()
	pri := make([]int32, g.NumNodes())
	for i := range pri {
		pri[i] = int32((i * 2654435761) & 0x7fffffff)
	}
	in := RefMIS(g, pri)
	for u := int32(0); u < g.NumNodes(); u++ {
		if in[u] {
			for _, v := range g.Neighbors(u) {
				if in[v] {
					t.Fatalf("adjacent nodes %d,%d both in set", u, v)
				}
			}
		} else {
			// Maximality: some neighbor must be in the set.
			any := false
			for _, v := range g.Neighbors(u) {
				if in[v] {
					any = true
				}
			}
			if !any {
				t.Fatalf("node %d excluded with no in-set neighbor", u)
			}
		}
	}
}

func TestRefMSTPath(t *testing.T) {
	// MST of the weighted path is all edges: 1+2+3 = 6.
	if got := RefMST(path4()); got != 6 {
		t.Errorf("path MST = %d, want 6", got)
	}
	// A cycle with one heavy edge: the heavy edge is dropped.
	g, _ := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 1, Dst: 2, W: 2}, {Src: 2, Dst: 1, W: 2},
		{Src: 0, Dst: 2, W: 10}, {Src: 2, Dst: 0, W: 10},
	}, true)
	if got := RefMST(g); got != 3 {
		t.Errorf("cycle MST = %d, want 3", got)
	}
}

func TestRefPRSumsToOne(t *testing.T) {
	g := graph.Random(128, 1024, 4, 5)
	rank := RefPR(g)
	var sum float64
	for _, r := range rank {
		sum += float64(r)
	}
	// Dangling nodes leak mass; with edgefactor 8 the leak is small.
	if sum < 0.5 || sum > 1.05 {
		t.Errorf("rank sum = %v, want ~1", sum)
	}
}

func TestSuiteRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", len(names))
	}
	want := []string{"bfs-wl", "bfs-cx", "bfs-tp", "bfs-hb", "sssp-nf", "cc", "tri", "mis", "pr", "mst"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("benchmark %d = %s, want %s", i, names[i], n)
		}
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("apsp"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	// Symmetric requirements.
	for _, n := range []string{"cc", "tri", "mis", "mst"} {
		b, _ := ByName(n)
		if !b.NeedsSymmetric {
			t.Errorf("%s should need a symmetric input", n)
		}
	}
	for _, n := range []string{"bfs-wl", "sssp-nf", "pr"} {
		b, _ := ByName(n)
		if b.NeedsSymmetric {
			t.Errorf("%s should not need a symmetric input", n)
		}
	}
}

func TestSSSPParamsPickDelta(t *testing.T) {
	b, _ := ByName("sssp-nf")
	g := graph.Road(8, 8, 64, 1)
	p := b.Params(g)
	if p["delta"] < 1 || p["delta"] > 64 {
		t.Errorf("delta = %d", p["delta"])
	}
}

func TestRefKCoreProperties(t *testing.T) {
	g := graph.RMAT(9, 8, 8, 7).Symmetrize()
	for _, k := range []int32{2, 3, 5} {
		in := RefKCore(g, k)
		for u := int32(0); u < g.NumNodes(); u++ {
			if !in[u] {
				continue
			}
			var live int32
			for _, v := range g.Neighbors(u) {
				if in[v] {
					live++
				}
			}
			if live < k {
				t.Fatalf("k=%d: node %d kept with %d live neighbors", k, u, live)
			}
		}
	}
	// Monotone: the 5-core is contained in the 2-core.
	in2, in5 := RefKCore(g, 2), RefKCore(g, 5)
	for i := range in5 {
		if in5[i] && !in2[i] {
			t.Fatal("5-core not contained in 2-core")
		}
	}
}

func TestKCoreExtensionRegistered(t *testing.T) {
	if len(All()) != 10 {
		t.Fatal("paper suite must stay at 10 benchmarks")
	}
	if len(AllWithExtensions()) != 12 {
		t.Fatal("extension suite should add kcore and pr-delta")
	}
	if _, err := ByName("kcore"); err != nil {
		t.Fatal(err)
	}
}
