package kernels

import (
	"fmt"

	"repro/internal/graph"
)

// Incremental pr-delta: residual PageRank over a mutating graph. The push
// phase maintains, at every point of its execution, the static identity
//
//	resid[v] = 1/n + d·Σ_{u→v} rank[u]/deg(u) − rank[v]
//
// over the current graph. When an edge mutation changes node u's adjacency
// row, only u's terms of that sum move, so the identity is restored for the
// new graph by adjusting the residuals of u's old and new neighbors with
// ±d·rank[u]/deg — no global recompute — and re-running the push loop from
// the nodes whose residual magnitude crossed the threshold. Deletions drive
// residuals negative; the loop folds signed residuals symmetrically, so rank
// mass drains from subgraphs that lost edges just as it grows where edges
// arrived.
//
// This is the serial reference-grade implementation: the serving layer runs
// it at compaction gates as a sentinel (differential witness that the folded
// CSR is the graph the mutation stream describes), and the differential
// tests pin it against a from-scratch RefPRDelta on the mutated graph.
type PRDeltaState struct {
	Rank  []float32
	Resid []float32
}

// NewPRDeltaState converges residual PageRank on g from scratch, retaining
// the sub-threshold residuals that later incremental updates correct.
func NewPRDeltaState(g *graph.CSR) *PRDeltaState {
	n := int(g.NumNodes())
	s := &PRDeltaState{Rank: make([]float32, n), Resid: make([]float32, n)}
	inv := float32(1) / float32(n)
	seeds := make([]int32, n)
	for i := 0; i < n; i++ {
		s.Resid[i] = inv
		seeds[i] = int32(i)
	}
	s.push(g, seeds)
	return s
}

// push runs the signed-residual push loop from the given seed nodes until
// every residual magnitude is below the pr-delta threshold.
func (s *PRDeltaState) push(g *graph.CSR, seeds []int32) {
	eps := float32(prDeltaEpsMil) / 1e6
	n := len(s.Rank)
	active := make([]bool, n)
	var queue []int32
	for _, u := range seeds {
		r := s.Resid[u]
		if (r >= eps || r <= -eps) && !active[u] {
			active[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !active[u] {
			continue
		}
		active[u] = false
		r := s.Resid[u]
		s.Resid[u] = 0
		s.Rank[u] += r
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		share := PRDamping * r / float32(deg)
		for _, v := range g.Neighbors(u) {
			s.Resid[v] += share
			rv := s.Resid[v]
			if (rv >= eps || rv <= -eps) && !active[v] {
				active[v] = true
				queue = append(queue, v)
			}
		}
	}
}

// Update moves the state from oldG to newG, where touched lists the nodes
// whose adjacency rows differ (graph.Delta.Touched()). Both graphs must
// share the node set. Cost is proportional to the touched rows plus the
// re-converged region, not the graph.
func (s *PRDeltaState) Update(oldG, newG *graph.CSR, touched []int32) error {
	if oldG.NumNodes() != newG.NumNodes() || int(oldG.NumNodes()) != len(s.Rank) {
		return fmt.Errorf("pr-delta incremental: node sets differ (%d vs %d vs state %d)",
			oldG.NumNodes(), newG.NumNodes(), len(s.Rank))
	}
	seeds := make([]int32, 0, 4*len(touched))
	for _, u := range touched {
		if u < 0 || u >= oldG.NumNodes() {
			return fmt.Errorf("pr-delta incremental: touched node %d out of range", u)
		}
		if s.Rank[u] != 0 {
			if dg := oldG.Degree(u); dg > 0 {
				share := PRDamping * s.Rank[u] / float32(dg)
				for _, v := range oldG.Neighbors(u) {
					s.Resid[v] -= share
					seeds = append(seeds, v)
				}
			}
			if dg := newG.Degree(u); dg > 0 {
				share := PRDamping * s.Rank[u] / float32(dg)
				for _, v := range newG.Neighbors(u) {
					s.Resid[v] += share
					seeds = append(seeds, v)
				}
			}
		}
		seeds = append(seeds, u)
	}
	s.push(newG, seeds)
	return nil
}

// Clone deep-copies the state, so a compaction gate can trial an update and
// discard it on failure.
func (s *PRDeltaState) Clone() *PRDeltaState {
	return &PRDeltaState{
		Rank:  append([]float32(nil), s.Rank...),
		Resid: append([]float32(nil), s.Resid...),
	}
}
