package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ir"
)

// BFSWL is the worklist BFS (bfs-wl): pop frontier nodes, relax neighbors
// with an atomic min, push improved nodes. The paper's headline variant for
// framework comparisons.
func BFSWL() *Benchmark {
	prog := &ir.Program{
		Name: "bfs-wl",
		Arrays: []ir.ArrayDecl{
			{Name: "lvl", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: Inf, SrcVal: 0},
		},
		WLInit:     ir.WLSrc,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{{
			Name:    "bfs",
			Domain:  ir.DomainWL,
			ItemVar: "node",
			Body: []ir.Stmt{
				ir.DeclI("d", ir.Ld("lvl", ir.V("node"))),
				ir.ForE("e", ir.V("node"),
					ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
					ir.DeclI("nd", ir.AddE(ir.V("d"), ir.CI(1))),
					// Test-and-test-and-set: a plain load filters edges
					// before paying for the atomic.
					ir.IfS(ir.GtE(ir.Ld("lvl", ir.V("dst")), ir.V("nd")),
						&ir.AtomicMin{Arr: "lvl", Idx: ir.V("dst"), Val: ir.V("nd"), Success: "won"},
						ir.IfS(ir.V("won"), ir.PushOut(ir.V("dst"))),
					),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{&ir.Invoke{Kernel: "bfs"}}}},
	}
	return &Benchmark{
		Name: "bfs-wl",
		Prog: prog,
		Reference: func(g *graph.CSR, _ map[string]int32, src int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, src)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, src int32) error {
			return verifyLevels(g, get("lvl"), src)
		},
	}
}

// BFSCX is the claim/expand BFS (bfs-cx): a claim kernel deduplicates the
// frontier with a CAS, then an expand kernel pushes every neighbor of every
// claimed node unconditionally. The expand kernel's push count is exactly
// the sum of claimed out-degrees, computable in advance — the property that
// enables fiber-level cooperative conversion (Section III-C).
func BFSCX() *Benchmark {
	prog := &ir.Program{
		Name: "bfs-cx",
		Arrays: []ir.ArrayDecl{
			{Name: "lvl", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: Inf, SrcVal: 0},
			{Name: "claimed", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
		},
		WLInit:     ir.WLSrc,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{
			{
				Name:    "claim",
				Domain:  ir.DomainWL,
				ItemVar: "node",
				Body: []ir.Stmt{
					&ir.AtomicCAS{Arr: "claimed", Idx: ir.V("node"), Old: ir.CI(0), New: ir.CI(1), Success: "mine"},
					ir.IfS(ir.V("mine"), ir.PushOut(ir.V("node"))),
				},
			},
			{
				Name:                "expand",
				Domain:              ir.DomainWL,
				ItemVar:             "node",
				PushCountComputable: true,
				Body: []ir.Stmt{
					ir.DeclI("d", ir.Ld("lvl", ir.V("node"))),
					ir.ForE("e", ir.V("node"),
						ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
						ir.DeclI("nd", ir.AddE(ir.V("d"), ir.CI(1))),
						ir.IfS(ir.GtE(ir.Ld("lvl", ir.V("dst")), ir.V("nd")),
							&ir.AtomicMin{Arr: "lvl", Idx: ir.V("dst"), Val: ir.V("nd")},
						),
						ir.PushOut(ir.V("dst")),
					),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopWL{Body: []ir.PipeStmt{
			&ir.Invoke{Kernel: "claim"},
			&ir.SwapWL{},
			&ir.Invoke{Kernel: "expand"},
		}}},
	}
	return &Benchmark{
		Name: "bfs-cx",
		Prog: prog,
		Reference: func(g *graph.CSR, _ map[string]int32, src int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, src)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, src int32) error {
			return verifyLevels(g, get("lvl"), src)
		},
	}
}

// BFSTP is topology-driven BFS (bfs-tp): every round sweeps all nodes,
// relaxing the current level's frontier with plain (benignly racy) stores —
// no worklist, but the sweep cost repeats for every level, which is why it
// is an order of magnitude slower on high-diameter road networks (Table X).
func BFSTP() *Benchmark {
	prog := &ir.Program{
		Name: "bfs-tp",
		Arrays: []ir.ArrayDecl{
			{Name: "lvl", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: Inf, SrcVal: 0},
			{Name: "changed", T: ir.I32, Size: ir.SizeOne, Init: ir.InitZero},
		},
		Kernels: []*ir.Kernel{{
			Name:    "sweep",
			Domain:  ir.DomainNodes,
			ItemVar: "n",
			Body: []ir.Stmt{
				ir.IfS(ir.EqE(ir.Ld("lvl", ir.V("n")), ir.P("level")),
					ir.ForE("e", ir.V("n"),
						ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
						ir.IfS(ir.GtE(ir.Ld("lvl", ir.V("dst")), ir.AddE(ir.P("level"), ir.CI(1))),
							ir.St("lvl", ir.V("dst"), ir.AddE(ir.P("level"), ir.CI(1))),
							&ir.SetFlag{Flag: "changed"},
						),
					),
				),
			},
		}},
		Pipe: []ir.PipeStmt{&ir.LoopFlag{
			Flag:     "changed",
			IncParam: "level",
			Body:     []ir.PipeStmt{&ir.Invoke{Kernel: "sweep"}},
		}},
		DefaultParams: map[string]int32{"level": 0},
	}
	return &Benchmark{
		Name: "bfs-tp",
		Prog: prog,
		Reference: func(g *graph.CSR, _ map[string]int32, src int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, src)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, src int32) error {
			return verifyLevels(g, get("lvl"), src)
		},
	}
}

// BFSHB is hybrid BFS (bfs-hb): small frontiers run the claim/expand
// worklist phase, large frontiers a topology sweep over the level — the
// worklist analogue of direction switching. The expand kernel keeps the
// computable push count, so fiber-level CC applies here too.
func BFSHB() *Benchmark {
	prog := &ir.Program{
		Name: "bfs-hb",
		Arrays: []ir.ArrayDecl{
			{Name: "lvl", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitSplatExceptSrc, InitI: Inf, SrcVal: 0},
			{Name: "claimed", T: ir.I32, Size: ir.SizeNodes, Init: ir.InitZero},
		},
		WLInit:     ir.WLSrc,
		WLCapEdges: true,
		Kernels: []*ir.Kernel{
			{
				Name:    "claim",
				Domain:  ir.DomainWL,
				ItemVar: "node",
				Body: []ir.Stmt{
					&ir.AtomicCAS{Arr: "claimed", Idx: ir.V("node"), Old: ir.CI(0), New: ir.CI(1), Success: "mine"},
					// Only nodes at the current level expand: topology
					// rounds may already have settled earlier pushes.
					ir.IfS(ir.AndE(ir.V("mine"), ir.EqE(ir.Ld("lvl", ir.V("node")), ir.P("level"))),
						ir.PushOut(ir.V("node"))),
				},
			},
			{
				Name:                "expand",
				Domain:              ir.DomainWL,
				ItemVar:             "node",
				PushCountComputable: true,
				Body: []ir.Stmt{
					ir.DeclI("d", ir.Ld("lvl", ir.V("node"))),
					ir.ForE("e", ir.V("node"),
						ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
						ir.DeclI("nd", ir.AddE(ir.V("d"), ir.CI(1))),
						ir.IfS(ir.GtE(ir.Ld("lvl", ir.V("dst")), ir.V("nd")),
							&ir.AtomicMin{Arr: "lvl", Idx: ir.V("dst"), Val: ir.V("nd")},
						),
						ir.PushOut(ir.V("dst")),
					),
				},
			},
			{
				Name:    "sweep",
				Domain:  ir.DomainNodes,
				ItemVar: "n",
				Body: []ir.Stmt{
					ir.IfS(ir.EqE(ir.Ld("lvl", ir.V("n")), ir.P("level")),
						ir.ForE("e", ir.V("n"),
							ir.DeclI("dst", &ir.EdgeDst{Edge: ir.V("e")}),
							ir.IfS(ir.GtE(ir.Ld("lvl", ir.V("dst")), ir.AddE(ir.P("level"), ir.CI(1))),
								&ir.AtomicMin{Arr: "lvl", Idx: ir.V("dst"), Val: ir.AddE(ir.P("level"), ir.CI(1)), Success: "won"},
								ir.IfS(ir.V("won"), ir.PushOut(ir.V("dst"))),
							),
						),
					),
				},
			},
		},
		Pipe: []ir.PipeStmt{&ir.LoopHybrid{
			ThreshDenom: 16, // topology sweep once the frontier tops 1/16 of nodes
			Small: []ir.PipeStmt{
				&ir.Invoke{Kernel: "claim"},
				&ir.SwapWL{},
				&ir.Invoke{Kernel: "expand"},
			},
			Big:      []ir.PipeStmt{&ir.Invoke{Kernel: "sweep"}},
			IncParam: "level",
		}},
		DefaultParams: map[string]int32{"level": 0},
	}
	return &Benchmark{
		Name: "bfs-hb",
		Prog: prog,
		Reference: func(g *graph.CSR, _ map[string]int32, src int32) *RunOutput {
			return &RunOutput{I: map[string][]int32{"lvl": RefBFS(g, src)}}
		},
		Verify: func(g *graph.CSR, get func(string) []int32, _ func(string) []float32, src int32) error {
			return verifyLevels(g, get("lvl"), src)
		},
	}
}

// RefBFS is the serial reference: levels from src, Inf if unreachable.
func RefBFS(g *graph.CSR, src int32) []int32 {
	lvl := make([]int32, g.NumNodes())
	for i := range lvl {
		lvl[i] = Inf
	}
	if src < 0 || src >= g.NumNodes() {
		return lvl
	}
	lvl[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(n) {
			if lvl[d] == Inf {
				lvl[d] = lvl[n] + 1
				queue = append(queue, d)
			}
		}
	}
	return lvl
}

var _ = fmt.Sprintf // placeholder to keep fmt for future verifier messages
