// Package compiled holds the generated-Go kernel backend: for each benchmark
// kernel, specialized straight-line masked-loop implementations per SIMD
// width, emitted by internal/codegen/gogen (run `make gen` or `go generate
// ./...` after changing kernels or the emitter). The files named z_*_gen.go
// are machine-generated — do not edit them by hand.
//
// Generated kernels perform every memory, atomic and worklist operation
// through the same spmd.TaskCtx / worklist primitives as the interpreter, in
// the same order, so modeled cycles, statistics, access traces and fault-
// injection draws are bit-identical; only expression arithmetic, register
// management and loop control are specialized. The interpreter remains the
// differential oracle (see internal/codegen difftests).
package compiled

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/spmd"
	"repro/internal/worklist"
)

//go:generate go run repro/internal/codegen/gogen/gen -out .

// ErrBackendUnsupported reports that the generated backend has no code for a
// requested (program, kernel, width) combination — e.g. a width the emitter
// does not target, a custom IR program, or an optimization configuration
// whose post-opt IR differs from what the checked-in code was generated
// from. Callers degrade to the interpreter on it.
var ErrBackendUnsupported = errors.New("compiled: backend unsupported for this kernel/width/layout")

// Fn is one generated kernel task body: the compiled equivalent of the
// interpreter's runTask for a fixed vector width.
type Fn func(b *Binding, tc *spmd.TaskCtx)

// Binding is the execution environment a generated kernel runs against —
// the exported mirror of codegen.Instance's bound state. codegen builds one
// per instance before a run and refreshes it when layouts attach.
type Binding struct {
	NumNodes int32
	NumEdges int32

	// Params holds the resolved uniform parameters; generated code hoists
	// reads to task entry (parameters only change between launches).
	Params map[string]int32

	// Arrays maps IR array names to their engine bindings.
	Arrays map[string]*spmd.Array

	RowPtr  *spmd.Array
	EdgeDst *spmd.Array
	EdgeWt  *spmd.Array // nil when unweighted

	// SELL-C-σ layout bindings; nil when running pure CSR. Generated dense
	// paths check Sell at chunk granularity exactly like the interpreter.
	Sell     *graph.SellCS
	SellPerm *spmd.Array
	SellDst  *spmd.Array
	SellEid  *spmd.Array
	SellWt   *spmd.Array // nil when unweighted

	WL  *worklist.Pair
	Far *worklist.WL

	// MaxFibers and BigDeg snapshot the codegen tuning knobs
	// (codegen.MaxFibersPerTask, BigDegreeFactor*W) at run start, so
	// generated loops agree with what the interpreter would do.
	MaxFibers int32
	BigDeg    int32
}

type key struct {
	fp     string
	kernel string
	w      int
}

var registry = map[key]Fn{}

// Register installs a generated kernel implementation. Called from init
// functions of generated files; fp is the ir.Fingerprint of the optimized
// program the code was emitted from.
func Register(fp, kernel string, w int, fn Fn) {
	registry[key{fp, kernel, w}] = fn
}

// Lookup returns the generated implementation for (program fingerprint,
// kernel, width), or nil if the combination was not generated.
func Lookup(fp, kernel string, w int) Fn {
	return registry[key{fp, kernel, w}]
}

// Count reports how many generated kernel implementations are registered
// (diagnostics and coverage tests).
func Count() int { return len(registry) }
