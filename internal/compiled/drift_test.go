package compiled

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/codegen/gogen"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/opt"
)

// TestGeneratedFilesInSync re-emits every benchmark program and compares the
// result byte-for-byte against the checked-in z_*_gen.go files, so ordinary
// `go test ./...` catches a stale backend the moment kernels or the emitter
// change — the same property CI enforces with `go generate && git diff
// --exit-code`, available without git.
func TestGeneratedFilesInSync(t *testing.T) {
	for _, b := range kernels.AllWithExtensions() {
		prog, err := opt.Apply(b.Prog, opt.All())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		want, err := gogen.EmitProgram(prog, nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		name := gogen.FileName(prog.Name)
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: missing generated file (run `make gen`): %v", b.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: %s is stale — run `make gen` and commit the result", b.Name, name)
		}
	}
}

// TestRegistryCoverage pins the registry's shape: every kernel of every
// benchmark program is registered at every generated width, and nothing else
// is.
func TestRegistryCoverage(t *testing.T) {
	want := 0
	for _, b := range kernels.AllWithExtensions() {
		prog, err := opt.Apply(b.Prog, opt.All())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		want += len(prog.Kernels) * len(gogen.Widths)
		fp := ir.Fingerprint(prog)
		for _, k := range prog.Kernels {
			for _, w := range gogen.Widths {
				if Lookup(fp, k.Name, w) == nil {
					t.Errorf("%s: kernel %q width %d not registered", b.Name, k.Name, w)
				}
			}
		}
		// Widths outside the generated set must miss, so the runtime falls
		// back to the interpreter instead of running wrong-width code.
		if Lookup(fp, prog.Kernels[0].Name, 32) != nil {
			t.Errorf("%s: width 32 unexpectedly registered", b.Name)
		}
	}
	if got := Count(); got != want {
		t.Errorf("registry holds %d implementations, want %d", got, want)
	}
}
