package baselines

import (
	"repro/internal/graph"
	"repro/internal/spmd"
)

// ctx is the per-run execution context of a baseline algorithm: the scalar
// engine, bound graph arrays, and output collection. All data accesses go
// through cost-accounted TaskCtx operations so baseline times come from the
// same machine model as EGACS times.
type ctx struct {
	e   *spmd.Engine
	g   *graph.CSR
	gt  *graph.CSR // transpose, bound lazily for pull/dense phases
	src int32
	t   tuning

	rowPtr, edgeDst, edgeWt *spmd.Array
	tRowPtr, tEdgeDst       *spmd.Array

	outI map[string][]int32
	outF map[string][]float32
}

func (cx *ctx) bind() {
	cx.rowPtr = cx.e.BindI("g.rowptr", cx.g.RowPtr)
	cx.edgeDst = cx.e.BindI("g.edgedst", cx.g.EdgeDst)
	if cx.g.Weighted() {
		cx.edgeWt = cx.e.BindI("g.edgewt", cx.g.Weight)
	}
}

// transpose binds the reversed graph (untimed, like graph loading — all
// frameworks that pull precompute it at load time).
func (cx *ctx) transpose() {
	if cx.gt != nil {
		return
	}
	cx.gt = cx.g.Transpose()
	cx.tRowPtr = cx.e.BindI("gt.rowptr", cx.gt.RowPtr)
	cx.tEdgeDst = cx.e.BindI("gt.edgedst", cx.gt.EdgeDst)
}

// row loads a node's out-edge range (two scalar loads).
func (cx *ctx) row(tc *spmd.TaskCtx, n int32) (int32, int32) {
	return tc.ScalarLoadI(cx.rowPtr, n), tc.ScalarLoadI(cx.rowPtr, n+1)
}

// trow loads a node's in-edge range from the transpose.
func (cx *ctx) trow(tc *spmd.TaskCtx, n int32) (int32, int32) {
	return tc.ScalarLoadI(cx.tRowPtr, n), tc.ScalarLoadI(cx.tRowPtr, n+1)
}

// dst loads an out-edge destination, charging the framework's per-edge
// abstraction overhead.
func (cx *ctx) dst(tc *spmd.TaskCtx, e int32) int32 {
	tc.ScalarOps(cx.t.edgeOverheadOps)
	return tc.ScalarLoadI(cx.edgeDst, e)
}

// tdst loads an in-edge source from the transpose.
func (cx *ctx) tdst(tc *spmd.TaskCtx, e int32) int32 {
	tc.ScalarOps(cx.t.edgeOverheadOps)
	return tc.ScalarLoadI(cx.tEdgeDst, e)
}

// wt loads an edge weight (1 when unweighted).
func (cx *ctx) wt(tc *spmd.TaskCtx, e int32) int32 {
	if cx.edgeWt == nil {
		return 1
	}
	return tc.ScalarLoadI(cx.edgeWt, e)
}

// taskRange splits n items across the launch's tasks.
func taskRange(tc *spmd.TaskCtx, n int32) (int32, int32) {
	per := (n + int32(tc.Count) - 1) / int32(tc.Count)
	start := int32(tc.Index) * per
	end := start + per
	if end > n {
		end = n
	}
	if start > end {
		start = end
	}
	return start, end
}

// frontier is a dense item list with a shared tail, the baseline analogue of
// the EGACS worklist.
type frontier struct {
	items *spmd.Array
	tail  *spmd.Array
}

func (cx *ctx) newFrontier(name string, capacity int) *frontier {
	return &frontier{
		items: cx.e.AllocI(name, capacity),
		tail:  cx.e.AllocI(name+".tail", 1),
	}
}

func (f *frontier) size() int32  { return f.tail.I[0] }
func (f *frontier) clear()       { f.tail.I[0] = 0 }
func (f *frontier) seed(x int32) { f.items.I[0] = x; f.tail.I[0] = 1 }
func (f *frontier) seedAll(n int32) {
	for i := int32(0); i < n; i++ {
		f.items.I[i] = i
	}
	f.tail.I[0] = n
}

// get loads item i (cost-accounted).
func (f *frontier) get(tc *spmd.TaskCtx, i int32) int32 {
	return tc.ScalarLoadI(f.items, i)
}

// flush appends a task's locally buffered pushes: one tail reservation per
// task plus a store per item. Non-chunked frameworks (Ligra's edgeMap pack)
// additionally pay two bookkeeping ops per item for the prefix-sum copy.
func (cx *ctx) flush(tc *spmd.TaskCtx, f *frontier, buf []int32) {
	if len(buf) == 0 {
		return
	}
	pos := tc.AtomicAddScalar(f.tail, 0, int32(len(buf)), true)
	for i, v := range buf {
		if !cx.t.chunkedPush {
			tc.ScalarOps(2)
		}
		tc.ScalarStoreI(f.items, pos+int32(i), v)
	}
}

// hashPri reproduces the EGACS InitHash priority function so MIS results
// are comparable across systems.
func hashPri(x int32) int32 {
	u := uint32(x) * 2654435761
	u ^= u >> 15
	u *= 2246822519
	u ^= u >> 13
	return int32(u) & 0x7fffffff
}
