package baselines

import (
	"repro/internal/kernels"
	"repro/internal/spmd"
)

const inf = kernels.Inf

// --- BFS ---

// algoBFSDirOpt is direction-optimizing BFS (Ligra/GraphIt): sparse rounds
// push from the frontier with CAS claims; once the frontier's edge count
// crosses m/denseDenom the round flips to a dense pull over in-edges with
// early exit — the optimization that makes these frameworks "fundamentally
// faster" than bfs-wl on low-diameter graphs (Section IV-A1).
func algoBFSDirOpt(cx *ctx) error {
	n := cx.g.NumNodes()
	m := int(cx.g.NumEdges())
	cx.transpose()
	lvl := cx.e.AllocI("lvl", int(n))
	for i := range lvl.I {
		lvl.I[i] = inf
	}
	lvl.I[cx.src] = 0
	capWL := m + int(n) + 16
	cur := cx.newFrontier("cur", capWL)
	next := cx.newFrontier("next", capWL)
	cur.seed(cx.src)
	frontierEdges := int(cx.g.Degree(cx.src))
	nextEdges := cx.e.AllocI("ecnt", 1) // per-round out-degree tally

	for level := int32(0); cur.size() > 0; level++ {
		dense := cx.t.denseDenom > 0 &&
			int(cur.size())+frontierEdges > m/cx.t.denseDenom
		nextEdges.I[0] = 0
		if dense {
			cx.e.Launch(0, func(tc *spmd.TaskCtx) {
				start, end := taskRange(tc, n)
				var buf []int32
				var edges int32
				for v := start; v < end; v++ {
					tc.ScalarOps(cx.t.vertexOverheadOps)
					if tc.ScalarLoadI(lvl, v) != inf {
						continue
					}
					s, e := cx.trow(tc, v)
					for p := s; p < e; p++ {
						u := cx.tdst(tc, p)
						if tc.ScalarLoadI(lvl, u) == level {
							tc.ScalarStoreI(lvl, v, level+1)
							buf = append(buf, v)
							edges += cx.g.Degree(v)
							break // the dense pull's early exit
						}
					}
				}
				cx.flush(tc, next, buf)
				if edges > 0 {
					tc.AtomicAddScalar(nextEdges, 0, edges, false)
				}
			})
		} else {
			sz := cur.size()
			cx.e.Launch(0, func(tc *spmd.TaskCtx) {
				start, end := taskRange(tc, sz)
				var buf []int32
				var edges int32
				for i := start; i < end; i++ {
					u := cur.get(tc, i)
					tc.ScalarOps(cx.t.vertexOverheadOps)
					s, e := cx.row(tc, u)
					for p := s; p < e; p++ {
						d := cx.dst(tc, p)
						if tc.ScalarLoadI(lvl, d) == inf {
							// CAS claim (serialized engine: always wins).
							tc.AtomicUpdateScalar(lvl, d, level+1)
							buf = append(buf, d)
							edges += cx.g.Degree(d)
						}
					}
				}
				cx.flush(tc, next, buf)
				if edges > 0 {
					tc.AtomicAddScalar(nextEdges, 0, edges, false)
				}
			})
		}
		frontierEdges = int(nextEdges.I[0])
		cur, next = next, cur
		next.clear()
	}
	cx.outI["lvl"] = lvl.I
	return nil
}

// algoBFSWorklist is plain worklist BFS (Galois style, no direction
// switching), with chunk-aggregated pushes.
func algoBFSWorklist(cx *ctx) error {
	n := cx.g.NumNodes()
	capWL := int(cx.g.NumEdges()) + int(n) + 16
	lvl := cx.e.AllocI("lvl", int(n))
	for i := range lvl.I {
		lvl.I[i] = inf
	}
	lvl.I[cx.src] = 0
	lists := &struct{ cur, next *frontier }{
		cx.newFrontier("cur", capWL),
		cx.newFrontier("next", capWL),
	}
	lists.cur.seed(cx.src)
	// Galois's runtime keeps worker threads alive across rounds (no
	// per-round fork/join), so the whole driver runs inside one launch.
	cx.e.Launch(0, func(tc *spmd.TaskCtx) {
		for level := int32(0); ; level++ {
			sz := lists.cur.size()
			if sz == 0 {
				return
			}
			start, end := taskRange(tc, sz)
			var buf []int32
			for i := start; i < end; i++ {
				u := lists.cur.get(tc, i)
				tc.ScalarOps(cx.t.vertexOverheadOps)
				s, e := cx.row(tc, u)
				for p := s; p < e; p++ {
					d := cx.dst(tc, p)
					if tc.ScalarLoadI(lvl, d) == inf {
						tc.AtomicUpdateScalar(lvl, d, level+1)
						buf = append(buf, d)
					}
				}
			}
			cx.flush(tc, lists.next, buf)
			tc.Barrier()
			if tc.Index == 0 {
				lists.cur, lists.next = lists.next, lists.cur
				lists.next.clear()
			}
			tc.Barrier()
		}
	})
	cx.outI["lvl"] = lvl.I
	return nil
}

// --- SSSP ---

// algoSSSPBellmanFord is frontier Bellman-Ford (Ligra/GraphIt): every round
// relaxes all frontier edges and pushes improved nodes; no priority order,
// so high-diameter weighted graphs pay many re-relaxations.
func algoSSSPBellmanFord(cx *ctx) error {
	n := cx.g.NumNodes()
	capWL := int(cx.g.NumEdges()) + int(n) + 16
	dist := cx.e.AllocI("dist", int(n))
	for i := range dist.I {
		dist.I[i] = inf
	}
	dist.I[cx.src] = 0
	inNext := cx.e.AllocI("innext", int(n)) // round dedup bitmap
	cur := cx.newFrontier("cur", capWL)
	next := cx.newFrontier("next", capWL)
	cur.seed(cx.src)
	for cur.size() > 0 {
		sz := cur.size()
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, sz)
			var buf []int32
			for i := start; i < end; i++ {
				u := cur.get(tc, i)
				tc.ScalarOps(cx.t.vertexOverheadOps)
				du := tc.ScalarLoadI(dist, u)
				s, e := cx.row(tc, u)
				for p := s; p < e; p++ {
					d := cx.dst(tc, p)
					nd := du + cx.wt(tc, p)
					if nd < tc.ScalarLoadI(dist, d) {
						tc.AtomicUpdateScalar(dist, d, nd) // atomic min
						if tc.ScalarLoadI(inNext, d) == 0 {
							tc.AtomicUpdateScalar(inNext, d, 1) // CAS dedup
							buf = append(buf, d)
						}
					}
				}
			}
			cx.flush(tc, next, buf)
		})
		// Clear the dedup bitmap for the pushed nodes (Ligra's remove-
		// duplicates pass).
		szN := next.size()
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, szN)
			for i := start; i < end; i++ {
				tc.ScalarStoreI(inNext, next.get(tc, i), 0)
			}
		})
		cur, next = next, cur
		next.clear()
	}
	cx.outI["dist"] = dist.I
	return nil
}

// algoSSSPDelta is delta-stepping-style SSSP (Galois): a near band below the
// advancing threshold is processed to fixpoint, everything else waits in the
// far list — the work-efficient schedule that keeps Galois competitive on
// road networks.
func algoSSSPDelta(cx *ctx) error {
	n := cx.g.NumNodes()
	capWL := int(cx.g.NumEdges()) + int(n) + 16
	var maxW int32 = 1
	for _, w := range cx.g.Weight {
		if w > maxW {
			maxW = w
		}
	}
	delta := maxW / 2
	if delta < 1 {
		delta = 1
	}
	threshold := delta

	dist := cx.e.AllocI("dist", int(n))
	for i := range dist.I {
		dist.I[i] = inf
	}
	dist.I[cx.src] = 0
	st := &struct {
		near, nearNext, far *frontier
		threshold           int32
	}{
		cx.newFrontier("near", capWL),
		cx.newFrontier("nearnext", capWL),
		cx.newFrontier("far", capWL),
		threshold,
	}
	st.near.seed(cx.src)
	// Asynchronous runtime: one launch for the whole computation, bands
	// synchronized with barriers.
	cx.e.Launch(0, func(tc *spmd.TaskCtx) {
		for {
			for {
				sz := st.near.size()
				if sz == 0 {
					break
				}
				start, end := taskRange(tc, sz)
				var bufNear, bufFar []int32
				for i := start; i < end; i++ {
					u := st.near.get(tc, i)
					tc.ScalarOps(cx.t.vertexOverheadOps)
					du := tc.ScalarLoadI(dist, u)
					s, e := cx.row(tc, u)
					for p := s; p < e; p++ {
						d := cx.dst(tc, p)
						nd := du + cx.wt(tc, p)
						if nd < tc.ScalarLoadI(dist, d) {
							tc.AtomicUpdateScalar(dist, d, nd)
							if nd < st.threshold {
								bufNear = append(bufNear, d)
							} else {
								bufFar = append(bufFar, d)
							}
						}
					}
				}
				cx.flush(tc, st.nearNext, bufNear)
				cx.flush(tc, st.far, bufFar)
				tc.Barrier()
				if tc.Index == 0 {
					st.near, st.nearNext = st.nearNext, st.near
					st.nearNext.clear()
				}
				tc.Barrier()
			}
			empty := st.far.size() == 0
			tc.Barrier()
			if empty {
				return
			}
			if tc.Index == 0 {
				// Promote the far list wholesale and advance the band.
				copy(st.near.items.I, st.far.items.I[:st.far.size()])
				st.near.tail.I[0] = st.far.size()
				st.far.clear()
				st.threshold += delta
			}
			tc.Barrier()
		}
	})
	cx.outI["dist"] = dist.I
	return nil
}

// --- CC ---

// algoCCLabelProp is frontier label propagation (Ligra/GraphIt): minimum
// labels spread one hop per round, so convergence takes diameter rounds —
// the behavior behind Ligra's very slow CC on road networks (Table X).
func algoCCLabelProp(cx *ctx) error {
	n := cx.g.NumNodes()
	capWL := int(cx.g.NumEdges()) + int(n) + 16
	comp := cx.e.AllocI("comp", int(n))
	for i := range comp.I {
		comp.I[i] = int32(i)
	}
	inNext := cx.e.AllocI("innext", int(n))
	cur := cx.newFrontier("cur", capWL)
	next := cx.newFrontier("next", capWL)
	cur.seedAll(n)
	for cur.size() > 0 {
		sz := cur.size()
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, sz)
			var buf []int32
			for i := start; i < end; i++ {
				u := cur.get(tc, i)
				tc.ScalarOps(cx.t.vertexOverheadOps)
				cu := tc.ScalarLoadI(comp, u)
				s, e := cx.row(tc, u)
				for p := s; p < e; p++ {
					d := cx.dst(tc, p)
					if cu < tc.ScalarLoadI(comp, d) {
						tc.AtomicUpdateScalar(comp, d, cu) // atomic min
						if tc.ScalarLoadI(inNext, d) == 0 {
							tc.AtomicUpdateScalar(inNext, d, 1)
							buf = append(buf, d)
						}
					}
				}
			}
			cx.flush(tc, next, buf)
		})
		szN := next.size()
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, szN)
			for i := start; i < end; i++ {
				tc.ScalarStoreI(inNext, next.get(tc, i), 0)
			}
		})
		cur, next = next, cur
		next.clear()
	}
	cx.outI["comp"] = comp.I
	return nil
}

// algoCCUnionFind is union-find CC (Galois): hook each edge's larger root
// onto the smaller with path-halving finds, then compress — near-linear
// work regardless of diameter.
func algoCCUnionFind(cx *ctx) error {
	n := cx.g.NumNodes()
	parent := cx.e.AllocI("parent", int(n))
	for i := range parent.I {
		parent.I[i] = int32(i)
	}
	find := func(tc *spmd.TaskCtx, x int32) int32 {
		for {
			p := tc.ScalarLoadI(parent, x)
			if p == x {
				return x
			}
			gp := tc.ScalarLoadI(parent, p)
			if gp != p {
				tc.ScalarStoreI(parent, x, gp) // path halving
			}
			x = p
		}
	}
	cx.e.Launch(0, func(tc *spmd.TaskCtx) {
		start, end := taskRange(tc, n)
		for u := start; u < end; u++ {
			tc.ScalarOps(cx.t.vertexOverheadOps)
			s, e := cx.row(tc, u)
			for p := s; p < e; p++ {
				d := cx.dst(tc, p)
				if d <= u {
					continue // each undirected edge once
				}
				ru, rd := find(tc, u), find(tc, d)
				if ru == rd {
					continue
				}
				if ru < rd {
					tc.AtomicUpdateScalar(parent, rd, ru) // CAS hook
				} else {
					tc.AtomicUpdateScalar(parent, ru, rd)
				}
			}
		}
	})
	// Final flattening pass.
	cx.e.Launch(0, func(tc *spmd.TaskCtx) {
		start, end := taskRange(tc, n)
		for u := start; u < end; u++ {
			tc.ScalarStoreI(parent, u, find(tc, u))
		}
	})
	cx.outI["comp"] = parent.I
	return nil
}

// --- TRI ---

// algoTRI is ordered merge-intersection triangle counting on a sorted
// symmetric graph, counting each triangle once via u < v < w.
func algoTRI(cx *ctx) error {
	n := cx.g.NumNodes()
	count := cx.e.AllocI("count", 1)
	cx.e.Launch(0, func(tc *spmd.TaskCtx) {
		start, end := taskRange(tc, n)
		var local int32
		for u := start; u < end; u++ {
			tc.ScalarOps(cx.t.vertexOverheadOps)
			su, eu := cx.row(tc, u)
			for p := su; p < eu; p++ {
				v := cx.dst(tc, p)
				if v <= u {
					continue
				}
				sv, ev := cx.row(tc, v)
				i, j := su, sv
				for i < eu && j < ev {
					a := cx.dst(tc, i)
					b := cx.dst(tc, j)
					if a == b {
						if a > v {
							local++
						}
						i++
						j++
					} else if a < b {
						i++
					} else {
						j++
					}
				}
			}
		}
		if local != 0 {
			tc.AtomicAddScalar(count, 0, local, false)
		}
	})
	cx.outI["count"] = count.I
	return nil
}

// --- MIS ---

// algoMIS is priority-based Luby MIS with the EGACS priority function, so
// all systems compute the identical set.
func algoMIS(cx *ctx) error {
	n := cx.g.NumNodes()
	pri := cx.e.AllocI("pri", int(n))
	for i := range pri.I {
		pri.I[i] = hashPri(int32(i))
	}
	state := cx.e.AllocI("state", int(n)) // 0 undecided, 1 in, 2 out
	cand := cx.e.AllocI("cand", int(n))
	remaining := cx.e.AllocI("rem", 1)
	for {
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			for u := start; u < end; u++ {
				tc.ScalarOps(cx.t.vertexOverheadOps)
				if tc.ScalarLoadI(state, u) != 0 {
					tc.ScalarStoreI(cand, u, 0)
					continue
				}
				isMin := int32(1)
				pu := tc.ScalarLoadI(pri, u)
				s, e := cx.row(tc, u)
				for p := s; p < e; p++ {
					d := cx.dst(tc, p)
					if tc.ScalarLoadI(state, d) != 0 {
						continue
					}
					pd := tc.ScalarLoadI(pri, d)
					if pd < pu || (pd == pu && d < u) {
						isMin = 0
						break
					}
				}
				tc.ScalarStoreI(cand, u, isMin)
			}
		})
		remaining.I[0] = 0
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			var local int32
			for u := start; u < end; u++ {
				if tc.ScalarLoadI(state, u) != 0 {
					continue
				}
				if tc.ScalarLoadI(cand, u) == 1 {
					tc.ScalarStoreI(state, u, 1)
					continue
				}
				s, e := cx.row(tc, u)
				dropped := false
				for p := s; p < e; p++ {
					if tc.ScalarLoadI(cand, cx.dst(tc, p)) == 1 {
						tc.ScalarStoreI(state, u, 2)
						dropped = true
						break
					}
				}
				if !dropped {
					local++
				}
			}
			if local != 0 {
				tc.AtomicAddScalar(remaining, 0, local, false)
			}
		})
		if remaining.I[0] == 0 {
			break
		}
	}
	cx.outI["state"] = state.I
	cx.outI["pri"] = pri.I
	return nil
}

// --- PR ---

// algoPRPull is pull-based PageRank over the transpose: no per-edge atomics,
// one residual accumulation per task per round — the standard multicore
// formulation all three frameworks use.
func algoPRPull(cx *ctx) error {
	cx.transpose()
	n := cx.g.NumNodes()
	rank := cx.e.AllocF("rank", int(n))
	next := cx.e.AllocF("ranknext", int(n))
	deg := cx.e.AllocI("deg", int(n))
	errAcc := cx.e.AllocF("err", 1)
	inv := float32(1) / float32(n)
	for i := range rank.F {
		rank.F[i] = inv
		deg.I[i] = cx.g.Degree(int32(i))
	}
	base := float32(1-kernels.PRDamping) / float32(n)
	for it := 0; it < kernels.PRMaxIter; it++ {
		errAcc.F[0] = 0
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			var localErr float32
			for v := start; v < end; v++ {
				tc.ScalarOps(cx.t.vertexOverheadOps)
				s, e := cx.trow(tc, v)
				var sum float32
				for p := s; p < e; p++ {
					u := cx.tdst(tc, p)
					dg := tc.ScalarLoadI(deg, u)
					if dg > 0 {
						tc.ScalarOps(1) // divide
						sum += tc.ScalarLoadF(rank, u) / float32(dg)
					}
				}
				newr := base + kernels.PRDamping*sum
				d := newr - rank.F[v]
				if d < 0 {
					d = -d
				}
				localErr += d
				tc.ScalarOps(3) // damp, diff, abs
				tc.ScalarStoreF(next, v, newr)
			}
			tc.AtomicAddFScalar(errAcc, 0, localErr)
		})
		rank, next = next, rank
		if errAcc.F[0] <= kernels.PREps {
			break
		}
	}
	cx.outF["rank"] = rank.F
	return nil
}

// --- MST ---

// algoMSTBoruvka is Boruvka MST with union-find (Galois): each round scans
// edges to find per-component minima (weight|edge encoded), grafts, and
// compresses.
func algoMSTBoruvka(cx *ctx) error {
	n := cx.g.NumNodes()
	comp := cx.e.AllocI("comp", int(n))
	minedge := cx.e.AllocI("minedge", int(n))
	total := cx.e.AllocI("mstwt", 1)
	for i := range comp.I {
		comp.I[i] = int32(i)
	}
	const bits = 24
	grafts := cx.e.AllocI("grafts", 1)
	for {
		grafts.I[0] = 0
		for i := range minedge.I {
			minedge.I[i] = inf
		}
		// Find each component's minimum outgoing edge.
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			for u := start; u < end; u++ {
				tc.ScalarOps(cx.t.vertexOverheadOps)
				cu := tc.ScalarLoadI(comp, u)
				s, e := cx.row(tc, u)
				for p := s; p < e; p++ {
					d := cx.dst(tc, p)
					cd := tc.ScalarLoadI(comp, d)
					if cu == cd {
						continue
					}
					enc := cx.wt(tc, p)<<bits | p
					if enc < tc.ScalarLoadI(minedge, cu) {
						tc.AtomicUpdateScalar(minedge, cu, enc)
					}
				}
			}
		})
		// Graft larger roots onto smaller.
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			var local, weight int32
			for u := start; u < end; u++ {
				if tc.ScalarLoadI(comp, u) != u {
					continue
				}
				me := tc.ScalarLoadI(minedge, u)
				if me == inf {
					continue
				}
				eidx := me & (1<<bits - 1)
				other := tc.ScalarLoadI(comp, tc.ScalarLoadI(cx.edgeDst, eidx))
				if other < u {
					tc.ScalarStoreI(comp, u, other)
					weight += me >> bits
					local++
				}
			}
			if local != 0 {
				tc.AtomicAddScalar(grafts, 0, local, false)
				tc.AtomicAddScalar(total, 0, weight, false)
			}
		})
		if grafts.I[0] == 0 {
			break
		}
		// Compress.
		cx.e.Launch(0, func(tc *spmd.TaskCtx) {
			start, end := taskRange(tc, n)
			for u := start; u < end; u++ {
				for {
					c := tc.ScalarLoadI(comp, u)
					cc := tc.ScalarLoadI(comp, c)
					if c == cc {
						break
					}
					tc.ScalarStoreI(comp, u, cc)
				}
			}
		})
	}
	cx.outI["mstwt"] = total.I
	cx.outI["comp"] = comp.I
	return nil
}
