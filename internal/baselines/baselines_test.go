package baselines

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func prepared(b string, g *graph.CSR) *graph.CSR {
	bench, err := kernels.ByName(b)
	if err != nil {
		panic(err)
	}
	if bench.NeedsSymmetric {
		return g.Symmetrize()
	}
	return g
}

// TestAllFrameworksMatchReferences: every framework's every algorithm must
// produce reference-identical outputs on all three input families.
func TestAllFrameworksMatchReferences(t *testing.T) {
	m := machine.Intel8()
	for _, f := range Frameworks() {
		for _, raw := range graph.Suite(graph.ScaleTest, 13) {
			for _, bench := range f.Benchmarks() {
				g := prepared(bench, raw)
				res, err := f.Run(bench, g, m, 4, 0)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", f.Name, bench, raw.Name, err)
				}
				checkOutput(t, f.Name, bench, g, res)
			}
		}
	}
}

func checkOutput(t *testing.T, fw, bench string, g *graph.CSR, res *Result) {
	t.Helper()
	switch bench {
	case "bfs-wl":
		want := kernels.RefBFS(g, 0)
		got := res.OutI["lvl"]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s/%s: lvl[%d] = %d, want %d", fw, bench, i, got[i], want[i])
			}
		}
	case "sssp-nf":
		want := kernels.RefSSSP(g, 0)
		got := res.OutI["dist"]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s/%s: dist[%d] = %d, want %d", fw, bench, i, got[i], want[i])
			}
		}
	case "cc":
		want := kernels.RefCC(g)
		got := res.OutI["comp"]
		rep := map[int32]int32{}
		for i := range got {
			if r, ok := rep[got[i]]; ok && r != want[i] {
				t.Fatalf("%s/cc: label %d spans components", fw, got[i])
			}
			rep[got[i]] = want[i]
		}
		seen := map[int32]int32{}
		for i := range got {
			if l, ok := seen[want[i]]; ok && l != got[i] {
				t.Fatalf("%s/cc: component split across labels", fw)
			}
			seen[want[i]] = got[i]
		}
	case "tri":
		if got, want := res.OutI["count"][0], kernels.RefTRI(g); got != want {
			t.Fatalf("%s/tri: %d, want %d", fw, got, want)
		}
	case "mis":
		want := kernels.RefMIS(g, res.OutI["pri"])
		got := res.OutI["state"]
		for i := range want {
			if (got[i] == 1) != want[i] {
				t.Fatalf("%s/mis: node %d in-set=%v, want %v", fw, i, got[i] == 1, want[i])
			}
		}
	case "pr":
		want := kernels.RefPR(g)
		got := res.OutF["rank"]
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4+1e-2*float64(want[i]) {
				t.Fatalf("%s/pr: rank[%d] = %g, want %g", fw, i, got[i], want[i])
			}
		}
	case "mst":
		if got, want := res.OutI["mstwt"][0], kernels.RefMST(g); got != want {
			t.Fatalf("%s/mst: weight %d, want %d", fw, got, want)
		}
	}
}

func TestFrameworkAvailability(t *testing.T) {
	ligra, graphit, galois := Ligra(), GraphIt(), Galois()
	if len(graphit.Benchmarks()) != 5 {
		t.Errorf("GraphIt supports %d benchmarks, want 5 (the paper's common set)",
			len(graphit.Benchmarks()))
	}
	if !galois.Supports("mst") || ligra.Supports("mst") {
		t.Error("MST should be Galois-only")
	}
	if graphit.Supports("tri") {
		t.Error("GraphIt has no TRI")
	}
	if _, err := graphit.Run("tri", graph.Road(4, 4, 4, 1), machine.Intel8(), 2, 0); err == nil {
		t.Error("unsupported benchmark must error")
	}
}

// TestDirectionOptimizationWins: on a low-diameter graph, the
// direction-optimizing BFS must beat the plain worklist BFS of the same cost
// model — the reason Ligra wins bfs on RMAT in Table X.
func TestDirectionOptimizationWins(t *testing.T) {
	g := graph.RMAT(12, 8, 16, 3)
	m := machine.Intel8()
	src := g.MaxDegreeNode() // node 0 can be isolated in scrambled RMAT
	ligra := Ligra()
	dirOpt, err := ligra.Run("bfs-wl", g, m, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	noSwitch := Ligra()
	noSwitch.t.denseDenom = 0
	plain, err := noSwitch.Run("bfs-wl", g, m, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	if dirOpt.TimeMS >= plain.TimeMS {
		t.Errorf("direction-optimized %v ms not faster than plain %v ms",
			dirOpt.TimeMS, plain.TimeMS)
	}
}

// TestGaloisSSSPWorkEfficient: on a weighted road graph, delta-stepping must
// beat frontier Bellman-Ford by a wide margin.
func TestGaloisSSSPWorkEfficient(t *testing.T) {
	g := graph.Road(48, 48, 64, 9)
	m := machine.Intel8()
	galois, err := Galois().Run("sssp-nf", g, m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	ligra, err := Ligra().Run("sssp-nf", g, m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if galois.TimeMS >= ligra.TimeMS {
		t.Errorf("delta-stepping %v ms not faster than Bellman-Ford %v ms",
			galois.TimeMS, ligra.TimeMS)
	}
}

// TestCCUnionFindBeatsLabelPropOnRoad: the Table X road-CC gap.
func TestCCUnionFindBeatsLabelPropOnRoad(t *testing.T) {
	g := prepared("cc", graph.Road(48, 48, 8, 10))
	m := machine.Intel8()
	galois, err := Galois().Run("cc", g, m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	ligra, err := Ligra().Run("cc", g, m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if galois.TimeMS >= ligra.TimeMS {
		t.Errorf("union-find CC %v ms not faster than label-prop %v ms on road",
			galois.TimeMS, ligra.TimeMS)
	}
}

func TestDeterministicBaselines(t *testing.T) {
	g := graph.RMAT(8, 6, 16, 4)
	m := machine.AMD32()
	r1, err := GraphIt().Run("bfs-wl", g, m, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GraphIt().Run("bfs-wl", g, m, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TimeMS != r2.TimeMS || r1.Stats != r2.Stats {
		t.Error("baseline runs not deterministic")
	}
}
