// Package baselines implements scalar multicore graph frameworks in the
// styles of Ligra, GraphIt and Galois, the paper's comparison systems
// (Fig. 4, Table X). They run on the same SPMD engine in scalar mode with
// the same machine and cache models, so the EGACS-vs-framework comparison
// isolates the effect of SIMD execution and the GPU-derived optimizations,
// exactly as the paper's timer-placement methodology intends.
//
// Fidelity notes (see DESIGN.md): each framework keeps its signature
// algorithmic traits — Ligra and GraphIt get direction-optimizing BFS and
// frontier-based label-propagation CC; Galois gets asynchronous-style
// chunk-aggregated worklists, delta-stepping SSSP, union-find CC and Boruvka
// MST — plus per-framework constant overheads for their abstraction layers.
package baselines

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// tuning captures the per-framework modeling knobs.
type tuning struct {
	// denseDenom enables direction-optimizing traversal: a round goes
	// dense when |frontier|+frontierEdges > m/denseDenom (Ligra's 20).
	// Zero disables direction switching.
	denseDenom int
	// edgeOverheadOps models per-edge abstraction overhead (functor calls,
	// bounds bookkeeping) in scalar instructions.
	edgeOverheadOps int
	// vertexOverheadOps models per-vertex overhead.
	vertexOverheadOps int
	// chunkedPush aggregates worklist pushes per task with a single
	// reservation (Galois's chunked local queues); otherwise pushes pay a
	// prefix-sum-style two-op cost plus one reservation per task (Ligra's
	// edgeMap packing).
	chunkedPush bool
	taskSys     spmd.TaskSystem
}

// Framework is one baseline system.
type Framework struct {
	Name string
	t    tuning
	// algos maps EGACS benchmark names to implementations.
	algos map[string]func(cx *ctx) error
}

// Result reports one baseline run.
type Result struct {
	TimeMS float64
	Stats  spmd.Stats
	OutI   map[string][]int32
	OutF   map[string][]float32
}

// Ligra returns the Ligra-style framework: Cilk tasking, direction-
// optimizing edgeMap, frontier-based algorithms, template-library overhead.
func Ligra() *Framework {
	f := &Framework{
		Name: "ligra",
		t: tuning{
			denseDenom: 20,
			// Template-library machinery: per-edge functor calls through
			// edgeMap, frontier membership checks, CAS wrappers.
			edgeOverheadOps:   10,
			vertexOverheadOps: 14,
			taskSys:           spmd.Cilk,
		},
	}
	f.algos = map[string]func(cx *ctx) error{
		"bfs-wl":  algoBFSDirOpt,
		"sssp-nf": algoSSSPBellmanFord,
		"cc":      algoCCLabelProp,
		"tri":     algoTRI,
		"mis":     algoMIS,
		"pr":      algoPRPull,
	}
	return f
}

// GraphIt returns the GraphIt-style framework: compiler-generated loops
// (low per-edge overhead), direction optimization with a more aggressive
// switch, Cilk tasking. The paper compares EGACS to GraphIt on five common
// benchmarks.
func GraphIt() *Framework {
	f := &Framework{
		Name: "graphit",
		t: tuning{
			denseDenom: 12,
			// Compiler-generated loops: the leanest scalar per-edge code
			// of the three systems.
			edgeOverheadOps:   4,
			vertexOverheadOps: 6,
			taskSys:           spmd.Cilk,
		},
	}
	f.algos = map[string]func(cx *ctx) error{
		"bfs-wl":  algoBFSDirOpt,
		"sssp-nf": algoSSSPBellmanFord,
		"cc":      algoCCLabelProp,
		"mis":     algoMIS,
		"pr":      algoPRPull,
	}
	return f
}

// Galois returns the Galois-style framework: asynchronous chunked
// worklists, delta-stepping SSSP, union-find CC and Boruvka MST.
func Galois() *Framework {
	f := &Framework{
		Name: "galois",
		t: tuning{
			denseDenom: 0, // no direction optimization
			// Operator/worklist machinery and conflict bookkeeping.
			edgeOverheadOps:   7,
			vertexOverheadOps: 10,
			chunkedPush:       true,
			taskSys:           spmd.TBB,
		},
	}
	f.algos = map[string]func(cx *ctx) error{
		"bfs-wl":  algoBFSWorklist,
		"sssp-nf": algoSSSPDelta,
		"cc":      algoCCUnionFind,
		"tri":     algoTRI,
		"mis":     algoMIS,
		"pr":      algoPRPull,
		"mst":     algoMSTBoruvka,
	}
	return f
}

// Frameworks returns all three baselines.
func Frameworks() []*Framework {
	return []*Framework{Ligra(), GraphIt(), Galois()}
}

// init-time registration of Galois MST (kept separate: it needs the
// weight-encoding helper shared with the kernels package's constraints).
func init() {}

// Supports reports whether the framework implements the benchmark.
func (f *Framework) Supports(bench string) bool {
	_, ok := f.algos[bench]
	return ok
}

// Benchmarks lists the supported benchmark names.
func (f *Framework) Benchmarks() []string {
	var out []string
	for _, n := range []string{"bfs-wl", "sssp-nf", "cc", "tri", "mis", "pr", "mst"} {
		if f.Supports(n) {
			out = append(out, n)
		}
	}
	return out
}

// Run executes the named benchmark on g (already prepared: symmetrized for
// cc/tri/mis/mst) under the machine model with the given task count
// (0 = machine default).
func (f *Framework) Run(bench string, g *graph.CSR, m *machine.Config, tasks int, src int32) (*Result, error) {
	algo, ok := f.algos[bench]
	if !ok {
		return nil, fmt.Errorf("baselines: %s does not implement %s", f.Name, bench)
	}
	e := spmd.New(m, vec.TargetScalar, tasks)
	e.TaskSys = f.t.taskSys
	cx := &ctx{
		e:    e,
		g:    g,
		src:  src,
		t:    f.t,
		outI: map[string][]int32{},
		outF: map[string][]float32{},
	}
	cx.bind()
	if err := algo(cx); err != nil {
		return nil, fmt.Errorf("baselines: %s/%s: %w", f.Name, bench, err)
	}
	return &Result{
		TimeMS: e.TimeMS(),
		Stats:  e.Stats,
		OutI:   cx.outI,
		OutF:   cx.outF,
	}, nil
}
