package vmem

import "testing"

func TestColdFaultsThenHits(t *testing.T) {
	p := New(4096, 10*4096, 1000)
	ns, fault := p.Touch(0)
	if !fault || ns != 1000 {
		t.Fatalf("cold touch: ns=%v fault=%v", ns, fault)
	}
	ns, fault = p.Touch(100) // same page
	if fault || ns != 0 {
		t.Fatalf("warm touch: ns=%v fault=%v", ns, fault)
	}
	if p.Faults != 1 || p.Touches != 2 {
		t.Errorf("counters: %d faults %d touches", p.Faults, p.Touches)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(4096, 2*4096, 1) // 2 resident pages
	p.Touch(0 * 4096)
	p.Touch(1 * 4096)
	p.Touch(0 * 4096) // page 0 now most recent
	p.Touch(2 * 4096) // evicts page 1
	if p.Evictions != 1 {
		t.Fatalf("evictions = %d", p.Evictions)
	}
	if _, fault := p.Touch(0 * 4096); fault {
		t.Error("page 0 should have survived (LRU)")
	}
	if _, fault := p.Touch(1 * 4096); !fault {
		t.Error("page 1 should have been evicted")
	}
	if p.ResidentPages() != 2 || p.Capacity() != 2 {
		t.Errorf("resident=%d cap=%d", p.ResidentPages(), p.Capacity())
	}
}

func TestWorkingSetFitsNoSteadyFaults(t *testing.T) {
	p := New(4096, 64*4096, 10)
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < 32; i++ {
			p.Touch(i * 4096)
		}
	}
	if p.Faults != 32 {
		t.Errorf("faults = %d, want 32 compulsory only", p.Faults)
	}
}

func TestThrashing(t *testing.T) {
	// Sequential sweep over 2x capacity with LRU: every touch faults.
	p := New(4096, 16*4096, 10)
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < 32; i++ {
			p.Touch(i * 4096)
		}
	}
	if p.FaultRate() < 0.99 {
		t.Errorf("sweep thrash fault rate = %v, want ~1", p.FaultRate())
	}
}

func TestFaultCostDominatesOnGPU(t *testing.T) {
	// Identical access stream and byte budget: the UVM-style pager (45 us
	// faults) must accumulate vastly more stall than the CPU pager (3.5 us
	// faults). This is the mechanism behind the paper's >5000x GPU DNFs.
	cpu := New(4<<10, 1<<20, 3500)
	gpu := New(4<<10, 1<<20, 45000)
	var cpuNS, gpuNS float64
	state := uint64(12345)
	for i := 0; i < 20000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		addr := int64(state % (8 << 20))
		ns, _ := cpu.Touch(addr)
		cpuNS += ns
		ns, _ = gpu.Touch(addr)
		gpuNS += ns
	}
	if cpu.Faults != gpu.Faults {
		t.Fatalf("same stream, different faults: %d vs %d", cpu.Faults, gpu.Faults)
	}
	if gpuNS < 10*cpuNS {
		t.Errorf("GPU paging stall %v ns not >> CPU %v ns", gpuNS, cpuNS)
	}
}

func TestDefaultsAndMinCapacity(t *testing.T) {
	p := New(0, 1, 5)
	if p.Capacity() != 1 {
		t.Errorf("minimum capacity = %d", p.Capacity())
	}
	p.Touch(0)
	p.Touch(1 << 40)
	if p.ResidentPages() != 1 {
		t.Error("capacity 1 must keep one page")
	}
	if p.FaultRate() != 1 {
		t.Errorf("FaultRate = %v", p.FaultRate())
	}
	var empty Pager
	if (&empty).FaultRate() != 0 {
		t.Error("zero-touch fault rate")
	}
}
