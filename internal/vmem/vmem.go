// Package vmem simulates demand paging for the Table IX virtual-memory
// experiments: an LRU-resident set over the engine's synthetic address
// space, with per-device fault costs. On the CPU this stands in for the
// cgroups memory limit the paper uses; on the GPU it models CUDA unified
// memory (UVM) far-faults, whose ~45 microsecond service time is what makes
// irregular kernels on oversubscribed GPUs catastrophically slow (the
// paper's >5000x DNFs).
package vmem

import "container/list"

// Pager is an LRU paging simulator implementing spmd.Pager.
type Pager struct {
	pageShift uint
	capacity  int // resident pages
	faultNS   float64

	lru      *list.List              // front = most recent
	resident map[int64]*list.Element // page -> lru node

	// Faults counts demand-paging faults (including compulsory ones).
	Faults int64
	// Evictions counts capacity evictions.
	Evictions int64
	// Touches counts all page touches.
	Touches int64
}

// New creates a pager with the given page size, physical-memory budget in
// bytes, and per-fault cost in nanoseconds. A non-positive budget panics:
// the experiments always configure a fraction of the measured footprint.
func New(pageSize int, physBytes int64, faultNS float64) *Pager {
	if pageSize <= 0 {
		pageSize = 4 << 10
	}
	var shift uint
	for 1<<shift < pageSize {
		shift++
	}
	capacity := int(physBytes >> shift)
	if capacity < 1 {
		capacity = 1
	}
	return &Pager{
		pageShift: shift,
		capacity:  capacity,
		faultNS:   faultNS,
		lru:       list.New(),
		resident:  make(map[int64]*list.Element, capacity),
	}
}

// Touch records an access to addr, returning the extra stall in nanoseconds
// and whether a fault occurred.
func (p *Pager) Touch(addr int64) (float64, bool) {
	p.Touches++
	page := addr >> p.pageShift
	if el, ok := p.resident[page]; ok {
		p.lru.MoveToFront(el)
		return 0, false
	}
	p.Faults++
	if p.lru.Len() >= p.capacity {
		victim := p.lru.Back()
		p.lru.Remove(victim)
		delete(p.resident, victim.Value.(int64))
		p.Evictions++
	}
	p.resident[page] = p.lru.PushFront(page)
	return p.faultNS, true
}

// ResidentPages returns the current resident-set size in pages.
func (p *Pager) ResidentPages() int { return p.lru.Len() }

// Capacity returns the configured physical capacity in pages.
func (p *Pager) Capacity() int { return p.capacity }

// FaultRate returns faults per touch.
func (p *Pager) FaultRate() float64 {
	if p.Touches == 0 {
		return 0
	}
	return float64(p.Faults) / float64(p.Touches)
}
