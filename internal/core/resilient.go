package core

import (
	"repro/internal/baselines"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// RunResilient executes a benchmark with graceful degradation: the vector
// engine first (retried once, since injected faults are drawn per-access and
// may clear on a second attempt), then each scalar baseline framework that
// implements the benchmark, then the benchmark's serial reference. The
// result reports which path served and the error of every failed attempt.
//
// The graph must already be prepared (see PrepareGraph). Budget and injector
// settings in cfg apply to the vector attempts only — fallbacks exist
// precisely to survive them.
func RunResilient(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	cfg = cfg.withDefaults()
	vector := func() (*kernels.RunOutput, error) {
		res, err := Run(b, g, cfg)
		if err != nil {
			return nil, err
		}
		return outputOf(b, res), nil
	}
	return kernels.RunResilient(b, g, runParams(b, g, cfg), cfg.Src,
		vector, baselineFallbacks(b, cfg))
}

// outputOf collects a run's declared output arrays into a RunOutput.
func outputOf(b *kernels.Benchmark, res *Result) *kernels.RunOutput {
	out := &kernels.RunOutput{I: map[string][]int32{}, F: map[string][]float32{}}
	for _, d := range b.Prog.Arrays {
		if a := res.Instance.ArrayI(d.Name); a != nil {
			out.I[d.Name] = a
		} else if f := res.Instance.ArrayF(d.Name); f != nil {
			out.F[d.Name] = f
		}
	}
	return out
}

// baselineFallbacks wraps the scalar baseline frameworks that implement b as
// fallback runners, in framework presentation order.
func baselineFallbacks(b *kernels.Benchmark, cfg Config) []kernels.FallbackRunner {
	var out []kernels.FallbackRunner
	for _, fw := range baselines.Frameworks() {
		fw := fw
		if !fw.Supports(b.Name) {
			continue
		}
		out = append(out, kernels.FallbackRunner{
			Name: fw.Name,
			Run: func(b *kernels.Benchmark, g *graph.CSR, src int32) (*kernels.RunOutput, error) {
				res, err := fw.Run(b.Name, g, cfg.Machine, cfg.Tasks, src)
				if err != nil {
					return nil, err
				}
				return &kernels.RunOutput{I: res.OutI, F: res.OutF}, nil
			},
		})
	}
	return out
}
