package core

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// RunResilient executes a benchmark with graceful degradation: the vector
// engine first (which, with Config.CheckpointEvery set, absorbs recoverable
// faults via checkpoint rollback before giving up; retried once since
// injected faults are drawn per-site and may clear), then each scalar
// baseline framework that implements the benchmark, then the benchmark's
// serial reference. The result reports which path served, the error of every
// failed attempt, and per-attempt cost (modeled cycles, wall time,
// checkpoint/rollback counters).
//
// The graph must already be prepared (see PrepareGraph). Budget and injector
// settings in cfg apply to the vector attempts only — fallbacks exist
// precisely to survive them.
func RunResilient(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	return RunResilientCtx(context.Background(), b, g, cfg)
}

// RunResilientVerified is RunResilient with the vector output additionally
// checked against the benchmark's serial reference before it may serve:
// corruption that slipped past the invariant validators fails the attempt and
// degrades to the fallback ladder instead of serving silently wrong results.
// This is the chaos-testing entry point — every run ends in a verified output
// or a typed error.
func RunResilientVerified(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	return RunResilientVerifiedCtx(context.Background(), b, g, cfg)
}

// RunResilientCtx is RunResilient under a caller context: unless the config
// already carries its own budget context, ctx becomes the run's wall-clock
// budget (fault.Budget.Ctx), which the pipe-loop guards check every
// iteration — so a caller deadline or a disconnected client stops a run
// mid-kernel with a typed deadline error, not at the next attempt boundary.
// The degradation chain also stops between attempts once ctx is done. This
// is the serving layer's per-request entry point.
func RunResilientCtx(ctx context.Context, b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	return runResilient(ctx, b, g, cfg, false, true)
}

// RunResilientVerifiedCtx is RunResilientVerified under a caller context
// (see RunResilientCtx).
func RunResilientVerifiedCtx(ctx context.Context, b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	return runResilient(ctx, b, g, cfg, true, true)
}

// RunFallbacks serves the benchmark from the scalar ladder only — baseline
// frameworks in presentation order, then the serial reference — without
// compiling or running the vector engine at all. This is the overload
// degradation path of the serving layer: scalar baselines cost a small
// fraction of a simulated vector run's wall-clock time, so a saturated
// server sheds load by serving scalarly rather than rejecting.
func RunFallbacks(ctx context.Context, b *kernels.Benchmark, g *graph.CSR, cfg Config) (*kernels.ResilientResult, error) {
	return runResilient(ctx, b, g, cfg, false, false)
}

func runResilient(ctx context.Context, b *kernels.Benchmark, g *graph.CSR, cfg Config, verified, withVector bool) (*kernels.ResilientResult, error) {
	cfg = cfg.withDefaults()
	if ctx != nil && cfg.Budget.Ctx == nil {
		cfg.Budget.Ctx = ctx
	}
	var vector func() (*kernels.RunOutput, kernels.Cost, error)
	if withVector {
		vector = func() (*kernels.RunOutput, kernels.Cost, error) {
			res, err := run(b, g, cfg)
			cost := costOf(res)
			if err != nil {
				return nil, cost, err
			}
			out := outputOf(b, res)
			if verified {
				if verr := out.Verify(b, g, res.Instance.Params["src"]); verr != nil {
					return nil, cost, fmt.Errorf("output verification: %w", verr)
				}
			}
			return out, cost, nil
		}
	}
	return kernels.RunResilient(ctx, b, g, runParams(b, g, cfg), cfg.Src,
		vector, baselineFallbacks(b, cfg))
}

// costOf maps a (possibly partial) run result to the attempt cost RunResilient
// records. A nil result (compile/bind failure) costs zero.
func costOf(res *Result) kernels.Cost {
	if res == nil {
		return kernels.Cost{}
	}
	return kernels.Cost{
		Cycles:  res.Engine.TimeCycles(),
		Backend: res.Backend,
		Recovery: kernels.RecoveryCounts{
			Checkpoints:    res.Recovery.Checkpoints,
			Rollbacks:      res.Recovery.Rollbacks,
			BadCheckpoints: res.Recovery.BadCheckpoints,
			WastedCycles:   res.Recovery.WastedCycles,
		},
	}
}

// outputOf collects a run's declared output arrays into a RunOutput.
func outputOf(b *kernels.Benchmark, res *Result) *kernels.RunOutput {
	out := &kernels.RunOutput{I: map[string][]int32{}, F: map[string][]float32{}}
	for _, d := range b.Prog.Arrays {
		if a := res.Instance.ArrayI(d.Name); a != nil {
			out.I[d.Name] = a
		} else if f := res.Instance.ArrayF(d.Name); f != nil {
			out.F[d.Name] = f
		}
	}
	return out
}

// baselineFallbacks wraps the scalar baseline frameworks that implement b as
// fallback runners, in framework presentation order.
func baselineFallbacks(b *kernels.Benchmark, cfg Config) []kernels.FallbackRunner {
	var out []kernels.FallbackRunner
	for _, fw := range baselines.Frameworks() {
		fw := fw
		if !fw.Supports(b.Name) {
			continue
		}
		out = append(out, kernels.FallbackRunner{
			Name: fw.Name,
			Run: func(b *kernels.Benchmark, g *graph.CSR, src int32) (*kernels.RunOutput, error) {
				res, err := fw.Run(b.Name, g, cfg.Machine, cfg.Tasks, src)
				if err != nil {
					return nil, err
				}
				return &kernels.RunOutput{I: res.OutI, F: res.OutF}, nil
			},
		})
	}
	return out
}
