package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/compiled"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// runBothBackends executes the same configuration once pinned to the
// interpreter and once pinned to the generated backend, asserting the pin
// took effect, and returns both results.
func runBothBackends(t *testing.T, b *kernels.Benchmark, g *graph.CSR, cfg Config) (interp, comp *Result) {
	t.Helper()
	ci := cfg
	ci.Backend = BackendInterp
	interp, err := Run(b, g, ci)
	if err != nil {
		t.Fatalf("%s interp: %v", b.Name, err)
	}
	cc := cfg
	cc.Backend = BackendCompiled
	comp, err = Run(b, g, cc)
	if err != nil {
		t.Fatalf("%s compiled: %v", b.Name, err)
	}
	if interp.Backend != "interp" || comp.Backend != "compiled" {
		t.Fatalf("%s: backend pin not honored: %q / %q", b.Name, interp.Backend, comp.Backend)
	}
	return interp, comp
}

// requireBitIdentical compares the two results of a differential pair: modeled
// time, the full statistics counters and every output array must match bit for
// bit (floats compared on their bit patterns — the backends must take the
// exact same accumulation order, not merely be numerically close).
func requireBitIdentical(t *testing.T, label string, interp, comp *Result) {
	t.Helper()
	if interp.TimeMS != comp.TimeMS {
		t.Errorf("%s: modeled time diverges: interp %v ms, compiled %v ms",
			label, interp.TimeMS, comp.TimeMS)
	}
	if !reflect.DeepEqual(interp.Stats, comp.Stats) {
		t.Errorf("%s: stats diverge:\ninterp   %+v\ncompiled %+v",
			label, interp.Stats, comp.Stats)
	}
	ii, fi := snapshotOutputs(interp)
	ic, fc := snapshotOutputs(comp)
	for name, want := range ii {
		got := ic[name]
		if len(got) != len(want) {
			t.Errorf("%s: array %q length diverges", label, name)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: array %q diverges at [%d]: interp %d, compiled %d",
					label, name, i, want[i], got[i])
				break
			}
		}
	}
	for name, want := range fi {
		got := fc[name]
		if len(got) != len(want) {
			t.Errorf("%s: array %q length diverges", label, name)
			continue
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Errorf("%s: array %q diverges at [%d]: interp %v, compiled %v",
					label, name, i, want[i], got[i])
				break
			}
		}
	}
}

// TestCompiledMatchesInterpBitwise is the tentpole differential gate for the
// generated-Go backend: every benchmark (the paper's ten plus the two
// extensions), on every input family, under all three host execution modes,
// must produce bit-identical modeled time, statistics and outputs on both
// backends — the interpreter is the oracle, the generated code the candidate.
func TestCompiledMatchesInterpBitwise(t *testing.T) {
	modes := []struct {
		name string
		h    HostExec
	}{
		{"live", HostLive},
		{"cooperative", HostCooperative},
		{"parallel", HostParallel},
	}
	for _, b := range kernels.AllWithExtensions() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)
			for _, mode := range modes {
				label := b.Name + "/" + raw.Name + "/" + mode.name
				interp, comp := runBothBackends(t, b, g, Config{Tasks: 4, HostExec: mode.h})
				requireBitIdentical(t, label, interp, comp)
				if err := Verify(b, g, comp); err != nil {
					t.Errorf("%s: compiled output fails reference verification: %v", label, err)
				}
			}
		}
	}
}

// TestCompiledMatchesInterpUnderSell runs the differential gate with the
// SELL-C-σ layout policy on, so the generated dense-column loops and their
// runtime CSR-vs-SELL dispatch are compared against the interpreter's, not
// just the CSR paths.
func TestCompiledMatchesInterpUnderSell(t *testing.T) {
	for _, b := range kernels.AllWithExtensions() {
		g := PrepareGraph(b, graph.RMAT(9, 8, 16, 4))
		interp, comp := runBothBackends(t, b, g,
			Config{Tasks: 4, HostExec: HostParallel, Layout: LayoutSell})
		if interp.Layout != comp.Layout {
			t.Fatalf("%s: layout decision diverges: %q vs %q", b.Name, interp.Layout, comp.Layout)
		}
		requireBitIdentical(t, b.Name+"/sell", interp, comp)
		if comp.Layout == "sell" && comp.Stats.SellColumns == 0 {
			t.Errorf("%s: SELL attached but compiled run pushed no dense columns", b.Name)
		}
	}
}

// TestCompiledMatchesInterpUnderFaults drives both backends through identical
// fault-injection schedules with checkpointing, rollback and invariant
// verification on. Because generated kernels draw from the injector in the
// interpreter's exact order, the two runs must see the same faults, take the
// same rollbacks and end in the same state — recovery counters included.
func TestCompiledMatchesInterpUnderFaults(t *testing.T) {
	g0 := recoveryGraph()
	names := []string{"bfs-wl", "sssp-nf", "cc", "pr"}
	rates := []fault.Config{
		{Transient: 0.15},                  // pipe-window faults: rollback traffic
		{BitFlip: 0.3},                     // silent corruption: invariant rejections
		{GatherIndex: 0.001, BitFlip: 0.1}, // kernel-level draws inside generated code
	}
	totalRollbacks := 0
	for _, name := range names {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := PrepareGraph(b, g0)
		for ri, rate := range rates {
			for _, seed := range []uint64{7, 42} {
				// Each run gets its own injector: the PRNG is stateful, and
				// the whole point is that both backends draw the identical
				// stream from identical fresh state.
				cfg := func(bk Backend) Config {
					return Config{
						Backend:          bk,
						Tasks:            4,
						HostExec:         HostParallel,
						CheckpointEvery:  1,
						MaxRollbacks:     200,
						VerifyInvariants: true,
						Budget:           fault.Budget{MaxIters: 5000, StallWindow: 128},
						Inject:           fault.NewInjector(seed, rate),
					}
				}
				label := fmt.Sprintf("%s/rate#%d/seed%d", name, ri, seed)
				interp, ierr := Run(b, g, cfg(BackendInterp))
				comp, cerr := Run(b, g, cfg(BackendCompiled))
				if (ierr == nil) != (cerr == nil) {
					t.Errorf("%s: error divergence: interp %v, compiled %v", label, ierr, cerr)
					continue
				}
				if ierr != nil {
					// Both runs died: they must have died the same death, at
					// the same modeled instant.
					if ierr.Error() != cerr.Error() {
						t.Errorf("%s: error text divergence:\ninterp   %v\ncompiled %v",
							label, ierr, cerr)
					}
					continue
				}
				if interp.Backend != "interp" || comp.Backend != "compiled" {
					t.Fatalf("%s: backend pin not honored: %q / %q",
						label, interp.Backend, comp.Backend)
				}
				requireBitIdentical(t, label, interp, comp)
				if interp.Recovery != comp.Recovery {
					t.Errorf("%s: recovery counters diverge: interp %+v, compiled %+v",
						label, interp.Recovery, comp.Recovery)
				}
				totalRollbacks += comp.Recovery.Rollbacks
			}
		}
	}
	if totalRollbacks == 0 {
		t.Error("no rollbacks anywhere in the sweep: injection misconfigured, gate is vacuous")
	}
}

// TestCompiledBackendFallback pins the degradation contract: a BackendCompiled
// request the generated code cannot serve must not fail the run — core falls
// back to the interpreter, reports it in Result.Backend, and the outputs still
// verify. Covered gaps: a vector width the emitter does not target, and an
// optimization configuration whose post-opt IR fingerprint differs from what
// the checked-in code was generated from.
func TestCompiledBackendFallback(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := PrepareGraph(b, graph.Road(16, 16, 8, 3))

	res, err := Run(b, g, Config{Backend: BackendCompiled, Target: vec.TargetAVX2x4})
	if err != nil {
		t.Fatalf("width fallback: %v", err)
	}
	if res.Backend != "interp" {
		t.Errorf("width 4 run reports backend %q, want interp fallback", res.Backend)
	}
	if err := Verify(b, g, res); err != nil {
		t.Errorf("width fallback output: %v", err)
	}

	noNP := opt.Options{IO: true, CC: true}
	res, err = Run(b, g, Config{Backend: BackendCompiled, Opts: &noNP})
	if err != nil {
		t.Fatalf("opt fallback: %v", err)
	}
	if res.Backend != "interp" {
		t.Errorf("non-default opt run reports backend %q, want interp fallback", res.Backend)
	}
	if err := Verify(b, g, res); err != nil {
		t.Errorf("opt fallback output: %v", err)
	}

	// The underlying error is typed: EnableCompiled on an uncovered
	// combination wraps compiled.ErrBackendUnsupported, which is what core
	// keys its degradation on.
	prog, err := opt.Apply(b.Prog, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := codegen.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := spmd.New(machine.Intel8(), vec.TargetAVX512x16, 4)
	inst, err := mod.Bind(e, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.EnableCompiled(); !errors.Is(err, compiled.ErrBackendUnsupported) {
		t.Errorf("EnableCompiled on uncovered program: got %v, want ErrBackendUnsupported", err)
	}
	if inst.CompiledEnabled() {
		t.Error("failed EnableCompiled left the backend enabled")
	}
}

// TestBackendKnobParses pins the CLI spellings.
func TestBackendKnobParses(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Backend
	}{{"", BackendAuto}, {"auto", BackendAuto}, {"interp", BackendInterp}, {"compiled", BackendCompiled}} {
		got, err := ParseBackend(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("Backend(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Error("ParseBackend accepted garbage")
	}
}

// FuzzBackendDifferential fuzzes the differential oracle itself: arbitrary
// small random graphs, a benchmark picked by the fuzzer, both backends, and
// the bit-identity requirement. Any interpreter/generated-code divergence the
// structured matrix misses is a crash here.
func FuzzBackendDifferential(f *testing.F) {
	f.Add(uint16(64), uint16(256), uint8(8), uint8(0), uint8(0))
	f.Add(uint16(200), uint16(900), uint8(16), uint8(3), uint8(1))
	f.Add(uint16(33), uint16(70), uint8(1), uint8(9), uint8(2))
	f.Fuzz(func(t *testing.T, n, m uint16, maxW, bi, seed uint8) {
		if n < 2 {
			n = 2
		}
		if n > 512 {
			n = 512
		}
		if m > 4096 {
			m = 4096
		}
		benches := kernels.AllWithExtensions()
		b := benches[int(bi)%len(benches)]
		g := PrepareGraph(b, graph.Random(int32(n), int(m), int32(maxW)+1, uint64(seed)+1))
		cfg := Config{Tasks: 4, HostExec: HostCooperative, Src: int32(seed) % int32(n)}

		ci := cfg
		ci.Backend = BackendInterp
		interp, ierr := Run(b, g, ci)
		cc := cfg
		cc.Backend = BackendCompiled
		comp, cerr := Run(b, g, cc)
		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("error divergence: interp %v, compiled %v", ierr, cerr)
		}
		if ierr != nil {
			if ierr.Error() != cerr.Error() {
				t.Fatalf("error text divergence: interp %v, compiled %v", ierr, cerr)
			}
			return
		}
		requireBitIdentical(t, b.Name, interp, comp)
	})
}
