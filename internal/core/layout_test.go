package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// semanticOutputs restricts snapshots to the arrays the benchmark's serial
// reference defines — the algorithm's actual outputs. Worklist programs need
// this: attaching SELL permutes DomainNodes processing order, and in deferred
// modes the order changes which cross-task duplicate pushes get staged, so
// scheduling-dependent scratch (e.g. bfs-hb's claimed bitmap, which records
// every node that ever transited a small-frontier round) can legitimately
// differ — exactly as it already does between live and deferred execution.
// The converged outputs may not.
func semanticOutputs(t *testing.T, b *kernels.Benchmark, g *graph.CSR, res *Result) (map[string][]int32, map[string][]float32) {
	t.Helper()
	ref := b.Reference(g, res.Instance.Params, res.Instance.Params["src"])
	iv := map[string][]int32{}
	fv := map[string][]float32{}
	for name := range ref.I {
		iv[name] = append([]int32(nil), res.Instance.ArrayI(name)...)
	}
	for name := range ref.F {
		fv[name] = append([]float32(nil), res.Instance.ArrayF(name)...)
	}
	return iv, fv
}

// TestSellMatchesCSRBitwise is the layout differential gate: for every
// benchmark (paper suite and extensions), on every input family, in every
// host execution mode, a forced SELL-C-σ run must produce outputs
// bit-identical to the CSR run — including the float kernels, which the
// policy pins to CSR (so "forced" SELL is a no-op for them and identity is
// trivial but still asserted end to end). Worklist-free programs must match
// on every declared array, worklist programs on the reference-defined
// outputs (see semanticOutputs). Outputs are also verified against the
// serial reference, so a layout bug cannot hide behind a symmetric one.
func TestSellMatchesCSRBitwise(t *testing.T) {
	modes := []struct {
		name string
		h    HostExec
	}{
		{"live", HostLive},
		{"cooperative", HostCooperative},
		{"parallel", HostParallel},
	}
	for _, b := range kernels.AllWithExtensions() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)
			for _, mode := range modes {
				csr, err := Run(b, g, Config{Tasks: 4, HostExec: mode.h, Layout: LayoutCSR})
				if err != nil {
					t.Fatalf("%s/%s/%s csr: %v", b.Name, raw.Name, mode.name, err)
				}
				sell, err := Run(b, g, Config{Tasks: 4, HostExec: mode.h, Layout: LayoutSell})
				if err != nil {
					t.Fatalf("%s/%s/%s sell: %v", b.Name, raw.Name, mode.name, err)
				}
				if err := Verify(b, g, sell); err != nil {
					t.Errorf("%s/%s/%s sell: %v", b.Name, raw.Name, mode.name, err)
				}
				var ci, si map[string][]int32
				var cf, sf map[string][]float32
				if b.Prog.WLInit == ir.WLNone {
					ci, cf = snapshotOutputs(csr)
					si, sf = snapshotOutputs(sell)
				} else {
					ci, cf = semanticOutputs(t, b, g, csr)
					si, sf = semanticOutputs(t, b, g, sell)
				}
				if !reflect.DeepEqual(ci, si) || !reflect.DeepEqual(cf, sf) {
					t.Errorf("%s/%s/%s: outputs diverge between csr and sell layouts",
						b.Name, raw.Name, mode.name)
				}
				if csr.Layout != "csr" || csr.Stats.SellColumns != 0 {
					t.Errorf("%s/%s/%s: csr run reports layout %q with %d sell columns",
						b.Name, raw.Name, mode.name, csr.Layout, csr.Stats.SellColumns)
				}
				if b.OrderSensitive && sell.Layout != "csr" {
					t.Errorf("%s/%s/%s: order-sensitive kernel not pinned to csr (got %q)",
						b.Name, raw.Name, mode.name, sell.Layout)
				}
			}
		}
	}
}

// TestSellDensePathEngages asserts the forced SELL layout actually routes
// work through the dense column loop on the topology-driven kernels — a
// regression guard against the dispatch silently always falling back to CSR
// (which would keep outputs identical and hide the layout entirely).
func TestSellDensePathEngages(t *testing.T) {
	// bfs-tp is deliberately absent: its edge loop sits under the
	// lvl[n]==level predicate, so the chunk mask the density gate sees is
	// the frontier — at test scale no chunk reaches half occupancy and the
	// per-phase heuristic correctly keeps every sweep on CSR.
	dense := []string{"cc", "tri", "mis", "pr", "mst"}
	g0 := testGraphs()[1] // rmat: skewed degrees, the layout's target
	for _, name := range dense {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := PrepareGraph(b, g0)
		res, err := Run(b, g, Config{Tasks: 4, Layout: LayoutSell})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.OrderSensitive {
			if res.Layout != "csr" || res.Stats.SellColumns != 0 {
				t.Errorf("%s: order-sensitive kernel took the sell path (%q, %d columns)",
					name, res.Layout, res.Stats.SellColumns)
			}
			continue
		}
		if res.Layout != "sell" || res.Sell == nil {
			t.Fatalf("%s: layout = %q, sell = %v; want attached sell", name, res.Layout, res.Sell)
		}
		if res.Stats.SellColumns == 0 {
			t.Errorf("%s: forced sell layout never took the dense path", name)
		}
		if err := res.Sell.Validate(g); err != nil {
			t.Errorf("%s: attached layout invalid after run: %v", name, err)
		}
	}
}

// TestLayoutAutoPolicy checks the auto policy's machine gating: machines
// whose gathers are slower than unit-stride loads get the layout, a machine
// model without that gap (or an order-sensitive kernel) does not.
func TestLayoutAutoPolicy(t *testing.T) {
	g := PrepareGraph(mustKernel(t, "cc"), testGraphs()[1])
	res, err := Run(mustKernel(t, "cc"), g, Config{Layout: LayoutAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != "sell" {
		t.Errorf("auto on Intel8: layout = %q, want sell (gather %gx scalar load at L1)",
			res.Layout, machine.Intel8().GatherLaneCost[machine.L1])
	}

	pr := mustKernel(t, "pr")
	gp := PrepareGraph(pr, testGraphs()[1])
	res, err = Run(pr, gp, Config{Layout: LayoutAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != "csr" || res.Stats.SellColumns != 0 {
		t.Errorf("auto on pr: layout = %q with %d columns, want csr", res.Layout, res.Stats.SellColumns)
	}

	// Default (zero) layout must stay pure CSR so calibrated numbers and
	// golden tests are untouched.
	res, err = Run(mustKernel(t, "cc"), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != "csr" || res.Sell != nil || res.Stats.SellColumns != 0 {
		t.Errorf("default layout not csr: %q, sell=%v", res.Layout, res.Sell)
	}
}

// TestSellMismatchedCFallsBack: a prebuilt layout whose C differs from the
// vector width attaches fine but must be inert — dispatch requires C == W.
func TestSellMismatchedCFallsBack(t *testing.T) {
	b := mustKernel(t, "cc")
	g := PrepareGraph(b, testGraphs()[0])
	s, err := graph.BuildSellCS(g, 4, 0) // Intel8 target width is 16
	if err != nil {
		t.Fatal(err)
	}
	csr, err := Run(b, g, Config{Layout: LayoutCSR})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, g, Config{Layout: LayoutSell, Sell: s, SellC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != "sell" {
		t.Fatalf("layout = %q, want sell (attached but inert)", res.Layout)
	}
	if res.Stats.SellColumns != 0 {
		t.Errorf("C=4 layout on width-16 target took the dense path (%d columns)", res.Stats.SellColumns)
	}
	ci, cf := snapshotOutputs(csr)
	si, sf := snapshotOutputs(res)
	if !reflect.DeepEqual(ci, si) || !reflect.DeepEqual(cf, sf) {
		t.Error("outputs diverge under inert sell attachment")
	}
}

// TestSellComposesWithRecovery runs a SELL-layout benchmark under
// checkpointing with injected recoverable faults: the layout arrays are
// engine-registered before the first cut, so rollback re-execution must
// still find them attached and converge to the CSR-identical answer.
func TestSellComposesWithRecovery(t *testing.T) {
	b := mustKernel(t, "cc")
	g := PrepareGraph(b, testGraphs()[1])
	csr, err := Run(b, g, Config{Layout: LayoutCSR})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, g, Config{
		Layout:           LayoutSell,
		CheckpointEvery:  1,
		VerifyInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != "sell" {
		t.Fatalf("layout = %q, want sell", res.Layout)
	}
	ci, cf := snapshotOutputs(csr)
	si, sf := snapshotOutputs(res)
	if !reflect.DeepEqual(ci, si) || !reflect.DeepEqual(cf, sf) {
		t.Error("outputs diverge between csr and checkpointed sell run")
	}
}

// TestSellComposesWithEnginePooling reuses one engine across alternating
// layouts: ResetAll must fully clear the previous run's sell binding so a
// CSR run on a pooled engine cannot accidentally observe a stale layout.
func TestSellComposesWithEnginePooling(t *testing.T) {
	b := mustKernel(t, "cc")
	g := PrepareGraph(b, testGraphs()[0])
	// Engine reuse requires the same machine model instance (pointer
	// identity, as the serving layer's pools guarantee).
	m := machine.Intel8()
	first, err := Run(b, g, Config{Machine: m, Layout: LayoutSell})
	if err != nil {
		t.Fatal(err)
	}
	if first.Layout != "sell" {
		t.Fatalf("first run layout = %q, want sell", first.Layout)
	}
	second, err := Run(b, g, Config{Machine: m, Layout: LayoutCSR, Engine: first.Engine})
	if err != nil {
		t.Fatal(err)
	}
	if second.Engine != first.Engine {
		t.Fatal("engine was not reused")
	}
	if second.Layout != "csr" || second.Stats.SellColumns != 0 {
		t.Errorf("pooled csr run reports layout %q with %d sell columns",
			second.Layout, second.Stats.SellColumns)
	}
	third, err := Run(b, g, Config{Machine: m, Layout: LayoutSell, Engine: second.Engine})
	if err != nil {
		t.Fatal(err)
	}
	if third.Layout != "sell" || third.Stats.SellColumns == 0 {
		t.Errorf("pooled sell run: layout %q, %d columns", third.Layout, third.Stats.SellColumns)
	}
	fi, ff := snapshotOutputs(first)
	ti, tf := snapshotOutputs(third)
	if !reflect.DeepEqual(fi, ti) || !reflect.DeepEqual(ff, tf) {
		t.Error("pooled sell rerun diverges from fresh sell run")
	}
}

func mustKernel(t *testing.T, name string) *kernels.Benchmark {
	t.Helper()
	b, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
