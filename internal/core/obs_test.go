package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// The determinism surface the observability layer guarantees, pinned by the
// tests below:
//
//   - The modeled-clock track (spans, counters, instants: name, track,
//     timestamp, duration, argument) is bit-identical across repeated runs in
//     every execution mode — host scheduling never leaks into it.
//   - Cooperative-deferred and parallel execution produce bit-identical
//     modeled tracks, metrics series and phase profiles: they run the same
//     deferred-effect semantics and differ only in host scheduling.
//   - ExecLive is a semantically different scheduler (immediate cross-task
//     atomic visibility inside a segment), so on work-efficient kernels like
//     bfs-wl it legitimately executes different work (fewer duplicate
//     relaxations) and its timeline differs where the work differs. Where
//     live does identical work (pr), its per-phase stats match the deferred
//     modes exactly and cycles agree to float-accumulation order.
//
// The all-three-modes attribution proof on a mode-invariant workload lives in
// internal/spmd (TestProfileIdenticalAcrossModes).

// obsModes are the execution strategies the observability layer must agree
// across.
var obsModes = []struct {
	name string
	exec HostExec
}{
	{"live", HostLive},
	{"cooperative", HostCooperative},
	{"parallel", HostParallel},
}

// obsKernelNames: the worklist-driven flagship and the dense iterative
// kernel, per the tentpole's determinism requirement.
var obsKernelNames = []string{"bfs-wl", "pr"}

func obsBench(t *testing.T, name string) *kernels.Benchmark {
	t.Helper()
	b, err := kernels.ByName(name)
	if err != nil {
		t.Fatalf("kernel %s: %v", name, err)
	}
	return b
}

func eventDiff(t *testing.T, prefix string, got, ref []obs.Event) {
	t.Helper()
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if got[i] != ref[i] {
			t.Fatalf("%s: modeled timeline diverges at event %d:\n got %+v\nwant %+v",
				prefix, i, got[i], ref[i])
		}
	}
	t.Fatalf("%s: modeled event count diverges: %d vs %d", prefix, len(got), len(ref))
}

// TestTraceModeledTimelineDeterministic: in every mode the modeled track must
// be bit-identical across repeated runs, and the two deferred modes must be
// bit-identical to each other. The host-clock track is real wall time and is
// exempt.
func TestTraceModeledTimelineDeterministic(t *testing.T) {
	for _, name := range obsKernelNames {
		b := obsBench(t, name)
		g := PrepareGraph(b, graph.RMAT(9, 8, 16, 7))
		perMode := map[string][]obs.Event{}
		for _, mode := range obsModes {
			for trial := 0; trial < 2; trial++ {
				tr := obs.NewTracer(0)
				_, err := Run(b, g, Config{Tasks: 4, HostExec: mode.exec, Trace: tr})
				if err != nil {
					t.Fatalf("%s/%s trial %d: %v", name, mode.name, trial, err)
				}
				if tr.Dropped() != 0 {
					t.Fatalf("%s/%s: tracer dropped %d events at default capacity",
						name, mode.name, tr.Dropped())
				}
				got := tr.ModeledEvents()
				if len(got) == 0 {
					t.Fatalf("%s/%s: no modeled events recorded", name, mode.name)
				}
				if ref, seen := perMode[mode.name]; seen {
					if !reflect.DeepEqual(got, ref) {
						eventDiff(t, name+"/"+mode.name+" rerun", got, ref)
					}
				} else {
					perMode[mode.name] = got
				}
			}
		}
		if !reflect.DeepEqual(perMode["cooperative"], perMode["parallel"]) {
			eventDiff(t, name+" cooperative vs parallel",
				perMode["parallel"], perMode["cooperative"])
		}
	}
}

// TestProfilePhaseSumsMatchAcrossModes is the tentpole differential gate for
// deferred-mode profiling: profiling no longer forces the live scheduler, and
// fold-at-merge attribution in parallel execution is bit-identical to the
// cooperative reference. Live execution — different semantics, see the file
// comment — must still agree on phase structure, and on pr (identical work in
// all modes) on exact per-phase stats too.
func TestProfilePhaseSumsMatchAcrossModes(t *testing.T) {
	type phaseRow struct {
		Stats  spmd.Stats
		Cycles float64
		Visits int64
	}
	for _, name := range obsKernelNames {
		b := obsBench(t, name)
		g := PrepareGraph(b, graph.RMAT(9, 8, 16, 7))
		profiles := map[string]map[string]phaseRow{}
		for _, mode := range obsModes {
			res, err := Run(b, g, Config{Tasks: 4, HostExec: mode.exec, ProfileKernels: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode.name, err)
			}
			if mode.exec == HostParallel && !res.Engine.DeferredExec() {
				t.Errorf("%s: profiling forced the live scheduler under HostParallel", name)
			}
			got := map[string]phaseRow{}
			for _, ps := range res.Engine.Profile() {
				got[ps.Name] = phaseRow{Stats: ps.Stats, Cycles: ps.Cycles, Visits: ps.Visits}
			}
			if len(got) == 0 {
				t.Fatalf("%s/%s: empty profile", name, mode.name)
			}
			profiles[mode.name] = got
		}
		if !reflect.DeepEqual(profiles["cooperative"], profiles["parallel"]) {
			t.Errorf("%s: phase attribution diverges between deferred modes:\ncooperative %+v\nparallel    %+v",
				name, profiles["cooperative"], profiles["parallel"])
		}
		live, coop := profiles["live"], profiles["cooperative"]
		if len(live) != len(coop) {
			t.Errorf("%s: live profile has %d phases, deferred %d", name, len(live), len(coop))
		}
		for ph, lr := range live {
			cr, ok := coop[ph]
			if !ok {
				t.Errorf("%s: phase %q missing from deferred profile", name, ph)
				continue
			}
			if lr.Visits != cr.Visits {
				t.Errorf("%s/%s: visits %d (live) vs %d (deferred)", name, ph, lr.Visits, cr.Visits)
			}
			if name != "pr" {
				continue
			}
			if lr.Stats != cr.Stats {
				t.Errorf("%s/%s: per-phase stats diverge between live and deferred:\nlive     %+v\ndeferred %+v",
					name, ph, lr.Stats, cr.Stats)
			}
			if d := math.Abs(lr.Cycles - cr.Cycles); d > 1e-9*math.Abs(cr.Cycles) {
				t.Errorf("%s/%s: cycles %v (live) vs %v (deferred) beyond accumulation-order tolerance",
					name, ph, lr.Cycles, cr.Cycles)
			}
		}
	}
}

// TestMetricsSeriesDeterministicAcrossModes: per-iteration metrics rows
// derive only from modeled state, so they must be repeatable in every mode
// and bit-identical between the two deferred modes.
func TestMetricsSeriesDeterministicAcrossModes(t *testing.T) {
	for _, name := range obsKernelNames {
		b := obsBench(t, name)
		g := PrepareGraph(b, graph.RMAT(9, 8, 16, 7))
		perMode := map[string][]obs.IterSample{}
		for _, mode := range obsModes {
			for trial := 0; trial < 2; trial++ {
				m := obs.NewMetrics(0)
				_, err := Run(b, g, Config{Tasks: 4, HostExec: mode.exec, Metrics: m})
				if err != nil {
					t.Fatalf("%s/%s: %v", name, mode.name, err)
				}
				rows := m.Rows()
				if len(rows) == 0 {
					t.Fatalf("%s/%s: no metrics rows", name, mode.name)
				}
				if ref, seen := perMode[mode.name]; seen {
					if !reflect.DeepEqual(rows, ref) {
						t.Errorf("%s/%s: metrics series differs across reruns", name, mode.name)
					}
				} else {
					perMode[mode.name] = rows
				}
			}
		}
		if !reflect.DeepEqual(perMode["cooperative"], perMode["parallel"]) {
			t.Errorf("%s: metrics series diverges between deferred modes", name)
		}
	}
}

// TestTraceExportEndToEnd: a traced run exports schema-valid Chrome trace
// JSON containing both clocks and the expected track structure.
func TestTraceExportEndToEnd(t *testing.T) {
	b := obsBench(t, "bfs-wl")
	g := PrepareGraph(b, graph.RMAT(8, 8, 16, 3))
	tr := obs.NewTracer(0)
	m := obs.NewMetrics(0)
	if _, err := Run(b, g, Config{Tasks: 4, Trace: tr, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
	var sawHost, sawModeled, sawIter, sawSwap bool
	for _, ev := range tr.Events() {
		switch ev.Pid {
		case obs.ProcHost:
			sawHost = true
		case obs.ProcModeled:
			sawModeled = true
			if ev.Tid == obs.TidPipe && ev.Ph == 'X' {
				sawIter = true
			}
			if ev.Name == "worklist-swap" {
				sawSwap = true
			}
		}
	}
	if !sawHost || !sawModeled || !sawIter || !sawSwap {
		t.Errorf("trace missing expected tracks/events: host=%v modeled=%v iter=%v swap=%v",
			sawHost, sawModeled, sawIter, sawSwap)
	}
	var mbuf bytes.Buffer
	if err := m.WriteJSONL(&mbuf); err != nil {
		t.Fatal(err)
	}
	if mbuf.Len() == 0 {
		t.Error("metrics JSONL empty")
	}
}
