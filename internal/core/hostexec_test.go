package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/spmd"
)

// snapshotOutputs copies every declared program array of a finished run.
func snapshotOutputs(res *Result) (map[string][]int32, map[string][]float32) {
	iv := map[string][]int32{}
	fv := map[string][]float32{}
	for _, d := range res.Instance.M.Prog.Arrays {
		if out := res.Instance.ArrayI(d.Name); out != nil {
			iv[d.Name] = append([]int32(nil), out...)
		}
		if out := res.Instance.ArrayF(d.Name); out != nil {
			fv[d.Name] = append([]float32(nil), out...)
		}
	}
	return iv, fv
}

// TestParallelMatchesCooperativeBitwise is the tentpole differential gate:
// for every benchmark of the paper's evaluation, on every input family, the
// parallel scheduler must produce bit-identical modeled cycles, statistics
// (total and per-class instruction counts, atomics, barriers, ...) and
// converged outputs to the deferred cooperative reference scheduler — and
// both must pass output verification against the serial reference.
func TestParallelMatchesCooperativeBitwise(t *testing.T) {
	for _, b := range kernels.All() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)

			ref, err := Run(b, g, Config{Tasks: 4, HostExec: HostCooperative})
			if err != nil {
				t.Fatalf("%s/%s cooperative: %v", b.Name, raw.Name, err)
			}
			if err := Verify(b, g, ref); err != nil {
				t.Errorf("%s/%s cooperative: %v", b.Name, raw.Name, err)
			}

			par, err := Run(b, g, Config{Tasks: 4, HostExec: HostParallel})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", b.Name, raw.Name, err)
			}
			if err := Verify(b, g, par); err != nil {
				t.Errorf("%s/%s parallel: %v", b.Name, raw.Name, err)
			}

			if rc, pc := ref.Engine.TimeCycles(), par.Engine.TimeCycles(); rc != pc {
				t.Errorf("%s/%s: modeled cycles diverge: cooperative %v, parallel %v",
					b.Name, raw.Name, rc, pc)
			}
			if !reflect.DeepEqual(ref.Stats, par.Stats) {
				t.Errorf("%s/%s: stats diverge:\ncooperative %+v\nparallel    %+v",
					b.Name, raw.Name, ref.Stats, par.Stats)
			}

			ri, rf := snapshotOutputs(ref)
			pi, pf := snapshotOutputs(par)
			if !reflect.DeepEqual(ri, pi) || !reflect.DeepEqual(rf, pf) {
				t.Errorf("%s/%s: outputs diverge between cooperative and parallel",
					b.Name, raw.Name)
			}
		}
	}
}

// TestParallelRepeatable reruns one worklist-heavy benchmark several times in
// both deferred modes: host scheduling must never leak into modeled time,
// stats or outputs, and no data structure on the merge path may iterate in a
// nondeterministic order. (The deferred effect state is slices traversed in
// insertion order — shadows by array id, batches by first-use order — so the
// only ordered map traversal left on a result-affecting path is the profiler,
// which sorts before reporting.)
func TestParallelRepeatable(t *testing.T) {
	b, _ := kernels.ByName("sssp-nf")
	g := PrepareGraph(b, graph.RMAT(9, 8, 16, 4))
	for _, mode := range []HostExec{HostCooperative, HostParallel} {
		var cycles float64
		var stats spmd.Stats
		var outI map[string][]int32
		var outF map[string][]float32
		for trial := 0; trial < 5; trial++ {
			res, err := Run(b, g, Config{Tasks: 8, HostExec: mode})
			if err != nil {
				t.Fatalf("mode %d trial %d: %v", mode, trial, err)
			}
			ri, rf := snapshotOutputs(res)
			if trial == 0 {
				cycles, stats, outI, outF = res.Engine.TimeCycles(), res.Stats, ri, rf
				continue
			}
			if res.Engine.TimeCycles() != cycles {
				t.Fatalf("mode %d trial %d: cycles %v != %v",
					mode, trial, res.Engine.TimeCycles(), cycles)
			}
			if !reflect.DeepEqual(res.Stats, stats) {
				t.Fatalf("mode %d trial %d: stats diverge", mode, trial)
			}
			if !reflect.DeepEqual(ri, outI) || !reflect.DeepEqual(rf, outF) {
				t.Fatalf("mode %d trial %d: outputs diverge", mode, trial)
			}
		}
	}
}

// TestExtensionsForcedLive: kernels whose correctness needs live cross-task
// atomic visibility must ignore a parallel request and still verify.
func TestExtensionsForcedLive(t *testing.T) {
	for _, b := range kernels.Extensions() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)
			res, err := Run(b, g, Config{Tasks: 4, HostExec: HostParallel})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, raw.Name, err)
			}
			if err := Verify(b, g, res); err != nil {
				t.Errorf("%s/%s: %v", b.Name, raw.Name, err)
			}
		}
	}
}
