package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// testGraphs returns small instances of the three input families.
func testGraphs() []*graph.CSR {
	return graph.Suite(graph.ScaleTest, 7)
}

// TestAllBenchmarksAllOptsMatchReference is the central correctness gate:
// every benchmark, on every input family, under every optimization
// combination, must produce outputs identical to the serial reference.
func TestAllBenchmarksAllOptsMatchReference(t *testing.T) {
	optSets := []opt.Options{
		opt.None(),
		{IO: true},
		{NP: true},
		{CC: true},
		{IO: true, CC: true, NP: true},
		{Fibers: true},
		opt.All(),
	}
	for _, b := range kernels.All() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)
			for _, opts := range optSets {
				opts := opts
				res, err := Run(b, g, Config{Opts: &opts, Tasks: 4})
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", b.Name, raw.Name, opts, err)
				}
				if err := Verify(b, g, res); err != nil {
					t.Errorf("%s/%s/%v: %v", b.Name, raw.Name, opts, err)
				}
			}
		}
	}
}

// TestAllTargetsMatchReference runs each benchmark under every ISA/width.
func TestAllTargetsMatchReference(t *testing.T) {
	targets := []vec.Target{
		vec.TargetScalar,
		vec.TargetAVX1x4, vec.TargetAVX1x8, vec.TargetAVX1x16,
		vec.TargetAVX2x4, vec.TargetAVX2x8, vec.TargetAVX2x16,
		vec.TargetAVX512x4, vec.TargetAVX512x8, vec.TargetAVX512x16,
		vec.TargetGPU32,
	}
	raw := graph.RMAT(8, 8, 64, 3)
	for _, b := range kernels.All() {
		g := PrepareGraph(b, raw)
		for _, tgt := range targets {
			if _, err := RunVerified(b, g, Config{Target: tgt, Tasks: 4}); err != nil {
				t.Errorf("%v: %v", tgt, err)
			}
		}
	}
}

// TestAllMachinesRun exercises the three CPU models and the GPU model.
func TestAllMachinesRun(t *testing.T) {
	raw := graph.Road(12, 12, 16, 5)
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*machine.Config{
		machine.Intel8(), machine.AMD32(), machine.Phi72(), machine.QuadroP5000(),
	} {
		res, err := RunVerified(b, raw, Config{Machine: m})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.TimeMS <= 0 {
			t.Errorf("%s: no modeled time", m.Name)
		}
	}
}

func TestSerialConfig(t *testing.T) {
	cfg := SerialConfig(machine.Intel8())
	if cfg.Target != vec.TargetScalar || cfg.Tasks != 1 {
		t.Fatal("serial config wrong")
	}
	b, _ := kernels.ByName("bfs-wl")
	g := graph.Road(10, 10, 8, 2)
	res, err := RunVerified(b, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar build: no vector gathers, one lane per op.
	if res.Stats.LaneUtilization(1) > 1.0 {
		t.Error("scalar utilization exceeds 1")
	}
}

// TestIOReducesLaunches: without IO, every pipe round launches tasks; with
// IO, one launch total per pipe.
func TestIOReducesLaunches(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	g := graph.Road(16, 16, 8, 3) // diameter ~ 30: many rounds
	noIO := opt.Options{}
	withIO := opt.Options{IO: true}
	r1, err := Run(b, g, Config{Opts: &noIO, Tasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, g, Config{Opts: &withIO, Tasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Launches != 1 {
		t.Errorf("outlined launches = %d, want 1", r2.Stats.Launches)
	}
	if r1.Stats.Launches < 20 {
		t.Errorf("per-iteration launches = %d, expected many rounds", r1.Stats.Launches)
	}
	// Removing launches from the critical path must not slow things down.
	if r2.TimeMS > r1.TimeMS {
		t.Errorf("IO slower: %v ms vs %v ms", r2.TimeMS, r1.TimeMS)
	}
}

// TestCCReducesAtomicPushes reproduces the Table V effect: task-level
// cooperative conversion cuts atomic pushes by about the SIMD width.
func TestCCReducesAtomicPushes(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	g := graph.RMAT(9, 8, 16, 4)
	unopt := opt.Options{NP: true}
	withCC := opt.Options{NP: true, CC: true}
	r1, err := Run(b, g, Config{Opts: &unopt})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, g, Config{Opts: &withCC})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.AtomicPushes == 0 || r1.Stats.AtomicPushes == 0 {
		t.Fatal("no pushes recorded")
	}
	ratio := float64(r1.Stats.AtomicPushes) / float64(r2.Stats.AtomicPushes)
	if ratio < 2 {
		t.Errorf("CC push reduction = %.2fx, want substantial", ratio)
	}
}

// TestFiberCCFurtherReducesPushes: bfs-cx's expand kernel reserves in bulk,
// cutting pushes far below even task-level CC (Table V's 36.5x extra).
func TestFiberCCFurtherReducesPushes(t *testing.T) {
	b, _ := kernels.ByName("bfs-cx")
	g := graph.RMAT(9, 8, 16, 4)
	taskCC := opt.Options{NP: true, CC: true}
	fiberCC := opt.All()
	r1, err := RunVerified(b, g, Config{Opts: &taskCC})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunVerified(b, g, Config{Opts: &fiberCC})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.AtomicPushes >= r1.Stats.AtomicPushes {
		t.Errorf("fiber CC pushes %d >= task CC pushes %d",
			r2.Stats.AtomicPushes, r1.Stats.AtomicPushes)
	}
}

// TestNPImprovesUtilization reproduces the Table IV effect on a skewed
// graph: nested parallelism raises inner-loop SIMD lane utilization.
func TestNPImprovesUtilization(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	g := graph.RMAT(10, 8, 16, 6) // skewed: bad serial utilization
	serial := opt.Options{IO: true}
	np := opt.Options{IO: true, NP: true, CC: true}
	r1, err := Run(b, g, Config{Opts: &serial})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, g, Config{Opts: &np})
	if err != nil {
		t.Fatal(err)
	}
	u1 := r1.Stats.LaneUtilization(16)
	u2 := r2.Stats.LaneUtilization(16)
	if u2 <= u1 {
		t.Errorf("NP utilization %v <= serial %v", u2, u1)
	}
	if u2 < 0.5 {
		t.Errorf("NP utilization %v, want > 0.5", u2)
	}
}

// TestSIMDBeatsSerial: the plain SIMD build must outperform the serial build
// in modeled time (the Fig. 6 +SIMD effect).
func TestSIMDBeatsSerial(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	g := graph.Random(2048, 16384, 16, 8)
	serial, err := Run(b, g, SerialConfig(machine.Intel8()))
	if err != nil {
		t.Fatal(err)
	}
	o := opt.All()
	simd, err := Run(b, g, Config{Tasks: 1, NoSMT: true, Opts: &o})
	if err != nil {
		t.Fatal(err)
	}
	if simd.TimeMS >= serial.TimeMS {
		t.Errorf("1-task SIMD %v ms not faster than serial %v ms", simd.TimeMS, serial.TimeMS)
	}
}

// TestMTScales: multi-tasking must speed up a sufficiently large run.
func TestMTScales(t *testing.T) {
	b, _ := kernels.ByName("pr")
	g := graph.Random(4096, 32768, 16, 9)
	o := opt.All()
	t1, err := Run(b, g, Config{Tasks: 1, NoSMT: true, Opts: &o})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(b, g, Config{Tasks: 8, NoSMT: true, Opts: &o})
	if err != nil {
		t.Fatal(err)
	}
	if sp := t1.TimeMS / t8.TimeMS; sp < 2 {
		t.Errorf("8-task speedup = %.2fx, want > 2x", sp)
	}
}

// TestDeterministicAcrossRuns: identical configs yield identical results,
// times and statistics.
func TestDeterministicAcrossRuns(t *testing.T) {
	b, _ := kernels.ByName("sssp-nf")
	g := graph.Road(16, 16, 32, 11)
	run := func() (float64, spmd.Stats, []int32) {
		res, err := Run(b, g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		dist := append([]int32(nil), res.Instance.ArrayI("dist")...)
		return res.TimeMS, res.Stats, dist
	}
	tm1, s1, d1 := run()
	tm2, s2, d2 := run()
	if tm1 != tm2 || s1 != s2 {
		t.Error("nondeterministic time/stats")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	bad := *b.Prog
	bad.Kernels = nil
	badBench := &kernels.Benchmark{Name: "broken", Prog: &bad}
	if _, err := Run(badBench, graph.Road(4, 4, 4, 1), Config{}); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestFootprint(t *testing.T) {
	b, _ := kernels.ByName("bfs-wl")
	g := graph.Road(16, 16, 8, 1)
	res, err := Run(b, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance.FootprintBytes() <= g.FootprintBytes() {
		t.Error("footprint must exceed the bare graph")
	}
}
