package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// countingCtx is a fake context whose Err flips to Canceled after n checks —
// a deterministic stand-in for "the client hung up mid-kernel". Counting the
// checks also proves the engine polls the context from inside the run, not
// just at attempt boundaries.
type countingCtx struct {
	context.Context
	n     int64
	calls atomic.Int64
	done  chan struct{}
	once  sync.Once
}

func newCountingCtx(n int64) *countingCtx {
	return &countingCtx{Context: context.Background(), n: n, done: make(chan struct{})}
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.n {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return c.done }

// TestCancelDuringIteration is the satellite regression for mid-kernel
// cancellation: a context that goes done after a fixed number of budget polls
// stops a PageRank run inside its pipe loop — the run had already burned
// modeled cycles — with a typed deadline BudgetError, and the degradation
// chain is abandoned rather than falling back (nobody is left to serve).
func TestCancelDuringIteration(t *testing.T) {
	b, err := kernels.ByName("pr")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(300, 2400, 16, 5)
	g.SortAdjacency()

	// Baseline: how many polls does an undisturbed run make?
	probe := newCountingCtx(1 << 60)
	if _, err := RunResilientCtx(probe, b, g, Config{}); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	polls := probe.calls.Load()
	if polls < 8 {
		t.Fatalf("undisturbed run polled the context only %d times; cannot cancel mid-run", polls)
	}

	// Cancel halfway through the polls the run would make.
	ctx := newCountingCtx(polls / 2)
	res, err := RunResilientCtx(ctx, b, g, Config{})
	if err == nil {
		t.Fatalf("run served (path %s) despite mid-kernel cancellation", res.Path)
	}
	if !errors.Is(err, fault.ErrBudgetExceeded) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation surfaced as %v, want deadline BudgetError wrapping Canceled", err)
	}
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Errorf("error %v lacks the deadline resource", err)
	}
	// Only the interrupted vector attempt may appear; no fallback ran after
	// the caller was gone.
	if len(res.History) != 1 || res.History[0].Path != "vector" {
		t.Fatalf("history after cancellation = %+v, want the one vector attempt", res.History)
	}
	if res.History[0].Cycles <= 0 {
		t.Errorf("interrupted attempt recorded no modeled cycles; cancellation did not land mid-run")
	}
	if res.Output != nil {
		t.Error("cancelled run still produced output")
	}
}

// TestCancelConfigCtxPrecedence pins that an explicit Budget.Ctx in the
// config wins over the call context, so callers can decouple the chain gate
// from the per-run watchdog.
func TestCancelConfigCtxPrecedence(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Road(8, 8, 4, 1)

	inner, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunResilientCtx(context.Background(), b, g, Config{Budget: fault.Budget{Ctx: inner}})
	// The vector attempts die on the cancelled budget ctx, but the chain ctx
	// is live, so the scalar ladder serves.
	if err != nil {
		t.Fatalf("live chain ctx did not rescue a dead budget ctx: %v", err)
	}
	if !res.Degraded() {
		t.Fatalf("vector path served under a cancelled budget ctx (path %s)", res.Path)
	}
	if err := res.Output.Verify(b, g, 0); err != nil {
		t.Errorf("degraded result incorrect: %v", err)
	}
}

// TestConcurrentBudgets is the satellite race test: many engines run in
// parallel, each with its own deadline, iteration cap and stall window. Under
// -race this pins that per-request budgets, injectors and engines share no
// state. Every run must either serve a verified result or fail typed.
func TestConcurrentBudgets(t *testing.T) {
	names := []string{"bfs-wl", "sssp-nf", "pr", "cc"}
	base := graph.Random(200, 1400, 16, 11)
	base.SortAdjacency()

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := kernels.ByName(names[w%len(names)])
			if err != nil {
				errs[w] = err
				return
			}
			g := PrepareGraph(b, base)
			cfg := Config{Src: int32(w % 50)}
			ctx := context.Background()
			switch w % 4 {
			case 0: // tight iteration cap — vector dies typed, fallback serves
				cfg.Budget = fault.Budget{MaxIters: 1 + w%3}
			case 1: // generous budget with stall watchdog
				cfg.Budget = fault.Budget{MaxIters: 1 << 20, StallWindow: 64}
			case 2: // per-request deadline, generous enough to finish
				c, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				ctx = c
			case 3: // transient injection — retry or fallback must absorb it
				cfg.Inject = fault.NewInjector(uint64(w), fault.Config{Transient: 0.005})
			}
			res, err := RunResilientVerifiedCtx(ctx, b, g, cfg)
			if err != nil {
				if !typed(err) {
					errs[w] = err
				}
				return
			}
			if verr := res.Output.Verify(b, g, cfg.Src); verr != nil {
				errs[w] = verr
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}

// TestEngineReuseMatchesFresh is the request-pool regression at the driver
// level: a sequence of different kernels run back-to-back on ONE pooled
// engine (Config.Engine) must produce outputs and modeled times identical to
// fresh-engine runs — a request can never observe a prior tenant.
func TestEngineReuseMatchesFresh(t *testing.T) {
	m := machine.Intel8()
	pooled := spmd.New(m, m.PreferredTarget, m.DefaultTasks)
	base := graph.Random(250, 1800, 16, 3)
	base.SortAdjacency()

	for _, name := range []string{"bfs-wl", "pr", "sssp-nf", "cc", "bfs-wl"} {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := PrepareGraph(b, base)

		fresh, err := RunVerified(b, g, Config{Machine: m})
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		reused, err := RunVerified(b, g, Config{Machine: m, Engine: pooled})
		if err != nil {
			t.Fatalf("%s reused: %v", name, err)
		}
		if reused.Engine != pooled {
			t.Fatalf("%s: config engine was not reused", name)
		}
		if reused.TimeMS != fresh.TimeMS {
			t.Errorf("%s: reused engine modeled %v ms, fresh %v ms", name, reused.TimeMS, fresh.TimeMS)
		}
		if reused.Stats != fresh.Stats {
			t.Errorf("%s: stats diverge on reuse:\nreused %+v\nfresh  %+v", name, reused.Stats, fresh.Stats)
		}
		for _, d := range b.Prog.Arrays {
			fi, ri := fresh.Instance.ArrayI(d.Name), reused.Instance.ArrayI(d.Name)
			for i := range fi {
				if fi[i] != ri[i] {
					t.Fatalf("%s: %s[%d] = %d on reused engine, %d fresh", name, d.Name, i, ri[i], fi[i])
				}
			}
			ff, rf := fresh.Instance.ArrayF(d.Name), reused.Instance.ArrayF(d.Name)
			for i := range ff {
				if ff[i] != rf[i] {
					t.Fatalf("%s: %s[%d] = %v on reused engine, %v fresh", name, d.Name, i, rf[i], ff[i])
				}
			}
		}
	}

	// A machine mismatch must fall back to a fresh engine, not misuse the pool.
	arm := machine.ARM64()
	b, _ := kernels.ByName("bfs-wl")
	res, err := RunVerified(b, base, Config{Machine: arm, Engine: pooled})
	if err != nil {
		t.Fatalf("mismatched-machine run: %v", err)
	}
	if res.Engine == pooled {
		t.Error("engine pooled for another machine model was reused")
	}
}
