package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/vec"
)

func mustParseOpts(t *testing.T, s string) opt.Options {
	t.Helper()
	o, err := opt.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// The ARM NEON target is this reproduction's extension of the paper's stated
// future work ("leave evaluation of ARM NEON to future work"). These tests
// pin its semantics: full correctness, AVX1-like feature set (no gathers,
// scatters or mask registers), and a SIMD win over serial on the ARM machine
// model despite emulated gathers.

func TestNEONAllKernelsCorrect(t *testing.T) {
	raw := graph.RMAT(8, 8, 16, 5)
	for _, b := range kernels.All() {
		g := PrepareGraph(b, raw)
		if _, err := RunVerified(b, g, Config{
			Machine: machine.ARM64(),
			Target:  vec.TargetNEON4,
			Tasks:   4,
		}); err != nil {
			t.Errorf("neon: %v", err)
		}
	}
}

func TestNEONFeatureSet(t *testing.T) {
	for _, tgt := range []vec.Target{vec.TargetNEON4, vec.TargetNEON8} {
		if tgt.HasNativeGather() || tgt.HasNativeScatter() || tgt.HasMaskRegisters() {
			t.Errorf("%v: NEON must not have gathers, scatters or opmasks", tgt)
		}
	}
	if vec.TargetNEON4.NativeWidth() != 4 {
		t.Error("NEON native width must be 4 (128-bit)")
	}
	// Emulated gathers cost per-lane scalar sequences, like AVX1.
	if vec.TargetNEON4.Lower(vec.ClassGather, true) != vec.TargetAVX1x4.Lower(vec.ClassGather, true) {
		t.Error("NEON gather lowering should match the AVX1 emulation")
	}
	for _, name := range []string{"neon", "neon-i32x4", "neon-i32x8"} {
		if _, err := vec.ParseTarget(name); err != nil {
			t.Errorf("ParseTarget(%q): %v", name, err)
		}
	}
	back, err := vec.ParseTarget(vec.TargetNEON8.String())
	if err != nil || back != vec.TargetNEON8 {
		t.Errorf("round trip: %v, %v", back, err)
	}
}

func TestNEONBeatsSerialOnARM(t *testing.T) {
	g := graph.Random(4096, 32768, 16, 9)
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	m := machine.ARM64()
	src := g.MaxDegreeNode()
	serial, err := Run(b, g, func() Config {
		c := SerialConfig(m)
		c.Src = src
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	neon, err := Run(b, g, Config{Machine: m, Tasks: 1, NoSMT: true, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if neon.TimeMS >= serial.TimeMS {
		t.Errorf("1-task NEON %v ms not faster than serial %v ms", neon.TimeMS, serial.TimeMS)
	}
	// But the win is smaller than AVX512's on Intel at the same width
	// budget: emulated gathers eat into it.
	intel := machine.Intel8()
	iSerial, err := Run(b, g, func() Config {
		c := SerialConfig(intel)
		c.Src = src
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	iSIMD, err := Run(b, g, Config{Machine: intel, Tasks: 1, NoSMT: true, Src: src})
	if err != nil {
		t.Fatal(err)
	}
	neonGain := serial.TimeMS / neon.TimeMS
	avxGain := iSerial.TimeMS / iSIMD.TimeMS
	if neonGain >= avxGain {
		t.Errorf("NEON gain %.2fx should trail avx512 gain %.2fx", neonGain, avxGain)
	}
}

func TestARMByName(t *testing.T) {
	m, err := machine.ByName("graviton")
	if err != nil || m.PreferredTarget != vec.TargetNEON4 {
		t.Fatalf("ByName(graviton) = %v, %v", m, err)
	}
}

// TestKCoreExtensionEndToEnd runs the k-core extension through the full
// pipeline on all inputs and optimization extremes.
func TestKCoreExtensionEndToEnd(t *testing.T) {
	b, err := kernels.ByName("kcore")
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range graph.Suite(graph.ScaleTest, 3) {
		g := PrepareGraph(b, raw)
		for _, opts := range []string{"none", "all"} {
			o := mustParseOpts(t, opts)
			if _, err := RunVerified(b, g, Config{Opts: &o, Tasks: 4}); err != nil {
				t.Errorf("%s/%s: %v", raw.Name, opts, err)
			}
		}
	}
}

// TestPRDeltaExtensionEndToEnd verifies residual PageRank across inputs and
// optimization extremes.
func TestPRDeltaExtensionEndToEnd(t *testing.T) {
	b, err := kernels.ByName("pr-delta")
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range graph.Suite(graph.ScaleTest, 5) {
		for _, opts := range []string{"none", "all"} {
			o := mustParseOpts(t, opts)
			if _, err := RunVerified(b, raw, Config{Opts: &o, Tasks: 4}); err != nil {
				t.Errorf("%s/%s: %v", raw.Name, opts, err)
			}
		}
	}
}
