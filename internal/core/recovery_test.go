package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// recoveryGraph is small enough for many repeated runs but iterates enough
// pipe-loop rounds for checkpoints, injected faults and rollbacks to occur.
func recoveryGraph() *graph.CSR {
	return graph.Random(400, 2400, 16, 3)
}

// TestRecoveryBitIdentical is the tentpole differential gate for the recovery
// layer: for every benchmark and both deferred execution modes, a run that is
// hit by injected transient faults, rolls back to checkpoints and re-executes
// must end bit-identical — outputs, modeled cycles, and the full statistics
// counters — to an undisturbed run. Rollback must be invisible in everything
// except the recovery counters, which the test requires to be non-zero
// somewhere in the sweep (so it cannot pass vacuously with injection
// misconfigured).
func TestRecoveryBitIdentical(t *testing.T) {
	g0 := recoveryGraph()
	totalRollbacks := 0
	for _, b := range kernels.All() {
		g := PrepareGraph(b, g0)
		for _, mode := range []HostExec{HostCooperative, HostParallel} {
			clean, err := Run(b, g, Config{Tasks: 4, HostExec: mode})
			if err != nil {
				t.Fatalf("%s mode %d clean: %v", b.Name, mode, err)
			}
			ci, cf := snapshotOutputs(clean)

			rec, err := Run(b, g, Config{
				Tasks:           4,
				HostExec:        mode,
				CheckpointEvery: 1,
				MaxRollbacks:    200,
				Inject:          fault.NewInjector(42, fault.Config{Transient: 0.15}),
			})
			if err != nil {
				t.Fatalf("%s mode %d recovering: %v", b.Name, mode, err)
			}
			totalRollbacks += rec.Recovery.Rollbacks

			if cc, rc := clean.Engine.TimeCycles(), rec.Engine.TimeCycles(); cc != rc {
				t.Errorf("%s mode %d: modeled cycles diverge: clean %v, recovered %v",
					b.Name, mode, cc, rc)
			}
			if !reflect.DeepEqual(clean.Stats, rec.Stats) {
				t.Errorf("%s mode %d: stats diverge:\nclean     %+v\nrecovered %+v",
					b.Name, mode, clean.Stats, rec.Stats)
			}
			ri, rf := snapshotOutputs(rec)
			if !reflect.DeepEqual(ci, ri) || !reflect.DeepEqual(cf, rf) {
				t.Errorf("%s mode %d: outputs diverge between clean and recovered run",
					b.Name, mode)
			}
			if err := Verify(b, g, rec); err != nil {
				t.Errorf("%s mode %d: recovered output rejected: %v", b.Name, mode, err)
			}
		}
	}
	if totalRollbacks == 0 {
		t.Error("no rollbacks occurred anywhere in the sweep; injection is not exercising recovery")
	}
}

// TestRecoveryExhaustionEscalates: a persistent fault (injection probability
// 1 at every window) must exhaust the bounded per-checkpoint retries and
// escape as the typed transient-fault error — recovery degrades, it never
// spins forever.
func TestRecoveryExhaustionEscalates(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := PrepareGraph(b, recoveryGraph())
	res, err := Run(b, g, Config{
		Tasks:           4,
		HostExec:        HostCooperative,
		CheckpointEvery: 1,
		MaxRollbacks:    4,
		Inject:          fault.NewInjector(7, fault.Config{Transient: 1.0}),
	})
	if err == nil {
		t.Fatal("run with certain faults succeeded")
	}
	if !errors.Is(err, fault.ErrTransientFault) {
		t.Errorf("escalated error %v is not the typed transient fault", err)
	}
	if res != nil {
		t.Errorf("failed Run returned non-nil result")
	}
}

// flipConfig builds the silent-corruption run config for one seed. With
// verify the full protection is on (checkpointing + invariant validation);
// without, recovery is disabled entirely — the negative control.
func flipConfig(seed uint64, verify bool) Config {
	cfg := Config{
		Tasks:    4,
		HostExec: HostCooperative,
		Inject:   fault.NewInjector(seed, fault.Config{BitFlip: 0.4}),
	}
	if verify {
		cfg.CheckpointEvery = 1
		cfg.MaxRollbacks = 200
		cfg.VerifyInvariants = true
	}
	return cfg
}

// TestBitFlipDetectedAndRecovered pins the silent-corruption story on the
// kernels the issue names: injected bit flips in live state must be caught by
// the invariant validators at checkpoint time (BadCheckpoints > 0), trigger
// rollback, and still end in a verified output. The negative control runs the
// same seed with recovery disabled: nothing rolls back and the corruption is
// not silently absorbed — the run either fails with a typed fault (e.g. the
// corrupted label drives an out-of-bounds access) or finishes with output
// that fails verification. Either way the protected run's clean result is
// attributable to the validators and rollback, not luck.
//
// Detection is probabilistic per seed (a flip can land where no invariant
// constrains it yet, or in the final window before loop exit), so each kernel
// scans a fixed seed list for one seed where the flip is detected and
// recovered while the unprotected run is visibly damaged. Everything is
// deterministically seeded; the scan makes the test robust to kernel
// evolution, not to chance.
func TestBitFlipDetectedAndRecovered(t *testing.T) {
	g0 := recoveryGraph()
	for _, name := range []string{"bfs-wl", "sssp-nf", "cc", "kcore"} {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := PrepareGraph(b, g0)
		found := false
		for seed := uint64(1); seed <= 60 && !found; seed++ {
			res, err := Run(b, g, flipConfig(seed, true))
			if err != nil || res.Recovery.BadCheckpoints == 0 || res.Recovery.Rollbacks == 0 {
				continue
			}
			if Verify(b, g, res) != nil {
				// A later flip escaped detection (e.g. in the final window
				// before loop exit, past the last checkpoint); keep scanning.
				continue
			}
			// Negative control: same flips, recovery off — the corruption must
			// be visible (typed fault or verification failure), never silent
			// success.
			neg, negErr := Run(b, g, flipConfig(seed, false))
			if negErr == nil {
				if neg.Recovery != (codegen.RecoveryStats{}) {
					t.Fatalf("%s seed %d: recovery activity with checkpointing off: %+v", name, seed, neg.Recovery)
				}
				if Verify(b, g, neg) == nil {
					continue // flip was benign for the output; keep scanning
				}
			}
			found = true
			t.Logf("%s: seed %d: detected %d bad checkpoints, %d rollbacks, %.0f wasted cycles; unprotected run: %v",
				name, seed, res.Recovery.BadCheckpoints, res.Recovery.Rollbacks,
				res.Recovery.WastedCycles, negErr)
		}
		if !found {
			t.Errorf("%s: no seed in [1,60] yields detected+recovered corruption with damaged negative control", name)
		}
	}
}

// TestRecoveryCountersSurfaced: a clean checkpointing run reports its
// checkpoint count and nothing else; the counters live outside spmd.Stats so
// they cannot perturb differential stats comparisons.
func TestRecoveryCountersSurfaced(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := PrepareGraph(b, recoveryGraph())
	res, err := Run(b, g, Config{Tasks: 4, HostExec: HostCooperative, CheckpointEvery: 2, VerifyInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Checkpoints == 0 {
		t.Error("checkpointing run reports zero checkpoints")
	}
	if res.Recovery.Rollbacks != 0 || res.Recovery.BadCheckpoints != 0 || res.Recovery.WastedCycles != 0 {
		t.Errorf("clean run reports recovery activity: %+v", res.Recovery)
	}
	// Checkpointing must not perturb the modeled run.
	clean, err := Run(b, g, Config{Tasks: 4, HostExec: HostCooperative})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Engine.TimeCycles() != res.Engine.TimeCycles() {
		t.Errorf("checkpointing changed modeled cycles: %v vs %v",
			res.Engine.TimeCycles(), clean.Engine.TimeCycles())
	}
	if !reflect.DeepEqual(clean.Stats, res.Stats) {
		t.Error("checkpointing changed engine stats")
	}
}
