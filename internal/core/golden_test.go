package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// TestModelGolden is a cost-model regression tripwire: the flagship
// configuration on a fixed input must stay within a band around the values
// recorded when the model was calibrated (bfs-wl, road 64x64 seed 1, Intel
// defaults). A deliberate model retune should update these bands; an
// accidental one should fail here.
func TestModelGolden(t *testing.T) {
	g := graph.Road(64, 64, 64, 1)
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunVerified(b, g, Config{Src: g.MaxDegreeNode()})
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, center float64) {
		if got < center*0.8 || got > center*1.2 {
			t.Errorf("%s = %.4g drifted beyond ±20%% of calibrated %.4g", name, got, center)
		}
	}
	within("time-ms", res.TimeMS, 0.20)
	within("instructions", float64(res.Stats.Instructions), 34000)
	within("atomics", float64(res.Stats.Atomics), 7600)
	if res.Stats.Launches != 1 {
		t.Errorf("launches = %d, want 1 (iteration outlining)", res.Stats.Launches)
	}
	u := res.Stats.LaneUtilization(16)
	if u < 0.55 || u > 0.95 {
		t.Errorf("lane utilization = %.2f outside calibrated band", u)
	}
}

// TestInstanceRerun: an Instance can be re-run (fresh init) and produces the
// same outputs; engine time accumulates across runs unless reset.
func TestInstanceRerun(t *testing.T) {
	g := graph.Road(16, 16, 8, 2)
	b, _ := kernels.ByName("sssp-nf")
	res, err := Run(b, g, Config{Tasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := append([]int32(nil), res.Instance.ArrayI("dist")...)
	t1 := res.Engine.TimeMS()

	res.Instance.Run() // second run, same instance
	if got := res.Engine.TimeMS(); got <= t1 {
		t.Error("engine time should accumulate across runs")
	}
	for i, d := range res.Instance.ArrayI("dist") {
		if d != first[i] {
			t.Fatalf("re-run changed dist[%d]", i)
		}
	}
	res.Engine.ResetTime()
	if res.Engine.TimeMS() != 0 {
		t.Error("ResetTime failed")
	}
	if err := Verify(b, g, res); err != nil {
		t.Fatal(err)
	}
}
