package core

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// corpusBytes decodes one `go test fuzz v1` seed-corpus file with a single
// []byte argument.
func corpusBytes(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a v1 fuzz corpus file", path)
	}
	lit := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	s, err := strconv.Unquote(lit)
	if err != nil {
		t.Fatalf("%s: bad []byte literal: %v", path, err)
	}
	return []byte(s)
}

// TestFuzzCorpusTriggersInvariant ties the graph-reader fuzz corpus to the
// invariant layer: the chain-invariant-trigger seed parses into a valid graph
// (the reader contract the fuzzer enforces) whose long-diameter BFS gives the
// checkpoint validators many iterations to observe injected bit flips — so
// corrupting a run over it demonstrably trips an invariant violation and
// recovers. This pins the corpus entry as a live fixture for the failure
// model, not just reader coverage.
func TestFuzzCorpusTriggersInvariant(t *testing.T) {
	data := corpusBytes(t, "../graph/testdata/fuzz/FuzzReadEdgeList/chain-invariant-trigger")
	g0, err := graph.ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("corpus seed no longer parses: %v", err)
	}
	if verr := g0.Validate(); verr != nil {
		t.Fatalf("corpus seed violates the reader contract: %v", verr)
	}
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := PrepareGraph(b, g0)
	for seed := uint64(1); seed <= 80; seed++ {
		res, err := Run(b, g, Config{
			Src:              0,
			Tasks:            4,
			HostExec:         HostCooperative,
			CheckpointEvery:  1,
			MaxRollbacks:     200,
			VerifyInvariants: true,
			Inject:           fault.NewInjector(seed, fault.Config{BitFlip: 0.4}),
		})
		if err != nil || res.Recovery.BadCheckpoints == 0 {
			continue
		}
		if Verify(b, g, res) != nil {
			continue
		}
		t.Logf("seed %d: corpus graph corruption detected (%d bad checkpoints, %d rollbacks) and recovered",
			seed, res.Recovery.BadCheckpoints, res.Recovery.Rollbacks)
		return
	}
	t.Error("no seed in [1,80] trips an invariant violation on the corpus graph")
}
