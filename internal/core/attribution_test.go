package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// TestAttributionSumsExactly pins the observatory's core contract: for every
// benchmark, input family, execution mode and kernel backend, the per-class
// per-phase attribution buckets fold back to the engine's modeled clock
// bit-exactly — no epsilon. The buckets are the primary accounting (the clock
// is defined as their canonical fold), so any drift here means a charge
// bypassed the buckets or the fold order diverged.
//
// The same sweep is also a differential gate on the attribution itself:
// within each scheduler family the per-phase per-class breakdown must be
// identical, not just the total. The two deferred modes (cooperative and
// parallel) and both backends form one equivalence class — the repo's
// bitwise guarantee; the legacy live scheduler models contended atomics
// differently, so it forms its own class (both backends must still agree).
// A scheduler or backend leaking into *where* cycles are attributed would
// pass a total-only check and still corrupt every profile built on top.
func TestAttributionSumsExactly(t *testing.T) {
	modes := []struct {
		name string
		exec HostExec
	}{
		{"live", HostLive},
		{"cooperative", HostCooperative},
		{"parallel", HostParallel},
	}
	backends := []struct {
		name string
		be   Backend
	}{
		{"interp", BackendInterp},
		{"compiled", BackendCompiled},
	}
	for _, b := range kernels.All() {
		for _, raw := range testGraphs() {
			g := PrepareGraph(b, raw)
			base := map[bool]obs.Attribution{}
			baseFrom := map[bool]string{}
			for _, be := range backends {
				for _, mode := range modes {
					live := mode.exec == HostLive
					res, err := Run(b, g, Config{Tasks: 4, HostExec: mode.exec, Backend: be.be})
					if err != nil {
						t.Fatalf("%s/%s %s/%s: %v", b.Name, raw.Name, be.name, mode.name, err)
					}
					attr := res.Engine.Attribution()
					cycles := res.Engine.TimeCycles()
					if got := attr.Total(); got != cycles {
						t.Errorf("%s/%s %s/%s: attribution total %v != modeled cycles %v (diff %v)",
							b.Name, raw.Name, be.name, mode.name, got, cycles, got-cycles)
					}
					// The bench serialization path round-trips the non-zero class
					// totals through a map; the canonical class-order re-fold of
					// that map must reproduce the clock exactly too.
					if got := obs.SumClassMap(attr.ClassMap()); got != cycles {
						t.Errorf("%s/%s %s/%s: class-map refold %v != modeled cycles %v",
							b.Name, raw.Name, be.name, mode.name, got, cycles)
					}
					if attr.Wasted != 0 {
						t.Errorf("%s/%s %s/%s: clean run reports %v wasted cycles",
							b.Name, raw.Name, be.name, mode.name, attr.Wasted)
					}
					if _, ok := base[live]; !ok {
						base[live], baseFrom[live] = attr, be.name+"/"+mode.name
					} else if !reflect.DeepEqual(base[live], attr) {
						t.Errorf("%s/%s: attribution diverges between %s and %s/%s",
							b.Name, raw.Name, baseFrom[live], be.name, mode.name)
					}
				}
			}
		}
	}
}

// TestAttributionRollbackInvisible: a run that is hit by injected transient
// faults, rolls back and re-executes must end with the identical attribution
// breakdown to an undisturbed run — rollback rewinds the buckets along with
// the clock, and re-execution re-charges them deterministically. The wasted
// (rolled-back) cycles live outside the folded buckets, in the recovery
// counters. The sweep requires at least one rollback so it cannot pass
// vacuously.
func TestAttributionRollbackInvisible(t *testing.T) {
	g0 := recoveryGraph()
	totalRollbacks := 0
	for _, name := range []string{"bfs-wl", "sssp-nf", "pr-delta"} {
		b, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := PrepareGraph(b, g0)
		for _, mode := range []HostExec{HostCooperative, HostParallel} {
			clean, err := Run(b, g, Config{Tasks: 4, HostExec: mode})
			if err != nil {
				t.Fatalf("%s mode %d clean: %v", name, mode, err)
			}
			rec, err := Run(b, g, Config{
				Tasks:           4,
				HostExec:        mode,
				CheckpointEvery: 1,
				MaxRollbacks:    200,
				Inject:          fault.NewInjector(42, fault.Config{Transient: 0.15}),
			})
			if err != nil {
				t.Fatalf("%s mode %d recovering: %v", name, mode, err)
			}
			totalRollbacks += rec.Recovery.Rollbacks
			ca, ra := clean.Engine.Attribution(), rec.Engine.Attribution()
			if !reflect.DeepEqual(ca, ra) {
				t.Errorf("%s mode %d: attribution diverges between clean and recovered run", name, mode)
			}
			if got := ra.Total(); got != rec.Engine.TimeCycles() {
				t.Errorf("%s mode %d: recovered attribution total %v != cycles %v",
					name, mode, got, rec.Engine.TimeCycles())
			}
		}
	}
	if totalRollbacks == 0 {
		t.Error("no rollbacks occurred anywhere in the sweep; injection is not exercising recovery")
	}
}

// TestAttributionCollapsedProfile sanity-checks the flamegraph rendering: a
// worklist kernel's collapsed-stack profile must mention the pipe-loop phase
// and at least the worklist and gather/scatter cost classes, and every line
// must have the root;phase;class shape.
func TestAttributionCollapsedProfile(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := PrepareGraph(b, recoveryGraph())
	res, err := Run(b, g, Config{Tasks: 4, HostExec: HostCooperative})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	attr := res.Engine.Attribution()
	attr.WriteCollapsed(&sb, "bfs-wl")
	out := sb.String()
	for _, want := range []string{"bfs-wl;", ";worklist ", ";gather_scatter "} {
		if !strings.Contains(out, want) {
			t.Errorf("collapsed profile missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Count(line, ";") != 2 || !strings.Contains(line, " ") {
			t.Errorf("malformed collapsed line %q", line)
		}
	}
}
