package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/baselines"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// typed reports whether err belongs to the fault taxonomy.
func typed(err error) bool {
	for _, s := range []error{
		fault.ErrOutOfBounds, fault.ErrWorklistOverflow, fault.ErrNonConvergence,
		fault.ErrCorruptGraph, fault.ErrBudgetExceeded, fault.ErrKernelPanic,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// The headline acceptance test: with 1% fault injection on gather indices,
// every benchmark either returns a typed error on its vector attempts or
// succeeds, the degradation chain always serves a correct result, no panic
// escapes, and the same seed reproduces the same failure trace.
func TestInjectionCampaignAllBenchmarks(t *testing.T) {
	base := graph.Random(200, 1200, 16, 9)
	base.SortAdjacency()
	for _, b := range kernels.AllWithExtensions() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := PrepareGraph(b, base)
			run := func() (string, *kernels.ResilientResult, error) {
				inj := fault.NewInjector(77, fault.Config{GatherIndex: 0.01})
				res, err := RunResilient(b, g, Config{Inject: inj})
				return inj.TraceString(), res, err
			}
			trace1, r1, err := run()
			if err != nil {
				t.Fatalf("degradation chain exhausted: %v", err)
			}
			for _, aerr := range r1.Attempts {
				if !typed(aerr) {
					t.Errorf("attempt error outside the taxonomy: %v", aerr)
				}
			}
			if err := r1.Output.Verify(b, g, 0); err != nil {
				t.Errorf("served result (path %s) incorrect: %v", r1.Path, err)
			}

			trace2, r2, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if trace1 != trace2 || r1.Path != r2.Path || len(r1.Attempts) != len(r2.Attempts) {
				t.Fatalf("seed 77 not reproducible: path %s/%s, %d/%d attempts",
					r1.Path, r2.Path, len(r1.Attempts), len(r2.Attempts))
			}
			for i := range r1.Attempts {
				if r1.Attempts[i].Error() != r2.Attempts[i].Error() {
					t.Errorf("attempt %d differs across identical seeds:\n%v\nvs\n%v",
						i, r1.Attempts[i], r2.Attempts[i])
				}
			}
		})
	}
}

// With certain injection the vector path must fail with a typed error and
// the fallback must serve output identical to the scalar baseline run
// directly.
func TestFallbackMatchesScalarBaseline(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(150, 900, 8, 4)
	g.SortAdjacency()

	cfg := Config{Inject: fault.NewInjector(3, fault.Config{GatherIndex: 1.0})}
	res, err := RunResilient(b, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() {
		t.Fatalf("vector path served despite certain injection (path %s)", res.Path)
	}
	if len(res.Attempts) < 2 {
		t.Errorf("vector attempt not retried: %d attempts", len(res.Attempts))
	}
	for _, aerr := range res.Attempts[:2] {
		if !errors.Is(aerr, fault.ErrOutOfBounds) {
			t.Errorf("injected gather fault surfaced as %v", aerr)
		}
	}

	var fw *baselines.Framework
	for _, f := range baselines.Frameworks() {
		if f.Supports(b.Name) {
			fw = f
			break
		}
	}
	if fw == nil {
		t.Fatal("no baseline framework supports bfs-wl")
	}
	if res.Path != fw.Name {
		t.Fatalf("served by %s, want first supporting framework %s", res.Path, fw.Name)
	}
	cfgd := cfg.withDefaults()
	direct, err := fw.Run(b.Name, g, cfgd.Machine, cfgd.Tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Output.GetI("lvl"), direct.OutI["lvl"]
	if len(got) != len(want) {
		t.Fatalf("fallback lvl has %d entries, direct run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback lvl[%d] = %d, direct baseline %d", i, got[i], want[i])
		}
	}
}

func TestBudgetThroughConfig(t *testing.T) {
	b, err := kernels.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Road(8, 8, 4, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(b, g, Config{Budget: fault.Budget{Ctx: ctx}}); !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Errorf("cancelled run returned %v", err)
	}

	if _, err := Run(b, g, Config{Budget: fault.Budget{MaxIters: 2}}); !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Errorf("iteration-capped run returned %v", err)
	}

	// A generous budget must not disturb a healthy run.
	res, err := RunVerified(b, g, Config{Budget: fault.Budget{MaxIters: 1 << 20, StallWindow: 64}})
	if err != nil || res == nil {
		t.Errorf("healthy run under generous budget failed: %v", err)
	}
}
