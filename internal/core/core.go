// Package core is the EGACS compiler driver and public entry point: it takes
// a benchmark (an IrGL IR program), applies the selected optimization passes,
// compiles it through the backend, binds it to a machine model and a graph,
// runs it, and reports modeled time plus execution statistics.
//
// Typical use:
//
//	bench, _ := kernels.ByName("bfs-wl")
//	g := graph.Road(320, 320, 64, 1)
//	res, err := core.Run(bench, g, core.Config{})        // all defaults
//	fmt.Println(res.TimeMS, res.Stats.Instructions)
package core

import (
	"errors"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/compiled"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// HostExec selects how the engine executes SPMD tasks on the host machine.
// All choices produce identical modeled times; they differ in wall-clock
// speed and in which diagnostics they support.
type HostExec int

const (
	// HostAuto (the zero value) keeps the engine's default, which honors
	// the EGACS_HOST_EXEC environment variable ("parallel", "cooperative",
	// "live") and is the live scheduler when unset — so library callers
	// and calibrated tests see unchanged modeled numbers unless they opt
	// in.
	HostAuto HostExec = iota
	// HostParallel runs tasks concurrently on real goroutines with
	// deferred effects (spmd.ExecParallel). The cmd binaries default to
	// it via -host-parallel.
	HostParallel
	// HostCooperative runs the deferred-effect cooperative reference
	// scheduler (spmd.ExecDeferred) — serial, bit-identical to
	// HostParallel.
	HostCooperative
	// HostLive runs the legacy live cooperative scheduler
	// (spmd.ExecLive) with immediate effects.
	HostLive
)

// Layout selects the graph layout policy for a run. Independent of layout,
// outputs are bit-identical for every eligible kernel: SELL only permutes the
// order topology-driven sweeps visit vertices, it never renumbers them, and
// order-sensitive benchmarks (float accumulation: pr, pr-delta) are pinned to
// CSR by policy.
type Layout int

const (
	// LayoutDefault (the zero value) is CSR — the calibrated paper setup —
	// so library callers and golden tests see unchanged behavior unless
	// they opt in.
	LayoutDefault Layout = iota
	// LayoutCSR forces the CSR-only build.
	LayoutCSR
	// LayoutSell attaches a SELL-C-σ layout whenever the compiled module
	// has a dense edge-loop path and the benchmark is order-insensitive.
	LayoutSell
	// LayoutAuto is LayoutSell additionally gated on the machine model:
	// the layout is attached only where a unit-stride column load beats a
	// gather (machine.Config.UnitStrideBenefit > 1 at L1).
	LayoutAuto
)

// String returns the CLI spelling of the layout knob.
func (l Layout) String() string {
	switch l {
	case LayoutCSR:
		return "csr"
	case LayoutSell:
		return "sell"
	case LayoutAuto:
		return "auto"
	default:
		return "default"
	}
}

// ParseLayout parses a -layout flag value.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "default":
		return LayoutDefault, nil
	case "csr":
		return LayoutCSR, nil
	case "sell":
		return LayoutSell, nil
	case "auto":
		return LayoutAuto, nil
	}
	return LayoutDefault, fmt.Errorf("core: unknown layout %q (want csr, sell or auto)", s)
}

// Backend selects which kernel execution backend runs the program's tasks.
// Both backends drive the same TaskCtx/worklist primitives in the same order,
// so modeled time, statistics, outputs, traces and fault-injection draws are
// bit-identical; they differ only in host wall-clock speed.
type Backend int

const (
	// BackendAuto (the zero value) uses the generated-Go backend whenever it
	// covers the program (post-optimization fingerprint, every kernel, the
	// target width) and silently falls back to the interpreter otherwise —
	// custom programs, non-generated widths and non-default optimization
	// configurations keep working unchanged.
	BackendAuto Backend = iota
	// BackendInterp pins the closure-tree interpreter (the differential
	// oracle).
	BackendInterp
	// BackendCompiled requests the generated-Go backend; when the program is
	// not covered, core degrades to the interpreter (the typed
	// compiled.ErrBackendUnsupported never escapes Run) and Result.Backend
	// reports "interp".
	BackendCompiled
)

// String returns the CLI spelling of the backend knob.
func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "interp":
		return BackendInterp, nil
	case "compiled":
		return BackendCompiled, nil
	}
	return BackendAuto, fmt.Errorf("core: unknown backend %q (want interp, compiled or auto)", s)
}

// resolveExec maps the config knob to an engine mode. Programs marked
// LiveAtomics need cross-task atomic visibility within a segment and always
// run live; fault injection is downgraded engine-side (see
// spmd.Engine.DeferredExec). envDefault is the engine's EGACS_HOST_EXEC
// resolution, kept when the knob is HostAuto.
func resolveExec(h HostExec, prog *ir.Program, envDefault spmd.Exec) spmd.Exec {
	if prog.LiveAtomics {
		return spmd.ExecLive
	}
	switch h {
	case HostParallel:
		return spmd.ExecParallel
	case HostCooperative:
		return spmd.ExecDeferred
	case HostLive:
		return spmd.ExecLive
	default:
		return envDefault
	}
}

// Config selects machine, target, tasking and optimization settings for one
// run. The zero value gives the paper's default EGACS setup on the Intel
// machine: avx512-i32x16, 16 pinned pthread tasks, all optimizations.
type Config struct {
	// Machine is the hardware model (default Intel8).
	Machine *machine.Config
	// Target is the ISA/width (default the machine's preferred target).
	Target vec.Target
	// Tasks is the launch width (default the machine's default task count).
	Tasks int
	// NoSMT pins at most one task per core.
	NoSMT bool
	// TaskSys selects the tasking runtime (default pinned pthread).
	TaskSys *spmd.TaskSystem
	// Opts selects compiler optimizations (default all: the "EGACS"
	// configuration; use opt.None() for the plain SIMD build).
	Opts *opt.Options
	// Src is the source node for BFS/SSSP (default 0).
	Src int32
	// Params overrides program parameters (e.g. "delta").
	Params map[string]int32
	// Pager, when set, attaches the virtual-memory simulator.
	Pager spmd.Pager
	// ProfileKernels enables per-kernel phase attribution in every
	// execution mode; read the result via Result.Engine.Profile() or
	// WriteProfile.
	ProfileKernels bool
	// Trace attaches a span tracer recording kernel launches, barriers,
	// per-task segments, pipe-loop iterations and worklist swaps on the
	// modeled and host clocks; export with Tracer.Export or WriteFile.
	Trace *obs.Tracer
	// Metrics attaches a per-iteration metrics ring (frontier size, lane
	// utilization, cache hits, ...); export with Metrics.WriteJSONL.
	Metrics *obs.Metrics
	// Budget bounds the run (iteration cap, modeled-cycle cap, stall
	// watchdog, wall-clock deadline). The zero value disables all limits.
	Budget fault.Budget
	// Inject attaches a deterministic fault injector to the run's engine.
	Inject *fault.Injector
	// HostExec selects the execution strategy (parallel host execution by
	// default; see the HostExec constants). Fault injection and
	// LiveAtomics programs fall back to the live cooperative scheduler;
	// profiling, tracing and metrics work in every mode.
	HostExec HostExec
	// CheckpointEvery, when positive, snapshots engine-visible state at
	// top-level pipe-loop heads every that many iterations and rolls back to
	// the last checkpoint on a recoverable typed fault instead of failing the
	// run. Recovery is ignored when a Pager is attached (residency state is
	// not checkpointed). Zero disables checkpointing.
	CheckpointEvery int
	// MaxRollbacks bounds re-executions per checkpoint before the fault
	// escalates (default 3 when zero). Only meaningful with CheckpointEvery.
	MaxRollbacks int
	// VerifyInvariants runs the kernel's invariant validators (see
	// kernels.InvariantFor) against live state before each checkpoint, so
	// silently corrupted state is detected, rejected and rolled back rather
	// than becoming a recovery point. Only meaningful with CheckpointEvery.
	VerifyInvariants bool
	// Backend selects the kernel execution backend (default auto: generated
	// Go where available, interpreter otherwise; see the Backend constants).
	Backend Backend
	// Layout selects the graph layout policy (default CSR; see the Layout
	// constants). SELL-C-σ construction is untimed preparation, like graph
	// loading.
	Layout Layout
	// SellC is the SELL slice height C (default: the target's vector
	// width, the only value the dense path engages for).
	SellC int
	// SellSigma is the SELL sort-window σ (default graph.DefaultSigma;
	// negative sorts the whole graph as one window).
	SellSigma int
	// Sell, when non-nil, is a prebuilt SELL layout of the (prepared)
	// input graph, used instead of building one — the bench harness path,
	// which amortizes construction across repetitions. Only consulted when
	// the layout policy selects SELL; mismatched layouts fail AttachSell.
	Sell *graph.SellCS
	// Engine, when non-nil and built for the same machine model, is fully
	// reset (spmd.Engine.ResetAll) and reused for this run instead of
	// allocating a fresh engine — the request-pool path of the serving
	// layer. A machine mismatch falls back to a fresh engine. Output arrays
	// of earlier runs on the engine remain valid snapshots; the reset
	// guarantees this run can observe nothing of them.
	Engine *spmd.Engine
}

func (c Config) withDefaults() Config {
	if c.Machine == nil {
		c.Machine = machine.Intel8()
	}
	if c.Target == (vec.Target{}) {
		c.Target = c.Machine.PreferredTarget
	}
	if c.Tasks == 0 {
		c.Tasks = c.Machine.DefaultTasks
	}
	if c.TaskSys == nil {
		ts := spmd.Pthread
		c.TaskSys = &ts
	}
	if c.Opts == nil {
		o := opt.All()
		c.Opts = &o
	}
	return c
}

// Result reports one run.
type Result struct {
	// TimeMS is the modeled execution time in milliseconds (algorithm
	// only; graph loading and output writing excluded, as in the paper).
	TimeMS float64
	// Stats are the engine's dynamic counters.
	Stats spmd.Stats
	// Engine and Instance allow output inspection and re-runs.
	Engine   *spmd.Engine
	Instance *codegen.Instance
	// Recovery reports checkpoint/rollback activity when Config.CheckpointEvery
	// was set (zero otherwise). Kept outside Stats so recovered runs stay
	// bit-identical to undisturbed ones.
	Recovery codegen.RecoveryStats
	// Backend is the kernel backend the run actually used: "compiled" only
	// when the generated-Go backend covered the program, "interp" otherwise
	// (including every BackendCompiled request that degraded).
	Backend string
	// Layout is the layout the run actually used: "sell" only when a
	// SELL-C-σ layout was attached (policy enabled, module has a dense
	// path, benchmark order-insensitive), "csr" otherwise.
	Layout string
	// Sell is the attached SELL layout, nil under CSR. Its PaddingRatio
	// and Overhead describe the space cost of vectorizability; the
	// columns the run actually pushed through the dense path are in
	// Stats.SellColumns.
	Sell *graph.SellCS
}

// PrepareGraph returns the input in the form the benchmark requires:
// symmetrized (deduplicated, sorted) for undirected algorithms, the input
// unchanged otherwise. Graph preparation is untimed, like graph loading.
func PrepareGraph(b *kernels.Benchmark, g *graph.CSR) *graph.CSR {
	if b.NeedsSymmetric {
		return g.Symmetrize()
	}
	return g
}

// runParams resolves the effective parameter map: src, then benchmark
// defaults for the input, then explicit overrides.
func runParams(b *kernels.Benchmark, g *graph.CSR, cfg Config) map[string]int32 {
	params := map[string]int32{"src": cfg.Src}
	if b.Params != nil {
		for k, v := range b.Params(g) {
			params[k] = v
		}
	}
	for k, v := range cfg.Params {
		params[k] = v
	}
	return params
}

// SellParams resolves the effective SELL slice height and sort window for a
// defaulted config: C defaults to the target's vector width (the only height
// the dense path engages for), σ to graph.DefaultSigma, and a negative
// SellSigma selects the full-graph window.
func (c Config) SellParams() (sellC, sigma int32) {
	sellC = int32(c.SellC)
	if sellC == 0 {
		sellC = int32(c.Target.Width)
	}
	sigma = int32(c.SellSigma)
	if c.SellSigma == 0 {
		sigma = graph.DefaultSigma
	}
	return sellC, sigma
}

// wantSell decides whether the layout policy attaches a SELL layout to this
// run: the knob must be on, the benchmark order-insensitive (float
// accumulators stay bit-identical to the paper's CSR runs), and the module
// must have compiled a dense path at all. LayoutAuto additionally applies
// the static per-kernel minimum — only DenseSweep kernels, whose edge loops
// run at full occupancy every round, come out ahead under SELL (iterative
// frontier kernels lose more to reordered convergence than the column loads
// recover) — and consults the machine model: SELL pays off only where a
// unit-stride column load is cheaper than a W-lane gather.
func wantSell(b *kernels.Benchmark, mod *codegen.Module, cfg Config) bool {
	if b.OrderSensitive || !mod.HasSellPath() {
		return false
	}
	switch cfg.Layout {
	case LayoutSell:
		return true
	case LayoutAuto:
		return b.DenseSweep && cfg.Machine.UnitStrideBenefit(cfg.Target.Width, machine.L1) > 1
	}
	return false
}

// sellFor returns the SELL layout to attach, building one (untimed, like
// graph loading) unless the config carries a prebuilt layout. The build
// routes rows at or above the neighbor-processing broadcast threshold into
// fallback slices (the row-sweep CSR path already handles hubs at full lane
// occupancy) and cost-balances slices across the launch's task count so the
// degree sort cannot concentrate every hub into the first task's chunk range.
func sellFor(g *graph.CSR, cfg Config) (*graph.SellCS, error) {
	if cfg.Sell != nil {
		return cfg.Sell, nil
	}
	sellC, sigma := cfg.SellParams()
	// Materialize every row whose slice still fits in half a task's fair
	// share of edges (so LPT dealing can balance the slices), but never
	// below the row-sweep broadcast threshold: rows past the cap run the
	// CSR neighbor-processing path at full occupancy anyway.
	heavyCap := int64(g.NumEdges()) / (2 * int64(cfg.Tasks) * int64(sellC))
	if floor := int64(codegen.BigDegreeFactor * cfg.Target.Width); heavyCap < floor {
		heavyCap = floor
	}
	return graph.BuildSellCSDealt(g, sellC, sigma, int32(cfg.Tasks), int32(heavyCap))
}

// Run compiles the benchmark under cfg and executes it on g. The graph must
// already be prepared (see PrepareGraph).
func Run(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*Result, error) {
	res, err := run(b, g, cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// run is Run on an already-defaulted config, returning the partial Result
// alongside the error when the failure happened during execution (so callers
// like RunResilient can account the cost and recovery counters of failed
// attempts). Compile/bind failures return a nil Result.
func run(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*Result, error) {
	prog, err := opt.Apply(b.Prog, *cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name, err)
	}
	mod, err := codegen.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name, err)
	}

	var e *spmd.Engine
	if cfg.Engine != nil && cfg.Engine.Machine == cfg.Machine {
		e = cfg.Engine
		e.ResetAll(cfg.Target, cfg.Tasks)
	} else {
		e = spmd.New(cfg.Machine, cfg.Target, cfg.Tasks)
	}
	e.TaskSys = *cfg.TaskSys
	e.NoSMT = cfg.NoSMT
	e.Pager = cfg.Pager
	e.Budget = cfg.Budget
	e.Inject = cfg.Inject
	e.Exec = resolveExec(cfg.HostExec, prog, e.Exec)
	if cfg.ProfileKernels {
		e.EnableProfiling()
	}
	e.Trace = cfg.Trace
	e.Metrics = cfg.Metrics

	inst, err := mod.Bind(e, g, runParams(b, g, cfg))
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", b.Name, err)
	}
	backend := "interp"
	if cfg.Backend != BackendInterp {
		// Auto and compiled both try the generated backend; an uncovered
		// combination (custom program, non-generated width, non-default opt
		// configuration) degrades to the interpreter rather than failing the
		// run — the two backends are bit-identical, only wall-clock differs.
		switch err := inst.EnableCompiled(); {
		case err == nil:
			backend = "compiled"
		case !errors.Is(err, compiled.ErrBackendUnsupported):
			return nil, fmt.Errorf("core: %s: %w", b.Name, err)
		}
	}
	if wantSell(b, mod, cfg) {
		sell, err := sellFor(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", b.Name, err)
		}
		if err := inst.AttachSell(sell); err != nil {
			return nil, fmt.Errorf("core: %s: %w", b.Name, err)
		}
	}
	if cfg.CheckpointEvery > 0 && cfg.Pager == nil {
		rec := &codegen.Recovery{Every: cfg.CheckpointEvery, MaxRollbacks: cfg.MaxRollbacks}
		if cfg.VerifyInvariants {
			if inv := kernels.InvariantFor(b.Name); inv != nil {
				rec.Verify = func(v *codegen.StateView) error { return inv(v) }
			}
		}
		inst.Recovery = rec
	}
	runErr := inst.Run()
	res := &Result{
		TimeMS:   e.TimeMS(),
		Stats:    e.Stats,
		Engine:   e,
		Instance: inst,
		Backend:  backend,
		Layout:   "csr",
		Sell:     inst.Sell(),
	}
	if res.Sell != nil {
		res.Layout = "sell"
	}
	if inst.Recovery != nil {
		res.Recovery = inst.Recovery.Stats
	}
	if runErr != nil {
		return res, fmt.Errorf("core: %s: %w", b.Name, runErr)
	}
	return res, nil
}

// Verify checks a run's outputs against the benchmark's serial reference.
func Verify(b *kernels.Benchmark, g *graph.CSR, res *Result) error {
	if b.Verify == nil {
		return nil
	}
	src := res.Instance.Params["src"]
	return b.Verify(g, res.Instance.ArrayI, res.Instance.ArrayF, src)
}

// RunVerified is Run followed by Verify.
func RunVerified(b *kernels.Benchmark, g *graph.CSR, cfg Config) (*Result, error) {
	res, err := Run(b, g, cfg)
	if err != nil {
		return nil, err
	}
	if err := Verify(b, g, res); err != nil {
		return nil, fmt.Errorf("core: %s on %s (%v): %w", b.Name, g.Name, cfg.Target, err)
	}
	return res, nil
}

// SerialConfig returns the serial-build configuration the paper derives by
// marking all variables uniform and setting task and program counts to 1 and
// recompiling — the launch-per-iteration pipe structure is retained, only
// parallelism and optimizations are gone.
func SerialConfig(m *machine.Config) Config {
	none := opt.None()
	return Config{
		Machine: m,
		Target:  vec.TargetScalar,
		Tasks:   1,
		NoSMT:   true,
		Opts:    &none,
	}
}
