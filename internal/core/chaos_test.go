package core

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
)

// chaosSeeds returns the injection seeds for the chaos sweep. The default is
// sized for the regular test run; `make chaos` (EGACS_CHAOS=full) runs the
// nightly-sized sweep.
func chaosSeeds() []uint64 {
	if os.Getenv("EGACS_CHAOS") == "full" {
		seeds := make([]uint64, 20)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds
	}
	return []uint64{1, 2}
}

// chaosTyped reports whether every error in the chain down from err is part
// of the typed fault taxonomy (or a verification rejection, which is the
// resilience layer's own typed outcome).
func chaosTyped(err error) bool {
	for _, sentinel := range []error{
		fault.ErrOutOfBounds, fault.ErrWorklistOverflow, fault.ErrNonConvergence,
		fault.ErrCorruptGraph, fault.ErrBudgetExceeded, fault.ErrKernelPanic,
		fault.ErrInvariantViolation, fault.ErrTransientFault,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// TestChaos is the chaos gate of the failure model: every benchmark, under
// every corruption class the injector offers (transient machine-checks,
// silent bit flips, forced worklist overflows, corrupted memory indices) at
// escalating rates, driven through RunResilientVerified with checkpointing
// and invariant verification on, must end in exactly one of two states —
// a verified output, or a typed error after exhausting the ladder. Panics and
// silently corrupt results are the two forbidden outcomes; the test fails on
// either (a panic aborts the run, a bad output fails verification here).
//
// The default sweep is CI-sized; `make chaos` (EGACS_CHAOS=full) widens the
// seed list for the nightly-style job.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not short")
	}
	g0 := recoveryGraph()
	rates := []fault.Config{
		{Transient: 0.3},
		{BitFlip: 0.3},
		{Transient: 0.1, BitFlip: 0.1},
		{Overflow: 0.02, Transient: 0.2},
		{GatherIndex: 0.001, BitFlip: 0.2}, // forces live mode mid-sweep
		{Transient: 0.9, BitFlip: 0.5},     // near-certain degradation
	}
	for _, b := range kernels.All() {
		g := PrepareGraph(b, g0)
		for ri, rate := range rates {
			for _, seed := range chaosSeeds() {
				// The budget is part of the failure model under test: a flip
				// that corrupts loop-control state (e.g. sssp distances) can
				// legitimately drive a pipe loop toward unbounded iteration,
				// and the typed budget/watchdog errors are the designed
				// backstop. Without it a chaos case can spin for minutes.
				cfg := Config{
					Tasks:            4,
					HostExec:         HostParallel,
					CheckpointEvery:  2,
					MaxRollbacks:     5,
					VerifyInvariants: true,
					Budget:           fault.Budget{MaxIters: 5000, StallWindow: 128},
					Inject:           fault.NewInjector(seed, rate),
				}
				res, err := RunResilientVerified(b, g, cfg)
				if err != nil {
					if !chaosTyped(err) {
						t.Errorf("%s rate#%d seed %d: untyped failure: %v", b.Name, ri, seed, err)
					}
					continue
				}
				if res.Output == nil {
					t.Errorf("%s rate#%d seed %d: nil output without error", b.Name, ri, seed)
					continue
				}
				if verr := res.Output.Verify(b, g, cfg.Src); verr != nil {
					t.Errorf("%s rate#%d seed %d: silent corruption served via %q: %v",
						b.Name, ri, seed, res.Path, verr)
				}
				// Every recorded failure along the way must itself be typed:
				// a taxonomy fault or the verified-vector wrapper's output
				// rejection. Anything else is an escape from the failure
				// model.
				for _, a := range res.Attempts {
					if !chaosTyped(a) && !strings.Contains(a.Error(), "output verification") {
						t.Errorf("%s rate#%d seed %d: untyped attempt error: %v", b.Name, ri, seed, a)
					}
				}
			}
		}
	}
}
