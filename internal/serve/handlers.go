package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/fault"
)

// maxBodyBytes bounds the /query request body; graph queries are tiny.
const maxBodyBytes = 1 << 16

// Handler returns the server's HTTP mux:
//
//	POST|GET /query    run a graph query (kind, src, node, k, tenant)
//	POST     /mutate   append one edge-mutation batch (text stream body);
//	                   200 means the batch is WAL-durable and applied
//	GET      /graphz   serving snapshot: epoch, sizes, structural hash,
//	                   mutation-pipeline counters
//	POST     /admin/compact  force fold+gate+swap of the pending delta
//	GET      /healthz  liveness: 200 while the process serves at all
//	GET      /readyz   readiness: 200 after the self-check, 503 once draining
//	GET      /statz    JSON snapshot of the service counters
//	GET      /metrics  Prometheus text exposition: counters, gauges and
//	                   per-tenant/per-kernel latency histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.recoverWrap(s.handleQuery))
	mux.HandleFunc("/mutate", s.recoverWrap(s.handleMutate))
	mux.HandleFunc("/graphz", s.handleGraphz)
	mux.HandleFunc("/admin/compact", s.recoverWrap(s.handleCompact))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.Ready() {
			reason := "self-check pending"
			if s.Draining() {
				reason = "draining"
			}
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// maxRequestIDLen bounds accepted client-supplied X-Request-ID values;
// longer ones are replaced, not truncated, so an ID is never ambiguous.
const maxRequestIDLen = 128

// recoverWrap is the panic-isolation and request-identity middleware. A panic
// anywhere in the request path — including inside a kernel on a path the
// engine's own task recovery does not cover — becomes a typed 500 response,
// never a daemon crash; one request's blowup cannot take down other tenants.
// Every request also gets an X-Request-ID: the client's value is echoed back
// (and carried into the request log and error envelope), or one is generated,
// so a failing request can be correlated across client, log and response.
func (s *Server) recoverWrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > maxRequestIDLen {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(withRequestID(r.Context(), id))
		defer func() {
			if v := recover(); v != nil {
				s.opts.Registry.Add("serve.panics", 1)
				writeError(w, fmt.Errorf("request panicked: %v: %w", v, fault.ErrKernelPanic))
			}
		}()
		h(w, r)
	}
}

// errorBody is the JSON error envelope of every non-200 response.
type errorBody struct {
	Error     string `json:"error"` // stable class, see errClass
	Cause     string `json:"cause"` // human-readable detail
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if retryAfter(status) {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{
		Error:     errClass(err),
		Cause:     err.Error(),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// queryResponse is the JSON shape of a served /query. Kind-specific payload
// fields are pointers so absent ones marshal away.
type queryResponse struct {
	Kind     string  `json:"kind"`
	Src      int32   `json:"src"`
	Path     string  `json:"path"`
	Backend  string  `json:"backend,omitempty"` // kernel backend of the serving attempt
	Level    string  `json:"level"`
	Degraded bool    `json:"degraded"`
	Attempts int     `json:"attempts"`
	TimeMS   float64 `json:"time_ms"`
	WallMS   float64 `json:"wall_ms"`

	Reached    *int32      `json:"reached,omitempty"` // bfs, sssp
	NodeValue  *int32      `json:"value,omitempty"`   // lvl/dist/comp at ?node
	Components *int32      `json:"components,omitempty"`
	TopK       []rankEntry `json:"topk,omitempty"` // pr
}

type rankEntry struct {
	Node int32   `json:"node"`
	Rank float32 `json:"rank"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		writeError(w, ErrNotReady)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
		return
	}
	q, err := ParseQuery(r.URL.RawQuery, body)
	if err != nil {
		s.opts.Registry.Add("serve.rejected_400", 1)
		writeError(w, err)
		return
	}
	res, err := s.Execute(r.Context(), q)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := buildResponse(res)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// buildResponse projects a Result into the wire shape. Whole output arrays
// never leave the server — responses carry aggregates and point lookups, so
// response size is independent of graph size.
func buildResponse(res *Result) *queryResponse {
	q := res.Query
	resp := &queryResponse{
		Kind: q.Kind, Src: q.Src, Path: res.Path, Backend: res.Backend,
		Level:    res.Level.String(),
		Degraded: res.Degraded, Attempts: res.Attempts,
		TimeMS: res.TimeMS, WallMS: res.WallMS,
	}
	switch q.Kind {
	case "bfs", "sssp":
		arr := res.Output.GetI("lvl")
		if q.Kind == "sssp" {
			arr = res.Output.GetI("dist")
		}
		reached := int32(0)
		const inf = int32(1) << 30
		for _, v := range arr {
			if v >= 0 && v < inf {
				reached++
			}
		}
		resp.Reached = &reached
		if q.HasNode && int(q.Node) < len(arr) {
			v := arr[q.Node]
			resp.NodeValue = &v
		}
	case "cc":
		comp := res.Output.GetI("comp")
		seen := make(map[int32]struct{})
		for _, c := range comp {
			seen[c] = struct{}{}
		}
		n := int32(len(seen))
		resp.Components = &n
		if q.HasNode && int(q.Node) < len(comp) {
			v := comp[q.Node]
			resp.NodeValue = &v
		}
	case "pr":
		rank := res.Output.GetF("rank")
		k := q.TopK
		if k > len(rank) {
			k = len(rank)
		}
		idx := make([]int32, len(rank))
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(a, b int) bool {
			if rank[idx[a]] != rank[idx[b]] {
				return rank[idx[a]] > rank[idx[b]]
			}
			return idx[a] < idx[b]
		})
		resp.TopK = make([]rankEntry, k)
		for i := 0; i < k; i++ {
			resp.TopK[i] = rankEntry{Node: idx[i], Rank: rank[idx[i]]}
		}
	}
	return resp
}

// handleStatz dumps the counter registry plus live queue depth and the
// trace-ring drop count (observability about the observability: a truncated
// trace must be visible, not silent).
func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	inflight, queued := s.adm.depth()
	snap := s.opts.Registry.Snapshot()
	snap["serve.inflight"] = float64(inflight)
	snap["serve.queued"] = float64(queued)
	snap["serve.load"] = s.adm.load()
	snap["trace_dropped"] = float64(s.traceDropped())
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
