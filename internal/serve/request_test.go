package serve

import (
	"errors"
	"strings"
	"testing"
)

func TestParseQueryForms(t *testing.T) {
	cases := []struct {
		name     string
		rawQuery string
		body     string
		want     Query
		wantErr  bool
	}{
		{"get-bfs", "kind=bfs&src=3", "", Query{Kind: "bfs", Src: 3, Node: -1, TopK: 10, Tenant: "default"}, false},
		{"get-pr-topk", "kind=pr&k=5&tenant=alice", "", Query{Kind: "pr", Node: -1, TopK: 5, Tenant: "alice"}, false},
		{"get-cc-node", "kind=cc&node=0", "", Query{Kind: "cc", Node: 0, HasNode: true, TopK: 10, Tenant: "default"}, false},
		{"body-sssp", "", `{"kind":"sssp","src":7,"node":2,"tenant":"bob"}`,
			Query{Kind: "sssp", Src: 7, Node: 2, HasNode: true, TopK: 10, Tenant: "bob"}, false},
		{"body-overrides-query", "kind=bfs&src=1", `{"kind":"pr","k":3}`,
			Query{Kind: "pr", Src: 1, Node: -1, TopK: 3, Tenant: "default"}, false},
		{"unknown-kind", "kind=mincut", "", Query{}, true},
		{"missing-kind", "src=4", "", Query{}, true},
		{"bad-src", "kind=bfs&src=banana", "", Query{}, true},
		{"negative-src", "kind=bfs&src=-1", "", Query{}, true},
		{"src-overflow", "kind=bfs&src=99999999999999", "", Query{}, true},
		{"k-zero", "kind=pr&k=0", "", Query{}, true},
		{"k-huge", "kind=pr&k=100000", "", Query{}, true},
		{"bad-json", "kind=bfs", `{"kind":`, Query{}, true},
		{"json-unknown-field", "", `{"kind":"bfs","frobnicate":1}`, Query{}, true},
		{"json-not-object", "", `[1,2,3]`, Query{}, true},
		{"tenant-too-long", "kind=bfs&tenant=" + strings.Repeat("x", 65), "", Query{}, true},
		{"bad-query-escape", "kind=%zz", "", Query{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := ParseQuery(tc.rawQuery, []byte(tc.body))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parsed %+v, want error", q)
				}
				if !errors.Is(err, ErrBadRequest) {
					t.Fatalf("error %v does not wrap ErrBadRequest", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *q != tc.want {
				t.Fatalf("parsed %+v, want %+v", *q, tc.want)
			}
		})
	}
}

func TestQueryValidate(t *testing.T) {
	q := &Query{Kind: "bfs", Src: 9}
	if err := q.Validate(10); err != nil {
		t.Fatalf("src 9 of 10 rejected: %v", err)
	}
	if err := q.Validate(9); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("src 9 of 9 accepted: %v", err)
	}
	q = &Query{Kind: "cc", Node: 5, HasNode: true}
	if err := q.Validate(5); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("node 5 of 5 accepted: %v", err)
	}
}

// FuzzParseQuery is the satellite fuzz target: malformed input — any
// combination of query string and body bytes — must produce either a parsed
// query or an ErrBadRequest, never a panic and never an unvalidated kind. The
// daemon's request decoder is the only parser exposed to untrusted bytes.
func FuzzParseQuery(f *testing.F) {
	seeds := []struct{ raw, body string }{
		{"kind=bfs&src=3", ""},
		{"kind=pr&k=5&tenant=alice", ""},
		{"kind=cc&node=0", ""},
		{"kind=sssp&src=2147483646", ""},
		{"", `{"kind":"sssp","src":7,"node":2,"tenant":"bob"}`},
		{"kind=bfs", `{"kind":`},
		{"kind=%zz&src=1", ""},
		{"kind=bfs&src=-9223372036854775808", ""},
		{"", `{"kind":"pr","k":-1}`},
		{"", `[null]`},
		{"kind=bfs&kind=pr", ""},
		{"a=b&&&=&kind=bfs", ""},
		{"", `{"kind":"bfs","src":1e300}`},
	}
	for _, s := range seeds {
		f.Add(s.raw, []byte(s.body))
	}
	f.Fuzz(func(t *testing.T, raw string, body []byte) {
		q, err := ParseQuery(raw, body)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("non-client error from parser: %v", err)
			}
			return
		}
		if _, ok := kindKernel[q.Kind]; !ok {
			t.Fatalf("parser accepted unknown kind %q", q.Kind)
		}
		if q.Src < 0 || q.TopK < 1 || q.TopK > maxTopK || len(q.Tenant) == 0 || len(q.Tenant) > maxTenant {
			t.Fatalf("parser accepted out-of-contract query %+v", q)
		}
		if q.HasNode && q.Node < 0 {
			t.Fatalf("parser accepted negative node lookup %+v", q)
		}
	})
}
