package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// newMutTestServer builds a ready Server over a fresh mutation store.
func newMutTestServer(t *testing.T, opts Options) (*Server, *graph.MutStore, *httptest.Server) {
	t.Helper()
	g := graph.Random(200, 1200, 16, 21)
	g.SortAdjacency()
	store, err := graph.CreateMutStore(filepath.Join(t.TempDir(), "store"), g, graph.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	opts.Store = store
	s, err := New(store.Delta().Base(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, store, ts
}

func TestMutateAppliesAndCompacts(t *testing.T) {
	s, store, _ := newMutTestServer(t, Options{CompactEvery: -1})
	ctx := context.Background()
	if s.Epoch() != 1 {
		t.Fatalf("boot epoch %d", s.Epoch())
	}
	res, err := s.Mutate(ctx, []graph.MutOp{
		{Op: graph.OpInsert, Src: 0, Dst: 5, W: 2},
		{Op: graph.OpDelete, Src: 1, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || res.Ops != 2 || res.Epoch != 1 || res.Pending != 1 {
		t.Fatalf("mutate result %+v", res)
	}
	// The served graph is still the old snapshot until compaction.
	before := graph.Hash(s.Graph())
	epoch, err := s.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || s.Epoch() != 2 {
		t.Fatalf("epoch after compaction: %d / %d", epoch, s.Epoch())
	}
	if graph.Hash(s.Graph()) == before {
		t.Fatal("compaction did not swap the snapshot")
	}
	// The swapped graph equals the delta fold of the acked ops.
	want, err := store.Delta().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if graph.Hash(s.Graph()) != graph.Hash(want) {
		t.Fatal("served snapshot diverges from the folded delta")
	}
	// Compacting with nothing pending is a no-op at the same epoch.
	if epoch, err := s.Compact(ctx); err != nil || epoch != 2 {
		t.Fatalf("idle compaction: epoch=%d err=%v", epoch, err)
	}
}

func TestMutateAutoCompaction(t *testing.T) {
	s, _, _ := newMutTestServer(t, Options{CompactEvery: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: int32(i), Dst: int32(i + 1), W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && res.Compacted {
			t.Fatalf("batch %d compacted early", i)
		}
		if i == 2 && (!res.Compacted || res.Epoch != 2 || res.Pending != 0) {
			t.Fatalf("third batch should auto-compact: %+v", res)
		}
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after auto-compaction", s.Epoch())
	}
}

func TestMutateDisabledAndInvalid(t *testing.T) {
	s, _ := newTestServer(t, Options{}) // no store
	ctx := context.Background()
	if _, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: 0, Dst: 1, W: 1}}); !errors.Is(err, ErrMutationsDisabled) {
		t.Fatalf("disabled: err = %v", err)
	}
	if _, err := s.Compact(ctx); !errors.Is(err, ErrMutationsDisabled) {
		t.Fatalf("disabled compact: err = %v", err)
	}

	ms, _, _ := newMutTestServer(t, Options{})
	if _, err := ms.Mutate(ctx, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: err = %v", err)
	}
	if _, err := ms.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: 0, Dst: 99999, W: 1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range op: err = %v", err)
	}
	if got := ms.MutStats(); got.Appends != 0 {
		t.Fatalf("rejected mutations reached the WAL: %+v", got)
	}
}

// TestMutateOversizedBatchRejected pins the durability/replay agreement at
// the serving layer: a batch above the WAL record limit is a 400-class
// rejection BEFORE anything is logged — acking it would write a record that
// replay refuses, bricking every later boot.
func TestMutateOversizedBatchRejected(t *testing.T) {
	s, store, _ := newMutTestServer(t, Options{CompactEvery: -1})
	n := s.Graph().NumNodes()
	ops := make([]graph.MutOp, graph.MaxWALBatchOps+1)
	for i := range ops {
		ops[i] = graph.MutOp{Op: graph.OpInsert, Src: int32(i) % n, Dst: int32(i/int(n)) % n, W: 1}
	}
	_, err := s.Mutate(context.Background(), ops)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized batch: err = %v, want ErrBadRequest", err)
	}
	if st := store.Stats(); st.Appends != 0 || st.WALBytes != 0 {
		t.Fatalf("oversized batch reached the WAL: %+v", st)
	}
	// The store still takes normal batches afterwards.
	if res, err := s.Mutate(context.Background(), ops[:4]); err != nil || res.Seq != 1 {
		t.Fatalf("append after oversized rejection: res=%+v err=%v", res, err)
	}
}

// TestMutateDurableIndicator checks the group-commit ack contract surfaced
// to clients: under FsyncEvery=N only every Nth batch is acked synced, and
// the MutateResult reports which side of the fsync the ack landed on.
func TestMutateDurableIndicator(t *testing.T) {
	g := graph.Random(64, 256, 8, 11)
	g.SortAdjacency()
	store, err := graph.CreateMutStore(filepath.Join(t.TempDir(), "store"), g, graph.StoreOptions{FsyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, err := New(store.Delta().Base(), Options{Store: store, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, wantDurable := range []bool{false, true, false, true} {
		res, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: int32(i), Dst: int32(i + 1), W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Durable != wantDurable {
			t.Fatalf("batch %d: Durable = %v, want %v", res.Seq, res.Durable, wantDurable)
		}
	}
}

func TestCompactGateFailureRollsBack(t *testing.T) {
	s, store, _ := newMutTestServer(t, Options{CompactEvery: -1})
	ctx := context.Background()
	if _, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: 2, Dst: 3, W: 1}}); err != nil {
		t.Fatal(err)
	}
	oldG := s.Graph()
	gateErr := errors.New("sentinel divergence")
	s.gateHook = func(*graph.CSR) error { return gateErr }
	_, err := s.Compact(ctx)
	if !errors.Is(err, ErrGateFailed) {
		t.Fatalf("gate failure: err = %v, want ErrGateFailed", err)
	}
	if s.Graph() != oldG || s.Epoch() != 1 {
		t.Fatal("failed gate swapped the snapshot anyway")
	}
	if st := store.Stats(); st.Pending != 1 || st.Epoch != 1 {
		t.Fatalf("failed gate mutated the store: %+v", st)
	}
	// Clearing the hook lets the same pending delta compact cleanly — the
	// WAL kept everything.
	s.gateHook = nil
	if epoch, err := s.Compact(ctx); err != nil || epoch != 2 {
		t.Fatalf("retry after gate failure: epoch=%d err=%v", epoch, err)
	}
	// Queries on the new epoch still pass through the normal path.
	if _, err := s.Execute(ctx, &Query{Kind: "bfs", Src: 0, Node: -1, TopK: 3, Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactErrorClassification splits the two compaction failure channels:
// a gate rejection is ErrGateFailed and counts as a gate failure, while a
// non-validation abort (here: the request's context already cancelled) must
// be neither — the gate-failure signal stays clean for chaos monitors.
func TestCompactErrorClassification(t *testing.T) {
	s, _, _ := newMutTestServer(t, Options{CompactEvery: -1})
	ctx := context.Background()
	if _, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: 2, Dst: 3, W: 1}}); err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err := s.Compact(cancelled)
	if err == nil || errors.Is(err, ErrGateFailed) {
		t.Fatalf("cancelled compaction: err = %v, want a non-gate error", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compaction: err = %v, want context.Canceled", err)
	}
	if gf, _ := s.Registry().Get("serve.mut.gate_failures"); gf != 0 {
		t.Fatalf("cancellation counted as a gate failure (%v)", gf)
	}
	if io, _ := s.Registry().Get("serve.mut.compact_io_errors"); io != 1 {
		t.Fatalf("serve.mut.compact_io_errors = %v, want 1", io)
	}

	s.gateHook = func(*graph.CSR) error { return errors.New("sentinel divergence") }
	if _, err := s.Compact(ctx); !errors.Is(err, ErrGateFailed) {
		t.Fatalf("gate rejection: err = %v, want ErrGateFailed", err)
	}
	if gf, _ := s.Registry().Get("serve.mut.gate_failures"); gf != 1 {
		t.Fatalf("serve.mut.gate_failures = %v, want 1", gf)
	}
	if io, _ := s.Registry().Get("serve.mut.compact_io_errors"); io != 1 {
		t.Fatalf("gate rejection leaked into compact_io_errors (%v)", io)
	}
}

// TestSnapshotIsolationDifferential is the -race isolation proof: concurrent
// queries during sustained mutation and compaction must each return output
// valid for SOME pinned epoch — checked differentially against a frozen copy
// of that epoch's graph captured at swap time.
func TestSnapshotIsolationDifferential(t *testing.T) {
	s, _, _ := newMutTestServer(t, Options{CompactEvery: -1, MaxInflight: 8, MaxQueue: 64})
	ctx := context.Background()

	// Frozen per-epoch graph copies (epoch 1 = boot graph). The map is only
	// written by the mutator goroutine, under mu.
	var mu sync.Mutex
	frozen := map[uint64]*graph.CSR{1: s.Graph()}

	ops, err := graph.GenMutations(s.Graph(), 99, graph.MutGenOptions{Count: 240, DeleteFrac: 0.3, MaxWeight: 16})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator: append batches, compact every few, freeze each epoch
		defer wg.Done()
		defer close(done)
		for i := 0; i < len(ops); i += 8 {
			if _, err := s.Mutate(ctx, ops[i:i+8]); err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
			if (i/8)%3 == 2 {
				if _, err := s.Compact(ctx); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
				mu.Lock()
				frozen[s.Epoch()] = s.Graph()
				mu.Unlock()
			}
		}
	}()

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := int32(r * 7)
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := s.Execute(ctx, &Query{Kind: "bfs", Src: src, Node: -1, TopK: 3, Tenant: fmt.Sprintf("r%d", r)})
				if err != nil {
					// Admission rejections under load are fine; isolation
					// violations are not.
					continue
				}
				mu.Lock()
				eg := frozen[res.Epoch]
				mu.Unlock()
				if eg == nil {
					t.Errorf("query served epoch %d with no frozen copy", res.Epoch)
					return
				}
				want := kernels.RefBFS(eg, src)
				got := res.Output.GetI("lvl")
				if len(got) != len(want) {
					t.Errorf("epoch %d: lvl length %d vs %d", res.Epoch, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("epoch %d: lvl[%d] = %d, frozen-copy reference %d — query saw a torn snapshot",
							res.Epoch, i, got[i], want[i])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if s.Epoch() < 2 {
		t.Fatal("test never advanced an epoch; isolation was not exercised")
	}
}

func TestMutateHTTP(t *testing.T) {
	s, _, ts := newMutTestServer(t, Options{CompactEvery: -1})

	// Accept a batch in the shared text format.
	resp, err := http.Post(ts.URL+"/mutate", "text/plain", strings.NewReader("+ 0 5 2\n- 1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	var mr mutateResponse
	json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Seq != 1 || mr.Ops != 2 || !mr.Durable {
		t.Fatalf("mutate: status=%d body=%+v", resp.StatusCode, mr)
	}

	// Malformed op → 400 with the standard envelope.
	resp, err = http.Post(ts.URL+"/mutate", "text/plain", strings.NewReader("* nope\n"))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error != "bad-request" {
		t.Fatalf("bad mutate: status=%d body=%+v", resp.StatusCode, eb)
	}

	// GET is not allowed.
	resp, _ = http.Get(ts.URL + "/mutate")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mutate: %d", resp.StatusCode)
	}

	// /graphz before compaction: epoch 1, one pending batch.
	var gz graphzResponse
	if code := getJSON(t, ts.URL+"/graphz", &gz); code != http.StatusOK {
		t.Fatalf("/graphz: %d", code)
	}
	if gz.Epoch != 1 || gz.Pending != 1 || !gz.Mutations || gz.LastSeq != 1 {
		t.Fatalf("/graphz: %+v", gz)
	}
	wantHash := fmt.Sprintf("%016x", graph.Hash(s.Graph()))
	if gz.Hash != wantHash {
		t.Fatalf("/graphz hash %s, want %s", gz.Hash, wantHash)
	}

	// Force compaction over HTTP; epoch advances and /graphz agrees.
	resp, err = http.Post(ts.URL+"/admin/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Epoch uint64 `json:"epoch"`
	}
	json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.Epoch != 2 {
		t.Fatalf("/admin/compact: status=%d epoch=%d", resp.StatusCode, cr.Epoch)
	}
	var gz2 graphzResponse // fresh: omitempty fields would survive a reused decode
	if code := getJSON(t, ts.URL+"/graphz", &gz2); code != http.StatusOK || gz2.Epoch != 2 || gz2.Pending != 0 {
		t.Fatalf("/graphz after compact: code=%d %+v", code, gz2)
	}
}

func TestMutateHTTPDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/mutate", "text/plain", strings.NewReader("+ 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/mutate without store: %d", resp.StatusCode)
	}
	if !strings.Contains(eb.Cause, "mutations disabled") {
		t.Fatalf("cause %q", eb.Cause)
	}
	// /graphz still works on a static server.
	var gz graphzResponse
	if code := getJSON(t, ts.URL+"/graphz", &gz); code != http.StatusOK || gz.Mutations {
		t.Fatalf("/graphz static: code=%d %+v", code, gz)
	}
}

func TestMutationMetricsAndRequestLog(t *testing.T) {
	var logBuf bytes.Buffer
	s, _, ts := newMutTestServer(t, Options{CompactEvery: -1, RequestLog: &logBuf})
	ctx := context.Background()
	if _, err := s.Mutate(ctx, []graph.MutOp{{Op: graph.OpInsert, Src: 0, Dst: 9, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(ctx, &Query{Kind: "bfs", Src: 0, Node: -1, TopK: 3, Tenant: "t"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(raw)
	for _, want := range []string{
		"egacs_mut_epoch 2",
		"egacs_mut_pinned_snapshots 0",
		"egacs_mut_wal_bytes",
		"egacs_mut_pending_batches 0",
		"egacs_mut_last_seq 1",
		"egacs_mut_replayed_batches_total 0",
		"egacs_mut_torn_tails_repaired_total 0",
		"egacs_serve_mut_applied_total 1",
		"egacs_serve_mut_ops_total 1",
		"egacs_serve_mut_compactions_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The request log line for the query carries the epoch it ran against.
	line := logBuf.String()
	if !strings.Contains(line, `"epoch":2`) {
		t.Fatalf("request log missing epoch: %s", line)
	}
}
