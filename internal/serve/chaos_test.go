package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// chaosClients returns the concurrency of the chaos-load run: the CI-sized
// default meets the acceptance floor (8); EGACS_CHAOS=full widens it for the
// nightly job.
func chaosClients() int {
	if os.Getenv("EGACS_CHAOS") == "full" {
		return 16
	}
	return 8
}

// loadStats aggregates one chaos-load phase.
type loadStats struct {
	mu       sync.Mutex
	statuses map[int]int
	classes  map[string]int
	lat      []float64 // ms, successful requests
}

func newLoadStats() *loadStats {
	return &loadStats{statuses: map[int]int{}, classes: map[string]int{}}
}

func (l *loadStats) record(status int, class string, ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.statuses[status]++
	if class != "" {
		l.classes[class]++
	}
	if status == http.StatusOK {
		l.lat = append(l.lat, ms)
	}
}

func (l *loadStats) percentile(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.lat) == 0 {
		return 0
	}
	s := append([]float64(nil), l.lat...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// TestChaosLoad is the tentpole acceptance harness: N concurrent clients
// fire mixed queries at a fault-injected server through real HTTP, including
// a deliberate overload phase against a tiny admission window. The invariants
// checked are the service contract:
//
//   - zero daemon panics (the registry's panic counter stays 0; a process
//     panic would fail the test run outright),
//   - zero silent corruption — every 200 is re-verified against the serial
//     reference here, on top of the server's own verification,
//   - overload surfaces as 429/503 backpressure, not hangs or 500s,
//   - after the storm the server drains gracefully.
//
// With BENCH_SERVE_OUT set, QPS and latency percentiles are written as JSON.
func TestChaosLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load is not short")
	}
	g := graph.Random(300, 2400, 16, 13)
	g.SortAdjacency()
	sym := g.Symmetrize()
	refLvl := map[int32][]int32{}
	refComp := kernels.RefCC(sym)

	s, err := New(g, Options{
		MaxInflight:    4,
		MaxQueue:       4,
		TenantCap:      3,
		RequestTimeout: 30 * time.Second,
		Inject:         &fault.InjectorConfig{BitFlip: 0.002, Transient: 0.002},
		InjectSeed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	mux := s.Handler()
	srv := newLocalHTTP(t, mux)

	clients := chaosClients()
	perClient := 12
	if os.Getenv("EGACS_CHAOS") == "full" {
		perClient = 25
	}
	stats := newLoadStats()
	var served atomic.Int64

	verify := func(t *testing.T, kind string, src int32, body []byte) error {
		var resp queryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return fmt.Errorf("200 body not JSON: %v", err)
		}
		switch kind {
		case "bfs":
			want, ok := refLvl[src]
			if !ok {
				return nil // populated below only for the sources we precompute
			}
			reached := int32(0)
			for _, v := range want {
				if v >= 0 && v < 1<<30 {
					reached++
				}
			}
			if resp.Reached == nil || *resp.Reached != reached {
				return fmt.Errorf("bfs src %d: reached %v, reference %d (path %s)", src, resp.Reached, reached, resp.Path)
			}
		case "cc":
			seen := map[int32]struct{}{}
			for _, c := range refComp {
				seen[c] = struct{}{}
			}
			if resp.Components == nil || *resp.Components != int32(len(seen)) {
				return fmt.Errorf("cc: components %v, reference %d (path %s)", resp.Components, len(seen), resp.Path)
			}
		}
		return nil
	}
	// Precompute BFS references for the sources the storm will use.
	for srcI := 0; srcI < clients; srcI++ {
		src := int32(srcI * 7 % int(g.NumNodes()))
		refLvl[src] = kernels.RefBFS(g, src)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			kinds := []string{"bfs", "sssp", "pr", "cc"}
			for i := 0; i < perClient; i++ {
				kind := kinds[(c+i)%len(kinds)]
				src := int32(c * 7 % int(g.NumNodes()))
				url := fmt.Sprintf("%s/query?kind=%s&src=%d&tenant=client%d", srv.base, kind, src, c%5)
				t0 := time.Now()
				resp, err := srv.client.Get(url)
				if err != nil {
					t.Errorf("client %d: transport error: %v", c, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0).Microseconds()) / 1e3

				class := ""
				if resp.StatusCode != http.StatusOK {
					var eb errorBody
					if json.Unmarshal(body, &eb) == nil {
						class = eb.Error
					}
				}
				stats.record(resp.StatusCode, class, ms)
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					if kind == "bfs" || kind == "cc" {
						if verr := verify(t, kind, src, body); verr != nil {
							t.Errorf("SILENT CORRUPTION served: %v", verr)
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("backpressure status %d without Retry-After", resp.StatusCode)
					}
				case http.StatusUnprocessableEntity, http.StatusGatewayTimeout:
					// Budget exhaustion under injected faults is a legal,
					// typed outcome — not a silent one.
				default:
					t.Errorf("client %d %s: unexpected status %d: %s", c, kind, resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if served.Load() == 0 {
		t.Fatal("storm served nothing")
	}

	// Overload phase: every client fires a synchronized burst of the
	// heaviest kernel — far more simultaneous arrivals than slots + queue —
	// so admission control MUST reject some with 429 (burst tenants exceed
	// their cap) or 503 (queue full), and must do so instantly, not by
	// hanging.
	const burstPerClient = 3
	ready := make(chan struct{})
	var burstWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		for b := 0; b < burstPerClient; b++ {
			burstWG.Add(1)
			go func() {
				defer burstWG.Done()
				<-ready
				url := fmt.Sprintf("%s/query?kind=pr&tenant=burst%d", srv.base, c%3)
				t0 := time.Now()
				resp, err := srv.client.Get(url)
				if err != nil {
					t.Errorf("burst transport error: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				class := ""
				var eb errorBody
				if resp.StatusCode != http.StatusOK && json.Unmarshal(body, &eb) == nil {
					class = eb.Error
				}
				stats.record(resp.StatusCode, class, float64(time.Since(t0).Microseconds())/1e3)
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
				}
			}()
		}
	}
	close(ready)
	burstWG.Wait()

	stats.mu.Lock()
	rejected := stats.statuses[http.StatusTooManyRequests] + stats.statuses[http.StatusServiceUnavailable]
	stats.mu.Unlock()
	if rejected == 0 {
		t.Errorf("overload burst (%d simultaneous vs %d slots) produced no 429/503 backpressure",
			clients*burstPerClient, 4)
	}
	if v, _ := s.Registry().Get("serve.panics"); v != 0 {
		t.Fatalf("daemon recorded %v panics", v)
	}

	// Telemetry consistency after the storm: the live /metrics page must
	// parse under the independent exposition validator (the nightly chaos job
	// fails on any format regression), and the latency histogram must have
	// recorded exactly one observation per request — the Execute invariant —
	// so histogram counts and the counter registry agree.
	mresp, err := srv.client.Get(srv.base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics scrape: %v", err)
	}
	page, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := obs.ValidatePrometheus(page); err != nil {
		t.Errorf("/metrics fails exposition validation under chaos: %v", err)
	}
	if reqs, _ := s.Registry().Get("serve.requests"); sumLatencyCount(t, string(page)) != reqs {
		t.Errorf("latency histogram count %v != serve.requests %v", sumLatencyCount(t, string(page)), reqs)
	}
	var statz map[string]float64
	if code := getJSON(t, srv.base+"/statz", &statz); code != 200 {
		t.Fatalf("statz after storm: %d", code)
	}
	if statz["serve.requests"] == 0 || statz["serve.ok"] == 0 {
		t.Errorf("statz counters flat after storm: %v", statz)
	}

	// Graceful drain after the storm.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
	if code := func() int {
		resp, err := srv.client.Get(srv.base + "/query?kind=bfs")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}(); code != http.StatusServiceUnavailable {
		t.Fatalf("query after drain: %d, want 503", code)
	}

	total := clients*perClient + clients*burstPerClient
	qps := float64(served.Load()) / elapsed.Seconds()
	p50, p99 := stats.percentile(0.50), stats.percentile(0.99)
	t.Logf("chaos load: %d requests, %d served, %.1f QPS, p50 %.1fms p99 %.1fms, statuses %v, classes %v",
		total, served.Load(), qps, p50, p99, stats.statuses, stats.classes)
	if math.IsNaN(qps) || p99 < p50 {
		t.Fatalf("nonsense latency aggregates: qps=%v p50=%v p99=%v", qps, p50, p99)
	}

	if out := os.Getenv("BENCH_SERVE_OUT"); out != "" {
		rep := map[string]any{
			"clients":    clients,
			"requests":   total,
			"served":     served.Load(),
			"qps":        qps,
			"p50_ms":     p50,
			"p99_ms":     p99,
			"statuses":   stats.statuses,
			"classes":    stats.classes,
			"elapsed_ms": float64(elapsed.Microseconds()) / 1e3,
			"inject":     "bitflip=0.002 transient=0.002",
		}
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
	}
}

// TestChaosOverloadDegrades drives a 1-slot server hard enough that the
// degradation ladder must engage: with every slot busy, later admissions see
// load >= 1 and serve scalar. The shed counters prove the ladder ran; every
// answer still verifies.
func TestChaosOverloadDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("overload probe is not short")
	}
	g := graph.Random(200, 1200, 16, 31)
	g.SortAdjacency()
	s, err := New(g, Options{
		MaxInflight: 1, MaxQueue: 8, TenantCap: -1,
		RequestTimeout: 30 * time.Second,
		ShedVerifyAt:   0.5, ScalarAt: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}

	want := kernels.RefBFS(g, 0)
	var wg sync.WaitGroup
	var degraded atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Execute(context.Background(), &Query{Kind: "bfs", Node: -1, TopK: 1, Tenant: "storm"})
			if err != nil {
				if !typedServeErr(err) {
					t.Errorf("untyped overload error: %v", err)
				}
				return
			}
			if res.Level != LevelNormal {
				degraded.Add(1)
			}
			got := res.Output.GetI("lvl")
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("degraded run served wrong lvl[%d]=%d want %d (level %v path %s)",
						i, got[i], want[i], res.Level, res.Path)
					return
				}
			}
		}()
	}
	wg.Wait()
	if degraded.Load() == 0 {
		t.Error("overload never engaged the degradation ladder")
	}
	shed, _ := s.Registry().Get("serve.shed_verify")
	scalar, _ := s.Registry().Get("serve.scalar_forced")
	if shed+scalar == 0 {
		t.Errorf("ladder counters flat: shed=%v scalar=%v", shed, scalar)
	}
}

// typedServeErr reports whether err belongs to the service failure taxonomy.
func typedServeErr(err error) bool {
	for _, sentinel := range []error{
		ErrBadRequest, ErrTenantLimit, ErrQueueFull, ErrDraining, ErrNotReady,
		fault.ErrBudgetExceeded, fault.ErrNonConvergence, fault.ErrKernelPanic,
		fault.ErrOutOfBounds, fault.ErrCorruptGraph, fault.ErrInvariantViolation,
		context.DeadlineExceeded, context.Canceled,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// localHTTP is the storm's real-socket HTTP front end.
type localHTTP struct {
	base   string
	client *http.Client
}

func newLocalHTTP(t *testing.T, h http.Handler) *localHTTP {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &localHTTP{base: srv.URL, client: srv.Client()}
}
