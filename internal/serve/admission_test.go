package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestAdmissionCaps(t *testing.T) {
	a := newAdmission(2, 1, 0) // 2 slots, 1 queue spot, no tenant cap

	if err := a.acquire(context.Background(), "t1"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), "t2"); err != nil {
		t.Fatal(err)
	}

	// Third request queues; fourth finds the queue full.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx, "t3") }()
	waitFor(t, func() bool { _, q := a.depth(); return q == 1 })

	if err := a.acquire(context.Background(), "t4"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth acquire: %v, want ErrQueueFull", err)
	}

	// Releasing a slot admits the queued request.
	a.release("t1")
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	cancel()

	// Occupancy: 2 slots busy, no queue -> load 1.0.
	if l := a.load(); l != 1.0 {
		t.Fatalf("load = %v, want 1.0", l)
	}
	a.release("t2")
	a.release("t3")
	if l := a.load(); l != 0 {
		t.Fatalf("drained load = %v, want 0", l)
	}
}

func TestAdmissionTenantCap(t *testing.T) {
	a := newAdmission(4, 4, 1)
	if err := a.acquire(context.Background(), "greedy"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), "greedy"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-cap tenant admitted: %v", err)
	}
	// Other tenants are unaffected.
	if err := a.acquire(context.Background(), "polite"); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	a.release("greedy")
	if err := a.acquire(context.Background(), "greedy"); err != nil {
		t.Fatalf("tenant slot not reclaimed after release: %v", err)
	}
	a.release("greedy")
	a.release("polite")
}

func TestAdmissionQueueCancel(t *testing.T) {
	a := newAdmission(1, 2, 0)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- a.acquire(ctx, "t") }()
	waitFor(t, func() bool { _, q := a.depth(); return q == 1 })
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queue wait returned %v", err)
	}
	// The abandoned queue spot and tenant reservation are reclaimed.
	waitFor(t, func() bool { _, q := a.depth(); return q == 0 })
	a.release("t")
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatalf("slot leaked by cancelled waiter: %v", err)
	}
	a.release("t")
}

// TestAdmissionConcurrency hammers the controller from many goroutines under
// -race: counts must balance and capacity must never be exceeded.
func TestAdmissionConcurrency(t *testing.T) {
	const slots, queue, workers = 3, 3, 24
	a := newAdmission(slots, queue, 0)
	var mu sync.Mutex
	inflight, maxSeen := 0, 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				err := a.acquire(ctx, "t")
				cancel()
				if err != nil {
					continue
				}
				mu.Lock()
				inflight++
				if inflight > maxSeen {
					maxSeen = inflight
				}
				if inflight > slots {
					t.Errorf("inflight %d exceeds capacity %d", inflight, slots)
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inflight--
				mu.Unlock()
				a.release("t")
			}
		}()
	}
	wg.Wait()
	if fl, q := a.depth(); fl != 0 || q != 0 {
		t.Fatalf("leaked admission state: inflight=%d queued=%d", fl, q)
	}
	if maxSeen == 0 {
		t.Fatal("no request ever ran")
	}
}

func TestLevelLadder(t *testing.T) {
	cases := []struct {
		load float64
		want Level
	}{
		{0, LevelNormal}, {0.49, LevelNormal},
		{0.5, LevelShedVerify}, {0.79, LevelShedVerify},
		{0.8, LevelScalar}, {2.0, LevelScalar},
	}
	for _, tc := range cases {
		if got := levelFor(tc.load, 0.5, 0.8); got != tc.want {
			t.Errorf("levelFor(%v) = %v, want %v", tc.load, got, tc.want)
		}
	}
	// Zero thresholds disable rungs.
	if got := levelFor(5, 0, 0); got != LevelNormal {
		t.Errorf("disabled ladder engaged: %v", got)
	}
}

func TestStatusTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{ErrBadRequest, http.StatusBadRequest},
		{ErrTenantLimit, http.StatusTooManyRequests},
		{ErrQueueFull, http.StatusServiceUnavailable},
		{ErrDraining, http.StatusServiceUnavailable},
		{ErrNotReady, http.StatusServiceUnavailable},
		{&fault.BudgetError{Resource: "deadline", Cause: context.DeadlineExceeded}, http.StatusGatewayTimeout},
		{&fault.BudgetError{Resource: "deadline", Cause: context.Canceled}, http.StatusGatewayTimeout},
		{&fault.BudgetError{Resource: "iterations", Limit: 10, Used: 11}, http.StatusUnprocessableEntity},
		{&fault.BudgetError{Resource: "cycles", Limit: 1, Used: 2}, http.StatusUnprocessableEntity},
		{fault.ErrNonConvergence, http.StatusUnprocessableEntity},
		{fault.ErrKernelPanic, http.StatusInternalServerError},
		{fault.ErrCorruptGraph, http.StatusInternalServerError},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
	if !retryAfter(http.StatusTooManyRequests) || !retryAfter(http.StatusServiceUnavailable) {
		t.Error("backpressure statuses must carry Retry-After")
	}
	if retryAfter(http.StatusInternalServerError) {
		t.Error("500 must not advertise Retry-After")
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
