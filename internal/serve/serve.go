package serve

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// Options configures a Server. The zero value serves with sane defaults:
// Intel machine model, 2 concurrent requests per core-slot equivalents, a
// bounded queue twice that deep, graceful degradation at 50%/80% occupancy.
type Options struct {
	// Machine is the hardware model queries execute on (default Intel8).
	Machine *machine.Config
	// Tasks is the engine launch width per request (default the machine's).
	Tasks int
	// Backend selects the kernel backend for vector attempts (default auto:
	// generated Go where available, interpreter otherwise). The backend that
	// actually served is reported per response.
	Backend core.Backend

	// MaxInflight bounds concurrently executing requests (default 4).
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot (default 2*MaxInflight).
	MaxQueue int
	// TenantCap bounds in-flight+queued requests per tenant (default
	// MaxInflight, so one tenant can saturate execution but not the queue;
	// negative disables).
	TenantCap int

	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// MaxIters/MaxCycles/StallWindow populate each request's fault.Budget
	// (defaults: 1<<20 iterations, stall window 256, cycles uncapped).
	MaxIters    int
	MaxCycles   float64
	StallWindow int

	// CheckpointEvery/MaxRollbacks arm checkpoint-rollback recovery on the
	// vector attempts (default: every 16 iterations, 3 rollbacks).
	CheckpointEvery int
	MaxRollbacks    int

	// ShedVerifyAt and ScalarAt are the occupancy fractions where the
	// degradation ladder engages (defaults 0.5 and 0.8; see levelFor).
	ShedVerifyAt float64
	ScalarAt     float64

	// Inject arms per-request fault injection for chaos testing: every
	// request gets its own deterministic injector derived from InjectSeed
	// and a request counter. Nil serves faultlessly.
	Inject     *fault.InjectorConfig
	InjectSeed uint64

	// Registry collects service counters (default a fresh one; read it via
	// Server.Registry).
	Registry *obs.Registry
	// Trace, when set, records one span per request on the host clock.
	// The server serializes access — obs.Tracer itself is single-writer.
	Trace *obs.Tracer
	// RequestLog, when set, receives one structured JSON line per executed
	// request (request ID, tenant, kernel, backend, status, modeled cycles,
	// rollbacks, degradation rung). Lines are serialized; the writer need not
	// be concurrency-safe.
	RequestLog io.Writer

	// Store, when set, enables the mutation pipeline: /mutate appends to its
	// WAL, and compaction folds the accumulated delta into the next serving
	// snapshot. The server owns the store's delta lifecycle from then on.
	Store *graph.MutStore
	// CompactEvery triggers automatic compaction once that many batches are
	// pending (default 64; negative disables auto-compaction — explicit
	// Compact calls only).
	CompactEvery int
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = machine.Intel8()
	}
	if o.Tasks == 0 {
		o.Tasks = o.Machine.DefaultTasks
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxInflight
	}
	switch {
	case o.TenantCap < 0:
		o.TenantCap = 0 // disabled
	case o.TenantCap == 0:
		o.TenantCap = o.MaxInflight
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxIters == 0 {
		o.MaxIters = 1 << 20
	}
	if o.StallWindow == 0 {
		o.StallWindow = 256
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 16
	}
	if o.MaxRollbacks == 0 {
		o.MaxRollbacks = 3
	}
	if o.ShedVerifyAt == 0 {
		o.ShedVerifyAt = 0.5
	}
	if o.ScalarAt == 0 {
		o.ScalarAt = 0.8
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 64
	}
	return o
}

// Server executes queries against an immutable graph snapshot on pooled
// per-request engines. It is safe for concurrent use. Each snapshot's CSR is
// never mutated — engines allocate all writable state privately, and fault
// injection (when armed) only ever targets engine-allocated arrays, so one
// tenant's faults cannot corrupt what other tenants read.
//
// With a mutation store attached, the served snapshot advances by epoch:
// mutations accumulate in a WAL-backed delta overlay, and compaction folds
// them into the next snapshot, which replaces the current one atomically
// after a validation gate. In-flight queries pin the snapshot they started
// on, so a swap mid-query is invisible to them.
type Server struct {
	opts Options
	snap atomic.Pointer[snapshot] // the currently-served epoch

	// mutMu serializes the mutation pipeline: WAL appends, compaction and
	// the snapshot swap. Queries never take it.
	mutMu    sync.Mutex
	store    *graph.MutStore
	prState  *kernels.PRDeltaState  // incremental pr-delta sentinel state
	gateHook func(*graph.CSR) error // test seam: extra compaction-gate check

	adm     *admission
	engines sync.Pool // *spmd.Engine, reused across requests via core.Config.Engine

	reqSeq atomic.Uint64 // per-request injector seed derivation
	ready  atomic.Bool

	// lifeMu guards the drain lifecycle: the draining flag and the in-flight
	// count change together, so a request can never slip in after Drain
	// decided the server is idle (a bare WaitGroup would race Add against
	// Wait here).
	lifeMu    sync.Mutex
	inflightN int
	idleCh    chan struct{} // non-nil while Drain waits; closed at zero
	drainingB bool

	rootCtx  context.Context // done => hard-stop: cancel in-flight budgets
	rootStop context.CancelFunc

	traceMu sync.Mutex
	logMu   sync.Mutex // serializes request-log lines

	// latency holds per-{tenant, kernel} request-latency histograms; qdepth
	// the admission-queue depth sampled at each arrival. Both feed /metrics.
	latency *labeledHist
	qdepth  *obs.Histogram

	idBase string        // process-unique prefix for generated request IDs
	idSeq  atomic.Uint64 // sequence for generated request IDs
}

// New builds a Server for g. The graph must outlive the server and must not
// be mutated while serving — all mutation flows through the attached store,
// which produces fresh snapshots rather than editing served ones. When
// Options.Store is set, g must be the store's base graph (pass
// store.Delta().Base()). Readiness requires SelfCheck.
func New(g *graph.CSR, opts Options) (*Server, error) {
	if g == nil || g.NumNodes() <= 0 {
		return nil, fmt.Errorf("serve: nil or empty graph")
	}
	o := opts.withDefaults()
	s := &Server{
		opts:    o,
		store:   o.Store,
		adm:     newAdmission(o.MaxInflight, o.MaxQueue, o.TenantCap),
		latency: newLabeledHist(latencyBoundsMS),
		qdepth:  obs.NewHistogram(queueDepthBounds),
		idBase:  strconv.FormatInt(time.Now().UnixNano(), 36),
	}
	epoch := uint64(1)
	if s.store != nil {
		if s.store.Delta().Base() != g {
			return nil, fmt.Errorf("serve: graph is not the mutation store's base")
		}
		epoch = s.store.Epoch()
	}
	s.snap.Store(newSnapshot(g, epoch))
	s.engines.New = func() any {
		return spmd.New(o.Machine, o.Machine.PreferredTarget, o.Tasks)
	}
	s.rootCtx, s.rootStop = context.WithCancel(context.Background())
	return s, nil
}

// Registry exposes the service counters.
func (s *Server) Registry() *obs.Registry { return s.opts.Registry }

// Graph returns the currently-served graph snapshot's CSR.
func (s *Server) Graph() *graph.CSR { return s.snap.Load().g }

// Epoch returns the currently-served snapshot epoch.
func (s *Server) Epoch() uint64 { return s.snap.Load().epoch }

// SelfCheck runs one verified BFS from node 0 through the full execution
// path and flips the server ready on success. Serving before a passing
// self-check returns 503 from /query and /readyz.
func (s *Server) SelfCheck(ctx context.Context) error {
	q := &Query{Kind: "bfs", Src: 0, Node: -1, TopK: defaultTopK, Tenant: "self-check"}
	if _, err := s.Execute(ctx, q); err != nil {
		return fmt.Errorf("serve: self-check: %w", err)
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether the server passed its self-check and is not
// draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.Draining() }

// Draining reports whether the server has stopped admitting new queries.
func (s *Server) Draining() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.drainingB
}

// BeginDrain stops admitting new queries; in-flight ones keep running.
func (s *Server) BeginDrain() {
	s.lifeMu.Lock()
	s.drainingB = true
	s.lifeMu.Unlock()
}

// beginRequest registers one query with the drain lifecycle; it fails once
// draining so admission-after-drain is impossible by construction.
func (s *Server) beginRequest() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.drainingB {
		return ErrDraining
	}
	s.inflightN++
	return nil
}

func (s *Server) endRequest() {
	s.lifeMu.Lock()
	s.inflightN--
	if s.inflightN == 0 && s.idleCh != nil {
		close(s.idleCh)
		s.idleCh = nil
	}
	s.lifeMu.Unlock()
}

// Drain performs graceful shutdown: new work is rejected immediately,
// in-flight queries get until ctx expires to finish, then their budgets are
// cancelled — the pipe-loop watchdog stops them mid-kernel with a typed
// deadline error. Drain returns when every query has exited.
func (s *Server) Drain(ctx context.Context) error {
	s.lifeMu.Lock()
	s.drainingB = true
	if s.inflightN == 0 {
		s.lifeMu.Unlock()
		s.rootStop()
		return nil
	}
	if s.idleCh == nil {
		s.idleCh = make(chan struct{})
	}
	idle := s.idleCh
	s.lifeMu.Unlock()

	select {
	case <-idle:
		s.rootStop()
		return nil
	case <-ctx.Done():
		s.rootStop() // hard-stop survivors via their budget contexts
		<-idle
		return fmt.Errorf("serve: drain deadline expired; in-flight queries cancelled: %w", ctx.Err())
	}
}

// Result is one served query: the response payload plus serving metadata.
type Result struct {
	Query    *Query
	Level    Level
	Epoch    uint64 // snapshot epoch the query executed against
	Path     string // which execution path served ("vector", a baseline, ...)
	Backend  string // kernel backend of the serving attempt ("" on scalar paths)
	Degraded bool
	Attempts int     // failed attempts before the serving one
	TimeMS   float64 // modeled kernel time (0 for scalar paths)
	Cycles   float64 // modeled cycles of the serving attempt (0 for scalar paths)
	WallMS   float64
	Output   *kernels.RunOutput
	Recovery kernels.RecoveryCounts
}

// Execute runs one parsed query end to end: admission, degradation-level
// selection, pooled-engine execution through the resilient chain, release.
// It is the transport-independent core of the /query handler (tests drive it
// directly). Telemetry invariant: the latency histogram records exactly one
// observation per Execute — on every path, including rejections — so its
// total count equals the serve.requests counter.
func (s *Server) Execute(ctx context.Context, q *Query) (out *Result, err error) {
	reg := s.opts.Registry
	reg.Add("serve.requests", 1)
	arrival := time.Now()
	defer func() {
		ms := float64(time.Since(arrival).Microseconds()) / 1e3
		s.latency.observe(q.Tenant, q.Kernel(), ms)
		s.logRequest(ctx, q, out, err, ms)
	}()

	// Pin the serving snapshot for the whole request: a compaction swap
	// mid-query must be invisible — every read this query performs sees one
	// epoch's graph.
	sn := s.snap.Load()
	sn.pin()
	defer sn.unpin()

	if err := q.Validate(sn.g.NumNodes()); err != nil {
		reg.Add("serve.rejected_400", 1)
		return nil, err
	}
	b, err := kernels.ByName(q.Kernel())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	if err := s.beginRequest(); err != nil {
		reg.Add("serve.rejected_503", 1)
		return nil, err
	}
	defer s.endRequest()

	// Admission: the wait in the bounded queue is covered by the request
	// deadline; a client that gives up waiting frees its queue slot.
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()
	// Hard-stop path: a drain deadline cancels in-flight requests too.
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()

	// Arrival-sampled queue depth: what this request saw when it showed up.
	_, arrivalQueued := s.adm.depth()
	s.qdepth.Observe(float64(arrivalQueued))

	if err := s.adm.acquire(ctx, q.Tenant); err != nil {
		switch {
		case err == ErrTenantLimit:
			reg.Add("serve.rejected_429", 1)
		case err == ErrQueueFull:
			reg.Add("serve.rejected_503", 1)
		default: // ctx expired while queued
			reg.Add("serve.timeout_queued", 1)
			err = &fault.BudgetError{Resource: "deadline", Cause: err}
		}
		return nil, err
	}
	defer s.adm.release(q.Tenant)

	// Pick the degradation rung from occupancy at execution start.
	level := levelFor(s.adm.load(), s.opts.ShedVerifyAt, s.opts.ScalarAt)
	switch level {
	case LevelShedVerify:
		reg.Add("serve.shed_verify", 1)
	case LevelScalar:
		reg.Add("serve.scalar_forced", 1)
	}

	g := sn.g
	if b.NeedsSymmetric {
		g = sn.symmetrized()
	}

	cfg := core.Config{
		Machine:          s.opts.Machine,
		Tasks:            s.opts.Tasks,
		Backend:          s.opts.Backend,
		Src:              q.Src,
		Budget:           fault.Budget{MaxIters: s.opts.MaxIters, MaxCycles: s.opts.MaxCycles, StallWindow: s.opts.StallWindow},
		CheckpointEvery:  s.opts.CheckpointEvery,
		MaxRollbacks:     s.opts.MaxRollbacks,
		VerifyInvariants: true,
	}
	if s.opts.Inject != nil {
		// Deterministic per-request injector: same seed + same request
		// sequence reproduces the same fault trace.
		cfg.Inject = fault.NewInjector(s.opts.InjectSeed+s.reqSeq.Add(1), *s.opts.Inject)
	}
	if level != LevelScalar {
		// Pooled engine for the vector path; scalar serving never builds one.
		e, _ := s.engines.Get().(*spmd.Engine)
		cfg.Engine = e
		defer s.engines.Put(e)
	}

	start := time.Now()
	var res *kernels.ResilientResult
	switch level {
	case LevelNormal:
		res, err = core.RunResilientVerifiedCtx(ctx, b, g, cfg)
	case LevelShedVerify:
		res, err = core.RunResilientCtx(ctx, b, g, cfg)
	default:
		res, err = core.RunFallbacks(ctx, b, g, cfg)
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1e3
	s.span(q, wallMS, err)

	if err != nil {
		reg.Add("serve.errors", 1)
		reg.Add("serve.err."+errClass(err), 1)
		return nil, err
	}

	out = &Result{
		Query:    q,
		Level:    level,
		Epoch:    sn.epoch,
		Path:     res.Path,
		Backend:  res.ServingBackend(),
		Degraded: res.Degraded(),
		Attempts: len(res.Attempts),
		WallMS:   wallMS,
		Output:   res.Output,
		Recovery: res.TotalRecovery(),
	}
	for _, a := range res.History {
		if a.Err == nil && a.Cycles > 0 {
			out.Cycles = a.Cycles
			out.TimeMS = s.opts.Machine.CyclesToNS(a.Cycles) / 1e6
		}
	}
	reg.Add("serve.ok", 1)
	if out.Degraded {
		reg.Add("serve.degraded", 1)
	}
	if out.Recovery.Rollbacks > 0 {
		reg.Add("serve.rollbacks", float64(out.Recovery.Rollbacks))
	}
	if out.Recovery.BadCheckpoints > 0 {
		reg.Add("serve.corruption_detected", float64(out.Recovery.BadCheckpoints))
	}
	inflight, queued := s.adm.depth()
	reg.Observe("serve.inflight", float64(inflight))
	reg.Observe("serve.queued", float64(queued))
	return out, nil
}

// span records one per-request trace span; the mutex makes the single-writer
// Tracer safe under concurrent requests.
func (s *Server) span(q *Query, wallMS float64, err error) {
	t := s.opts.Trace
	if t == nil {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	ts := t.HostNow() - wallMS*1e3
	t.CompleteArg(90, 0, "query:"+q.Kind, ts, wallMS*1e3, "status", int64(statusFor(err)))
}
