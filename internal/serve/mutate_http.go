package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/graph"
)

// maxMutateBodyBytes bounds the /mutate request body: generous enough for
// bulk loads (a few hundred thousand text ops) while keeping one client from
// buffering the daemon into the ground.
const maxMutateBodyBytes = 8 << 20

// mutateResponse is the JSON shape of an accepted /mutate batch.
type mutateResponse struct {
	Seq       uint64 `json:"seq"`
	Ops       int    `json:"ops"`
	Epoch     uint64 `json:"epoch"`
	Pending   int    `json:"pending_batches"`
	Durable   bool   `json:"durable"`
	Compacted bool   `json:"compacted,omitempty"`
}

// handleMutate accepts one mutation batch in the shared text stream format
// ("+ src dst [w]" / "- src dst", one op per line — the same format graphgen
// -mutations emits) and appends it to the WAL. The 200 ack means the batch
// is applied and logged; "durable" reports whether it was also fsynced
// (always true at the default -fsync-every=1).
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		writeError(w, ErrNotReady)
		return
	}
	if !s.MutationsEnabled() {
		s.opts.Registry.Add("serve.mut.rejected", 1)
		writeError(w, ErrMutationsDisabled)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxMutateBodyBytes)
	ops, err := graph.ParseMutations(body, s.Graph().NumNodes())
	if err != nil {
		s.opts.Registry.Add("serve.mut.rejected", 1)
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	res, err := s.Mutate(r.Context(), ops)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(mutateResponse{
		Seq: res.Seq, Ops: res.Ops, Epoch: res.Epoch,
		Pending: res.Pending, Durable: res.Durable, Compacted: res.Compacted,
	})
}

// graphzResponse describes the served snapshot and the mutation pipeline.
type graphzResponse struct {
	Epoch     uint64 `json:"epoch"`
	Nodes     int32  `json:"nodes"`
	Edges     int32  `json:"edges"`
	Weighted  bool   `json:"weighted"`
	Hash      string `json:"hash"` // FNV-1a structural fingerprint, hex
	Mutations bool   `json:"mutations_enabled"`

	LastSeq   uint64 `json:"last_seq,omitempty"`
	Pending   int    `json:"pending_batches,omitempty"`
	WALBytes  int64  `json:"wal_bytes,omitempty"`
	Replayed  int    `json:"replayed_batches,omitempty"`
	Truncated int    `json:"torn_tails_repaired,omitempty"`
	Pinned    int64  `json:"pinned_snapshots"`
}

// handleGraphz reports the serving snapshot: epoch, sizes, the structural
// hash (the bit-identity witness the crash-recovery harness compares), and
// the mutation-pipeline counters.
func (s *Server) handleGraphz(w http.ResponseWriter, _ *http.Request) {
	sn := s.snap.Load()
	resp := graphzResponse{
		Epoch:     sn.epoch,
		Nodes:     sn.g.NumNodes(),
		Edges:     sn.g.NumEdges(),
		Weighted:  sn.g.Weighted(),
		Hash:      fmt.Sprintf("%016x", graph.Hash(sn.g)),
		Mutations: s.MutationsEnabled(),
		Pinned:    s.PinnedSnapshots(),
	}
	if s.MutationsEnabled() {
		st := s.MutStats()
		resp.LastSeq = st.LastSeq
		resp.Pending = st.Pending
		resp.WALBytes = st.WALBytes
		resp.Replayed = st.Replayed
		resp.Truncated = st.Truncated
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleCompact forces a compaction (POST /admin/compact): fold, gate, swap.
// Responds with the resulting epoch, or the gate failure.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.MutationsEnabled() {
		writeError(w, ErrMutationsDisabled)
		return
	}
	epoch, err := s.Compact(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, fmt.Sprintf("{\"epoch\":%d}\n", epoch))
}
