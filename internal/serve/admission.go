package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission-control rejections. Handlers map ErrTenantLimit to 429 (the
// tenant is over its own cap; backing off helps) and ErrQueueFull to 503 (the
// server as a whole is saturated).
var (
	ErrTenantLimit = errors.New("tenant concurrency limit")
	ErrQueueFull   = errors.New("work queue full")
)

// admission is a bounded work queue with per-tenant concurrency caps:
// MaxInflight requests execute at once, up to MaxQueue more wait, anything
// beyond is rejected immediately — so overload surfaces as fast 429/503
// responses with Retry-After, never as unbounded goroutine pileup. A tenant
// over its own cap is rejected before it can occupy queue space that other
// tenants need.
type admission struct {
	slots chan struct{} // semaphore: capacity = maxInflight

	mu        sync.Mutex
	queued    int
	maxQueue  int
	tenantCap int
	tenants   map[string]int
}

func newAdmission(maxInflight, maxQueue, tenantCap int) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInflight),
		maxQueue:  maxQueue,
		tenantCap: tenantCap,
		tenants:   make(map[string]int),
	}
}

// acquire admits one request for tenant, blocking in the bounded queue until
// an execution slot frees or ctx is done. On success the caller must release.
func (a *admission) acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	if a.tenantCap > 0 && a.tenants[tenant] >= a.tenantCap {
		a.mu.Unlock()
		return ErrTenantLimit
	}
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		a.tenants[tenant]++
		a.mu.Unlock()
		return nil
	default:
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return ErrQueueFull
	}
	a.queued++
	a.tenants[tenant]++ // reserve the tenant slot while queued
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.tenants[tenant]--
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release returns the slot acquired for tenant.
func (a *admission) release(tenant string) {
	<-a.slots
	a.mu.Lock()
	if a.tenants[tenant] <= 1 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant]--
	}
	a.mu.Unlock()
}

// load reports occupancy as a fraction of execution capacity: 1.0 means every
// slot busy, above 1.0 requests are queueing. The degradation ladder keys off
// this.
func (a *admission) load() float64 {
	a.mu.Lock()
	q := a.queued
	a.mu.Unlock()
	return float64(len(a.slots)+q) / float64(cap(a.slots))
}

// depth reports current inflight and queued counts (for /statz and metrics).
func (a *admission) depth() (inflight, queued int) {
	a.mu.Lock()
	q := a.queued
	a.mu.Unlock()
	return len(a.slots), q
}
