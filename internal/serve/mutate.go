package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// ErrMutationsDisabled rejects /mutate on a server without a mutation store
// (a static-graph daemon). It is a client error: the deployment does not
// accept writes, and retrying will not change that.
var ErrMutationsDisabled = fmt.Errorf("%w: mutations disabled (no mutation store attached)", ErrBadRequest)

// ErrGateFailed marks a compaction whose folded graph failed the validation
// gate. The swap is rolled back: the previous snapshot keeps serving and the
// WAL keeps every acked batch.
var ErrGateFailed = errors.New("compaction gate failed")

// snapshot is one served graph epoch. Queries pin the snapshot they execute
// against; the pin count only feeds telemetry and tests (memory reclamation
// is the garbage collector's job — a superseded snapshot lives exactly as
// long as its last pinned query).
type snapshot struct {
	g     *graph.CSR
	epoch uint64

	symOnce sync.Once
	sym     *graph.CSR // undirected view, built lazily per snapshot

	pins atomic.Int64
}

func newSnapshot(g *graph.CSR, epoch uint64) *snapshot {
	return &snapshot{g: g, epoch: epoch}
}

func (sn *snapshot) pin()   { sn.pins.Add(1) }
func (sn *snapshot) unpin() { sn.pins.Add(-1) }

// symmetrized returns the undirected view of this epoch's graph, building it
// once on first use (cc needs it; the build is untimed, like graph loading).
func (sn *snapshot) symmetrized() *graph.CSR {
	sn.symOnce.Do(func() { sn.sym = sn.g.Symmetrize() })
	return sn.sym
}

// PinnedSnapshots returns the number of in-flight queries holding a pin on
// the CURRENT snapshot plus those still on superseded ones, approximated as
// the current snapshot's pin count (superseded snapshots drain within one
// request lifetime). Exported as the pinned-snapshot gauge.
func (s *Server) PinnedSnapshots() int64 {
	return s.snap.Load().pins.Load()
}

// MutateResult reports one accepted mutation batch.
type MutateResult struct {
	Seq       uint64 // WAL sequence assigned to the batch
	Ops       int
	Epoch     uint64 // serving epoch at ack time
	Pending   int    // batches applied but not yet compacted
	Durable   bool   // the batch was fsynced before the ack
	Compacted bool   // this batch tripped an automatic compaction
}

// Mutate appends one batch of edge mutations: validated, WAL-logged,
// applied to the delta overlay, and — once enough batches accumulate —
// folded into the next serving snapshot by automatic compaction. On a nil
// error the batch is acked and will appear in every later epoch; durability
// follows the store's group-commit policy. With -fsync-every=1 (the
// default) the ack implies an fsync, so the batch survives any crash; a
// larger interval acks up to that many batches before their shared fsync,
// and MutateResult.Durable reports per batch which side of the gap it is
// on.
//
// Mutations do not take admission slots: appends are micro-operations
// compared to queries, and serializing them on mutMu bounds their
// concurrency at one.
func (s *Server) Mutate(ctx context.Context, ops []graph.MutOp) (*MutateResult, error) {
	reg := s.opts.Registry
	if s.store == nil {
		reg.Add("serve.mut.rejected", 1)
		return nil, ErrMutationsDisabled
	}
	if len(ops) == 0 {
		reg.Add("serve.mut.rejected", 1)
		return nil, fmt.Errorf("%w: empty mutation batch", ErrBadRequest)
	}
	if err := s.beginRequest(); err != nil {
		reg.Add("serve.mut.rejected", 1)
		return nil, err
	}
	defer s.endRequest()

	s.mutMu.Lock()
	b, err := s.store.Append(ops)
	if err != nil {
		s.mutMu.Unlock()
		// Op validation failures (bad op code, node out of range, oversized
		// batch — all ErrCorruptGraph) are the client's fault and nothing
		// touched the log. Everything else (write, fsync) is the server's:
		// the batch was NOT made durable, which must surface as a 5xx, not
		// as a complaint about the request.
		if errors.Is(err, fault.ErrCorruptGraph) {
			reg.Add("serve.mut.rejected", 1)
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		reg.Add("serve.mut.append_errors", 1)
		return nil, err
	}
	durable := s.store.Synced()
	pending := s.store.Delta().Batches()
	auto := s.opts.CompactEvery > 0 && pending >= s.opts.CompactEvery
	s.mutMu.Unlock()

	reg.Add("serve.mut.applied", 1)
	reg.Add("serve.mut.ops", float64(len(b.Ops)))

	res := &MutateResult{Seq: b.Seq, Ops: len(b.Ops), Epoch: s.Epoch(), Pending: pending, Durable: durable}
	if auto {
		if _, err := s.Compact(ctx); err != nil {
			// The batch is acked and durable; compaction failing is a
			// server-side condition reported on its own channel.
			reg.Add("serve.mut.compact_errors", 1)
			return res, nil
		}
		res.Compacted = true
		res.Durable = true // Compact flushes the group-commit tail first
		res.Epoch = s.Epoch()
		res.Pending = 0
	}
	return res, nil
}

// Compact folds the pending delta into a fresh CSR, runs the validation
// gate, persists the new snapshot, and atomically swaps it into serving.
// In-flight queries keep their pinned epoch; new queries see the new one. A
// gate failure rolls back completely: the old snapshot keeps serving, the
// WAL keeps the pending batches, and the store is untouched.
func (s *Server) Compact(ctx context.Context) (uint64, error) {
	reg := s.opts.Registry
	if s.store == nil {
		return 0, ErrMutationsDisabled
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()

	delta := s.store.Delta()
	if delta.Batches() == 0 {
		return s.snap.Load().epoch, nil // nothing to fold
	}
	oldSn := s.snap.Load()
	touched := delta.Touched()

	var gated *kernels.PRDeltaState
	var gateErr error
	folded, epoch, err := s.store.Compact(func(folded *graph.CSR) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		st, verr := s.gate(oldSn.g, folded, touched)
		if verr != nil {
			gateErr = verr
			return verr
		}
		gated = st
		return nil
	})
	if err != nil {
		if gateErr != nil {
			// The fold failed validation; the rollback is the feature and
			// the count is the signal chaos tests watch.
			reg.Add("serve.mut.gate_failures", 1)
			return 0, fmt.Errorf("%w: %v", ErrGateFailed, gateErr)
		}
		// Everything else — fold overflow, snapshot-persist I/O, segment
		// rotation, the request's context expiring — is not a validation
		// rejection: keep it off the gate-failure signal and return it
		// unwrapped so statusFor maps it honestly (500, or 504 for ctx).
		reg.Add("serve.mut.compact_io_errors", 1)
		return 0, err
	}
	s.prState = gated
	s.snap.Store(newSnapshot(folded, epoch))
	reg.Add("serve.mut.compactions", 1)
	graph.Crashpoint("swap")
	return epoch, nil
}

// gate is the compaction validation gate: beyond the structural
// graph.Validate the fold already ran, it executes sentinel queries on the
// folded graph and checks them with the per-kernel invariant validators,
// and advances the incremental pr-delta state — a differential witness that
// the folded CSR is the graph the mutation stream describes. It returns the
// advanced pr-delta state for adoption after the swap; on any error the
// caller discards everything.
func (s *Server) gate(oldG, folded *graph.CSR, touched []int32) (*kernels.PRDeltaState, error) {
	// Sentinel BFS from node 0 on the folded graph, checked by the bfs
	// invariant catalog (level range; evolution rules need a prior
	// checkpoint and are skipped).
	lvl := kernels.RefBFS(folded, 0)
	st := &gateState{g: folded, i: map[string][]int32{"lvl": lvl}}
	if inv := kernels.InvariantFor("bfs-wl"); inv != nil {
		if err := inv(st); err != nil {
			return nil, fmt.Errorf("sentinel bfs: %w", err)
		}
	}
	// Sentinel CC on the undirected view, checked by the cc catalog
	// (labels in [0, i]).
	comp := kernels.RefCC(folded.Symmetrize())
	st = &gateState{g: folded, i: map[string][]int32{"comp": comp}}
	if inv := kernels.InvariantFor("cc"); inv != nil {
		if err := inv(st); err != nil {
			return nil, fmt.Errorf("sentinel cc: %w", err)
		}
	}
	// Incremental pr-delta across the epoch boundary. The state is built
	// lazily on the first compaction and advanced by the touched rows on
	// every later one; a node-set mismatch or divergent adjacency surfaces
	// here before the swap.
	var pr *kernels.PRDeltaState
	if s.prState == nil {
		pr = kernels.NewPRDeltaState(folded)
	} else {
		pr = s.prState.Clone()
		if err := pr.Update(oldG, folded, touched); err != nil {
			return nil, fmt.Errorf("sentinel pr-delta: %w", err)
		}
	}
	if s.gateHook != nil {
		if err := s.gateHook(folded); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// gateState adapts sentinel reference outputs to the kernels.State interface
// the invariant validators consume. Prev* are nil (no prior checkpoint, so
// evolution rules are skipped) and there is no worklist.
type gateState struct {
	g *graph.CSR
	i map[string][]int32
}

func (st *gateState) Graph() *graph.CSR          { return st.g }
func (st *gateState) CurI(name string) []int32   { return st.i[name] }
func (st *gateState) CurF(name string) []float32 { return nil }
func (st *gateState) PrevI(string) []int32       { return nil }
func (st *gateState) PrevF(string) []float32     { return nil }
func (st *gateState) Frontier() int              { return -1 }
func (st *gateState) FrontierCap() int           { return 0 }

// MutStats exposes the mutation-store counters for /graphz and /metrics
// (zero value when mutations are disabled).
func (s *Server) MutStats() graph.Stats {
	if s.store == nil {
		return graph.Stats{}
	}
	return s.store.Stats()
}

// MutationsEnabled reports whether the server accepts /mutate.
func (s *Server) MutationsEnabled() bool { return s.store != nil }
