// Package serve is the multi-tenant query layer of the EGACS daemon: it
// parses graph-query requests, admits them through a bounded work queue with
// per-tenant caps, runs them on pooled engines through the resilient
// execution chain, and degrades gracefully under overload — shedding result
// verification first, then serving from the scalar ladder, then rejecting
// with backpressure statuses — instead of falling over.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// ErrBadRequest marks client errors (malformed query, unknown kind, node out
// of range); the handler maps it to 400.
var ErrBadRequest = errors.New("bad request")

// Query is one parsed graph query. Kind selects the kernel; Src the source
// node for traversals; Node an optional single-node lookup in the output;
// TopK bounds the PageRank ranking size; Tenant attributes the request for
// per-tenant admission.
type Query struct {
	Kind   string `json:"kind"`
	Src    int32  `json:"src"`
	Node   int32  `json:"node"`
	TopK   int    `json:"k"`
	Tenant string `json:"tenant"`

	// HasNode records whether the request asked for a node lookup at all
	// (node 0 is a valid node).
	HasNode bool `json:"-"`
}

// kindKernel maps query kinds to benchmark names.
var kindKernel = map[string]string{
	"bfs":  "bfs-wl",
	"sssp": "sssp-nf",
	"pr":   "pr",
	"cc":   "cc",
}

// Kernel returns the benchmark name for the query's kind.
func (q *Query) Kernel() string { return kindKernel[q.Kind] }

const (
	defaultTopK = 10
	maxTopK     = 1000
	maxTenant   = 64
)

// ParseQuery decodes a query from a raw URL query string and an optional
// JSON body (body fields win). It is a pure function of its inputs — no
// graph, no server state — so it can be fuzzed in isolation; the only
// graph-dependent check (node ranges) happens in Query.Validate. Any
// malformed input returns an error wrapping ErrBadRequest; it never panics.
func ParseQuery(rawQuery string, body []byte) (*Query, error) {
	q := &Query{TopK: defaultTopK, Node: -1}

	vals, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, fmt.Errorf("%w: query string: %v", ErrBadRequest, err)
	}
	if v := vals.Get("kind"); v != "" {
		q.Kind = v
	}
	if v := vals.Get("src"); v != "" {
		n, err := parseNode("src", v)
		if err != nil {
			return nil, err
		}
		q.Src = n
	}
	if v := vals.Get("node"); v != "" {
		n, err := parseNode("node", v)
		if err != nil {
			return nil, err
		}
		q.Node, q.HasNode = n, true
	}
	if v := vals.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%w: k %q: %v", ErrBadRequest, v, err)
		}
		q.TopK = k
	}
	if v := vals.Get("tenant"); v != "" {
		q.Tenant = v
	}

	if len(body) > 0 {
		var b struct {
			Kind   *string `json:"kind"`
			Src    *int64  `json:"src"`
			Node   *int64  `json:"node"`
			TopK   *int    `json:"k"`
			Tenant *string `json:"tenant"`
		}
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("%w: body: %v", ErrBadRequest, err)
		}
		if b.Kind != nil {
			q.Kind = *b.Kind
		}
		if b.Src != nil {
			if err := checkNodeRange("src", *b.Src); err != nil {
				return nil, err
			}
			q.Src = int32(*b.Src)
		}
		if b.Node != nil {
			if err := checkNodeRange("node", *b.Node); err != nil {
				return nil, err
			}
			q.Node, q.HasNode = int32(*b.Node), true
		}
		if b.TopK != nil {
			q.TopK = *b.TopK
		}
		if b.Tenant != nil {
			q.Tenant = *b.Tenant
		}
	}

	if _, ok := kindKernel[q.Kind]; !ok {
		return nil, fmt.Errorf("%w: unknown kind %q (want bfs|sssp|pr|cc)", ErrBadRequest, q.Kind)
	}
	if q.TopK < 1 || q.TopK > maxTopK {
		return nil, fmt.Errorf("%w: k %d out of range [1,%d]", ErrBadRequest, q.TopK, maxTopK)
	}
	if len(q.Tenant) > maxTenant {
		return nil, fmt.Errorf("%w: tenant name longer than %d bytes", ErrBadRequest, maxTenant)
	}
	if q.Tenant == "" {
		q.Tenant = "default"
	}
	return q, nil
}

func parseNode(field, v string) (int32, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q: %v", ErrBadRequest, field, v, err)
	}
	if err := checkNodeRange(field, n); err != nil {
		return 0, err
	}
	return int32(n), nil
}

func checkNodeRange(field string, n int64) error {
	if n < 0 || n > 1<<31-2 {
		return fmt.Errorf("%w: %s %d out of range", ErrBadRequest, field, n)
	}
	return nil
}

// Validate checks the query's node references against the served graph.
func (q *Query) Validate(numNodes int32) error {
	if q.Src >= numNodes {
		return fmt.Errorf("%w: src %d outside graph (%d nodes)", ErrBadRequest, q.Src, numNodes)
	}
	if q.HasNode && q.Node >= numNodes {
		return fmt.Errorf("%w: node %d outside graph (%d nodes)", ErrBadRequest, q.Node, numNodes)
	}
	return nil
}
