package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// latencyBoundsMS are the request-latency bucket bounds in milliseconds,
// roughly log-spaced from sub-millisecond cache hits to the 30s default
// request deadline.
var latencyBoundsMS = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// queueDepthBounds bucket the admission-queue depth sampled at each arrival.
var queueDepthBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// maxLatencySeries caps the number of {tenant, kernel} latency series. Tenant
// names are client-controlled, so without a cap one misbehaving client could
// grow /metrics without bound; past the cap new series collapse into
// {other, other}.
const maxLatencySeries = 64

type histKey struct{ tenant, kernel string }

// labeledHist is a set of identically-bucketed histograms keyed by
// {tenant, kernel}, with a cardinality cap.
type labeledHist struct {
	mu     sync.Mutex
	bounds []float64
	series map[histKey]*obs.Histogram
}

func newLabeledHist(bounds []float64) *labeledHist {
	return &labeledHist{bounds: bounds, series: map[histKey]*obs.Histogram{}}
}

func (l *labeledHist) observe(tenant, kernel string, v float64) {
	if tenant == "" {
		tenant = "default"
	}
	if kernel == "" {
		kernel = "unknown"
	}
	l.mu.Lock()
	k := histKey{tenant, kernel}
	h, ok := l.series[k]
	if !ok {
		if len(l.series) >= maxLatencySeries {
			k = histKey{"other", "other"}
			h, ok = l.series[k]
		}
		if !ok {
			h = obs.NewHistogram(l.bounds)
			l.series[k] = h
		}
	}
	l.mu.Unlock()
	h.Observe(v)
}

// snapshot returns the series in sorted key order.
func (l *labeledHist) snapshot() (keys []histKey, snaps []obs.HistogramSnapshot) {
	l.mu.Lock()
	hists := make(map[histKey]*obs.Histogram, len(l.series))
	for k, h := range l.series {
		hists[k] = h
		keys = append(keys, k)
	}
	l.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].kernel < keys[j].kernel
	})
	for _, k := range keys {
		snaps = append(snaps, hists[k].Snapshot())
	}
	return keys, snaps
}

// gaugeKeys are the registry entries exported as gauges; the live values come
// from the admission ladder at scrape time, so the stale Observe'd copies in
// the registry are skipped.
var gaugeKeys = map[string]bool{
	"serve.inflight": true,
	"serve.queued":   true,
	"serve.load":     true,
}

// handleMetrics serves the Prometheus text-exposition page.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	s.writeProm(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeProm renders the full metrics page: every registry counter (error
// classes as labels), the live admission gauges, the trace-ring drop counter
// and the latency/queue-depth histograms. The page is built with the obs
// writer and is validated against the independent obs parser in tests.
func (s *Server) writeProm(w io.Writer) error {
	p := obs.NewPromWriter()

	snap := s.opts.Registry.Snapshot()
	names := make([]string, 0, len(snap))
	errClasses := make([]string, 0, 4)
	for name := range snap {
		const errPrefix = "serve.err."
		if len(name) > len(errPrefix) && name[:len(errPrefix)] == errPrefix {
			errClasses = append(errClasses, name[len(errPrefix):])
			continue
		}
		if gaugeKeys[name] {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Strings(errClasses)
	for _, name := range names {
		fam := "egacs_" + obs.PromName(name) + "_total"
		p.Family(fam, "service counter "+name, "counter")
		p.Sample(fam, nil, snap[name])
	}
	p.Family("egacs_serve_errors_by_class_total", "failed requests by error class", "counter")
	for _, class := range errClasses {
		p.Sample("egacs_serve_errors_by_class_total", []obs.Label{{Name: "class", Value: class}}, snap["serve.err."+class])
	}

	inflight, queued := s.adm.depth()
	p.Family("egacs_serve_inflight", "queries executing right now", "gauge")
	p.Sample("egacs_serve_inflight", nil, float64(inflight))
	p.Family("egacs_serve_queued", "queries waiting for an execution slot", "gauge")
	p.Sample("egacs_serve_queued", nil, float64(queued))
	p.Family("egacs_serve_load", "admission occupancy (inflight+queued over capacity)", "gauge")
	p.Sample("egacs_serve_load", nil, s.adm.load())

	p.Family("egacs_trace_dropped_total", "request spans dropped by the full trace ring", "counter")
	p.Sample("egacs_trace_dropped_total", nil, float64(s.traceDropped()))

	// Mutation-pipeline gauges: fixed cardinality (no labels), read live
	// from the store and the serving snapshot at scrape time.
	p.Family("egacs_mut_epoch", "serving snapshot epoch (advances at each compaction)", "gauge")
	p.Sample("egacs_mut_epoch", nil, float64(s.Epoch()))
	p.Family("egacs_mut_pinned_snapshots", "in-flight queries pinning the serving snapshot", "gauge")
	p.Sample("egacs_mut_pinned_snapshots", nil, float64(s.PinnedSnapshots()))
	if s.MutationsEnabled() {
		st := s.MutStats()
		p.Family("egacs_mut_wal_bytes", "bytes across live write-ahead-log segments", "gauge")
		p.Sample("egacs_mut_wal_bytes", nil, float64(st.WALBytes))
		p.Family("egacs_mut_pending_batches", "batches applied but not yet compacted", "gauge")
		p.Sample("egacs_mut_pending_batches", nil, float64(st.Pending))
		p.Family("egacs_mut_last_seq", "last acked write-ahead-log batch sequence", "gauge")
		p.Sample("egacs_mut_last_seq", nil, float64(st.LastSeq))
		p.Family("egacs_mut_replayed_batches_total", "batches replayed from the WAL at boot", "counter")
		p.Sample("egacs_mut_replayed_batches_total", nil, float64(st.Replayed))
		p.Family("egacs_mut_torn_tails_repaired_total", "torn WAL tails truncated during recovery", "counter")
		p.Sample("egacs_mut_torn_tails_repaired_total", nil, float64(st.Truncated))
	}

	p.Family("egacs_serve_latency_ms", "request latency (admission to response) in milliseconds", "histogram")
	keys, snaps := s.latency.snapshot()
	for i, k := range keys {
		p.WriteHistogram("egacs_serve_latency_ms",
			[]obs.Label{{Name: "tenant", Value: k.tenant}, {Name: "kernel", Value: k.kernel}}, snaps[i])
	}
	p.Family("egacs_serve_queue_depth", "admission queue depth sampled at each arrival", "histogram")
	p.WriteHistogram("egacs_serve_queue_depth", nil, s.qdepth.Snapshot())

	_, err := p.WriteTo(w)
	return err
}

// traceDropped returns the trace-ring drop count (0 without a tracer).
func (s *Server) traceDropped() int64 {
	t := s.opts.Trace
	if t == nil {
		return 0
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return t.Dropped()
}

// ctxKey keys the request ID in a request context.
type ctxKey int

const requestIDKey ctxKey = iota

// withRequestID attaches a request ID to ctx.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID attached by the HTTP layer, or "" for
// requests that entered through Execute directly.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// nextRequestID mints a server-generated request ID: a per-process base36
// epoch plus a sequence number, unique within and across typical restarts.
func (s *Server) nextRequestID() string {
	return s.idBase + "-" + strconv.FormatUint(s.idSeq.Add(1), 10)
}

// reqLogEntry is one structured request-log line. Every field is flat and
// stable so the log is greppable and machine-parseable; absent optionals
// marshal away.
type reqLogEntry struct {
	TS        string  `json:"ts"`
	RequestID string  `json:"request_id,omitempty"`
	Tenant    string  `json:"tenant"`
	Kind      string  `json:"kind"`
	Kernel    string  `json:"kernel,omitempty"`
	Backend   string  `json:"backend,omitempty"`
	Layout    string  `json:"layout,omitempty"`
	Status    int     `json:"status"`
	Error     string  `json:"error,omitempty"` // stable class, see errClass
	Level     string  `json:"level,omitempty"` // degradation rung that served
	Epoch     uint64  `json:"epoch,omitempty"` // snapshot epoch the query ran against
	Cycles    float64 `json:"modeled_cycles,omitempty"`
	Rollbacks int     `json:"rollbacks,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

// logRequest emits one JSON line per Execute when a request log is
// configured. The mutex serializes whole lines, so concurrent requests never
// interleave bytes.
func (s *Server) logRequest(ctx context.Context, q *Query, out *Result, err error, wallMS float64) {
	if s.opts.RequestLog == nil {
		return
	}
	e := reqLogEntry{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: RequestIDFrom(ctx),
		Tenant:    q.Tenant,
		Kind:      q.Kind,
		Kernel:    q.Kernel(),
		Status:    statusFor(err),
		WallMS:    wallMS,
	}
	if err != nil {
		e.Error = errClass(err)
	}
	if out != nil {
		e.Backend = out.Backend
		// The serve layer always builds the default layout, which is CSR.
		e.Layout = "csr"
		e.Level = out.Level.String()
		e.Epoch = out.Epoch
		e.Cycles = out.Cycles
		e.Rollbacks = out.Recovery.Rollbacks
	}
	line, merr := json.Marshal(e)
	if merr != nil {
		return
	}
	s.logMu.Lock()
	s.opts.RequestLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}
