package serve

// Level is a rung of the overload-degradation ladder. Under light load every
// request gets the full treatment — vector execution with checkpointing and
// output verification against the serial reference. As occupancy climbs the
// server sheds the most expensive guarantees first, keeping goodput up
// instead of queueing toward timeout: verification goes first (invariant
// checking at checkpoints still runs), then vector execution itself — the
// scalar baselines cost a small fraction of a simulated vector run, so a
// saturated server serves degraded-but-correct answers. Admission rejects
// (429/503) are the rung below the ladder, not part of it.
type Level int

const (
	// LevelNormal runs the vector engine and verifies the served output
	// against the serial reference before it leaves the building.
	LevelNormal Level = iota
	// LevelShedVerify runs the vector engine but skips output verification;
	// checkpoint-time invariant validation still guards against corruption.
	LevelShedVerify
	// LevelScalar skips the vector engine entirely and serves from the
	// scalar fallback ladder.
	LevelScalar
)

func (l Level) String() string {
	switch l {
	case LevelShedVerify:
		return "shed-verify"
	case LevelScalar:
		return "scalar"
	default:
		return "normal"
	}
}

// levelFor maps queue occupancy to a ladder rung. shedAt and scalarAt are the
// load fractions (see admission.load) at which each shedding step engages; a
// zero threshold disables that rung.
func levelFor(load, shedAt, scalarAt float64) Level {
	if scalarAt > 0 && load >= scalarAt {
		return LevelScalar
	}
	if shedAt > 0 && load >= shedAt {
		return LevelShedVerify
	}
	return LevelNormal
}
