package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// testGraph is a small sorted random graph shared by the server tests.
func testGraph() *graph.CSR {
	g := graph.Random(200, 1200, 16, 21)
	g.SortAdjacency()
	return g
}

// newTestServer builds a ready Server plus an httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(testGraph(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && len(body) > 0 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON (%s): %v", body, err)
		}
	}
	return resp.StatusCode
}

func TestServeQueryKinds(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	g := s.Graph()

	var bfs queryResponse
	if code := getJSON(t, ts.URL+"/query?kind=bfs&src=0&node=5", &bfs); code != 200 {
		t.Fatalf("bfs status %d", code)
	}
	if bfs.Path == "" || bfs.Reached == nil || *bfs.Reached <= 0 {
		t.Fatalf("bfs response incomplete: %+v", bfs)
	}
	want := kernels.RefBFS(g, 0)[5]
	if bfs.NodeValue == nil || *bfs.NodeValue != want {
		t.Fatalf("bfs lvl[5] = %v, want %d", bfs.NodeValue, want)
	}

	var sssp queryResponse
	if code := getJSON(t, ts.URL+"/query?kind=sssp&src=3", &sssp); code != 200 {
		t.Fatalf("sssp status %d", code)
	}
	if sssp.Reached == nil || *sssp.Reached <= 0 {
		t.Fatalf("sssp response incomplete: %+v", sssp)
	}

	var pr queryResponse
	if code := getJSON(t, ts.URL+"/query?kind=pr&k=7", &pr); code != 200 {
		t.Fatalf("pr status %d", code)
	}
	if len(pr.TopK) != 7 {
		t.Fatalf("pr returned %d entries, want 7", len(pr.TopK))
	}
	for i := 1; i < len(pr.TopK); i++ {
		if pr.TopK[i].Rank > pr.TopK[i-1].Rank {
			t.Fatalf("topk not sorted: %+v", pr.TopK)
		}
	}

	var cc queryResponse
	if code := getJSON(t, ts.URL+"/query?kind=cc&node=9", &cc); code != 200 {
		t.Fatalf("cc status %d", code)
	}
	if cc.Components == nil || *cc.Components < 1 || cc.NodeValue == nil {
		t.Fatalf("cc response incomplete: %+v", cc)
	}

	// POST body form.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"kind":"bfs","src":1,"tenant":"poster"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST query status %d", resp.StatusCode)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, q := range []string{
		"kind=mincut", "kind=bfs&src=-3", "kind=bfs&src=100000000", "kind=pr&k=0",
		"kind=cc&node=999999", "", "kind=%zz",
	} {
		var eb errorBody
		if code := getJSON(t, ts.URL+"/query?"+q, &eb); code != 400 {
			t.Errorf("query %q: status %d, want 400", q, code)
		} else if eb.Error != "bad-request" {
			t.Errorf("query %q: class %q", q, eb.Error)
		}
	}
	// Oversized body is a client error, not a daemon failure.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"kind":"bfs","tenant":"`+strings.Repeat("a", maxBodyBytes+16)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func TestServeHealthAndReady(t *testing.T) {
	s, err := New(testGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness is always on; readiness and /query gate on the self-check.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz before self-check: %d, want 503", code)
	}
	var eb errorBody
	if code := getJSON(t, ts.URL+"/query?kind=bfs", &eb); code != 503 || eb.Error != "not-ready" {
		t.Fatalf("query before self-check: %d %q", code, eb.Error)
	}

	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz after self-check: %d", code)
	}

	s.BeginDrain()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/query?kind=bfs", &eb); code != 503 || eb.Error != "draining" {
		t.Fatalf("query while draining: %d %q", code, eb.Error)
	}
}

func TestServePanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	h := s.recoverWrap(func(http.ResponseWriter, *http.Request) {
		panic("kernel exploded")
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/query?kind=bfs", nil))
		if rec.Code != 500 {
			t.Fatalf("panicking request %d: status %d, want 500", i, rec.Code)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Fatalf("panic response not JSON: %v", err)
		}
		if eb.Error != "kernel-panic" {
			t.Fatalf("panic class %q", eb.Error)
		}
	}
	if v, _ := s.Registry().Get("serve.panics"); v != 3 {
		t.Fatalf("panic counter = %v, want 3", v)
	}
	// The server still serves after panics.
	res, err := s.Execute(context.Background(), &Query{Kind: "bfs", Node: -1, TopK: 1, Tenant: "after"})
	if err != nil {
		t.Fatalf("server dead after panics: %v", err)
	}
	if res.Output == nil {
		t.Fatal("no output after panic recovery")
	}
}

// TestServeBackpressure saturates a 1-slot server and checks the admission
// taxonomy: some requests serve, the rest split between 429 (tenant cap) and
// 503 (queue full) — all with Retry-After — and nothing hangs or panics.
func TestServeBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Options{
		MaxInflight: 1, MaxQueue: 1, TenantCap: 2,
		RequestTimeout: 10 * time.Second,
	})
	const clients = 10
	codes := make([]int, clients)
	retryHdr := make([]bool, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the clients share a tenant to trip its cap; the rest are
			// distinct and contend for the queue.
			tenant := "shared"
			if c%2 == 0 {
				tenant = fmt.Sprintf("t%d", c)
			}
			resp, err := http.Get(ts.URL + "/query?kind=bfs&src=" + fmt.Sprint(c%100) + "&tenant=" + tenant)
			if err != nil {
				codes[c] = -1
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			codes[c] = resp.StatusCode
			retryHdr[c] = resp.Header.Get("Retry-After") != ""
		}()
	}
	wg.Wait()

	counts := map[int]int{}
	for c, code := range codes {
		counts[code]++
		if (code == 429 || code == 503) && !retryHdr[c] {
			t.Errorf("client %d: %d without Retry-After", c, code)
		}
		switch code {
		case 200, 429, 503:
		default:
			t.Errorf("client %d: unexpected status %d", c, code)
		}
	}
	if counts[200] == 0 {
		t.Error("no request served under load")
	}
	if counts[429]+counts[503] == 0 {
		t.Error("no request shed: admission control never engaged")
	}
	t.Logf("status mix under overload: %v", counts)
}

// TestServeDrain checks graceful shutdown: an in-flight slow query finishes,
// new work bounces with 503, and Drain returns once the server is idle.
func TestServeDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInflight: 2})

	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.Execute(context.Background(), &Query{Kind: "pr", Node: -1, TopK: 5, Tenant: "slow"})
		finished <- err
	}()
	<-started

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.Draining() })

	if code := getJSON(t, ts.URL+"/query?kind=bfs", nil); code != 503 {
		t.Fatalf("query during drain: %d, want 503", code)
	}
	if err := <-finished; err != nil {
		t.Fatalf("in-flight query killed by graceful drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeDrainHardStop checks the drain deadline: a query still running
// when the drain context expires is cancelled through its budget and the
// daemon still exits cleanly.
func TestServeDrainHardStop(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxInflight: 2, RequestTimeout: time.Hour})

	blocker := newBlockingCtx()
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		// A query whose caller never gives up: only the drain hard-stop can
		// end it.
		_, err := s.Execute(blocker, &Query{Kind: "pr", Node: -1, TopK: 5, Tenant: "stuck"})
		finished <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	select {
	case qerr := <-finished:
		// Either outcome is legal — the query may have finished before the
		// hard stop landed — but it must not hang, and a cancelled query
		// must surface typed.
		if qerr != nil && statusFor(qerr) != http.StatusGatewayTimeout {
			t.Fatalf("hard-stopped query surfaced untyped: %v", qerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query survived the drain hard-stop")
	}
	if err == nil {
		// Drain may succeed if the query finished within the deadline; that
		// is fine. A non-nil error must wrap the context cause.
		return
	}
	if statusFor(err) == http.StatusOK {
		t.Fatalf("drain error unmapped: %v", err)
	}
}

// blockingCtx never cancels on its own (unlike Background it has a real Done
// channel, so AfterFunc wiring is exercised).
type blockingCtx struct{ context.Context }

func (blockingCtx) Done() <-chan struct{} { return make(chan struct{}) }
func (blockingCtx) Err() error            { return nil }

func newBlockingCtx() context.Context {
	return blockingCtx{context.Background()}
}

func TestServeStatz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code := getJSON(t, ts.URL+"/query?kind=bfs", nil); code != 200 {
		t.Fatalf("query: %d", code)
	}
	var snap map[string]float64
	if code := getJSON(t, ts.URL+"/statz", &snap); code != 200 {
		t.Fatalf("statz: %d", code)
	}
	// requests = self-check + this one.
	if snap["serve.requests"] < 2 || snap["serve.ok"] < 2 {
		t.Fatalf("counters missing: %v", snap)
	}
	if _, ok := snap["serve.load"]; !ok {
		t.Fatalf("no load gauge: %v", snap)
	}
}
