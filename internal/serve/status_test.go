package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestStatusHandlerBodies pins the exact body and content type of every
// status endpoint through each lifecycle stage: before the self-check, ready,
// and draining.
func TestStatusHandlerBodies(t *testing.T) {
	s, err := New(testGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Liveness holds at every stage.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || body != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 \"ok\\n\"", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("healthz content type %q, want text/plain", ct)
	}

	// Readiness before the self-check.
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "self-check pending") {
		t.Errorf("pre-check readyz = %d %q", resp.StatusCode, body)
	}

	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 || body != "ready\n" {
		t.Errorf("ready readyz = %d %q, want 200 \"ready\\n\"", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("readyz content type %q, want text/plain", ct)
	}

	// /statz is JSON and carries the live gauges plus the trace-drop count.
	resp, body = get(t, ts.URL+"/statz")
	if resp.StatusCode != 200 {
		t.Fatalf("statz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("statz content type %q, want application/json", ct)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("statz body not JSON: %v", err)
	}
	for _, key := range []string{"serve.requests", "serve.inflight", "serve.queued", "serve.load", "trace_dropped"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("statz missing %q: %v", key, snap)
		}
	}

	s.BeginDrain()
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining readyz = %d %q", resp.StatusCode, body)
	}
}

// TestRequestIDEchoAndGenerate covers the request-identity contract: a
// client-supplied X-Request-ID is echoed on the response and embedded in the
// error envelope; without one the server generates a unique ID.
func TestRequestIDEchoAndGenerate(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	req, _ := http.NewRequest("GET", ts.URL+"/query?kind=bogus", nil)
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Errorf("client ID not echoed: %q", got)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if eb.RequestID != "client-abc-123" {
		t.Errorf("error envelope request_id = %q, want client-abc-123", eb.RequestID)
	}
	if eb.Error != "bad-request" {
		t.Errorf("error class = %q", eb.Error)
	}

	// Over-long IDs are replaced, never truncated into ambiguity.
	req, _ = http.NewRequest("GET", ts.URL+"/query?kind=bfs", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", maxRequestIDLen+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, "xxx") {
		t.Errorf("over-long ID handling: %q", got)
	}

	// No client ID: two requests get distinct generated IDs.
	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, _ := get(t, ts.URL+"/query?kind=bfs")
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no generated X-Request-ID")
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Errorf("generated IDs collide: %v", ids)
	}
}

// TestMetricsEndpoint checks the /metrics page parses under the independent
// Prometheus-format validator and that its histogram counts agree with the
// counter registry: one latency observation per request, by construction.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for _, q := range []string{"kind=bfs&tenant=alice", "kind=cc&tenant=bob", "kind=bogus"} {
		resp, _ := get(t, ts.URL+"/query?"+q)
		_ = resp
	}

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	if err := obs.ValidatePrometheus([]byte(body)); err != nil {
		t.Fatalf("metrics page fails exposition validation: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE egacs_serve_requests_total counter",
		"# TYPE egacs_serve_latency_ms histogram",
		"# TYPE egacs_serve_queue_depth histogram",
		"# TYPE egacs_serve_load gauge",
		"# TYPE egacs_serve_errors_by_class_total counter",
		`egacs_serve_latency_ms_bucket{tenant="alice",kernel="bfs-wl"`,
		"egacs_trace_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	reqs, _ := s.Registry().Get("serve.requests")
	if got := sumLatencyCount(t, body); got != reqs {
		t.Errorf("latency histogram count %v != serve.requests %v", got, reqs)
	}
}

// sumLatencyCount totals egacs_serve_latency_ms_count across all label sets.
func sumLatencyCount(t *testing.T, page string) float64 {
	t.Helper()
	total := 0.0
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, "egacs_serve_latency_ms_count") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad count line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestRequestLog drives Execute with a request log attached and checks the
// structured line: flat JSON with the identity, outcome and cost fields.
func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(testGraph(), Options{RequestLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := withRequestID(context.Background(), "rid-42")
	if _, err := s.Execute(ctx, &Query{Kind: "bfs", Src: 3, Node: -1, TopK: 1, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(ctx, &Query{Kind: "bfs", Src: 1 << 20, Node: -1, TopK: 1, Tenant: "alice"}); err == nil {
		t.Fatal("out-of-range src accepted")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // self-check + ok + rejected
		t.Fatalf("got %d log lines, want 3:\n%s", len(lines), buf.String())
	}
	var ok reqLogEntry
	if err := json.Unmarshal([]byte(lines[1]), &ok); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if ok.RequestID != "rid-42" || ok.Tenant != "alice" || ok.Kind != "bfs" ||
		ok.Kernel != "bfs-wl" || ok.Status != 200 || ok.Level != "normal" {
		t.Errorf("ok line fields: %+v", ok)
	}
	if ok.Cycles <= 0 || ok.Backend == "" || ok.Layout != "csr" || ok.TS == "" {
		t.Errorf("ok line cost/identity fields: %+v", ok)
	}
	var bad reqLogEntry
	if err := json.Unmarshal([]byte(lines[2]), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Status != 400 || bad.Error != "bad-request" || bad.Cycles != 0 {
		t.Errorf("rejected line fields: %+v", bad)
	}
}
