package serve

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/fault"
)

// Server-state rejections. Both map to 503: the condition is temporary and
// retrying elsewhere (or later) is the right client move.
var (
	// ErrDraining rejects new work while the server is shutting down.
	ErrDraining = errors.New("server draining")
	// ErrNotReady rejects work before the startup self-check has passed.
	ErrNotReady = errors.New("server not ready")
)

// statusFor maps the failure taxonomy to HTTP statuses — the service
// contract documented in DESIGN.md:
//
//	400  malformed request (parse failure, unknown kind, node out of range)
//	429  the tenant is over its own concurrency cap
//	503  the server cannot take the work right now (queue full, draining,
//	     not yet ready) — retry later, Retry-After is set
//	504  the request's deadline expired (or the client disconnected) before
//	     any execution path could serve
//	422  the run exceeded its compute budget (iteration/cycle caps, stall
//	     watchdog) on every permitted path — the query is too expensive at
//	     current limits, not a server fault
//	500  everything else: kernel panics, exhausted degradation chains,
//	     detected-but-unrecoverable corruption
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrTenantLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining), errors.Is(err, ErrNotReady):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// Deadline BudgetErrors wrap their context cause, so this catches
		// both a mid-kernel watchdog stop and an abandoned degradation
		// chain.
		return http.StatusGatewayTimeout
	case errors.Is(err, fault.ErrBudgetExceeded), errors.Is(err, fault.ErrNonConvergence):
		return http.StatusUnprocessableEntity
	default:
		// Includes ErrGateFailed and fault.ErrWALCorrupt: a rejected
		// compaction or damaged log is a server-side condition — the old
		// snapshot keeps serving, so 500 with a stable class, not a lie
		// about the client's request.
		return http.StatusInternalServerError
	}
}

// retryAfter reports whether the status warrants a Retry-After header.
func retryAfter(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// errClass buckets an error for metrics and the JSON error payload.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBadRequest):
		return "bad-request"
	case errors.Is(err, ErrTenantLimit):
		return "tenant-limit"
	case errors.Is(err, ErrQueueFull):
		return "queue-full"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrNotReady):
		return "not-ready"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	case errors.Is(err, fault.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, fault.ErrNonConvergence):
		return "non-convergence"
	case errors.Is(err, fault.ErrKernelPanic):
		return "kernel-panic"
	case errors.Is(err, ErrGateFailed):
		return "compaction-gate"
	case errors.Is(err, fault.ErrWALCorrupt):
		return "wal-corrupt"
	case errors.Is(err, fault.ErrCorruptGraph), errors.Is(err, fault.ErrInvariantViolation):
		return "corruption"
	default:
		return "internal"
	}
}
