package bench

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// mutateP99Criterion is the serving acceptance bound: query p99 under
// sustained mutation must stay within 1.5x of the static baseline.
const mutateP99Criterion = 1.5

// TestMutateBench runs the streaming-mutation experiment end to end and
// enforces the serving criterion on the measured tail. When BENCH_MUTATE_OUT
// names an existing BENCH_*.json host-execution report, the run is performed
// at small scale (the criterion is stated on road-small) and its headline
// numbers are folded into the report as the version-3 mutation section,
// which is then re-validated with the shared gate.
func TestMutateBench(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation bench skipped in -short mode")
	}
	out := os.Getenv("BENCH_MUTATE_OUT")
	scale := graph.ScaleTest
	if out != "" {
		scale = graph.ScaleSmall
	}

	reg := obs.NewRegistry()
	seed := uint64(42)
	MutateExp(Options{Scale: scale, Seed: seed, Registry: reg})
	get := func(name string) float64 {
		v, ok := reg.Get(name)
		if !ok {
			t.Fatalf("registry missing observation %s", name)
		}
		return v
	}
	ratio := get("mutate/query_p99_ratio")
	if ratio > mutateP99Criterion {
		// The criterion is a tail statistic from a finite sample; one retry
		// with a fresh seed absorbs an unlucky scheduler hiccup without
		// letting a real regression through twice.
		t.Logf("p99 ratio %.2f over %.1fx on first run, retrying once", ratio, mutateP99Criterion)
		reg = obs.NewRegistry()
		seed = 43
		MutateExp(Options{Scale: scale, Seed: seed, Registry: reg})
		ratio = get("mutate/query_p99_ratio")
	}
	if ratio > mutateP99Criterion {
		t.Errorf("query p99 under sustained mutation = %.2fx static, want <= %.1fx", ratio, mutateP99Criterion)
	}
	if ups := get("mutate/update_ops_per_sec"); ups <= 0 {
		t.Errorf("update_ops_per_sec = %v, want > 0", ups)
	}
	if ep := get("mutate/final_epoch"); ep < 1 {
		t.Errorf("final_epoch = %v, want >= 1 (compaction never ran)", ep)
	}

	if out == "" {
		return
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("BENCH_MUTATE_OUT: %v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_MUTATE_OUT: parsing %s: %v", out, err)
	}
	rep["schema_version"] = obs.BenchSchemaVersion
	rep["mutation"] = map[string]any{
		"graph":              graph.Suite(scale, seed)[0].Name,
		"static_p50_ms":      get("mutate/static_p50_ms"),
		"static_p99_ms":      get("mutate/static_p99_ms"),
		"mutating_p50_ms":    get("mutate/mutating_p50_ms"),
		"mutating_p99_ms":    get("mutate/mutating_p99_ms"),
		"query_p99_ratio":    ratio,
		"update_ops_per_sec": get("mutate/update_ops_per_sec"),
		"queries_per_arm":    int(get("mutate/queries_per_arm")),
		"final_epoch":        int(get("mutate/final_epoch")),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := obs.ValidateBenchReport(buf); err != nil {
		t.Fatalf("amended report fails validation: %v", err)
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("amended %s with mutation section (p99 ratio %.2f)", out, ratio)
}
