// Package bench regenerates every table and figure of the paper's evaluation
// (Section IV): task-launch overheads (Tables II, III), lane utilization
// (Table IV), cooperative-conversion push counts (Table V), gather latency
// (Table VI), framework comparison (Fig. 4, Table X), per-optimization
// breakdown (Fig. 5), SIMD/MT attribution (Fig. 6), SIMD width and AVX
// version sweeps (Fig. 7), scalability (Fig. 8), CPU-vs-GPU (Fig. 9), SMT
// (Fig. 10) and the virtual-memory study (Table IX).
//
// Each experiment returns renderable text tables; absolute numbers come from
// the machine model, so the claims to compare against the paper are the
// shapes: orderings, ratios and crossovers (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
)

// RunBudget bounds every experiment run that does not set its own budget: a
// regression that stops a kernel from converging fails the experiment with a
// typed error instead of spinning the suite forever. The iteration cap is
// far above any legitimate run on the evaluation inputs (deep road grids
// need thousands of BFS iterations; none need a million).
var RunBudget = fault.Budget{MaxIters: 1 << 20, StallWindow: 4096}

// Table is one renderable result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options configure an experiment run.
type Options struct {
	// Scale selects input sizes (default ScaleSmall).
	Scale graph.Scale
	// Seed drives the graph generators.
	Seed uint64
	// Quick restricts the benchmark set to bfs-wl/sssp-nf/pr for fast
	// regeneration passes.
	Quick bool
	// Registry, when set, collects each experiment's headline numbers
	// (lane utilization, push reductions, geomean speedups) under
	// "<experiment>/<detail>" names so reports like BENCH_*.json can carry
	// them next to the wall-clock rows.
	Registry *obs.Registry
	// Layout, SellC and SellSigma configure the comparison arm of the
	// layout experiment (see LayoutExp); the paper-reproduction tables
	// always run the calibrated CSR configuration regardless.
	Layout    core.Layout
	SellC     int
	SellSigma int
	// Backend selects the kernel backend for every simulated run (default
	// auto). Modeled numbers are backend-invariant by construction — the
	// differential suite in internal/core enforces bit-identity — so this
	// only changes how long table regeneration takes; pin "interp" to
	// regenerate on the oracle.
	Backend core.Backend
}

// observe records a headline number into the attached registry; without one
// it is a no-op, so experiments sprinkle observations freely.
func (o Options) observe(name string, v float64) {
	if o.Registry != nil {
		o.Registry.Observe(name, v)
	}
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// graphs returns the three paper input families at the configured scale,
// named road/rmat/random.
func (o Options) graphs() []*graph.CSR {
	return graph.Suite(o.Scale, o.Seed)
}

// benchSet returns the benchmark list for this run.
func (o Options) benchSet() []*kernels.Benchmark {
	if !o.Quick {
		return kernels.All()
	}
	var out []*kernels.Benchmark
	for _, n := range []string{"bfs-wl", "sssp-nf", "pr"} {
		b, err := kernels.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// Experiment couples an id with its generator.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) []*Table
}

// Experiments lists all regenerable tables and figures in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "CUDA-to-ISPC construct mapping (documentation)", Table1},
		{"table2", "empty task-launch overhead per tasking system", Table2},
		{"table3", "BFS-WL launch overhead with/without iteration outlining", Table3},
		{"table4", "SIMD lane utilization and dynamic instructions", Table4},
		{"table5", "atomic worklist pushes under cooperative conversion", Table5},
		{"table6", "scalar vs gather load-to-use latency by cache level", Table6},
		{"fig4", "framework comparison: speedup over serial (and Table X raw times)", Fig4},
		{"fig5", "effect of individual throughput optimizations", Fig5},
		{"fig6", "contributions of SIMD, multi-tasking and optimizations", Fig6},
		{"fig7", "SIMD width and AVX version sweep", Fig7},
		{"fig8", "scalability with core count", Fig8},
		{"fig9", "CPU vs GPU", Fig9},
		{"fig10", "SMT effect", Fig10},
		{"table9", "virtual memory: footprint and limited-memory slowdown", Table9},
		{"layout", "graph layouts: CSR vs SELL-C-sigma per kernel and family (extension)", LayoutExp},
		{"ablation", "design-knob ablations: NP threshold, fiber cap, SSSP delta (extension)", Ablation},
		{"ext-neon", "ARM NEON target evaluation (the paper's future work, as an extension)", NeonExt},
		{"mutate", "streaming mutations: update throughput and query latency under sustained mutation (extension)", MutateExp},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// --- shared helpers ---

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// runMS executes one EGACS configuration and returns modeled milliseconds.
func runMS(b *kernels.Benchmark, g *graph.CSR, cfg core.Config) float64 {
	if !cfg.Budget.Enabled() {
		cfg.Budget = RunBudget
	}
	res, err := core.Run(b, g, cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %s on %s: %v", b.Name, g.Name, err))
	}
	return res.TimeMS
}

// prep caches symmetrized graphs per benchmark.
type prepCache struct {
	sym map[string]*graph.CSR
}

func newPrepCache() *prepCache { return &prepCache{sym: map[string]*graph.CSR{}} }

func (p *prepCache) graph(b *kernels.Benchmark, g *graph.CSR) *graph.CSR {
	if !b.NeedsSymmetric {
		return g
	}
	if s, ok := p.sym[g.Name]; ok {
		return s
	}
	s := g.Symmetrize()
	p.sym[g.Name] = s
	return s
}

// serialCache memoizes serial reference times per (machine, bench, graph).
type serialCache struct {
	times map[string]float64
}

func newSerialCache() *serialCache { return &serialCache{times: map[string]float64{}} }

func (s *serialCache) ms(m *machine.Config, b *kernels.Benchmark, g *graph.CSR, src int32) float64 {
	key := m.Name + "/" + b.Name + "/" + g.Name
	if t, ok := s.times[key]; ok {
		return t
	}
	cfg := core.SerialConfig(m)
	cfg.Src = src
	t := runMS(b, g, cfg)
	s.times[key] = t
	return t
}

// shortName renders road-NxN as "road" etc. for row labels.
func shortName(g *graph.CSR) string {
	switch {
	case strings.HasPrefix(g.Name, "road"):
		return "road"
	case strings.HasPrefix(g.Name, "rmat"):
		return "rmat"
	case strings.HasPrefix(g.Name, "random"):
		return "random"
	}
	return g.Name
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
