package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/vec"
)

// Table4 reproduces the lane-utilization study (Table IV): inner-loop SIMD
// lane utilization and dynamic instruction counts, unoptimized vs fully
// optimized, on the road and rmat inputs.
func Table4(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	bfs := o.benchSet()[0]
	t := &Table{
		ID:     "table4",
		Title:  "SIMD lane utilization (bfs-wl, avx512-i32x16, Intel)",
		Header: []string{"input", "util-unopt", "util-opt", "instr-unopt", "instr-opt", "instr-reduction"},
		Notes: []string{
			"optimization raises utilization and cuts dynamic instructions, most on the skewed rmat input",
		},
	}
	unopt := opt.Options{IO: true}
	all := opt.All()
	w := m.PreferredTarget.Width
	for _, g := range o.graphs()[:2] { // road, rmat
		src := g.MaxDegreeNode()
		r1, err := core.Run(bfs, g, core.Config{Backend: o.Backend, Machine: m, Opts: &unopt, Src: src})
		if err != nil {
			panic(err)
		}
		r2, err := core.Run(bfs, g, core.Config{Backend: o.Backend, Machine: m, Opts: &all, Src: src})
		if err != nil {
			panic(err)
		}
		o.observe("table4/"+shortName(g)+"/lane_util_unopt", r1.Stats.LaneUtilization(w))
		o.observe("table4/"+shortName(g)+"/lane_util_opt", r2.Stats.LaneUtilization(w))
		o.observe("table4/"+shortName(g)+"/instr_reduction",
			float64(r1.Stats.Instructions)/float64(r2.Stats.Instructions))
		t.Rows = append(t.Rows, []string{
			shortName(g),
			fmt.Sprintf("%.0f%%", 100*r1.Stats.LaneUtilization(w)),
			fmt.Sprintf("%.0f%%", 100*r2.Stats.LaneUtilization(w)),
			fmt.Sprintf("%d", r1.Stats.Instructions),
			fmt.Sprintf("%d", r2.Stats.Instructions),
			f2(float64(r1.Stats.Instructions) / float64(r2.Stats.Instructions)),
		})
	}
	return []*Table{t}
}

// Table5 reproduces the cooperative-conversion push-count study (Table V):
// atomic worklist pushes under no CC, task-level CC, and (where applicable)
// fiber-level CC.
func Table5(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	t := &Table{
		ID:     "table5",
		Title:  "atomic worklist pushes (rmat input, Intel, NP always on)",
		Header: []string{"benchmark", "unopt", "task-CC", "fiber-CC", "task-CC-reduction", "fiber-CC-extra"},
		Notes: []string{
			"task-level CC cuts pushes by about the SIMD width; fiber-level CC applies to bfs-cx and bfs-hb",
		},
	}
	g := o.graphs()[1] // rmat
	src := g.MaxDegreeNode()
	pc := newPrepCache()
	for _, b := range o.benchSet() {
		gg := pc.graph(b, g)
		unopt := opt.Options{NP: true, IO: true}
		taskCC := opt.Options{NP: true, IO: true, CC: true}
		fiberCC := opt.All()
		r0, err := core.Run(b, gg, core.Config{Backend: o.Backend, Machine: m, Opts: &unopt, Src: src})
		if err != nil {
			panic(err)
		}
		if r0.Stats.AtomicPushes == 0 {
			continue // no worklist pushes in this benchmark
		}
		r1, err := core.Run(b, gg, core.Config{Backend: o.Backend, Machine: m, Opts: &taskCC, Src: src})
		if err != nil {
			panic(err)
		}
		r2, err := core.Run(b, gg, core.Config{Backend: o.Backend, Machine: m, Opts: &fiberCC, Src: src})
		if err != nil {
			panic(err)
		}
		fiberCell := "n/a"
		extra := "-"
		if b.Prog.KernelByName("expand") != nil { // fiber-CC eligible
			fiberCell = fmt.Sprintf("%d", r2.Stats.AtomicPushes)
			extra = f1(float64(r1.Stats.AtomicPushes) / float64(r2.Stats.AtomicPushes))
			o.observe("table5/"+b.Name+"/fiber_cc_extra_reduction",
				float64(r1.Stats.AtomicPushes)/float64(r2.Stats.AtomicPushes))
		}
		o.observe("table5/"+b.Name+"/task_cc_push_reduction",
			float64(r0.Stats.AtomicPushes)/float64(r1.Stats.AtomicPushes))
		t.Rows = append(t.Rows, []string{
			b.Name,
			fmt.Sprintf("%d", r0.Stats.AtomicPushes),
			fmt.Sprintf("%d", r1.Stats.AtomicPushes),
			fiberCell,
			f1(float64(r0.Stats.AtomicPushes) / float64(r1.Stats.AtomicPushes)),
			extra,
		})
	}
	return []*Table{t}
}

// Fig5 reproduces the per-optimization breakdown (Fig. 5): speedup of each
// optimization combination over the unoptimized SIMD version, per benchmark
// and input, on the Intel machine.
func Fig5(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	configs := opt.Configs()
	header := []string{"benchmark", "input"}
	for _, c := range configs[1:] {
		header = append(header, c.Name)
	}
	t := &Table{
		ID:     "fig5",
		Title:  "speedup over unoptimized SIMD (Intel, 16 tasks)",
		Header: header,
		Notes: []string{
			"individual optimizations can slow some kernel/input pairs down (paper range 0.62x-6.13x)",
		},
	}
	pc := newPrepCache()
	var all []float64
	for _, b := range o.benchSet() {
		for _, g := range o.graphs() {
			gg := pc.graph(b, g)
			src := gg.MaxDegreeNode()
			base := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Src: src, Opts: &configs[0].Opts})
			row := []string{b.Name, shortName(g)}
			for _, c := range configs[1:] {
				c := c
				ms := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Src: src, Opts: &c.Opts})
				sp := base / ms
				row = append(row, f2(sp))
				if c.Name == "io+cc+np+fibers" {
					all = append(all, sp)
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	o.observe("fig5/geomean_all_opts_speedup", geomean(all))
	t.Notes = append(t.Notes, fmt.Sprintf("geomean all-optimizations speedup: %.2fx (paper: 1.67x over plain SIMD)", geomean(all)))
	return []*Table{t}
}

// Fig6 reproduces the SIMD/multi-tasking attribution (Fig. 6): speedups of
// +SIMD, +MT, +MT+SIMD and +MT+SIMD+Opt over the serial version, geomean
// across benchmarks, per input.
func Fig6(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	t := &Table{
		ID:     "fig6",
		Title:  "speedup over serial: SIMD vs multi-tasking (Intel)",
		Header: []string{"input", "+SIMD", "+MT", "+MT+SIMD", "+MT+SIMD+Opt"},
		Notes: []string{
			"SIMD and MT compose; optimizations lift the combination further (paper: 8.06x/14.08x/17.02x for +MT+SIMD+Opt)",
		},
	}
	pc := newPrepCache()
	sc := newSerialCache()
	none := opt.None()
	allOpt := opt.All()
	for _, g := range o.graphs() {
		var simd, mt, mtSimd, mtSimdOpt []float64
		for _, b := range o.benchSet() {
			gg := pc.graph(b, g)
			src := gg.MaxDegreeNode()
			serial := sc.ms(m, b, gg, src)
			// +SIMD: one task, vector target, no optimizations.
			s1 := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Tasks: 1, NoSMT: true, Opts: &none, Src: src})
			// +MT: 16 tasks, scalar target.
			s2 := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Target: vec.TargetScalar, Opts: &none, Src: src})
			// +MT+SIMD.
			s3 := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Opts: &none, Src: src})
			// +MT+SIMD+Opt.
			s4 := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Opts: &allOpt, Src: src})
			simd = append(simd, serial/s1)
			mt = append(mt, serial/s2)
			mtSimd = append(mtSimd, serial/s3)
			mtSimdOpt = append(mtSimdOpt, serial/s4)
		}
		o.observe("fig6/"+shortName(g)+"/mt_simd_opt_speedup", geomean(mtSimdOpt))
		t.Rows = append(t.Rows, []string{
			shortName(g), f2(geomean(simd)), f2(geomean(mt)),
			f2(geomean(mtSimd)), f2(geomean(mtSimdOpt)),
		})
	}
	return []*Table{t}
}
