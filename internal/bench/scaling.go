package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// Fig8 reproduces the scalability study (Fig. 8): speedup over serial as
// cores (tasks pinned one per core, no SMT) increase, on all three CPU
// machine models, geomean across benchmarks and inputs.
func Fig8(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, mc := range []struct {
		m     *machine.Config
		cores []int
	}{
		{machine.Intel8(), []int{1, 2, 4, 8}},
		{machine.AMD32(), []int{1, 2, 4, 8, 16, 32}},
		{machine.Phi72(), []int{1, 2, 4, 9, 18, 36, 72}},
	} {
		t := &Table{
			ID:     "fig8",
			Title:  "speedup over serial vs cores (no SMT), " + mc.m.Name,
			Header: []string{"cores", "speedup"},
		}
		pc := newPrepCache()
		sc := newSerialCache()
		for _, cores := range mc.cores {
			var sp []float64
			for _, b := range o.benchSet() {
				for _, g := range o.graphs() {
					gg := pc.graph(b, g)
					src := gg.MaxDegreeNode()
					serial := sc.ms(mc.m, b, gg, src)
					ms := runMS(b, gg, core.Config{Backend: o.Backend,
						Machine: mc.m, Tasks: cores, NoSMT: true, Src: src,
					})
					sp = append(sp, serial/ms)
				}
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cores), f2(geomean(sp))})
		}
		t.Notes = append(t.Notes,
			"near-linear at low counts; SIMD contributes extra scaling on top (paper maxima: 65x Intel, 132x AMD, 112x Phi)")
		tables = append(tables, t)
	}
	return tables
}

// Fig10 reproduces the SMT study (Fig. 10): with a given number of cores
// enabled, speedup of running SMT-many tasks versus one task per core, and
// both over serial, geomean across benchmarks and inputs.
func Fig10(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, mc := range []struct {
		m     *machine.Config
		cores []int
	}{
		{machine.Intel8(), []int{2, 4, 8}},
		{machine.AMD32(), []int{2, 8, 32}},
		{machine.Phi72(), []int{2, 18, 72}},
	} {
		t := &Table{
			ID:     "fig10",
			Title:  "SMT effect, " + mc.m.Name,
			Header: []string{"cores", "noSMT-speedup", "SMT-speedup", "SMT/noSMT"},
		}
		pc := newPrepCache()
		sc := newSerialCache()
		for _, cores := range mc.cores {
			var noSMT, smt []float64
			for _, b := range o.benchSet() {
				for _, g := range o.graphs() {
					gg := pc.graph(b, g)
					src := gg.MaxDegreeNode()
					serial := sc.ms(mc.m, b, gg, src)
					// No SMT: one task per core. The modeled machine is
					// truncated to the enabled cores so the contention term
					// scales the way the paper's partial-machine runs do.
					mm := *mc.m
					mm.Cores = cores
					off := runMS(b, gg, core.Config{Backend: o.Backend,
						Machine: &mm, Tasks: cores, NoSMT: true, Src: src,
					})
					on := runMS(b, gg, core.Config{Backend: o.Backend,
						Machine: &mm, Tasks: cores * mc.m.SMTWays, Src: src,
					})
					noSMT = append(noSMT, serial/off)
					smt = append(smt, serial/on)
				}
			}
			gOff, gOn := geomean(noSMT), geomean(smt)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", cores), f2(gOff), f2(gOn), f2(gOn / gOff),
			})
		}
		t.Notes = append(t.Notes,
			"SMT helps at low core counts and fades (or reverts) as memory contention grows; Phi at 72c slows down (paper: 0.58x)")
		tables = append(tables, t)
	}
	return tables
}
