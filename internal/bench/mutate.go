package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// mutateQueryCount is the per-arm sample count for the latency percentiles.
const mutateQueryCount = 200

// MutateExp measures the streaming-mutation extension: sustained update
// throughput through the WAL-backed delta overlay, and query latency served
// from pinned snapshots while mutation and compaction run concurrently,
// against a static-graph baseline on the same input. The headline number is
// the p99 ratio — snapshot isolation promises queries never wait on writers,
// so sustained mutation should cost almost nothing at the tail.
func MutateExp(o Options) []*Table {
	o = o.withDefaults()
	g := o.graphs()[0] // road: the family the serving criterion is stated on
	g.SortAdjacency()

	// Static baseline: the same server stack with mutations disabled.
	static, err := serve.New(g, serve.Options{Backend: o.Backend})
	if err != nil {
		panic(fmt.Sprintf("bench: mutate: %v", err))
	}
	staticLat := measureQueryLatency(static, g.NumNodes())

	// Mutating arm: WAL-backed store, group commit, auto-compaction — while
	// the same query mix runs against it.
	dir, err := os.MkdirTemp("", "egacs-mutate-bench")
	if err != nil {
		panic(fmt.Sprintf("bench: mutate: %v", err))
	}
	defer os.RemoveAll(dir)
	store, err := graph.CreateMutStore(dir, g, graph.StoreOptions{FsyncEvery: 8})
	if err != nil {
		panic(fmt.Sprintf("bench: mutate: %v", err))
	}
	defer store.Close()
	mut, err := serve.New(store.Delta().Base(), serve.Options{
		Backend: o.Backend, Store: store, CompactEvery: 64,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: mutate: %v", err))
	}
	ops, err := graph.GenMutations(g, o.Seed, graph.MutGenOptions{
		Count: 40000, DeleteFrac: 0.25, MaxWeight: 16,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: mutate: %v", err))
	}

	// Phase A — update throughput: drive the append+compact pipeline flat out
	// with no query load. This is the honest ceiling; running it concurrently
	// with the latency arm would just measure CPU contention on small hosts.
	const batchOps = 16
	burst := ops[:len(ops)/2]
	start := time.Now()
	for i := 0; i+batchOps <= len(burst); i += batchOps {
		if _, err := mut.Mutate(context.Background(), burst[i:i+batchOps]); err != nil {
			panic(fmt.Sprintf("bench: mutate: append: %v", err))
		}
	}
	burstOps := len(burst) / batchOps * batchOps
	upsPerSec := float64(burstOps) / time.Since(start).Seconds()

	// Phase B — query latency under sustained mutation: the mutator runs at a
	// steady paced rate (a batch every few milliseconds, like a real ingest
	// stream) while the query mix executes. Queries pin their snapshot and
	// never take the mutation lock, so the tail should barely move.
	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		applied int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		rest := ops[len(ops)/2:]
		for i := 0; i+batchOps <= len(rest); i += batchOps {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if _, err := mut.Mutate(context.Background(), rest[i:i+batchOps]); err != nil {
				panic(fmt.Sprintf("bench: mutate: append: %v", err))
			}
			applied += batchOps
		}
	}()
	mutLat := measureQueryLatency(mut, g.NumNodes())
	close(stop)
	wg.Wait()

	ratio := mutLat.p99 / staticLat.p99
	compactions, _ := mut.Registry().Get("serve.mut.compactions")
	st := mut.MutStats()

	o.observe("mutate/static_p50_ms", staticLat.p50)
	o.observe("mutate/static_p99_ms", staticLat.p99)
	o.observe("mutate/mutating_p50_ms", mutLat.p50)
	o.observe("mutate/mutating_p99_ms", mutLat.p99)
	o.observe("mutate/query_p99_ratio", ratio)
	o.observe("mutate/update_ops_per_sec", upsPerSec)
	o.observe("mutate/ops_applied", float64(applied))
	o.observe("mutate/compactions", compactions)
	o.observe("mutate/final_epoch", float64(mut.Epoch()))
	o.observe("mutate/queries_per_arm", float64(mutateQueryCount))

	lat := &Table{
		ID:     "mutate",
		Title:  "query latency under sustained mutation (bfs on " + g.Name + ", wall-clock)",
		Header: []string{"arm", "p50 ms", "p99 ms", "p99 vs static"},
		Rows: [][]string{
			{"static", f3(staticLat.p50), f3(staticLat.p99), "1.00"},
			{"mutating", f3(mutLat.p50), f3(mutLat.p99), f2(ratio)},
		},
		Notes: []string{
			fmt.Sprintf("%d queries per arm; mutating arm runs concurrent paced WAL appends (group commit, fsync every 8 batches) and gated compaction every 64 batches", mutateQueryCount),
			"queries pin a snapshot and never take the mutation lock; the serving criterion is p99 <= 1.5x static",
		},
	}
	thr := &Table{
		ID:     "mutate-throughput",
		Title:  "sustained update throughput through the WAL-backed delta overlay",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"burst mutations applied", fmt.Sprint(burstOps)},
			{"burst updates/sec", f1(upsPerSec)},
			{"paced mutations during query arm", fmt.Sprint(applied)},
			{"compactions", fmt.Sprint(int(compactions))},
			{"final epoch", fmt.Sprint(mut.Epoch())},
			{"WAL bytes live", fmt.Sprint(st.WALBytes)},
			{"batches pending", fmt.Sprint(st.Pending)},
		},
		Notes: []string{
			"each compaction folds the delta, runs sentinel-query validation (bfs, cc, incremental pr-delta) on the folded graph, persists a new snapshot and swaps it atomically",
		},
	}
	return []*Table{lat, thr}
}

// latencyStats summarizes one arm's query wall-clock samples.
type latencyStats struct{ p50, p99 float64 }

// measureQueryLatency runs the fixed query mix (BFS from rotating sources)
// and returns wall-clock percentiles. A short warmup absorbs one-time
// engine-pool and symmetrization costs so both arms measure steady state.
func measureQueryLatency(s *serve.Server, n int32) latencyStats {
	ctx := context.Background()
	run := func(i int) float64 {
		q := &serve.Query{Kind: "bfs", Src: int32(i*31) % n, Node: -1, TopK: 3, Tenant: "bench"}
		res, err := s.Execute(ctx, q)
		if err != nil {
			panic(fmt.Sprintf("bench: mutate: query: %v", err))
		}
		return res.WallMS
	}
	for i := 0; i < 5; i++ {
		run(i)
	}
	samples := make([]float64, mutateQueryCount)
	for i := range samples {
		samples[i] = run(i)
	}
	sort.Float64s(samples)
	pct := func(q float64) float64 {
		idx := int(q * float64(len(samples)-1))
		return samples[idx]
	}
	return latencyStats{p50: pct(0.50), p99: pct(0.99)}
}
