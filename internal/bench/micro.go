package bench

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/spmd"
	"repro/internal/vec"
)

// Table1 renders the paper's CUDA-to-ISPC construct mapping (Table I),
// extended with a column locating each construct in this reproduction.
func Table1(o Options) []*Table {
	return []*Table{{
		ID:     "table1",
		Title:  "CUDA construct mapping (paper Table I, extended)",
		Header: []string{"CUDA", "ISPC", "executed-on-CPU-by", "this-repo"},
		Rows: [][]string{
			{"CUDA thread", "program instance", "SIMD lane", "vec lane + lane mask bit"},
			{"warp", "ISPC task", "OS thread", "spmd.TaskCtx (cooperative goroutine)"},
			{"thread block", "(none; fibers emulate)", "n/a", "codegen fiber loop (Kernel.Fibers)"},
			{"kernel launch", "launch statement", "tasking system", "spmd.Engine.Launch + TaskSystem"},
			{"__syncthreads", "(none; fiber partition)", "n/a", "fiber loop partitioning / tc.Barrier"},
			{"atomicAdd", "atomic_add_global", "lock-prefixed RMW", "TaskCtx.AtomicAdd*"},
			{"warp ballot/population", "popcnt(lanemask())", "movemask+popcnt", "vec.Mask.PopCount"},
			{"stream compaction", "packed_store_active", "vpcompressd/shuffle", "TaskCtx.PackedStore"},
		},
		Notes: []string{"static documentation table; nothing is measured"},
	}}
}

// Table2 reproduces the empty-launch tasking microbenchmark (Table II):
// average time per launch when tasks do nothing, with as many tasks as
// hardware threads, per tasking system.
func Table2(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	t := &Table{
		ID:     "table2",
		Title:  "time per empty task launch (Intel, 16 tasks), averaged over 10000 launches",
		Header: []string{"task-system", "ns/launch"},
		Notes: []string{
			"pthread is the slowest system and cilk the fastest, as in the paper",
		},
	}
	const launches = 10000
	for _, ts := range spmd.TaskSystems() {
		e := spmd.New(m, m.PreferredTarget, m.DefaultTasks)
		e.TaskSys = ts
		for i := 0; i < launches; i++ {
			e.LaunchEmpty(m.DefaultTasks)
		}
		t.Rows = append(t.Rows, []string{ts.Name, f1(e.TimeNS() / launches)})
	}
	return []*Table{t}
}

// Table3 reproduces Table III: BFS-WL on the road graph per tasking system,
// with and without Iteration Outlining. IO collapses the differences.
func Table3(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	g := o.graphs()[0] // road
	bfs := o.benchSet()[0]
	src := g.MaxDegreeNode()
	t := &Table{
		ID:     "table3",
		Title:  "BFS-WL (road) execution time by tasking system, ms",
		Header: []string{"task-system", "no-IO", "with-IO", "overhead-removed"},
		Notes: []string{
			"openmp has the lowest real-launch overhead; IO makes all systems equal",
		},
	}
	noIO := opt.Options{NP: true, CC: true}
	withIO := opt.Options{NP: true, CC: true, IO: true}
	for _, ts := range spmd.TaskSystems() {
		ts := ts
		base := runMS(bfs, g, core.Config{Backend: o.Backend, Machine: m, TaskSys: &ts, Opts: &noIO, Src: src})
		outl := runMS(bfs, g, core.Config{Backend: o.Backend, Machine: m, TaskSys: &ts, Opts: &withIO, Src: src})
		t.Rows = append(t.Rows, []string{ts.Name, f3(base), f3(outl), f3(base - outl)})
	}
	return []*Table{t}
}

// Table6 reproduces the gather/scalar load-to-use microbenchmark (Table VI):
// random loads from arrays sized to each cache level, per word, in ns.
func Table6(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, m := range []*machine.Config{machine.Intel8(), machine.AMD32(), machine.Phi72()} {
		t := &Table{
			ID:     "table6",
			Title:  "per-word load-to-use latency (ns), " + m.Name,
			Header: []string{"level", "scalar", "gather"},
		}
		// Array sizes chosen to sit inside each level.
		sizes := map[string]int{
			"L1":  m.L1Size / 2 / 4,
			"L2":  m.L2Size / 2 / 4,
			"L3":  (m.L2Size + (m.L3Size-m.L2Size)/2) / 4,
			"Mem": m.L3Size * 4 / 4,
		}
		if m.L3Size == 0 {
			sizes["L3"] = m.L2Size
		}
		for _, lvl := range []string{"L1", "L2", "L3", "Mem"} {
			n := sizes[lvl]
			scalarNS := measureLoads(m, vec.TargetScalar, n)
			gatherNS := measureLoads(m, m.PreferredTarget, n)
			t.Rows = append(t.Rows, []string{lvl, f2(scalarNS), f2(gatherNS)})
		}
		if m.Name == machine.Phi72().Name {
			t.Notes = append(t.Notes,
				"Phi is the only machine whose gather beats scalar loads at L1 (weak out-of-order)")
		}
		tables = append(tables, t)
	}
	return tables
}

// measureLoads sweeps random words from an n-word array after a warmup pass
// and returns the modeled per-word latency in ns.
func measureLoads(m *machine.Config, target vec.Target, n int) float64 {
	e := spmd.New(m, target, 1)
	a := e.AllocI("buf", n)
	state := uint64(99)
	next := func() int32 {
		state = state*6364136223846793005 + 1442695040888963407
		return int32(state % uint64(n))
	}
	// Warm the working set in its own launch so the measured launch only
	// contains the random sweep.
	e.Launch(1, func(tc *spmd.TaskCtx) {
		for i := 0; i < n; i++ {
			tc.ScalarLoadI(a, int32(i))
		}
	})
	warmNS := e.TimeNS()
	const rounds = 2000
	words := 0
	e.Launch(1, func(tc *spmd.TaskCtx) {
		if target.Width == 1 {
			for i := 0; i < rounds*8; i++ {
				tc.ScalarLoadI(a, next())
				words++
			}
			return
		}
		for i := 0; i < rounds; i++ {
			var idx vec.Vec
			for l := 0; l < target.Width; l++ {
				idx[l] = next()
			}
			tc.GatherI(a, idx, vec.FullMask(target.Width), vec.Vec{}, false)
			words += target.Width
		}
	})
	launchNS := e.TaskSys.LaunchCostNS(1, false)
	return (e.TimeNS() - warmNS - launchNS) / float64(words)
}
