package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
)

func quickOpts() Options {
	return Options{Scale: graph.ScaleTest, Quick: true, Seed: 11}
}

// smallOpts gives working sets past L1 so SIMD-vs-scalar and scaling shapes
// are meaningful (tiny L1-resident graphs sit in the gather-penalty regime).
func smallOpts() Options {
	return Options{Scale: graph.ScaleSmall, Quick: true, Seed: 11}
}

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", cell)
	}
	return v
}

func findRow(tb *Table, col0 string) []string {
	for _, r := range tb.Rows {
		if r[0] == col0 {
			return r
		}
	}
	return nil
}

// TestAllExperimentsRun executes every experiment at test scale and checks
// each renders non-empty output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		tables := e.Run(quickOpts())
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", e.ID, tb.Title)
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			if !strings.Contains(buf.String(), tb.ID) {
				t.Errorf("%s: render missing id", e.ID)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestTable2Shape: pthread slowest, cilk fastest.
func TestTable2Shape(t *testing.T) {
	tb := Table2(quickOpts())[0]
	vals := map[string]float64{}
	for _, r := range tb.Rows {
		vals[r[0]] = parse(t, r[1])
	}
	if !(vals["cilk"] < vals["openmp"] && vals["openmp"] < vals["pthread"]) {
		t.Errorf("launch ordering wrong: %v", vals)
	}
}

// TestTable3Shape: IO removes the inter-system differences.
func TestTable3Shape(t *testing.T) {
	tb := Table3(quickOpts())[0]
	var noIO, withIO []float64
	for _, r := range tb.Rows {
		noIO = append(noIO, parse(t, r[1]))
		withIO = append(withIO, parse(t, r[2]))
	}
	spreadOf := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	if spreadOf(withIO) >= spreadOf(noIO) {
		t.Errorf("IO did not shrink the inter-system spread: %v vs %v", withIO, noIO)
	}
	for i := range noIO {
		if withIO[i] > noIO[i]*1.01 {
			t.Errorf("IO slowed system %d: %v -> %v", i, noIO[i], withIO[i])
		}
	}
}

// TestTable4Shape: optimization raises utilization on both inputs, and cuts
// dynamic instructions on the skewed rmat input (the paper's 18x example;
// on the uniform low-degree road graph the scheduler overhead can offset the
// small win, so only utilization is asserted there).
func TestTable4Shape(t *testing.T) {
	tb := Table4(quickOpts())[0]
	for _, r := range tb.Rows {
		if parse(t, r[2]) <= parse(t, r[1]) {
			t.Errorf("%s: utilization did not improve: %v -> %v", r[0], r[1], r[2])
		}
		if r[0] == "rmat" && parse(t, r[5]) <= 1 {
			t.Errorf("rmat: no dynamic-instruction reduction")
		}
	}
}

// TestTable5Shape: task CC reduces pushes by roughly the SIMD width.
func TestTable5Shape(t *testing.T) {
	tb := Table5(quickOpts())[0]
	if len(tb.Rows) == 0 {
		t.Fatal("no push rows")
	}
	for _, r := range tb.Rows {
		if parse(t, r[4]) < 2 {
			t.Errorf("%s: task-CC reduction %s too small", r[0], r[4])
		}
	}
}

// TestTable6Shape: costs grow with depth; Intel gather > scalar at L1; Phi
// reversed.
func TestTable6Shape(t *testing.T) {
	tables := Table6(quickOpts())
	if len(tables) != 3 {
		t.Fatalf("want 3 machines, got %d", len(tables))
	}
	for _, tb := range tables {
		prevScalar := 0.0
		for _, r := range tb.Rows {
			s := parse(t, r[1])
			if s < prevScalar {
				t.Errorf("%s: scalar latency not increasing at %s", tb.Title, r[0])
			}
			prevScalar = s
		}
	}
	intel, phi := tables[0], tables[2]
	iL1 := findRow(intel, "L1")
	if parse(t, iL1[2]) <= parse(t, iL1[1]) {
		t.Error("Intel L1 gather should cost more per word than scalar")
	}
	pL1 := findRow(phi, "L1")
	if parse(t, pL1[2]) >= parse(t, pL1[1]) {
		t.Error("Phi L1 gather should cost less per word than scalar")
	}
}

// TestFig6Shape: +MT+SIMD+Opt dominates each partial configuration.
func TestFig6Shape(t *testing.T) {
	tb := Fig6(smallOpts())[0]
	for _, r := range tb.Rows {
		full := parse(t, r[4])
		for c := 1; c <= 3; c++ {
			if full < parse(t, r[c]) {
				t.Errorf("%s: full config %v slower than partial col %d %v", r[0], full, c, r[c])
			}
		}
		if parse(t, r[1]) <= 1 {
			t.Errorf("%s: +SIMD gives no speedup", r[0])
		}
	}
}

// TestFig7Shape: newer AVX at the same width executes fewer instructions.
func TestFig7Shape(t *testing.T) {
	tables := Fig7(quickOpts())
	for _, tb := range tables {
		get := func(name string) float64 {
			r := findRow(tb, name)
			if r == nil {
				t.Fatalf("missing row %s", name)
			}
			return parse(t, r[2])
		}
		if !(get("avx512-i32x16") < get("avx2-i32x16") && get("avx2-i32x16") < get("avx1-i32x16")) {
			t.Errorf("%s: instruction ordering wrong", tb.Title)
		}
	}
}

// TestFig8Shape: speedup grows with cores on Intel.
func TestFig8Shape(t *testing.T) {
	tables := Fig8(smallOpts())
	intel := tables[0]
	prev := 0.0
	for _, r := range intel.Rows {
		sp := parse(t, r[1])
		if sp < prev*0.95 {
			t.Errorf("Intel scaling regressed at %s cores: %v after %v", r[0], sp, prev)
		}
		prev = sp
	}
	last := intel.Rows[len(intel.Rows)-1]
	if parse(t, last[1]) < 3 {
		t.Errorf("8-core speedup %v too small", last[1])
	}
}

// TestFig9Shape: the GPU-without-transfer column always beats with-transfer.
func TestFig9Shape(t *testing.T) {
	tb := Fig9(quickOpts())[0]
	for _, r := range tb.Rows {
		if parse(t, r[5]) < parse(t, r[4]) {
			t.Errorf("%s/%s: removing transfers made the GPU slower", r[0], r[1])
		}
	}
}

// TestTable9Shape: limited memory slows everything; 50%% is worse than 75%%;
// the worklist kernels collapse far harder on the GPU.
func TestTable9Shape(t *testing.T) {
	tb := Table9(quickOpts())[0]
	for _, r := range tb.Rows {
		g75, g50 := parse(t, r[2]), parse(t, r[3])
		c75, c50 := parse(t, r[5]), parse(t, r[6])
		if g50 < g75 || c50 < c75 {
			t.Errorf("%s: tighter memory not slower: gpu %v/%v cpu %v/%v", r[0], g75, g50, c75, c50)
		}
		if g75 < 1 || c75 < 1 {
			t.Errorf("%s: slowdown below 1", r[0])
		}
	}
	bfs := findRow(tb, "bfs-wl")
	if bfs == nil {
		t.Fatal("no bfs-wl row")
	}
	if parse(t, bfs[3]) < 3*parse(t, bfs[6]) {
		t.Errorf("bfs-wl GPU 50%% slowdown %v not dramatically worse than CPU %v",
			bfs[3], bfs[6])
	}
}
