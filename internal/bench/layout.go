package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// LayoutExp compares the CSR and SELL-C-σ graph layouts per kernel and input
// family (an extension beyond the paper's tables; the layout follows SlimSell,
// Besta et al.): modeled time and cycles, inner-loop lane utilization, the
// layout's padding overhead and how many columns actually took the dense
// unit-stride path. Order-sensitive float kernels are pinned to CSR by the
// policy and report a 1.00 ratio; the per-family geomean in the notes covers
// only the runs where a SELL layout attached.
func LayoutExp(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	w := m.PreferredTarget.Width
	arm := o.Layout
	if arm == core.LayoutDefault {
		arm = core.LayoutSell
	}
	t := &Table{
		ID:    "layout",
		Title: fmt.Sprintf("graph layouts: csr vs sell-C-sigma (arm=%s, avx512-i32x16, Intel)", arm),
		Header: []string{"input", "benchmark", "layout", "csr-ms", "sell-ms", "cycle-ratio",
			"util-csr", "util-dense", "padding", "fallback", "dense-cols"},
		Notes: []string{
			"cycle-ratio is csr/sell modeled cycles (>1 means the dense layout wins)",
			"util-dense is lane occupancy of the SELL column loop alone; util-csr is whole-run",
			"padding is the sell layout's dead-cell fraction at the chosen C and sigma",
			"fallback is the edge fraction routed to the CSR row-sweep path (hub slices)",
		},
	}
	pc := newPrepCache()
	for _, g := range o.graphs() {
		src := g.MaxDegreeNode()
		var ratios []float64
		for _, b := range o.benchSet() {
			gg := pc.graph(b, g)
			csr, err := core.Run(b, gg, core.Config{Backend: o.Backend,
				Machine: m, Src: src, Layout: core.LayoutCSR, Budget: RunBudget,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: layout: %s on %s csr: %v", b.Name, g.Name, err))
			}
			sell, err := core.Run(b, gg, core.Config{Backend: o.Backend,
				Machine: m, Src: src, Budget: RunBudget,
				Layout: arm, SellC: o.SellC, SellSigma: o.SellSigma,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: layout: %s on %s sell: %v", b.Name, g.Name, err))
			}
			ratio := csr.Engine.TimeCycles() / sell.Engine.TimeCycles()
			padding, fallback, cols := 0.0, 0.0, int64(0)
			if sell.Sell != nil {
				padding = sell.Sell.PaddingRatio()
				fallback = sell.Sell.FallbackRatio()
				cols = sell.Stats.SellColumns
				ratios = append(ratios, ratio)
			}
			name := shortName(g)
			o.observe("layout/"+name+"/"+b.Name+"/cycle_ratio", ratio)
			o.observe("layout/"+name+"/"+b.Name+"/lane_util_dense", sell.Stats.SellLaneUtilization(w))
			t.Rows = append(t.Rows, []string{
				name, b.Name, sell.Layout,
				f3(csr.TimeMS), f3(sell.TimeMS), f2(ratio),
				fmt.Sprintf("%.0f%%", 100*csr.Stats.LaneUtilization(w)),
				fmt.Sprintf("%.0f%%", 100*sell.Stats.SellLaneUtilization(w)),
				fmt.Sprintf("%.1f%%", 100*padding),
				fmt.Sprintf("%.0f%%", 100*fallback),
				fmt.Sprintf("%d", cols),
			})
		}
		if len(ratios) > 0 {
			gm := geomean(ratios)
			o.observe("layout/"+shortName(g)+"/geomean_cycle_ratio", gm)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: geomean csr/sell cycle ratio %.3f over %d sell-attached runs",
				shortName(g), gm, len(ratios)))
		}
	}
	return []*Table{t}
}
