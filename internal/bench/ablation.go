package bench

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/opt"
)

// Ablation sweeps the design constants DESIGN.md calls out — the
// nested-parallelism big-node threshold, the fiber cap (the paper's
// empirically-chosen 256), and SSSP's input-specific DELTA — showing why the
// shipped defaults hold. This experiment extends the paper (which reports
// only the chosen values).
func Ablation(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	var tables []*Table

	// --- NP big-node threshold (in SIMD widths) ---
	bfs := o.benchSet()[0]
	g := o.graphs()[1] // rmat: where NP matters
	src := g.MaxDegreeNode()
	npT := &Table{
		ID:     "ablation",
		Title:  "NP big-node threshold sweep (bfs-wl, rmat): factor x SIMD width",
		Header: []string{"factor", "time-ms", "lane-util"},
		Notes:  []string{"the shipped default is factor 1: whole-vector treatment from one vector's worth of edges"},
	}
	defFactor := codegen.BigDegreeFactor
	for _, f := range []int{1, 2, 4, 8} {
		codegen.BigDegreeFactor = f
		res, err := core.Run(bfs, g, core.Config{Backend: o.Backend, Machine: m, Src: src})
		if err != nil {
			codegen.BigDegreeFactor = defFactor
			panic(err)
		}
		npT.Rows = append(npT.Rows, []string{
			fmt.Sprintf("%d", f), f3(res.TimeMS),
			fmt.Sprintf("%.0f%%", 100*res.Stats.LaneUtilization(m.PreferredTarget.Width)),
		})
	}
	codegen.BigDegreeFactor = defFactor
	tables = append(tables, npT)

	// --- Fiber cap (paper: MaxNumFibersPerTask = 256) ---
	fibT := &Table{
		ID:     "ablation",
		Title:  "fiber cap sweep (bfs-cx, road)",
		Header: []string{"max-fibers", "time-ms", "pushes"},
		Notes:  []string{"the paper fixes the cap at 256 to bound fiber state while keeping bulk reservation effective"},
	}
	cx := o.benchSet()[0]
	if !o.Quick {
		for _, b := range o.benchSet() {
			if b.Name == "bfs-cx" {
				cx = b
			}
		}
	}
	road := o.graphs()[0]
	rsrc := road.MaxDegreeNode()
	defFibers := codegen.MaxFibersPerTask
	for _, cap := range []int32{1, 16, 256, 4096} {
		codegen.MaxFibersPerTask = cap
		res, err := core.Run(cx, road, core.Config{Backend: o.Backend, Machine: m, Src: rsrc})
		if err != nil {
			codegen.MaxFibersPerTask = defFibers
			panic(err)
		}
		fibT.Rows = append(fibT.Rows, []string{
			fmt.Sprintf("%d", cap), f3(res.TimeMS),
			fmt.Sprintf("%d", res.Stats.AtomicPushes),
		})
	}
	codegen.MaxFibersPerTask = defFibers
	tables = append(tables, fibT)

	// --- SSSP DELTA (the paper's input-specific parameter) ---
	var sssp = o.benchSet()[0]
	for _, b := range o.benchSet() {
		if b.Name == "sssp-nf" {
			sssp = b
		}
	}
	if sssp.Name == "sssp-nf" {
		dT := &Table{
			ID:     "ablation",
			Title:  "SSSP near-far DELTA sweep (road)",
			Header: []string{"delta", "time-ms", "work-items"},
			Notes:  []string{"too small: many promotion rounds; too large: excess re-relaxation — the shipped default is maxWeight/2"},
		}
		for _, d := range []int32{4, 16, 32, 64, 256} {
			res, err := core.Run(sssp, road, core.Config{Backend: o.Backend,
				Machine: m, Src: rsrc, Params: map[string]int32{"delta": d},
			})
			if err != nil {
				panic(err)
			}
			dT.Rows = append(dT.Rows, []string{
				fmt.Sprintf("%d", d), f3(res.TimeMS),
				fmt.Sprintf("%d", res.Stats.WorkItems),
			})
		}
		tables = append(tables, dT)
	}
	return tables
}

// NeonExt compares EGACS on the ARM/NEON machine model against Intel/AVX512
// and serial ARM — this reproduction's extension of the paper's deferred
// future work ("leave evaluation of ARM NEON to future work").
func NeonExt(o Options) []*Table {
	o = o.withDefaults()
	arm := machine.ARM64()
	intel := machine.Intel8()
	t := &Table{
		ID:     "ext-neon",
		Title:  "ARM NEON extension: speedup over each machine's serial build",
		Header: []string{"benchmark", "input", "neon-simd", "neon-simd+mt", "avx512-simd+mt"},
		Notes: []string{
			"NEON lacks gathers/scatters/opmasks (AVX1-like lowering); the SIMD win survives but trails AVX512",
		},
	}
	pc := newPrepCache()
	sc := newSerialCache()
	none := opt.None()
	for _, b := range o.benchSet() {
		for _, g := range o.graphs() {
			gg := pc.graph(b, g)
			src := gg.MaxDegreeNode()
			armSerial := sc.ms(arm, b, gg, src)
			intelSerial := sc.ms(intel, b, gg, src)
			// Plain SIMD (no optimizations), matching Fig. 6's +SIMD column.
			neon1 := runMS(b, gg, core.Config{Backend: o.Backend, Machine: arm, Tasks: 1, NoSMT: true, Opts: &none, Src: src})
			neonMT := runMS(b, gg, core.Config{Backend: o.Backend, Machine: arm, Src: src})
			avxMT := runMS(b, gg, core.Config{Backend: o.Backend, Machine: intel, Src: src})
			t.Rows = append(t.Rows, []string{
				b.Name, shortName(g),
				f2(armSerial / neon1), f2(armSerial / neonMT), f2(intelSerial / avxMT),
			})
		}
	}
	return []*Table{t}
}
