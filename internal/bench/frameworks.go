package bench

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/machine"
)

// Fig4 reproduces the framework comparison (Fig. 4 + Table X): EGACS versus
// Ligra, GraphIt and Galois on the Intel and AMD machines — speedups over
// the serial EGACS build plus the raw millisecond table.
func Fig4(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, m := range []*machine.Config{machine.Intel8(), machine.AMD32()} {
		tables = append(tables, fig4Machine(o, m)...)
	}
	return tables
}

func fig4Machine(o Options, m *machine.Config) []*Table {
	frameworks := baselines.Frameworks()
	speed := &Table{
		ID:     "fig4",
		Title:  "speedup over serial, " + m.Name,
		Header: []string{"benchmark", "input", "egacs", "ligra", "graphit", "galois"},
	}
	raw := &Table{
		ID:     "table10",
		Title:  "execution time (ms), " + m.Name,
		Header: []string{"benchmark", "input", "serial", "egacs", "ligra", "graphit", "galois"},
	}
	pc := newPrepCache()
	sc := newSerialCache()
	wins := map[string]int{}
	var egacsVs = map[string][]float64{}
	for _, b := range o.benchSet() {
		for _, g := range o.graphs() {
			gg := pc.graph(b, g)
			src := gg.MaxDegreeNode()
			serial := sc.ms(m, b, gg, src)
			egacs := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Src: src})
			speedRow := []string{b.Name, shortName(g), f2(serial / egacs)}
			rawRow := []string{b.Name, shortName(g), f3(serial), f3(egacs)}
			best := "egacs"
			bestMS := egacs
			for _, fw := range frameworks {
				if !fw.Supports(b.Name) {
					speedRow = append(speedRow, "n/a")
					rawRow = append(rawRow, "n/a")
					continue
				}
				res, err := fw.Run(b.Name, gg, m, 0, src)
				if err != nil {
					panic(fmt.Sprintf("bench: %s/%s: %v", fw.Name, b.Name, err))
				}
				speedRow = append(speedRow, f2(serial/res.TimeMS))
				rawRow = append(rawRow, f3(res.TimeMS))
				egacsVs[fw.Name] = append(egacsVs[fw.Name], res.TimeMS/egacs)
				if res.TimeMS < bestMS {
					best, bestMS = fw.Name, res.TimeMS
				}
			}
			wins[best]++
			speed.Rows = append(speed.Rows, speedRow)
			raw.Rows = append(raw.Rows, rawRow)
		}
	}
	for _, fw := range sortedKeys(egacsVs) {
		speed.Notes = append(speed.Notes,
			fmt.Sprintf("EGACS vs %s: %.2fx faster (geomean; paper Intel: Ligra 3.06x, GraphIt 1.53x, Galois 1.78x)",
				fw, geomean(egacsVs[fw])))
	}
	for _, k := range sortedKeys(wins) {
		speed.Notes = append(speed.Notes, fmt.Sprintf("fastest in %d configs: %s", wins[k], k))
	}
	return []*Table{speed, raw}
}
