package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vec"
)

// Fig7 reproduces the SIMD-width and AVX-version sweep (Fig. 7): for each
// AVX family at logical widths 4/8/16, the speedup of the multi-task run and
// the single-task dynamic instruction count, both normalized to AVX1-4,
// geomean across benchmarks, per input.
func Fig7(o Options) []*Table {
	o = o.withDefaults()
	m := machine.Intel8()
	targets := []vec.Target{
		vec.TargetAVX1x4, vec.TargetAVX1x8, vec.TargetAVX1x16,
		vec.TargetAVX2x4, vec.TargetAVX2x8, vec.TargetAVX2x16,
		vec.TargetAVX512x4, vec.TargetAVX512x8, vec.TargetAVX512x16,
	}
	var tables []*Table
	pc := newPrepCache()
	for _, g := range o.graphs() {
		t := &Table{
			ID:     "fig7",
			Title:  "AVX target sweep, input " + shortName(g) + " (normalized to avx1-i32x4)",
			Header: []string{"target", "speedup", "dyn-instrs"},
			Notes: []string{
				"newer AVX versions execute fewer instructions; wider is not always faster",
			},
		}
		type meas struct{ ms, instrs float64 }
		results := map[vec.Target]meas{}
		for _, tgt := range targets {
			var msAll, instrAll []float64
			for _, b := range o.benchSet() {
				gg := pc.graph(b, g)
				src := gg.MaxDegreeNode()
				// Speedup: multi-task run.
				ms := runMS(b, gg, core.Config{Backend: o.Backend, Machine: m, Target: tgt, Src: src})
				// Instructions: single-task run, as the paper does to
				// exclude barrier/launch/CAS-retry noise.
				res, err := core.Run(b, gg, core.Config{Backend: o.Backend,
					Machine: m, Target: tgt, Tasks: 1, NoSMT: true, Src: src,
				})
				if err != nil {
					panic(err)
				}
				msAll = append(msAll, ms)
				instrAll = append(instrAll, float64(res.Stats.Instructions))
			}
			results[tgt] = meas{geomean(msAll), geomean(instrAll)}
		}
		base := results[vec.TargetAVX1x4]
		for _, tgt := range targets {
			r := results[tgt]
			t.Rows = append(t.Rows, []string{
				tgt.String(),
				f2(base.ms / r.ms),
				f2(r.instrs / base.instrs),
			})
		}
		// Headline checks from Section IV-B3.
		if i512 := results[vec.TargetAVX512x16].instrs; i512 > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"avx1-16/avx2-16 instrs = %.2fx, avx2-16/avx512-16 instrs = %.2fx (paper: 1.59x, 1.41x)",
				results[vec.TargetAVX1x16].instrs/results[vec.TargetAVX2x16].instrs,
				results[vec.TargetAVX2x16].instrs/i512))
		}
		tables = append(tables, t)
	}
	return tables
}
