package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// Fig9 reproduces the CPU-vs-GPU comparison (Fig. 9): GPU speedup over the
// Intel EGACS build per benchmark and input, with and without data-transfer
// time, plus the AMD and Phi columns.
func Fig9(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig9",
		Title: "speedup over Intel EGACS (higher = faster than Intel CPU)",
		Header: []string{"benchmark", "input", "amd", "phi",
			"gpu", "gpu-no-transfer"},
	}
	intel, amd, phi := machine.Intel8(), machine.AMD32(), machine.Phi72()
	pc := newPrepCache()
	var gpuAll []float64
	for _, b := range o.benchSet() {
		for _, g := range o.graphs() {
			gg := pc.graph(b, g)
			src := gg.MaxDegreeNode()
			intelMS := runMS(b, gg, core.Config{Machine: intel, Src: src})
			amdMS := runMS(b, gg, core.Config{Machine: amd, Src: src})
			phiMS := runMS(b, gg, core.Config{Machine: phi, Src: src})
			gpuRes, err := gpusim.Run(b, gg, gpusim.Options{IncludeTransfer: true, Src: src})
			if err != nil {
				panic(err)
			}
			gpuNT, err := gpusim.Run(b, gg, gpusim.Options{IncludeTransfer: false, Src: src})
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{
				b.Name, shortName(g),
				f2(intelMS / amdMS), f2(intelMS / phiMS),
				f2(intelMS / gpuRes.TimeMS), f2(intelMS / gpuNT.TimeMS),
			})
			gpuAll = append(gpuAll, intelMS/gpuRes.TimeMS)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"GPU vs Intel EGACS geomean: %.2fx (paper: 1.76x including transfers)", geomean(gpuAll)))
	return []*Table{t}
}

// Table9 reproduces the virtual-memory study (Table IX): per-application
// memory footprint and the slowdown when physical memory is limited to 75%%
// and 50%% of it, on both CPU (cgroups-style limit) and GPU (UVM
// oversubscription).
func Table9(o Options) []*Table {
	o = o.withDefaults()
	// The paper uses a larger road graph (OSM-EUR) for this study.
	gs := o.graphs()
	g := gs[0] // road family
	t := &Table{
		ID:    "table9",
		Title: "memory footprint (MB) and slowdown at limited physical memory, road input",
		Header: []string{"benchmark",
			"gpu-MB", "gpu-75%", "gpu-50%",
			"cpu-MB", "cpu-75%", "cpu-50%"},
		Notes: []string{
			"worklist kernels on the GPU collapse under UVM oversubscription (paper: >5000x, DNF); the CPU degrades gracefully",
		},
	}
	intel := machine.Intel8()
	pc := newPrepCache()
	apps := o.benchSet()
	if !o.Quick {
		// The paper's Table IX covers these seven applications.
		apps = nil
		for _, n := range []string{"bfs-wl", "cc", "tri", "sssp-nf", "mis", "pr", "mst"} {
			b, err := kernels.ByName(n)
			if err != nil {
				panic(err)
			}
			apps = append(apps, b)
		}
	}
	for _, b := range apps {
		gg := pc.graph(b, g)
		src := gg.MaxDegreeNode()

		// Unlimited-memory baselines.
		gpuFull, err := gpusim.Run(b, gg, gpusim.Options{Src: src})
		if err != nil {
			panic(err)
		}
		cpuFull := runMS(b, gg, core.Config{Machine: intel, Src: src})
		foot := gpuFull.Instance.FootprintBytes()

		row := []string{b.Name, f1(float64(foot) / (1 << 20))}
		for _, frac := range []float64{0.75, 0.50} {
			limited, err := gpusim.Run(b, gg, gpusim.Options{
				Src: src, PhysBytes: int64(frac * float64(foot)),
			})
			if err != nil {
				panic(err)
			}
			row = append(row, f1(limited.TimeMS/gpuFull.TimeMS))
		}
		row = append(row, f1(float64(foot)/(1<<20)))
		for _, frac := range []float64{0.75, 0.50} {
			res, _, err := gpusim.CPUWithMemLimit(b, gg, intel, int64(frac*float64(foot)), src)
			if err != nil {
				panic(err)
			}
			row = append(row, f1(res.TimeMS/cpuFull))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
