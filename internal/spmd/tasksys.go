package spmd

import "fmt"

// TaskSystem models one of ISPC's selectable tasking back ends
// (Section III-A). Functionally all systems run the same tasks; they differ
// only in modeled overhead:
//
//   - LaunchBaseNS + LaunchPerTaskNS*tasks is charged per launch. Table II's
//     empty-launch microbenchmark measures exactly this, with the pthread
//     system the slowest and Cilk the fastest.
//   - RuntimePerLaunchNS is additional steady-state overhead (steal queues,
//     wakeup fan-out) charged only for launches that do real work. It is why
//     OpenMP, not Cilk, is the fastest system on the real BFS-WL benchmark
//     (Table III) even though Cilk wins the empty-launch test.
type TaskSystem struct {
	Name               string
	LaunchBaseNS       float64
	LaunchPerTaskNS    float64
	RuntimePerLaunchNS float64
}

// The five tasking systems ISPC supports on Linux, with overheads calibrated
// to the relative ordering of Tables II and III. EGACS uses the pinned
// pthread system by default, as in the paper's evaluation setup.
var (
	Pthread = TaskSystem{
		Name: "pthread", LaunchBaseNS: 9000, LaunchPerTaskNS: 850, RuntimePerLaunchNS: 2500,
	}
	PthreadFS = TaskSystem{
		Name: "pthread_fs", LaunchBaseNS: 4200, LaunchPerTaskNS: 420, RuntimePerLaunchNS: 1800,
	}
	Cilk = TaskSystem{
		Name: "cilk", LaunchBaseNS: 700, LaunchPerTaskNS: 55, RuntimePerLaunchNS: 2200,
	}
	OpenMP = TaskSystem{
		Name: "openmp", LaunchBaseNS: 1100, LaunchPerTaskNS: 75, RuntimePerLaunchNS: 600,
	}
	TBB = TaskSystem{
		Name: "tbb", LaunchBaseNS: 1600, LaunchPerTaskNS: 120, RuntimePerLaunchNS: 1400,
	}
	// CUDA models a GPU kernel launch: a near-constant host-side cost
	// independent of the grid size (the hardware distributes blocks).
	CUDA = TaskSystem{
		Name: "cuda", LaunchBaseNS: 8000, LaunchPerTaskNS: 0, RuntimePerLaunchNS: 2000,
	}
)

// TaskSystems lists all modeled systems in presentation order.
func TaskSystems() []TaskSystem {
	return []TaskSystem{Pthread, PthreadFS, Cilk, OpenMP, TBB}
}

// TaskSystemByName looks a system up by its name.
func TaskSystemByName(name string) (TaskSystem, error) {
	for _, ts := range TaskSystems() {
		if ts.Name == name {
			return ts, nil
		}
	}
	return TaskSystem{}, fmt.Errorf("spmd: unknown task system %q", name)
}

// LaunchCostNS returns the modeled cost of one launch of n tasks. empty
// selects the microbenchmark condition (no steady-state runtime overhead).
func (ts TaskSystem) LaunchCostNS(n int, empty bool) float64 {
	c := ts.LaunchBaseNS + ts.LaunchPerTaskNS*float64(n)
	if !empty {
		c += ts.RuntimePerLaunchNS
	}
	return c
}
