package spmd

import "repro/internal/machine"

// Checkpoint is a reusable barrier-consistent snapshot of all engine-visible
// execution state: every registered array (program arrays, graph bindings and
// worklist storage alike — the dense id-ordered registry), the modeled clocks,
// statistics, iteration counter, address-space cursor, cache-model tags and
// the observability baselines. Taking one at a pipe-loop iteration boundary
// and restoring it later replays the remainder of the run bit-identically.
//
// All buffers are reused across Checkpoint calls, so steady-state
// checkpointing of a fixed array population allocates nothing.
type Checkpoint struct {
	valid bool

	cycles           float64
	transferNS       float64
	faultNS          float64
	segSerialAtomics float64
	stats            Stats
	iter             int64

	nArrays  int32
	nPush    int32
	addrMark int64

	arrI [][]int32
	arrF [][]float32

	mem machine.MemSnapshot

	// attrCur/attrN/attrVals snapshot the attribution buckets. Phase
	// registrations are NOT snapshotted: they are append-only and replayed
	// deterministically by re-execution, so Restore only rolls the bucket
	// values back (zeroing slots registered after the snapshot) and rewinds
	// the cursor. The clock then re-derives by the canonical refold, which
	// reproduces cycles exactly (later-registered slots contribute exact
	// zeros).
	attrCur  int32
	attrN    int
	attrVals []costVec

	obsBase iterBase
	obsOpen []iterSpan
}

// Valid reports whether the checkpoint holds a snapshot.
func (cp *Checkpoint) Valid() bool { return cp != nil && cp.valid }

// Invalidate marks the checkpoint empty without releasing its buffers.
func (cp *Checkpoint) Invalidate() { cp.valid = false }

// Cycles returns the modeled clock at snapshot time.
func (cp *Checkpoint) Cycles() float64 { return cp.cycles }

// Iteration returns the pipe-loop iteration counter at snapshot time.
func (cp *Checkpoint) Iteration() int64 { return cp.iter }

// ArrayI returns the snapshotted int32 contents of the array with the given
// dense id, nil when that array held no int data.
func (cp *Checkpoint) ArrayI(id int32) []int32 {
	if id < 0 || int(id) >= len(cp.arrI) || len(cp.arrI[id]) == 0 {
		return nil
	}
	return cp.arrI[id]
}

// ArrayF returns the snapshotted float32 contents of the array with the given
// dense id, nil when that array held no float data.
func (cp *Checkpoint) ArrayF(id int32) []float32 {
	if id < 0 || int(id) >= len(cp.arrF) || len(cp.arrF[id]) == 0 {
		return nil
	}
	return cp.arrF[id]
}

func copyI32(dst *[]int32, src []int32) {
	if cap(*dst) < len(src) {
		*dst = make([]int32, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

func copyF32(dst *[]float32, src []float32) {
	if cap(*dst) < len(src) {
		*dst = make([]float32, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

// Checkpoint snapshots the engine into cp. Call only at a pipe-loop iteration
// boundary (immediately after a barrier): those are consistent cuts in every
// execution mode — live mode has run every task to the barrier, and the
// deferred modes mutate shared state only at barrier merges — so a plain
// read of the arrays races with nothing.
func (e *Engine) Checkpoint(cp *Checkpoint) {
	cp.cycles = e.cycles
	cp.transferNS = e.transferNS
	cp.faultNS = e.faultNS
	cp.segSerialAtomics = e.segSerialAtomics
	cp.stats = e.Stats
	cp.iter = e.iter.Load()
	cp.nArrays = e.nArrays
	cp.nPush = e.nPush
	cp.addrMark = e.Addr.Mark()

	if cap(cp.arrI) < len(e.arrays) {
		cp.arrI = append(cp.arrI[:cap(cp.arrI)], make([][]int32, len(e.arrays)-cap(cp.arrI))...)
		cp.arrF = append(cp.arrF[:cap(cp.arrF)], make([][]float32, len(e.arrays)-cap(cp.arrF))...)
	}
	cp.arrI = cp.arrI[:len(e.arrays)]
	cp.arrF = cp.arrF[:len(e.arrays)]
	for i, a := range e.arrays {
		copyI32(&cp.arrI[i], a.I)
		copyF32(&cp.arrF[i], a.F)
	}

	e.Mem.Snapshot(&cp.mem)

	cp.attrCur = e.attr.cur
	cp.attrN = len(e.attr.vals)
	if cap(cp.attrVals) < cp.attrN {
		cp.attrVals = make([]costVec, cp.attrN)
	}
	cp.attrVals = cp.attrVals[:cp.attrN]
	copy(cp.attrVals, e.attr.vals)

	cp.obsBase = e.obsBase
	if cap(cp.obsOpen) < len(e.obsOpen) {
		cp.obsOpen = make([]iterSpan, len(e.obsOpen))
	}
	cp.obsOpen = cp.obsOpen[:len(e.obsOpen)]
	copy(cp.obsOpen, e.obsOpen)

	cp.valid = true
}

// Restore rewinds the engine to a previous Checkpoint. Arrays registered
// after the snapshot (e.g. replacements allocated by worklist growth) are
// dropped from the registry and their synthetic addresses released, so a
// re-execution that re-allocates them receives identical ids and addresses.
// Array contents are copied back in place; lengths are unchanged because
// growth replaces arrays rather than resizing them.
func (e *Engine) Restore(cp *Checkpoint) {
	for i := int(cp.nArrays); i < len(e.arrays); i++ {
		e.arrays[i] = nil
	}
	e.arrays = e.arrays[:cp.nArrays]
	e.nArrays = cp.nArrays
	e.nPush = cp.nPush
	e.Addr.Rewind(cp.addrMark)

	for i, a := range e.arrays {
		copy(a.I, cp.arrI[i])
		copy(a.F, cp.arrF[i])
	}

	e.Mem.Restore(&cp.mem)

	// Roll the attribution buckets back and re-derive the clock from them.
	// The refold reproduces cp.cycles bit-exactly: the restored slots hold
	// the snapshotted values and slots registered after the snapshot are
	// zeroed, contributing exact-zero terms to the fold.
	copy(e.attr.vals[:cp.attrN], cp.attrVals)
	for i := cp.attrN; i < len(e.attr.vals); i++ {
		e.attr.vals[i] = costVec{}
	}
	e.attr.cur = cp.attrCur
	e.refoldCycles()
	e.transferNS = cp.transferNS
	e.faultNS = cp.faultNS
	e.segSerialAtomics = cp.segSerialAtomics
	e.Stats = cp.stats
	e.iter.Store(cp.iter)

	e.obsBase = cp.obsBase
	e.obsOpen = e.obsOpen[:0]
	e.obsOpen = append(e.obsOpen, cp.obsOpen...)
}
