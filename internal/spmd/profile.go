package spmd

import (
	"fmt"
	"io"
	"sort"
)

// Phase profiling attributes engine statistics and modeled cycles to named
// phases (the compiled kernels). It works in every execution mode and
// produces identical per-phase sums in all of them:
//
//   - Live mode is snapshot-based: a task's MarkPhase closes the running
//     phase by attributing the global stat/cycle deltas since the previous
//     mark, so the per-op hot paths pay nothing. Cooperative scheduling
//     guarantees phase transitions are globally ordered.
//   - Deferred and parallel modes cannot read global state mid-segment
//     (tasks only own their private shard), so MarkPhase instead appends a
//     (name, shard-snapshot) entry to the task's pooled phase log. At every
//     merge boundary foldTask replays the log in task order — the same order
//     the live scheduler would have executed the marks — attributing shard
//     deltas to phases and advancing the snapshot baseline so nothing is
//     counted twice.
//
// Modeled cycles only advance at launch and barrier boundaries, where all
// modes agree on the clock, so per-phase cycle attribution is bit-identical
// across modes as well (the differential test in internal/core pins this).
type profiler struct {
	phases   map[string]*PhaseStats
	current  string
	lastStat Stats
	lastCyc  float64
}

// phaseEntry is one deferred-mode phase transition: the task entered phase
// name when its private shard held base.
type phaseEntry struct {
	name string
	base Stats
}

// PhaseStats is one phase's share of a run. Visits counts task-level
// entries (one kernel invocation across T tasks contributes T visits).
type PhaseStats struct {
	Name   string
	Stats  Stats
	Cycles float64
	Visits int64
}

// EnableProfiling turns on phase attribution (small constant overhead per
// kernel invocation, in every execution mode).
func (e *Engine) EnableProfiling() {
	e.prof = &profiler{phases: map[string]*PhaseStats{}}
}

// MarkPhase records entry into a named phase from the host side. The phase
// name is always retained for failure context; live-mode statistics
// attribution happens here too. Task bodies should use TaskCtx.MarkPhase,
// which also attributes correctly in the deferred and parallel modes.
func (e *Engine) MarkPhase(name string) {
	e.phase.Store(&name)
	// The attribution cursor always follows host-side marks: MarkPhase runs
	// between launches on the host goroutine, which is single-threaded in
	// every execution mode.
	e.attrMark(name)
	p := e.prof
	if p == nil {
		return
	}
	if e.execMode() != ExecLive {
		// Deferred-mode attribution is task-scoped (TaskCtx.MarkPhase);
		// a host-side mark only updates failure context.
		return
	}
	p.flush(e)
	p.enter(name)
}

// enter opens phase name and counts the visit.
func (p *profiler) enter(name string) {
	p.current = name
	ps := p.phases[name]
	if ps == nil {
		ps = &PhaseStats{Name: name}
		p.phases[name] = ps
	}
	ps.Visits++
}

// flush attributes the global stat and cycle deltas since the last snapshot
// to the running phase and re-snapshots.
func (p *profiler) flush(e *Engine) {
	if p.current != "" {
		ps := p.phases[p.current]
		delta := e.Stats
		deltaSub(&delta, &p.lastStat)
		ps.Stats.Add(&delta)
		ps.Cycles += e.cycles - p.lastCyc
	}
	p.lastStat = e.Stats
	p.lastCyc = e.cycles
}

// flushCycles attributes only the cycle delta (deferred folding attributes
// stats from shards, not global snapshots).
func (p *profiler) flushCycles(e *Engine) {
	if p.current != "" {
		p.phases[p.current].Cycles += e.cycles - p.lastCyc
	}
	p.lastCyc = e.cycles
}

// attribute adds a shard-derived stat delta to the running phase.
func (p *profiler) attribute(d *Stats) {
	if p.current == "" {
		return
	}
	p.phases[p.current].Stats.Add(d)
}

// foldTask folds one deferred task's phase log into the profile at a merge
// boundary, before the caller adds tc.shard to the global stats. The global
// flush first attributes engine-side counters (launches, barriers) pending
// since the previous boundary — exactly what the live scheduler would have
// attributed at this task's first mark — then shard deltas between
// consecutive log entries go to the phase running at the time. lastStat is
// pre-advanced by the full shard because the caller merges it into e.Stats
// immediately after, keeping the final Profile flush from double counting.
func (p *profiler) foldTask(e *Engine, tc *TaskCtx) {
	d := tc.def
	p.flush(e)
	var prev Stats
	for i := range d.phLog {
		ent := &d.phLog[i]
		delta := ent.base
		deltaSub(&delta, &prev)
		p.attribute(&delta)
		p.flushCycles(e)
		p.enter(ent.name)
		prev = ent.base
	}
	last := tc.shard
	deltaSub(&last, &prev)
	p.attribute(&last)
	p.lastStat.Add(&tc.shard)
	d.phLog = d.phLog[:0]
}

// deltaSub computes a - b in place (counters only grow, so deltas are
// non-negative).
func deltaSub(a, b *Stats) {
	a.Instructions -= b.Instructions
	for i := range a.ByClass {
		a.ByClass[i] -= b.ByClass[i]
	}
	a.VectorOps -= b.VectorOps
	a.ScalarOps -= b.ScalarOps
	a.Atomics -= b.Atomics
	a.AtomicPushes -= b.AtomicPushes
	a.InnerVectorOps -= b.InnerVectorOps
	a.InnerActiveLanes -= b.InnerActiveLanes
	a.Launches -= b.Launches
	a.Barriers -= b.Barriers
	a.WorkItems -= b.WorkItems
	a.PageFaults -= b.PageFaults
}

// Profile closes the running phase and returns per-phase statistics sorted
// by descending cycles. Nil when profiling is off.
func (e *Engine) Profile() []*PhaseStats {
	if e.prof == nil {
		return nil
	}
	e.prof.flush(e)
	e.prof.current = ""
	out := make([]*PhaseStats, 0, len(e.prof.phases))
	for _, ps := range e.prof.phases {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteProfile renders the profile as an aligned table.
func (e *Engine) WriteProfile(w io.Writer) {
	phases := e.Profile()
	if phases == nil {
		fmt.Fprintln(w, "profiling not enabled")
		return
	}
	var total float64
	for _, ps := range phases {
		total += ps.Cycles
	}
	fmt.Fprintf(w, "%-12s %8s %7s %12s %10s %8s %8s\n",
		"phase", "ms", "%time", "instrs", "atomics", "visits", "util%")
	for _, ps := range phases {
		pct := 0.0
		if total > 0 {
			pct = 100 * ps.Cycles / total
		}
		fmt.Fprintf(w, "%-12s %8.3f %6.1f%% %12d %10d %8d %7.1f%%\n",
			ps.Name, e.Machine.CyclesToNS(ps.Cycles)/1e6, pct,
			ps.Stats.Instructions, ps.Stats.Atomics, ps.Visits,
			100*ps.Stats.LaneUtilization(e.Width()))
	}
}
