package spmd

import (
	"fmt"
	"io"
	"sort"
)

// Phase profiling attributes engine statistics and modeled cycles to named
// phases (the compiled kernels). Attribution is snapshot-based: MarkPhase
// closes the running phase and opens the next, so the per-op hot paths pay
// nothing. Cooperative scheduling guarantees all tasks pass a kernel
// boundary before any proceeds, so phase transitions are globally ordered.
type profiler struct {
	phases   map[string]*PhaseStats
	current  string
	lastStat Stats
	lastCyc  float64
}

// PhaseStats is one phase's share of a run. Visits counts task-level
// entries (one kernel invocation across T tasks contributes T visits).
type PhaseStats struct {
	Name   string
	Stats  Stats
	Cycles float64
	Visits int64
}

// EnableProfiling turns on phase attribution (small constant overhead per
// kernel invocation).
func (e *Engine) EnableProfiling() {
	e.prof = &profiler{phases: map[string]*PhaseStats{}}
}

// MarkPhase records entry into a named phase; the interval since the last
// mark is attributed to the previous phase. The phase name is always
// retained for failure context (stored atomically — parallel launches mark
// phases from concurrent tasks); statistics attribution needs profiling on,
// which forces the live cooperative scheduler.
func (e *Engine) MarkPhase(name string) {
	e.phase.Store(&name)
	p := e.prof
	if p == nil {
		return
	}
	p.flush(e)
	p.current = name
	ps := p.phases[name]
	if ps == nil {
		ps = &PhaseStats{Name: name}
		p.phases[name] = ps
	}
	ps.Visits++
}

func (p *profiler) flush(e *Engine) {
	if p.current != "" {
		ps := p.phases[p.current]
		delta := e.Stats
		deltaSub(&delta, &p.lastStat)
		ps.Stats.Add(&delta)
		ps.Cycles += e.cycles - p.lastCyc
	}
	p.lastStat = e.Stats
	p.lastCyc = e.cycles
}

// deltaSub computes a - b in place (counters only grow, so deltas are
// non-negative).
func deltaSub(a, b *Stats) {
	a.Instructions -= b.Instructions
	for i := range a.ByClass {
		a.ByClass[i] -= b.ByClass[i]
	}
	a.VectorOps -= b.VectorOps
	a.ScalarOps -= b.ScalarOps
	a.Atomics -= b.Atomics
	a.AtomicPushes -= b.AtomicPushes
	a.InnerVectorOps -= b.InnerVectorOps
	a.InnerActiveLanes -= b.InnerActiveLanes
	a.Launches -= b.Launches
	a.Barriers -= b.Barriers
	a.WorkItems -= b.WorkItems
	a.PageFaults -= b.PageFaults
}

// Profile closes the running phase and returns per-phase statistics sorted
// by descending cycles. Nil when profiling is off.
func (e *Engine) Profile() []*PhaseStats {
	if e.prof == nil {
		return nil
	}
	e.prof.flush(e)
	e.prof.current = ""
	out := make([]*PhaseStats, 0, len(e.prof.phases))
	for _, ps := range e.prof.phases {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteProfile renders the profile as an aligned table.
func (e *Engine) WriteProfile(w io.Writer) {
	phases := e.Profile()
	if phases == nil {
		fmt.Fprintln(w, "profiling not enabled")
		return
	}
	var total float64
	for _, ps := range phases {
		total += ps.Cycles
	}
	fmt.Fprintf(w, "%-12s %8s %7s %12s %10s %8s %8s\n",
		"phase", "ms", "%time", "instrs", "atomics", "visits", "util%")
	for _, ps := range phases {
		pct := 0.0
		if total > 0 {
			pct = 100 * ps.Cycles / total
		}
		fmt.Fprintf(w, "%-12s %8.3f %6.1f%% %12d %10d %8d %7.1f%%\n",
			ps.Name, e.Machine.CyclesToNS(ps.Cycles)/1e6, pct,
			ps.Stats.Instructions, ps.Stats.Atomics, ps.Visits,
			100*ps.Stats.LaneUtilization(e.Width()))
	}
}
