// Package spmd is the ISPC-analogue runtime: it executes SPMD tasks whose
// program instances map to software SIMD lanes (internal/vec), accounts every
// dynamic instruction and memory access against a machine model
// (internal/machine), and aggregates per-task cycles into modeled execution
// time with launch, barrier, SMT and atomic-serialization effects.
//
// Tasks execute in one of three modes (Engine.Exec). ExecLive is the legacy
// reference: tasks are scheduled cooperatively and deterministically —
// between barriers, tasks run to completion one at a time in task order on a
// single goroutine each, handing off through channels, with every effect
// applied immediately. ExecDeferred runs the same cooperative schedule under
// deferred-effect semantics (private per-task shards and traces, merged at
// barriers in task order; see deferred.go), and ExecParallel runs those
// deferred-effect tasks concurrently on real goroutines (parallel.go). In
// every mode, modeled time is unaffected by host scheduling: every run of a
// kernel on a given graph produces identical results, identical instruction
// counts and identical modeled times, and the two deferred modes are
// bit-identical to each other by construction.
package spmd

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/vec"
)

// Stats aggregates dynamic execution counters for one engine run.
type Stats struct {
	// Instructions is the total dynamic machine-instruction count after
	// target lowering (the Intel-Pin-style number used in Fig. 7).
	Instructions int64
	// ByClass breaks Instructions down by operation class.
	ByClass [vec.NumOpClasses]int64

	// VectorOps counts logical vector operations before lowering.
	VectorOps int64
	// ScalarOps counts uniform scalar operations.
	ScalarOps int64

	// Atomics counts hardware atomic operations issued; AtomicPushes counts
	// the subset used for worklist pushes (Table V).
	Atomics      int64
	AtomicPushes int64

	// InnerVectorOps/InnerActiveLanes measure SIMD lane utilization inside
	// kernels' inner (edge) loops: utilization = active/(ops*width)
	// (Table IV).
	InnerVectorOps   int64
	InnerActiveLanes int64

	// Launches and Barriers count task launches and in-kernel barriers.
	Launches int64
	Barriers int64

	// WorkItems counts worklist items processed (useful work proxy).
	WorkItems int64

	// PageFaults counts demand-paging faults when a pager is attached.
	PageFaults int64

	// SellColumns counts slice columns executed through the SELL-C-σ dense
	// neighborhood path (one unit-stride load replacing a gather per count).
	// Zero means every edge loop ran over CSR. SellActiveLanes accumulates
	// the live (non-padding) lanes of those columns, so the pair isolates
	// the dense path's occupancy from whatever mix of CSR work ran besides.
	SellColumns     int64
	SellActiveLanes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Instructions += other.Instructions
	for i := range s.ByClass {
		s.ByClass[i] += other.ByClass[i]
	}
	s.VectorOps += other.VectorOps
	s.ScalarOps += other.ScalarOps
	s.Atomics += other.Atomics
	s.AtomicPushes += other.AtomicPushes
	s.InnerVectorOps += other.InnerVectorOps
	s.InnerActiveLanes += other.InnerActiveLanes
	s.Launches += other.Launches
	s.Barriers += other.Barriers
	s.WorkItems += other.WorkItems
	s.PageFaults += other.PageFaults
	s.SellColumns += other.SellColumns
	s.SellActiveLanes += other.SellActiveLanes
}

// SellLaneUtilization returns the lane occupancy of SELL dense-path columns
// alone at the given width, in [0,1]: live cells over total cells touched.
// Unlike LaneUtilization it excludes CSR-path inner ops, so it measures how
// well the degree sort packed the slices that actually executed densely.
func (s *Stats) SellLaneUtilization(width int) float64 {
	if s.SellColumns == 0 || width == 0 {
		return 0
	}
	return float64(s.SellActiveLanes) / float64(s.SellColumns*int64(width))
}

// LaneUtilization returns the measured SIMD lane utilization of inner-loop
// vector operations at the given width, in [0,1].
func (s *Stats) LaneUtilization(width int) float64 {
	if s.InnerVectorOps == 0 || width == 0 {
		return 0
	}
	return float64(s.InnerActiveLanes) / float64(s.InnerVectorOps*int64(width))
}

func (s *Stats) String() string {
	return fmt.Sprintf("instrs=%d vops=%d sops=%d atomics=%d pushes=%d launches=%d barriers=%d work=%d faults=%d",
		s.Instructions, s.VectorOps, s.ScalarOps, s.Atomics, s.AtomicPushes, s.Launches, s.Barriers,
		s.WorkItems, s.PageFaults)
}

// Pager is the hook the virtual-memory simulator (internal/vmem) implements.
// Touch is called once per distinct memory operation with a byte address and
// returns the extra stall in nanoseconds caused by demand paging (zero when
// the page is resident), along with whether a fault occurred.
type Pager interface {
	Touch(addr int64) (extraNS float64, fault bool)
}

// Array is a named data array with a synthetic base address for cache and
// paging simulation. Exactly one of I and F is non-nil. Arrays must be
// created through the engine (AllocI/AllocF/BindI/BindF), which assigns the
// dense engine-scoped id that deferred tasks use to index their shadow
// buffers without hashing.
type Array struct {
	Name string
	I    []int32
	F    []float32
	Base int64
	id   int32
}

// ID returns the dense engine-scoped array id assigned at registration. The
// checkpoint layer uses it to index snapshot tables.
func (a *Array) ID() int32 { return a.id }

// Len returns the element count.
func (a *Array) Len() int {
	if a.I != nil {
		return len(a.I)
	}
	return len(a.F)
}

// Bytes returns the array's size in bytes.
func (a *Array) Bytes() int64 { return int64(a.Len()) * 4 }

// Addr returns the synthetic byte address of element idx.
func (a *Array) Addr(idx int32) int64 { return a.Base + int64(idx)*4 }

func (a *Array) String() string {
	kind := "i32"
	if a.F != nil {
		kind = "f32"
	}
	return fmt.Sprintf("%s[%d]%s@%#x", a.Name, a.Len(), kind, a.Base)
}

// FillI sets every element of an int array.
func (a *Array) FillI(x int32) {
	for i := range a.I {
		a.I[i] = x
	}
}

// FillF sets every element of a float array.
func (a *Array) FillF(x float32) {
	for i := range a.F {
		a.F[i] = x
	}
}

// ensure interface use of machine in this file's doc context
var _ = machine.L1
